#include "perfsim/sampler.h"

#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "core/runtime.h"
#include "obs/metric_names.h"
#include "obs/session.h"

namespace teeperf::perfsim {
namespace {

// The active profiler; the SIGPROF handler may only touch this pointer and
// async-signal-safe state inside it.
std::atomic<SamplingProfiler*> g_active{nullptr};

}  // namespace

void sigprof_handler(int) {
  SamplingProfiler* p = g_active.load(std::memory_order_acquire);
  if (!p) return;

  if (p->count_.load(std::memory_order_relaxed) >= p->options_.max_samples) {
    p->dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  u64 frames[512];
  int depth = runtime::capture_own_stack(frames, p->options_.max_depth);
  usize record = 2 + static_cast<usize>(depth);

  usize at = p->cursor_.fetch_add(record, std::memory_order_relaxed);
  if (at + record > p->arena_.size()) {
    p->dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  p->arena_[at] = runtime::current_tid();
  p->arena_[at + 1] = static_cast<u64>(depth);
  for (int i = 0; i < depth; ++i) p->arena_[at + 2 + static_cast<usize>(i)] = frames[i];
  p->count_.fetch_add(1, std::memory_order_relaxed);
}

SamplingProfiler::SamplingProfiler(const SamplerOptions& options)
    : options_(options) {
  // Worst-case record size per sample keeps the arena allocation simple.
  arena_.resize(options_.max_samples *
                (2 + static_cast<usize>(options_.max_depth)));
}

SamplingProfiler::~SamplingProfiler() { stop(); }

bool SamplingProfiler::start() {
  SamplingProfiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    return false;
  }
  cursor_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);

  struct sigaction sa {};
  sa.sa_handler = sigprof_handler;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, nullptr) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    return false;
  }

  itimerval timer{};
  u64 usec = options_.frequency_hz ? 1'000'000 / options_.frequency_hz : 0;
  if (usec == 0) usec = 1;
  timer.it_interval.tv_sec = static_cast<time_t>(usec / 1'000'000);
  timer.it_interval.tv_usec = static_cast<suseconds_t>(usec % 1'000'000);
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    return false;
  }
  running_ = true;
  if (obs::SelfTelemetry* tel = obs::telemetry()) {
    tel->registry().gauge(obs::metric_names::kSamplerFrequencyHz).set(options_.frequency_hz);
    tel->journal().record(obs::EventType::kSamplerStart, options_.frequency_hz);
  }
  return true;
}

void SamplingProfiler::stop() {
  if (!running_) return;
  itimerval off{};
  setitimer(ITIMER_PROF, &off, nullptr);
  struct sigaction sa {};
  sa.sa_handler = SIG_IGN;
  sigaction(SIGPROF, &sa, nullptr);
  g_active.store(nullptr, std::memory_order_release);
  running_ = false;
  if (obs::SelfTelemetry* tel = obs::telemetry()) {
    obs::MetricsRegistry& reg = tel->registry();
    reg.gauge(obs::metric_names::kSamplerSamples).set(sample_count());
    reg.gauge(obs::metric_names::kSamplerDropped).set(dropped());
    tel->journal().record(obs::EventType::kSamplerStop, sample_count(),
                          dropped());
  }
}

bool SamplingProfiler::running() const { return running_; }

usize SamplingProfiler::sample_count() const {
  return count_.load(std::memory_order_relaxed);
}

usize SamplingProfiler::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<Sample> SamplingProfiler::samples() const {
  std::vector<Sample> out;
  usize end = std::min(cursor_.load(std::memory_order_acquire), arena_.size());
  usize at = 0;
  while (at + 2 <= end) {
    Sample s;
    s.tid = arena_[at];
    s.depth = static_cast<u16>(arena_[at + 1]);
    if (at + 2 + s.depth > end) break;  // partially-reserved tail record
    s.frames = arena_.data() + at + 2;
    out.push_back(s);
    at += 2 + s.depth;
  }
  return out;
}

namespace {

std::vector<std::pair<u64, usize>> sorted_counts(
    const std::unordered_map<u64, usize>& counts) {
  std::vector<std::pair<u64, usize>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace

std::vector<std::pair<u64, usize>> SamplingProfiler::leaf_counts() const {
  std::unordered_map<u64, usize> counts;
  for (const Sample& s : samples()) {
    if (s.depth > 0) ++counts[s.frames[s.depth - 1]];
  }
  return sorted_counts(counts);
}

std::vector<std::pair<u64, usize>> SamplingProfiler::inclusive_counts() const {
  std::unordered_map<u64, usize> counts;
  for (const Sample& s : samples()) {
    // A frame appearing twice (recursion) still counts once per sample.
    for (u16 i = 0; i < s.depth; ++i) {
      bool seen = false;
      for (u16 j = 0; j < i; ++j) {
        if (s.frames[j] == s.frames[i]) {
          seen = true;
          break;
        }
      }
      if (!seen) ++counts[s.frames[i]];
    }
  }
  return sorted_counts(counts);
}

}  // namespace teeperf::perfsim

namespace teeperf::perfsim {

std::vector<std::pair<std::string, u64>> SamplingProfiler::folded_stacks(
    const std::function<std::string(u64)>& name_of) const {
  std::unordered_map<std::string, u64> folded;
  for (const Sample& s : samples()) {
    if (s.depth == 0) continue;
    std::string path;
    for (u16 i = 0; i < s.depth; ++i) {
      if (i) path += ';';
      path += name_of(s.frames[i]);
    }
    ++folded[path];
  }
  std::vector<std::pair<std::string, u64>> out(folded.begin(), folded.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace teeperf::perfsim

namespace teeperf::perfsim {

std::string SamplingProfiler::flat_report(
    const std::function<std::string(u64)>& name_of, usize limit) const {
  auto leaves = leaf_counts();
  usize total = 0;
  for (auto& [id, n] : leaves) total += n;
  std::string out = "Samples: " + std::to_string(sample_count()) + " (" +
                    std::to_string(dropped()) + " dropped)\n";
  char line[256];
  std::snprintf(line, sizeof line, "%8s %8s  %s\n", "overhead", "samples",
                "symbol");
  out += line;
  usize shown = 0;
  for (auto& [id, n] : leaves) {
    if (shown++ >= limit) break;
    double pct = total ? 100.0 * static_cast<double>(n) /
                             static_cast<double>(total)
                       : 0;
    std::snprintf(line, sizeof line, "%7.2f%% %8zu  %s\n", pct, n,
                  name_of(id).c_str());
    out += line;
  }
  return out;
}

}  // namespace teeperf::perfsim
