// The Linux-perf stand-in (see DESIGN.md substitutions).
//
// Linux perf interrupts the application at a fixed frequency and records
// the instruction pointer / user-space call stack of whatever is running.
// This baseline reproduces that cost and measurement model with a
// POSIX-portable mechanism: ITIMER_PROF fires SIGPROF at `frequency_hz`
// (delivered to a currently-running thread), and the async-signal-safe
// handler snapshots that thread's shadow stack into a preallocated sample
// buffer. Per-sample cost (signal delivery + stack copy) is real, exactly
// like perf's "context switches to sample the data periodically" (§IV-B).
//
// The design also reproduces perf's weakness the paper calls out in the
// abstract: *sampling frequency bias* — threads whose phases align with the
// sampling period are systematically mis-measured (ablation A3).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace teeperf::perfsim {

struct SamplerOptions {
  u64 frequency_hz = 997;   // prime, like perf's default 997/999 trick
  usize max_samples = 1u << 20;
  int max_depth = 64;       // frames captured per sample
};

// A captured sample: the stack bottom→top at the interrupt.
struct Sample {
  u64 tid = 0;
  u16 depth = 0;
  const u64* frames = nullptr;  // points into the profiler's frame arena
};

class SamplingProfiler {
 public:
  explicit SamplingProfiler(const SamplerOptions& options = {});
  ~SamplingProfiler();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  // Installs the SIGPROF handler and arms the profiling timer. Only one
  // SamplingProfiler may run per process at a time (signal disposition is
  // process-global); start returns false if another is active.
  bool start();
  void stop();
  bool running() const;

  usize sample_count() const;
  // Samples dropped because the buffer was full.
  usize dropped() const;
  // Decoded view of the captured samples. Valid until the profiler dies.
  std::vector<Sample> samples() const;

  // Leaf-frame counts: method id → samples where it was on top — the
  // flat-profile view perf report gives. Pairs sorted by count descending.
  std::vector<std::pair<u64, usize>> leaf_counts() const;
  // Inclusive counts: method id → samples where it was anywhere on stack.
  std::vector<std::pair<u64, usize>> inclusive_counts() const;

  // perf-report-style flat profile text: overhead%, samples, symbol.
  std::string flat_report(const std::function<std::string(u64)>& name_of,
                          usize limit = 20) const;

  // Folded stacks (path → sample count) for flame-graphing a *sampled*
  // profile — what `perf script | stackcollapse` produces. `name_of`
  // resolves frame ids (e.g. SymbolRegistry lookup).
  std::vector<std::pair<std::string, u64>> folded_stacks(
      const std::function<std::string(u64)>& name_of) const;

 private:
  friend void sigprof_handler(int);

  SamplerOptions options_;
  // Sample records packed as [tid, depth, frame0..frame{depth-1}] in a
  // preallocated arena; `cursor_` reserves via fetch_add (signal-safe).
  std::vector<u64> arena_;
  std::atomic<usize> cursor_{0};
  std::atomic<usize> count_{0};
  std::atomic<usize> dropped_{0};
  bool running_ = false;
};

}  // namespace teeperf::perfsim
