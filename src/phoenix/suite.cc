// Uniform wrappers over the seven kernels for the Figure 4 harness.
// Default sizes are tuned so that a scale=1 run takes tens of milliseconds
// on a small machine; the harness scales them up for stable measurements.
#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

class HistogramBench : public PhoenixBenchmark {
 public:
  std::string_view name() const override { return "histogram"; }
  void prepare(const SuiteParams& p) override {
    in_ = gen_histogram(2'000'000 * p.scale, p.seed);
  }
  u64 run(usize threads) override { return run_histogram(in_, threads).checksum(); }
  u64 approx_calls() const override { return in_.pixels.size() / 3 / 256; }

 private:
  HistogramInput in_;
};

class LinRegBench : public PhoenixBenchmark {
 public:
  std::string_view name() const override { return "linear_regression"; }
  void prepare(const SuiteParams& p) override {
    in_ = gen_linreg(8'000'000 * p.scale, p.seed);
  }
  u64 run(usize threads) override { return run_linreg(in_, threads).checksum(); }
  u64 approx_calls() const override { return 8; }

 private:
  LinRegInput in_;
};

class StringMatchBench : public PhoenixBenchmark {
 public:
  std::string_view name() const override { return "string_match"; }
  void prepare(const SuiteParams& p) override {
    in_ = gen_string_match(900'000 * p.scale, p.seed);
  }
  u64 run(usize threads) override { return run_string_match(in_, threads).checksum(); }
  u64 approx_calls() const override { return in_.words.size(); }

 private:
  StringMatchInput in_;
};

class WordCountBench : public PhoenixBenchmark {
 public:
  std::string_view name() const override { return "word_count"; }
  void prepare(const SuiteParams& p) override {
    in_ = gen_word_count(300'000 * p.scale, p.seed);
  }
  u64 run(usize threads) override { return run_word_count(in_, threads).checksum(); }
  // One count_word call per word plus one count_line per 8 words.
  u64 approx_calls() const override { return 300'000 + 300'000 / 8; }

 private:
  WordCountInput in_;
};

class MatMulBench : public PhoenixBenchmark {
 public:
  std::string_view name() const override { return "matrix_multiply"; }
  void prepare(const SuiteParams& p) override {
    in_ = gen_matmul(256 + 64 * p.scale, p.seed);
  }
  u64 run(usize threads) override { return run_matmul(in_, threads).checksum(); }
  u64 approx_calls() const override { return in_.n; }

 private:
  MatMulInput in_;
};

class KmeansBench : public PhoenixBenchmark {
 public:
  std::string_view name() const override { return "kmeans"; }
  void prepare(const SuiteParams& p) override {
    in_ = gen_kmeans(50'000 * p.scale, 4, 8, p.seed);
  }
  u64 run(usize threads) override { return run_kmeans(in_, threads).checksum(); }
  u64 approx_calls() const override {
    return (in_.dim ? in_.points.size() / in_.dim : 0) * 10;
  }

 private:
  KmeansInput in_;
};

class PcaBench : public PhoenixBenchmark {
 public:
  std::string_view name() const override { return "pca"; }
  void prepare(const SuiteParams& p) override {
    in_ = gen_pca(2000 * p.scale, 64, p.seed);
  }
  u64 run(usize threads) override { return run_pca(in_, threads).checksum(); }
  u64 approx_calls() const override { return in_.rows * 2; }

 private:
  PcaInput in_;
};

class ReverseIndexBench : public PhoenixBenchmark {
 public:
  std::string_view name() const override { return "reverse_index"; }
  void prepare(const SuiteParams& p) override {
    in_ = gen_reverse_index(4'000 * p.scale, 20, p.seed);
  }
  u64 run(usize threads) override { return run_reverse_index(in_, threads).checksum(); }
  u64 approx_calls() const override { return in_.documents.size(); }

 private:
  ReverseIndexInput in_;
};

}  // namespace

std::vector<std::string> suite_names() {
  // Figure 4's x-axis order, then the three extra kernels.
  return {"matrix_multiply", "word_count", "string_match",
          "linear_regression", "histogram", "kmeans", "pca", "reverse_index"};
}

std::unique_ptr<PhoenixBenchmark> make_benchmark(std::string_view name) {
  if (name == "histogram") return std::make_unique<HistogramBench>();
  if (name == "linear_regression") return std::make_unique<LinRegBench>();
  if (name == "string_match") return std::make_unique<StringMatchBench>();
  if (name == "word_count") return std::make_unique<WordCountBench>();
  if (name == "matrix_multiply") return std::make_unique<MatMulBench>();
  if (name == "kmeans") return std::make_unique<KmeansBench>();
  if (name == "pca") return std::make_unique<PcaBench>();
  if (name == "reverse_index") return std::make_unique<ReverseIndexBench>();
  return nullptr;
}

}  // namespace teeperf::phoenix
