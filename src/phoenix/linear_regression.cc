// Phoenix linear_regression: least-squares fit over (x, y) points.
// Call density: one scoped call per worker chunk — the whole kernel is a
// single tight accumulation loop. This is the paper's best case for
// TEE-Perf (≈0.92× vs perf): the injected code almost never runs, while
// perf still pays its periodic sampling interrupts.
#include "common/rng.h"
#include "core/scope.h"
#include "phoenix/parallel.h"
#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

struct Sums {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  u64 n = 0;
};

Sums accumulate_chunk(const i32* xs, const i32* ys, usize n) {
  TEEPERF_SCOPE("phoenix::linear_regression::accumulate_chunk");
  Sums s;
  for (usize i = 0; i < n; ++i) {
    double x = xs[i], y = ys[i];
    s.sx += x;
    s.sy += y;
    s.sxx += x * x;
    s.sxy += x * y;
  }
  s.n = n;
  return s;
}

}  // namespace

u64 LinRegResult::checksum() const {
  return static_cast<u64>(slope * 1e6) ^ (static_cast<u64>(intercept * 1e6) << 1) ^ n;
}

LinRegInput gen_linreg(usize points, u64 seed) {
  LinRegInput in;
  in.xs.resize(points);
  in.ys.resize(points);
  Xorshift64 rng(seed);
  for (usize i = 0; i < points; ++i) {
    i32 x = static_cast<i32>(rng.next_below(4096));
    // y = 3x + 7 + noise, so the fit has a known answer.
    i32 noise = static_cast<i32>(rng.next_below(64)) - 32;
    in.xs[i] = x;
    in.ys[i] = 3 * x + 7 + noise;
  }
  return in;
}

LinRegResult run_linreg(const LinRegInput& in, usize threads) {
  TEEPERF_SCOPE("phoenix::linear_regression");
  std::vector<Sums> partial(threads ? threads : 1);
  parallel_chunks(in.xs.size(), threads, [&](usize worker, usize begin, usize end) {
    partial[worker] = accumulate_chunk(in.xs.data() + begin, in.ys.data() + begin,
                                       end - begin);
  });

  Sums total;
  for (const Sums& s : partial) {
    total.sx += s.sx;
    total.sy += s.sy;
    total.sxx += s.sxx;
    total.sxy += s.sxy;
    total.n += s.n;
  }

  LinRegResult out;
  out.n = total.n;
  double n = static_cast<double>(total.n);
  double denom = n * total.sxx - total.sx * total.sx;
  if (denom != 0) {
    out.slope = (n * total.sxy - total.sx * total.sy) / denom;
    out.intercept = (total.sy - out.slope * total.sx) / n;
  }
  return out;
}

}  // namespace teeperf::phoenix
