// Reimplementation of the Phoenix 2.0 multithreaded benchmark kernels
// (Ranger et al., HPCA'07) used by the paper's Figure 4 evaluation:
// histogram, kmeans, linear_regression, matrix_multiply, pca, string_match
// and word_count.
//
// What matters for reproducing Figure 4 is each kernel's *call density* —
// how much work it does per function call — because TEE-Perf's overhead is
// per call/return while perf's is per sample:
//   - string_match calls a tiny encrypt+compare helper once per word
//     (the paper's worst case, 5.7× vs perf);
//   - linear_regression is one tight loop per thread with almost no calls
//     (the paper's best case, ~0.92× — faster than perf);
//   - the rest sit in between (per-row / per-token / per-point helpers).
// The hot helpers carry TEEPERF scopes, which emit exactly the log entries
// the compiler route would; threading follows Phoenix's map/reduce chunking.
//
// Every kernel returns a checksum so tests can verify sequential vs
// threaded equivalence and known closed-form results.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace teeperf::phoenix {

// ---- histogram -------------------------------------------------------------
struct HistogramInput {
  std::vector<u8> pixels;  // interleaved RGB
};
struct HistogramResult {
  std::array<u64, 256> r{}, g{}, b{};
  u64 checksum() const;
};
HistogramInput gen_histogram(usize pixel_count, u64 seed);
HistogramResult run_histogram(const HistogramInput& in, usize threads);

// ---- linear_regression -----------------------------------------------------
struct LinRegInput {
  std::vector<i32> xs, ys;
};
struct LinRegResult {
  double slope = 0, intercept = 0;
  u64 n = 0;
  u64 checksum() const;
};
LinRegInput gen_linreg(usize points, u64 seed);
LinRegResult run_linreg(const LinRegInput& in, usize threads);

// ---- string_match ----------------------------------------------------------
struct StringMatchInput {
  std::vector<std::string> words;
  std::array<std::string, 4> keys;  // Phoenix matches 4 fixed keys
};
struct StringMatchResult {
  u64 matches = 0;
  u64 words_scanned = 0;
  u64 checksum() const;
};
StringMatchInput gen_string_match(usize word_count, u64 seed);
StringMatchResult run_string_match(const StringMatchInput& in, usize threads);

// ---- word_count ------------------------------------------------------------
struct WordCountInput {
  std::string text;  // whitespace-separated words
};
struct WordCountResult {
  u64 total_words = 0;
  u64 distinct_words = 0;
  std::vector<std::pair<std::string, u64>> top;  // 10 most frequent
  u64 checksum() const;
};
WordCountInput gen_word_count(usize word_count, u64 seed);
WordCountResult run_word_count(const WordCountInput& in, usize threads);

// ---- matrix_multiply -------------------------------------------------------
struct MatMulInput {
  usize n = 0;
  std::vector<i32> a, b;  // row-major n×n
};
struct MatMulResult {
  u64 checksum_value = 0;  // sum of all cells of C (mod 2^64)
  u64 checksum() const { return checksum_value; }
};
MatMulInput gen_matmul(usize n, u64 seed);
MatMulResult run_matmul(const MatMulInput& in, usize threads);

// ---- kmeans ----------------------------------------------------------------
struct KmeansInput {
  usize dim = 0, k = 0;
  std::vector<double> points;  // row-major point×dim
};
struct KmeansResult {
  std::vector<double> centroids;  // k×dim
  u64 iterations = 0;
  u64 checksum() const;
};
KmeansInput gen_kmeans(usize points, usize dim, usize k, u64 seed);
KmeansResult run_kmeans(const KmeansInput& in, usize threads, usize max_iters = 10);

// ---- pca -------------------------------------------------------------------
struct PcaInput {
  usize rows = 0, cols = 0;
  std::vector<double> data;  // row-major
};
struct PcaResult {
  std::vector<double> mean;      // per column
  std::vector<double> cov;       // cols×cols covariance matrix
  u64 checksum() const;
};
PcaInput gen_pca(usize rows, usize cols, u64 seed);
PcaResult run_pca(const PcaInput& in, usize threads);

// ---- reverse_index -----------------------------------------------------------
struct ReverseIndexInput {
  std::vector<std::string> documents;  // synthetic HTML with href="..." links
};
struct ReverseIndexResult {
  u64 total_links = 0;
  u64 distinct_targets = 0;
  std::vector<std::pair<std::string, u64>> top;  // 10 most-linked targets
  u64 checksum() const;
};
ReverseIndexInput gen_reverse_index(usize docs, usize links_per_doc, u64 seed);
ReverseIndexResult run_reverse_index(const ReverseIndexInput& in, usize threads);

// ---- suite wrapper ----------------------------------------------------------
// Uniform interface for the Figure 4 harness and tests: prepare generates
// the (scaled) input once; run executes the kernel and returns its checksum.
struct SuiteParams {
  usize scale = 1;  // multiplies the default input size
  u64 seed = 42;
  usize threads = 4;
};

class PhoenixBenchmark {
 public:
  virtual ~PhoenixBenchmark() = default;
  virtual std::string_view name() const = 0;
  virtual void prepare(const SuiteParams& params) = 0;
  virtual u64 run(usize threads) = 0;
  // Approximate dynamic function-call count of one run (scoped helpers
  // only); lets tests assert the call-density ordering Figure 4 relies on.
  virtual u64 approx_calls() const = 0;
};

// The five Figure 4 kernels, in the figure's order, then kmeans and pca.
std::vector<std::string> suite_names();
std::unique_ptr<PhoenixBenchmark> make_benchmark(std::string_view name);

}  // namespace teeperf::phoenix
