// Phoenix string_match: "encrypt" every word of a wordlist and compare it
// against four encrypted keys. Call density: one scoped helper per *word*
// with only a few bytes of work inside — the paper's worst case for
// TEE-Perf (5.7× vs perf), because the injected enter/exit code runs tens
// of millions of times while the useful work per call is tiny.
#include <cstring>

#include "common/rng.h"
#include "core/scope.h"
#include "phoenix/parallel.h"
#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

// Phoenix's toy "encryption": a keyed byte rotation.
inline void encrypt_word(const char* in, usize n, char* out) {
  for (usize i = 0; i < n; ++i) out[i] = static_cast<char>((in[i] + 5) ^ 0x2a);
}

// The per-word unit: encrypt, then compare against the 4 encrypted keys.
bool match_word(const std::string& word,
                const std::array<std::string, 4>& encrypted_keys) {
  TEEPERF_SCOPE("phoenix::string_match::match_word");
  char buf[64];
  usize n = word.size() < sizeof buf ? word.size() : sizeof buf;
  encrypt_word(word.data(), n, buf);
  for (const std::string& key : encrypted_keys) {
    if (key.size() == n && std::memcmp(key.data(), buf, n) == 0) return true;
  }
  return false;
}

}  // namespace

u64 StringMatchResult::checksum() const { return matches * 2654435761ull ^ words_scanned; }

StringMatchInput gen_string_match(usize word_count, u64 seed) {
  StringMatchInput in;
  in.keys = {"key0match", "abcdefgh", "zyxwvuts", "qqqqqq"};
  in.words.reserve(word_count);
  Xorshift64 rng(seed);
  for (usize i = 0; i < word_count; ++i) {
    // ~1 in 512 words is one of the keys, so matches exist but are rare.
    if (rng.next_below(512) == 0) {
      in.words.push_back(in.keys[rng.next_below(4)]);
    } else {
      in.words.push_back(rng.next_word(3 + rng.next_below(8)));
    }
  }
  return in;
}

StringMatchResult run_string_match(const StringMatchInput& in, usize threads) {
  TEEPERF_SCOPE("phoenix::string_match");

  std::array<std::string, 4> encrypted;
  for (usize k = 0; k < 4; ++k) {
    encrypted[k].resize(in.keys[k].size());
    encrypt_word(in.keys[k].data(), in.keys[k].size(), encrypted[k].data());
  }

  std::vector<u64> matches(threads ? threads : 1, 0);
  parallel_chunks(in.words.size(), threads, [&](usize worker, usize begin, usize end) {
    TEEPERF_SCOPE("phoenix::string_match::map_worker");
    u64 local = 0;
    for (usize i = begin; i < end; ++i) {
      if (match_word(in.words[i], encrypted)) ++local;
    }
    matches[worker] = local;
  });

  StringMatchResult out;
  out.words_scanned = in.words.size();
  for (u64 m : matches) out.matches += m;
  return out;
}

}  // namespace teeperf::phoenix
