// Phoenix kmeans: Lloyd's iterations over d-dimensional points.
// Call density: one scoped helper per point per iteration (distance scan
// over k centroids inside) — medium-high.
#include <cmath>

#include "common/rng.h"
#include "core/scope.h"
#include "phoenix/parallel.h"
#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

// Nearest-centroid assignment for one point: the per-call unit.
usize assign_point(const double* p, const double* centroids, usize k, usize dim) {
  TEEPERF_SCOPE("phoenix::kmeans::assign_point");
  usize best = 0;
  double best_d = 1e300;
  for (usize c = 0; c < k; ++c) {
    double d = 0;
    for (usize j = 0; j < dim; ++j) {
      double diff = p[j] - centroids[c * dim + j];
      d += diff * diff;
    }
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace

u64 KmeansResult::checksum() const {
  u64 c = iterations;
  for (double v : centroids) c = c * 31 + static_cast<u64>(std::llround(v * 1000.0));
  return c;
}

KmeansInput gen_kmeans(usize points, usize dim, usize k, u64 seed) {
  KmeansInput in;
  in.dim = dim;
  in.k = k;
  in.points.resize(points * dim);
  Xorshift64 rng(seed);
  // Points drawn around k well-separated true centers so iterations converge.
  for (usize p = 0; p < points; ++p) {
    usize center = rng.next_below(k);
    for (usize j = 0; j < dim; ++j) {
      in.points[p * dim + j] =
          static_cast<double>(center * 100 + j) + rng.next_double() * 10.0;
    }
  }
  return in;
}

KmeansResult run_kmeans(const KmeansInput& in, usize threads, usize max_iters) {
  TEEPERF_SCOPE("phoenix::kmeans");
  usize n = in.dim ? in.points.size() / in.dim : 0;
  usize k = in.k, dim = in.dim;
  if (n == 0 || k == 0) return {};

  std::vector<double> centroids(k * dim);
  for (usize c = 0; c < k; ++c) {
    for (usize j = 0; j < dim; ++j) centroids[c * dim + j] = in.points[c * dim + j];
  }

  std::vector<usize> assign(n, 0);
  usize workers = threads ? threads : 1;
  KmeansResult out;

  for (usize iter = 0; iter < max_iters; ++iter) {
    std::vector<u64> changed(workers, 0);
    parallel_chunks(n, threads, [&](usize worker, usize begin, usize end) {
      TEEPERF_SCOPE("phoenix::kmeans::map_worker");
      u64 local_changed = 0;
      for (usize p = begin; p < end; ++p) {
        usize c = assign_point(in.points.data() + p * dim, centroids.data(), k, dim);
        if (c != assign[p]) {
          assign[p] = c;
          ++local_changed;
        }
      }
      changed[worker] = local_changed;
    });
    ++out.iterations;

    // Reduce: recompute centroids.
    TEEPERF_SCOPE("phoenix::kmeans::update_centroids");
    std::vector<double> sums(k * dim, 0.0);
    std::vector<u64> counts(k, 0);
    for (usize p = 0; p < n; ++p) {
      usize c = assign[p];
      ++counts[c];
      for (usize j = 0; j < dim; ++j) sums[c * dim + j] += in.points[p * dim + j];
    }
    for (usize c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (usize j = 0; j < dim; ++j) {
        centroids[c * dim + j] = sums[c * dim + j] / static_cast<double>(counts[c]);
      }
    }

    u64 total_changed = 0;
    for (u64 ch : changed) total_changed += ch;
    if (total_changed == 0) break;
  }

  out.centroids = std::move(centroids);
  return out;
}

}  // namespace teeperf::phoenix
