// Phoenix word_count: count word frequencies, report the top 10.
// Call density: one scoped helper per line (~8 words) — between
// string_match (per word) and histogram (per 1024-pixel row).
#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "core/scope.h"
#include "phoenix/parallel.h"
#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

constexpr usize kWordsPerLine = 8;

using Counts = std::unordered_map<std::string, u64>;

// Insert one token into the counts — mirrors Phoenix's per-word insert into
// its sorted key list, which compiler instrumentation would hit per word.
void count_word(std::string_view word, Counts& counts) {
  TEEPERF_SCOPE("phoenix::word_count::count_word");
  ++counts[std::string(word)];
}

// Tokenize one "line" of text.
void count_line(std::string_view line, Counts& counts) {
  TEEPERF_SCOPE("phoenix::word_count::count_line");
  usize i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    usize start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) count_word(line.substr(start, i - start), counts);
  }
}

}  // namespace

u64 WordCountResult::checksum() const {
  u64 c = total_words * 31 + distinct_words;
  for (const auto& [w, n] : top) {
    for (char ch : w) c = c * 131 + static_cast<u8>(ch);
    c = c * 31 + n;
  }
  return c;
}

WordCountInput gen_word_count(usize word_count, u64 seed) {
  // A zipf-ish vocabulary: common words short and frequent.
  Xorshift64 rng(seed);
  std::vector<std::string> vocab;
  for (usize i = 0; i < 512; ++i) vocab.push_back(rng.next_word(3 + i % 8));

  WordCountInput in;
  in.text.reserve(word_count * 8);
  SkewedPicker picker(vocab.size(), 2.0, seed ^ 0xabcdef);
  for (usize i = 0; i < word_count; ++i) {
    in.text += vocab[picker.next()];
    in.text += (i + 1) % kWordsPerLine == 0 ? '\n' : ' ';
  }
  return in;
}

WordCountResult run_word_count(const WordCountInput& in, usize threads) {
  TEEPERF_SCOPE("phoenix::word_count");
  if (threads == 0) threads = 1;

  // Split the text at line boundaries into one region per worker.
  std::vector<std::string_view> lines;
  for (std::string_view line :
       [&] {
         std::vector<std::string_view> out;
         usize start = 0;
         for (usize i = 0; i <= in.text.size(); ++i) {
           if (i == in.text.size() || in.text[i] == '\n') {
             if (i > start) out.push_back(std::string_view(in.text).substr(start, i - start));
             start = i + 1;
           }
         }
         return out;
       }()) {
    lines.push_back(line);
  }

  std::vector<Counts> locals(threads);
  parallel_chunks(lines.size(), threads, [&](usize worker, usize begin, usize end) {
    TEEPERF_SCOPE("phoenix::word_count::map_worker");
    for (usize i = begin; i < end; ++i) count_line(lines[i], locals[worker]);
  });

  TEEPERF_SCOPE("phoenix::word_count::reduce");
  Counts merged;
  u64 total = 0;
  for (Counts& c : locals) {
    for (auto& [w, n] : c) {
      merged[w] += n;
      total += n;
    }
  }

  WordCountResult out;
  out.total_words = total;
  out.distinct_words = merged.size();
  std::vector<std::pair<std::string, u64>> all(merged.begin(), merged.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (all.size() > 10) all.resize(10);
  out.top = std::move(all);
  return out;
}

}  // namespace teeperf::phoenix
