// Phoenix matrix_multiply: C = A·B for dense n×n integer matrices.
// Call density: one scoped helper per output row — n calls carrying O(n²)
// work each, so instrumentation overhead is low.
#include "common/rng.h"
#include "core/scope.h"
#include "phoenix/parallel.h"
#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

u64 multiply_row(const i32* a_row, const i32* b, usize n, i32* c_row) {
  TEEPERF_SCOPE("phoenix::matrix_multiply::multiply_row");
  u64 sum = 0;
  for (usize j = 0; j < n; ++j) {
    i64 acc = 0;
    for (usize k = 0; k < n; ++k) {
      acc += static_cast<i64>(a_row[k]) * static_cast<i64>(b[k * n + j]);
    }
    c_row[j] = static_cast<i32>(acc);
    sum += static_cast<u64>(acc);
  }
  return sum;
}

}  // namespace

MatMulInput gen_matmul(usize n, u64 seed) {
  MatMulInput in;
  in.n = n;
  in.a.resize(n * n);
  in.b.resize(n * n);
  Xorshift64 rng(seed);
  for (auto& v : in.a) v = static_cast<i32>(rng.next_below(100));
  for (auto& v : in.b) v = static_cast<i32>(rng.next_below(100));
  return in;
}

MatMulResult run_matmul(const MatMulInput& in, usize threads) {
  TEEPERF_SCOPE("phoenix::matrix_multiply");
  usize n = in.n;
  std::vector<i32> c(n * n);
  std::vector<u64> partial(threads ? threads : 1, 0);

  parallel_chunks(n, threads, [&](usize worker, usize begin, usize end) {
    TEEPERF_SCOPE("phoenix::matrix_multiply::map_worker");
    u64 local = 0;
    for (usize i = begin; i < end; ++i) {
      local += multiply_row(in.a.data() + i * n, in.b.data(), n, c.data() + i * n);
    }
    partial[worker] = local;
  });

  MatMulResult out;
  for (u64 p : partial) out.checksum_value += p;
  return out;
}

}  // namespace teeperf::phoenix
