// Phoenix reverse_index: extract links from a corpus of (synthetic) HTML
// documents and build the inverted index target → list of documents.
// Call density: one scoped helper per document — moderate.
#include <algorithm>
#include <map>

#include "common/rng.h"
#include "core/scope.h"
#include "phoenix/parallel.h"
#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

// Extracts every href="..." target from one document: the per-call unit.
void extract_links(std::string_view doc, usize doc_id,
                   std::map<std::string, std::vector<usize>>& index) {
  TEEPERF_SCOPE("phoenix::reverse_index::extract_links");
  constexpr std::string_view kNeedle = "href=\"";
  usize pos = 0;
  while ((pos = doc.find(kNeedle, pos)) != std::string_view::npos) {
    pos += kNeedle.size();
    usize end = doc.find('"', pos);
    if (end == std::string_view::npos) break;
    index[std::string(doc.substr(pos, end - pos))].push_back(doc_id);
    pos = end + 1;
  }
}

}  // namespace

u64 ReverseIndexResult::checksum() const {
  u64 c = total_links * 31 + distinct_targets;
  for (const auto& [target, docs] : top) {
    for (char ch : target) c = c * 131 + static_cast<u8>(ch);
    c = c * 31 + docs;
  }
  return c;
}

ReverseIndexInput gen_reverse_index(usize docs, usize links_per_doc, u64 seed) {
  ReverseIndexInput in;
  Xorshift64 rng(seed);
  // A shared pool of link targets so documents genuinely cross-reference.
  std::vector<std::string> targets;
  for (usize i = 0; i < 256; ++i) {
    targets.push_back(rng.next_word(6) + ".html");
  }
  in.documents.reserve(docs);
  SkewedPicker picker(targets.size(), 1.5, seed ^ 0x51ab);
  for (usize d = 0; d < docs; ++d) {
    std::string doc = "<html><body>";
    for (usize l = 0; l < links_per_doc; ++l) {
      doc += "<p>" + rng.next_word(8) + " <a href=\"" + targets[picker.next()] +
             "\">link</a></p>";
    }
    doc += "</body></html>";
    in.documents.push_back(std::move(doc));
  }
  return in;
}

ReverseIndexResult run_reverse_index(const ReverseIndexInput& in, usize threads) {
  TEEPERF_SCOPE("phoenix::reverse_index");
  usize workers = threads ? threads : 1;
  std::vector<std::map<std::string, std::vector<usize>>> locals(workers);

  parallel_chunks(in.documents.size(), threads,
                  [&](usize worker, usize begin, usize end) {
                    TEEPERF_SCOPE("phoenix::reverse_index::map_worker");
                    for (usize d = begin; d < end; ++d) {
                      extract_links(in.documents[d], d, locals[worker]);
                    }
                  });

  TEEPERF_SCOPE("phoenix::reverse_index::reduce");
  std::map<std::string, std::vector<usize>> merged;
  ReverseIndexResult out;
  for (auto& local : locals) {
    for (auto& [target, docs] : local) {
      auto& list = merged[target];
      list.insert(list.end(), docs.begin(), docs.end());
    }
  }
  for (auto& [target, docs] : merged) {
    std::sort(docs.begin(), docs.end());
    out.total_links += docs.size();
  }
  out.distinct_targets = merged.size();

  std::vector<std::pair<std::string, u64>> ranked;
  for (auto& [target, docs] : merged) ranked.emplace_back(target, docs.size());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (ranked.size() > 10) ranked.resize(10);
  out.top = std::move(ranked);
  return out;
}

}  // namespace teeperf::phoenix
