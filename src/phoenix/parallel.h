// Phoenix-style chunked fork/join: split [0, total) into one contiguous
// chunk per worker, run them on std::threads, join. Matches the original
// suite's static partitioning (each map worker owns a slice of the input).
#pragma once

#include <thread>
#include <vector>

#include "common/types.h"

namespace teeperf::phoenix {

// fn(worker_index, begin, end) — called once per worker; worker 0 runs on
// the calling thread so single-threaded runs spawn nothing.
template <typename F>
void parallel_chunks(usize total, usize threads, F&& fn) {
  if (threads == 0) threads = 1;
  if (threads > total && total > 0) threads = total;
  usize chunk = threads ? (total + threads - 1) / threads : 0;

  std::vector<std::thread> workers;
  workers.reserve(threads > 0 ? threads - 1 : 0);
  for (usize t = 1; t < threads; ++t) {
    usize begin = t * chunk;
    usize end = begin + chunk < total ? begin + chunk : total;
    if (begin >= end) break;
    workers.emplace_back([&fn, t, begin, end] { fn(t, begin, end); });
  }
  if (total > 0) fn(0, 0, chunk < total ? chunk : total);
  for (auto& w : workers) w.join();
}

}  // namespace teeperf::phoenix
