// Phoenix pca: column means and the covariance matrix of a dense matrix
// (the original suite computes exactly these two passes).
// Call density: one scoped helper per row per pass — medium.
#include <cmath>

#include "common/rng.h"
#include "core/scope.h"
#include "phoenix/parallel.h"
#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

void sum_row(const double* row, usize cols, double* acc) {
  TEEPERF_SCOPE("phoenix::pca::sum_row");
  for (usize j = 0; j < cols; ++j) acc[j] += row[j];
}

void cov_row(const double* row, const double* mean, usize cols, double* acc) {
  TEEPERF_SCOPE("phoenix::pca::cov_row");
  for (usize a = 0; a < cols; ++a) {
    double da = row[a] - mean[a];
    for (usize b = a; b < cols; ++b) acc[a * cols + b] += da * (row[b] - mean[b]);
  }
}

}  // namespace

u64 PcaResult::checksum() const {
  u64 c = 0;
  for (double v : mean) c = c * 31 + static_cast<u64>(std::llround(v * 1000.0));
  for (double v : cov) c = c * 31 + static_cast<u64>(std::llround(v * 100.0));
  return c;
}

PcaInput gen_pca(usize rows, usize cols, u64 seed) {
  PcaInput in;
  in.rows = rows;
  in.cols = cols;
  in.data.resize(rows * cols);
  Xorshift64 rng(seed);
  for (auto& v : in.data) v = rng.next_double() * 100.0;
  return in;
}

PcaResult run_pca(const PcaInput& in, usize threads) {
  TEEPERF_SCOPE("phoenix::pca");
  usize rows = in.rows, cols = in.cols;
  usize workers = threads ? threads : 1;

  // Pass 1: column means.
  std::vector<std::vector<double>> partial_sum(workers, std::vector<double>(cols, 0.0));
  parallel_chunks(rows, threads, [&](usize worker, usize begin, usize end) {
    TEEPERF_SCOPE("phoenix::pca::mean_worker");
    for (usize r = begin; r < end; ++r) {
      sum_row(in.data.data() + r * cols, cols, partial_sum[worker].data());
    }
  });
  std::vector<double> mean(cols, 0.0);
  for (const auto& p : partial_sum) {
    for (usize j = 0; j < cols; ++j) mean[j] += p[j];
  }
  for (usize j = 0; j < cols; ++j) mean[j] /= static_cast<double>(rows ? rows : 1);

  // Pass 2: covariance (upper triangle accumulated, mirrored at the end).
  std::vector<std::vector<double>> partial_cov(workers,
                                               std::vector<double>(cols * cols, 0.0));
  parallel_chunks(rows, threads, [&](usize worker, usize begin, usize end) {
    TEEPERF_SCOPE("phoenix::pca::cov_worker");
    for (usize r = begin; r < end; ++r) {
      cov_row(in.data.data() + r * cols, mean.data(), cols, partial_cov[worker].data());
    }
  });

  PcaResult out;
  out.mean = std::move(mean);
  out.cov.assign(cols * cols, 0.0);
  for (const auto& p : partial_cov) {
    for (usize i = 0; i < cols * cols; ++i) out.cov[i] += p[i];
  }
  double denom = rows > 1 ? static_cast<double>(rows - 1) : 1.0;
  for (usize a = 0; a < cols; ++a) {
    for (usize b = a; b < cols; ++b) {
      out.cov[a * cols + b] /= denom;
      out.cov[b * cols + a] = out.cov[a * cols + b];
    }
  }
  return out;
}

}  // namespace teeperf::phoenix
