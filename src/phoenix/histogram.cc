// Phoenix histogram: bucket the R/G/B channels of a bitmap into 3×256 bins.
// Call density: one scoped helper per row of 256 pixels — moderate.
#include <array>

#include "common/rng.h"
#include "core/scope.h"
#include "phoenix/parallel.h"
#include "phoenix/phoenix.h"

namespace teeperf::phoenix {
namespace {

constexpr usize kRowPixels = 256;

struct LocalHist {
  std::array<u64, 256> r{}, g{}, b{};
};

// One "row" of the bitmap: the per-call unit of work.
void accumulate_row(const u8* px, usize pixels, LocalHist& h) {
  TEEPERF_SCOPE("phoenix::histogram::accumulate_row");
  for (usize i = 0; i < pixels; ++i) {
    ++h.r[px[i * 3 + 0]];
    ++h.g[px[i * 3 + 1]];
    ++h.b[px[i * 3 + 2]];
  }
}

}  // namespace

u64 HistogramResult::checksum() const {
  u64 c = 0;
  for (usize i = 0; i < 256; ++i) {
    c = c * 31 + r[i];
    c = c * 31 + g[i];
    c = c * 31 + b[i];
  }
  return c;
}

HistogramInput gen_histogram(usize pixel_count, u64 seed) {
  HistogramInput in;
  in.pixels.resize(pixel_count * 3);
  Xorshift64 rng(seed);
  for (usize i = 0; i < in.pixels.size(); i += 8) {
    u64 v = rng.next();
    for (usize j = 0; j < 8 && i + j < in.pixels.size(); ++j) {
      in.pixels[i + j] = static_cast<u8>(v >> (j * 8));
    }
  }
  return in;
}

HistogramResult run_histogram(const HistogramInput& in, usize threads) {
  TEEPERF_SCOPE("phoenix::histogram");
  usize pixels = in.pixels.size() / 3;
  std::vector<LocalHist> locals(threads ? threads : 1);

  parallel_chunks(pixels, threads, [&](usize worker, usize begin, usize end) {
    TEEPERF_SCOPE("phoenix::histogram::map_worker");
    LocalHist& h = locals[worker];
    for (usize p = begin; p < end; p += kRowPixels) {
      usize row = std::min(kRowPixels, end - p);
      accumulate_row(in.pixels.data() + p * 3, row, h);
    }
  });

  TEEPERF_SCOPE("phoenix::histogram::reduce");
  HistogramResult out;
  for (const LocalHist& h : locals) {
    for (usize i = 0; i < 256; ++i) {
      out.r[i] += h.r[i];
      out.g[i] += h.g[i];
      out.b[i] += h.b[i];
    }
  }
  return out;
}

}  // namespace teeperf::phoenix
