// Deterministic fault injection (the hostile-substrate test harness).
//
// The paper's robustness story (§II-B, §IV) is that the analyzer tells the
// truth even when the log was written inside a hostile substrate: writers
// die mid-append, dumps arrive truncated or bit-flipped, counters stall.
// Related systems make the same assumption explicit (TEEMon scrapes state
// it expects to be partially stale; Triad's trusted timestamps are
// fault-prone by design). This registry lets tests and the CLI *produce*
// those conditions on demand, deterministically:
//
//   - every fault point has a stable string name ("dump.torn",
//     "counter.stall", ...; the full list is in TESTING.md);
//   - a point can be armed to trip on the Nth hit (optionally sticky),
//     with a seeded probability, or externally through the obs region
//     (gauge "fault.arm.<name>", see obs/session.cc);
//   - all randomness (probability draws, byte offsets for truncation and
//     bit flips) derives from one seed, so a failing scenario replays
//     exactly from its seed.
//
// Instrumented code calls fault::fires("name") at the fault site and acts
// out the failure there (return false, truncate the buffer, raise SIGKILL,
// ...). When nothing is armed anywhere — the production state — fires() is
// a single relaxed atomic load, so fault points may sit on warm paths.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace teeperf::fault {

enum class Mode : u32 {
  kOff = 0,
  kNth,          // fire when the hit count reaches n (1-based)
  kProbability,  // fire each hit with probability p (seeded)
};

struct Spec {
  Mode mode = Mode::kOff;
  u64 n = 0;           // kNth: the hit number that fires
  double p = 0.0;      // kProbability
  bool sticky = false; // kNth: keep firing on every hit >= n
};

class Registry {
 public:
  // The process-global registry every fault point consults.
  static Registry& instance();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Arms `name`. Points do not need to pre-exist; arming an unknown name
  // creates it (so tests can arm points added later without registration
  // ceremony).
  void arm(const std::string& name, Spec spec);
  void disarm(const std::string& name);
  // Disarms everything and clears hit/fire counts. Seed is kept.
  void reset();

  void set_seed(u64 seed);
  u64 seed() const;

  // Parses and arms a spec string:
  //   "dump.torn:nth=3;wal.read.flip:p=0.5;epc.exhaust:nth=10,sticky"
  // A bare name means nth=1. Returns false (and sets *error) on malformed
  // input without arming anything from it.
  bool arm_from_spec(std::string_view spec, std::string* error = nullptr);

  // Reads TEEPERF_FAULTS (spec string) and TEEPERF_FAULT_SEED. Call once at
  // process/session start; a malformed env spec is reported on stderr and
  // ignored rather than failing the host program.
  void arm_from_env();

  // True when at least one point is armed. The fires() fast path.
  bool any_armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  // Counts a hit on `name` and decides whether the fault fires now.
  bool should_fire(std::string_view name);

  // Introspection for tests and reports.
  u64 hits(const std::string& name) const;
  u64 fire_count(const std::string& name) const;

  // Deterministic value in [0, bound): hashes (seed, name, per-name draw
  // index), so the same seed replays the same offsets. bound 0 yields 0.
  u64 value_below(std::string_view name, u64 bound);

  // External arming bridge (wired to the obs shared-memory region by
  // obs/session.cc): `fetch` returns the pending arm count for a point
  // published out-of-process (0 = none), `clear` acknowledges it.
  void set_external(std::function<u64(const std::string&)> fetch,
                    std::function<void(const std::string&)> clear);
  void clear_external();

  // Polls the external source for every known point name and arms
  // nth=<fetched value> (counting from now) for each pending one. Called by
  // the obs watchdog each tick; a no-op without an external source.
  void poll_external();

 private:
  struct Point {
    Spec spec;
    u64 hits = 0;        // hits since last arm
    u64 fired = 0;       // total fires
    u64 draws = 0;       // value_below/probability draws (for determinism)
  };

  bool decide_locked(const std::string& name, Point& pt);
  u64 hash_draw(std::string_view name, u64 draw) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Point> points_;
  std::atomic<u64> armed_points_{0};
  u64 seed_ = 1;
  std::function<u64(const std::string&)> external_fetch_;
  std::function<void(const std::string&)> external_clear_;
};

// The instrumentation entry point. One relaxed load when nothing is armed.
// teeperf-lint: allow(r1): the armed slow path (mutex + map) only runs in
// fault-injection tests; production probe cost is the relaxed load above.
inline bool fires(std::string_view name) {
  Registry& r = Registry::instance();
  return r.any_armed() && r.should_fire(name);
}

// Deterministic site-local value helper (see Registry::value_below).
inline u64 value_below(std::string_view name, u64 bound) {
  return Registry::instance().value_below(name, bound);
}

// Applies the two generic byte-corruption faults to a serialized buffer:
//   "<prefix>.torn"    — truncate at a seeded offset in [1, size)
//   "<prefix>.bitflip" — flip a seeded bit
// Used by the recorder dump path; returns true if anything was mangled.
bool apply_byte_faults(std::string_view prefix, std::string* bytes);

// RAII arming for tests: arms in the constructor, restores a disarmed
// registry (full reset) in the destructor.
class ScopedFault {
 public:
  ScopedFault(const std::string& name, Spec spec) {
    Registry::instance().arm(name, spec);
  }
  explicit ScopedFault(std::string_view spec_string) {
    Registry::instance().arm_from_spec(spec_string);
  }
  ~ScopedFault() { Registry::instance().reset(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace teeperf::fault
