#include "faultsim/fault.h"

#include "faultsim/fault_points.h"

#include <cstdio>
#include <cstdlib>

namespace teeperf::fault {

namespace {

// splitmix64: the standard seed-expansion mixer; enough bits of quality for
// fault-offset selection and probability draws.
u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

u64 hash_name(std::string_view name) {
  u64 h = 1469598103934665603ull;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<u8>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::arm(const std::string& name, Spec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& pt = points_[name];
  bool was_armed = pt.spec.mode != Mode::kOff;
  pt.spec = spec;
  pt.hits = 0;
  bool is_armed = spec.mode != Mode::kOff;
  if (is_armed && !was_armed) armed_points_.fetch_add(1, std::memory_order_relaxed);
  if (!is_armed && was_armed) armed_points_.fetch_sub(1, std::memory_order_relaxed);
}

void Registry::disarm(const std::string& name) { arm(name, Spec{}); }

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

void Registry::set_seed(u64 seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed ? seed : 1;
}

u64 Registry::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

bool Registry::arm_from_spec(std::string_view spec, std::string* error) {
  // Parse everything first so a malformed tail arms nothing.
  std::vector<std::pair<std::string, Spec>> parsed;
  usize pos = 0;
  while (pos < spec.size()) {
    usize end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;

    usize colon = item.find(':');
    std::string name(item.substr(0, colon == std::string_view::npos ? item.size()
                                                                    : colon));
    if (name.empty()) {
      if (error) *error = "empty fault name";
      return false;
    }
    Spec s;
    if (colon == std::string_view::npos) {
      s.mode = Mode::kNth;
      s.n = 1;
    } else {
      std::string_view opts = item.substr(colon + 1);
      usize opos = 0;
      bool have_trigger = false;
      while (opos <= opts.size()) {
        usize oend = opts.find(',', opos);
        if (oend == std::string_view::npos) oend = opts.size();
        std::string opt(opts.substr(opos, oend - opos));
        opos = oend + 1;
        if (opt.empty()) {
          if (opos > opts.size()) break;
          if (error) *error = "empty option in '" + name + "'";
          return false;
        }
        if (opt == "sticky") {
          s.sticky = true;
        } else if (opt.rfind("nth=", 0) == 0) {
          char* endp = nullptr;
          s.n = std::strtoull(opt.c_str() + 4, &endp, 10);
          if (*endp || s.n == 0) {
            if (error) *error = "bad nth in '" + name + "'";
            return false;
          }
          s.mode = Mode::kNth;
          have_trigger = true;
        } else if (opt.rfind("p=", 0) == 0) {
          char* endp = nullptr;
          s.p = std::strtod(opt.c_str() + 2, &endp);
          if (*endp || s.p < 0.0 || s.p > 1.0) {
            if (error) *error = "bad probability in '" + name + "'";
            return false;
          }
          s.mode = Mode::kProbability;
          have_trigger = true;
        } else {
          if (error) *error = "unknown option '" + opt + "' in '" + name + "'";
          return false;
        }
        if (opos > opts.size()) break;
      }
      if (!have_trigger) {
        if (error) *error = "no trigger (nth=/p=) for '" + name + "'";
        return false;
      }
    }
    parsed.emplace_back(std::move(name), s);
  }
  if (parsed.empty()) {
    if (error) *error = "empty fault spec";
    return false;
  }
  for (auto& [name, s] : parsed) arm(name, s);
  return true;
}

void Registry::arm_from_env() {
  if (const char* seed_env = std::getenv("TEEPERF_FAULT_SEED")) {
    set_seed(std::strtoull(seed_env, nullptr, 10));
  }
  if (const char* spec = std::getenv("TEEPERF_FAULTS")) {
    std::string error;
    if (!arm_from_spec(spec, &error)) {
      std::fprintf(stderr, "teeperf: ignoring malformed TEEPERF_FAULTS: %s\n",
                   error.c_str());
    }
  }
}

bool Registry::decide_locked(const std::string& name, Point& pt) {
  ++pt.hits;
  switch (pt.spec.mode) {
    case Mode::kOff:
      return false;
    case Mode::kNth:
      if (pt.hits == pt.spec.n || (pt.spec.sticky && pt.hits > pt.spec.n)) {
        ++pt.fired;
        if (!pt.spec.sticky && pt.hits == pt.spec.n) {
          // One-shot: disarm so repeated hits do not re-fire.
          pt.spec.mode = Mode::kOff;
          armed_points_.fetch_sub(1, std::memory_order_relaxed);
        }
        return true;
      }
      return false;
    case Mode::kProbability: {
      u64 draw = mix64(seed_ ^ hash_name(name) ^ mix64(pt.draws++));
      double u = static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
      if (u < pt.spec.p) {
        ++pt.fired;
        return true;
      }
      return false;
    }
  }
  return false;
}

bool Registry::should_fire(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key(name);
  auto it = points_.find(key);
  if (it == points_.end()) return false;  // nothing armed under this name
  return decide_locked(key, it->second);
}

u64 Registry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

u64 Registry::fire_count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fired;
}

u64 Registry::hash_draw(std::string_view name, u64 draw) const {
  return mix64(seed_ ^ hash_name(name) ^ mix64(draw ^ 0x5eedull));
}

u64 Registry::value_below(std::string_view name, u64 bound) {
  if (bound == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  Point& pt = points_[std::string(name)];
  return hash_draw(name, pt.draws++) % bound;
}

void Registry::set_external(std::function<u64(const std::string&)> fetch,
                            std::function<void(const std::string&)> clear) {
  std::lock_guard<std::mutex> lock(mu_);
  external_fetch_ = std::move(fetch);
  external_clear_ = std::move(clear);
}

void Registry::clear_external() {
  std::lock_guard<std::mutex> lock(mu_);
  external_fetch_ = nullptr;
  external_clear_ = nullptr;
}

void Registry::poll_external() {
  // Snapshot under the lock, fetch outside it: the fetch callback reads the
  // obs shared-memory region and may itself take obs-side paths that hit
  // fault points.
  std::function<u64(const std::string&)> fetch;
  std::function<void(const std::string&)> clear;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!external_fetch_) return;
    fetch = external_fetch_;
    clear = external_clear_;
    names.reserve(points_.size());
    for (const auto& [name, pt] : points_) names.push_back(name);
  }
  // Built-in point names are pollable even before their site was ever hit.
  for (const char* builtin : fault_points::kAll) names.push_back(builtin);

  for (const std::string& name : names) {
    u64 pending = fetch(name);
    if (pending == 0) continue;
    Spec s;
    s.mode = Mode::kNth;
    s.n = pending;  // fire on the pending-th hit counting from now
    arm(name, s);
    if (clear) clear(name);
  }
}

bool apply_byte_faults(std::string_view prefix, std::string* bytes) {
  bool mangled = false;
  std::string torn_name = std::string(prefix) + ".torn";
  std::string flip_name = std::string(prefix) + ".bitflip";
  if (!bytes->empty() && fires(torn_name)) {
    usize cut = 1 + static_cast<usize>(value_below(torn_name, bytes->size() - 1));
    bytes->resize(cut);
    mangled = true;
  }
  if (!bytes->empty() && fires(flip_name)) {
    u64 bit = value_below(flip_name, bytes->size() * 8);
    (*bytes)[bit / 8] = static_cast<char>((*bytes)[bit / 8] ^ (1u << (bit % 8)));
    mangled = true;
  }
  return mangled;
}

}  // namespace teeperf::fault
