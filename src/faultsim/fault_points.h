// Fault-point name manifest — the single source of truth for every
// fault-injection point name in the tree (teeperf_lint rule R4).
//
// Instrumented code passes these constants to fault::fires() /
// fault::value_below() instead of repeating the string literal at each
// site; poll_external() iterates kAll so external arming reaches every
// point without a second hand-maintained list. TESTING.md's "Built-in
// fault points" table must list exactly these names — teeperf_lint
// cross-checks both directions and fails CI on drift.
//
// Adding a point: add the constant here, add it to kAll, document it in
// TESTING.md, then use it at the fault site (see TESTING.md "Adding a
// fault point").
#pragma once

namespace teeperf::fault_points {

inline constexpr char kShmCreateFail[] = "shm.create.fail";
inline constexpr char kShmOpenFail[] = "shm.open.fail";
inline constexpr char kShmOpenTruncate[] = "shm.open.truncate";
inline constexpr char kLogAppendDie[] = "log.append.die";
inline constexpr char kLogFlushDie[] = "log.flush.die";
inline constexpr char kLogShardAllocFail[] = "log.shard.alloc.fail";
inline constexpr char kCounterStall[] = "counter.stall";
inline constexpr char kCounterBackjump[] = "counter.backjump";
inline constexpr char kCounterStallPrimary[] = "counter.stall.primary";
inline constexpr char kCounterBackjumpPrimary[] = "counter.backjump.primary";
inline constexpr char kDumpFail[] = "dump.fail";
inline constexpr char kRecorderDumpDie[] = "recorder.dump.die";
inline constexpr char kDumpTorn[] = "dump.torn";
inline constexpr char kDumpBitflip[] = "dump.bitflip";
inline constexpr char kEpcAllocFail[] = "epc.alloc_fail";
inline constexpr char kEpcExhaust[] = "epc.exhaust";
inline constexpr char kWalAppendTorn[] = "wal.append.torn";
inline constexpr char kWalReadFlip[] = "wal.read.flip";
inline constexpr char kSstableOpenFlip[] = "sstable.open.flip";
inline constexpr char kDrainDie[] = "drain.die";
inline constexpr char kDrainChunkTorn[] = "drain.chunk.torn";

// The byte-corruption prefix consumed by fault::apply_byte_faults(); it
// expands to kDumpTorn / kDumpBitflip.
inline constexpr char kDumpPrefix[] = "dump";

// Every arm-able point, for poll_external() and introspection tools.
inline constexpr const char* kAll[] = {
    kShmCreateFail, kShmOpenFail,   kShmOpenTruncate, kLogAppendDie,
    kLogFlushDie,   kLogShardAllocFail, kCounterStall, kCounterBackjump,
    kCounterStallPrimary, kCounterBackjumpPrimary,
    kDumpFail,      kRecorderDumpDie, kDumpTorn,      kDumpBitflip,
    kEpcAllocFail,  kEpcExhaust,    kWalAppendTorn,   kWalReadFlip,
    kSstableOpenFlip, kDrainDie,    kDrainChunkTorn,
};

}  // namespace teeperf::fault_points
