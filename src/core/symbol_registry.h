// Maps the 64-bit "address" field of log entries to human-readable names.
//
// The paper resolves raw instruction addresses against the binary's DWARF
// info with addr2line/readelf/c++filt. This repo supports two id spaces in
// the same log:
//   - *registered ids*  — allocated here for RAII-scope instrumentation.
//     Registered ids have bit 62 set so they can never collide with real
//     userspace addresses (x86-64 canonical addresses fit in 48 bits).
//   - *raw addresses*   — produced by the real -finstrument-functions route;
//     resolved at dump time via dladdr (the DWARF stand-in, see DESIGN.md).
//
// The recorder serializes the registry next to the log ("<prefix>.sym"), so
// the analyzer — which may run on another machine — never needs the binary.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace teeperf {

class SymbolRegistry {
 public:
  static constexpr u64 kRegisteredBit = 1ull << 62;

  static SymbolRegistry& instance();

  // Interns `name`, returning a stable id (same name → same id).
  u64 intern(std::string_view name);

  // Name for a registered id; empty if unknown.
  std::string name_of(u64 id) const;

  static bool is_registered_id(u64 addr) { return (addr & kRegisteredBit) != 0; }

  // Serializes all known symbols as "id\tname\n" lines.
  std::string serialize() const;

  // Loads "id\tname\n" lines into an id→name map (analyzer side).
  static std::unordered_map<u64, std::string> parse(std::string_view text);

  usize size() const;

  // Drops all registrations. Only for test isolation; ids handed out before
  // a reset become dangling.
  void reset_for_test();

 private:
  SymbolRegistry() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, u64> by_name_;
  std::vector<std::string> names_;  // index = id & ~kRegisteredBit
};

// Demangles a C++ symbol (the c++filt stand-in); returns the input unchanged
// if it is not a mangled name.
std::string demangle(const char* mangled);

}  // namespace teeperf
