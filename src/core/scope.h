// RAII instrumentation (the second route into the recorder, see DESIGN.md).
//
// The paper's primary route recompiles the application with
// -finstrument-functions; cyg_hooks.cc implements those hooks. For code you
// own, TEEPERF_FUNCTION()/TEEPERF_SCOPE(name) emit the *identical* log
// entries with a registry-backed name, which keeps frame names deterministic
// across platforms — this is what the substrate workloads use so their flame
// graphs match the paper's figures. It also doubles as the "selective code
// profiling" mechanism: instrument only the scopes you care about.
#pragma once

#include <string_view>

#include "core/runtime.h"
#include "core/symbol_registry.h"

namespace teeperf {

class Scope {
 public:
  TEEPERF_NO_INSTRUMENT explicit Scope(u64 id) : id_(id) { runtime::on_enter(id_); }
  TEEPERF_NO_INSTRUMENT ~Scope() { runtime::on_exit(id_); }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  u64 id_;
};

#define TEEPERF_CAT_(a, b) a##b
#define TEEPERF_CAT(a, b) TEEPERF_CAT_(a, b)

// Interns once per call site (function-local static), then constructs the
// RAII scope. Cost when no session is attached: one static-init check and
// one relaxed atomic load per entry/exit pair.
#define TEEPERF_SCOPE(name_literal)                                        \
  static const ::teeperf::u64 TEEPERF_CAT(teeperf_scope_id_, __LINE__) =   \
      ::teeperf::SymbolRegistry::instance().intern(name_literal);          \
  ::teeperf::Scope TEEPERF_CAT(teeperf_scope_, __LINE__)(                  \
      TEEPERF_CAT(teeperf_scope_id_, __LINE__))

// Instrument the enclosing function under its own (pretty) name.
#define TEEPERF_FUNCTION() TEEPERF_SCOPE(__PRETTY_FUNCTION__)

}  // namespace teeperf
