#include "core/runtime.h"

#include "common/stringutil.h"
#include "core/symbol_registry.h"
#include "obs/metric_names.h"
#include "obs/session.h"

namespace teeperf::runtime {
namespace {

struct Session {
  ProfileLog* log = nullptr;
  CounterMode mode = CounterMode::kSteadyClock;
  const Filter* filter = nullptr;
};

Session g_session;
std::atomic<bool> g_attached{false};
std::atomic<u64> g_next_tid{0};

// First-sight table of raw function addresses (see runtime.h
// seen_addresses): open addressing over a fixed power-of-two array, empty
// slots are 0 (function addresses are never 0), insertion is a relaxed CAS.
// No locks, no allocation — r1-clean by construction. The probe chain is
// capped so a near-full table costs bounded work; beyond that new addresses
// are dropped, which only degrades exit-time symbolization to the residual
// log window.
constexpr usize kSeenSlots = 1 << 14;  // 16k distinct instrumented functions
constexpr usize kSeenMaxProbe = 64;
std::atomic<u64> g_seen_addrs[kSeenSlots];

TEEPERF_NO_INSTRUMENT void note_address(ThreadState& t, u64 addr) {
  usize ci = (addr >> 4) & (ThreadState::kAddrCacheSize - 1);
  if (t.addr_cache[ci] == addr) return;
  t.addr_cache[ci] = addr;
  u64 h = addr * 0x9E3779B97F4A7C15ull;
  usize slot = static_cast<usize>(h ^ (h >> 29)) & (kSeenSlots - 1);
  for (usize i = 0; i < kSeenMaxProbe; ++i) {
    u64 cur = g_seen_addrs[slot].load(std::memory_order_relaxed);
    if (cur == addr) return;
    if (cur == 0) {
      u64 expected = 0;
      if (g_seen_addrs[slot].compare_exchange_strong(
              expected, addr, std::memory_order_relaxed,
              std::memory_order_relaxed)) {
        return;
      }
      if (expected == addr) return;  // lost the race to the same address
    }
    slot = (slot + 1) & (kSeenSlots - 1);
  }
}

// Wrapping the per-thread state gives its batch a flush-at-thread-exit hook
// without making ThreadState itself non-trivial: pending entries publish
// when the thread unwinds, so short-lived threads lose nothing.
struct ThreadStateHolder {
  ThreadState state;
  TEEPERF_NO_INSTRUMENT ~ThreadStateHolder() {
    if (g_attached.load(std::memory_order_acquire) && g_session.log) {
      state.batch.flush(*g_session.log);
    } else {
      state.batch.abandon();
    }
  }
};

TEEPERF_NO_INSTRUMENT ThreadState& thread_state() {
  thread_local ThreadStateHolder holder;
  return holder.state;
}

TEEPERF_NO_INSTRUMENT u64 tid_of(ThreadState& t) {
  if (t.tid == ~0ull) t.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t.tid;
}

// Per-thread telemetry counter, registered on this thread's first recorded
// event and cached as a raw shm-cell pointer — after that, telemetry on the
// hot path is one relaxed fetch_add on a line no other thread touches.
// High tids share one overflow counter so the registry cannot be exhausted
// by thread churn.
// teeperf-lint: allow(r1): once-per-thread-per-epoch registration slow path;
// every later hot-path hit takes the cached-cell branch above the lookup.
TEEPERF_NO_INSTRUMENT std::atomic<u64>* obs_entry_cell(ThreadState& t) {
  u64 epoch = obs::telemetry_epoch();
  if (t.obs_epoch != epoch) {
    t.obs_epoch = epoch;
    t.obs_entries = nullptr;
    if (obs::SelfTelemetry* tel = obs::telemetry()) {
      u64 tid = tid_of(t);
      std::string name = tid < 32
                             ? str_format(obs::metric_names::kAppThreadEntriesFmt,
                                          static_cast<unsigned long long>(tid))
                             : obs::metric_names::kAppThreadOtherEntries;
      t.obs_entries = tel->registry().counter(name).cell();
    }
  }
  return t.obs_entries;
}

}  // namespace

bool attach(ProfileLog* log, CounterMode mode, const Filter* filter) {
  bool expected = false;
  if (!g_attached.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    return false;
  }
  g_session.log = log;
  g_session.mode = mode;
  g_session.filter = filter;
  std::atomic_thread_fence(std::memory_order_release);
  return true;
}

void detach() {
  // Publish the detaching thread's buffered events before the session goes
  // away; other threads flush at their next event, depth-0 return, or exit.
  ThreadState& t = thread_state();
  if (g_session.log) t.batch.flush(*g_session.log);
  g_session.log = nullptr;
  g_session.filter = nullptr;
  g_attached.store(false, std::memory_order_release);
}

bool attached() { return g_attached.load(std::memory_order_acquire); }

ProfileLog* current_log() {
  return g_attached.load(std::memory_order_acquire) ? g_session.log : nullptr;
}

CounterMode counter_mode() { return g_session.mode; }

void on_enter(u64 addr) {
  if (!g_attached.load(std::memory_order_acquire)) return;
  ThreadState& t = thread_state();
  if (t.in_hook) return;
  t.in_hook = true;

  // Shadow stack is maintained for every event (the sampler baseline needs
  // it even when no trace log is attached).
  int d = t.stack.depth.load(std::memory_order_relaxed);
  if (d < ShadowStack::kMaxDepth) {
    t.stack.frames[d] = addr;
    t.stack.depth.store(d + 1, std::memory_order_release);
  } else {
    // Overflowing frames are not tracked individually; keep depth pinned so
    // matching on_exit calls below still unwind correctly.
    t.stack.depth.store(d + 1, std::memory_order_release);
  }

  ProfileLog* log = g_session.log;
  if (log && log->active() &&
      (log->flags() & log_flags::kRecordCalls) &&
      (!g_session.filter || g_session.filter->passes(addr))) {
    t.batch.record(*log, EventKind::kCall, addr, tid_of(t),
                   read_counter(g_session.mode, log->header()));
    if (!SymbolRegistry::is_registered_id(addr)) note_address(t, addr);
    if (std::atomic<u64>* cell = obs_entry_cell(t)) {
      cell->fetch_add(1, std::memory_order_relaxed);
    }
  } else if (log && t.batch.pending()) {
    // Deactivation (or a record-flag/filter change) observed with events
    // still buffered: publish them now so a stop() is promptly visible to
    // the host side rather than deferred to the next flush trigger.
    t.batch.flush(*log);
  }
  t.in_hook = false;
}

void on_exit(u64 addr) {
  if (!g_attached.load(std::memory_order_acquire)) return;
  ThreadState& t = thread_state();
  if (t.in_hook) return;
  t.in_hook = true;

  int d = t.stack.depth.load(std::memory_order_relaxed);
  if (d > 0) t.stack.depth.store(d - 1, std::memory_order_release);

  ProfileLog* log = g_session.log;
  if (log && log->active() &&
      (log->flags() & log_flags::kRecordReturns) &&
      (!g_session.filter || g_session.filter->passes(addr))) {
    t.batch.record(*log, EventKind::kReturn, addr, tid_of(t),
                   read_counter(g_session.mode, log->header()));
    if (!SymbolRegistry::is_registered_id(addr)) note_address(t, addr);
    if (std::atomic<u64>* cell = obs_entry_cell(t)) {
      cell->fetch_add(1, std::memory_order_relaxed);
    }
  } else if (log && t.batch.pending()) {
    t.batch.flush(*log);
  }
  // Returning to depth 0 means the thread's outermost instrumented call is
  // complete — a natural quiesce point; publishing here keeps the shared
  // log current whenever no instrumented code is on this thread's stack.
  if (d <= 1 && log && t.batch.pending()) t.batch.flush(*log);
  t.in_hook = false;
}

u64 current_tid() { return tid_of(thread_state()); }

u64 thread_count() { return g_next_tid.load(std::memory_order_relaxed); }

int capture_own_stack(u64* out, int max) {
  ThreadState& t = thread_state();
  int d = t.stack.depth.load(std::memory_order_acquire);
  if (d > ShadowStack::kMaxDepth) d = ShadowStack::kMaxDepth;
  if (d > max) d = max;
  for (int i = 0; i < d; ++i) out[i] = t.stack.frames[i];
  return d;
}

void seen_addresses(std::vector<u64>* out) {
  for (usize i = 0; i < kSeenSlots; ++i) {
    u64 a = g_seen_addrs[i].load(std::memory_order_relaxed);
    if (a != 0) out->push_back(a);
  }
}

void reset_thread_for_test() {
  ThreadState& t = thread_state();
  t.tid = ~0ull;
  t.in_hook = false;
  t.obs_entries = nullptr;
  t.obs_epoch = 0;
  t.stack.depth.store(0, std::memory_order_release);
  t.batch.abandon();
  for (usize i = 0; i < ThreadState::kAddrCacheSize; ++i) t.addr_cache[i] = 0;
}

void reset_seen_addresses_for_test() {
  for (usize i = 0; i < kSeenSlots; ++i) {
    g_seen_addrs[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace teeperf::runtime
