// The recorder wrapper (§II-B, stage #2): sets up the shared-memory log,
// manages the counter, installs the runtime session, and persists the log
// (plus a symbol file) for the offline analyzer.
#pragma once

#include <memory>
#include <string>

#include "common/shm.h"
#include "common/types.h"
#include "core/counter.h"
#include "core/filter.h"
#include "core/log_format.h"
#include "core/replicated_counter.h"
#include "obs/session.h"
#include "obs/watchdog.h"

namespace teeperf {

struct RecorderOptions {
  // Log capacity. 1M entries = 32 MiB of untrusted host memory.
  u64 max_entries = 1ull << 20;

  // Shard layout (log format v2, DESIGN.md): -1 picks a power of two near
  // the hardware concurrency (clamped to [1, 64], and reduced until every
  // shard holds at least 1024 entries, so tiny test logs degrade to one
  // shard and keep exact v1 drop arithmetic). 0 forces the classic v1
  // single-tail layout. 1..kMaxLogShards forces an explicit v2 directory.
  i32 shards = -1;

  // Time source. kTsc by default: on the single-core CI machine a software
  // counter thread starves the workload (see counter.h); pass kSoftware to
  // reproduce the paper's portable configuration.
  CounterMode counter_mode = CounterMode::kTsc;

  // When using kSoftware: sched_yield after this many increments (0 = the
  // paper's pure tight loop, appropriate when a spare core exists).
  u64 software_counter_yield = 4096;

  // Replicated trusted time (DESIGN.md §13), kSoftware only: run this many
  // counter replicas on distinct cores, each with a cache-line-isolated shm
  // word, plus a detector that cross-checks them, fails over when the
  // elected primary stalls or jumps backwards, and calibrates ticks→ns
  // against CLOCK_MONOTONIC. 0 keeps the classic single counter thread;
  // values are clamped to kMaxCounterReplicas. Ignored for kTsc /
  // kSteadyClock (those sources have nothing to replicate).
  u32 counter_replicas = 0;

  // Start with measurement active; flags can be toggled at runtime.
  bool start_active = true;

  // Ring mode: when the log fills, overwrite the oldest entries instead of
  // dropping new ones — long-running sessions keep the most recent window.
  bool ring_buffer = false;

  // Spill-drain mode (DESIGN.md §10): a host-side drainer (drain::Drainer,
  // owned by the embedding tool — teeperf_record — not by the Recorder)
  // continuously consumes published windows and writers reclaim the space,
  // so sessions are unbounded without ring-mode data loss. Requires a v2
  // layout (shards >= 1) and excludes ring_buffer; create() fails on a
  // conflicting combination.
  bool spill_drain = false;
  bool record_calls = true;
  bool record_returns = true;

  // Named POSIX shared memory when set; anonymous shared mapping otherwise.
  // Named shm is the cross-process path. The sentinel "auto" picks a fresh
  // collision-free session name "/teeperf.<pid>.<nonce>.log" (the
  // multi-session scheme session_registry.h documents); an explicit name is
  // used verbatim. The telemetry region lives at the same base with ".obs"
  // (for names not ending in ".log", legacy "<name>.obs").
  std::string shm_name;

  // Named sessions publish a discovery descriptor into the session registry
  // (session_registry.h) so teeperf_monitord / teeperf_stats can find them,
  // and withdraw it on destruction. Off for tests that want invisibility.
  bool publish_session = true;

  // Registry directory override; empty uses $TEEPERF_SESSION_DIR / the
  // per-host default.
  std::string session_dir;

  // Selective profiling filter; must outlive the recorder. May be null.
  const Filter* filter = nullptr;

  // Self-telemetry (src/obs): a shared-memory metrics/events region named
  // "<shm_name>.obs" (anonymous for anonymous sessions) that a host process
  // can scrape live with tools/teeperf_stats, plus a counter-health
  // watchdog thread that runs while the session is attached.
  bool telemetry = true;
  u64 watchdog_interval_ms = 50;
};

class Recorder {
 public:
  // Creates the shared memory and formats the log. Null on failure.
  static std::unique_ptr<Recorder> create(const RecorderOptions& options);

  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Installs the runtime session (starts the software counter thread if
  // configured). False if another session is already attached.
  bool attach();
  void detach();

  // Spill sessions: drainer health fed into the watchdog's log sample. The
  // embedding tool owns the drain::Drainer (core sits below drain in the
  // layering) and registers this callback before attach(); without it the
  // watchdog still suppresses wrap/saturation alarms for spill logs but
  // publishes no drain.* gauges.
  struct DrainSample {
    u64 lag_entries = 0;
    u64 spilled_bytes = 0;
    u64 drained_entries = 0;
  };
  void set_drain_sampler(std::function<DrainSample()> sampler) {
    drain_sampler_ = std::move(sampler);
  }

  // Dynamic de/activation (§II-B: flags are changed atomically while the
  // application executes). Toggles are journaled as telemetry events.
  void start();
  void stop();

  ProfileLog& log() { return log_; }
  const ProfileLog& log() const { return log_; }

  struct Stats {
    u64 entries = 0;
    u64 dropped = 0;
    u64 capacity = 0;
    u64 attempted = 0;       // appends tried, including dropped/wrapped
    u64 torn_tail = 0;       // tombstone slots found at the written tail
    u32 shards = 0;          // shard directory size (0 = v1 single tail)
    bool counter_stalled = false;  // watchdog's live verdict (false when
                                   // telemetry is off or not attached)
    u32 counter_replicas = 0;      // replica block size (0 = single counter)
    u64 counter_failovers = 0;     // primary elections since attach
    u64 counter_backjumps = 0;     // replica words seen moving backwards
  };
  Stats stats() const;

  // The live telemetry region (null when options.telemetry is false).
  obs::SelfTelemetry* telemetry() { return telemetry_.get(); }

  // The registry key this session published under ("" when unpublished —
  // anonymous sessions, publish_session=false, or a failed publish).
  const std::string& session_name() const { return session_name_; }

  // Writes "<prefix>.log" (raw header + entries, with ns_per_tick measured
  // and stored into the header) and "<prefix>.sym" (registered symbols plus
  // dladdr resolutions of raw addresses found in the log). Returns false on
  // I/O failure.
  bool dump(const std::string& prefix);

 private:
  Recorder() = default;

  RecorderOptions options_;
  std::string session_name_;
  std::string session_dir_;
  SharedMemoryRegion shm_;
  ProfileLog log_;
  std::function<DrainSample()> drain_sampler_;
  std::unique_ptr<SoftwareCounter> counter_;
  std::unique_ptr<ReplicatedCounter> replicated_;
  std::unique_ptr<obs::SelfTelemetry> telemetry_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  bool attached_ = false;
};

}  // namespace teeperf
