#include "core/symbol_dump.h"

#include <dlfcn.h>

#include <unordered_set>

#include "common/stringutil.h"
#include "core/runtime.h"
#include "core/symbol_registry.h"

namespace teeperf {

std::string build_symbol_file(const ProfileLog& log) {
  std::string sym = SymbolRegistry::instance().serialize();
  std::unordered_set<u64> raw_addrs;
  // snapshot_ordered rather than raw indices: a sharded (v2) log's entry
  // array has per-shard gaps, so index 0..size() is not the written set.
  std::vector<LogEntry> entries;
  log.snapshot_ordered(&entries);
  for (const LogEntry& e : entries) {
    if (!SymbolRegistry::is_registered_id(e.addr)) raw_addrs.insert(e.addr);
  }
  // The residual window is not the whole session: spill mode drains entries
  // out of shm continuously and ring mode overwrites them on wrap. The
  // runtime's first-sight table holds every raw address that was ever
  // recorded, so a fully drained/wrapped log still symbolizes completely.
  std::vector<u64> seen;
  runtime::seen_addresses(&seen);
  for (u64 a : seen) {
    if (!SymbolRegistry::is_registered_id(a)) raw_addrs.insert(a);
  }
  for (u64 a : raw_addrs) {
    Dl_info info{};
    std::string name;
    if (dladdr(reinterpret_cast<void*>(a), &info) && info.dli_sname) {
      name = demangle(info.dli_sname);
    } else {
      name = str_format("0x%llx", static_cast<unsigned long long>(a));
    }
    sym += str_format("%llu\t", static_cast<unsigned long long>(a));
    sym += name;
    sym += '\n';
  }
  return sym;
}

}  // namespace teeperf
