#include "core/symbol_dump.h"

#include <dlfcn.h>

#include <unordered_set>

#include "common/stringutil.h"
#include "core/symbol_registry.h"

namespace teeperf {

std::string build_symbol_file(const ProfileLog& log) {
  std::string sym = SymbolRegistry::instance().serialize();
  std::unordered_set<u64> raw_addrs;
  u64 n = log.size();
  for (u64 i = 0; i < n; ++i) {
    u64 a = log.entry(i).addr;
    if (!SymbolRegistry::is_registered_id(a)) raw_addrs.insert(a);
  }
  for (u64 a : raw_addrs) {
    Dl_info info{};
    std::string name;
    if (dladdr(reinterpret_cast<void*>(a), &info) && info.dli_sname) {
      name = demangle(info.dli_sname);
    } else {
      name = str_format("0x%llx", static_cast<unsigned long long>(a));
    }
    sym += str_format("%llu\t", static_cast<unsigned long long>(a));
    sym += name;
    sym += '\n';
  }
  return sym;
}

}  // namespace teeperf
