// The TEE-Perf log format (paper §II-B, Figure 2).
//
// The log lives in shared memory mapped between the profiled application
// (inside the TEE) and the recorder wrapper (outside). Two on-disk/in-shm
// layouts exist:
//
//   v1 (the paper's Figure 2): a fixed-size header followed by one
//   append-only array of fixed-size entries. Appending is lock-free: a
//   writer reserves a slot with a fetch-and-add on the single shared tail
//   and then fills it in. Every probe from every thread contends on that
//   one tail cache line.
//
//   v2 (sharded, DESIGN.md "Log format v2"): the header is followed by a
//   shard directory of N cache-line-padded LogShard records and then the
//   entry array, split into N contiguous per-shard segments. A thread's
//   events go to shard `tid % N`, so with enough shards each thread owns
//   its tail and the hot path never bounces a cache line between cores.
//   Writers normally publish through a small thread-local batch (LogBatch):
//   one tail fetch-and-add per flush instead of per event.
//
// Entry order across threads is not globally consistent in either version,
// but per-thread order is — which is all the analyzer needs (§II-C,
// multithreading support). In v2 a thread's entries additionally all live
// in one shard, which is what lets the analyzer reconstruct shards in
// parallel.
#pragma once

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "common/types.h"

namespace teeperf {

// Header flags (Figure 2a). The flags word is atomically readable and
// writable so measurement can be (de)activated while the application runs
// without introducing a critical section (§II-B, stage #1).
namespace log_flags {
inline constexpr u64 kActive = 1ull << 0;         // measurement currently on
inline constexpr u64 kRecordCalls = 1ull << 1;    // record function entries
inline constexpr u64 kRecordReturns = 1ull << 2;  // record function exits
inline constexpr u64 kMultithread = 1ull << 16;   // entries carry thread ids
inline constexpr u64 kRingBuffer = 1ull << 17;    // wrap instead of dropping
inline constexpr u64 kSpillDrain = 1ull << 18;    // a host-side drainer reclaims
                                                  // consumed windows (src/drain);
                                                  // v2 only, excludes kRingBuffer
}  // namespace log_flags

inline constexpr u32 kLogVersion = 1;         // single shared tail
inline constexpr u32 kLogVersionSharded = 2;  // per-thread shard segments
inline constexpr u64 kLogMagic = 0x5445455045524631ull;  // "TEEPERF1"

// Upper bound a loader will believe for a v2 shard directory. Far above any
// real configuration (the recorder caps at 64); exists so a hostile header
// cannot make the loader allocate a directory-sized world.
inline constexpr u32 kMaxLogShards = 1024;

enum class EventKind : u64 { kCall = 0, kReturn = 1 };

// Log entry (Figure 2b): the top bit of the first word distinguishes call
// from return; the remaining 63 bits hold the counter value at the event.
// 32 bytes so two entries share a cache line and the array stays aligned.
struct LogEntry {
  static constexpr u64 kKindBit = 1ull << 63;

  u64 kind_and_counter = 0;
  u64 addr = 0;  // call/return target: function address or registered id
  u64 tid = 0;   // profiler-assigned thread id (dense, starts at 0)
  u64 reserved = 0;

  static u64 pack(EventKind kind, u64 counter) {
    return (kind == EventKind::kReturn ? kKindBit : 0) | (counter & ~kKindBit);
  }
  EventKind kind() const {
    return (kind_and_counter & kKindBit) ? EventKind::kReturn : EventKind::kCall;
  }
  u64 counter() const { return kind_and_counter & ~kKindBit; }
};
static_assert(sizeof(LogEntry) == 32);

// Log header (Figure 2a). `flags`, `tail` and `counter` are the only fields
// mutated after initialisation; `version` and the rest are written once and
// never changed (§II-B: the version "is static after it is written once").
// In v2 the global `tail` is unused (each shard has its own); `shard_count`
// is nonzero and a LogShard directory follows the header.
struct LogHeader {
  u64 magic = 0;
  std::atomic<u64> flags{0};
  u32 version = 0;
  u32 shard_count = 0;  // v2: directory size; 0 in v1 logs
  u64 shm_base = 0;    // address the shared memory is mapped at in the app
  u64 pid = 0;         // process id of the profiled application
  u64 max_entries = 0; // immutable capacity; writers past this drop entries
  std::atomic<u64> tail{0};       // v1: index of the next entry to write
  u64 profiler_anchor = 0;        // address of a well-known function, used to
                                  // compute the load offset of relocatable code
  std::atomic<u64> counter{0};    // the software counter lives here so the
                                  // counter thread touches one cache line
  u32 counter_mode = 0;           // CounterMode the entries were taken with
  u32 counter_replicas = 0;       // replicated trusted time (DESIGN.md §13):
                                  // number of CounterReplicaSlot words in the
                                  // trailing replica block; 0 = single counter
                                  // (the layout-compatible pre-replica value)
  double ns_per_tick = 0.0;       // measured at dump time; lets the analyzer
                                  // report human time (relative profiles do
                                  // not depend on its accuracy)
  std::atomic<u64> dropped{0};    // v1: appends refused when full. Lives in
                                  // the shared header (not the writer
                                  // process) so cross-process readers — the
                                  // watchdog, teeperf_stats, dump-time
                                  // health — see app-side drops. v2 logs
                                  // keep it 0 and count per shard instead.
  u8 reserved1[128 - 12 * 8] = {};  // pad so entries start cache-aligned;
                                    // zeroed so serialized headers are
                                    // byte-deterministic (corpus --gen)
};
static_assert(sizeof(LogHeader) == 128);

// One v2 shard directory record: a contiguous segment of the entry array
// owned by the threads with `tid % shard_count == index`. Cache-line sized
// and aligned so two shards' tails never share a line — the whole point.
struct alignas(64) LogShard {
  u64 entry_offset = 0;            // segment start, as an entry-array index
  u64 capacity = 0;                // segment length in entries
  std::atomic<u64> tail{0};        // slots reserved (may run past capacity)
  std::atomic<u64> dropped{0};     // appends refused when full (non-ring)
  // Spill-drain cursor pair (kSpillDrain, DESIGN.md §10). Absolute entry
  // counts, like tail; the segment is addressed modulo capacity and the
  // live window is [drained, tail):
  //   published — contiguous prefix fully stored: writers commit their runs
  //               in reservation order, so [drained, published) is safe for
  //               the drainer to consume while the application runs.
  //   drained   — entries the host-side drainer has consumed (spilled to a
  //               chunk file and zeroed); writers reuse the space, which is
  //               what makes session length unbounded.
  // In serialized compact dumps/chunks `drained` is repurposed to carry the
  // window's absolute start cursor, so the multi-chunk loader can stitch
  // and deduplicate; `published` is kept 0 on disk.
  std::atomic<u64> published{0};
  std::atomic<u64> drained{0};
  u8 reserved[64 - 6 * 8] = {};  // zeroed: keeps serialized directories
                                 // byte-deterministic
};
static_assert(sizeof(LogShard) == 64);

// Replicated trusted time (DESIGN.md §13). When LogHeader::counter_replicas
// is nonzero, a 64-byte-aligned block follows the entry array:
//
//   [ CounterReplicaDirectory ][ CounterReplicaSlot × counter_replicas ]
//
// Each replica thread increments only its own slot word, so replicas never
// share a cache line; the elected primary additionally mirrors its value
// into LogHeader::counter, which keeps the probe path (one relaxed load of
// the header word) and every pre-replica reader unchanged. The block is
// shm-only: compact dumps zero `counter_replicas` and never serialize it,
// and adopt() of a region too small to hold it degrades to 0 replicas.
inline constexpr u32 kMaxCounterReplicas = 8;

struct alignas(64) CounterReplicaDirectory {
  std::atomic<u32> primary{0};     // elected replica index; written by the
                                   // detector, read by every replica thread
  u32 replica_count = 0;           // immutable after init
  std::atomic<u64> failovers{0};   // elections after the initial one
  std::atomic<u64> backjumps{0};   // replica words observed moving backwards
  u8 reserved[64 - 3 * 8] = {};    // zeroed for deterministic snapshots
};
static_assert(sizeof(CounterReplicaDirectory) == 64);

struct alignas(64) CounterReplicaSlot {
  std::atomic<u64> value{0};     // this replica's monotonic tick word
  u8 reserved[64 - 8] = {};      // pad: one replica per cache line
};
static_assert(sizeof(CounterReplicaSlot) == 64);

// A view over a header + (directory +) entry array placed in a caller-
// provided region. Does not own the memory (the shared-memory region or
// file buffer does).
class ProfileLog {
 public:
  ProfileLog() = default;

  // Formats `buffer` (of `size` bytes) as an empty log. `shard_count` 0
  // formats the classic v1 single-tail layout; 1..kMaxLogShards formats v2
  // with that many equally sized shard segments (capacity rounds down to a
  // multiple of shard_count). Returns false if the buffer cannot hold the
  // header (plus directory) plus at least one entry per shard.
  // `counter_replicas` > 0 additionally formats the trailing replica block
  // (the buffer must be sized with bytes_for_replicated).
  bool init(void* buffer, usize size, u64 pid, u64 initial_flags,
            u32 shard_count = 0, u32 counter_replicas = 0);

  // Adopts an already-formatted log (the analyzer side / reopened shm).
  // Returns false if the magic or version does not match, sizes disagree,
  // or a v2 shard directory points outside the region.
  bool adopt(void* buffer, usize size);

  // Lock-free append (§II-B stage #2): reserves a slot via fetch-and-add —
  // on the global tail (v1) or on the tid's shard tail (v2) — then writes
  // the entry. Returns false (and counts a drop) when full — unless
  // kRingBuffer is set, in which case the slot wraps and the oldest entry
  // is overwritten (long-running sessions keep the newest window).
  bool append(EventKind kind, u64 addr, u64 tid, u64 counter);

  // Batched publication (v2): reserves `n` slots in the tid's shard with a
  // single fetch-and-add, then stores all entries (memcpy when the run does
  // not wrap). All entries must carry the same tid. On a v1 log this
  // degrades to n individual appends. Returns false if any entry dropped.
  bool append_batch(const LogEntry* batch, u32 n, u64 tid);

  // Copies the entries in a canonical order into `out`: v1 oldest→newest
  // (handling ring wrap-around); v2 shard 0's window, then shard 1's, ...,
  // each window oldest→newest. Per-thread order — the analyzer's only
  // ordering requirement — is preserved in both.
  void snapshot_ordered(std::vector<LogEntry>* out) const;

  // Copies one v2 shard's written window, oldest→newest (ring-aware).
  void shard_snapshot(u32 s, std::vector<LogEntry>* out) const;

  // Serializes header + (directory +) written entries as a compact dump:
  // ring logs are normalized to plain order (the ring flag is cleared) and
  // v2 segments are packed back-to-back with the directory rewritten, so
  // the offline loader needs neither wrap logic nor segment gaps.
  std::string serialize_compact() const;

  bool valid() const { return header_ != nullptr; }
  bool sharded() const { return shards_ != nullptr; }
  LogHeader* header() { return header_; }
  const LogHeader* header() const { return header_; }

  u32 shard_count() const { return header_ ? header_->shard_count : 0; }
  u32 shard_of(u64 tid) const {
    return shards_ ? static_cast<u32>(tid % header_->shard_count) : 0;
  }
  LogShard* shard(u32 s) { return shards_ ? &shards_[s] : nullptr; }
  const LogShard* shard(u32 s) const { return shards_ ? &shards_[s] : nullptr; }

  // Number of complete entries: min(tail, max_entries) for v1, the sum of
  // per-shard clamped tails for v2. Entries past capacity were dropped;
  // entries at the very tail may be torn if the application was killed
  // mid-write, which the analyzer tolerates.
  u64 size() const;
  u64 capacity() const { return header_ ? header_->max_entries : 0; }

  // Appends attempted, including dropped/wrapped ones: the raw tail (v1) or
  // the sum of shard tails (v2).
  u64 attempted() const;

  // Appends refused because the log was full: the shm-resident header word
  // for v1, the (equally shm-resident) shard counters summed for v2. Either
  // way the count is visible to cross-process readers attached to the same
  // region — the watchdog's log.dropped gauge depends on that.
  u64 dropped() const;

  // True when this log runs the spill-drain protocol (kSpillDrain set): a
  // host-side drainer consumes published windows and writers reclaim the
  // space (DESIGN.md §10).
  bool spill() const {
    return shards_ != nullptr && (flags() & log_flags::kSpillDrain) != 0;
  }

  // Spill mode: how many times a writer re-reads the drain cursor waiting
  // for reclaimed space before it force-advances the cursor and sacrifices
  // the oldest undrained entries (counted as drops). The default is a few
  // hundred ms of spinning — far beyond a healthy drainer's poll interval;
  // tests shrink it to exercise the overflow path deterministically.
  static void set_spill_wait_spins(u64 n);
  static u64 spill_wait_spins();

  const LogEntry& entry(u64 i) const { return entries_[i]; }
  LogEntry* entries() { return entries_; }

  // Bytes needed for a log with `max_entries` entries across `shard_count`
  // shards (0 = v1 layout).
  static usize bytes_for(u64 max_entries, u32 shard_count = 0) {
    return sizeof(LogHeader) +
           static_cast<usize>(shard_count) * sizeof(LogShard) +
           static_cast<usize>(max_entries) * sizeof(LogEntry);
  }

  // Bytes including the trailing replica block (64-byte aligned so replica
  // slots stay cache-line isolated regardless of the entry count).
  static usize bytes_for_replicated(u64 max_entries, u32 shard_count,
                                    u32 counter_replicas) {
    usize base = bytes_for(max_entries, shard_count);
    if (counter_replicas == 0) return base;
    usize aligned = (base + 63) & ~usize{63};
    return aligned + sizeof(CounterReplicaDirectory) +
           static_cast<usize>(counter_replicas) * sizeof(CounterReplicaSlot);
  }

  // Replica-block views (null / 0 for single-counter logs and for loaded
  // dumps, whose regions never carry the block).
  u32 counter_replica_count() const {
    return replica_dir_ ? replica_dir_->replica_count : 0;
  }
  CounterReplicaDirectory* replica_directory() { return replica_dir_; }
  const CounterReplicaDirectory* replica_directory() const {
    return replica_dir_;
  }
  CounterReplicaSlot* replica_slot(u32 i) {
    return replica_slots_ ? &replica_slots_[i] : nullptr;
  }
  const CounterReplicaSlot* replica_slot(u32 i) const {
    return replica_slots_ ? &replica_slots_[i] : nullptr;
  }

  // Flag helpers (atomic; usable while the application runs).
  void set_active(bool on);
  bool active() const;
  void set_flags(u64 set_mask, u64 clear_mask);
  u64 flags() const;

  // Counts torn entries at the tail: slots that were reserved (a tail moved
  // past them) but never filled in — all-zero words — because a writer died
  // between the fetch-and-add and the stores. A batched v2 writer can leave
  // up to a whole batch of them. Scans at most the last `window` written
  // entries per shard; run at dump time, after writers stopped.
  u64 count_torn_tail(u64 window = 64) const;

  // The per-shard torn-tail count (v2; shard 0 == the whole log for v1).
  u64 shard_torn_tail(u32 s, u64 window = 64) const;

 private:
  bool append_one(const LogEntry& e, u64 tid);

  // Spill-mode store: reserves `n` slots in `sh`, waits for the drainer to
  // reclaim enough space, stores the run modulo capacity (at most two
  // spans), then publishes it in reservation order via `sh.published`.
  bool spill_store(LogShard& sh, const LogEntry* batch, u32 n);

  // Absolute cursor of the first entry shard_snapshot(s) would return:
  // `drained` for spill logs, `tail - capacity` for a wrapped ring, else 0.
  u64 shard_window_start(u32 s) const;

  LogHeader* header_ = nullptr;
  LogShard* shards_ = nullptr;  // null for v1 logs
  LogEntry* entries_ = nullptr;
  CounterReplicaDirectory* replica_dir_ = nullptr;  // null unless the region
  CounterReplicaSlot* replica_slots_ = nullptr;     // carries a replica block
};

// Thread-local batching front-end for the hot path (§II-B stage #2, v2):
// events accumulate in a small local buffer and publish with one shard-tail
// reservation per flush, so the per-probe cost is a handful of L1 stores
// plus 1/kCapacity of an atomic RMW. The runtime flushes on batch overflow,
// on a function exit that returns the thread to depth 0, on observing
// deactivation, and at thread exit (DESIGN.md "Batching rules"). On a v1
// log record() appends directly — v1 semantics are exactly the old ones.
class LogBatch {
 public:
  static constexpr u32 kCapacity = 32;

  // Buffers one event (flushing first if the buffer is full or the tid
  // changed). Returns false only when a direct v1 append dropped.
  bool record(ProfileLog& log, EventKind kind, u64 addr, u64 tid, u64 counter);

  // Publishes all pending entries to the tid's shard. False if any dropped.
  bool flush(ProfileLog& log);

  u32 pending() const { return count_; }

  // Discards pending entries without publishing (detached/reset paths).
  void abandon() { count_ = 0; }

 private:
  LogEntry pending_[kCapacity];
  u32 count_ = 0;
  u64 tid_ = 0;
};

}  // namespace teeperf
