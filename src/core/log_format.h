// The TEE-Perf log format (paper §II-B, Figure 2).
//
// The log lives in shared memory mapped between the profiled application
// (inside the TEE) and the recorder wrapper (outside). It is a fixed-size
// header followed by an append-only array of fixed-size entries. Appending
// is lock-free: a writer reserves a slot with a fetch-and-add on the tail
// index and then fills it in. Entry order across threads is therefore not
// globally consistent, but per-thread order is — which is all the analyzer
// needs (§II-C, multithreading support).
#pragma once

#include <atomic>
#include <cstring>
#include <vector>

#include "common/types.h"

namespace teeperf {

// Header flags (Figure 2a). The flags word is atomically readable and
// writable so measurement can be (de)activated while the application runs
// without introducing a critical section (§II-B, stage #1).
namespace log_flags {
inline constexpr u64 kActive = 1ull << 0;         // measurement currently on
inline constexpr u64 kRecordCalls = 1ull << 1;    // record function entries
inline constexpr u64 kRecordReturns = 1ull << 2;  // record function exits
inline constexpr u64 kMultithread = 1ull << 16;   // entries carry thread ids
inline constexpr u64 kRingBuffer = 1ull << 17;    // wrap instead of dropping
}  // namespace log_flags

inline constexpr u32 kLogVersion = 1;
inline constexpr u64 kLogMagic = 0x5445455045524631ull;  // "TEEPERF1"

enum class EventKind : u64 { kCall = 0, kReturn = 1 };

// Log entry (Figure 2b): the top bit of the first word distinguishes call
// from return; the remaining 63 bits hold the counter value at the event.
// 32 bytes so two entries share a cache line and the array stays aligned.
struct LogEntry {
  static constexpr u64 kKindBit = 1ull << 63;

  u64 kind_and_counter = 0;
  u64 addr = 0;  // call/return target: function address or registered id
  u64 tid = 0;   // profiler-assigned thread id (dense, starts at 0)
  u64 reserved = 0;

  static u64 pack(EventKind kind, u64 counter) {
    return (kind == EventKind::kReturn ? kKindBit : 0) | (counter & ~kKindBit);
  }
  EventKind kind() const {
    return (kind_and_counter & kKindBit) ? EventKind::kReturn : EventKind::kCall;
  }
  u64 counter() const { return kind_and_counter & ~kKindBit; }
};
static_assert(sizeof(LogEntry) == 32);

// Log header (Figure 2a). `flags`, `tail` and `counter` are the only fields
// mutated after initialisation; `version` and the rest are written once and
// never changed (§II-B: the version "is static after it is written once").
struct LogHeader {
  u64 magic = 0;
  std::atomic<u64> flags{0};
  u32 version = 0;
  u32 reserved0 = 0;
  u64 shm_base = 0;    // address the shared memory is mapped at in the app
  u64 pid = 0;         // process id of the profiled application
  u64 max_entries = 0; // immutable capacity; writers past this drop entries
  std::atomic<u64> tail{0};       // index of the next entry to write
  u64 profiler_anchor = 0;        // address of a well-known function, used to
                                  // compute the load offset of relocatable code
  std::atomic<u64> counter{0};    // the software counter lives here so the
                                  // counter thread touches one cache line
  u32 counter_mode = 0;           // CounterMode the entries were taken with
  u32 reserved2 = 0;
  double ns_per_tick = 0.0;       // measured at dump time; lets the analyzer
                                  // report human time (relative profiles do
                                  // not depend on its accuracy)
  u8 reserved1[128 - 11 * 8];     // pad so entries start cache-aligned
};
static_assert(sizeof(LogHeader) == 128);

// A view over a header + entry array placed in a caller-provided region.
// Does not own the memory (the shared-memory region or file buffer does).
class ProfileLog {
 public:
  ProfileLog() = default;

  // Formats `buffer` (of `size` bytes) as an empty log. Returns false if the
  // buffer cannot hold the header plus at least one entry.
  bool init(void* buffer, usize size, u64 pid, u64 initial_flags);

  // Adopts an already-formatted log (the analyzer side / reopened shm).
  // Returns false if the magic or version does not match or sizes disagree.
  bool adopt(void* buffer, usize size);

  // Lock-free append (§II-B stage #2): reserves a slot via fetch-and-add,
  // then writes the entry. Returns false (and counts a drop) when full —
  // unless kRingBuffer is set, in which case the slot wraps and the oldest
  // entry is overwritten (long-running sessions keep the newest window).
  bool append(EventKind kind, u64 addr, u64 tid, u64 counter);

  // Copies the entries in oldest→newest order into `out`, handling ring
  // wrap-around. For non-ring logs this is simply entries [0, size).
  void snapshot_ordered(std::vector<LogEntry>* out) const;

  bool valid() const { return header_ != nullptr; }
  LogHeader* header() { return header_; }
  const LogHeader* header() const { return header_; }

  // Number of complete entries: min(tail, max_entries). Entries past
  // max_entries were dropped; entries at the very tail may be torn if the
  // application was killed mid-write, which the analyzer tolerates.
  u64 size() const;
  u64 capacity() const { return header_ ? header_->max_entries : 0; }
  u64 dropped() const { return dropped_.load(std::memory_order_relaxed); }

  const LogEntry& entry(u64 i) const { return entries_[i]; }
  LogEntry* entries() { return entries_; }

  // Bytes needed for a log with `max_entries` entries.
  static usize bytes_for(u64 max_entries) {
    return sizeof(LogHeader) + static_cast<usize>(max_entries) * sizeof(LogEntry);
  }

  // Flag helpers (atomic; usable while the application runs).
  void set_active(bool on);
  bool active() const;
  void set_flags(u64 set_mask, u64 clear_mask);
  u64 flags() const;

  // Counts torn entries at the tail: slots that were reserved (tail moved
  // past them) but never filled in — all-zero words — because a writer died
  // between the fetch-and-add and the stores. Scans at most the last
  // `window` written entries; run at dump time, after writers stopped.
  u64 count_torn_tail(u64 window = 64) const;

 private:
  LogHeader* header_ = nullptr;
  LogEntry* entries_ = nullptr;
  std::atomic<u64> dropped_{0};
};

}  // namespace teeperf
