// Umbrella header: the TEE-Perf public API.
//
// Quickstart:
//
//   teeperf::RecorderOptions opts;
//   auto rec = teeperf::Recorder::create(opts);
//   rec->attach();
//   { TEEPERF_SCOPE("work"); do_work(); }   // or -finstrument-functions
//   rec->detach();
//   rec->dump("/tmp/run");                  // /tmp/run.log + /tmp/run.sym
//
// then analyze with analyzer/profile.h or visualize with flamegraph/.
#pragma once

#include "core/counter.h"     // IWYU pragma: export
#include "core/filter.h"      // IWYU pragma: export
#include "core/log_format.h"  // IWYU pragma: export
#include "core/recorder.h"    // IWYU pragma: export
#include "core/runtime.h"     // IWYU pragma: export
#include "core/scope.h"       // IWYU pragma: export
#include "common/shm.h"         // IWYU pragma: export
#include "core/symbol_registry.h"  // IWYU pragma: export
