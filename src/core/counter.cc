#include "core/counter.h"

#include <sched.h>

#include "common/spin.h"
#include "faultsim/fault.h"
#include "faultsim/fault_points.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace teeperf {

const char* counter_mode_name(CounterMode mode) {
  switch (mode) {
    case CounterMode::kSoftware: return "software";
    case CounterMode::kTsc: return "tsc";
    case CounterMode::kSteadyClock: return "steady_clock";
  }
  return "?";
}

u64 read_counter(CounterMode mode, const LogHeader* header) {
  switch (mode) {
    case CounterMode::kSoftware:
      return header->counter.load(std::memory_order_relaxed);
    case CounterMode::kTsc:
#if defined(__x86_64__) || defined(__i386__)
      return __rdtsc();
#else
      return monotonic_ns();
#endif
    case CounterMode::kSteadyClock:
      return monotonic_ns();
  }
  return 0;
}

std::optional<double> counter_ns_per_tick(CounterMode mode,
                                          const LogHeader* header) {
  if (mode == CounterMode::kSteadyClock) return 1.0;  // ticks ARE nanoseconds
  // Measure tick rate against the monotonic clock over a short window.
  u64 c0 = read_counter(mode, header);
  u64 t0 = monotonic_ns();
  spin_for_ns(2'000'000);  // 2 ms window
  u64 c1 = read_counter(mode, header);
  u64 t1 = monotonic_ns();
  // Degenerate window — a stalled counter or a clock that did not advance.
  // Used to fall back to 1.0 here, which was indistinguishable from a real
  // 1 ns/tick calibration and silently poisoned every downstream time
  // conversion; an explicit failure lets callers retry or mark the dump
  // uncalibrated instead.
  if (c1 <= c0 || t1 <= t0) return std::nullopt;
  return static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0);
}

SoftwareCounter::SoftwareCounter(LogHeader* header, u64 yield_every)
    : header_(header), yield_every_(yield_every) {}

SoftwareCounter::~SoftwareCounter() { stop(); }

void SoftwareCounter::start() {
  // The lifecycle used to publish running_ only *after* spawning: a stop()
  // racing that store saw running_ == false, skipped the join, and the
  // std::thread destructor called std::terminate. Serialize on the mutex and
  // key the decision on thread_.joinable() — the one fact that cannot race
  // the spawn — with running_ published before the thread exists.
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (thread_.joinable()) return;  // already started; idempotent
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void SoftwareCounter::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!thread_.joinable()) return;  // never started / already stopped
  stop_.store(true, std::memory_order_release);
  thread_.join();
  thread_ = std::thread();
  running_.store(false, std::memory_order_release);
}

void SoftwareCounter::run() {
  u64 t0 = monotonic_ns();
  u64 start_value = header_->counter.load(std::memory_order_relaxed);
  u64 local = start_value;
  u64 since_yield = 0;
  // The paper's tight loop: one relaxed store per increment. The stop flag
  // is polled on a coarse stride so the loop body stays one store wide.
  bool frozen = false;
  while (true) {
    if (!frozen) {
      for (int i = 0; i < 1024; ++i) {
        header_->counter.store(++local, std::memory_order_relaxed);
      }
      since_yield += 1024;
    } else {
      sched_yield();  // stalled clock: the thread lives, the word does not move
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    // Fault points, checked once per 1024-increment batch (one relaxed load
    // when nothing is armed): a stalled counter thread, and a counter word
    // jumping backwards (a tampered or wrapped time source).
    if (fault::fires(fault_points::kCounterStall)) frozen = true;
    if (fault::fires(fault_points::kCounterBackjump)) {
      u64 jump = 4096 + fault::value_below(fault_points::kCounterBackjump, 4096);
      local = local > jump ? local - jump : 0;
      header_->counter.store(local, std::memory_order_relaxed);
    }
    if (yield_every_ && since_yield >= yield_every_) {
      since_yield = 0;
      sched_yield();
    }
  }
  u64 t1 = monotonic_ns();
  if (t1 > t0 && local > start_value) {  // backjump faults can end below start
    ticks_per_second_ = static_cast<double>(local - start_value) * 1e9 /
                        static_cast<double>(t1 - t0);
  }
}

}  // namespace teeperf
