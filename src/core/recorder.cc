#include "core/recorder.h"

#include <unistd.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "common/fileutil.h"
#include "core/runtime.h"
#include "core/symbol_dump.h"

namespace teeperf {

std::unique_ptr<Recorder> Recorder::create(const RecorderOptions& options) {
  auto rec = std::unique_ptr<Recorder>(new Recorder());
  rec->options_ = options;
  usize bytes = ProfileLog::bytes_for(options.max_entries);
  bool ok = options.shm_name.empty() ? rec->shm_.create_anonymous(bytes)
                                     : rec->shm_.create(options.shm_name, bytes);
  if (!ok) return nullptr;

  u64 flags = log_flags::kMultithread;
  if (options.ring_buffer) flags |= log_flags::kRingBuffer;
  if (options.start_active) flags |= log_flags::kActive;
  if (options.record_calls) flags |= log_flags::kRecordCalls;
  if (options.record_returns) flags |= log_flags::kRecordReturns;
  if (!rec->log_.init(rec->shm_.data(), bytes, static_cast<u64>(getpid()), flags)) {
    return nullptr;
  }
  rec->log_.header()->counter_mode = static_cast<u32>(options.counter_mode);
  return rec;
}

Recorder::~Recorder() { detach(); }

bool Recorder::attach() {
  if (attached_) return true;
  if (!runtime::attach(&log_, options_.counter_mode, options_.filter)) return false;
  if (options_.counter_mode == CounterMode::kSoftware) {
    counter_ = std::make_unique<SoftwareCounter>(log_.header(),
                                                 options_.software_counter_yield);
    counter_->start();
  }
  attached_ = true;
  return true;
}

void Recorder::detach() {
  if (!attached_) return;
  runtime::detach();
  if (counter_) {
    counter_->stop();
    counter_.reset();
  }
  attached_ = false;
}

Recorder::Stats Recorder::stats() const {
  return Stats{log_.size(), log_.dropped(), log_.capacity()};
}

bool Recorder::dump(const std::string& prefix) {
  // Measure the tick rate before serialising so the analyzer can convert.
  log_.header()->ns_per_tick =
      counter_ns_per_tick(options_.counter_mode, log_.header());

  u64 tail = log_.header()->tail.load(std::memory_order_acquire);
  if ((log_.flags() & log_flags::kRingBuffer) && tail > log_.capacity()) {
    // Wrapped ring: persist a normalized file (header + ordered entries)
    // so the analyzer's offline loader needs no wrap logic.
    std::vector<LogEntry> ordered;
    log_.snapshot_ordered(&ordered);
    LogHeader header_copy;
    std::memcpy(&header_copy, log_.header(), sizeof(LogHeader));
    header_copy.tail.store(ordered.size(), std::memory_order_relaxed);
    header_copy.flags.store(log_.flags() & ~log_flags::kRingBuffer,
                            std::memory_order_relaxed);
    std::string out(reinterpret_cast<const char*>(&header_copy), sizeof(LogHeader));
    out.append(reinterpret_cast<const char*>(ordered.data()),
               ordered.size() * sizeof(LogEntry));
    if (!write_file(prefix + ".log", out)) return false;
  } else {
    u64 n = log_.size();
    usize bytes = sizeof(LogHeader) + static_cast<usize>(n) * sizeof(LogEntry);
    std::string_view raw(static_cast<const char*>(shm_.data()), bytes);
    if (!write_file(prefix + ".log", raw)) return false;
  }

  // Symbol file: every registered symbol, then dladdr resolutions for raw
  // addresses recorded via the -finstrument-functions route. dladdr plays
  // the role of the paper's addr2line/DWARF lookup (see DESIGN.md).
  return write_file(prefix + ".sym", build_symbol_file(log_));
}

}  // namespace teeperf
