#include "core/recorder.h"

#include <csignal>
#include <unistd.h>

#include <cstring>
#include <string_view>
#include <thread>
#include <vector>

#include "common/fileutil.h"
#include "common/session_registry.h"
#include "common/spin.h"
#include "common/stringutil.h"
#include "core/runtime.h"
#include "faultsim/fault.h"
#include "faultsim/fault_points.h"
#include "obs/metric_names.h"
#include "core/symbol_dump.h"
#include "obs/export.h"

namespace teeperf {

// Auto shard count for v2 logs: a power of two covering the hardware
// concurrency (so tid % N spreads threads evenly), clamped to [1, 64] and
// then reduced until each shard keeps >= 1024 entries — small test logs
// collapse to one shard, whose drop arithmetic is exactly v1's.
static u32 pick_shard_count(const RecorderOptions& options) {
  if (options.shards == 0) return 0;
  if (options.shards > 0) {
    u32 n = static_cast<u32>(options.shards);
    return n > kMaxLogShards ? kMaxLogShards : n;
  }
  u32 hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  u32 n = 1;
  while (n < hw && n < 64) n <<= 1;
  while (n > 1 && options.max_entries / n < 1024) n >>= 1;
  return n;
}

std::unique_ptr<Recorder> Recorder::create(const RecorderOptions& options) {
  auto rec = std::unique_ptr<Recorder>(new Recorder());
  rec->options_ = options;
  u32 shards = pick_shard_count(options);
  if (options.spill_drain && shards == 0) return nullptr;  // spill needs v2
  // Replicated trusted time applies only to the software counter; TSC and
  // the steady clock are per-core hardware sources with nothing to replicate.
  u32 replicas = options.counter_mode == CounterMode::kSoftware
                     ? (options.counter_replicas > kMaxCounterReplicas
                            ? kMaxCounterReplicas
                            : options.counter_replicas)
                     : 0;
  rec->options_.counter_replicas = replicas;
  usize bytes =
      ProfileLog::bytes_for_replicated(options.max_entries, shards, replicas);
  bool ok;
  if (options.shm_name == "auto") {
    // Fresh multi-session name "/teeperf.<pid>.<nonce>.log"; the nonce
    // makes concurrent sessions (and pid reuse) collision-free. create() is
    // O_EXCL, so a nonce collision just retries with a new one.
    ok = false;
    for (int attempt = 0; attempt < 4 && !ok; ++attempt) {
      rec->options_.shm_name =
          session_registry::shm_base(static_cast<u64>(getpid()),
                                     session_registry::make_nonce()) +
          ".log";
      ok = rec->shm_.create(rec->options_.shm_name, bytes);
    }
  } else {
    ok = options.shm_name.empty()
             ? rec->shm_.create_anonymous(bytes)
             : rec->shm_.create(options.shm_name, bytes);
  }
  if (!ok) return nullptr;

  u64 flags = log_flags::kMultithread;
  if (options.ring_buffer) flags |= log_flags::kRingBuffer;
  if (options.spill_drain) flags |= log_flags::kSpillDrain;
  if (options.start_active) flags |= log_flags::kActive;
  if (options.record_calls) flags |= log_flags::kRecordCalls;
  if (options.record_returns) flags |= log_flags::kRecordReturns;
  if (!rec->log_.init(rec->shm_.data(), bytes, static_cast<u64>(getpid()), flags,
                      shards, replicas)) {
    return nullptr;
  }
  rec->log_.header()->counter_mode = static_cast<u32>(options.counter_mode);

  // The telemetry region shares the session's shm base: "<base>.obs" next
  // to "<base>.log" in the multi-session scheme, legacy "<name>.obs" for
  // names without the ".log" suffix.
  const std::string& log_name = rec->options_.shm_name;
  std::string obs_base = log_name;
  if (ends_with(obs_base, ".log")) obs_base.resize(obs_base.size() - 4);
  if (options.telemetry) {
    obs::TelemetryOptions topts;
    if (!log_name.empty()) topts.shm_name = obs_base + ".obs";
    rec->telemetry_ = obs::SelfTelemetry::create(topts);
    // A failed telemetry region (e.g. shm exhaustion) degrades to a blind
    // session rather than failing the profile.
  }

  // Named sessions announce themselves in the on-disk registry so
  // host-side observers (teeperf_monitord, teeperf_stats --list) can
  // discover and attach without guessing shm names. Withdrawn in the
  // destructor; a crashed session is reclaimed by stale-session GC.
  if (!log_name.empty() && options.publish_session) {
    session_registry::SessionDescriptor desc;
    std::string name = obs_base;
    for (char& c : name) {
      if (c == '/') c = '.';
    }
    while (!name.empty() && name.front() == '.') name.erase(name.begin());
    desc.name = name;
    desc.pid = static_cast<u64>(getpid());
    desc.log_shm = log_name;
    if (rec->telemetry_) desc.obs_shm = rec->telemetry_->shm_name();
    desc.capacity = options.max_entries;
    desc.shards = rec->log_.shard_count();
    desc.start_ns = monotonic_ns();
    rec->session_dir_ = options.session_dir.empty()
                            ? session_registry::registry_dir()
                            : options.session_dir;
    if (session_registry::publish_session(rec->session_dir_, desc)) {
      rec->session_name_ = desc.name;
    }
  }
  return rec;
}

Recorder::~Recorder() {
  detach();
  if (!session_name_.empty()) {
    session_registry::unpublish_session(session_dir_, session_name_);
  }
  if (telemetry_) obs::uninstall(telemetry_.get());
}

bool Recorder::attach() {
  if (attached_) return true;
  if (!runtime::attach(&log_, options_.counter_mode, options_.filter)) return false;
  if (options_.counter_mode == CounterMode::kSoftware) {
    if (log_.counter_replica_count() > 0) {
      ReplicatedCounterOptions ropts;
      ropts.yield_every = options_.software_counter_yield;
      replicated_ = std::make_unique<ReplicatedCounter>(
          log_.header(), log_.replica_directory(), log_.replica_slot(0),
          ropts);
      if (telemetry_) {
        // Elections and replica backjumps are journaled by the owner (the
        // detector thread invokes these synchronously, after republishing
        // the directory), so a scraper sees the event and the updated
        // counter.failover gauge in the same watchdog window.
        obs::EventJournal* journal = &telemetry_->journal();
        replicated_->set_failover_callback(
            [journal](u32 from, u32 to, u64 at_value) {
              (void)at_value;
              journal->record(obs::EventType::kCounterFailover, from, to,
                              "replica");
            });
        replicated_->set_backjump_callback(
            [journal](u32 replica, u64 from, u64 to) {
              journal->record(obs::EventType::kCounterBackjump, to, from,
                              "replica");
              (void)replica;
            });
      }
      replicated_->start();
    } else {
      counter_ = std::make_unique<SoftwareCounter>(
          log_.header(), options_.software_counter_yield);
      counter_->start();
    }
  }
  if (telemetry_) {
    // Publish for the in-process hook instrumentation (runtime.cc), then
    // start the counter-health watchdog against the live counter and log.
    obs::install(telemetry_.get());
    telemetry_->journal().record(obs::EventType::kAttach,
                                 static_cast<u64>(getpid()), 0,
                                 counter_mode_name(options_.counter_mode));
    telemetry_->registry().gauge(obs::metric_names::kLogCapacity).set(log_.capacity());
    obs::WatchdogOptions wopts;
    wopts.interval_ms = options_.watchdog_interval_ms;
    LogHeader* header = log_.header();
    CounterMode mode = options_.counter_mode;
    watchdog_ = std::make_unique<obs::Watchdog>(
        &telemetry_->registry(), &telemetry_->journal(),
        [mode, header] { return read_counter(mode, header); },
        counter_mode_name(mode), wopts);
    watchdog_->watch_log([this] {
      obs::LogSample s;
      s.tail = log_.attempted();
      s.capacity = log_.capacity();
      s.active = log_.active();
      s.ring = (log_.flags() & log_flags::kRingBuffer) != 0;
      s.spill = log_.spill();
      s.dropped = log_.dropped();
      for (u32 i = 0; i < log_.shard_count(); ++i) {
        s.shard_tails.push_back(
            log_.shard(i)->tail.load(std::memory_order_relaxed));
      }
      if (s.spill && drain_sampler_) {
        DrainSample d = drain_sampler_();
        s.drain_lag = d.lag_entries;
        s.drain_spilled_bytes = d.spilled_bytes;
        s.drained_entries = d.drained_entries;
      }
      return s;
    });
    if (replicated_) {
      ReplicatedCounter* rc = replicated_.get();
      watchdog_->watch_replicas([rc] {
        ReplicatedCounter::Health h = rc->health();
        obs::ReplicaSample s;
        s.replicas = h.replicas;
        s.primary = h.primary;
        s.failovers = h.failovers;
        s.backjumps = h.backjumps;
        s.stalled_replicas = h.stalled_replicas;
        s.drift_permille = h.drift_permille;
        return s;
      });
      telemetry_->registry()
          .gauge(obs::metric_names::kCounterReplicas)
          .set(log_.counter_replica_count());
    }
    watchdog_->start();
  }
  attached_ = true;
  return true;
}

void Recorder::detach() {
  if (!attached_) return;
  runtime::detach();
  if (watchdog_) {
    watchdog_->stop();
    watchdog_.reset();
  }
  if (telemetry_) {
    telemetry_->journal().record(obs::EventType::kDetach, log_.size(),
                                 log_.dropped());
  }
  if (counter_) {
    counter_->stop();
    counter_.reset();
  }
  if (replicated_) {
    replicated_->stop();
    replicated_.reset();
  }
  attached_ = false;
}

void Recorder::start() {
  log_.set_active(true);
  if (telemetry_) telemetry_->journal().record(obs::EventType::kActivate);
}

void Recorder::stop() {
  log_.set_active(false);
  if (telemetry_) telemetry_->journal().record(obs::EventType::kDeactivate);
}

Recorder::Stats Recorder::stats() const {
  Stats s;
  s.entries = log_.size();
  s.dropped = log_.dropped();
  s.capacity = log_.capacity();
  s.attempted = log_.attempted();
  s.shards = log_.shard_count();
  s.torn_tail = log_.count_torn_tail();
  s.counter_stalled = watchdog_ && watchdog_->stalled();
  s.counter_replicas = log_.counter_replica_count();
  if (replicated_) {
    ReplicatedCounter::Health h = replicated_->health();
    s.counter_failovers = h.failovers;
    s.counter_backjumps = h.backjumps;
  }
  return s;
}

bool Recorder::dump(const std::string& prefix) {
  // Fault point: the whole session dying at dump time — nothing persisted,
  // descriptor and shm segments left orphaned for stale-session GC.
  if (fault::fires(fault_points::kRecorderDumpDie)) {
    raise(SIGKILL);  // teeperf-lint: allow(r1): the fault IS the syscall
  }

  // Measure the tick rate before serialising so the analyzer can convert.
  // A replicated session has been calibrating continuously (every healthy
  // detector window), so prefer that long-window estimate; otherwise take a
  // fresh spot measurement, retrying a couple of times — a single stalled
  // 2 ms window must not silently mark the dump as 1 ns/tick (the old bug).
  // ns_per_tick = 0 in the header means "uncalibrated"; the analyzer then
  // reports raw ticks instead of fabricated time.
  std::optional<double> npt;
  if (replicated_) npt = replicated_->calibrated_ns_per_tick();
  for (int attempt = 0; attempt < 3 && !npt; ++attempt) {
    npt = counter_ns_per_tick(options_.counter_mode, log_.header());
  }
  log_.header()->ns_per_tick = npt.value_or(0.0);

  // Fault point: the dump failing outright (disk full, signal mid-exit).
  if (fault::fires(fault_points::kDumpFail)) return false;

  u64 tail = log_.header()->tail.load(std::memory_order_acquire);
  bool wrapped = (log_.flags() & log_flags::kRingBuffer) &&
                 (log_.sharded() || tail > log_.capacity());
  if (log_.sharded() || wrapped) {
    // Sharded (v2) or wrapped-ring logs persist in compact form: windows
    // packed back-to-back, ring order normalized, directory rewritten — so
    // the analyzer's offline loader needs no wrap or gap logic. The faults
    // mangle the serialized copy, never the live log.
    std::string out = log_.serialize_compact();
    fault::apply_byte_faults(fault_points::kDumpPrefix, &out);
    if (!write_file(prefix + ".log", out)) return false;
  } else {
    u64 n = log_.size();
    usize bytes = sizeof(LogHeader) + static_cast<usize>(n) * sizeof(LogEntry);
    std::string_view raw(static_cast<const char*>(shm_.data()), bytes);
    if (fault::Registry::instance().any_armed()) {
      // Copy so the torn/bit-flip faults mangle the file, not the live log.
      std::string out(raw);
      fault::apply_byte_faults(fault_points::kDumpPrefix, &out);
      if (!write_file(prefix + ".log", out)) return false;
    } else if (!write_file(prefix + ".log", raw)) {
      return false;
    }
  }

  // Self-telemetry sidecars: the health snapshot embedded in analyzer
  // reports, and the event journal as JSON-lines. A dying writer is the
  // moment torn tails become detectable, so scan now.
  if (telemetry_) {
    if (u64 torn = log_.count_torn_tail()) {
      telemetry_->journal().record(obs::EventType::kTornTail, torn);
      telemetry_->registry().gauge(obs::metric_names::kLogTornTail).set(torn);
    }
    write_file(prefix + ".health",
               obs::health_text(telemetry_->registry(), telemetry_->journal()));
    write_file(prefix + ".events.jsonl",
               obs::events_jsonl(telemetry_->journal()));
  }

  // Symbol file: every registered symbol, then dladdr resolutions for raw
  // addresses recorded via the -finstrument-functions route. dladdr plays
  // the role of the paper's addr2line/DWARF lookup (see DESIGN.md).
  return write_file(prefix + ".sym", build_symbol_file(log_));
}

}  // namespace teeperf
