// Selective code profiling (§II-C): a knob to restrict which functions are
// recorded, reducing both log size and instrumentation overhead.
//
// A Filter is built before the session attaches and must not be mutated
// afterwards — the hook hot path reads it without synchronisation.
#pragma once

#include <string_view>
#include <unordered_set>

#include "common/types.h"

namespace teeperf {

class Filter {
 public:
  enum class Mode {
    kAll,        // record everything (default)
    kAllowlist,  // record only listed functions
    kDenylist,   // record everything except listed functions
  };

  Filter() = default;
  explicit Filter(Mode mode) : mode_(mode) {}

  void set_mode(Mode mode) { mode_ = mode; }
  Mode mode() const { return mode_; }

  // Adds a raw id/address to the list.
  void add(u64 addr) { ids_.insert(addr); }

  // Interns `name` in the SymbolRegistry and adds its id. Returns the id so
  // callers can reuse it for scopes.
  u64 add_name(std::string_view name);

  bool passes(u64 addr) const {
    switch (mode_) {
      case Mode::kAll: return true;
      case Mode::kAllowlist: return ids_.contains(addr);
      case Mode::kDenylist: return !ids_.contains(addr);
    }
    return true;
  }

  usize size() const { return ids_.size(); }

 private:
  Mode mode_ = Mode::kAll;
  std::unordered_set<u64> ids_;
};

}  // namespace teeperf
