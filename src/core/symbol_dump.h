// Builds the ".sym" sidecar contents for a recorded log: every registered
// symbol plus dladdr resolutions for raw -finstrument-functions addresses
// appearing in the log. Must run in the *profiled* process (dladdr needs
// its address space) — either at Recorder::dump() for in-process sessions
// or at exit for wrapper-launched sessions (TEEPERF_SYM, see auto_attach).
#pragma once

#include <string>

#include "core/log_format.h"

namespace teeperf {

std::string build_symbol_file(const ProfileLog& log);

}  // namespace teeperf
