#include "core/symbol_registry.h"

#include <cxxabi.h>

#include <charconv>
#include <cstdlib>

#include "common/stringutil.h"
#include "obs/metric_names.h"
#include "obs/session.h"

namespace teeperf {

SymbolRegistry& SymbolRegistry::instance() {
  static SymbolRegistry* reg = new SymbolRegistry();  // immortal: hooks may
  return *reg;                                        // run during shutdown
}

u64 SymbolRegistry::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key(name);
  auto it = by_name_.find(key);
  if (it != by_name_.end()) return it->second;
  u64 id = kRegisteredBit | static_cast<u64>(names_.size());
  names_.push_back(key);
  by_name_.emplace(std::move(key), id);
  if (obs::SelfTelemetry* tel = obs::telemetry()) {
    tel->registry().gauge(obs::metric_names::kSymbolsRegistered).set(names_.size());
  }
  return id;
}

std::string SymbolRegistry::name_of(u64 id) const {
  if (!is_registered_id(id)) return {};
  std::lock_guard<std::mutex> lock(mu_);
  u64 index = id & ~kRegisteredBit;
  return index < names_.size() ? names_[index] : std::string{};
}

std::string SymbolRegistry::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (usize i = 0; i < names_.size(); ++i) {
    out += str_format("%llu\t", static_cast<unsigned long long>(kRegisteredBit | i));
    out += names_[i];
    out += '\n';
  }
  return out;
}

std::unordered_map<u64, std::string> SymbolRegistry::parse(std::string_view text) {
  std::unordered_map<u64, std::string> out;
  for (std::string_view line : split(text, '\n')) {
    if (line.empty()) continue;
    usize tab = line.find('\t');
    if (tab == std::string_view::npos) continue;
    u64 id = 0;
    auto [ptr, ec] = std::from_chars(line.data(), line.data() + tab, id);
    if (ec != std::errc{} || ptr != line.data() + tab) continue;
    out.emplace(id, std::string(line.substr(tab + 1)));
  }
  return out;
}

usize SymbolRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

void SymbolRegistry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mu_);
  by_name_.clear();
  names_.clear();
}

std::string demangle(const char* mangled) {
  int status = 0;
  char* out = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && out) {
    std::string s(out);
    std::free(out);
    return s;
  }
  std::free(out);
  return mangled ? std::string(mangled) : std::string();
}

}  // namespace teeperf
