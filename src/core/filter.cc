#include "core/filter.h"

#include "core/symbol_registry.h"

namespace teeperf {

u64 Filter::add_name(std::string_view name) {
  u64 id = SymbolRegistry::instance().intern(name);
  ids_.insert(id);
  return id;
}

}  // namespace teeperf
