// Cross-process attachment: the application side of the recorder wrapper.
//
// The paper's workflow runs the *recorder* as its own host process: it
// creates the shared-memory log, launches the (instrumented) application,
// runs the software counter, and persists the log afterwards. The
// application's linked-in profiler library "maps the shared memory region
// into the measured application's address space" (§II-B) at startup.
//
// Protocol: the wrapper exports
//   TEEPERF_SHM=<posix shm name>       the log region to map
//   TEEPERF_COUNTER=<software|tsc|steady_clock>   time source to read
//   TEEPERF_SYM=<path>                 where to write symbols at exit
//   TEEPERF_FILTER=allow:<n1,n2,...> | deny:<n1,n2,...>   selective
//                                      profiling by registered scope name
// and the library constructor in auto_attach.cc maps + adopts the log and
// installs the runtime session before main() runs.
#pragma once

#include <string>

namespace teeperf {

// Attempts env-driven attachment. Returns true if a session was installed.
// Idempotent; safe to call when the variables are absent (no-op).
bool try_attach_from_env();

// True if the current session came from try_attach_from_env().
bool attached_from_env();

// Detaches an env-driven session (called automatically at exit).
void detach_env_session();

}  // namespace teeperf
