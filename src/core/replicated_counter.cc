#include "core/replicated_counter.h"

#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/spin.h"
#include "faultsim/fault.h"
#include "faultsim/fault_points.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace teeperf {

namespace {

// Best-effort core pinning: replica i lands on core i % ncores so that on a
// machine with spare cores every replica owns one (the paper sacrifices a
// core for the counter; we sacrifice up to three small slices). Failure is
// fine — a cpuset-restricted container just runs unpinned.
void pin_to_core(std::thread& t, u32 index) {
#if defined(__linux__)
  long ncores = sysconf(_SC_NPROCESSORS_ONLN);
  if (ncores <= 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % static_cast<u32>(ncores)), &set);
  pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
#else
  (void)t;
  (void)index;
#endif
}

}  // namespace

ReplicatedCounter::ReplicatedCounter(LogHeader* header,
                                     CounterReplicaDirectory* dir,
                                     CounterReplicaSlot* slots,
                                     ReplicatedCounterOptions options)
    : header_(header), dir_(dir), slots_(slots), options_(options) {
  replicas_ = dir_ ? dir_->replica_count : 0;
  health_.replicas = replicas_;
}

ReplicatedCounter::~ReplicatedCounter() { stop(); }

void ReplicatedCounter::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!threads_.empty()) return;  // already started; idempotent
  if (replicas_ == 0) return;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  threads_.reserve(replicas_ + 1);
  for (u32 r = 0; r < replicas_; ++r) {
    threads_.emplace_back([this, r] { replica_run(r); });
    if (options_.pin_cores) pin_to_core(threads_.back(), r);
  }
  threads_.emplace_back([this] { detector_run(); });
}

void ReplicatedCounter::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (threads_.empty()) return;  // never started / already stopped
  stop_.store(true, std::memory_order_release);
  detector_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  running_.store(false, std::memory_order_release);
}

void ReplicatedCounter::replica_run(u32 index) {
  CounterReplicaSlot& slot = slots_[index];
  u64 local = slot.value.load(std::memory_order_relaxed);
  u64 since_yield = 0;
  bool frozen = false;
  bool was_primary = false;
  while (true) {
    bool primary =
        dir_->primary.load(std::memory_order_relaxed) == index && !frozen;
    if (primary && !was_primary) {
      // Just elected: rebase onto the published timeline so the mirrored
      // header word never moves backwards across a fail-over.
      u64 h = header_->counter.load(std::memory_order_relaxed);
      if (h > local) local = h;
    }
    was_primary = primary;
    if (!frozen) {
      // The paper's tight loop, per replica: one relaxed store per tick to
      // a private cache line. Only the elected primary pays the second
      // store that mirrors into the probe-visible header word.
      if (primary) {
        for (int i = 0; i < 1024; ++i) {
          ++local;
          slot.value.store(local, std::memory_order_relaxed);
          header_->counter.store(local, std::memory_order_relaxed);
        }
      } else {
        for (int i = 0; i < 1024; ++i) {
          slot.value.store(++local, std::memory_order_relaxed);
        }
      }
      since_yield += 1024;
    } else {
      sched_yield();  // stalled clock: the thread lives, the word does not
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    // Fault points, once per 1024-tick batch. The plain stall/backjump
    // points hit whichever replica consumes the arming first; the .primary
    // variants fire only in the currently elected replica, which is what
    // "armed against the primary" scenarios need to be deterministic.
    if (fault::fires(fault_points::kCounterStall)) frozen = true;
    if (primary && fault::fires(fault_points::kCounterStallPrimary)) {
      frozen = true;
    }
    bool jump_armed = fault::fires(fault_points::kCounterBackjump) ||
                      (primary &&
                       fault::fires(fault_points::kCounterBackjumpPrimary));
    if (jump_armed) {
      u64 jump =
          4096 + fault::value_below(fault_points::kCounterBackjump, 4096);
      local = local > jump ? local - jump : 0;
      slot.value.store(local, std::memory_order_relaxed);
    }
    if (options_.yield_every && since_yield >= options_.yield_every) {
      since_yield = 0;
      sched_yield();
    }
  }
}

void ReplicatedCounter::detector_run() {
  std::vector<u64> last(replicas_, 0);
  std::vector<u32> zero_windows(replicas_, 0);
  for (u32 r = 0; r < replicas_; ++r) {
    last[r] = slots_[r].value.load(std::memory_order_relaxed);
  }
  u64 last_ns = monotonic_ns();
  std::unique_lock<std::mutex> lock(detector_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    detector_cv_.wait_for(lock,
                          std::chrono::microseconds(options_.detect_interval_us));
    if (stop_.load(std::memory_order_acquire)) break;
    u64 now = monotonic_ns();
    u64 dt = now - last_ns;
    last_ns = now;
    if (dt == 0) continue;

    u32 primary = dir_->primary.load(std::memory_order_relaxed);
    bool primary_bad = false;
    bool primary_jumped = false;
    u64 primary_dc = 0;
    std::vector<double> rates;
    rates.reserve(replicas_);
    for (u32 r = 0; r < replicas_; ++r) {
      u64 v = slots_[r].value.load(std::memory_order_relaxed);
      if (v < last[r]) {
        // Backjump: a tampered or wrapped replica word. Journaled by the
        // owner via the callback; the replica itself keeps running (its
        // word is monotonic again from the lower value).
        dir_->backjumps.fetch_add(1, std::memory_order_relaxed);
        health_.backjumps = dir_->backjumps.load(std::memory_order_relaxed);
        if (on_backjump_) on_backjump_(r, last[r], v);
        if (r == primary) {
          primary_bad = true;
          primary_jumped = true;
        }
        zero_windows[r] = 0;
        last[r] = v;
        continue;
      }
      u64 dc = v - last[r];
      last[r] = v;
      if (dc == 0) {
        ++zero_windows[r];
        if (r == primary && zero_windows[r] >= options_.stall_windows) {
          primary_bad = true;
        }
      } else {
        zero_windows[r] = 0;
        rates.push_back(static_cast<double>(dc) / static_cast<double>(dt));
      }
      if (r == primary) primary_dc = dc;
    }

    // Drift across replicas: max relative deviation from the median rate of
    // the replicas that advanced this window. Scheduling makes individual
    // windows noisy, so this is a health signal, not an alarm by itself —
    // the watchdog publishes it and its own baseline logic decides.
    health_.drift_permille = 0;
    if (rates.size() >= 2) {
      std::vector<double> sorted = rates;
      std::sort(sorted.begin(), sorted.end());
      double med = sorted[sorted.size() / 2];
      if (med > 0) {
        double worst = 0;
        for (double rr : rates) {
          double dev = rr > med ? rr - med : med - rr;
          if (dev / med > worst) worst = dev / med;
        }
        health_.drift_permille = static_cast<u64>(worst * 1000.0);
      }
    }

    u32 stalled = 0;
    for (u32 r = 0; r < replicas_; ++r) {
      if (zero_windows[r] >= options_.stall_windows) ++stalled;
    }
    health_.stalled_replicas = stalled;

    bool elected = false;
    if (primary_bad && replicas_ > 1) {
      // Elect the healthy replica with the largest value: it has made the
      // most progress, so rebasing onto it loses the least resolution and
      // the mirrored timeline only ever moves forward.
      u32 best = primary;
      u64 best_v = 0;
      for (u32 r = 0; r < replicas_; ++r) {
        if (r == primary) continue;
        if (zero_windows[r] >= options_.stall_windows) continue;
        u64 v = slots_[r].value.load(std::memory_order_relaxed);
        if (best == primary || v > best_v) {
          best = r;
          best_v = v;
        }
      }
      if (best != primary) {
        dir_->primary.store(best, std::memory_order_release);
        dir_->failovers.fetch_add(1, std::memory_order_relaxed);
        health_.failovers = dir_->failovers.load(std::memory_order_relaxed);
        health_.primary = best;
        elected = true;
        if (on_failover_) {
          on_failover_(primary, best,
                       header_->counter.load(std::memory_order_relaxed));
        }
      }
    } else {
      health_.primary = primary;
    }

    // Calibration: accumulate the elected primary's (dt, dc) unless this
    // window contained an election or a primary backjump. Zero-tick windows
    // are included on purpose — see the header comment.
    if (!elected && !primary_jumped) {
      calib_dt_ += static_cast<double>(dt);
      calib_dc_ += static_cast<double>(primary_dc);
    }
  }
}

ReplicatedCounter::Health ReplicatedCounter::health() const {
  std::lock_guard<std::mutex> lock(detector_mu_);
  Health h = health_;
  h.replicas = replicas_;
  if (dir_) {
    h.primary = dir_->primary.load(std::memory_order_relaxed);
    h.failovers = dir_->failovers.load(std::memory_order_relaxed);
    h.backjumps = dir_->backjumps.load(std::memory_order_relaxed);
  }
  return h;
}

std::optional<double> ReplicatedCounter::calibrated_ns_per_tick() const {
  std::lock_guard<std::mutex> lock(detector_mu_);
  if (calib_dc_ <= 0.0 || calib_dt_ <= 0.0) return std::nullopt;
  return calib_dt_ / calib_dc_;
}

}  // namespace teeperf
