// The in-application half of the recorder (§II-B, stage #2): the code that
// the compiler pass (or the RAII scope API) invokes on every function entry
// and exit. It writes log entries into the shared-memory log and maintains a
// per-thread shadow stack that the sampling-profiler baseline reads
// asynchronously.
//
// Everything on the hot path is annotated no_instrument_function so that a
// binary compiled with -finstrument-functions does not recurse into its own
// profiler (§III: "the injected code has to prevent to be measured itself").
#pragma once

#include <vector>

#include "common/types.h"
#include "core/counter.h"
#include "core/filter.h"
#include "core/log_format.h"

#define TEEPERF_NO_INSTRUMENT __attribute__((no_instrument_function))

namespace teeperf::runtime {

// Per-thread shadow stack of function ids. Readable from a signal handler:
// depth is an atomic written after the frame slot, and readers tolerate the
// benign race of a frame changing under them (it is a sampling profile).
struct ShadowStack {
  static constexpr int kMaxDepth = 512;
  u64 frames[kMaxDepth];
  std::atomic<int> depth{0};
};

struct ThreadState {
  // Direct-mapped filter in front of the global first-sight address table
  // (see seen_addresses): one TLS load + compare per recorded event in the
  // steady state, global CAS probes only on conflict misses.
  static constexpr usize kAddrCacheSize = 256;  // power of two
  u64 addr_cache[kAddrCacheSize] = {};
  u64 tid = ~0ull;
  bool in_hook = false;  // reentrancy guard
  // Cached per-thread telemetry counter (entries appended by this thread),
  // pointing straight at its shm cell. `obs_epoch` detects that the cached
  // pointer belongs to a torn-down telemetry region (see obs/session.h).
  std::atomic<u64>* obs_entries = nullptr;
  u64 obs_epoch = 0;
  ShadowStack stack;
  // Thread-local batch for v2 sharded logs (pass-through on v1). Flushed on
  // overflow, on returning to call depth 0, on observing deactivation, at
  // thread exit, and by detach() for the detaching thread.
  LogBatch batch;
};

// Installs the session: `log` may be null for sampling-only sessions (the
// shadow stacks are still maintained). `filter` may be null (record all).
// Neither object may be destroyed before detach(). Only one session can be
// attached at a time; attach returns false if one already is.
bool attach(ProfileLog* log, CounterMode mode, const Filter* filter) TEEPERF_NO_INSTRUMENT;
void detach() TEEPERF_NO_INSTRUMENT;
bool attached() TEEPERF_NO_INSTRUMENT;

ProfileLog* current_log() TEEPERF_NO_INSTRUMENT;
CounterMode counter_mode() TEEPERF_NO_INSTRUMENT;

// The instrumentation entry points. `addr` is a raw function address (cyg
// hooks) or a registered symbol id (scope API).
void on_enter(u64 addr) TEEPERF_NO_INSTRUMENT;
void on_exit(u64 addr) TEEPERF_NO_INSTRUMENT;

// This thread's profiler-assigned id (dense, assigned on first event).
u64 current_tid() TEEPERF_NO_INSTRUMENT;

// Number of threads that have produced at least one event this session.
u64 thread_count() TEEPERF_NO_INSTRUMENT;

// Copies the calling thread's shadow stack (bottom → top) into `out`,
// returning the depth copied (≤ max). Async-signal-safe.
int capture_own_stack(u64* out, int max) TEEPERF_NO_INSTRUMENT;

// Appends every raw function address recorded since process start (or the
// last reset) to `out`. A drained (spill mode) or wrapped (ring mode) log
// no longer holds every address that passed through it, so exit-time
// symbolization (symbol_dump) walks this set rather than only the residual
// window. Backed by a fixed-capacity lock-free table; on saturation new
// addresses are simply not tracked and symbolization degrades to whatever
// the residue holds.
void seen_addresses(std::vector<u64>* out);

// Resets the calling thread's shadow stack and cached tid. Test-only: lets
// one process run many independent sessions.
void reset_thread_for_test() TEEPERF_NO_INSTRUMENT;

// Clears the first-sight address table. Test-only, same purpose.
void reset_seen_addresses_for_test();

}  // namespace teeperf::runtime
