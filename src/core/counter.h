// Time sources for the recorder (§II-B, stage #2).
//
// TEE-Perf must work without architecture-specific timers, so its portable
// time source is a *software counter*: a host thread incrementing a 64-bit
// word in a tight loop. The word lives in the log header, so the counter
// thread's cache footprint is a single line. Because TEE-Perf does
// method-level *relative* profiling, the counter only needs to be monotonic
// and fine-grained, not calibrated.
//
// Where hardware counters are available the recorder "is responsible for
// making [them] accessible" — here as a TSC-based and a clock_gettime-based
// source. On the single-core CI machine these are the default for benches,
// because a dedicated counter thread would starve the workload (the paper
// runs on 4 cores and explicitly accepts sacrificing one).
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <thread>

#include "common/types.h"
#include "core/log_format.h"

namespace teeperf {

enum class CounterMode {
  kSoftware,     // dedicated thread incrementing LogHeader::counter
  kTsc,          // rdtsc (falls back to kSteadyClock on non-x86)
  kSteadyClock,  // CLOCK_MONOTONIC nanoseconds
};

const char* counter_mode_name(CounterMode mode);

// Reads the current counter value for `mode`. `header` is only used by
// kSoftware. Marked always_inline adjacent: this is the hook hot path.
u64 read_counter(CounterMode mode, const LogHeader* header);

// Nanoseconds per counter tick for `mode`, measured empirically against
// CLOCK_MONOTONIC. Used by the analyzer to convert tick deltas into human
// time; relative profiles do not depend on it being exact.
//
// Returns nullopt when the measurement window is degenerate — the counter
// did not advance (stalled software counter) or the clock did not — instead
// of a value indistinguishable from a real 1 ns/tick calibration. Callers
// retry or record an uncalibrated dump (ns_per_tick = 0).
std::optional<double> counter_ns_per_tick(CounterMode mode,
                                          const LogHeader* header);

// The software counter thread (§II-B). Increments header->counter in a tight
// loop until stopped. `yield_every` optionally inserts sched_yield every N
// increments so that single-core machines still make workload progress; 0
// reproduces the paper's pure tight loop.
class SoftwareCounter {
 public:
  explicit SoftwareCounter(LogHeader* header, u64 yield_every = 0);
  ~SoftwareCounter();

  SoftwareCounter(const SoftwareCounter&) = delete;
  SoftwareCounter& operator=(const SoftwareCounter&) = delete;

  // Race-free and idempotent: concurrent or repeated start()/stop() pairs
  // are serialized on an internal mutex and keyed on thread_.joinable(), so
  // a stop() racing a start() always joins the thread it observed instead
  // of skipping the join and letting ~thread() call std::terminate.
  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Measured increment rate (ticks/second) of the last run; 0 if never run.
  double ticks_per_second() const { return ticks_per_second_; }

 private:
  void run();

  LogHeader* header_;
  u64 yield_every_;
  std::mutex lifecycle_mu_;  // serializes start()/stop(); never on a hot path
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  double ticks_per_second_ = 0.0;
};

}  // namespace teeperf
