// Replicated trusted time (DESIGN.md §13; Triad direction, PAPERS.md).
//
// The paper's software counter is one host thread incrementing one shared
// word — a single scheduling stall (or a malicious host descheduling exactly
// that thread) silently freezes every timestamp. This subsystem runs 2–3
// counter replicas pinned to distinct cores, each incrementing its own
// cache-line-isolated shm word (CounterReplicaSlot), with a detector thread
// that cross-checks the replicas, elects a primary, and fails over when the
// primary stalls or jumps backwards.
//
// The probe path is unchanged: the elected primary *mirrors* its ticks into
// LogHeader::counter, so the application still performs exactly one relaxed
// load per probe and pre-replica readers (watchdog, teeperf_stats, old
// dumps) keep working. On failover the new primary rebases its local value
// to max(own, header word) before mirroring, so the published timeline stays
// monotonic across elections.
//
// The detector doubles as the calibration pass: it accumulates (Δwall-ns,
// Δticks) pairs for the elected primary across healthy windows, and
// calibrated_ns_per_tick() = Σdt / Σdc maps ticks to real time. Zero-tick
// windows are *included* (profiled code accrues no ticks while the counter
// is descheduled either, so including the elapsed time keeps tick→wall
// conversion faithful end-to-end); windows containing an election or a
// backjump are excluded.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/types.h"
#include "core/log_format.h"

namespace teeperf {

struct ReplicatedCounterOptions {
  // sched_yield after this many increments per replica (0 = pure tight
  // loop). Replicas default to yielding so single-core CI machines still
  // make workload progress with several counter threads alive.
  u64 yield_every = 4096;
  // Detector cross-check cadence. Much finer than the watchdog's 50 ms so
  // fail-over completes within a few milliseconds of a primary stall.
  u64 detect_interval_us = 2000;
  // Consecutive zero-delta detector windows before a replica counts as
  // stalled (and, if primary, triggers an election).
  u32 stall_windows = 2;
  // Pin replica i to core i % ncores (best-effort; failures are ignored —
  // a constrained CI container still works, just without the isolation).
  bool pin_cores = true;
};

class ReplicatedCounter {
 public:
  // `log` must carry a replica block (ProfileLog::counter_replica_count()
  // > 0); the log region must outlive this object.
  ReplicatedCounter(LogHeader* header, CounterReplicaDirectory* dir,
                    CounterReplicaSlot* slots,
                    ReplicatedCounterOptions options = {});
  ~ReplicatedCounter();

  ReplicatedCounter(const ReplicatedCounter&) = delete;
  ReplicatedCounter& operator=(const ReplicatedCounter&) = delete;

  // Race-free and idempotent, same lifecycle discipline as SoftwareCounter.
  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Cross-replica health, as sampled by the detector thread.
  struct Health {
    u32 replicas = 0;
    u32 primary = 0;            // currently elected replica index
    u64 failovers = 0;          // elections after the initial one
    u64 backjumps = 0;          // replica words observed moving backwards
    u32 stalled_replicas = 0;   // replicas currently past the stall window
    u64 drift_permille = 0;     // max relative per-replica rate deviation
                                // from the median, in permille
  };
  Health health() const;

  // Σdt / Σdc over the elected primary's healthy windows; nullopt until at
  // least one window with forward progress has been accumulated.
  std::optional<double> calibrated_ns_per_tick() const;

  // Invoked from the detector thread on every election (after dir->primary
  // is republished). Must be set before start(). `at_value` is the counter
  // value the new primary takes over from.
  using FailoverCallback =
      std::function<void(u32 from, u32 to, u64 at_value)>;
  void set_failover_callback(FailoverCallback cb) {
    on_failover_ = std::move(cb);
  }

  // Invoked from the detector thread when a replica's word moves backwards.
  using BackjumpCallback =
      std::function<void(u32 replica, u64 from, u64 to)>;
  void set_backjump_callback(BackjumpCallback cb) {
    on_backjump_ = std::move(cb);
  }

 private:
  void replica_run(u32 index);
  void detector_run();

  LogHeader* header_;
  CounterReplicaDirectory* dir_;
  CounterReplicaSlot* slots_;
  ReplicatedCounterOptions options_;
  u32 replicas_;

  FailoverCallback on_failover_;
  BackjumpCallback on_backjump_;

  std::mutex lifecycle_mu_;
  std::vector<std::thread> threads_;  // replicas + the detector (last)
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  mutable std::mutex detector_mu_;  // guards detector sleep + published health
  std::condition_variable detector_cv_;

  // Detector state, published under detector_mu_ for health()/calibration.
  Health health_{};
  double calib_dt_ = 0.0;  // Σ wall-ns over accumulated windows
  double calib_dc_ = 0.0;  // Σ primary ticks over the same windows
};

}  // namespace teeperf
