#include "core/auto_attach.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/fileutil.h"
#include "common/shm.h"
#include "common/stringutil.h"
#include "core/counter.h"
#include "core/filter.h"
#include "faultsim/fault.h"
#include "core/runtime.h"
#include "core/symbol_dump.h"
#include "obs/session.h"

namespace teeperf {
namespace {

// Static-storage session state for the env-attached case. Heap-free and
// constructed before main() via the constructor attribute below.
SharedMemoryRegion& env_region() {
  static SharedMemoryRegion region;
  return region;
}
ProfileLog& env_log() {
  static ProfileLog log;
  return log;
}
bool g_env_attached = false;

// The wrapper's telemetry region (TEEPERF_OBS), shared by both processes:
// the wrapper's watchdog publishes counter/log health into it while this
// process bumps its per-thread entry counters. Immortal like env_region().
std::unique_ptr<obs::SelfTelemetry>& env_telemetry() {
  static std::unique_ptr<obs::SelfTelemetry> t;
  return t;
}

CounterMode parse_mode(const char* s) {
  if (s && std::strcmp(s, "software") == 0) return CounterMode::kSoftware;
  if (s && std::strcmp(s, "steady_clock") == 0) return CounterMode::kSteadyClock;
  return CounterMode::kTsc;
}

// Parses TEEPERF_FILTER ("allow:a,b" / "deny:a,b") into the static filter.
// Returns null when unset or malformed (= record everything).
const Filter* parse_env_filter(const char* spec) {
  if (!spec || !*spec) return nullptr;
  static Filter filter;  // immortal: must outlive the session
  std::string_view sv(spec);
  Filter::Mode mode;
  if (starts_with(sv, "allow:")) {
    mode = Filter::Mode::kAllowlist;
  } else if (starts_with(sv, "deny:")) {
    mode = Filter::Mode::kDenylist;
  } else {
    return nullptr;
  }
  filter.set_mode(mode);
  for (std::string_view name : split(sv.substr(sv.find(':') + 1), ',')) {
    if (!name.empty()) filter.add_name(name);
  }
  return &filter;
}

}  // namespace

bool try_attach_from_env() {
  if (g_env_attached) return true;
  const char* shm_name = std::getenv("TEEPERF_SHM");
  if (!shm_name || !*shm_name) return false;
  // Fault points travel with the session: a wrapper launched with --faults
  // exports TEEPERF_FAULTS/TEEPERF_FAULT_SEED so the child's copies of the
  // instrumented paths (append, dump, counter) arm too.
  fault::Registry::instance().arm_from_env();
  if (!env_region().open(shm_name)) return false;
  if (!env_log().adopt(env_region().data(), env_region().size())) {
    env_region().close();
    return false;
  }
  CounterMode mode = parse_mode(std::getenv("TEEPERF_COUNTER"));
  const Filter* filter = parse_env_filter(std::getenv("TEEPERF_FILTER"));
  if (!runtime::attach(&env_log(), mode, filter)) {
    env_region().close();
    return false;
  }
  if (const char* obs_name = std::getenv("TEEPERF_OBS"); obs_name && *obs_name) {
    env_telemetry() = obs::SelfTelemetry::open(obs_name);
    if (env_telemetry()) {
      obs::install(env_telemetry().get());
      env_telemetry()->journal().record(obs::EventType::kAttach,
                                        static_cast<u64>(getpid()), 0, "app");
    }
  }
  g_env_attached = true;
  std::atexit(detach_env_session);
  return true;
}

bool attached_from_env() { return g_env_attached; }

void detach_env_session() {
  if (!g_env_attached) return;
  runtime::detach();
  g_env_attached = false;
  if (env_telemetry()) {
    env_telemetry()->journal().record(obs::EventType::kDetach,
                                      env_log().size(), env_log().dropped(),
                                      "app");
    obs::uninstall(env_telemetry().get());
  }
  // Symbolization must happen here, in the profiled address space: the
  // wrapper process cannot dladdr our function pointers. TEEPERF_SYM names
  // the sidecar file the wrapper will pair with its ".log".
  if (const char* sym_path = std::getenv("TEEPERF_SYM"); sym_path && *sym_path) {
    write_file(sym_path, build_symbol_file(env_log()));
  }
  // The region itself stays mapped until process exit: late hooks (global
  // destructors) must not fault, they just see a detached runtime.
}

// Runs before main() in any binary linking teeperf_core, making the
// paper's "recorder wrapper launches the app" flow work with zero
// application code: the wrapper sets the env vars, the app self-attaches.
__attribute__((constructor)) static void teeperf_env_autoattach() {
  try_attach_from_env();
}

}  // namespace teeperf
