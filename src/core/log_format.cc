#include "core/log_format.h"

#include <csignal>

#include "faultsim/fault.h"

namespace teeperf {

bool ProfileLog::init(void* buffer, usize size, u64 pid, u64 initial_flags) {
  if (!buffer || size < sizeof(LogHeader) + sizeof(LogEntry)) return false;
  auto* h = new (buffer) LogHeader();
  h->magic = kLogMagic;
  h->version = kLogVersion;
  h->shm_base = reinterpret_cast<u64>(buffer);
  h->pid = pid;
  h->max_entries = (size - sizeof(LogHeader)) / sizeof(LogEntry);
  h->tail.store(0, std::memory_order_relaxed);
  h->counter.store(0, std::memory_order_relaxed);
  h->profiler_anchor = reinterpret_cast<u64>(&kLogMagic);
  h->flags.store(initial_flags, std::memory_order_release);
  header_ = h;
  entries_ = reinterpret_cast<LogEntry*>(static_cast<u8*>(buffer) + sizeof(LogHeader));
  dropped_.store(0, std::memory_order_relaxed);
  return true;
}

bool ProfileLog::adopt(void* buffer, usize size) {
  if (!buffer || size < sizeof(LogHeader)) return false;
  auto* h = reinterpret_cast<LogHeader*>(buffer);
  if (h->magic != kLogMagic || h->version != kLogVersion) return false;
  // Divide rather than multiply: a corrupt max_entries (from a hostile or
  // truncated region) must not overflow u64 and sneak past the size check.
  if (h->max_entries == 0 ||
      h->max_entries > (size - sizeof(LogHeader)) / sizeof(LogEntry)) {
    return false;
  }
  header_ = h;
  entries_ = reinterpret_cast<LogEntry*>(static_cast<u8*>(buffer) + sizeof(LogHeader));
  return true;
}

bool ProfileLog::append(EventKind kind, u64 addr, u64 tid, u64 counter) {
  // Reserve first, then write: each slot is written exactly once even under
  // contention. Unfair access to the tail is harmless because only
  // per-thread ordering matters to the analyzer (§II-B).
  u64 slot = header_->tail.fetch_add(1, std::memory_order_relaxed);
  if (slot >= header_->max_entries) {
    if (header_->flags.load(std::memory_order_relaxed) & log_flags::kRingBuffer) {
      slot %= header_->max_entries;  // overwrite the oldest window
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  // Fault point: the writer dying between reserving the slot and filling it
  // in — the exact tear the analyzer's tombstone handling exists for. The
  // site acts out the death itself (SIGKILL, no cleanup) so the torn slot
  // is produced by the real production code path.
  if (fault::fires("log.append.die")) raise(SIGKILL);
  LogEntry& e = entries_[slot];
  e.kind_and_counter = LogEntry::pack(kind, counter);
  e.addr = addr;
  e.tid = tid;
  e.reserved = 0;
  return true;
}

void ProfileLog::snapshot_ordered(std::vector<LogEntry>* out) const {
  out->clear();
  if (!header_) return;
  u64 tail = header_->tail.load(std::memory_order_acquire);
  u64 cap = header_->max_entries;
  bool ring = header_->flags.load(std::memory_order_relaxed) & log_flags::kRingBuffer;
  if (!ring || tail <= cap) {
    u64 n = tail < cap ? tail : cap;
    out->assign(entries_, entries_ + n);
    return;
  }
  // Wrapped: the oldest surviving entry sits at tail % cap.
  u64 start = tail % cap;
  out->reserve(cap);
  out->insert(out->end(), entries_ + start, entries_ + cap);
  out->insert(out->end(), entries_, entries_ + start);
}

u64 ProfileLog::size() const {
  if (!header_) return 0;
  u64 t = header_->tail.load(std::memory_order_acquire);
  return t < header_->max_entries ? t : header_->max_entries;
}

void ProfileLog::set_active(bool on) {
  if (on)
    header_->flags.fetch_or(log_flags::kActive, std::memory_order_acq_rel);
  else
    header_->flags.fetch_and(~log_flags::kActive, std::memory_order_acq_rel);
}

bool ProfileLog::active() const {
  return header_ &&
         (header_->flags.load(std::memory_order_acquire) & log_flags::kActive);
}

void ProfileLog::set_flags(u64 set_mask, u64 clear_mask) {
  u64 old = header_->flags.load(std::memory_order_relaxed);
  while (!header_->flags.compare_exchange_weak(old, (old & ~clear_mask) | set_mask,
                                               std::memory_order_acq_rel)) {
  }
}

u64 ProfileLog::flags() const {
  return header_ ? header_->flags.load(std::memory_order_acquire) : 0;
}

u64 ProfileLog::count_torn_tail(u64 window) const {
  u64 n = size();
  if (n == 0) return 0;
  u64 start = n > window ? n - window : 0;
  u64 torn = 0;
  for (u64 i = start; i < n; ++i) {
    const LogEntry& e = entries_[i];
    // A legitimate entry always has a nonzero address; counter 0 with kind
    // kCall is additionally possible only as the very first event of a
    // software-counter run, so the pair is a reliable tombstone.
    if (e.kind_and_counter == 0 && e.addr == 0 && e.tid == 0) ++torn;
  }
  return torn;
}

}  // namespace teeperf
