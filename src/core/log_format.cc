#include "core/log_format.h"

#include <csignal>
#include <new>

#include "faultsim/fault.h"
#include "faultsim/fault_points.h"

namespace teeperf {

namespace {

// A reserved-but-never-written slot: the writer died between the tail
// fetch-and-add and the stores. A legitimate entry always has a nonzero
// address, so the all-zero pattern is a reliable tombstone.
inline bool is_tombstone(const LogEntry& e) {
  return e.kind_and_counter == 0 && e.addr == 0 && e.tid == 0;
}

// Spill-mode space-wait budget (ProfileLog::set_spill_wait_spins). Process-
// wide rather than per-log: it is a tuning knob, not log state, and keeping
// it out of the shared header means a misbehaving peer cannot zero it.
std::atomic<u64> g_spill_wait_spins{u64{1} << 27};

}  // namespace

void ProfileLog::set_spill_wait_spins(u64 n) {
  g_spill_wait_spins.store(n, std::memory_order_relaxed);
}

u64 ProfileLog::spill_wait_spins() {
  return g_spill_wait_spins.load(std::memory_order_relaxed);
}

bool ProfileLog::init(void* buffer, usize size, u64 pid, u64 initial_flags,
                      u32 shard_count, u32 counter_replicas) {
  if (!buffer) return false;
  if (shard_count > kMaxLogShards) return false;
  if (counter_replicas > kMaxCounterReplicas) return false;
  // Spill-drain is a v2 protocol (the cursors live in the shard directory)
  // and supersedes ring wrap: the two reclaim policies cannot coexist.
  if ((initial_flags & log_flags::kSpillDrain) &&
      (shard_count == 0 || (initial_flags & log_flags::kRingBuffer))) {
    return false;
  }
  usize overhead =
      sizeof(LogHeader) + static_cast<usize>(shard_count) * sizeof(LogShard);
  if (size < overhead + sizeof(LogEntry) * (shard_count ? shard_count : 1)) {
    return false;
  }
  // Fault point: the shard directory failing to come up (e.g. the shm grant
  // shrank under us between sizing and formatting). Modeled as init failure
  // so callers exercise their no-log degradation path.
  if (shard_count > 0 && fault::fires(fault_points::kLogShardAllocFail)) return false;

  // The trailing replica block (plus its alignment pad) comes off the entry
  // budget; shrink until the aligned layout fits (the pad depends on the
  // entry count, so the closed form is not exact).
  usize replica_bytes =
      counter_replicas ? sizeof(CounterReplicaDirectory) +
                             static_cast<usize>(counter_replicas) *
                                 sizeof(CounterReplicaSlot)
                       : 0;
  if (counter_replicas && size < overhead + replica_bytes + 64) return false;
  u64 total = (size - overhead - replica_bytes) / sizeof(LogEntry);
  while (total > 0 &&
         bytes_for_replicated(total, shard_count, counter_replicas) > size) {
    --total;
  }
  if (shard_count) total -= total % shard_count;  // equal segments
  if (total < (shard_count ? shard_count : 1)) return false;

  auto* h = new (buffer) LogHeader();
  h->magic = kLogMagic;
  h->version = shard_count ? kLogVersionSharded : kLogVersion;
  h->shard_count = shard_count;
  h->shm_base = reinterpret_cast<u64>(buffer);
  h->pid = pid;
  h->counter_replicas = counter_replicas;
  h->max_entries = total;
  h->tail.store(0, std::memory_order_relaxed);
  h->counter.store(0, std::memory_order_relaxed);
  h->profiler_anchor = reinterpret_cast<u64>(&kLogMagic);
  h->flags.store(initial_flags, std::memory_order_release);
  header_ = h;
  u8* base = static_cast<u8*>(buffer);
  if (shard_count) {
    shards_ = reinterpret_cast<LogShard*>(base + sizeof(LogHeader));
    u64 per_shard = total / shard_count;
    for (u32 s = 0; s < shard_count; ++s) {
      auto* sh = new (&shards_[s]) LogShard();
      sh->entry_offset = static_cast<u64>(s) * per_shard;
      sh->capacity = per_shard;
    }
  } else {
    shards_ = nullptr;
  }
  entries_ = reinterpret_cast<LogEntry*>(base + overhead);
  if (counter_replicas) {
    usize block_off =
        (overhead + static_cast<usize>(total) * sizeof(LogEntry) + 63) &
        ~usize{63};
    replica_dir_ = new (base + block_off) CounterReplicaDirectory();
    replica_dir_->replica_count = counter_replicas;
    replica_slots_ = reinterpret_cast<CounterReplicaSlot*>(
        base + block_off + sizeof(CounterReplicaDirectory));
    for (u32 r = 0; r < counter_replicas; ++r) {
      new (&replica_slots_[r]) CounterReplicaSlot();
    }
  } else {
    replica_dir_ = nullptr;
    replica_slots_ = nullptr;
  }
  return true;
}

bool ProfileLog::adopt(void* buffer, usize size) {
  if (!buffer || size < sizeof(LogHeader)) return false;
  auto* h = reinterpret_cast<LogHeader*>(buffer);
  if (h->magic != kLogMagic) return false;
  if (h->version != kLogVersion && h->version != kLogVersionSharded) {
    return false;
  }
  bool v2 = h->version == kLogVersionSharded;
  // v1 headers must not smuggle in a directory; v2 must have a sane one.
  if (!v2 && h->shard_count != 0) return false;
  if (v2 && (h->shard_count == 0 || h->shard_count > kMaxLogShards)) {
    return false;
  }
  usize overhead = sizeof(LogHeader) +
                   static_cast<usize>(h->shard_count) * sizeof(LogShard);
  if (size < overhead) return false;
  // Divide rather than multiply: a corrupt max_entries (from a hostile or
  // truncated region) must not overflow u64 and sneak past the size check.
  if (h->max_entries == 0 ||
      h->max_entries > (size - overhead) / sizeof(LogEntry)) {
    return false;
  }
  u8* base = static_cast<u8*>(buffer);
  if (v2) {
    auto* dir = reinterpret_cast<LogShard*>(base + sizeof(LogHeader));
    for (u32 s = 0; s < h->shard_count; ++s) {
      // Subtraction-form bounds check: offset + capacity computed directly
      // could wrap u64 and pass.
      if (dir[s].entry_offset > h->max_entries ||
          dir[s].capacity > h->max_entries - dir[s].entry_offset) {
        return false;
      }
    }
    shards_ = dir;
  } else {
    shards_ = nullptr;
  }
  header_ = h;
  entries_ = reinterpret_cast<LogEntry*>(base + overhead);
  // Replica block: live shm regions carry it after the entry array; loaded
  // dumps (compact or raw) never do, and a stale/hostile counter_replicas
  // pointing past the region degrades to "no replicas" rather than a reject
  // — every pre-replica consumer of the log proper still works.
  replica_dir_ = nullptr;
  replica_slots_ = nullptr;
  if (h->counter_replicas > 0 &&
      h->counter_replicas <= kMaxCounterReplicas) {
    usize block_off =
        (overhead + static_cast<usize>(h->max_entries) * sizeof(LogEntry) +
         63) &
        ~usize{63};
    usize block_bytes = sizeof(CounterReplicaDirectory) +
                        static_cast<usize>(h->counter_replicas) *
                            sizeof(CounterReplicaSlot);
    if (block_off <= size && block_bytes <= size - block_off) {
      auto* dir = reinterpret_cast<CounterReplicaDirectory*>(base + block_off);
      if (dir->replica_count == h->counter_replicas) {
        replica_dir_ = dir;
        replica_slots_ = reinterpret_cast<CounterReplicaSlot*>(
            base + block_off + sizeof(CounterReplicaDirectory));
      }
    }
  }
  return true;
}

bool ProfileLog::append(EventKind kind, u64 addr, u64 tid, u64 counter) {
  if (shards_) {
    LogEntry e;
    e.kind_and_counter = LogEntry::pack(kind, counter);
    e.addr = addr;
    e.tid = tid;
    e.reserved = 0;
    return append_one(e, tid);
  }
  // v1: reserve first, then write: each slot is written exactly once even
  // under contention. Unfair access to the tail is harmless because only
  // per-thread ordering matters to the analyzer (§II-B).
  u64 slot = header_->tail.fetch_add(1, std::memory_order_relaxed);
  if (slot >= header_->max_entries) {
    if (header_->flags.load(std::memory_order_relaxed) & log_flags::kRingBuffer) {
      slot %= header_->max_entries;  // overwrite the oldest window
    } else {
      // Counted in the shared header, not a process-local member, so a
      // reader attached from another process sees the app's drops.
      header_->dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  // Fault point: the writer dying between reserving the slot and filling it
  // in — the exact tear the analyzer's tombstone handling exists for. The
  // site acts out the death itself (SIGKILL, no cleanup) so the torn slot
  // is produced by the real production code path.
  if (fault::fires(fault_points::kLogAppendDie))
    raise(SIGKILL);  // teeperf-lint: allow(r1): the fault IS the syscall
  LogEntry& e = entries_[slot];
  e.kind_and_counter = LogEntry::pack(kind, counter);
  e.addr = addr;
  e.tid = tid;
  e.reserved = 0;
  return true;
}

bool ProfileLog::append_one(const LogEntry& e, u64 tid) {
  LogShard& sh = shards_[tid % header_->shard_count];
  if (header_->flags.load(std::memory_order_relaxed) & log_flags::kSpillDrain) {
    return spill_store(sh, &e, 1);
  }
  u64 slot = sh.tail.fetch_add(1, std::memory_order_relaxed);
  if (slot >= sh.capacity) {
    if (header_->flags.load(std::memory_order_relaxed) & log_flags::kRingBuffer) {
      slot %= sh.capacity;
    } else {
      sh.dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  if (fault::fires(fault_points::kLogAppendDie))
    raise(SIGKILL);  // teeperf-lint: allow(r1): the fault IS the syscall
  entries_[sh.entry_offset + slot] = e;
  return true;
}

bool ProfileLog::append_batch(const LogEntry* batch, u32 n, u64 tid) {
  if (n == 0) return true;
  if (!shards_) {
    // v1 has one shared tail; there is nothing a batch can amortize without
    // breaking interleaved reservation, so publish entry by entry.
    bool ok = true;
    for (u32 i = 0; i < n; ++i) {
      const LogEntry& e = batch[i];
      ok &= append(e.kind(), e.addr, e.tid, e.counter());
    }
    return ok;
  }
  LogShard& sh = shards_[tid % header_->shard_count];
  u64 f = header_->flags.load(std::memory_order_relaxed);
  if (f & log_flags::kSpillDrain) return spill_store(sh, batch, n);
  // One reservation covers the whole batch: this fetch-and-add is the only
  // shared-memory RMW the hot path pays per kCapacity events.
  u64 first = sh.tail.fetch_add(n, std::memory_order_relaxed);
  // Fault point: the writer dying after reserving the run but before
  // storing any of it — a batched flush can tear up to a whole batch of
  // slots, which the analyzer's tombstone accounting must absorb.
  if (fault::fires(fault_points::kLogFlushDie))
    raise(SIGKILL);  // teeperf-lint: allow(r1): the fault IS the syscall
  bool ring = (f & log_flags::kRingBuffer) != 0;
  LogEntry* seg = entries_ + sh.entry_offset;
  u64 cap = sh.capacity;
  if (!fault::Registry::instance().any_armed()) {
    if (first + n <= cap) {
      std::memcpy(seg + first, batch,
                  static_cast<usize>(n) * sizeof(LogEntry));
      return true;
    }
    if (ring && n <= cap) {
      // A wrapped run still publishes as at most two memcpy spans. Gating
      // the fast path on `first + n <= capacity` alone sent every flush
      // after the first wrap down the per-entry modulo loop for the rest
      // of the run — the tail only ever grows.
      u64 start = first % cap;
      u64 head = cap - start < n ? cap - start : n;
      std::memcpy(seg + start, batch,
                  static_cast<usize>(head) * sizeof(LogEntry));
      if (head < n) {
        std::memcpy(seg, batch + head,
                    static_cast<usize>(n - head) * sizeof(LogEntry));
      }
      return true;
    }
    if (!ring) {
      // Bounded log out of space: store what fits, count the rest.
      u64 fit = first < cap ? cap - first : 0;
      if (fit > 0) {
        std::memcpy(seg + first, batch,
                    static_cast<usize>(fit) * sizeof(LogEntry));
      }
      sh.dropped.fetch_add(n - fit, std::memory_order_relaxed);
      return false;
    }
    // Ring run longer than the whole segment: fall through to the
    // per-entry loop (degenerate; only the newest window survives anyway).
  }
  bool any_stored = false;
  for (u32 i = 0; i < n; ++i) {
    // Per-store fault point, same name and semantics as the unbatched path:
    // a batch dying at its Nth store leaves the already-reserved remainder
    // of the run as tombstones.
    if (fault::fires(fault_points::kLogAppendDie))
    raise(SIGKILL);  // teeperf-lint: allow(r1): the fault IS the syscall
    u64 slot = first + i;
    if (slot >= sh.capacity) {
      if (ring) {
        slot %= sh.capacity;
      } else {
        sh.dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    seg[slot] = batch[i];
    any_stored = true;
  }
  return any_stored && (ring || first + n <= sh.capacity);
}

bool ProfileLog::spill_store(LogShard& sh, const LogEntry* batch, u32 n) {
  u64 cap = sh.capacity;
  if (n > cap) {
    // A run larger than the whole segment can never have space; refuse it
    // outright rather than deadlocking on a wait that cannot succeed.
    sh.dropped.fetch_add(n, std::memory_order_relaxed);
    return false;
  }
  u64 first = sh.tail.fetch_add(n, std::memory_order_relaxed);
  // Fault point: same tear semantics as the bounded flush path — a writer
  // dying here leaves the whole reserved run as tombstones.
  if (fault::fires(fault_points::kLogFlushDie))
    raise(SIGKILL);  // teeperf-lint: allow(r1): the fault IS the syscall
  // Space wait: the run may only be stored over slots the drainer has
  // already consumed and zeroed, i.e. once first + n <= drained + capacity.
  // If the drainer is dead or hopelessly behind, the spin budget runs out
  // and the writer force-advances the drain cursor itself: the oldest
  // undrained entries are sacrificed (keep-newest policy) and every
  // discarded slot is accounted as dropped. CAS so a racing force-advance
  // or a revived drainer is never rolled back.
  u64 budget = g_spill_wait_spins.load(std::memory_order_relaxed);
  u64 d = sh.drained.load(std::memory_order_acquire);
  while (first + n > d + cap) {
    if (budget == 0) {
      u64 target = first + n - cap;
      if (sh.drained.compare_exchange_strong(d, target,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        sh.dropped.fetch_add(target - d, std::memory_order_relaxed);
        d = target;
      }
      budget = g_spill_wait_spins.load(std::memory_order_relaxed);
      continue;
    }
    --budget;
    d = sh.drained.load(std::memory_order_acquire);
  }
  // Store modulo capacity: at most two spans, same shape as the ring path.
  LogEntry* seg = entries_ + sh.entry_offset;
  u64 start = first % cap;
  u64 head = cap - start < n ? cap - start : n;
  std::memcpy(seg + start, batch, static_cast<usize>(head) * sizeof(LogEntry));
  if (head < n) {
    std::memcpy(seg, batch + head,
                static_cast<usize>(n - head) * sizeof(LogEntry));
  }
  // In-order publish: wait for every earlier reservation to commit, then
  // release this run. Commit order == reservation order is what makes
  // [drained, published) a contiguous fully-stored window the drainer can
  // consume while the application keeps writing.
  while (sh.published.load(std::memory_order_acquire) != first) {
  }
  // Fault point: dying between store and publish — the run (and everything
  // reserved after it) stays unpublished and surfaces as tombstones in the
  // final residue, never as a torn chunk.
  if (fault::fires(fault_points::kLogAppendDie))
    raise(SIGKILL);  // teeperf-lint: allow(r1): the fault IS the syscall
  sh.published.store(first + n, std::memory_order_release);
  return true;
}

void ProfileLog::shard_snapshot(u32 s, std::vector<LogEntry>* out) const {
  out->clear();
  if (!shards_ || s >= header_->shard_count) return;
  const LogShard& sh = shards_[s];
  u64 tail = sh.tail.load(std::memory_order_acquire);
  u64 cap = sh.capacity;
  const LogEntry* seg = entries_ + sh.entry_offset;
  if (cap == 0) return;
  u64 f = header_->flags.load(std::memory_order_relaxed);
  if (f & log_flags::kSpillDrain) {
    // Residue window: everything the drainer has not consumed,
    // [drained, min(tail, drained + capacity)), addressed modulo capacity.
    u64 d = sh.drained.load(std::memory_order_acquire);
    u64 hi = tail < d + cap ? tail : d + cap;
    if (hi <= d) return;
    u64 len = hi - d;
    u64 start = d % cap;
    u64 head = cap - start < len ? cap - start : len;
    out->reserve(len);
    out->insert(out->end(), seg + start, seg + start + head);
    out->insert(out->end(), seg, seg + (len - head));
    return;
  }
  bool ring = (f & log_flags::kRingBuffer) != 0;
  if (!ring || tail <= cap) {
    u64 n = tail < cap ? tail : cap;
    out->assign(seg, seg + n);
    return;
  }
  u64 start = tail % cap;
  out->reserve(cap);
  out->insert(out->end(), seg + start, seg + cap);
  out->insert(out->end(), seg, seg + start);
}

void ProfileLog::snapshot_ordered(std::vector<LogEntry>* out) const {
  out->clear();
  if (!header_) return;
  if (shards_) {
    // Per-shard windows concatenated in directory order. Cross-shard order
    // is arbitrary — as is cross-thread order in v1 — but each thread's
    // entries land in one shard in program order, which is the invariant
    // the analyzer depends on.
    out->reserve(size());
    std::vector<LogEntry> one;
    for (u32 s = 0; s < header_->shard_count; ++s) {
      shard_snapshot(s, &one);
      out->insert(out->end(), one.begin(), one.end());
    }
    return;
  }
  u64 tail = header_->tail.load(std::memory_order_acquire);
  u64 cap = header_->max_entries;
  bool ring = header_->flags.load(std::memory_order_relaxed) & log_flags::kRingBuffer;
  if (!ring || tail <= cap) {
    u64 n = tail < cap ? tail : cap;
    out->assign(entries_, entries_ + n);
    return;
  }
  // Wrapped: the oldest surviving entry sits at tail % cap.
  u64 start = tail % cap;
  out->reserve(cap);
  out->insert(out->end(), entries_ + start, entries_ + cap);
  out->insert(out->end(), entries_, entries_ + start);
}

std::string ProfileLog::serialize_compact() const {
  std::string out;
  if (!header_) return out;
  LogHeader header_copy;
  std::memcpy(static_cast<void*>(&header_copy), header_, sizeof(LogHeader));
  header_copy.flags.store(
      flags() & ~(log_flags::kRingBuffer | log_flags::kSpillDrain),
      std::memory_order_relaxed);
  // The replica block is shm-only: compact dumps never carry it, so the
  // header field is zeroed for byte-deterministic output (and so loaders
  // don't go looking for a block that is not there).
  header_copy.counter_replicas = 0;
  if (!shards_) {
    std::vector<LogEntry> ordered;
    snapshot_ordered(&ordered);
    header_copy.tail.store(ordered.size(), std::memory_order_relaxed);
    out.assign(reinterpret_cast<const char*>(&header_copy), sizeof(LogHeader));
    out.append(reinterpret_cast<const char*>(ordered.data()),
               ordered.size() * sizeof(LogEntry));
    return out;
  }
  // v2: pack the written windows back-to-back and rewrite the directory so
  // offsets are cumulative, capacity == tail == the written count, and no
  // wrap/gap logic survives into the file.
  u32 nshards = header_->shard_count;
  std::vector<std::vector<LogEntry>> windows(nshards);
  std::vector<LogShard> dir(nshards);
  u64 total = 0;
  for (u32 s = 0; s < nshards; ++s) {
    shard_snapshot(s, &windows[s]);
    dir[s].entry_offset = total;
    dir[s].capacity = windows[s].size();
    dir[s].tail.store(windows[s].size(), std::memory_order_relaxed);
    dir[s].dropped.store(shards_[s].dropped.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    // On disk `drained` carries the window's absolute start cursor (0 for
    // logs that never drained/wrapped, so plain dumps stay byte-identical).
    // The spill loader uses it to stitch chunk files and the final residue
    // into one stream and to skip overlap after a drainer crash/resume.
    dir[s].drained.store(shard_window_start(s), std::memory_order_relaxed);
    total += windows[s].size();
  }
  header_copy.max_entries = total;
  header_copy.tail.store(0, std::memory_order_relaxed);
  out.assign(reinterpret_cast<const char*>(&header_copy), sizeof(LogHeader));
  out.append(reinterpret_cast<const char*>(dir.data()),
             static_cast<usize>(nshards) * sizeof(LogShard));
  for (u32 s = 0; s < nshards; ++s) {
    out.append(reinterpret_cast<const char*>(windows[s].data()),
               windows[s].size() * sizeof(LogEntry));
  }
  return out;
}

u64 ProfileLog::shard_window_start(u32 s) const {
  if (!shards_ || s >= header_->shard_count) return 0;
  const LogShard& sh = shards_[s];
  u64 f = header_->flags.load(std::memory_order_relaxed);
  if (f & log_flags::kSpillDrain) {
    return sh.drained.load(std::memory_order_acquire);
  }
  if (f & log_flags::kRingBuffer) {
    u64 t = sh.tail.load(std::memory_order_acquire);
    if (t > sh.capacity) return t - sh.capacity;
  }
  return 0;
}

u64 ProfileLog::size() const {
  if (!header_) return 0;
  if (shards_) {
    u64 spill =
        header_->flags.load(std::memory_order_relaxed) & log_flags::kSpillDrain;
    u64 n = 0;
    for (u32 s = 0; s < header_->shard_count; ++s) {
      u64 t = shards_[s].tail.load(std::memory_order_acquire);
      u64 cap = shards_[s].capacity;
      if (spill) {
        // Undrained residue only; spilled entries live in chunk files.
        u64 d = shards_[s].drained.load(std::memory_order_acquire);
        u64 hi = t < d + cap ? t : d + cap;
        n += hi > d ? hi - d : 0;
      } else {
        n += t < cap ? t : cap;
      }
    }
    return n;
  }
  u64 t = header_->tail.load(std::memory_order_acquire);
  return t < header_->max_entries ? t : header_->max_entries;
}

u64 ProfileLog::attempted() const {
  if (!header_) return 0;
  if (shards_) {
    u64 n = 0;
    for (u32 s = 0; s < header_->shard_count; ++s) {
      n += shards_[s].tail.load(std::memory_order_acquire);
    }
    return n;
  }
  return header_->tail.load(std::memory_order_acquire);
}

u64 ProfileLog::dropped() const {
  if (!header_) return 0;
  if (shards_) {
    u64 n = 0;
    for (u32 s = 0; s < header_->shard_count; ++s) {
      n += shards_[s].dropped.load(std::memory_order_relaxed);
    }
    return n;
  }
  return header_->dropped.load(std::memory_order_relaxed);
}

void ProfileLog::set_active(bool on) {
  if (on)
    header_->flags.fetch_or(log_flags::kActive, std::memory_order_acq_rel);
  else
    header_->flags.fetch_and(~log_flags::kActive, std::memory_order_acq_rel);
}

bool ProfileLog::active() const {
  return header_ &&
         (header_->flags.load(std::memory_order_acquire) & log_flags::kActive);
}

void ProfileLog::set_flags(u64 set_mask, u64 clear_mask) {
  u64 old = header_->flags.load(std::memory_order_relaxed);
  while (!header_->flags.compare_exchange_weak(old, (old & ~clear_mask) | set_mask,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
  }
}

u64 ProfileLog::flags() const {
  return header_ ? header_->flags.load(std::memory_order_acquire) : 0;
}

u64 ProfileLog::shard_torn_tail(u32 s, u64 window) const {
  if (!header_) return 0;
  const LogEntry* seg = entries_;
  u64 t = 0;
  u64 cap = 0;
  u64 f = header_->flags.load(std::memory_order_relaxed);
  if (shards_) {
    if (s >= header_->shard_count) return 0;
    const LogShard& sh = shards_[s];
    t = sh.tail.load(std::memory_order_acquire);
    cap = sh.capacity;
    seg = entries_ + sh.entry_offset;
  } else {
    if (s != 0) return 0;
    t = header_->tail.load(std::memory_order_acquire);
    cap = header_->max_entries;
  }
  if (cap == 0) return 0;
  // The written window in absolute slot numbers. Bounded logs hold
  // [0, min(tail, cap)); a wrapped ring holds the newest capacity-sized
  // window [tail - cap, tail); a spill log holds the undrained residue
  // [drained, min(tail, drained + cap)). Slot a lives at seg[a % cap] —
  // indexing the scan from the clamped tail (the old code) walked the
  // wrong slots once a ring tail passed capacity: the newest entry sits
  // at (tail - 1) % cap, not at cap - 1.
  u64 lo = 0;
  u64 hi = t;
  if (shards_ && (f & log_flags::kSpillDrain)) {
    lo = shards_[s].drained.load(std::memory_order_acquire);
    u64 end = lo + cap;
    if (hi > end) hi = end;
  } else if (f & log_flags::kRingBuffer) {
    if (t > cap) lo = t - cap;
  } else if (hi > cap) {
    hi = cap;
  }
  if (hi <= lo) return 0;
  u64 from = hi > window ? hi - window : 0;
  if (from < lo) from = lo;
  u64 torn = 0;
  for (u64 a = from; a < hi; ++a) {
    if (is_tombstone(seg[a % cap])) ++torn;
  }
  return torn;
}

u64 ProfileLog::count_torn_tail(u64 window) const {
  if (!header_) return 0;
  if (!shards_) return shard_torn_tail(0, window);
  u64 torn = 0;
  for (u32 s = 0; s < header_->shard_count; ++s) {
    torn += shard_torn_tail(s, window);
  }
  return torn;
}

bool LogBatch::record(ProfileLog& log, EventKind kind, u64 addr, u64 tid,
                      u64 counter) {
  if (!log.sharded()) return log.append(kind, addr, tid, counter);
  if (count_ == kCapacity || (count_ > 0 && tid_ != tid)) {
    if (!flush(log)) {
      // The shard is full (non-ring): keep counting drops per event instead
      // of silently buffering into a log that will never take them.
      log.shard(log.shard_of(tid))
          ->dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  tid_ = tid;
  LogEntry& e = pending_[count_++];
  e.kind_and_counter = LogEntry::pack(kind, counter);
  e.addr = addr;
  e.tid = tid;
  e.reserved = 0;
  return true;
}

bool LogBatch::flush(ProfileLog& log) {
  if (count_ == 0) return true;
  u32 n = count_;
  count_ = 0;
  return log.append_batch(pending_, n, tid_);
}

}  // namespace teeperf
