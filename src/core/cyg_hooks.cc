// The compiler-pass route (§II-B, stage #1; §III "Compiler pass").
//
// Link this object into a binary compiled with -finstrument-functions and
// every function entry/exit lands here with the function's real address —
// the paper's `gcc -finstrument-functions --include=profiler.h ... -lprofiler`
// pipeline. The hooks themselves carry no_instrument_function so the
// profiler never measures itself (§III: that "would result in an infinity
// loop"); runtime::on_enter/on_exit additionally hold a per-thread
// reentrancy guard for anything they call.
#include "core/runtime.h"

namespace {

// Reentry latch for the hooks themselves. runtime::on_enter's own in_hook
// guard lives inside ThreadState, so reaching it requires a handful of calls
// (atomic<bool>::load, thread_state()) first — and in an unoptimized build
// those are out-of-line COMDAT functions that the linker may resolve to the
// *instrumented* copies instantiated by the application TU. Entering one of
// them from inside the hook then recurses straight back into
// __cyg_profile_func_enter before the guard is ever set, overflowing the
// stack. A trivially-initialized thread_local bool compiles to a direct
// TLS access with no function calls at any optimization level, so it can be
// checked safely before anything else runs.
thread_local bool tls_in_hook = false;

}  // namespace

extern "C" {

TEEPERF_NO_INSTRUMENT void __cyg_profile_func_enter(void* fn, void* /*call_site*/);
TEEPERF_NO_INSTRUMENT void __cyg_profile_func_exit(void* fn, void* /*call_site*/);

void __cyg_profile_func_enter(void* fn, void*) {
  if (tls_in_hook) return;
  tls_in_hook = true;
  teeperf::runtime::on_enter(reinterpret_cast<teeperf::u64>(fn));
  tls_in_hook = false;
}

void __cyg_profile_func_exit(void* fn, void*) {
  if (tls_in_hook) return;
  tls_in_hook = true;
  teeperf::runtime::on_exit(reinterpret_cast<teeperf::u64>(fn));
  tls_in_hook = false;
}

}  // extern "C"
