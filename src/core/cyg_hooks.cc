// The compiler-pass route (§II-B, stage #1; §III "Compiler pass").
//
// Link this object into a binary compiled with -finstrument-functions and
// every function entry/exit lands here with the function's real address —
// the paper's `gcc -finstrument-functions --include=profiler.h ... -lprofiler`
// pipeline. The hooks themselves carry no_instrument_function so the
// profiler never measures itself (§III: that "would result in an infinity
// loop"); runtime::on_enter/on_exit additionally hold a per-thread
// reentrancy guard for anything they call.
#include "core/runtime.h"

extern "C" {

TEEPERF_NO_INSTRUMENT void __cyg_profile_func_enter(void* fn, void* /*call_site*/);
TEEPERF_NO_INSTRUMENT void __cyg_profile_func_exit(void* fn, void* /*call_site*/);

void __cyg_profile_func_enter(void* fn, void*) {
  teeperf::runtime::on_enter(reinterpret_cast<teeperf::u64>(fn));
}

void __cyg_profile_func_exit(void* fn, void*) {
  teeperf::runtime::on_exit(reinterpret_cast<teeperf::u64>(fn));
}

}  // extern "C"
