#include "tee/sysapi.h"

#include <sched.h>
#include <time.h>
#include <unistd.h>

#include "core/scope.h"
#include "tee/enclave.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace teeperf::tee::sys {

TrapCounts& thread_trap_counts() {
  thread_local TrapCounts counts;
  return counts;
}

namespace {

// Charges a trapped-syscall OCALL when inside an enclave.
inline void charge_syscall() {
  Enclave* e = Enclave::current();
  if (!e) return;
  e->counters().trapped_syscalls.fetch_add(1, std::memory_order_relaxed);
  e->charge(e->costs().syscall_ocall_ns);
}

}  // namespace

u64 getpid() {
  TEEPERF_SCOPE("getpid");
  ++thread_trap_counts().getpid;
  charge_syscall();
  return static_cast<u64>(::getpid());
}

u64 rdtsc() {
  TEEPERF_SCOPE("rdtsc");
  ++thread_trap_counts().rdtsc;
  Enclave* e = Enclave::current();
  // Only SGX-like TEEs make rdtsc illegal; a zero trap cost means the
  // architecture allows direct timer reads (TrustZone/SEV profiles).
  if (e && e->costs().rdtsc_trap_ns > 0) {
    e->counters().rdtsc_traps.fetch_add(1, std::memory_order_relaxed);
    e->charge(e->costs().rdtsc_trap_ns);
  }
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<u64>(ts.tv_sec) * 1'000'000'000ull + static_cast<u64>(ts.tv_nsec);
#endif
}

u64 clock_gettime_ns() {
  TEEPERF_SCOPE("clock_gettime");
  ++thread_trap_counts().clock;
  charge_syscall();
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<u64>(ts.tv_sec) * 1'000'000'000ull + static_cast<u64>(ts.tv_nsec);
}

void yield() {
  TEEPERF_SCOPE("sched_yield");
  ++thread_trap_counts().yield;
  charge_syscall();
  sched_yield();
}

usize write_out(const void* data, usize len) {
  TEEPERF_SCOPE("write");
  ++thread_trap_counts().write;
  Enclave* e = Enclave::current();
  if (e) {
    e->counters().trapped_syscalls.fetch_add(1, std::memory_order_relaxed);
    e->charge(e->costs().syscall_ocall_ns);
    e->charge_mee(len, /*random=*/false);  // copy-out crosses the MEE
  }
  (void)data;
  return len;
}

}  // namespace teeperf::tee::sys
