// Micro-architectural cost model of a trusted execution environment.
//
// The paper's introduction names the TEE effects that make profiling
// necessary: secure context switches (TLB flush on enclave enter/exit),
// trapped instructions (rdtsc is illegal inside SGXv1 and causes an AEX),
// forbidden direct syscalls (every syscall becomes an OCALL round trip),
// EPC paging (secure swapping of enclave pages, "up to 2000x" slowdown),
// and the memory encryption engine (per-cache-line cost on memory traffic).
//
// The simulator charges these as *real wall-clock time* (calibrated spin,
// see common/spin.h) so that both the tracing profiler under test and the
// sampling baseline observe them exactly as they would on real hardware.
// Default magnitudes follow published SGX measurements (SCONE/Eleos/sgx-perf
// report 4–8k cycles per transition and ~10k+ cycles per trapped syscall).
#pragma once

#include "common/types.h"

namespace teeperf::tee {

struct CostModel {
  u64 ecall_ns = 3800;         // host → enclave transition
  u64 eexit_ns = 3300;         // enclave → host transition
  u64 syscall_ocall_ns = 9000; // full OCALL round trip for a trapped syscall
                               // (exit + host syscall + re-enter)
  u64 rdtsc_trap_ns = 3500;    // AEX + emulation of an illegal instruction
  u64 epc_page_in_ns = 11000;  // secure paging: decrypt + integrity check
  u64 epc_page_out_ns = 9000;  // encrypt + evict
  u64 mee_cacheline_ns = 20;   // extra latency per encrypted line (random access)
  usize epc_pages = 16384;     // resident secure pages (64 MiB of 4 KiB pages)

  // An SGX-v1-like configuration (the defaults above).
  static CostModel sgx_like() { return CostModel{}; }

  // ARM TrustZone-like: world switches go through the secure monitor (SMC)
  // and are cheaper than SGX's EENTER/EEXIT; there is no EPC paging (the
  // secure world owns carve-out memory) and no memory-encryption engine,
  // but syscalls still leave the secure world. rdtsc has no TrustZone
  // equivalent restriction (generic timers are readable), so the trap is 0.
  static CostModel trustzone_like() {
    CostModel m;
    m.ecall_ns = 1200;
    m.eexit_ns = 1100;
    m.syscall_ocall_ns = 4500;
    m.rdtsc_trap_ns = 0;
    m.epc_page_in_ns = 0;
    m.epc_page_out_ns = 0;
    m.mee_cacheline_ns = 0;
    m.epc_pages = ~usize{0};  // carve-out: no secure-paging pressure
    return m;
  }

  // AMD SEV-like: whole-VM encryption — no enclave transitions on the app's
  // call path (the boundary is the hypervisor), timers readable, but the
  // memory-encryption cost applies to all memory and I/O still exits the
  // guest. Modeled as: free "transitions", moderate syscall exit cost
  // (VMEXIT-ish), MEE on, no secure paging.
  static CostModel sev_like() {
    CostModel m;
    m.ecall_ns = 0;
    m.eexit_ns = 0;
    m.syscall_ocall_ns = 2500;
    m.rdtsc_trap_ns = 0;
    m.epc_page_in_ns = 0;
    m.epc_page_out_ns = 0;
    m.mee_cacheline_ns = 25;
    m.epc_pages = ~usize{0};
    return m;
  }

  // Free transitions: useful for isolating one effect in tests/ablations.
  static CostModel zero() {
    CostModel m;
    m.ecall_ns = m.eexit_ns = m.syscall_ocall_ns = m.rdtsc_trap_ns = 0;
    m.epc_page_in_ns = m.epc_page_out_ns = 0;
    m.mee_cacheline_ns = 0;
    return m;
  }
};

}  // namespace teeperf::tee
