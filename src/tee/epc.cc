#include "tee/epc.h"

#include "core/scope.h"
#include "faultsim/fault.h"
#include "faultsim/fault_points.h"
#include "obs/metric_names.h"
#include "obs/session.h"
#include "tee/enclave.h"

namespace teeperf::tee {

namespace {
// One pressure event per power-of-two eviction count: the journal shows
// that (and roughly when) paging pressure built up without an event per
// eviction flooding the ring.
bool is_pow2(u64 v) { return v && (v & (v - 1)) == 0; }
}  // namespace

EnclaveBuffer::EnclaveBuffer(EpcAllocator* epc, usize size, usize first_page)
    : epc_(epc),
      data_(std::make_unique<u8[]>(size)),
      size_(size),
      first_page_(first_page),
      page_count_((size + kEpcPageSize - 1) / kEpcPageSize) {}

EnclaveBuffer::~EnclaveBuffer() { epc_->release_range(first_page_, page_count_); }

u8* EnclaveBuffer::touch(usize offset, usize len, bool write, bool random) {
  if (offset >= size_) return nullptr;
  if (len == 0) len = 1;
  if (offset + len > size_) len = size_ - offset;
  usize first = offset / kEpcPageSize;
  usize last = (offset + len - 1) / kEpcPageSize;
  for (usize p = first; p <= last; ++p) epc_->ensure_resident(first_page_ + p);
  if (Enclave::inside()) Enclave::current()->charge_mee(len, random);
  (void)write;
  return data_.get() + offset;
}

usize EnclaveBuffer::resident_pages() const {
  std::lock_guard<std::mutex> lock(epc_->mu_);
  usize n = 0;
  for (usize p = 0; p < page_count_; ++p) {
    if (epc_->pages_[first_page_ + p].resident) ++n;
  }
  return n;
}

EpcAllocator::EpcAllocator(Enclave* enclave, usize resident_limit)
    : enclave_(enclave), limit_(resident_limit ? resident_limit : 1) {}

std::unique_ptr<EnclaveBuffer> EpcAllocator::allocate(usize size) {
  if (size == 0) size = 1;
  // Fault point: enclave memory allocation failing (EPC + swap exhausted).
  if (fault::fires(fault_points::kEpcAllocFail)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  usize first = pages_.size();
  usize count = (size + kEpcPageSize - 1) / kEpcPageSize;
  pages_.resize(first + count);
  return std::unique_ptr<EnclaveBuffer>(new EnclaveBuffer(this, size, first));
}

usize EpcAllocator::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

u64 EpcAllocator::page_ins() const {
  return enclave_->counters().page_ins.load(std::memory_order_relaxed);
}

u64 EpcAllocator::page_outs() const {
  return enclave_->counters().page_outs.load(std::memory_order_relaxed);
}

void EpcAllocator::refresh_telemetry() {
  u64 epoch = obs::telemetry_epoch();
  if (obs_epoch_ == epoch) return;
  obs_epoch_ = epoch;
  if (obs::SelfTelemetry* tel = obs::telemetry()) {
    obs::MetricsRegistry& reg = tel->registry();
    obs_page_ins_ = reg.counter(obs::metric_names::kEpcPageIns);
    obs_page_outs_ = reg.counter(obs::metric_names::kEpcPageOuts);
    obs_resident_ = reg.gauge(obs::metric_names::kEpcResidentPages);
    obs_limit_ = reg.gauge(obs::metric_names::kEpcResidentLimit);
    obs_limit_.set(limit_);
  } else {
    obs_page_ins_ = obs::Counter();
    obs_page_outs_ = obs::Counter();
    obs_resident_ = obs::Gauge();
    obs_limit_ = obs::Gauge();
  }
}

void EpcAllocator::ensure_resident(usize page) {
  u64 charge_ns = 0;
  u64 pressure_event = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    refresh_telemetry();
    // Fault point: EPC exhaustion mid-profile — the secure memory shrinks to
    // a single resident page, so every access from here on pages.
    if (fault::fires(fault_points::kEpcExhaust)) {
      limit_ = 1;
      obs_limit_.set(limit_);
    }
    Page& p = pages_[page];
    if (p.resident) {
      p.referenced = true;
      return;
    }
    // Evict with CLOCK until there is room.
    while (resident_ >= limit_ && !pages_.empty()) {
      Page& victim = pages_[clock_hand_];
      usize victim_index = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % pages_.size();
      if (!victim.resident || victim_index == page) continue;
      if (victim.referenced) {
        victim.referenced = false;
        continue;
      }
      victim.resident = false;
      --resident_;
      charge_ns += enclave_->costs().epc_page_out_ns;
      enclave_->counters().page_outs.fetch_add(1, std::memory_order_relaxed);
      obs_page_outs_.inc();
      if (is_pow2(++evictions_)) pressure_event = evictions_;
    }
    p.resident = true;
    p.referenced = true;
    ++resident_;
    charge_ns += enclave_->costs().epc_page_in_ns;
    enclave_->counters().page_ins.fetch_add(1, std::memory_order_relaxed);
    obs_page_ins_.inc();
    obs_resident_.set(resident_);
  }
  if (pressure_event) {
    obs::journal_event(obs::EventType::kEpcPressure, pressure_event, limit_);
  }
  // Charge outside the lock: the paging latency is per-thread, the metadata
  // is shared. The scope makes secure paging *visible in profiles* — the
  // paper's motivating example of a TEE cost developers cannot otherwise
  // see (§I: EPC paging "can slow down application performance up to 2000×").
  if (Enclave::inside() && charge_ns > 0) {
    TEEPERF_SCOPE("epc::secure_paging");
    enclave_->charge(charge_ns);
  }
}

void EpcAllocator::release_range(usize first, usize count) {
  std::lock_guard<std::mutex> lock(mu_);
  for (usize p = first; p < first + count && p < pages_.size(); ++p) {
    if (pages_[p].resident) {
      pages_[p].resident = false;
      --resident_;
    }
  }
}

}  // namespace teeperf::tee
