#include "tee/enclave.h"

namespace teeperf::tee {

Enclave*& Enclave::current_thread_enclave() {
  thread_local Enclave* current = nullptr;
  return current;
}

void Enclave::charge_mee(usize bytes, bool random) {
  if (costs_.mee_cacheline_ns == 0 || bytes == 0) return;
  usize lines = (bytes + 63) / 64;
  if (!random) lines = (lines + 7) / 8;  // sequential: engine pipelines well
  charge(static_cast<u64>(lines) * costs_.mee_cacheline_ns);
}

}  // namespace teeperf::tee
