// Enclave Page Cache (EPC) model: the limited secure physical memory.
//
// SGX backs enclave memory with a small protected region; pages beyond it
// are transparently encrypted and swapped to untrusted host memory ("EPC
// paging"), which the paper cites as costing up to 2000× on access-heavy
// workloads. This allocator tracks page residency for enclave buffers and
// charges page-in/page-out costs (via the owning Enclave) when a touched
// page is not resident, evicting with a CLOCK (second-chance) policy.
//
// Workloads access enclave memory through EnclaveBuffer::touch()/data(), so
// the residency accounting sits on the natural access path.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace teeperf::tee {

class Enclave;
class EpcAllocator;

inline constexpr usize kEpcPageSize = 4096;

// A buffer of enclave memory. Real storage is ordinary heap memory; what is
// simulated is the *residency* of each page in the secure EPC.
class EnclaveBuffer {
 public:
  ~EnclaveBuffer();
  EnclaveBuffer(const EnclaveBuffer&) = delete;
  EnclaveBuffer& operator=(const EnclaveBuffer&) = delete;

  usize size() const { return size_; }

  // Declares an access to [offset, offset+len): pages not resident are paged
  // in (possibly evicting others), and MEE cost is charged when the owning
  // enclave's thread is inside. Returns a pointer to the data.
  u8* touch(usize offset, usize len, bool write, bool random = true);

  // Raw data without residency simulation (setup/teardown paths).
  u8* raw() { return data_.get(); }
  const u8* raw() const { return data_.get(); }

  usize resident_pages() const;

 private:
  friend class EpcAllocator;
  EnclaveBuffer(EpcAllocator* epc, usize size, usize first_page);

  EpcAllocator* epc_;
  std::unique_ptr<u8[]> data_;
  usize size_;
  usize first_page_;  // index of this buffer's first page in the allocator
  usize page_count_;
};

class EpcAllocator {
 public:
  // `resident_limit` = number of pages the secure memory can hold.
  EpcAllocator(Enclave* enclave, usize resident_limit);

  // Allocates an enclave buffer of `size` bytes (rounded up to whole pages).
  std::unique_ptr<EnclaveBuffer> allocate(usize size);

  usize resident_count() const;
  usize resident_limit() const { return limit_; }
  u64 page_ins() const;
  u64 page_outs() const;

 private:
  friend class EnclaveBuffer;

  struct Page {
    bool resident = false;
    bool referenced = false;  // CLOCK bit
  };

  // Ensures `page` is resident, charging costs and evicting as needed.
  void ensure_resident(usize page);
  void release_range(usize first, usize count);
  // Re-binds the cached telemetry handles when the installed region changed
  // (obs epoch). Called under mu_.
  void refresh_telemetry();

  Enclave* enclave_;
  usize limit_;
  mutable std::mutex mu_;
  std::vector<Page> pages_;
  usize resident_ = 0;
  usize clock_hand_ = 0;

  // Self-telemetry (null-safe handles; inert when no region is installed).
  u64 obs_epoch_ = ~0ull;
  u64 evictions_ = 0;
  obs::Counter obs_page_ins_, obs_page_outs_;
  obs::Gauge obs_resident_, obs_limit_;
};

}  // namespace teeperf::tee
