// The in-enclave system interface. Direct syscalls (and rdtsc) are illegal
// inside a TEE, so shielded applications call the host through wrappers
// ("the I/O operations have to pass through some wrappers", §I). These
// functions are world-agnostic: outside an enclave they are plain host
// calls; inside, they charge the OCALL / trap cost first and count the event.
//
// Each wrapper opens a TEEPERF scope under its plain name ("getpid",
// "rdtsc", ...), so profiles show the system-interface frames exactly as the
// paper's flame graphs do (Figure 6: getpid 72%, rdtsc 20%).
#pragma once

#include <string_view>

#include "common/types.h"

namespace teeperf::tee::sys {

// Process id. The SPDK/DPDK request path calls this per allocation, which is
// the Figure 6 bottleneck.
u64 getpid();

// Timestamp counter. Illegal inside SGXv1 — trapped and emulated, the other
// Figure 6 bottleneck.
u64 rdtsc();

// Wall clock in nanoseconds (clock_gettime) — a syscall when inside.
u64 clock_gettime_ns();

// Yield (sched_yield) — a syscall when inside.
void yield();

// Simulated file write of `len` bytes (the generic I/O wrapper): charged as
// one OCALL plus copy-out MEE traffic. Returns len.
usize write_out(const void* data, usize len);

// Per-thread count of trapped events, for tests.
struct TrapCounts {
  u64 getpid = 0;
  u64 rdtsc = 0;
  u64 clock = 0;
  u64 yield = 0;
  u64 write = 0;
};
TrapCounts& thread_trap_counts();

}  // namespace teeperf::tee::sys
