// The enclave simulator: world switching, OCALLs, and cost accounting.
//
// A thread "enters" the enclave by running a callable through
// Enclave::ecall(); while inside, the thread-local world flag is set and
// the tee::sys wrappers (sysapi.h) route syscalls through costed OCALLs.
// Nesting is supported (an OCALL that performs another ECALL), matching
// SGX's re-entrancy rules closely enough for profiling workloads.
#pragma once

#include <atomic>
#include <utility>

#include "common/spin.h"
#include "common/types.h"
#include "tee/cost_model.h"

namespace teeperf::tee {

class Enclave {
 public:
  explicit Enclave(CostModel costs = CostModel::sgx_like()) : costs_(costs) {}

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  // Runs `fn` inside the enclave on the calling thread, charging the
  // enter/exit transition costs. Returns fn's result.
  template <typename F>
  auto ecall(F&& fn) -> decltype(fn()) {
    EnterGuard guard(this);
    return fn();
  }

  // From inside the enclave: leave, run `fn` on the host, re-enter. Charged
  // as a full transition pair. Calling ocall while outside is allowed and
  // free (the wrappers use this so workload code is world-agnostic).
  template <typename F>
  auto ocall(F&& fn) -> decltype(fn()) {
    if (current_thread_enclave() != this) return fn();
    charge(costs_.eexit_ns);
    counters_.ocalls.fetch_add(1, std::memory_order_relaxed);
    ExitGuard guard(this);
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      guard.reenter();
    } else {
      auto result = fn();
      guard.reenter();
      return result;
    }
  }

  // True when the calling thread is currently executing inside any enclave.
  static bool inside() { return current_thread_enclave() != nullptr; }

  // The enclave the calling thread is inside, or null.
  static Enclave* current() { return current_thread_enclave(); }

  const CostModel& costs() const { return costs_; }

  // Charges `ns` of simulated hardware cost to the calling thread.
  void charge(u64 ns) {
    if (ns) spin_for_ns(ns);
    charged_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  struct Counters {
    std::atomic<u64> ecalls{0};
    std::atomic<u64> ocalls{0};
    std::atomic<u64> trapped_syscalls{0};
    std::atomic<u64> rdtsc_traps{0};
    std::atomic<u64> page_ins{0};
    std::atomic<u64> page_outs{0};
  };
  Counters& counters() { return counters_; }
  u64 charged_ns() const { return charged_ns_.load(std::memory_order_relaxed); }

  // Charges the memory-encryption-engine cost for touching `bytes` of
  // enclave memory; `random` access pays per cache line, sequential access
  // is modelled as prefetch-friendly (1/8 of the lines).
  void charge_mee(usize bytes, bool random);

 private:
  static Enclave*& current_thread_enclave();

  struct EnterGuard {
    explicit EnterGuard(Enclave* e) : enclave(e), previous(current_thread_enclave()) {
      enclave->charge(enclave->costs_.ecall_ns);
      enclave->counters_.ecalls.fetch_add(1, std::memory_order_relaxed);
      current_thread_enclave() = enclave;
    }
    ~EnterGuard() {
      enclave->charge(enclave->costs_.eexit_ns);
      current_thread_enclave() = previous;
    }
    Enclave* enclave;
    Enclave* previous;
  };

  struct ExitGuard {
    explicit ExitGuard(Enclave* e) : enclave(e) { current_thread_enclave() = nullptr; }
    void reenter() {
      current_thread_enclave() = enclave;
      enclave->charge(enclave->costs_.ecall_ns);
      reentered = true;
    }
    ~ExitGuard() {
      // If fn threw, still restore the world flag (without double charging).
      if (!reentered) current_thread_enclave() = enclave;
    }
    Enclave* enclave;
    bool reentered = false;
  };

  CostModel costs_;
  Counters counters_;
  std::atomic<u64> charged_ns_{0};
};

}  // namespace teeperf::tee
