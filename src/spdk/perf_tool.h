// The SPDK "perf" benchmark tool the paper uses for §IV-C: a polled
// random-read/write workload against one namespace, fixed block size and
// queue depth, reporting IOPS and throughput. Call structure mirrors
// Figure 6: work_fn → check_io → qpair_process_completions, with completed
// commands flowing task_complete → io_complete → submit_single_io.
#pragma once

#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include <string>

#include "spdk/nvme.h"

namespace teeperf::spdk {

struct PerfConfig {
  usize queue_depth = 32;
  usize block_size = 4096;
  u32 blocks_per_io = 1;
  double read_fraction = 0.8;  // the paper's 80% read mix
  u64 duration_ns = 1'000'000'000;
  u64 lba_space = 1u << 20;  // LBAs addressed (wraps onto the model's storage)
  u64 seed = 42;
  bool track_latency = true;  // get_ticks per IO (the rdtsc bottleneck)
};

struct PerfResult {
  u64 ios = 0;
  u64 reads = 0;
  u64 writes = 0;
  double seconds = 0;
  double iops = 0;
  double throughput_mib_s = 0;
  LatencyHistogram latency_ticks;
  u64 pid_lookups = 0;
};

// Converts tick deltas from PerfResult::latency_ticks into microseconds
// using the measured tick frequency.
double ticks_to_us(u64 ticks);

// One-line latency summary (mean/p50/p99 in µs) of a perf result.
std::string latency_summary_us(const PerfResult& result);

// Runs the perf tool against `device` (initialising it if needed). The
// caller decides the world: wrap the call in an Enclave::ecall to reproduce
// the naive/optimized SGX rows of §IV-C, or call directly for native.
PerfResult run_perf_tool(NvmeDevice& device, const PerfConfig& config,
                         const SpdkMode& mode);

}  // namespace teeperf::spdk
