#include "spdk/perf_tool.h"

#include "common/rng.h"
#include "common/spin.h"
#include "core/scope.h"
#include "spdk/env.h"
#include "spdk/ticks.h"

#include "common/stringutil.h"

namespace teeperf::spdk {
namespace {

struct PerfState {
  NvmeQPair* qpair = nullptr;
  const PerfConfig* config = nullptr;
  SpdkMode mode;
  CachedTicks cached_ticks;
  Xorshift64 rng{1};
  std::vector<std::vector<u8>> buffers;  // one per queue slot
  LatencyHistogram latency;
  u64 ios = 0, reads = 0, writes = 0;
  bool draining = false;

  explicit PerfState(u64 correction) : cached_ticks(correction) {}

  u64 ticks() {
    return mode.cache_ticks ? cached_ticks.get() : get_ticks();
  }
};

struct TaskCtx {
  PerfState* state;
  usize slot;
  u64 submit_ticks;
};

void submit_single_io(PerfState& st, TaskCtx* task);

void io_complete(bool success, void* ctx) {
  TEEPERF_SCOPE("io_complete");
  TaskCtx* task = static_cast<TaskCtx*>(ctx);
  PerfState& st = *task->state;
  if (success) {
    ++st.ios;
    if (st.config->track_latency) {
      u64 end = st.ticks();
      st.latency.add(end >= task->submit_ticks ? end - task->submit_ticks : 0);
    }
  }
  if (!st.draining) {
    TEEPERF_SCOPE("task_complete");
    submit_single_io(st, task);
  }
}

void submit_single_io(PerfState& st, TaskCtx* task) {
  TEEPERF_SCOPE("submit_single_io");
  if (st.config->track_latency) task->submit_ticks = st.ticks();
  u64 lba = st.rng.next_below(st.config->lba_space);
  bool is_read = st.rng.next_double() < st.config->read_fraction;
  void* buf = st.buffers[task->slot].data();
  bool ok;
  if (is_read) {
    ++st.reads;
    ok = st.qpair->read(buf, lba, st.config->blocks_per_io, io_complete, task);
  } else {
    ++st.writes;
    ok = st.qpair->write(buf, lba, st.config->blocks_per_io, io_complete, task);
  }
  if (!ok) {
    // Queue full (should not happen at queue_depth ≤ ring size): undo.
    if (is_read) --st.reads; else --st.writes;
  }
}

usize check_io(PerfState& st) {
  TEEPERF_SCOPE("check_io");
  return st.qpair->process_completions();
}

void work_fn(PerfState& st) {
  TEEPERF_SCOPE("work_fn");
  u64 deadline = monotonic_ns() + st.config->duration_ns;
  while (monotonic_ns() < deadline) {
    check_io(st);
  }
  // Drain outstanding commands so every submitted IO completes.
  st.draining = true;
  while (st.qpair->outstanding() > 0) check_io(st);
}

}  // namespace

double ticks_to_us(u64 ticks) {
  u64 hz = get_ticks_hz();
  return hz ? static_cast<double>(ticks) * 1e6 / static_cast<double>(hz) : 0.0;
}

std::string latency_summary_us(const PerfResult& result) {
  const LatencyHistogram& h = result.latency_ticks;
  return str_format("lat(us): mean=%.1f p50=%.1f p99=%.1f max=%.1f",
                    ticks_to_us(static_cast<u64>(h.mean())),
                    ticks_to_us(static_cast<u64>(h.percentile(50))),
                    ticks_to_us(static_cast<u64>(h.percentile(99))),
                    ticks_to_us(h.max()));
}

PerfResult run_perf_tool(NvmeDevice& device, const PerfConfig& config,
                         const SpdkMode& mode) {
  TEEPERF_SCOPE("main");
  env_init();
  device.initialize();

  PerfState st(mode.ticks_correction_interval);
  st.config = &config;
  st.mode = mode;
  st.rng.reseed(config.seed);

  NvmeQPair qpair(&device, mode);
  st.qpair = &qpair;

  usize io_bytes = static_cast<usize>(config.blocks_per_io) * config.block_size;
  st.buffers.assign(config.queue_depth, std::vector<u8>(io_bytes, 0xa5));

  std::vector<TaskCtx> tasks(config.queue_depth);
  u64 t0 = monotonic_ns();
  for (usize i = 0; i < config.queue_depth; ++i) {
    tasks[i] = TaskCtx{&st, i, 0};
    submit_single_io(st, &tasks[i]);
  }
  work_fn(st);
  u64 t1 = monotonic_ns();

  PerfResult r;
  r.ios = st.ios;
  r.reads = st.reads;
  r.writes = st.writes;
  r.seconds = static_cast<double>(t1 - t0) / 1e9;
  r.iops = r.seconds > 0 ? static_cast<double>(r.ios) / r.seconds : 0;
  r.throughput_mib_s =
      r.iops * static_cast<double>(io_bytes) / (1024.0 * 1024.0);
  r.latency_ticks = st.latency;
  r.pid_lookups = qpair.pid_lookups();
  return r;
}

}  // namespace teeperf::spdk
