#include "spdk/ticks.h"

#include "common/spin.h"
#include "core/scope.h"
#include "tee/sysapi.h"

namespace teeperf::spdk {
namespace {

u64 get_tsc_cycles() {
  TEEPERF_SCOPE("get_tsc_cycles");
  return tee::sys::rdtsc();  // the trap point inside an enclave
}

u64 get_timer_cycles() {
  TEEPERF_SCOPE("get_timer_cycles");
  return get_tsc_cycles();
}

}  // namespace

u64 get_ticks() {
  TEEPERF_SCOPE("get_ticks");
  return get_timer_cycles();
}

u64 get_ticks_hz() {
  static u64 hz = [] {
    u64 c0 = tee::sys::rdtsc();
    u64 t0 = monotonic_ns();
    spin_for_ns(2'000'000);
    u64 c1 = tee::sys::rdtsc();
    u64 t1 = monotonic_ns();
    if (c1 <= c0 || t1 <= t0) return u64{1'000'000'000};
    return static_cast<u64>(static_cast<double>(c1 - c0) * 1e9 /
                            static_cast<double>(t1 - t0));
  }();
  return hz;
}

u64 CachedTicks::get() {
  TEEPERF_SCOPE("get_ticks_cached");
  ++calls_;
  if (calls_ - last_real_at_call_ >= interval_ || last_real_ == 0) {
    u64 real = get_ticks();
    if (last_real_ != 0 && calls_ > last_real_at_call_) {
      u64 elapsed_calls = calls_ - last_real_at_call_;
      u64 elapsed_ticks = real > last_real_ ? real - last_real_ : elapsed_calls;
      step_ = elapsed_ticks / elapsed_calls;
      if (step_ == 0) step_ = 1;
    }
    last_real_ = real;
    last_real_at_call_ = calls_;
    // Never step backwards: if extrapolation overshot the real counter,
    // hold until reality catches up (latencies are computed as deltas).
    current_ = real > current_ ? real : current_;
    ++corrections_;
    return current_;
  }
  current_ += step_;
  return current_;
}

}  // namespace teeperf::spdk
