#include "spdk/nvme.h"

#include <algorithm>
#include <cstring>

#include "common/spin.h"
#include "core/scope.h"
#include "spdk/ticks.h"
#include "tee/enclave.h"
#include "tee/sysapi.h"

namespace teeperf::spdk {

// ------------------------------------------------------------------ device --

NvmeDevice::NvmeDevice(const NvmeDeviceConfig& config) : config_(config) {
  storage_.resize(config_.block_size * config_.block_count);
}

namespace {

// The controller-initialisation frames of Figure 6 (bottom right). Costs are
// charged once, outside the hot path; they exist so init shows up in the
// flame graph like the paper's.
void mmio_read_4() {
  TEEPERF_SCOPE("mmio_read_4");
  spin_for_ns(400);
}

void ctrlr_get_cc() {
  TEEPERF_SCOPE("ctrlr_get_cc");
  mmio_read_4();
}

void ctrlr_process_init() {
  TEEPERF_SCOPE("ctrlr_process_init");
  for (int i = 0; i < 4; ++i) ctrlr_get_cc();
}

void probe_internal() {
  TEEPERF_SCOPE("probe_internal");
  TEEPERF_SCOPE("init_controllers");
  ctrlr_process_init();
}

void probe() {
  TEEPERF_SCOPE("probe");
  probe_internal();
}

void register_controllers() {
  TEEPERF_SCOPE("register_controllers");
  probe();
}

}  // namespace

void NvmeDevice::initialize() {
  if (initialized_) return;
  register_controllers();
  initialized_ = true;
}

u8* NvmeDevice::block_data(u64 lba) {
  u64 idx = lba % config_.block_count;  // larger LBA spaces wrap
  return storage_.data() + idx * config_.block_size;
}

// ------------------------------------------------------------------- qpair --

NvmeQPair::NvmeQPair(NvmeDevice* device, const SpdkMode& mode)
    : device_(device), mode_(mode) {
  pool_.resize(device_->config_.max_queue_depth);
  free_list_.reserve(pool_.size());
  for (Request& r : pool_) free_list_.push_back(&r);
  ring_.reserve(pool_.size());
}

NvmeQPair::~NvmeQPair() = default;

u64 NvmeQPair::current_pid() {
  if (mode_.cache_pid) {
    // The paper's fix: "return after the first call the result from the
    // first" — the pid of a process cannot change under it.
    if (cached_pid_ == 0) cached_pid_ = tee::sys::getpid();
    return cached_pid_;
  }
  ++pid_lookups_;
  return tee::sys::getpid();
}

Request* NvmeQPair::allocate_request() {
  TEEPERF_SCOPE("allocate_request");
  if (free_list_.empty()) return nullptr;
  Request* req = free_list_.back();
  free_list_.pop_back();
  // DPDK-style ownership tag: every request is stamped with the owner pid.
  // This is the getpid() of Figure 6 (57.6% + 14.4% of naive runtime).
  req->owner_pid = current_pid();
  return req;
}

void NvmeQPair::free_request(Request* req) {
  req->in_flight = false;
  req->on_complete = nullptr;
  free_list_.push_back(req);
}

bool NvmeQPair::submit(Request* req) {
  TEEPERF_SCOPE("qpair_submit_request");
  {
    TEEPERF_SCOPE("transport_qpair_submit_request");
    TEEPERF_SCOPE("pcie_qpair_submit_request");
    // Driver path: build the command, ring the doorbell.
    spin_for_ns(device_->config_.submit_cost_ns);
    // Data for writes crosses into host (DMA) memory now.
    if (req->is_write) {
      usize bytes = static_cast<usize>(req->blocks) * device_->config_.block_size;
      for (u32 b = 0; b < req->blocks; ++b) {
        std::memcpy(device_->block_data(req->lba + b),
                    static_cast<const u8*>(req->buffer) +
                        static_cast<usize>(b) * device_->config_.block_size,
                    device_->config_.block_size);
      }
      if (tee::Enclave::inside()) {
        tee::Enclave::current()->charge_mee(bytes, /*random=*/false);
      }
    }
  }
  req->ready_at_ns = monotonic_ns() + device_->config_.completion_latency_ns;
  req->in_flight = true;
  ring_.push_back(req);
  ++outstanding_;
  ++submitted_;
  return true;
}

namespace {

bool nvme_ns_cmd_rw(NvmeQPair* qp, Request* req) {
  TEEPERF_SCOPE("_nvme_ns_cmd_rw");
  (void)qp;
  return req != nullptr;
}

}  // namespace

bool NvmeQPair::read(void* buffer, u64 lba, u32 blocks, IoCompletion cb, void* ctx) {
  TEEPERF_SCOPE("ns_cmd_read_with_md");
  if (!device_->initialized() || blocks == 0 || buffer == nullptr) return false;
  Request* req = allocate_request();
  if (!nvme_ns_cmd_rw(this, req)) return false;
  req->lba = lba;
  req->blocks = blocks;
  req->is_write = false;
  req->buffer = buffer;
  req->ctx = ctx;
  req->on_complete = std::move(cb);
  return submit(req);
}

bool NvmeQPair::write(const void* buffer, u64 lba, u32 blocks, IoCompletion cb,
                      void* ctx) {
  TEEPERF_SCOPE("ns_cmd_write_with_md");
  if (!device_->initialized() || blocks == 0 || buffer == nullptr) return false;
  Request* req = allocate_request();
  if (!nvme_ns_cmd_rw(this, req)) return false;
  req->lba = lba;
  req->blocks = blocks;
  req->is_write = true;
  req->buffer = const_cast<void*>(buffer);
  req->ctx = ctx;
  req->on_complete = std::move(cb);
  return submit(req);
}

usize NvmeQPair::process_completions(usize max) {
  TEEPERF_SCOPE("qpair_process_completions");
  TEEPERF_SCOPE("transport_qpair_process_completions");
  TEEPERF_SCOPE("pcie_qpair_process_completions");

  u64 now = monotonic_ns();
  usize done = 0;
  for (usize i = 0; i < ring_.size();) {
    Request* req = ring_[i];
    if (req->ready_at_ns > now || (max != 0 && done >= max)) {
      ++i;
      continue;
    }
    {
      TEEPERF_SCOPE("pcie_qpair_complete_tracker");
      spin_for_ns(device_->config_.complete_cost_ns);
      if (!req->is_write) {
        usize bytes = static_cast<usize>(req->blocks) * device_->config_.block_size;
        for (u32 b = 0; b < req->blocks; ++b) {
          std::memcpy(static_cast<u8*>(req->buffer) +
                          static_cast<usize>(b) * device_->config_.block_size,
                      device_->block_data(req->lba + b),
                      device_->config_.block_size);
        }
        if (tee::Enclave::inside()) {
          tee::Enclave::current()->charge_mee(bytes, /*random=*/false);
        }
      }
    }
    ring_.erase(ring_.begin() + static_cast<isize>(i));
    --outstanding_;
    ++completed_;
    ++done;
    IoCompletion cb = std::move(req->on_complete);
    void* ctx = req->ctx;
    free_request(req);
    if (cb) cb(true, ctx);
  }
  return done;
}

}  // namespace teeperf::spdk
