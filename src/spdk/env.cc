#include "spdk/env.h"

#include "common/spin.h"
#include "core/scope.h"
#include "tee/sysapi.h"

namespace teeperf::spdk {
namespace {

bool g_initialized = false;

void map_all_hugepages(const EnvConfig& config) {
  TEEPERF_SCOPE("map_all_hugepages");
  for (usize i = 0; i < config.hugepage_count; ++i) {
    spin_for_ns(config.per_hugepage_map_ns);
  }
}

void eal_hugepage_init(const EnvConfig& config) {
  TEEPERF_SCOPE("eal_hugepage_init");
  map_all_hugepages(config);
}

void eal_memory_init(const EnvConfig& config) {
  TEEPERF_SCOPE("eal_memory_init");
  eal_hugepage_init(config);
}

void vfio_enable() {
  TEEPERF_SCOPE("vfio_enable");
  // Group/container setup is a handful of ioctls: syscalls, so trapped
  // when initialising from inside an enclave.
  for (int i = 0; i < 3; ++i) tee::sys::write_out("", 0);
}

void eal_vfio_setup(const EnvConfig& config) {
  TEEPERF_SCOPE("eal_vfio_setup");
  if (config.enable_vfio) vfio_enable();
}

void eal_init(const EnvConfig& config) {
  TEEPERF_SCOPE("eal_init");
  eal_memory_init(config);
  eal_vfio_setup(config);
}

}  // namespace

void env_init(const EnvConfig& config) {
  TEEPERF_SCOPE("env_init");
  if (g_initialized) return;
  eal_init(config);
  g_initialized = true;
}

bool env_initialized() { return g_initialized; }

void env_reset_for_test() { g_initialized = false; }

}  // namespace teeperf::spdk
