// User-space NVMe stack model (the Intel SPDK stand-in, see DESIGN.md).
//
// SPDK's value proposition — and why the paper ports it into SGX — is that
// the I/O path makes *no syscalls*: submission writes a command into a
// queue pair, completion is discovered by polling, and data moves via DMA
// into user memory. This model reproduces that: an in-memory namespace, a
// submission/completion tracker ring, a fixed per-command device latency,
// and a polled completion path. The per-IO CPU work (command building,
// doorbell MMIO, tracker completion, data copy) is real work plus small
// calibrated costs matching a PCIe-attached NVMe SSD's driver path.
//
// The two enclave bottlenecks of §IV-C live exactly where they did in
// SPDK: request allocation tags requests with the owner pid (getpid — in
// DPDK/SPDK the pid is used for request/mempool identification), and
// latency tracking reads the TSC (get_ticks → rdtsc).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace teeperf::spdk {

// Configuration toggles for the §IV-C optimizations.
struct SpdkMode {
  bool cache_pid = false;    // cache getpid() after the first call
  bool cache_ticks = false;  // CachedTicks instead of raw get_ticks
  u64 ticks_correction_interval = 128;
};

struct NvmeDeviceConfig {
  usize block_size = 4096;
  usize block_count = 16384;      // 64 MiB namespace (wraps a larger LBA space)
  u64 completion_latency_ns = 100'000;  // device-side latency per command
  // Driver-path costs calibrated so the native perf tool lands near the
  // paper's ~4.5 µs/IO (223,808 IOPS on the DC P3700 testbed).
  u64 submit_cost_ns = 1400;      // submit path + doorbell MMIO
  u64 complete_cost_ns = 1200;    // completion path + tracker bookkeeping
  usize max_queue_depth = 256;
};

class NvmeDevice;

using IoCompletion = std::function<void(bool success, void* ctx)>;

struct Request {
  u64 owner_pid = 0;
  u64 lba = 0;
  u32 blocks = 0;
  bool is_write = false;
  void* buffer = nullptr;
  void* ctx = nullptr;
  IoCompletion on_complete;
  u64 ready_at_ns = 0;
  bool in_flight = false;
};

// One submission/completion queue pair. Not thread-safe (SPDK's qpairs are
// per-thread by design).
class NvmeQPair {
 public:
  NvmeQPair(NvmeDevice* device, const SpdkMode& mode);
  ~NvmeQPair();

  NvmeQPair(const NvmeQPair&) = delete;
  NvmeQPair& operator=(const NvmeQPair&) = delete;

  // The SPDK entry points (ns_cmd_read_with_md / ns_cmd_write_with_md).
  // Returns false when the queue is full or arguments are invalid.
  bool read(void* buffer, u64 lba, u32 blocks, IoCompletion cb, void* ctx);
  bool write(const void* buffer, u64 lba, u32 blocks, IoCompletion cb, void* ctx);

  // Polls the completion queue; fires callbacks for every command whose
  // device latency has elapsed. Returns the number completed.
  usize process_completions(usize max = 0);

  usize outstanding() const { return outstanding_; }
  u64 submitted() const { return submitted_; }
  u64 completed() const { return completed_; }

  // getpid / rdtsc trap counters are global (tee::sys); these count the
  // qpair's own calls for the optimization tests.
  u64 pid_lookups() const { return pid_lookups_; }

 private:
  friend class NvmeDevice;

  Request* allocate_request();
  void free_request(Request* req);
  bool submit(Request* req);
  u64 current_pid();

  NvmeDevice* device_;
  SpdkMode mode_;
  std::vector<Request> pool_;
  std::vector<Request*> free_list_;
  std::vector<Request*> ring_;  // in-flight, completion order = ready time
  usize outstanding_ = 0;
  u64 submitted_ = 0;
  u64 completed_ = 0;
  u64 cached_pid_ = 0;
  u64 pid_lookups_ = 0;
};

class NvmeDevice {
 public:
  explicit NvmeDevice(const NvmeDeviceConfig& config);

  const NvmeDeviceConfig& config() const { return config_; }

  // Controller initialisation (probe/attach), mirroring the eal/env init
  // stacks in Figure 6's bottom-right. Must be called before I/O.
  void initialize();
  bool initialized() const { return initialized_; }

  // Direct backing-store access for test verification.
  u8* block_data(u64 lba);

 private:
  friend class NvmeQPair;

  NvmeDeviceConfig config_;
  std::vector<u8> storage_;
  bool initialized_ = false;
};

}  // namespace teeperf::spdk
