// SPDK's timer-cycle chain, with the exact call structure of Figure 6:
//   get_ticks → get_timer_cycles → get_tsc_cycles → rdtsc
// Inside an enclave, the rdtsc at the bottom traps (illegal in SGXv1) —
// one of the two bottlenecks the paper finds. The optimized variant is the
// paper's fix: a cached timestamp, corrected by a real rdtsc every
// `correction_interval` calls ("caching with correcting after a specific
// amount of calls", §IV-C).
#pragma once

#include "common/types.h"

namespace teeperf::spdk {

// The naive chain: always ends in a (possibly trapped) rdtsc.
u64 get_ticks();

// Estimated tick frequency (ticks per second); measured once lazily.
u64 get_ticks_hz();

class CachedTicks {
 public:
  explicit CachedTicks(u64 correction_interval = 128)
      : interval_(correction_interval ? correction_interval : 1) {}

  // Returns the cached value, advanced by the measured mean delta between
  // corrections; every `interval_` calls it re-reads the real counter.
  u64 get();

  u64 corrections() const { return corrections_; }
  u64 calls() const { return calls_; }

 private:
  u64 interval_;
  u64 calls_ = 0;
  u64 corrections_ = 0;
  u64 last_real_ = 0;
  u64 last_real_at_call_ = 0;
  u64 step_ = 1;      // estimated ticks per call between corrections
  u64 current_ = 0;
};

}  // namespace teeperf::spdk
