// The environment/EAL initialisation layer (DPDK's Environment Abstraction
// Layer, which SPDK builds on): hugepage mapping, VFIO setup, memory init.
// One-time startup cost, reproduced so the init stacks appear in the flame
// graph exactly where Figure 6 (bottom right) shows them.
#pragma once

#include "common/types.h"

namespace teeperf::spdk {

struct EnvConfig {
  usize hugepage_count = 64;       // simulated 2 MiB hugepages to "map"
  u64 per_hugepage_map_ns = 20'000;  // mmap + touch cost per page
  bool enable_vfio = true;
};

// env_init → eal_init → {eal_memory_init → eal_hugepage_init →
// map_all_hugepages, eal_vfio_setup → vfio_enable}. Idempotent.
void env_init(const EnvConfig& config = {});
bool env_initialized();
void env_reset_for_test();

}  // namespace teeperf::spdk
