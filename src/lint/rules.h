// The four project rules teeperf_lint enforces (DESIGN.md §9):
//
//   r1  probe-path purity — nothing reachable from the probe roots
//       (runtime::on_enter / on_exit, LogBatch::flush) may allocate, take a
//       lock, build std:: containers/strings, or enter the kernel. The call
//       graph is built from the structural parse and over-approximated:
//       a member call resolves to *every* indexed function with that last
//       name. Intentional slow paths carry waivers at the definition.
//
//   r2  explicit memory order — every atomic member op must spell a
//       std::memory_order_* argument; compare_exchange must spell both, the
//       failure order must be valid (not release/acq_rel) and no stronger
//       than the success order.
//
//   r3  shm layout — every struct in a shared-memory layout header must be
//       trivially copyable (as far as the parse can see) and must match the
//       checked-in field-offset/size manifest exactly.
//
//   r4  name registry — fault-point and metric name string literals may only
//       be spelled in their manifest headers (fault_points.h /
//       metric_names.h); fault-point names must match the TESTING.md table
//       both ways; every name constant must be referenced by real code.
//
// Rules report Findings; the driver (lint.h) handles baselines and output.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/parse.h"

namespace teeperf::lint {

struct Finding {
  std::string rule;  // "r1".."r4"
  std::string file;
  int line = 0;
  std::string message;

  // Line-independent identity used for baseline matching (line numbers
  // drift with unrelated edits; rule+file+message does not).
  std::string key() const { return rule + "|" + file + "|" + message; }
};

// A struct layout as recorded in tools/shm_manifest.json.
struct ManifestField {
  std::string name;
  u64 offset = 0;
  u64 size = 0;
};
struct ManifestStruct {
  std::string name;
  std::string file;  // repo-relative header the struct lives in
  u64 size = 0;
  u64 align = 0;
  std::vector<ManifestField> fields;
};

// Everything the rules need, assembled by the driver (or directly by tests).
struct Corpus {
  std::vector<FileIndex> files;

  // r3: path suffixes of the shared-memory layout headers.
  std::vector<std::string> shm_headers = {"core/log_format.h", "obs/layout.h"};
  std::vector<ManifestStruct> manifest;
  bool have_manifest = false;

  // r4: path suffixes of the name-manifest headers (literals allowed there).
  std::vector<std::string> name_headers = {"faultsim/fault_points.h",
                                           "obs/metric_names.h"};
  // Fault-point names from the TESTING.md table; empty + !have_doc skips the
  // two-way doc check.
  std::set<std::string> doc_fault_points;
  bool have_doc = false;
};

// Runs all rules over the corpus. Deterministic: findings are sorted by
// (file, line, rule, message). Waivers are already applied.
std::vector<Finding> run_rules(const Corpus& corpus);

}  // namespace teeperf::lint
