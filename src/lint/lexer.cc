#include "lint/lexer.h"

namespace teeperf::lint {
namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
bool digit(char c) { return c >= '0' && c <= '9'; }

// Multi-char punctuators we care to keep whole. Order matters (longest
// first within a shared prefix); anything unmatched falls back to one char.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",
};

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  usize i = 0;
  int line = 1;
  const usize n = src.size();

  auto push = [&out](Tok kind, std::string text, int at) {
    out.push_back(Token{kind, std::move(text), at});
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Preprocessor line: only if '#' is the first non-space on its line.
    if (c == '#') {
      usize bol = src.rfind('\n', i == 0 ? 0 : i - 1);
      bol = bol == std::string_view::npos ? 0 : bol + 1;
      bool first = true;
      for (usize j = bol; j < i; ++j) {
        if (src[j] != ' ' && src[j] != '\t') { first = false; break; }
      }
      if (first) {
        int at = line;
        usize start = i;
        while (i < n) {
          if (src[i] == '\n') {
            // Fold backslash continuations into the directive.
            usize k = i;
            while (k > start && (src[k - 1] == '\r')) --k;
            if (k > start && src[k - 1] == '\\') {
              ++line;
              ++i;
              continue;
            }
            break;
          }
          ++i;
        }
        push(Tok::kPreproc, std::string(src.substr(start, i - start)), at);
        continue;
      }
      // '#' mid-line (token pasting in a macro body): single punct.
      push(Tok::kPunct, "#", line);
      ++i;
      continue;
    }

    // Comments (kept: they carry lint waivers).
    if (c == '/' && i + 1 < n && (src[i + 1] == '/' || src[i + 1] == '*')) {
      int at = line;
      usize start = i;
      if (src[i + 1] == '/') {
        while (i < n && src[i] != '\n') ++i;
      } else {
        i += 2;
        while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
          if (src[i] == '\n') ++line;
          ++i;
        }
        i = i + 1 < n ? i + 2 : n;
      }
      push(Tok::kComment, std::string(src.substr(start, i - start)), at);
      continue;
    }

    // Raw string literal: R"delim(...)delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      usize d0 = i + 2;
      usize dp = src.find('(', d0);
      if (dp != std::string_view::npos && dp - d0 <= 16) {
        std::string close = ")";
        close += std::string(src.substr(d0, dp - d0));
        close += '"';
        usize end = src.find(close, dp + 1);
        int at = line;
        usize stop = end == std::string_view::npos ? n : end;
        for (usize j = i; j < stop; ++j) {
          if (src[j] == '\n') ++line;
        }
        push(Tok::kString, std::string(src.substr(dp + 1, stop - dp - 1)), at);
        i = end == std::string_view::npos ? n : end + close.size();
        continue;
      }
    }

    // String / char literal with escape handling.
    if (c == '"' || c == '\'') {
      char quote = c;
      int at = line;
      std::string text;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          // Keep the simple escapes readable; others pass through raw.
          char e = src[i + 1];
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '0': text += '\0'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            case '\'': text += '\''; break;
            default: text += '\\'; text += e; break;
          }
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; tolerate
        text += src[i++];
      }
      if (i < n) ++i;  // closing quote
      push(quote == '"' ? Tok::kString : Tok::kChar, std::move(text), at);
      continue;
    }

    if (ident_start(c)) {
      usize start = i;
      while (i < n && ident_char(src[i])) ++i;
      push(Tok::kIdent, std::string(src.substr(start, i - start)), line);
      continue;
    }

    if (digit(c) || (c == '.' && i + 1 < n && digit(src[i + 1]))) {
      usize start = i;
      // Digits, digit separators, hex/bin prefixes, exponents, suffixes —
      // one greedy pass is fine for linting purposes.
      while (i < n && (ident_char(src[i]) || src[i] == '\'' || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      push(Tok::kNumber, std::string(src.substr(start, i - start)), line);
      continue;
    }

    // Punctuator: longest match from the table, else a single char.
    std::string_view rest = src.substr(i);
    std::string_view matched;
    for (std::string_view p : kPuncts) {
      if (rest.substr(0, p.size()) == p) { matched = p; break; }
    }
    if (matched.empty()) matched = rest.substr(0, 1);
    push(Tok::kPunct, std::string(matched), line);
    i += matched.size();
  }
  return out;
}

}  // namespace teeperf::lint
