// A minimal C++ lexer for teeperf_lint. Not a compiler front-end: it
// tokenizes identifiers, literals, punctuation, comments and preprocessor
// lines with line numbers, which is exactly enough for the project rules
// (R1 probe purity, R2 explicit memory order, R3 shm layout, R4 name
// registry — see rules.h). Comments are kept as tokens because waivers
// ("// teeperf-lint: allow(<rule>): why") live in them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace teeperf::lint {

enum class Tok : u8 {
  kIdent,    // identifiers and keywords
  kNumber,   // integer / floating literals (suffixes included)
  kString,   // "..." (text is the *unescaped* contents, quotes stripped)
  kChar,     // '...'
  kPunct,    // one operator/punctuator, longest-match ("::", "->", ...)
  kComment,  // // or /* */ (text includes the comment markers)
  kPreproc,  // a whole preprocessor line, continuations folded
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// Tokenizes `src`. Never fails: unterminated constructs are closed at EOF,
// unknown bytes become single-char punctuators. Deterministic.
std::vector<Token> lex(std::string_view src);

}  // namespace teeperf::lint
