#include "lint/parse.h"

#include <cstdlib>

namespace teeperf::lint {
namespace {

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if", "for", "while", "switch", "return", "sizeof", "alignof",
      "alignas", "decltype", "static_assert", "catch", "new", "delete",
      "throw", "case", "do", "else", "goto", "co_await", "co_return",
      "co_yield", "assert",
  };
  return kKeywords.count(s) > 0;
}

bool is_decl_specifier(const std::string& s) {
  static const std::set<std::string> kSpecs = {
      "const", "constexpr", "consteval", "constinit", "inline", "static",
      "extern", "virtual", "explicit", "friend", "mutable", "volatile",
      "typename", "register", "thread_local", "noexcept", "override",
      "final", "public", "private", "protected", "using", "typedef",
  };
  return kSpecs.count(s) > 0;
}

// ---------------------------------------------------------------------------
// Constant-expression evaluation (for array extents).

struct ExprParser {
  const std::vector<Token>& toks;
  usize pos, end;
  const std::map<std::string, u64>& constants;
  bool ok = true;

  const Token* peek() {
    while (pos < end && (toks[pos].kind == Tok::kComment ||
                         toks[pos].kind == Tok::kPreproc)) {
      ++pos;
    }
    return pos < end ? &toks[pos] : nullptr;
  }
  bool eat_punct(const char* p) {
    const Token* t = peek();
    if (t && t->kind == Tok::kPunct && t->text == p) {
      ++pos;
      return true;
    }
    return false;
  }

  u64 primary() {
    const Token* t = peek();
    if (!t) { ok = false; return 0; }
    if (t->kind == Tok::kNumber) {
      ++pos;
      std::string digits;
      for (char c : t->text) {
        if (c == '\'') continue;
        if (c == 'u' || c == 'U' || c == 'l' || c == 'L') continue;
        digits += c;
      }
      return std::strtoull(digits.c_str(), nullptr, 0);
    }
    if (t->kind == Tok::kIdent) {
      ++pos;
      auto it = constants.find(t->text);
      if (it == constants.end()) { ok = false; return 0; }
      return it->second;
    }
    if (t->kind == Tok::kPunct && t->text == "(") {
      ++pos;
      u64 v = bit_or();
      if (!eat_punct(")")) ok = false;
      return v;
    }
    if (t->kind == Tok::kPunct && t->text == "-") {
      ++pos;
      return static_cast<u64>(0) - primary();
    }
    if (t->kind == Tok::kPunct && t->text == "~") {
      ++pos;
      return ~primary();
    }
    ok = false;
    return 0;
  }
  u64 mul() {
    u64 v = primary();
    while (ok) {
      if (eat_punct("*")) v *= primary();
      else if (eat_punct("/")) { u64 r = primary(); v = r ? v / r : (ok = false, 0); }
      else if (eat_punct("%")) { u64 r = primary(); v = r ? v % r : (ok = false, 0); }
      else break;
    }
    return v;
  }
  u64 add() {
    u64 v = mul();
    while (ok) {
      if (eat_punct("+")) v += mul();
      else if (eat_punct("-")) v -= mul();
      else break;
    }
    return v;
  }
  u64 shift() {
    u64 v = add();
    while (ok) {
      if (eat_punct("<<")) v <<= add();
      else if (eat_punct(">>")) v >>= add();
      else break;
    }
    return v;
  }
  u64 bit_and() {
    u64 v = shift();
    while (ok && eat_punct("&")) v &= shift();
    return v;
  }
  u64 bit_xor() {
    u64 v = bit_and();
    while (ok && eat_punct("^")) v ^= bit_and();
    return v;
  }
  u64 bit_or() {
    u64 v = bit_xor();
    while (ok && eat_punct("|")) v |= bit_xor();
    return v;
  }
};

}  // namespace

std::optional<u64> eval_const_expr(const std::vector<Token>& tokens,
                                   usize begin, usize end,
                                   const std::map<std::string, u64>& constants) {
  ExprParser p{tokens, begin, end, constants};
  u64 v = p.bit_or();
  if (!p.ok) return std::nullopt;
  if (p.peek() != nullptr) return std::nullopt;  // trailing junk
  return v;
}

std::string FunctionDef::last_name() const {
  usize at = name.rfind("::");
  return at == std::string::npos ? name : name.substr(at + 2);
}

std::string FunctionDef::qualified() const {
  return scope.empty() ? name : scope + "::" + name;
}

bool FileIndex::waived_at(const std::string& rule, int line) const {
  for (const Waiver& w : waivers) {
    if (w.line == line && w.rules.count(rule)) return true;
  }
  return false;
}

bool FileIndex::waived_in(const std::string& rule, int first, int last) const {
  for (const Waiver& w : waivers) {
    if (w.line >= first && w.line <= last && w.rules.count(rule)) return true;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Indexer: a single pass with a scope stack.

struct ScopeFrame {
  enum Kind { kNamespace, kClass, kFunction, kOther } kind;
  std::string name;  // namespace/class name, empty for others
};

struct Indexer {
  FileIndex& out;
  const std::vector<Token>& toks;  // alias of out.tokens
  std::vector<ScopeFrame> scopes;

  explicit Indexer(FileIndex& fi) : out(fi), toks(fi.tokens) {}

  bool sig(usize i) const {  // significant token
    return toks[i].kind != Tok::kComment && toks[i].kind != Tok::kPreproc;
  }
  usize next_sig(usize i) const {
    ++i;
    while (i < toks.size() && !sig(i)) ++i;
    return i;
  }
  usize prev_sig(usize i) const {
    while (i > 0) {
      --i;
      if (sig(i)) return i;
    }
    return static_cast<usize>(-1);
  }
  bool punct(usize i, const char* p) const {
    return i < toks.size() && toks[i].kind == Tok::kPunct && toks[i].text == p;
  }
  bool ident(usize i) const {
    return i < toks.size() && toks[i].kind == Tok::kIdent;
  }

  // Token index one past the brace/paren group opening at `i`.
  usize skip_group(usize i, const char* open, const char* close) const {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      if (punct(i, open)) ++depth;
      else if (punct(i, close) && --depth == 0) return i + 1;
    }
    return toks.size();
  }

  std::string scope_path() const {
    std::string s;
    for (const ScopeFrame& f : scopes) {
      if (f.name.empty()) continue;
      if (!s.empty()) s += "::";
      s += f.name;
    }
    return s;
  }

  void extract_waivers() {
    for (const Token& t : toks) {
      if (t.kind != Tok::kComment) continue;
      usize at = t.text.find("teeperf-lint:");
      if (at == std::string::npos) continue;
      usize a = t.text.find("allow(", at);
      if (a == std::string::npos) continue;
      usize close = t.text.find(')', a);
      if (close == std::string::npos) continue;
      Waiver w;
      w.line = t.line;
      std::string inside = t.text.substr(a + 6, close - a - 6);
      std::string cur;
      for (char c : inside + ",") {
        if (c == ',' || c == ' ') {
          if (!cur.empty()) w.rules.insert(cur);
          cur.clear();
        } else {
          cur += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
        }
      }
      if (!w.rules.empty()) out.waivers.push_back(w);
    }
  }

  // Parses `constexpr ... kName = <expr>;` at token i (i points at the
  // name); records the value if the expression evaluates.
  void try_constant(usize name_at, usize eq_at, usize semi_at) {
    auto v = eval_const_expr(toks, eq_at + 1, semi_at, out.constants);
    if (v) out.constants[toks[name_at].text] = *v;
  }

  // --- function bodies: collect call sites -------------------------------
  void collect_calls(FunctionDef& fn) {
    for (usize i = fn.body_begin; i < fn.body_end; ++i) {
      if (!ident(i) || is_keyword(toks[i].text)) continue;
      usize nx = next_sig(i);
      if (!punct(nx, "(")) continue;
      CallSite cs;
      cs.name = toks[i].text;
      cs.line = toks[i].line;
      usize pv = prev_sig(i);
      if (pv != static_cast<usize>(-1)) {
        if (punct(pv, ".") || punct(pv, "->")) {
          cs.is_member = true;
          usize q = prev_sig(pv);
          if (q != static_cast<usize>(-1) && ident(q)) cs.qualifier = toks[q].text;
        } else if (punct(pv, "::")) {
          usize q = prev_sig(pv);
          if (q != static_cast<usize>(-1) && ident(q)) cs.qualifier = toks[q].text;
        }
      }
      fn.calls.push_back(std::move(cs));
    }
  }

  // --- struct layout ------------------------------------------------------
  struct TypeInfo {
    u64 size = 0, align = 0;
    bool known = false, atomic = false, pointer = false, non_trivial = false;
  };

  TypeInfo type_info(const std::string& t) const {
    static const std::map<std::string, std::pair<u64, u64>> kSizes = {
        {"u8", {1, 1}},   {"i8", {1, 1}},   {"char", {1, 1}},
        {"bool", {1, 1}}, {"u16", {2, 2}},  {"i16", {2, 2}},
        {"u32", {4, 4}},  {"i32", {4, 4}},  {"int", {4, 4}},
        {"unsigned", {4, 4}}, {"float", {4, 4}},
        {"u64", {8, 8}},  {"i64", {8, 8}},  {"usize", {8, 8}},
        {"isize", {8, 8}}, {"double", {8, 8}},
    };
    TypeInfo ti;
    std::string base = t;
    if (!base.empty() && base.back() == '*') {
      ti.known = true;
      ti.pointer = true;
      ti.size = ti.align = 8;
      return ti;
    }
    if (base.rfind("std::atomic<", 0) == 0 && base.back() == '>') {
      ti.atomic = true;
      base = base.substr(12, base.size() - 13);
    }
    auto it = kSizes.find(base);
    if (it != kSizes.end()) {
      ti.known = true;
      ti.size = it->second.first;
      ti.align = it->second.second;
      return ti;
    }
    static const std::set<std::string> kNonTrivial = {
        "std::string", "std::vector", "std::function", "std::map",
        "std::unordered_map", "std::mutex", "std::shared_ptr",
        "std::unique_ptr", "std::thread", "std::condition_variable",
    };
    for (const std::string& nt : kNonTrivial) {
      if (base.rfind(nt, 0) == 0) {
        ti.non_trivial = true;
        return ti;
      }
    }
    return ti;  // unknown
  }

  // Parses the struct whose `struct` keyword is at token i. Returns the
  // token index one past the closing `};`, or i+1 if it is not a
  // definition we understand.
  usize parse_struct(usize i) {
    usize j = next_sig(i);
    u64 forced_align = 0;
    if (ident(j) && toks[j].text == "alignas") {
      usize open = next_sig(j);
      usize close = skip_group(open, "(", ")");
      auto v = eval_const_expr(toks, open + 1, close - 1, out.constants);
      if (v) forced_align = *v;
      j = close;
      while (j < toks.size() && !sig(j)) ++j;
    }
    if (!ident(j)) return i + 1;
    StructDef sd;
    sd.name = toks[j].text;
    sd.line = toks[j].line;
    usize k = next_sig(j);
    if (!punct(k, "{")) return i + 1;  // fwd decl / variable / base list
    usize body_end = skip_group(k, "{", "}") - 1;  // index of '}'

    u64 offset = 0, max_align = 1;
    bool computed = true;
    usize m = next_sig(k);
    while (m < body_end) {
      // One member declaration: tokens up to ';' at depth 0.
      usize semi = m;
      int pd = 0, bd = 0;
      bool has_paren = false;
      while (semi < body_end) {
        if (punct(semi, "(")) { ++pd; has_paren = true; }
        else if (punct(semi, ")")) --pd;
        else if (punct(semi, "{")) ++bd;
        else if (punct(semi, "}")) --bd;
        else if (punct(semi, ";") && pd == 0 && bd == 0) break;
        ++semi;
      }
      // Member functions / static members / using / static_assert: skip.
      // A function body may end in '}' with no ';' — the depth-0 scan above
      // still finds the next ';' or the struct end, which is fine to skip to.
      bool is_static = ident(m) && (toks[m].text == "static");
      bool is_meta = ident(m) && (toks[m].text == "using" ||
                                  toks[m].text == "static_assert" ||
                                  toks[m].text == "friend" ||
                                  toks[m].text == "public" ||
                                  toks[m].text == "private" ||
                                  toks[m].text == "protected" ||
                                  toks[m].text == "struct" ||
                                  toks[m].text == "enum");
      if (is_static) {
        // `static constexpr u64 kName = expr;` feeds the constant table.
        for (usize t = m; t + 2 < semi; ++t) {
          if (ident(t) && punct(next_sig(t), "=")) {
            try_constant(t, next_sig(t), semi);
            break;
          }
        }
      }
      if (is_static || is_meta || has_paren) {
        m = next_sig(semi);
        continue;
      }

      // Find the member name: the last ident before ';' / '[' / '=' / '{'.
      usize stop = semi;
      for (usize t = m; t < semi; ++t) {
        if (punct(t, "[") || punct(t, "=") || punct(t, "{")) { stop = t; break; }
      }
      usize name_at = static_cast<usize>(-1);
      for (usize t = m; t < stop; ++t) {
        if (ident(t)) name_at = t;
      }
      if (name_at == static_cast<usize>(-1)) {
        m = next_sig(semi);
        continue;
      }
      FieldDef fd;
      fd.name = toks[name_at].text;
      fd.line = toks[name_at].line;
      // Normalize the type spelling from the tokens before the name.
      std::string type;
      for (usize t = m; t < name_at; ++t) {
        if (!sig(t)) continue;
        if (ident(t) && is_decl_specifier(toks[t].text)) continue;
        type += toks[t].text;
      }
      fd.type = type;
      // Array extent.
      if (punct(stop, "[")) {
        usize close = skip_group(stop, "[", "]") - 1;
        auto v = eval_const_expr(toks, stop + 1, close, out.constants);
        fd.array_len = v ? *v : 0;
        if (!v) computed = false;
      }
      TypeInfo ti = type_info(type);
      if (ti.atomic) sd.has_atomic_member = true;
      if (ti.pointer) sd.has_pointer_member = true;
      if (ti.non_trivial) sd.non_trivial_members.push_back(fd.name);
      if (!ti.known) {
        computed = false;
      } else {
        u64 n = fd.array_len ? fd.array_len : 1;
        offset = (offset + ti.align - 1) / ti.align * ti.align;
        fd.offset = offset;
        fd.size = ti.size * n;
        offset += fd.size;
        if (ti.align > max_align) max_align = ti.align;
      }
      sd.fields.push_back(std::move(fd));
      m = next_sig(semi);
    }
    if (forced_align > max_align) max_align = forced_align;
    sd.align = max_align;
    sd.size = (offset + max_align - 1) / max_align * max_align;
    sd.layout_computed = computed;
    out.structs.push_back(std::move(sd));
    return body_end + 1;
  }

  // --- main walk ----------------------------------------------------------
  void run() {
    extract_waivers();
    usize i = 0;
    std::vector<std::pair<usize, ScopeFrame>> open;  // brace index -> frame
    std::vector<usize> brace_stack;                  // token index of each '{'

    while (i < toks.size()) {
      if (!sig(i)) { ++i; continue; }
      const Token& t = toks[i];

      if (t.kind == Tok::kPunct && t.text == "{") {
        brace_stack.push_back(i);
        scopes.push_back({ScopeFrame::kOther, ""});
        ++i;
        continue;
      }
      if (t.kind == Tok::kPunct && t.text == "}") {
        if (!brace_stack.empty()) brace_stack.pop_back();
        if (!scopes.empty()) scopes.pop_back();
        ++i;
        continue;
      }

      if (t.kind == Tok::kIdent && t.text == "namespace") {
        // namespace a::b::c {  (or anonymous)
        std::string name;
        usize j = next_sig(i);
        while (j < toks.size() && (ident(j) || punct(j, "::"))) {
          if (ident(j)) {
            if (!name.empty()) name += "::";
            name += toks[j].text;
          }
          j = next_sig(j);
        }
        if (punct(j, "{")) {
          brace_stack.push_back(j);
          scopes.push_back({ScopeFrame::kNamespace, name});
          i = j + 1;
          continue;
        }
        i = j;
        continue;
      }

      if (t.kind == Tok::kIdent && (t.text == "struct" || t.text == "class")) {
        // Only index `struct` layouts (R3's shm types are structs), but we
        // must still enter class bodies to find member function defs.
        usize j = next_sig(i);
        if (ident(j) && toks[j].text == "alignas") {
          j = skip_group(next_sig(j), "(", ")");
          while (j < toks.size() && !sig(j)) ++j;
        }
        if (ident(j)) {
          std::string cls = toks[j].text;
          usize k = next_sig(j);
          // Skip base-clause up to '{'.
          usize brace = k;
          while (brace < toks.size() && !punct(brace, "{") &&
                 !punct(brace, ";")) {
            ++brace;
          }
          if (punct(brace, "{")) {
            if (t.text == "struct") parse_struct(i);  // layout pass
            brace_stack.push_back(brace);
            scopes.push_back({ScopeFrame::kClass, cls});
            i = brace + 1;
            continue;
          }
        }
        ++i;
        continue;
      }

      if (t.kind == Tok::kIdent && t.text == "constexpr") {
        // [inline|static] constexpr <type> kName = <expr>;
        usize j = next_sig(i);
        while (j < toks.size() && ident(j) &&
               (is_decl_specifier(toks[j].text) || true)) {
          usize nx = next_sig(j);
          if (punct(nx, "=")) {
            usize semi = nx;
            while (semi < toks.size() && !punct(semi, ";")) ++semi;
            try_constant(j, nx, semi);
            i = semi;
            break;
          }
          if (punct(nx, ";") || punct(nx, "{") || punct(nx, "[")) break;
          j = nx;
        }
        ++i;
        continue;
      }

      // Function definition? ident (qualified) directly followed by '('.
      if (t.kind == Tok::kIdent && !is_keyword(t.text) &&
          !is_decl_specifier(t.text)) {
        usize nx = next_sig(i);
        if (punct(nx, "(")) {
          // Qualified name: walk back over `ident ::` pairs and '~'.
          std::string name = t.text;
          int name_line = t.line;
          usize back = prev_sig(i);
          if (back != static_cast<usize>(-1) && punct(back, "~")) {
            name = "~" + name;
            back = prev_sig(back);
          }
          while (back != static_cast<usize>(-1) && punct(back, "::")) {
            usize q = prev_sig(back);
            if (q == static_cast<usize>(-1) || !ident(q)) break;
            name = toks[q].text + "::" + name;
            back = prev_sig(q);
          }
          usize close = skip_group(nx, "(", ")");  // one past ')'
          // Scan the post-signature region for '{' (definition), ';'
          // (declaration) or '=' (deleted/defaulted/assignment).
          usize j = close;
          bool in_init_list = false;
          usize body = 0;
          while (j < toks.size()) {
            if (!sig(j)) { ++j; continue; }
            if (punct(j, ";") || punct(j, "=")) break;
            if (punct(j, ":")) { in_init_list = true; ++j; continue; }
            if (punct(j, "(")) { j = skip_group(j, "(", ")"); continue; }
            if (punct(j, "{")) {
              if (in_init_list) {
                usize pv = prev_sig(j);
                bool init_brace = pv != static_cast<usize>(-1) &&
                                  (ident(pv) || punct(pv, ",") || punct(pv, ":") ||
                                   punct(pv, ">"));
                if (init_brace) { j = skip_group(j, "{", "}"); continue; }
              }
              body = j;
              break;
            }
            ++j;
          }
          if (body != 0) {
            FunctionDef fn;
            fn.name = name;
            fn.scope = scope_path();
            fn.line = name_line;
            fn.body_begin = body;
            fn.body_end = skip_group(body, "{", "}");
            fn.end_line = fn.body_end <= toks.size() && fn.body_end > 0
                              ? toks[fn.body_end - 1].line
                              : name_line;
            collect_calls(fn);
            out.functions.push_back(std::move(fn));
            i = fn.body_end == 0 ? i + 1 : out.functions.back().body_end;
            continue;
          }
        }
      }
      ++i;
    }
  }
};

}  // namespace

FileIndex index_file(const std::string& path, std::string_view contents) {
  FileIndex fi;
  fi.path = path;
  fi.tokens = lex(contents);
  Indexer ix(fi);
  ix.run();
  return fi;
}

}  // namespace teeperf::lint
