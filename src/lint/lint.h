// Driver for teeperf_lint: corpus assembly (directory walk + parse), the
// shm-manifest JSON reader/writer, the TESTING.md fault-point table reader,
// baseline handling, and the CLI entry point. Dependency-free by design —
// rules must run in CI images with nothing but a C++ toolchain.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules.h"

namespace teeperf::lint {

struct LintOptions {
  std::vector<std::string> paths;  // files or directories to scan
  std::string manifest_path;       // shm_manifest.json; "" skips the check
  std::string testing_md_path;     // TESTING.md; "" skips the doc cross-check
  std::string baseline_path;       // known-findings file; "" = none
  bool dump_manifest = false;      // print regenerated manifest JSON, no lint
};

struct LintResult {
  std::vector<Finding> findings;   // new findings (not in the baseline)
  std::vector<Finding> baselined;  // findings matched by the baseline
  std::vector<std::string> errors; // unreadable files, malformed inputs
};

// Reads and indexes every .h/.cc/.cpp under `paths` (sorted, deterministic)
// into a corpus; wires in the manifest and doc table if configured.
Corpus build_corpus(const LintOptions& options, std::vector<std::string>* errors);

// Runs the rules and splits findings against the baseline.
LintResult run_lint(const LintOptions& options);

// Serializes the shm structs of `corpus` as shm_manifest.json text.
std::string render_manifest(const Corpus& corpus);

// Parses shm_manifest.json. False (with *error set) on malformed input.
bool parse_manifest(std::string_view text, std::vector<ManifestStruct>* out,
                    std::string* error);

// Extracts fault-point names from the TESTING.md "fault points" table:
// backticked, dotted names in table rows under a heading mentioning
// "fault point".
std::set<std::string> parse_fault_point_table(std::string_view markdown);

// Baseline file: one finding key per line ("rule|file|message"), '#' starts
// a comment. Line numbers are deliberately not part of the key.
std::set<std::string> parse_baseline(std::string_view text);

// The CLI: teeperf_lint [--check] [--manifest F] [--testing F]
// [--baseline F] [--dump-manifest] PATH...
int lint_main(int argc, char** argv);

}  // namespace teeperf::lint
