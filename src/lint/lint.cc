#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace teeperf::lint {
namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool lintable(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for shm_manifest.json.

struct JsonCursor {
  std::string_view src;
  usize i = 0;
  std::string error = {};

  void skip_ws() {
    while (i < src.size() && (src[i] == ' ' || src[i] == '\t' ||
                              src[i] == '\n' || src[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (i < src.size() && src[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool expect(char c) {
    if (eat(c)) return true;
    if (error.empty()) {
      error = std::string("expected '") + c + "' at offset " + std::to_string(i);
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < src.size() && src[i] == c;
  }
  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (i < src.size() && src[i] != '"') {
      if (src[i] == '\\' && i + 1 < src.size()) {
        ++i;
        switch (src[i]) {
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          default: *out += src[i]; break;
        }
      } else {
        *out += src[i];
      }
      ++i;
    }
    return expect('"');
  }
  bool parse_u64(u64* out) {
    skip_ws();
    usize start = i;
    while (i < src.size() && src[i] >= '0' && src[i] <= '9') ++i;
    if (i == start) {
      if (error.empty()) error = "expected number at offset " + std::to_string(i);
      return false;
    }
    *out = std::strtoull(std::string(src.substr(start, i - start)).c_str(),
                         nullptr, 10);
    return true;
  }
  // Skips any value (for unknown keys — forward compatibility).
  bool skip_value() {
    skip_ws();
    if (i >= src.size()) return false;
    char c = src[i];
    if (c == '"') {
      std::string tmp;
      return parse_string(&tmp);
    }
    if (c == '{' || c == '[') {
      char close = c == '{' ? '}' : ']';
      int depth = 0;
      bool in_str = false;
      for (; i < src.size(); ++i) {
        char d = src[i];
        if (in_str) {
          if (d == '\\') ++i;
          else if (d == '"') in_str = false;
          continue;
        }
        if (d == '"') in_str = true;
        else if (d == c) ++depth;
        else if (d == close && --depth == 0) {
          ++i;
          return true;
        }
      }
      return false;
    }
    while (i < src.size() && src[i] != ',' && src[i] != '}' && src[i] != ']') {
      ++i;
    }
    return true;
  }
};

bool parse_manifest_field(JsonCursor& c, ManifestField* field) {
  if (!c.expect('{')) return false;
  if (c.eat('}')) return true;
  do {
    std::string key;
    if (!c.parse_string(&key) || !c.expect(':')) return false;
    if (key == "name") {
      if (!c.parse_string(&field->name)) return false;
    } else if (key == "offset") {
      if (!c.parse_u64(&field->offset)) return false;
    } else if (key == "size") {
      if (!c.parse_u64(&field->size)) return false;
    } else if (!c.skip_value()) {
      return false;
    }
  } while (c.eat(','));
  return c.expect('}');
}

bool parse_manifest_struct(JsonCursor& c, ManifestStruct* ms) {
  if (!c.expect('{')) return false;
  if (c.eat('}')) return true;
  do {
    std::string key;
    if (!c.parse_string(&key) || !c.expect(':')) return false;
    if (key == "name") {
      if (!c.parse_string(&ms->name)) return false;
    } else if (key == "file") {
      if (!c.parse_string(&ms->file)) return false;
    } else if (key == "size") {
      if (!c.parse_u64(&ms->size)) return false;
    } else if (key == "align") {
      if (!c.parse_u64(&ms->align)) return false;
    } else if (key == "fields") {
      if (!c.expect('[')) return false;
      if (!c.eat(']')) {
        do {
          ManifestField f;
          if (!parse_manifest_field(c, &f)) return false;
          ms->fields.push_back(std::move(f));
        } while (c.eat(','));
        if (!c.expect(']')) return false;
      }
    } else if (!c.skip_value()) {
      return false;
    }
  } while (c.eat(','));
  return c.expect('}');
}

}  // namespace

bool parse_manifest(std::string_view text, std::vector<ManifestStruct>* out,
                    std::string* error) {
  JsonCursor c{text};
  bool ok = [&] {
    if (!c.expect('{')) return false;
    if (c.eat('}')) return true;
    do {
      std::string key;
      if (!c.parse_string(&key) || !c.expect(':')) return false;
      if (key == "structs") {
        if (!c.expect('[')) return false;
        if (!c.eat(']')) {
          do {
            ManifestStruct ms;
            if (!parse_manifest_struct(c, &ms)) return false;
            out->push_back(std::move(ms));
          } while (c.eat(','));
          if (!c.expect(']')) return false;
        }
      } else if (!c.skip_value()) {
        return false;
      }
    } while (c.eat(','));
    return c.expect('}');
  }();
  if (!ok && error) {
    *error = c.error.empty() ? "malformed manifest JSON" : c.error;
  }
  return ok;
}

std::string render_manifest(const Corpus& corpus) {
  std::ostringstream out;
  out << "{\n  \"structs\": [";
  bool first = true;
  for (const FileIndex& fi : corpus.files) {
    bool shm = false;
    for (const std::string& suffix : corpus.shm_headers) {
      if (fi.path.size() >= suffix.size() &&
          fi.path.compare(fi.path.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
        shm = true;
      }
    }
    if (!shm) continue;
    for (const StructDef& sd : fi.structs) {
      if (fi.waived_in("r3", sd.line - 3, sd.line)) continue;  // view structs
      out << (first ? "\n" : ",\n");
      first = false;
      out << "    {\n      \"name\": \"" << sd.name << "\",\n"
          << "      \"file\": \"" << fi.path << "\",\n"
          << "      \"size\": " << sd.size << ",\n"
          << "      \"align\": " << sd.align << ",\n"
          << "      \"fields\": [";
      bool ffirst = true;
      for (const FieldDef& fd : sd.fields) {
        out << (ffirst ? "\n" : ",\n");
        ffirst = false;
        out << "        { \"name\": \"" << fd.name
            << "\", \"offset\": " << fd.offset << ", \"size\": " << fd.size
            << " }";
      }
      out << (ffirst ? "]\n" : "\n      ]\n") << "    }";
    }
  }
  out << (first ? "]\n" : "\n  ]\n") << "}\n";
  return out.str();
}

std::set<std::string> parse_fault_point_table(std::string_view markdown) {
  std::set<std::string> out;
  bool in_section = false;
  usize pos = 0;
  while (pos < markdown.size()) {
    usize eol = markdown.find('\n', pos);
    if (eol == std::string_view::npos) eol = markdown.size();
    std::string_view line = markdown.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line[0] == '#') {
      std::string lower(line);
      for (char& ch : lower) {
        if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
      }
      in_section = lower.find("fault point") != std::string::npos;
      continue;
    }
    if (!in_section || line.empty() || line[0] != '|') continue;
    usize tick = line.find('`');
    if (tick == std::string_view::npos) continue;
    usize end = line.find('`', tick + 1);
    if (end == std::string_view::npos) continue;
    std::string name(line.substr(tick + 1, end - tick - 1));
    if (name.find('.') != std::string::npos) out.insert(name);
  }
  return out;
}

std::set<std::string> parse_baseline(std::string_view text) {
  std::set<std::string> out;
  usize pos = 0;
  while (pos < text.size()) {
    usize eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line[0] == '#') continue;
    out.insert(std::string(line));
  }
  return out;
}

Corpus build_corpus(const LintOptions& options,
                    std::vector<std::string>* errors) {
  Corpus corpus;
  std::vector<std::string> files;
  for (const std::string& root : options.paths) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) errors->push_back(root + ": " + ec.message());
    } else if (fs::exists(root, ec)) {
      files.push_back(root);
    } else {
      errors->push_back(root + ": not found");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& path : files) {
    std::string contents;
    if (!read_file(path, &contents)) {
      errors->push_back(path + ": unreadable");
      continue;
    }
    corpus.files.push_back(index_file(path, contents));
  }

  if (!options.manifest_path.empty()) {
    std::string text, error;
    if (!read_file(options.manifest_path, &text)) {
      errors->push_back(options.manifest_path + ": unreadable");
    } else if (!parse_manifest(text, &corpus.manifest, &error)) {
      errors->push_back(options.manifest_path + ": " + error);
    } else {
      corpus.have_manifest = true;
    }
  }
  if (!options.testing_md_path.empty()) {
    std::string text;
    if (!read_file(options.testing_md_path, &text)) {
      errors->push_back(options.testing_md_path + ": unreadable");
    } else {
      corpus.doc_fault_points = parse_fault_point_table(text);
      corpus.have_doc = true;
    }
  }
  return corpus;
}

LintResult run_lint(const LintOptions& options) {
  LintResult result;
  Corpus corpus = build_corpus(options, &result.errors);

  std::set<std::string> baseline;
  if (!options.baseline_path.empty()) {
    std::string text;
    if (read_file(options.baseline_path, &text)) {
      baseline = parse_baseline(text);
    } else {
      result.errors.push_back(options.baseline_path + ": unreadable");
    }
  }

  for (Finding& f : run_rules(corpus)) {
    if (baseline.count(f.key())) {
      result.baselined.push_back(std::move(f));
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  return result;
}

int lint_main(int argc, char** argv) {
  LintOptions options;
  bool print_keys = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--check") {
      // The default behaviour; accepted for CI-invocation clarity.
    } else if (arg == "--manifest") {
      if (const char* v = next()) options.manifest_path = v;
    } else if (arg == "--testing") {
      if (const char* v = next()) options.testing_md_path = v;
    } else if (arg == "--baseline") {
      if (const char* v = next()) options.baseline_path = v;
    } else if (arg == "--dump-manifest") {
      options.dump_manifest = true;
    } else if (arg == "--keys") {
      print_keys = true;  // emit baseline-file keys instead of diagnostics
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: teeperf_lint [--check] [--manifest FILE] [--testing FILE]\n"
          "                    [--baseline FILE] [--dump-manifest] [--keys]\n"
          "                    PATH...\n"
          "Rules: r1 probe purity, r2 explicit memory order, r3 shm layout\n"
          "manifest, r4 name-registry consistency. Exits 1 on findings not\n"
          "covered by the baseline, 2 on input errors.\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "teeperf_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.paths.empty()) {
    std::fprintf(stderr, "teeperf_lint: no paths given (try --help)\n");
    return 2;
  }

  if (options.dump_manifest) {
    std::vector<std::string> errors;
    Corpus corpus = build_corpus(options, &errors);
    for (const std::string& e : errors) {
      std::fprintf(stderr, "teeperf_lint: %s\n", e.c_str());
    }
    if (!errors.empty()) return 2;
    std::fputs(render_manifest(corpus).c_str(), stdout);
    return 0;
  }

  LintResult result = run_lint(options);
  for (const std::string& e : result.errors) {
    std::fprintf(stderr, "teeperf_lint: %s\n", e.c_str());
  }
  for (const Finding& f : result.findings) {
    if (print_keys) {
      std::printf("%s\n", f.key().c_str());
    } else {
      std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }
  if (!result.baselined.empty()) {
    std::fprintf(stderr, "teeperf_lint: %zu finding(s) covered by baseline\n",
                 result.baselined.size());
  }
  if (!result.errors.empty()) return 2;
  return result.findings.empty() ? 0 : 1;
}

}  // namespace teeperf::lint
