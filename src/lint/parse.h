// Lightweight structural parse over the token stream (lexer.h). Extracts
// exactly what the rules need and nothing more:
//
//   - function definitions with body token ranges and outgoing call sites
//     (for the R1 probe-path call graph);
//   - struct definitions with computed member offsets/sizes under the
//     Itanium-ABI layout rules for the simple scalar/array/atomic members
//     the shm types use (for R3 layout manifests);
//   - `inline constexpr` integer constants (array extents like
//     `u8 pad[128 - 7 * 8]` are evaluated against them);
//   - waiver comments: `// teeperf-lint: allow(<rule>)[: reason]`.
//
// This is deliberately not a C++ parser. Templates, overload sets and
// macros are approximated; the rules compensate by over-approximating
// (sound for a linter) and by supporting justified waivers where the
// approximation is wrong.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace teeperf::lint {

struct CallSite {
  std::string name;       // last name component at the call ("flush")
  std::string qualifier;  // immediate qualifier if spelled ("fault", "obj")
  bool is_member = false; // preceded by '.' or '->'
  int line = 0;
};

struct FunctionDef {
  std::string name;        // as written, e.g. "append" or "ProfileLog::append"
  std::string scope;       // enclosing namespace/class path, "::"-joined
  int line = 0;            // line of the name token
  int end_line = 0;        // line of the closing brace
  usize body_begin = 0;    // token index of '{'
  usize body_end = 0;      // token index one past matching '}'
  std::vector<CallSite> calls;

  // The unqualified last component ("append").
  std::string last_name() const;
  // scope + written name, "::"-joined ("teeperf::ProfileLog::append").
  std::string qualified() const;
};

struct FieldDef {
  std::string name;
  std::string type;  // normalized spelling, e.g. "u64", "std::atomic<u64>"
  u64 array_len = 0; // 0 = not an array
  u64 offset = 0;
  u64 size = 0;      // total size (element size * array_len for arrays)
  int line = 0;
};

struct StructDef {
  std::string name;
  int line = 0;
  u64 size = 0;
  u64 align = 0;
  bool layout_computed = false;  // false if a member type was not understood
  bool has_atomic_member = false;
  bool has_pointer_member = false;
  std::vector<FieldDef> fields;
  std::vector<std::string> non_trivial_members;  // std::string/vector/... fields
};

struct Waiver {
  int line = 0;
  std::set<std::string> rules;  // rule ids inside allow(...), lowercased
};

struct FileIndex {
  std::string path;
  std::vector<Token> tokens;
  std::vector<FunctionDef> functions;
  std::vector<StructDef> structs;
  std::vector<Waiver> waivers;
  std::map<std::string, u64> constants;  // inline constexpr integers

  // True if `rule` is waived on exactly `line`.
  bool waived_at(const std::string& rule, int line) const;
  // True if `rule` is waived anywhere in [first, last].
  bool waived_in(const std::string& rule, int first, int last) const;
};

// Lexes and indexes one file's contents.
FileIndex index_file(const std::string& path, std::string_view contents);

// Evaluates an integer constant expression (+ - * / % () and named
// constants); nullopt if it contains anything else.
std::optional<u64> eval_const_expr(const std::vector<Token>& tokens,
                                   usize begin, usize end,
                                   const std::map<std::string, u64>& constants);

}  // namespace teeperf::lint
