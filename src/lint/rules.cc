#include "lint/rules.h"

#include <algorithm>
#include <map>

namespace teeperf::lint {
namespace {

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

void add(std::vector<Finding>* out, std::string rule, const std::string& file,
         int line, std::string message) {
  out->push_back(Finding{std::move(rule), file, line, std::move(message)});
}

// ---------------------------------------------------------------------------
// r1: probe-path purity.

// Directories whose functions participate in the probe call graph. Narrow on
// purpose: resolving by last name across the whole tree would alias probe
// calls onto unrelated subsystems (WalWriter::flush, ...).
bool in_probe_scope(const std::string& path) {
  return path_contains(path, "/core/") || path_contains(path, "/common/") ||
         path_contains(path, "/obs/") || path_contains(path, "/faultsim/");
}

// Function names whose call makes the probe path impure. Allocation, locks,
// formatted I/O and syscalls; memcpy/memset stay allowed (plain stores).
const std::set<std::string>& banned_calls() {
  static const std::set<std::string> kBanned = {
      "malloc",    "calloc",       "realloc",   "free",     "posix_memalign",
      "aligned_alloc",             "strdup",
      "lock",      "unlock",       "try_lock",
      "sleep",     "usleep",       "nanosleep", "sched_yield",
      "clock_gettime",             "gettimeofday",          "time",
      "syscall",   "read",         "write",     "open",     "openat",
      "close",     "mmap",         "munmap",    "msync",    "fsync",
      "ftruncate", "raise",        "kill",      "abort",    "exit",
      "printf",    "fprintf",      "snprintf",  "sprintf",  "vsnprintf",
      "fwrite",    "fflush",       "str_format",
  };
  return kBanned;
}

// std:: types whose mere construction allocates or blocks.
const std::set<std::string>& banned_std_types() {
  static const std::set<std::string> kBanned = {
      "string",        "vector",      "map",    "unordered_map", "set",
      "unordered_set", "deque",       "list",   "function",      "mutex",
      "shared_mutex",  "lock_guard",  "unique_lock", "scoped_lock",
      "condition_variable",           "thread",      "ostringstream",
      "stringstream",
  };
  return kBanned;
}

struct FnRef {
  const FileIndex* file;
  const FunctionDef* fn;
};

// A definition-site waiver covers the whole function: the comment sits on
// the signature line or within the three lines above it (doc block).
bool function_waived(const FileIndex& fi, const FunctionDef& fn,
                     const std::string& rule) {
  return fi.waived_in(rule, fn.line - 3, fn.line);
}

void check_r1(const Corpus& corpus, std::vector<Finding>* out) {
  // Index every probe-scope function by last name.
  std::map<std::string, std::vector<FnRef>> by_name;
  std::vector<FnRef> roots;
  for (const FileIndex& fi : corpus.files) {
    if (!in_probe_scope(fi.path)) continue;
    for (const FunctionDef& fn : fi.functions) {
      by_name[fn.last_name()].push_back(FnRef{&fi, &fn});
      bool is_root = fn.last_name() == "on_enter" ||
                     fn.last_name() == "on_exit" ||
                     (fn.last_name() == "flush" &&
                      (fn.name.find("LogBatch") != std::string::npos ||
                       fn.scope.find("LogBatch") != std::string::npos));
      if (is_root) roots.push_back(FnRef{&fi, &fn});
    }
  }

  std::set<const FunctionDef*> visited;
  std::map<const FunctionDef*, const FunctionDef*> parent;
  std::vector<FnRef> queue = roots;
  for (usize qi = 0; qi < queue.size(); ++qi) {
    FnRef ref = queue[qi];
    if (!visited.insert(ref.fn).second) continue;
    // A waived function is trusted wholesale: its body is not scanned and
    // its callees are not pulled into the probe graph.
    if (function_waived(*ref.file, *ref.fn, "r1")) continue;

    auto chain = [&](const FunctionDef* fn) {
      std::string c = fn->last_name();
      for (const FunctionDef* p = fn; parent.count(p);) {
        p = parent.at(p);
        c = p->last_name() + " -> " + c;
      }
      return c;
    };

    // Body scan: banned calls.
    for (const CallSite& cs : ref.fn->calls) {
      if (banned_calls().count(cs.name)) {
        if (ref.file->waived_at("r1", cs.line)) continue;
        add(out, "r1", ref.file->path, cs.line,
            "call to '" + cs.name + "' on probe path (" + chain(ref.fn) + ")");
      }
    }
    // Body scan: operator new/delete and allocating std:: types.
    const std::vector<Token>& toks = ref.file->tokens;
    for (usize i = ref.fn->body_begin; i < ref.fn->body_end && i < toks.size();
         ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      if (t.text == "new" || t.text == "delete") {
        if (ref.file->waived_at("r1", t.line)) continue;
        add(out, "r1", ref.file->path, t.line,
            "operator " + t.text + " on probe path (" + chain(ref.fn) + ")");
        continue;
      }
      if (banned_std_types().count(t.text) && i >= 2 &&
          toks[i - 1].kind == Tok::kPunct && toks[i - 1].text == "::" &&
          toks[i - 2].kind == Tok::kIdent && toks[i - 2].text == "std") {
        if (ref.file->waived_at("r1", t.line)) continue;
        add(out, "r1", ref.file->path, t.line,
            "std::" + t.text + " constructed on probe path (" + chain(ref.fn) +
                ")");
      }
    }
    // Traverse callees (over-approximate: every same-last-name definition).
    // Member calls spelled with ubiquitous STL method names are not
    // resolved to project functions — `entries.size()` aliasing onto, say,
    // SymbolRegistry::size would drag unrelated subsystems into the graph.
    static const std::set<std::string> kStlMethodNames = {
        "size",  "empty", "begin", "end",   "data",  "front", "back",
        "c_str", "find",  "count", "push_back", "reserve", "resize",
    };
    for (const CallSite& cs : ref.fn->calls) {
      if (cs.is_member && kStlMethodNames.count(cs.name)) continue;
      auto it = by_name.find(cs.name);
      if (it == by_name.end()) continue;
      // A spelled qualifier (Registry::instance, obj.flush) narrows the
      // candidate set when any definition matches it as the owning class;
      // with no match the full set stays (the qualifier may be an object
      // name unrelated to any class).
      std::vector<FnRef> candidates;
      if (!cs.qualifier.empty()) {
        for (const FnRef& cand : it->second) {
          std::string q = cand.fn->qualified();
          usize tail = q.rfind("::" + cs.name);
          if (tail == std::string::npos) continue;
          std::string owner = q.substr(0, tail);
          usize dot = owner.rfind("::");
          if (dot != std::string::npos) owner = owner.substr(dot + 2);
          if (owner == cs.qualifier) candidates.push_back(cand);
        }
      }
      if (candidates.empty()) candidates = it->second;
      for (const FnRef& callee : candidates) {
        if (callee.fn == ref.fn || visited.count(callee.fn)) continue;
        if (!parent.count(callee.fn)) parent[callee.fn] = ref.fn;
        queue.push_back(callee);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// r2: explicit memory order.

const std::set<std::string>& atomic_ops() {
  static const std::set<std::string> kOps = {
      "load",        "store",        "exchange",
      "fetch_add",   "fetch_sub",    "fetch_and",
      "fetch_or",    "fetch_xor",    "test_and_set",
      "compare_exchange_weak",       "compare_exchange_strong",
  };
  return kOps;
}

int order_rank(const std::string& name) {
  if (name == "memory_order_relaxed") return 0;
  if (name == "memory_order_consume") return 1;
  if (name == "memory_order_acquire") return 2;
  if (name == "memory_order_release") return 2;
  if (name == "memory_order_acq_rel") return 3;
  if (name == "memory_order_seq_cst") return 4;
  return -1;
}

void check_r2(const Corpus& corpus, std::vector<Finding>* out) {
  for (const FileIndex& fi : corpus.files) {
    const std::vector<Token>& toks = fi.tokens;
    for (usize i = 2; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent || !atomic_ops().count(t.text)) continue;
      // Must look like a member call: `.op(` or `->op(`.
      const Token& prev = toks[i - 1];
      if (prev.kind != Tok::kPunct || (prev.text != "." && prev.text != "->"))
        continue;
      usize open = i + 1;
      while (open < toks.size() && (toks[open].kind == Tok::kComment ||
                                    toks[open].kind == Tok::kPreproc)) {
        ++open;
      }
      if (open >= toks.size() || toks[open].kind != Tok::kPunct ||
          toks[open].text != "(") {
        continue;
      }
      if (fi.waived_at("r2", t.line)) continue;
      // Collect memory_order_* identifiers in the argument list.
      std::vector<std::string> orders;
      int depth = 0;
      usize j = open;
      for (; j < toks.size(); ++j) {
        if (toks[j].kind == Tok::kPunct) {
          if (toks[j].text == "(") ++depth;
          else if (toks[j].text == ")" && --depth == 0) break;
        } else if (toks[j].kind == Tok::kIdent &&
                   toks[j].text.rfind("memory_order_", 0) == 0) {
          orders.push_back(toks[j].text);
        }
      }
      bool is_cas = t.text.rfind("compare_exchange", 0) == 0;
      if (orders.empty()) {
        add(out, "r2", fi.path, t.line,
            "atomic " + t.text + "() without an explicit std::memory_order");
        continue;
      }
      if (is_cas) {
        if (orders.size() < 2) {
          add(out, "r2", fi.path, t.line,
              t.text + "() must spell both success and failure orders");
          continue;
        }
        int success = order_rank(orders[orders.size() - 2]);
        int failure = order_rank(orders[orders.size() - 1]);
        const std::string& fname = orders.back();
        if (fname == "memory_order_release" ||
            fname == "memory_order_acq_rel") {
          add(out, "r2", fi.path, t.line,
              t.text + "() failure order may not be " + fname);
        } else if (failure > success) {
          add(out, "r2", fi.path, t.line,
              t.text + "() failure order " + fname +
                  " is stronger than the success order " +
                  orders[orders.size() - 2]);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// r3: shm layout manifest.

bool is_shm_header(const Corpus& corpus, const std::string& path) {
  for (const std::string& suffix : corpus.shm_headers) {
    if (path_ends_with(path, suffix)) return true;
  }
  return false;
}

void check_r3(const Corpus& corpus, std::vector<Finding>* out) {
  std::map<std::string, std::pair<const FileIndex*, const StructDef*>> shm;
  bool saw_shm_header = false;
  for (const FileIndex& fi : corpus.files) {
    if (!is_shm_header(corpus, fi.path)) continue;
    saw_shm_header = true;
    for (const StructDef& sd : fi.structs) {
      // A waiver on or just above the struct marks it non-shm (a view type).
      if (fi.waived_in("r3", sd.line - 3, sd.line)) continue;
      shm[sd.name] = {&fi, &sd};
      for (const std::string& member : sd.non_trivial_members) {
        add(out, "r3", fi.path, sd.line,
            "shm struct " + sd.name + " has non-trivially-copyable member '" +
                member + "'");
      }
      if (sd.has_pointer_member) {
        add(out, "r3", fi.path, sd.line,
            "shm struct " + sd.name +
                " has a pointer member (meaningless across processes)");
      }
      if (!sd.layout_computed) {
        add(out, "r3", fi.path, sd.line,
            "layout of shm struct " + sd.name +
                " could not be computed (unknown member type)");
      }
    }
  }
  // The manifest comparison needs the headers in the corpus; a scan of an
  // unrelated subtree (tools only, a fixture dir) must not report every
  // manifest struct as missing.
  if (!corpus.have_manifest || !saw_shm_header) return;

  std::set<std::string> in_manifest;
  for (const ManifestStruct& ms : corpus.manifest) {
    in_manifest.insert(ms.name);
    auto it = shm.find(ms.name);
    if (it == shm.end()) {
      add(out, "r3", ms.file, 0,
          "manifest struct " + ms.name +
              " not found in any shm layout header");
      continue;
    }
    const FileIndex& fi = *it->second.first;
    const StructDef& sd = *it->second.second;
    if (!sd.layout_computed) continue;  // already reported above
    if (sd.size != ms.size || sd.align != ms.align) {
      add(out, "r3", fi.path, sd.line,
          sd.name + ": size/align " + std::to_string(sd.size) + "/" +
              std::to_string(sd.align) + " != manifest " +
              std::to_string(ms.size) + "/" + std::to_string(ms.align));
    }
    std::map<std::string, const ManifestField*> mfields;
    for (const ManifestField& mf : ms.fields) mfields[mf.name] = &mf;
    for (const FieldDef& fd : sd.fields) {
      auto mit = mfields.find(fd.name);
      if (mit == mfields.end()) {
        add(out, "r3", fi.path, fd.line,
            sd.name + "." + fd.name +
                " is not in the manifest (regenerate tools/shm_manifest.json)");
        continue;
      }
      if (fd.offset != mit->second->offset || fd.size != mit->second->size) {
        add(out, "r3", fi.path, fd.line,
            sd.name + "." + fd.name + ": offset/size " +
                std::to_string(fd.offset) + "/" + std::to_string(fd.size) +
                " != manifest " + std::to_string(mit->second->offset) + "/" +
                std::to_string(mit->second->size));
      }
      mfields.erase(mit);
    }
    for (const auto& [name, mf] : mfields) {
      add(out, "r3", fi.path, sd.line,
          sd.name + "." + name + " is in the manifest but not in the struct");
    }
  }
  for (const auto& [name, ref] : shm) {
    if (!in_manifest.count(name)) {
      add(out, "r3", ref.first->path, ref.second->line,
          "shm struct " + name + " missing from tools/shm_manifest.json");
    }
  }
}

// ---------------------------------------------------------------------------
// r4: name-registry consistency.

bool is_name_header(const Corpus& corpus, const std::string& path) {
  for (const std::string& suffix : corpus.name_headers) {
    if (path_ends_with(path, suffix)) return true;
  }
  return false;
}

// `constexpr const char* kFoo = "...";` constants declared in `fi`.
std::map<std::string, std::string> string_constants(const FileIndex& fi) {
  std::map<std::string, std::string> out;
  const std::vector<Token>& toks = fi.tokens;
  for (usize i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent || toks[i].text.size() < 2 ||
        toks[i].text[0] != 'k') {
      continue;
    }
    usize j = i + 1;  // `kName = "..."` or the array form `kName[] = "..."`
    if (j + 1 < toks.size() && toks[j].kind == Tok::kPunct &&
        toks[j].text == "[" && toks[j + 1].kind == Tok::kPunct &&
        toks[j + 1].text == "]") {
      j += 2;
    }
    if (j + 2 < toks.size() && toks[j].kind == Tok::kPunct &&
        toks[j].text == "=" && toks[j + 1].kind == Tok::kString &&
        toks[j + 2].kind == Tok::kPunct && toks[j + 2].text == ";") {
      out[toks[i].text] = toks[j + 1].text;
    }
  }
  return out;
}

// Call names whose first argument must be a manifest constant, not a
// literal.
const std::set<std::string>& registered_name_calls() {
  static const std::set<std::string> kCalls = {
      "fires",     "value_below", "counter",
      "gauge",     "histogram",   "apply_byte_faults",
      "family",    "family_histogram",
  };
  return kCalls;
}

void check_r4(const Corpus& corpus, std::vector<Finding>* out) {
  const FileIndex* fault_header = nullptr;
  const FileIndex* metric_header = nullptr;
  for (const FileIndex& fi : corpus.files) {
    if (path_ends_with(fi.path, "faultsim/fault_points.h")) fault_header = &fi;
    if (path_ends_with(fi.path, "obs/metric_names.h")) metric_header = &fi;
  }

  // 1) Raw name literals outside the manifest headers.
  for (const FileIndex& fi : corpus.files) {
    if (is_name_header(corpus, fi.path)) continue;
    const std::vector<Token>& toks = fi.tokens;
    for (usize i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent ||
          !registered_name_calls().count(toks[i].text)) {
        continue;
      }
      if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "(") continue;
      usize arg = i + 2;
      while (arg < toks.size() && (toks[arg].kind == Tok::kComment ||
                                   toks[arg].kind == Tok::kPreproc)) {
        ++arg;
      }
      if (arg >= toks.size() || toks[arg].kind != Tok::kString) continue;
      if (fi.waived_at("r4", toks[i].line)) continue;
      add(out, "r4", fi.path, toks[i].line,
          toks[i].text + "(\"" + toks[arg].text +
              "\") spells a raw name; use the manifest constant");
    }
  }

  // 2) Every name constant must be referenced outside its defining header.
  auto check_referenced = [&](const FileIndex* header) {
    if (!header) return;
    for (const auto& [cname, value] : string_constants(*header)) {
      // Points reached only through a runtime-composed name (kDumpPrefix +
      // ".torn") are anchored by the TESTING.md table instead of a direct
      // code reference.
      if (corpus.have_doc && corpus.doc_fault_points.count(value)) continue;
      bool used = false;
      for (const FileIndex& fi : corpus.files) {
        if (&fi == header) continue;
        for (const Token& t : fi.tokens) {
          if (t.kind == Tok::kIdent && t.text == cname) {
            used = true;
            break;
          }
        }
        if (used) break;
      }
      if (!used) {
        add(out, "r4", header->path, 0,
            "name constant " + cname + " (\"" + value +
                "\") is referenced nowhere outside its manifest header");
      }
    }
  };
  check_referenced(fault_header);
  check_referenced(metric_header);

  // 3) Fault points <-> TESTING.md table, both directions.
  if (fault_header && corpus.have_doc) {
    std::set<std::string> declared;
    for (const auto& [cname, value] : string_constants(*fault_header)) {
      // Point names contain a '.'; bare prefixes (kDumpPrefix = "dump") are
      // building blocks, not points.
      if (value.find('.') != std::string::npos) declared.insert(value);
    }
    for (const std::string& name : declared) {
      if (!corpus.doc_fault_points.count(name)) {
        add(out, "r4", fault_header->path, 0,
            "fault point '" + name +
                "' is not documented in the TESTING.md fault-point table");
      }
    }
    for (const std::string& name : corpus.doc_fault_points) {
      if (!declared.count(name)) {
        add(out, "r4", fault_header->path, 0,
            "TESTING.md documents fault point '" + name +
                "' which fault_points.h does not declare");
      }
    }
  }
}

}  // namespace

std::vector<Finding> run_rules(const Corpus& corpus) {
  std::vector<Finding> out;
  check_r1(corpus, &out);
  check_r2(corpus, &out);
  check_r3(corpus, &out);
  check_r4(corpus, &out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

}  // namespace teeperf::lint
