// Stage #4: the visualizer. The paper feeds the analyzer's output to Brendan
// Gregg's flamegraph.pl; this module implements both halves natively:
//   - the *folded stacks* text format that flamegraph.pl consumes
//     ("a;b;c 1234" per line), so the original tooling still works, and
//   - a self-contained SVG renderer producing the familiar flame graph
//     (width ∝ time, one row per stack depth, warm palette, per-frame
//     tooltips) with no external dependency.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analyzer/profile.h"
#include "common/types.h"

namespace teeperf::flamegraph {

using FoldedStacks = std::vector<std::pair<std::string, u64>>;

// Renders folded stacks in flamegraph.pl input format.
std::string to_folded_text(const FoldedStacks& stacks);

// Parses the same format back (round-trip tested).
FoldedStacks parse_folded_text(const std::string& text);

struct SvgOptions {
  int width = 1200;
  int frame_height = 16;
  std::string title = "Flame Graph";
  // Frames narrower than this many pixels are dropped (standard flamegraph
  // behaviour; keeps the SVG small for deep noisy profiles).
  double min_width_px = 0.1;
  // Calibrated tick length. When > 0, frame tooltips carry real time (ms)
  // next to the raw tick count; render_profile_svg fills this in from the
  // profile's dump-header calibration (0 = uncalibrated, ticks only).
  double ns_per_tick = 0.0;
};

// Renders folded stacks to a standalone SVG document.
std::string render_svg(const FoldedStacks& stacks, const SvgOptions& options = {});

// Convenience: profile → SVG in one step.
std::string render_profile_svg(const analyzer::Profile& profile,
                               const SvgOptions& options = {});

// The merged frame tree the renderer lays out; exposed for tests and for
// programmatic inspection ("what fraction of total is frame X").
struct Frame {
  std::string name;
  u64 value = 0;       // total ticks under this frame (self + children)
  u64 self = 0;        // ticks attributed directly to this frame
  std::vector<Frame> children;  // ordered by name for deterministic output
};

Frame build_frame_tree(const FoldedStacks& stacks);

// --- timeline view (the second visualizer) -----------------------------------
// Per-thread swim lanes with one rectangle per invocation, positioned by
// counter value and stacked by call depth — a self-contained SVG trace
// viewer for seeing *when* things ran, complementing the flame graph's
// *how much* view.
struct TimelineOptions {
  int width = 1400;
  int row_height = 13;
  std::string title = "Timeline";
  // Invocations narrower than this many pixels are skipped.
  double min_width_px = 0.3;
};

std::string render_timeline_svg(const analyzer::Profile& profile,
                                const TimelineOptions& options = {});

// Finds a frame by name anywhere in the tree (first match, depth-first);
// returns nullptr if absent.
const Frame* find_frame(const Frame& root, const std::string& name);

// Fraction (0..1) of the root's total attributed to frames named `name`
// (summed over all occurrences, self + children).
double frame_fraction(const Frame& root, const std::string& name);

}  // namespace teeperf::flamegraph
