#include "flamegraph/flamegraph.h"

#include <algorithm>
#include <charconv>
#include <map>

#include "common/stringutil.h"

namespace teeperf::flamegraph {

std::string to_folded_text(const FoldedStacks& stacks) {
  std::string out;
  for (const auto& [path, value] : stacks) {
    out += path;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

FoldedStacks parse_folded_text(const std::string& text) {
  FoldedStacks out;
  for (std::string_view line : split(text, '\n')) {
    if (line.empty()) continue;
    usize space = line.rfind(' ');
    if (space == std::string_view::npos) continue;
    u64 value = 0;
    auto tail = line.substr(space + 1);
    auto [p, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), value);
    if (ec != std::errc{} || p != tail.data() + tail.size()) continue;
    out.emplace_back(std::string(line.substr(0, space)), value);
  }
  return out;
}

Frame build_frame_tree(const FoldedStacks& stacks) {
  Frame root;
  root.name = "all";
  for (const auto& [path, value] : stacks) {
    Frame* cur = &root;
    root.value += value;
    for (std::string_view part : split(path, ';')) {
      auto it = std::find_if(cur->children.begin(), cur->children.end(),
                             [&](const Frame& f) { return f.name == part; });
      if (it == cur->children.end()) {
        Frame f;
        f.name = std::string(part);
        // Keep children ordered by name: deterministic layout regardless of
        // input order.
        auto pos = std::lower_bound(
            cur->children.begin(), cur->children.end(), f.name,
            [](const Frame& a, const std::string& n) { return a.name < n; });
        it = cur->children.insert(pos, std::move(f));
      }
      it->value += value;
      cur = &*it;
    }
    cur->self += value;
  }
  return root;
}

const Frame* find_frame(const Frame& root, const std::string& name) {
  if (root.name == name) return &root;
  for (const Frame& c : root.children) {
    if (const Frame* f = find_frame(c, name)) return f;
  }
  return nullptr;
}

namespace {

u64 sum_named(const Frame& f, const std::string& name) {
  if (f.name == name) return f.value;  // includes all descendants
  u64 s = 0;
  for (const Frame& c : f.children) s += sum_named(c, name);
  return s;
}

// Deterministic warm palette keyed by the frame name, matching the classic
// flamegraph look (red→orange→yellow band).
std::string color_for(const std::string& name) {
  u64 h = 1469598103934665603ull;
  for (char c : name) h = (h ^ static_cast<u8>(c)) * 1099511628211ull;
  int r = 205 + static_cast<int>(h % 50);
  int g = static_cast<int>((h >> 8) % 180);
  int b = static_cast<int>((h >> 16) % 55);
  return str_format("rgb(%d,%d,%d)", r, g, b);
}

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

struct Layout {
  std::string* svg;
  const SvgOptions* opt;
  u64 total;
  int max_depth = 0;
};

void emit_frame(Layout& l, const Frame& f, double x, int depth, double px_per_tick) {
  double w = static_cast<double>(f.value) * px_per_tick;
  if (w < l.opt->min_width_px) return;
  l.max_depth = std::max(l.max_depth, depth);
  double y = static_cast<double>(depth) * l.opt->frame_height;
  double pct = l.total ? 100.0 * static_cast<double>(f.value) /
                             static_cast<double>(l.total)
                       : 0.0;
  std::string label = xml_escape(f.name);
  if (l.opt->ns_per_tick > 0) {
    // Calibrated profile: the tooltip leads with real time so "how long"
    // never requires mental tick arithmetic; the raw count stays for
    // cross-checking against the analyzer tables.
    *l.svg += str_format(
        "<g class=\"frame\"><title>%s (%.3f ms, %llu ticks, %.2f%%)</title>"
        "<rect x=\"%.2f\" y=\"%.1f\" width=\"%.2f\" height=\"%d\" fill=\"%s\" "
        "rx=\"1\"/>",
        label.c_str(),
        static_cast<double>(f.value) * l.opt->ns_per_tick / 1e6,
        static_cast<unsigned long long>(f.value), pct, x, y,
        std::max(w - 0.5, 0.1), l.opt->frame_height - 1,
        color_for(f.name).c_str());
  } else {
    *l.svg += str_format(
        "<g class=\"frame\"><title>%s (%llu ticks, %.2f%%)</title>"
        "<rect x=\"%.2f\" y=\"%.1f\" width=\"%.2f\" height=\"%d\" fill=\"%s\" "
        "rx=\"1\"/>",
        label.c_str(), static_cast<unsigned long long>(f.value), pct, x, y,
        std::max(w - 0.5, 0.1), l.opt->frame_height - 1,
        color_for(f.name).c_str());
  }
  // ~7 px per character at font-size 11; only label frames with room.
  usize fit = static_cast<usize>(w / 7.0);
  if (fit >= 3) {
    *l.svg += str_format(
        "<text x=\"%.2f\" y=\"%.1f\" font-size=\"11\" font-family=\"monospace\">"
        "%s</text>",
        x + 2, y + l.opt->frame_height - 4,
        xml_escape(ellipsize(f.name, fit)).c_str());
  }
  *l.svg += "</g>\n";

  double cx = x;
  for (const Frame& c : f.children) {
    emit_frame(l, c, cx, depth + 1, px_per_tick);
    cx += static_cast<double>(c.value) * px_per_tick;
  }
}

}  // namespace

double frame_fraction(const Frame& root, const std::string& name) {
  if (root.value == 0) return 0.0;
  return static_cast<double>(sum_named(root, name)) /
         static_cast<double>(root.value);
}

std::string render_svg(const FoldedStacks& stacks, const SvgOptions& options) {
  Frame root = build_frame_tree(stacks);

  // First pass to discover depth for the document height.
  std::string body;
  Layout l{&body, &options, root.value};
  double px_per_tick = root.value
                           ? static_cast<double>(options.width) /
                                 static_cast<double>(root.value)
                           : 0.0;
  emit_frame(l, root, 0.0, 0, px_per_tick);

  int title_h = 24;
  int height = (l.max_depth + 1) * options.frame_height + title_h + 8;
  std::string svg = str_format(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\">\n"
      "<rect width=\"100%%\" height=\"100%%\" fill=\"#f8f8f8\"/>\n"
      "<text x=\"%d\" y=\"16\" font-size=\"14\" font-family=\"sans-serif\" "
      "text-anchor=\"middle\">%s</text>\n"
      "<g transform=\"translate(0,%d)\">\n",
      options.width, height, options.width, height, options.width / 2,
      xml_escape(options.title).c_str(), title_h);
  svg += body;
  svg += "</g>\n</svg>\n";
  return svg;
}

std::string render_profile_svg(const analyzer::Profile& profile,
                               const SvgOptions& options) {
  SvgOptions opt = options;
  // Default the calibration from the profile's dump header so every caller
  // gets real-time tooltips for free; an explicit option still wins, and an
  // uncalibrated dump (ns_per_tick 0) keeps the ticks-only tooltip.
  if (opt.ns_per_tick <= 0) opt.ns_per_tick = profile.ns_per_tick();
  return render_svg(profile.folded_stacks(), opt);
}

}  // namespace teeperf::flamegraph

namespace teeperf::flamegraph {
namespace {

std::string timeline_color(const std::string& name) {
  u64 h = 14695981039346656037ull;
  for (char c : name) h = (h ^ static_cast<u8>(c)) * 1099511628211ull;
  // Cool palette so timelines read differently from flame graphs.
  int r = static_cast<int>(h % 90) + 40;
  int g = static_cast<int>((h >> 8) % 120) + 90;
  int b = 170 + static_cast<int>((h >> 16) % 80);
  char buf[32];
  std::snprintf(buf, sizeof buf, "rgb(%d,%d,%d)", r, g, b);
  return buf;
}

}  // namespace

std::string render_timeline_svg(const analyzer::Profile& profile,
                                const TimelineOptions& options) {
  const auto& all = profile.invocations();

  // Global time range and per-thread max depth.
  u64 t_min = ~0ull, t_max = 0;
  std::map<u64, u32> lane_depth;
  for (const auto& inv : all) {
    t_min = std::min(t_min, inv.start);
    t_max = std::max(t_max, inv.end);
    u32& d = lane_depth[inv.tid];
    d = std::max(d, inv.depth + 1);
  }
  if (all.empty() || t_max <= t_min) {
    return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"10\" "
           "height=\"10\"></svg>\n";
  }

  // Lane layout: lanes stacked top to bottom in tid order.
  std::map<u64, int> lane_y;
  int y = 28;
  for (const auto& [tid, depth] : lane_depth) {
    lane_y[tid] = y;
    y += static_cast<int>(depth) * options.row_height + 20;
  }
  int height = y + 6;

  double px_per_tick = static_cast<double>(options.width - 20) /
                       static_cast<double>(t_max - t_min);

  std::string svg = str_format(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\">\n"
      "<rect width=\"100%%\" height=\"100%%\" fill=\"#fcfcfe\"/>\n"
      "<text x=\"%d\" y=\"17\" font-size=\"13\" font-family=\"sans-serif\" "
      "text-anchor=\"middle\">%s</text>\n",
      options.width, height, options.width / 2,
      xml_escape(options.title).c_str());

  for (const auto& [tid, ly] : lane_y) {
    svg += str_format(
        "<text x=\"4\" y=\"%d\" font-size=\"10\" font-family=\"monospace\" "
        "fill=\"#666\">tid %llu</text>\n",
        ly - 3, static_cast<unsigned long long>(tid));
  }

  for (const auto& inv : all) {
    double x = 10 + static_cast<double>(inv.start - t_min) * px_per_tick;
    double w = static_cast<double>(inv.inclusive()) * px_per_tick;
    if (w < options.min_width_px) continue;
    int ry = lane_y[inv.tid] + static_cast<int>(inv.depth) * options.row_height;
    std::string name = xml_escape(profile.name(inv.method));
    svg += str_format(
        "<g><title>%s (%.3f ms, tid %llu, depth %u)</title>"
        "<rect x=\"%.2f\" y=\"%d\" width=\"%.2f\" height=\"%d\" fill=\"%s\" "
        "stroke=\"#fff\" stroke-width=\"0.3\"/>",
        name.c_str(), profile.ticks_to_ns(inv.inclusive()) / 1e6,
        static_cast<unsigned long long>(inv.tid), inv.depth, x, ry,
        std::max(w, 0.4), options.row_height - 1, timeline_color(name).c_str());
    usize fit = static_cast<usize>(w / 6.5);
    if (fit >= 4) {
      svg += str_format(
          "<text x=\"%.2f\" y=\"%d\" font-size=\"9\" "
          "font-family=\"monospace\">%s</text>",
          x + 2, ry + options.row_height - 3,
          xml_escape(ellipsize(profile.name(inv.method), fit)).c_str());
    }
    svg += "</g>\n";
  }
  svg += "</svg>\n";
  return svg;
}

}  // namespace teeperf::flamegraph
