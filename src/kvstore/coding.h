// Varint / fixed-width integer encoding for WAL records, SSTable blocks and
// write batches (LevelDB wire conventions).
#pragma once

#include <string>
#include <string_view>

#include "common/types.h"

namespace teeperf::kvs {

inline void put_fixed32(std::string* dst, u32 v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (i * 8));
  dst->append(buf, 4);
}

inline void put_fixed64(std::string* dst, u64 v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (i * 8));
  dst->append(buf, 8);
}

inline u32 get_fixed32(const char* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(static_cast<u8>(p[i])) << (i * 8);
  return v;
}

inline u64 get_fixed64(const char* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(static_cast<u8>(p[i])) << (i * 8);
  return v;
}

inline void put_varint64(std::string* dst, u64 v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

inline void put_varint32(std::string* dst, u32 v) { put_varint64(dst, v); }

// Decodes a varint from [p, limit); advances *p past it. Returns false on
// truncation or overlong encoding.
inline bool get_varint64(const char** p, const char* limit, u64* out) {
  u64 v = 0;
  int shift = 0;
  while (*p < limit && shift <= 63) {
    u8 byte = static_cast<u8>(**p);
    ++*p;
    v |= static_cast<u64>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline bool get_varint32(const char** p, const char* limit, u32* out) {
  u64 v = 0;
  if (!get_varint64(p, limit, &v) || v > 0xffffffffull) return false;
  *out = static_cast<u32>(v);
  return true;
}

// Reads a varint-length-prefixed string_view out of [p, limit).
inline bool get_length_prefixed(const char** p, const char* limit,
                                std::string_view* out) {
  u32 len = 0;
  if (!get_varint32(p, limit, &len)) return false;
  if (static_cast<usize>(limit - *p) < len) return false;
  *out = std::string_view(*p, len);
  *p += len;
  return true;
}

inline void put_length_prefixed(std::string* dst, std::string_view s) {
  put_varint32(dst, static_cast<u32>(s.size()));
  dst->append(s.data(), s.size());
}

}  // namespace teeperf::kvs
