// Version = the immutable set of SSTables forming the persistent state,
// organized into levels (L0 may have overlapping files, deeper levels are
// produced by whole-level merges here). Readers grab a shared_ptr to the
// current Version and read without locks while writers install successors.
// The MANIFEST file persists the live-file list, the next file number and
// the last durable sequence.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "kvstore/options.h"
#include "kvstore/sstable.h"
#include "kvstore/status.h"

namespace teeperf::kvs {

struct FileMeta {
  u64 number = 0;
  std::shared_ptr<Table> table;
  u64 entries = 0;
  u64 size = 0;
};

struct Version {
  // levels[0] is ordered newest-file-first (lookup order matters: L0 files
  // overlap); deeper levels have disjoint files.
  std::vector<std::vector<std::shared_ptr<FileMeta>>> levels;

  explicit Version(usize level_count) : levels(level_count) {}

  u64 level_bytes(usize level) const {
    u64 b = 0;
    for (const auto& f : levels[level]) b += f->size;
    return b;
  }
  usize file_count() const {
    usize n = 0;
    for (const auto& l : levels) n += l.size();
    return n;
  }
};

// MANIFEST serialization: a small text file, rewritten atomically-enough
// (write + rename) on every version change.
struct ManifestData {
  u64 next_file_number = 1;
  u64 last_sequence = 0;
  // (level, file_number) pairs; L0 order in the file is lookup order.
  std::vector<std::pair<usize, u64>> files;
};

Status write_manifest(const std::string& db_dir, const ManifestData& data);
Status read_manifest(const std::string& db_dir, ManifestData* data, bool* exists);

std::string table_file_name(const std::string& db_dir, u64 number);
std::string wal_file_name(const std::string& db_dir);

}  // namespace teeperf::kvs
