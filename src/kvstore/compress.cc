#include "kvstore/compress.h"

#include <cstring>
#include <vector>

#include "kvstore/coding.h"

namespace teeperf::kvs {
namespace {

constexpr usize kMinMatch = 4;
constexpr usize kMaxOffset = 1u << 16;
constexpr usize kHashBits = 13;
constexpr usize kHashSize = 1u << kHashBits;

inline u32 hash4(const char* p) {
  u32 v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void emit_literals(std::string_view input, usize from, usize to, std::string* out) {
  if (to <= from) return;
  out->push_back('\0');
  put_varint64(out, to - from);
  out->append(input.data() + from, to - from);
}

}  // namespace

std::string lz_compress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  if (input.size() < kMinMatch + 1) {
    emit_literals(input, 0, input.size(), &out);
    return out;
  }

  // Last seen position of each 4-byte hash.
  std::vector<u32> table(kHashSize, 0xffffffffu);
  usize literal_start = 0;
  usize i = 0;
  while (i + kMinMatch <= input.size()) {
    u32 h = hash4(input.data() + i);
    u32 candidate = table[h];
    table[h] = static_cast<u32>(i);

    if (candidate != 0xffffffffu && i - candidate <= kMaxOffset &&
        std::memcmp(input.data() + candidate, input.data() + i, kMinMatch) == 0) {
      // Extend the match.
      usize len = kMinMatch;
      while (i + len < input.size() &&
             input[candidate + len] == input[i + len]) {
        ++len;
      }
      emit_literals(input, literal_start, i, &out);
      out.push_back('\x01');
      put_varint64(&out, i - candidate);
      put_varint64(&out, len);
      i += len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  emit_literals(input, literal_start, input.size(), &out);
  return out;
}

bool lz_decompress(std::string_view compressed, std::string* out) {
  out->clear();
  const char* p = compressed.data();
  const char* limit = p + compressed.size();
  while (p < limit) {
    u8 tag = static_cast<u8>(*p++);
    if (tag == 0) {
      u64 len = 0;
      if (!get_varint64(&p, limit, &len)) return false;
      if (static_cast<usize>(limit - p) < len) return false;
      out->append(p, len);
      p += len;
    } else if (tag == 1) {
      u64 offset = 0, len = 0;
      if (!get_varint64(&p, limit, &offset)) return false;
      if (!get_varint64(&p, limit, &len)) return false;
      if (offset == 0 || offset > out->size() || len < kMinMatch) return false;
      // Byte-by-byte copy: offsets smaller than len self-overlap (RLE).
      usize from = out->size() - static_cast<usize>(offset);
      for (u64 k = 0; k < len; ++k) out->push_back((*out)[from + k]);
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace teeperf::kvs
