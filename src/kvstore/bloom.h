// Bloom filter for SSTable key lookups (double-hashing construction, as in
// LevelDB's FilterPolicy): k probes derived from one 64-bit hash.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace teeperf::kvs {

class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(usize bits_per_key) : bits_per_key_(bits_per_key) {}

  void add(std::string_view key) { hashes_.push_back(hash_key(key)); }
  usize key_count() const { return hashes_.size(); }

  // Serializes the filter: bit array followed by one byte holding k.
  std::string finish() const;

  static u64 hash_key(std::string_view key);

 private:
  usize bits_per_key_;
  std::vector<u64> hashes_;
};

// Returns true if `key` may be present in the serialized `filter`
// (never a false negative; false positives at the configured rate).
// An empty/undersized filter conservatively returns true.
bool bloom_may_contain(std::string_view filter, std::string_view key);

}  // namespace teeperf::kvs
