#include "kvstore/db.h"

#include <algorithm>
#include <cstdio>

#include "common/fileutil.h"
#include "core/scope.h"
#include "kvstore/coding.h"
#include "kvstore/dbformat.h"

namespace teeperf::kvs {
namespace {

// Adapts MemTable::Iterator to the Iterator interface.
class MemIterAdapter : public Iterator {
 public:
  explicit MemIterAdapter(std::shared_ptr<MemTable> mem)
      : mem_(std::move(mem)), it_(mem_.get()) {}

  bool valid() const override { return it_.valid(); }
  void seek_to_first() override { it_.seek_to_first(); }
  void seek(std::string_view target) override { it_.seek(target); }
  void next() override { it_.next(); }
  std::string_view key() const override { return it_.internal_key(); }
  std::string_view value() const override { return it_.value(); }

 private:
  std::shared_ptr<MemTable> mem_;  // keeps the arena alive
  MemTable::Iterator it_;
};

// The user-facing iterator: resolves versions and tombstones against a
// snapshot sequence. key() yields *user* keys.
class DBIterator : public Iterator {
 public:
  DBIterator(std::unique_ptr<Iterator> inner, u64 snapshot)
      : inner_(std::move(inner)), snapshot_(snapshot) {}

  bool valid() const override { return valid_; }

  void seek_to_first() override {
    inner_->seek_to_first();
    advance_to_live(/*skip_current_user_key=*/false);
  }

  void seek(std::string_view user_key) override {
    std::string probe;
    append_internal_key(&probe, user_key, snapshot_, ValueType::kValue);
    inner_->seek(probe);
    advance_to_live(/*skip_current_user_key=*/false);
  }

  void next() override {
    inner_->next();
    advance_to_live(/*skip_current_user_key=*/true);
  }

  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }

 private:
  // Positions on the newest live (visible, non-tombstoned) user key at or
  // after the inner cursor. Internal ordering (seq descending within a user
  // key) makes the first visible version the authoritative one.
  void advance_to_live(bool skip_current_user_key) {
    std::string skip_key = skip_current_user_key ? key_ : std::string();
    bool skipping = skip_current_user_key;
    valid_ = false;
    while (inner_->valid()) {
      ParsedInternalKey parsed;
      if (!parse_internal_key(inner_->key(), &parsed) ||
          parsed.sequence > snapshot_) {
        inner_->next();
        continue;
      }
      if (skipping && parsed.user_key == skip_key) {
        inner_->next();
        continue;
      }
      if (parsed.type == ValueType::kDeletion) {
        // Tombstone: everything older for this key is dead too.
        skip_key.assign(parsed.user_key);
        skipping = true;
        inner_->next();
        continue;
      }
      key_.assign(parsed.user_key);
      value_.assign(inner_->value());
      valid_ = true;
      return;
    }
  }

  std::unique_ptr<Iterator> inner_;
  u64 snapshot_;
  bool valid_ = false;
  std::string key_, value_;
};

}  // namespace

DB::DB(const Options& options, std::string path)
    : options_(options), path_(std::move(path)) {
  usize levels = options_.max_levels < 2 ? 2 : options_.max_levels;
  mem_ = std::make_shared<MemTable>();
  current_ = std::make_shared<Version>(levels);
  stats_.files_per_level.assign(levels, 0);
}

DB::~DB() { wal_.close(); }

Status DB::open(const Options& options, const std::string& path,
                std::unique_ptr<DB>* out) {
  if (!make_dirs(path)) return Status::io_error("mkdir " + path);
  auto db = std::unique_ptr<DB>(new DB(options, path));
  Status s = db->recover();
  if (!s.is_ok()) return s;
  *out = std::move(db);
  return Status::ok();
}

Status DB::recover() {
  std::lock_guard<std::mutex> lock(mu_);

  ManifestData manifest;
  bool exists = false;
  Status s = read_manifest(path_, &manifest, &exists);
  if (!s.is_ok()) return s;
  // A DB that never flushed has no MANIFEST yet but does have a WAL.
  bool db_present = exists || file_exists(wal_file_name(path_));
  if (db_present && options_.error_if_exists) {
    return Status::invalid("db exists: " + path_);
  }
  if (!db_present && !options_.create_if_missing) {
    return Status::invalid("db missing: " + path_);
  }

  if (exists) {
    next_file_number_ = manifest.next_file_number;
    sequence_ = manifest.last_sequence;
    auto v = std::make_shared<Version>(current_->levels.size());
    for (const auto& [level, number] : manifest.files) {
      if (level >= v->levels.size()) return Status::corruption("manifest level");
      std::unique_ptr<Table> table;
      s = Table::open(table_file_name(path_, number), options_, &table);
      if (!s.is_ok()) return s;
      auto meta = std::make_shared<FileMeta>();
      meta->number = number;
      meta->entries = table->entry_count();
      meta->size = table->file_size();
      meta->table = std::shared_ptr<Table>(std::move(table));
      v->levels[level].push_back(std::move(meta));
    }
    // Deeper levels keep files sorted by smallest key for range reasoning.
    for (usize l = 1; l < v->levels.size(); ++l) {
      std::sort(v->levels[l].begin(), v->levels[l].end(),
                [](const auto& a, const auto& b) {
                  return a->table->smallest() < b->table->smallest();
                });
    }
    current_ = std::move(v);
  }

  // Replay the WAL (acknowledged writes that never reached an SSTable).
  if (options_.wal_enabled) {
    std::vector<std::string> records;
    s = WalReader::read_all(wal_file_name(path_), &records);
    if (!s.is_ok()) return s;
    for (std::string& rec : records) {
      WriteBatch batch = WriteBatch::from_payload(std::move(rec));
      ++stats_.wal_records;
      u64 max_seq = 0;
      Status bs = batch.iterate([&](u64 seq, ValueType type, std::string_view key,
                                    std::string_view value) {
        mem_->add(seq, type, key, value);
        max_seq = std::max(max_seq, seq);
      });
      if (!bs.is_ok()) return bs;
      sequence_ = std::max(sequence_, max_seq);
    }
    s = wal_.open(wal_file_name(path_), /*truncate=*/false);
    if (!s.is_ok()) return s;
  }

  stats_.sequence = sequence_;
  for (usize l = 0; l < current_->levels.size(); ++l) {
    stats_.files_per_level[l] = current_->levels[l].size();
  }
  return Status::ok();
}

Status DB::put(const WriteOptions& wopts, std::string_view key,
               std::string_view value) {
  TEEPERF_SCOPE("kvs::DB::Put");
  WriteBatch batch;
  batch.put(key, value);
  return write(wopts, &batch);
}

Status DB::remove(const WriteOptions& wopts, std::string_view key) {
  TEEPERF_SCOPE("kvs::DB::Delete");
  WriteBatch batch;
  batch.remove(key);
  return write(wopts, &batch);
}

Status DB::write(const WriteOptions&, WriteBatch* batch) {
  TEEPERF_SCOPE("kvs::DB::Write");
  std::lock_guard<std::mutex> lock(mu_);
  return write_locked(batch);
}

Status DB::write_locked(WriteBatch* batch) {
  batch->set_base_sequence(sequence_ + 1);

  if (options_.wal_enabled) {
    TEEPERF_SCOPE("kvs::DB::WriteToWAL");
    Status s = wal_.append(batch->payload());
    if (!s.is_ok()) return s;
    s = wal_.flush();
    if (!s.is_ok()) return s;
  }

  {
    TEEPERF_SCOPE("kvs::MemTable::Add");
    Status s = batch->iterate([this](u64 seq, ValueType type, std::string_view key,
                                     std::string_view value) {
      mem_->add(seq, type, key, value);
    });
    if (!s.is_ok()) return s;
  }
  sequence_ += batch->count();
  stats_.sequence = sequence_;

  if (mem_->approximate_memory_usage() >= options_.write_buffer_size) {
    Status s = flush_memtable_locked();
    if (!s.is_ok()) return s;
    s = maybe_compact_locked();
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

Status DB::get(const ReadOptions&, std::string_view key, std::string* value) {
  TEEPERF_SCOPE("kvs::DB::Get");
  std::shared_ptr<MemTable> mem;
  std::shared_ptr<Version> version;
  u64 snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mem = mem_;
    version = current_;
    snapshot = sequence_;
  }

  TEEPERF_SCOPE("kvs::DB::GetImpl");
  Status result;
  {
    TEEPERF_SCOPE("kvs::MemTable::Get");
    if (mem->get(key, snapshot, value, &result)) return result;
  }

  TEEPERF_SCOPE("kvs::Version::Get");
  // L0: newest file first (files overlap).
  for (const auto& f : version->levels[0]) {
    if (f->table->get(key, snapshot, value, &result)) return result;
  }
  // Deeper levels: disjoint files; check only the one covering the key.
  for (usize l = 1; l < version->levels.size(); ++l) {
    for (const auto& f : version->levels[l]) {
      if (key < extract_user_key(f->table->smallest())) break;
      if (key > extract_user_key(f->table->largest())) continue;
      if (f->table->get(key, snapshot, value, &result)) return result;
    }
  }
  return Status::not_found(std::string(key));
}

std::vector<Status> DB::multi_get(const ReadOptions&,
                                  const std::vector<std::string_view>& keys,
                                  std::vector<std::string>* values) {
  TEEPERF_SCOPE("kvs::DB::MultiGet");
  std::shared_ptr<MemTable> mem;
  std::shared_ptr<Version> version;
  u64 snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mem = mem_;
    version = current_;
    snapshot = sequence_;
  }

  values->assign(keys.size(), {});
  std::vector<Status> statuses;
  statuses.reserve(keys.size());
  for (usize i = 0; i < keys.size(); ++i) {
    std::string_view key = keys[i];
    std::string* value = &(*values)[i];
    Status result;
    bool found = mem->get(key, snapshot, value, &result);
    if (!found) {
      for (const auto& f : version->levels[0]) {
        if ((found = f->table->get(key, snapshot, value, &result))) break;
      }
    }
    if (!found) {
      for (usize l = 1; l < version->levels.size() && !found; ++l) {
        for (const auto& f : version->levels[l]) {
          if (key < extract_user_key(f->table->smallest())) break;
          if (key > extract_user_key(f->table->largest())) continue;
          if ((found = f->table->get(key, snapshot, value, &result))) break;
        }
      }
    }
    statuses.push_back(found ? result : Status::not_found(std::string(key)));
  }
  return statuses;
}

std::unique_ptr<Iterator> DB::new_iterator(const ReadOptions&) {
  std::shared_ptr<MemTable> mem;
  std::shared_ptr<Version> version;
  u64 snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mem = mem_;
    version = current_;
    snapshot = sequence_;
  }
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<MemIterAdapter>(mem));
  for (const auto& level : version->levels) {
    for (const auto& f : level) children.push_back(f->table->new_iterator());
  }
  // The version shared_ptr must outlive the child iterators; capture it in
  // a wrapper via a custom deleter trick: stash it in the DBIterator.
  class Holder : public Iterator {
   public:
    Holder(std::unique_ptr<Iterator> inner, std::shared_ptr<Version> v)
        : inner_(std::move(inner)), v_(std::move(v)) {}
    bool valid() const override { return inner_->valid(); }
    void seek_to_first() override { inner_->seek_to_first(); }
    void seek(std::string_view t) override { inner_->seek(t); }
    void next() override { inner_->next(); }
    std::string_view key() const override { return inner_->key(); }
    std::string_view value() const override { return inner_->value(); }

   private:
    std::unique_ptr<Iterator> inner_;
    std::shared_ptr<Version> v_;
  };
  auto merged = std::make_unique<Holder>(new_merging_iterator(std::move(children)),
                                         version);
  return std::make_unique<DBIterator>(std::move(merged), snapshot);
}

Status DB::flush_memtable_locked() {
  TEEPERF_SCOPE("kvs::DB::FlushMemTable");
  if (mem_->entry_count() == 0) return Status::ok();

  u64 number = next_file_number_++;
  TableBuilder builder(options_);
  MemTable::Iterator it(mem_.get());
  for (it.seek_to_first(); it.valid(); it.next()) {
    builder.add(it.internal_key(), it.value());
  }
  Status s = builder.finish(table_file_name(path_, number));
  if (!s.is_ok()) return s;

  std::unique_ptr<Table> table;
  s = Table::open(table_file_name(path_, number), options_, &table);
  if (!s.is_ok()) return s;

  auto meta = std::make_shared<FileMeta>();
  meta->number = number;
  meta->entries = table->entry_count();
  meta->size = table->file_size();
  meta->table = std::shared_ptr<Table>(std::move(table));

  auto v = std::make_shared<Version>(*current_);
  v->levels[0].insert(v->levels[0].begin(), std::move(meta));  // newest first
  s = install_version_locked(std::move(v));
  if (!s.is_ok()) return s;

  mem_ = std::make_shared<MemTable>();
  if (options_.wal_enabled) {
    s = wal_.open(wal_file_name(path_), /*truncate=*/true);
    if (!s.is_ok()) return s;
  }
  ++stats_.memtable_flushes;
  return Status::ok();
}

u64 DB::level_byte_budget(usize level) const {
  u64 budget = options_.max_bytes_for_level_base;
  for (usize l = 1; l < level; ++l) budget *= 10;
  return budget;
}

Status DB::maybe_compact_locked() {
  bool progress = true;
  while (progress) {
    progress = false;
    if (current_->levels[0].size() >= options_.l0_compaction_trigger) {
      Status s = compact_level_locked(0);
      if (!s.is_ok()) return s;
      progress = true;
      continue;
    }
    for (usize l = 1; l + 1 < current_->levels.size(); ++l) {
      if (current_->level_bytes(l) > level_byte_budget(l)) {
        Status s = compact_level_locked(l);
        if (!s.is_ok()) return s;
        progress = true;
        break;
      }
    }
  }
  return Status::ok();
}

Status DB::compact_level_locked(usize level) {
  TEEPERF_SCOPE("kvs::DB::CompactLevel");
  usize out_level = level + 1;
  if (out_level >= current_->levels.size()) return Status::ok();

  // Inputs: every file of `level` and `out_level` (whole-level merge).
  std::vector<std::shared_ptr<FileMeta>> inputs;
  for (const auto& f : current_->levels[level]) inputs.push_back(f);
  for (const auto& f : current_->levels[out_level]) inputs.push_back(f);
  if (inputs.empty()) return Status::ok();

  // Tombstones can be dropped when nothing deeper could hold the key.
  bool bottom = true;
  for (usize l = out_level + 1; l < current_->levels.size(); ++l) {
    if (!current_->levels[l].empty()) bottom = false;
  }

  std::vector<std::unique_ptr<Iterator>> children;
  for (const auto& f : inputs) children.push_back(f->table->new_iterator());
  auto merged = new_merging_iterator(std::move(children));

  std::vector<std::shared_ptr<FileMeta>> outputs;
  std::unique_ptr<TableBuilder> builder;
  u64 out_number = 0;

  auto finish_output = [&]() -> Status {
    if (!builder || builder->entry_count() == 0) {
      builder.reset();
      return Status::ok();
    }
    Status s = builder->finish(table_file_name(path_, out_number));
    if (!s.is_ok()) return s;
    std::unique_ptr<Table> table;
    s = Table::open(table_file_name(path_, out_number), options_, &table);
    if (!s.is_ok()) return s;
    auto meta = std::make_shared<FileMeta>();
    meta->number = out_number;
    meta->entries = table->entry_count();
    meta->size = table->file_size();
    meta->table = std::shared_ptr<Table>(std::move(table));
    outputs.push_back(std::move(meta));
    builder.reset();
    return Status::ok();
  };

  std::string last_user_key;
  bool has_last = false;
  for (merged->seek_to_first(); merged->valid(); merged->next()) {
    ParsedInternalKey parsed;
    if (!parse_internal_key(merged->key(), &parsed)) {
      return Status::corruption("compaction key");
    }
    // Keep only the newest version of each user key (no snapshots held:
    // older versions are unreachable).
    if (has_last && parsed.user_key == last_user_key) continue;
    last_user_key.assign(parsed.user_key);
    has_last = true;
    if (bottom && parsed.type == ValueType::kDeletion) continue;

    if (!builder) {
      builder = std::make_unique<TableBuilder>(options_);
      out_number = next_file_number_++;
    }
    builder->add(merged->key(), merged->value());
    if (builder->file_size() >= options_.target_file_size) {
      Status s = finish_output();
      if (!s.is_ok()) return s;
    }
  }
  Status s = finish_output();
  if (!s.is_ok()) return s;

  auto v = std::make_shared<Version>(*current_);
  std::vector<std::shared_ptr<FileMeta>> old_level0 = v->levels[level];
  std::vector<std::shared_ptr<FileMeta>> old_level1 = v->levels[out_level];
  v->levels[level].clear();
  v->levels[out_level] = outputs;  // merge output is already key-ordered
  s = install_version_locked(std::move(v));
  if (!s.is_ok()) return s;

  // Inputs are no longer referenced by the manifest; remove the files (the
  // Table objects keep their in-memory images alive for live iterators).
  for (const auto& f : old_level0) remove_file(table_file_name(path_, f->number));
  for (const auto& f : old_level1) remove_file(table_file_name(path_, f->number));
  ++stats_.compactions;
  return Status::ok();
}

Status DB::install_version_locked(std::shared_ptr<Version> v) {
  ManifestData manifest;
  manifest.next_file_number = next_file_number_;
  manifest.last_sequence = sequence_;
  for (usize l = 0; l < v->levels.size(); ++l) {
    for (const auto& f : v->levels[l]) manifest.files.emplace_back(l, f->number);
  }
  Status s = write_manifest(path_, manifest);
  if (!s.is_ok()) return s;
  current_ = std::move(v);
  for (usize l = 0; l < current_->levels.size(); ++l) {
    stats_.files_per_level[l] = current_->levels[l].size();
  }
  return Status::ok();
}

Status DB::compact_all() {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = flush_memtable_locked();
  if (!s.is_ok()) return s;
  for (usize l = 0; l + 1 < current_->levels.size(); ++l) {
    if (current_->levels[l].empty()) continue;
    s = compact_level_locked(l);
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

DB::DBStats DB::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string DB::debug_string() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "level   files        bytes\n";
  for (usize l = 0; l < current_->levels.size(); ++l) {
    char line[80];
    std::snprintf(line, sizeof line, "L%-6zu %5zu %12llu\n", l,
                  current_->levels[l].size(),
                  static_cast<unsigned long long>(current_->level_bytes(l)));
    out += line;
  }
  char tail[160];
  std::snprintf(tail, sizeof tail,
                "memtable: %llu entries, %zu bytes | seq %llu | flushes %llu | "
                "compactions %llu\n",
                static_cast<unsigned long long>(mem_->entry_count()),
                mem_->approximate_memory_usage(),
                static_cast<unsigned long long>(sequence_),
                static_cast<unsigned long long>(stats_.memtable_flushes),
                static_cast<unsigned long long>(stats_.compactions));
  out += tail;
  return out;
}

u64 DB::sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sequence_;
}

}  // namespace teeperf::kvs
