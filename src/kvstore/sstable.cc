#include "kvstore/sstable.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/fileutil.h"
#include "faultsim/fault.h"
#include "faultsim/fault_points.h"
#include "kvstore/bloom.h"
#include "kvstore/coding.h"
#include "kvstore/compress.h"
#include "kvstore/dbformat.h"

namespace teeperf::kvs {
namespace {

void append_block_with_crc(std::string* dst, std::string_view block) {
  dst->append(block.data(), block.size());
  put_fixed32(dst, crc32c_mask(crc32c(block.data(), block.size())));
}

bool check_block_crc(std::string_view block_with_crc) {
  if (block_with_crc.size() < 4) return false;
  std::string_view body = block_with_crc.substr(0, block_with_crc.size() - 4);
  u32 stored = get_fixed32(block_with_crc.data() + body.size());
  return crc32c_unmask(stored) == crc32c(body.data(), body.size());
}

}  // namespace

// ---------------------------------------------------------------- builder --

void TableBuilder::add(std::string_view internal_key, std::string_view value) {
  if (entries_ == 0) smallest_.assign(internal_key);
  largest_.assign(internal_key);

  put_varint32(&block_, static_cast<u32>(internal_key.size()));
  put_varint32(&block_, static_cast<u32>(value.size()));
  block_.append(internal_key.data(), internal_key.size());
  block_.append(value.data(), value.size());
  last_key_.assign(internal_key);
  ++entries_;

  put_length_prefixed(&filter_keys_, extract_user_key(internal_key));

  if (block_.size() >= options_.block_size) flush_block();
}

void TableBuilder::flush_block() {
  if (block_.empty()) return;
  // Prefix byte selects the payload encoding; compression is only kept
  // when it actually shrinks the block.
  std::string framed;
  if (options_.compress_blocks) {
    std::string packed = lz_compress(block_);
    if (packed.size() < block_.size()) {
      framed.push_back('\x01');
      framed += packed;
    }
  }
  if (framed.empty()) {
    framed.push_back('\x00');
    framed += block_;
  }
  u64 offset = buf_.size();
  u64 length = framed.size();
  append_block_with_crc(&buf_, framed);
  block_.clear();

  put_varint32(&index_, static_cast<u32>(last_key_.size()));
  index_.append(last_key_);
  put_fixed64(&index_, offset);
  put_fixed64(&index_, length);
}

Status TableBuilder::finish(const std::string& path) {
  flush_block();

  // Filter block.
  BloomFilterBuilder bloom(options_.bloom_bits_per_key ? options_.bloom_bits_per_key
                                                       : 1);
  const char* p = filter_keys_.data();
  const char* limit = p + filter_keys_.size();
  std::string_view key;
  while (p < limit && get_length_prefixed(&p, limit, &key)) bloom.add(key);
  std::string filter = options_.bloom_bits_per_key ? bloom.finish() : std::string();

  u64 filter_off = buf_.size();
  u64 filter_len = filter.size();
  append_block_with_crc(&buf_, filter);

  u64 index_off = buf_.size();
  u64 index_len = index_.size();
  append_block_with_crc(&buf_, index_);

  put_fixed64(&buf_, index_off);
  put_fixed64(&buf_, index_len);
  put_fixed64(&buf_, filter_off);
  put_fixed64(&buf_, filter_len);
  put_fixed64(&buf_, entries_);
  put_fixed64(&buf_, kTableMagic);

  if (!write_file(path, buf_)) return Status::io_error("write " + path);
  return Status::ok();
}

// ----------------------------------------------------------------- reader --

Status Table::open(const std::string& path, const Options& options,
                   std::unique_ptr<Table>* out) {
  (void)options;
  auto data = read_file(path);
  if (!data) return Status::io_error("read " + path);
  if (data->size() < 48) return Status::corruption("table too small: " + path);

  auto table = std::unique_ptr<Table>(new Table());
  table->path_ = path;
  table->data_ = std::move(*data);
  // Fault point: a bit flipped in the table image by the untrusted host.
  // Some layer of validation (footer range checks, block CRCs) must reject
  // it with Status::corruption — never an out-of-bounds read.
  if (!table->data_.empty() && fault::fires(fault_points::kSstableOpenFlip)) {
    u64 bit = fault::value_below(fault_points::kSstableOpenFlip, table->data_.size() * 8);
    table->data_[bit / 8] =
        static_cast<char>(table->data_[bit / 8] ^ (1u << (bit % 8)));
  }
  const std::string& d = table->data_;
  const char* footer = d.data() + d.size() - 48;
  u64 index_off = get_fixed64(footer);
  u64 index_len = get_fixed64(footer + 8);
  u64 filter_off = get_fixed64(footer + 16);
  u64 filter_len = get_fixed64(footer + 24);
  table->entry_count_ = get_fixed64(footer + 32);
  if (get_fixed64(footer + 40) != kTableMagic) {
    return Status::corruption("bad table magic: " + path);
  }
  // Range-check without arithmetic that a hostile footer can overflow: each
  // offset must sit inside the file and leave room for length + 4-byte CRC.
  auto block_in_file = [&d](u64 off, u64 len) {
    return off <= d.size() && d.size() - off >= 4 && len <= d.size() - off - 4;
  };
  if (!block_in_file(index_off, index_len) ||
      !block_in_file(filter_off, filter_len)) {
    return Status::corruption("bad table footer: " + path);
  }

  std::string_view index_block(d.data() + index_off, index_len + 4);
  std::string_view filter_block(d.data() + filter_off, filter_len + 4);
  if (!check_block_crc(index_block) || !check_block_crc(filter_block)) {
    return Status::corruption("table meta crc: " + path);
  }
  table->filter_.assign(filter_block.substr(0, filter_len));

  // Decode the index and verify every data block exactly once.
  const char* p = d.data() + index_off;
  const char* limit = p + index_len;
  while (p < limit) {
    std::string_view last_key;
    if (!get_length_prefixed(&p, limit, &last_key) ||
        static_cast<usize>(limit - p) < 16) {
      return Status::corruption("table index: " + path);
    }
    IndexEntry e;
    e.last_key.assign(last_key);
    e.offset = get_fixed64(p);
    e.length = get_fixed64(p + 8);
    p += 16;
    if (!block_in_file(e.offset, e.length)) {
      return Status::corruption("table index range: " + path);
    }
    if (!check_block_crc(std::string_view(d.data() + e.offset, e.length + 4))) {
      return Status::corruption("table data crc: " + path);
    }
    // Decode the encoding prefix; compressed payloads are inflated once
    // here and served from owned storage.
    if (e.length < 1) return Status::corruption("empty block frame: " + path);
    char prefix = d[e.offset];
    std::string owned;
    if (prefix == '\x01') {
      if (!lz_decompress(std::string_view(d.data() + e.offset + 1, e.length - 1),
                         &owned)) {
        return Status::corruption("block decompress: " + path);
      }
      ++table->compressed_blocks;
    } else if (prefix != '\x00') {
      return Status::corruption("unknown block encoding: " + path);
    }
    table->owned_blocks_.push_back(std::move(owned));
    table->index_.push_back(std::move(e));
  }

  // Derive smallest/largest from the first record / last index key.
  if (!table->index_.empty()) {
    std::string_view block = table->block_data(0);
    const char* bp = block.data();
    const char* blimit = bp + block.size();
    u32 klen = 0, vlen = 0;
    if (get_varint32(&bp, blimit, &klen) && get_varint32(&bp, blimit, &vlen) &&
        static_cast<usize>(blimit - bp) >= klen) {
      table->smallest_.assign(bp, klen);
    }
    table->largest_ = table->index_.back().last_key;
  }

  *out = std::move(table);
  return Status::ok();
}

std::string_view Table::block_data(usize block_index) const {
  const std::string& owned = owned_blocks_[block_index];
  if (!owned.empty()) return owned;  // decompressed at open
  const IndexEntry& e = index_[block_index];
  return std::string_view(data_.data() + e.offset + 1, e.length - 1);
}

usize Table::block_lower_bound(std::string_view internal_key) const {
  usize lo = 0, hi = index_.size();
  while (lo < hi) {
    usize mid = (lo + hi) / 2;
    if (compare_internal_keys(index_[mid].last_key, internal_key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool Table::get(std::string_view user_key, u64 snapshot_seq, std::string* value,
                Status* status) const {
  if (!filter_.empty() && !bloom_may_contain(filter_, user_key)) {
    ++bloom_negatives;
    return false;
  }

  std::string probe;
  append_internal_key(&probe, user_key, snapshot_seq, ValueType::kValue);
  usize b = block_lower_bound(probe);
  if (b >= index_.size()) return false;
  ++block_reads;

  std::string_view block = block_data(b);
  const char* p = block.data();
  const char* limit = p + block.size();
  while (p < limit) {
    u32 klen = 0, vlen = 0;
    if (!get_varint32(&p, limit, &klen) || !get_varint32(&p, limit, &vlen)) break;
    if (static_cast<usize>(limit - p) < klen + vlen) break;
    std::string_view ikey(p, klen);
    std::string_view val(p + klen, vlen);
    p += klen + vlen;

    if (compare_internal_keys(ikey, probe) < 0) continue;  // too fresh / earlier key
    ParsedInternalKey parsed;
    if (!parse_internal_key(ikey, &parsed)) break;
    if (parsed.user_key != user_key) return false;  // passed the key entirely
    if (parsed.type == ValueType::kDeletion) {
      *status = Status::not_found("deleted");
      return true;
    }
    *status = Status::ok();
    value->assign(val);
    return true;
  }
  return false;
}

// -------------------------------------------------------------- iterator --

class TableIterator : public Iterator {
 public:
  explicit TableIterator(const Table* table) : table_(table) {}

  bool valid() const override { return block_ < table_->index_.size(); }

  void seek_to_first() override {
    block_ = 0;
    pos_ = 0;
    load_block();
    parse_current();
  }

  void seek(std::string_view target) override {
    block_ = table_->block_lower_bound(target);
    pos_ = 0;
    load_block();
    parse_current();
    while (valid() && compare_internal_keys(key_, target) < 0) next();
  }

  void next() override {
    pos_ = next_pos_;
    if (pos_ >= span_.size()) {
      ++block_;
      pos_ = 0;
      load_block();
    }
    parse_current();
  }

  std::string_view key() const override { return key_; }
  std::string_view value() const override { return value_; }

 private:
  void load_block() {
    span_ = block_ < table_->index_.size() ? table_->block_data(block_)
                                           : std::string_view{};
  }

  void parse_current() {
    while (block_ < table_->index_.size()) {
      if (pos_ < span_.size()) {
        const char* p = span_.data() + pos_;
        const char* limit = span_.data() + span_.size();
        u32 klen = 0, vlen = 0;
        if (get_varint32(&p, limit, &klen) && get_varint32(&p, limit, &vlen) &&
            static_cast<usize>(limit - p) >= klen + vlen) {
          key_ = std::string_view(p, klen);
          value_ = std::string_view(p + klen, vlen);
          next_pos_ = static_cast<usize>(p + klen + vlen - span_.data());
          return;
        }
      }
      // Block exhausted (or malformed tail): move on.
      ++block_;
      pos_ = 0;
      load_block();
    }
  }

  const Table* table_;
  usize block_ = ~usize{0};
  usize pos_ = 0, next_pos_ = 0;
  std::string_view span_, key_, value_;
};

std::unique_ptr<Iterator> Table::new_iterator() const {
  return std::make_unique<TableIterator>(this);
}

}  // namespace teeperf::kvs
