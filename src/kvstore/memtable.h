// In-memory write buffer: an arena-backed skiplist over internal keys.
// Entries are encoded LevelDB-style into the arena:
//   varint32 internal_key_len | internal_key | varint32 value_len | value
// and the skiplist key is the pointer to that record.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "kvstore/arena.h"
#include "kvstore/dbformat.h"
#include "kvstore/skiplist.h"
#include "kvstore/status.h"

namespace teeperf::kvs {

class MemTable {
 public:
  struct KeyComparator {
    // Keys are length-prefixed records in the arena.
    int operator()(const char* a, const char* b) const;
  };

  MemTable() : table_(KeyComparator{}, &arena_) {}

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Single writer (the DB serializes writes); concurrent readers are safe.
  void add(u64 seq, ValueType type, std::string_view key, std::string_view value);

  // Looks up the freshest version of `key` visible at `snapshot_seq`.
  // Returns true if an entry was found; *status is not_found() when that
  // entry is a tombstone, ok() otherwise (value filled in).
  bool get(std::string_view key, u64 snapshot_seq, std::string* value,
           Status* status) const;

  usize approximate_memory_usage() const { return arena_.memory_usage(); }
  u64 entry_count() const { return entries_; }

  // Iterator over (internal_key, value) pairs in internal-key order.
  class Iterator {
   public:
    explicit Iterator(const MemTable* mt) : it_(&mt->table_) {}
    bool valid() const { return it_.valid(); }
    void seek_to_first() { it_.seek_to_first(); }
    void seek(std::string_view internal_key);
    void next() { it_.next(); }
    std::string_view internal_key() const;
    std::string_view value() const;

   private:
    std::string seek_buf_;
    SkipList<const char*, KeyComparator>::Iterator it_;
  };

 private:
  friend class Iterator;

  Arena arena_;
  SkipList<const char*, KeyComparator> table_;
  u64 entries_ = 0;
};

}  // namespace teeperf::kvs
