#include "kvstore/write_batch.h"

#include "kvstore/coding.h"

namespace teeperf::kvs {

namespace {
constexpr usize kHeader = 12;  // fixed64 seq + fixed32 count
}

void WriteBatch::clear() {
  rep_.clear();
  rep_.resize(kHeader, '\0');
}

void WriteBatch::put(std::string_view key, std::string_view value) {
  rep_.push_back(static_cast<char>(ValueType::kValue));
  put_length_prefixed(&rep_, key);
  put_length_prefixed(&rep_, value);
  u32 c = get_fixed32(rep_.data() + 8) + 1;
  for (int i = 0; i < 4; ++i) rep_[8 + i] = static_cast<char>(c >> (i * 8));
}

void WriteBatch::remove(std::string_view key) {
  rep_.push_back(static_cast<char>(ValueType::kDeletion));
  put_length_prefixed(&rep_, key);
  u32 c = get_fixed32(rep_.data() + 8) + 1;
  for (int i = 0; i < 4; ++i) rep_[8 + i] = static_cast<char>(c >> (i * 8));
}

u32 WriteBatch::count() const { return get_fixed32(rep_.data() + 8); }

u64 WriteBatch::base_sequence() const { return get_fixed64(rep_.data()); }

void WriteBatch::set_base_sequence(u64 seq) {
  for (int i = 0; i < 8; ++i) rep_[i] = static_cast<char>(seq >> (i * 8));
}

Status WriteBatch::iterate(const Handler& fn) const {
  if (rep_.size() < kHeader) return Status::corruption("batch too small");
  const char* p = rep_.data() + kHeader;
  const char* limit = rep_.data() + rep_.size();
  u64 seq = base_sequence();
  u32 expected = count();
  u32 seen = 0;
  while (p < limit) {
    ValueType type = static_cast<ValueType>(*p++);
    std::string_view key, value;
    if (!get_length_prefixed(&p, limit, &key)) return Status::corruption("batch key");
    if (type == ValueType::kValue) {
      if (!get_length_prefixed(&p, limit, &value)) {
        return Status::corruption("batch value");
      }
    } else if (type != ValueType::kDeletion) {
      return Status::corruption("batch record type");
    }
    fn(seq++, type, key, value);
    ++seen;
  }
  if (seen != expected) return Status::corruption("batch count mismatch");
  return Status::ok();
}

WriteBatch WriteBatch::from_payload(std::string payload) {
  WriteBatch b;
  if (payload.size() >= kHeader) b.rep_ = std::move(payload);
  return b;
}

}  // namespace teeperf::kvs
