// Result type for kvstore operations, following the LevelDB/RocksDB idiom:
// cheap to pass by value, carries a code plus a context message.
#pragma once

#include <string>
#include <string_view>

namespace teeperf::kvs {

class Status {
 public:
  Status() = default;  // OK

  static Status ok() { return Status(); }
  static Status not_found(std::string_view msg = "") { return Status(Code::kNotFound, msg); }
  static Status corruption(std::string_view msg = "") { return Status(Code::kCorruption, msg); }
  static Status io_error(std::string_view msg = "") { return Status(Code::kIoError, msg); }
  static Status invalid(std::string_view msg = "") { return Status(Code::kInvalid, msg); }

  bool is_ok() const { return code_ == Code::kOk; }
  bool is_not_found() const { return code_ == Code::kNotFound; }
  bool is_corruption() const { return code_ == Code::kCorruption; }
  bool is_io_error() const { return code_ == Code::kIoError; }

  std::string to_string() const {
    switch (code_) {
      case Code::kOk: return "OK";
      case Code::kNotFound: return "NotFound: " + msg_;
      case Code::kCorruption: return "Corruption: " + msg_;
      case Code::kIoError: return "IOError: " + msg_;
      case Code::kInvalid: return "Invalid: " + msg_;
    }
    return "?";
  }

 private:
  enum class Code { kOk, kNotFound, kCorruption, kIoError, kInvalid };
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

}  // namespace teeperf::kvs
