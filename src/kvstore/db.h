// The LSM key-value store (the RocksDB stand-in, see DESIGN.md).
//
// Write path: WriteBatch → WAL append → memtable insert; when the memtable
// exceeds write_buffer_size it is flushed to an L0 SSTable and the WAL is
// reset. When L0 accumulates l0_compaction_trigger files (or a level
// exceeds its byte budget), a whole-level merge compacts it into the next
// level, dropping shadowed versions and — at the bottom level — tombstones.
// Compactions run synchronously on the triggering write, which keeps the
// system deterministic for profiling experiments.
//
// Read path: memtable → immutable memtable → L0 (newest first) → L1+.
//
// Thread safety: all public methods are safe to call concurrently. Writes
// serialize on a mutex; reads take it only to snapshot shared_ptrs to the
// memtables and current Version, then proceed lock-free.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "kvstore/iterator.h"
#include "kvstore/memtable.h"
#include "kvstore/options.h"
#include "kvstore/version.h"
#include "kvstore/wal.h"
#include "kvstore/write_batch.h"

namespace teeperf::kvs {

class DB {
 public:
  static Status open(const Options& options, const std::string& path,
                     std::unique_ptr<DB>* db);
  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status put(const WriteOptions& wopts, std::string_view key, std::string_view value);
  Status remove(const WriteOptions& wopts, std::string_view key);
  Status write(const WriteOptions& wopts, WriteBatch* batch);

  Status get(const ReadOptions& ropts, std::string_view key, std::string* value);

  // Batched point lookups against one consistent snapshot: all keys are
  // resolved at the same sequence number even if writers race. Returns one
  // status per key, values filled where found.
  std::vector<Status> multi_get(const ReadOptions& ropts,
                                const std::vector<std::string_view>& keys,
                                std::vector<std::string>* values);

  // User-level iterator over live keys (tombstones and shadowed versions
  // resolved) as of the current sequence.
  std::unique_ptr<Iterator> new_iterator(const ReadOptions& ropts);

  // Forces a memtable flush and full compaction down to the bottom level.
  Status compact_all();

  struct DBStats {
    u64 memtable_flushes = 0;
    u64 compactions = 0;
    u64 wal_records = 0;
    std::vector<usize> files_per_level;
    u64 sequence = 0;
  };
  DBStats stats() const;

  // Human-readable state summary: per-level file counts and bytes, the
  // RocksDB `GetProperty("rocksdb.stats")` equivalent.
  std::string debug_string() const;

  u64 sequence() const;

 private:
  DB(const Options& options, std::string path);

  Status recover();
  Status write_locked(WriteBatch* batch) ;
  // Flushes mem_ to a new L0 file; requires mu_ held.
  Status flush_memtable_locked();
  // Runs compactions until every level is within budget; requires mu_ held.
  Status maybe_compact_locked();
  Status compact_level_locked(usize level);
  Status install_version_locked(std::shared_ptr<Version> v);
  u64 level_byte_budget(usize level) const;

  Options options_;
  std::string path_;

  mutable std::mutex mu_;
  std::shared_ptr<MemTable> mem_;
  std::shared_ptr<Version> current_;
  WalWriter wal_;
  u64 sequence_ = 0;
  u64 next_file_number_ = 1;
  DBStats stats_;
};

}  // namespace teeperf::kvs
