#include "kvstore/arena.h"

namespace teeperf::kvs {

char* Arena::allocate_fallback(usize bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocations get their own block so the current block's tail
    // isn't wasted.
    auto block = std::make_unique<char[]>(bytes);
    char* r = block.get();
    blocks_.push_back(std::move(block));
    total_ += bytes;
    return r;
  }
  auto block = std::make_unique<char[]>(kBlockSize);
  ptr_ = block.get();
  remaining_ = kBlockSize;
  blocks_.push_back(std::move(block));
  total_ += kBlockSize;
  char* r = ptr_;
  ptr_ += bytes;
  remaining_ -= bytes;
  return r;
}

}  // namespace teeperf::kvs
