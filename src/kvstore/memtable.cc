#include "kvstore/memtable.h"

#include <cassert>

#include "kvstore/coding.h"

namespace teeperf::kvs {
namespace {

// Decodes the internal key of an encoded memtable record.
std::string_view record_internal_key(const char* rec) {
  const char* p = rec;
  const char* limit = rec + 10;  // varint32 is at most 5 bytes; generous
  u32 klen = 0;
  get_varint32(&p, limit, &klen);
  return std::string_view(p, klen);
}

std::string_view record_value(const char* rec) {
  const char* p = rec;
  const char* limit = rec + (1u << 30);
  u32 klen = 0;
  get_varint32(&p, limit, &klen);
  p += klen;
  u32 vlen = 0;
  get_varint32(&p, limit, &vlen);
  return std::string_view(p, vlen);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  return compare_internal_keys(record_internal_key(a), record_internal_key(b));
}

void MemTable::add(u64 seq, ValueType type, std::string_view key,
                   std::string_view value) {
  // Record = klen | internal_key | vlen | value, all in one arena chunk.
  std::string ikey;
  ikey.reserve(key.size() + 8);
  append_internal_key(&ikey, key, seq, type);

  std::string header;
  put_varint32(&header, static_cast<u32>(ikey.size()));
  usize total = header.size() + ikey.size();
  std::string vheader;
  put_varint32(&vheader, static_cast<u32>(value.size()));
  total += vheader.size() + value.size();

  char* buf = arena_.allocate(total);
  char* p = buf;
  std::memcpy(p, header.data(), header.size());
  p += header.size();
  std::memcpy(p, ikey.data(), ikey.size());
  p += ikey.size();
  std::memcpy(p, vheader.data(), vheader.size());
  p += vheader.size();
  if (!value.empty()) std::memcpy(p, value.data(), value.size());

  table_.insert(buf);
  ++entries_;
}

bool MemTable::get(std::string_view key, u64 snapshot_seq, std::string* value,
                   Status* status) const {
  // Seek to the first entry for `key` at or below snapshot_seq (internal
  // ordering puts higher sequences first).
  std::string probe_rec;
  std::string ikey;
  append_internal_key(&ikey, key, snapshot_seq, ValueType::kValue);
  put_varint32(&probe_rec, static_cast<u32>(ikey.size()));
  probe_rec += ikey;

  SkipList<const char*, KeyComparator>::Iterator it(&table_);
  it.seek(probe_rec.data());
  if (!it.valid()) return false;

  std::string_view found = record_internal_key(it.key());
  ParsedInternalKey parsed;
  if (!parse_internal_key(found, &parsed)) return false;
  if (parsed.user_key != key) return false;

  if (parsed.type == ValueType::kDeletion) {
    *status = Status::not_found("deleted");
    return true;
  }
  *status = Status::ok();
  value->assign(record_value(it.key()));
  return true;
}

void MemTable::Iterator::seek(std::string_view internal_key) {
  seek_buf_.clear();
  put_varint32(&seek_buf_, static_cast<u32>(internal_key.size()));
  seek_buf_.append(internal_key.data(), internal_key.size());
  it_.seek(seek_buf_.data());
}

std::string_view MemTable::Iterator::internal_key() const {
  return record_internal_key(it_.key());
}

std::string_view MemTable::Iterator::value() const { return record_value(it_.key()); }

}  // namespace teeperf::kvs
