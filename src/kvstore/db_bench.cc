#include "kvstore/db_bench.h"

#include <thread>

#include "common/spin.h"
#include "core/scope.h"
#include "tee/enclave.h"
#include "tee/sysapi.h"

namespace teeperf::kvs::bench {
namespace {

// Mirrors rocksdb::test::RandomString: `len` random printable bytes.
void random_string(Xorshift64& rng, usize len, std::string* dst) {
  TEEPERF_SCOPE("kvs::test::RandomString");
  for (usize i = 0; i < len; ++i) {
    dst->push_back(static_cast<char>(' ' + rng.next_below(95)));
  }
}

// Mirrors rocksdb::test::CompressibleString: generate a short random piece
// and repeat it until `len` bytes, giving the requested compression ratio.
void compressible_string(Xorshift64& rng, double compressed_fraction, usize len,
                         std::string* dst) {
  TEEPERF_SCOPE("kvs::test::CompressibleString");
  usize raw = static_cast<usize>(static_cast<double>(len) * compressed_fraction);
  if (raw < 1) raw = 1;
  std::string piece;
  random_string(rng, raw, &piece);
  // Appends exactly `len` bytes by repeating the random piece.
  usize target = dst->size() + len;
  while (dst->size() < target) {
    dst->append(piece.data(), std::min(piece.size(), target - dst->size()));
  }
}

}  // namespace

RandomGenerator::RandomGenerator(u64 seed, usize buffer_size,
                                 double compression_ratio) {
  TEEPERF_SCOPE("kvs::RandomGenerator::RandomGenerator");
  Xorshift64 rng(seed);
  data_.reserve(buffer_size);
  // Built in ~100-value pieces, like the original (which loops
  // CompressibleString until 1 MiB is accumulated).
  while (data_.size() < buffer_size) {
    compressible_string(rng, compression_ratio, 100, &data_);
  }
  // Construction writes the buffer into enclave memory: pay the MEE.
  if (tee::Enclave::inside()) {
    tee::Enclave::current()->charge_mee(data_.size(), /*random=*/false);
  }
}

std::string_view RandomGenerator::generate(usize len) {
  TEEPERF_SCOPE("kvs::RandomGenerator::Generate");
  if (len > data_.size()) len = data_.size();
  if (pos_ + len > data_.size()) pos_ = 0;
  std::string_view out(data_.data() + pos_, len);
  pos_ += len;
  return out;
}

u64 Stats::now_ns() {
  TEEPERF_SCOPE("kvs::Stats::Now");
  return tee::sys::clock_gettime_ns();
}

void Stats::start() {
  TEEPERF_SCOPE("kvs::Stats::Start");
  op_start_ns_ = now_ns();
}

void Stats::finished_single_op() {
  TEEPERF_SCOPE("kvs::Stats::FinishedSingleOp");
  u64 end = now_ns();
  latency_.add(end >= op_start_ns_ ? end - op_start_ns_ : 0);
  ++ops_;
}

std::string make_key(u64 index, usize key_size) {
  std::string digits = std::to_string(index);
  std::string key(key_size > digits.size() ? key_size - digits.size() : 0, '0');
  key += digits;
  return key;
}

namespace {

BenchResult finish_result(const Stats& stats, u64 t0, u64 t1, u64 reads, u64 writes,
                          u64 found) {
  BenchResult r;
  r.ops = reads + writes;
  r.reads = reads;
  r.writes = writes;
  r.found = found;
  r.seconds = static_cast<double>(t1 - t0) / 1e9;
  r.ops_per_sec = r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0;
  r.latency = stats.latency();
  return r;
}

}  // namespace

BenchResult run_fill_seq(DB& db, const BenchConfig& config) {
  TEEPERF_SCOPE("kvs::Benchmark::FillSeq");
  RandomGenerator gen(config.seed, config.generator_buffer);
  Stats stats;
  WriteOptions wopts;
  u64 t0 = monotonic_ns();
  for (usize i = 0; i < config.num_ops; ++i) {
    if (config.per_op_stats) stats.start();
    db.put(wopts, make_key(i, config.key_size), gen.generate(config.value_size));
    if (config.per_op_stats) stats.finished_single_op();
  }
  return finish_result(stats, t0, monotonic_ns(), 0, config.num_ops, 0);
}

BenchResult run_fill_random(DB& db, const BenchConfig& config) {
  TEEPERF_SCOPE("kvs::Benchmark::FillRandom");
  RandomGenerator gen(config.seed, config.generator_buffer);
  Xorshift64 rng(config.seed ^ 0x1234567);
  Stats stats;
  WriteOptions wopts;
  u64 t0 = monotonic_ns();
  for (usize i = 0; i < config.num_ops; ++i) {
    if (config.per_op_stats) stats.start();
    u64 k = rng.next_below(config.key_space);
    db.put(wopts, make_key(k, config.key_size), gen.generate(config.value_size));
    if (config.per_op_stats) stats.finished_single_op();
  }
  return finish_result(stats, t0, monotonic_ns(), 0, config.num_ops, 0);
}

BenchResult run_read_random(DB& db, const BenchConfig& config) {
  TEEPERF_SCOPE("kvs::Benchmark::ReadRandom");
  Xorshift64 rng(config.seed ^ 0x7654321);
  Stats stats;
  ReadOptions ropts;
  std::string value;
  u64 found = 0;
  u64 t0 = monotonic_ns();
  for (usize i = 0; i < config.num_ops; ++i) {
    if (config.per_op_stats) stats.start();
    u64 k = rng.next_below(config.key_space);
    if (db.get(ropts, make_key(k, config.key_size), &value).is_ok()) ++found;
    if (config.per_op_stats) stats.finished_single_op();
  }
  return finish_result(stats, t0, monotonic_ns(), config.num_ops, 0, found);
}

BenchResult run_read_random_write_random(DB& db, const BenchConfig& config) {
  TEEPERF_SCOPE("kvs::Benchmark::ReadRandomWriteRandom");
  RandomGenerator gen(config.seed, config.generator_buffer);
  Xorshift64 rng(config.seed ^ 0xfeedface);
  Stats stats;
  ReadOptions ropts;
  WriteOptions wopts;
  std::string value;
  u64 reads = 0, writes = 0, found = 0;
  u64 t0 = monotonic_ns();
  for (usize i = 0; i < config.num_ops; ++i) {
    if (config.per_op_stats) stats.start();
    u64 k = rng.next_below(config.key_space);
    if (rng.next_double() < config.read_fraction) {
      ++reads;
      if (db.get(ropts, make_key(k, config.key_size), &value).is_ok()) ++found;
    } else {
      ++writes;
      db.put(wopts, make_key(k, config.key_size), gen.generate(config.value_size));
    }
    if (config.per_op_stats) stats.finished_single_op();
  }
  return finish_result(stats, t0, monotonic_ns(), reads, writes, found);
}

}  // namespace teeperf::kvs::bench

namespace teeperf::kvs::bench {

BenchResult run_read_seq(DB& db, const BenchConfig& config) {
  TEEPERF_SCOPE("kvs::Benchmark::ReadSeq");
  Stats stats;
  u64 visited = 0;
  u64 t0 = monotonic_ns();
  auto it = db.new_iterator({});
  for (it->seek_to_first(); it->valid(); it->next()) {
    if (config.per_op_stats) stats.start();
    ++visited;
    // Touch the value so the scan is not optimized into pure iteration.
    if (!it->value().empty() && it->value()[0] == '\xff') ++visited;
    if (config.per_op_stats) stats.finished_single_op();
  }
  return finish_result(stats, t0, monotonic_ns(), visited, 0, visited);
}

BenchResult run_overwrite(DB& db, const BenchConfig& config) {
  TEEPERF_SCOPE("kvs::Benchmark::Overwrite");
  RandomGenerator gen(config.seed ^ 0xaa, config.generator_buffer);
  Xorshift64 rng(config.seed ^ 0x77);
  Stats stats;
  WriteOptions wopts;
  u64 t0 = monotonic_ns();
  for (usize i = 0; i < config.num_ops; ++i) {
    if (config.per_op_stats) stats.start();
    u64 k = rng.next_below(config.key_space);
    db.put(wopts, make_key(k, config.key_size), gen.generate(config.value_size));
    if (config.per_op_stats) stats.finished_single_op();
  }
  return finish_result(stats, t0, monotonic_ns(), 0, config.num_ops, 0);
}

BenchResult run_delete_random(DB& db, const BenchConfig& config) {
  TEEPERF_SCOPE("kvs::Benchmark::DeleteRandom");
  Xorshift64 rng(config.seed ^ 0xdd);
  Stats stats;
  WriteOptions wopts;
  ReadOptions ropts;
  std::string value;
  u64 found = 0;
  u64 t0 = monotonic_ns();
  for (usize i = 0; i < config.num_ops; ++i) {
    if (config.per_op_stats) stats.start();
    std::string key = make_key(rng.next_below(config.key_space), config.key_size);
    if (db.get(ropts, key, &value).is_ok()) ++found;
    db.remove(wopts, key);
    if (config.per_op_stats) stats.finished_single_op();
  }
  return finish_result(stats, t0, monotonic_ns(), 0, config.num_ops, found);
}

BenchResult run_read_missing(DB& db, const BenchConfig& config) {
  TEEPERF_SCOPE("kvs::Benchmark::ReadMissing");
  Xorshift64 rng(config.seed ^ 0x99);
  Stats stats;
  ReadOptions ropts;
  std::string value;
  u64 found = 0;
  u64 t0 = monotonic_ns();
  for (usize i = 0; i < config.num_ops; ++i) {
    if (config.per_op_stats) stats.start();
    // "miss." prefix never collides with make_key's zero-padded digits.
    std::string key = "miss." + std::to_string(rng.next());
    if (db.get(ropts, key, &value).is_ok()) ++found;
    if (config.per_op_stats) stats.finished_single_op();
  }
  return finish_result(stats, t0, monotonic_ns(), config.num_ops, 0, found);
}

}  // namespace teeperf::kvs::bench

namespace teeperf::kvs::bench {

BenchResult run_read_random_write_random_mt(DB& db, const BenchConfig& config) {
  TEEPERF_SCOPE("kvs::Benchmark::ReadRandomWriteRandomMT");
  usize workers = config.threads ? config.threads : 1;
  usize per_worker = config.num_ops / workers;

  struct WorkerOut {
    u64 reads = 0, writes = 0, found = 0;
    LatencyHistogram latency;
  };
  std::vector<WorkerOut> outs(workers);

  auto body = [&](usize w) {
    TEEPERF_SCOPE("kvs::Benchmark::ThreadBody");
    RandomGenerator gen(config.seed ^ w, config.generator_buffer);
    Xorshift64 rng(config.seed ^ (w * 2654435761ull) ^ 0xfeedface);
    Stats stats;
    ReadOptions ropts;
    WriteOptions wopts;
    std::string value;
    WorkerOut& out = outs[w];
    for (usize i = 0; i < per_worker; ++i) {
      if (config.per_op_stats) stats.start();
      u64 k = rng.next_below(config.key_space);
      if (rng.next_double() < config.read_fraction) {
        ++out.reads;
        if (db.get(ropts, make_key(k, config.key_size), &value).is_ok()) {
          ++out.found;
        }
      } else {
        ++out.writes;
        db.put(wopts, make_key(k, config.key_size),
               gen.generate(config.value_size));
      }
      if (config.per_op_stats) stats.finished_single_op();
    }
    out.latency = stats.latency();
  };

  u64 t0 = monotonic_ns();
  std::vector<std::thread> threads;
  for (usize w = 1; w < workers; ++w) threads.emplace_back(body, w);
  body(0);
  for (auto& t : threads) t.join();
  u64 t1 = monotonic_ns();

  BenchResult r;
  for (const WorkerOut& out : outs) {
    r.reads += out.reads;
    r.writes += out.writes;
    r.found += out.found;
    r.latency.merge(out.latency);
  }
  r.ops = r.reads + r.writes;
  r.seconds = static_cast<double>(t1 - t0) / 1e9;
  r.ops_per_sec = r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0;
  return r;
}

}  // namespace teeperf::kvs::bench
