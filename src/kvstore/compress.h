// Block compression for SSTables: a small LZ77-class codec (greedy
// hash-table matcher, byte-aligned tokens) standing in for the Snappy/LZ4
// family RocksDB uses. Self-contained — the point is exercising the
// compressed-block code path, not competing on ratio.
//
// Token stream:
//   0x00 <varint len> <len literal bytes>
//   0x01 <varint offset> <varint len>     copy `len` bytes from `offset`
//                                         back in the output (len ≥ 4,
//                                         overlap allowed, RLE-style)
#pragma once

#include <string>
#include <string_view>

#include "common/types.h"

namespace teeperf::kvs {

// Compresses `input`. Always succeeds; incompressible data grows by a few
// bytes of framing (callers should keep the raw block in that case).
std::string lz_compress(std::string_view input);

// Decompresses into *out. Returns false on any malformed token (truncated
// stream, bad offset); *out contents are unspecified on failure.
bool lz_decompress(std::string_view compressed, std::string* out);

}  // namespace teeperf::kvs
