#include "kvstore/wal.h"

#include "common/crc32c.h"
#include "common/fileutil.h"
#include "faultsim/fault.h"
#include "faultsim/fault_points.h"
#include "kvstore/coding.h"

namespace teeperf::kvs {

Status WalWriter::open(const std::string& path, bool truncate) {
  close();
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (!file_) return Status::io_error("open " + path);
  bytes_ = 0;
  return Status::ok();
}

Status WalWriter::append(std::string_view record) {
  if (!file_) return Status::io_error("wal not open");
  std::string frame;
  frame.reserve(8 + record.size());
  put_fixed32(&frame, crc32c_mask(crc32c(record.data(), record.size())));
  put_fixed32(&frame, static_cast<u32>(record.size()));
  frame.append(record.data(), record.size());
  // Fault point: the process dying mid-fwrite — only a prefix of the frame
  // reaches the file, which recovery must treat as an unacknowledged tear.
  if (fault::fires(fault_points::kWalAppendTorn)) {
    usize cut = 1 + static_cast<usize>(
                        fault::value_below(fault_points::kWalAppendTorn, frame.size() - 1));
    std::fwrite(frame.data(), 1, cut, file_);
    std::fflush(file_);
    return Status::io_error("wal write torn (fault injection)");
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::io_error("wal write");
  }
  bytes_ += frame.size();
  return Status::ok();
}

Status WalWriter::flush() {
  if (file_ && std::fflush(file_) != 0) return Status::io_error("wal flush");
  return Status::ok();
}

void WalWriter::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WalReader::read_all(const std::string& path, std::vector<std::string>* records,
                           bool* truncated, bool strict) {
  records->clear();
  if (truncated) *truncated = false;
  auto data = read_file(path);
  if (!data) return Status::ok();  // no WAL yet: empty DB

  // Fault point: untrusted host storage flipping a bit under the reader;
  // the CRC framing must reject the record, never crash.
  if (!data->empty() && fault::fires(fault_points::kWalReadFlip)) {
    u64 bit = fault::value_below(fault_points::kWalReadFlip, data->size() * 8);
    (*data)[bit / 8] = static_cast<char>((*data)[bit / 8] ^ (1u << (bit % 8)));
  }

  const char* p = data->data();
  const char* limit = p + data->size();
  while (p + 8 <= limit) {
    u32 masked = get_fixed32(p);
    u32 len = get_fixed32(p + 4);
    if (p + 8 + len > limit) {
      if (truncated) *truncated = true;
      return strict ? Status::corruption("torn wal record") : Status::ok();
    }
    u32 crc = crc32c(p + 8, len);
    if (crc32c_unmask(masked) != crc) {
      if (truncated) *truncated = true;
      return strict ? Status::corruption("wal crc mismatch") : Status::ok();
    }
    records->emplace_back(p + 8, len);
    p += 8 + len;
  }
  if (p != limit && truncated) *truncated = true;
  return Status::ok();
}

}  // namespace teeperf::kvs
