// Write-ahead log: crash durability for the memtable. Records are framed as
//   fixed32 masked_crc | fixed32 length | payload
// and the reader stops cleanly at the first torn or corrupt frame, which is
// exactly the recovery contract an LSM store needs (everything before the
// tear was acknowledged; everything after never was).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "kvstore/status.h"

namespace teeperf::kvs {

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status open(const std::string& path, bool truncate);
  Status append(std::string_view record);
  Status flush();
  void close();
  bool is_open() const { return file_ != nullptr; }
  u64 bytes_written() const { return bytes_; }

 private:
  std::FILE* file_ = nullptr;
  u64 bytes_ = 0;
};

class WalReader {
 public:
  // Reads all intact records from `path`. A missing file yields zero
  // records and OK (a fresh DB). Corruption after N good records yields
  // those N records and OK with *truncated set (recovery semantics);
  // `strict` instead reports the corruption.
  static Status read_all(const std::string& path, std::vector<std::string>* records,
                         bool* truncated = nullptr, bool strict = false);
};

}  // namespace teeperf::kvs
