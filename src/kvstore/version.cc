#include "kvstore/version.h"

#include <cstdio>

#include "common/fileutil.h"
#include "common/stringutil.h"

namespace teeperf::kvs {

std::string table_file_name(const std::string& db_dir, u64 number) {
  return str_format("%s/%06llu.sst", db_dir.c_str(),
                    static_cast<unsigned long long>(number));
}

std::string wal_file_name(const std::string& db_dir) { return db_dir + "/wal.log"; }

Status write_manifest(const std::string& db_dir, const ManifestData& data) {
  std::string out = str_format("next_file %llu\nseq %llu\n",
                               static_cast<unsigned long long>(data.next_file_number),
                               static_cast<unsigned long long>(data.last_sequence));
  for (const auto& [level, number] : data.files) {
    out += str_format("file %zu %llu\n", level,
                      static_cast<unsigned long long>(number));
  }
  std::string tmp = db_dir + "/MANIFEST.tmp";
  std::string final_path = db_dir + "/MANIFEST";
  if (!write_file(tmp, out)) return Status::io_error("write manifest");
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::io_error("rename manifest");
  }
  return Status::ok();
}

Status read_manifest(const std::string& db_dir, ManifestData* data, bool* exists) {
  auto raw = read_file(db_dir + "/MANIFEST");
  *exists = raw.has_value();
  if (!raw) return Status::ok();
  data->files.clear();
  for (std::string_view line : split(*raw, '\n')) {
    if (line.empty()) continue;
    unsigned long long a = 0, b = 0;
    usize level = 0;
    std::string l(line);
    if (std::sscanf(l.c_str(), "next_file %llu", &a) == 1) {
      data->next_file_number = a;
    } else if (std::sscanf(l.c_str(), "seq %llu", &a) == 1) {
      data->last_sequence = a;
    } else if (std::sscanf(l.c_str(), "file %zu %llu", &level, &b) == 2) {
      data->files.emplace_back(level, b);
    } else {
      return Status::corruption("manifest line: " + l);
    }
  }
  return Status::ok();
}

}  // namespace teeperf::kvs
