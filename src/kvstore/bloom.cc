#include "kvstore/bloom.h"

#include <algorithm>

namespace teeperf::kvs {

u64 BloomFilterBuilder::hash_key(std::string_view key) {
  // FNV-1a, then a finalizer mix so sequential keys spread well.
  u64 h = 1469598103934665603ull;
  for (char c : key) h = (h ^ static_cast<u8>(c)) * 1099511628211ull;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

std::string BloomFilterBuilder::finish() const {
  // k = bits_per_key * ln2, clamped to [1, 30] (LevelDB's rule).
  usize k = static_cast<usize>(static_cast<double>(bits_per_key_) * 0.69);
  k = std::clamp<usize>(k, 1, 30);

  usize bits = std::max<usize>(hashes_.size() * bits_per_key_, 64);
  usize bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string out(bytes, '\0');
  for (u64 h : hashes_) {
    u64 delta = (h >> 33) | (h << 31);  // double hashing increment
    for (usize i = 0; i < k; ++i) {
      u64 bit = h % bits;
      out[bit / 8] = static_cast<char>(out[bit / 8] | (1 << (bit % 8)));
      h += delta;
    }
  }
  out.push_back(static_cast<char>(k));
  return out;
}

bool bloom_may_contain(std::string_view filter, std::string_view key) {
  if (filter.size() < 2) return true;
  usize k = static_cast<u8>(filter.back());
  if (k == 0 || k > 30) return true;  // unrecognized encoding
  usize bits = (filter.size() - 1) * 8;

  u64 h = BloomFilterBuilder::hash_key(key);
  u64 delta = (h >> 33) | (h << 31);
  for (usize i = 0; i < k; ++i) {
    u64 bit = h % bits;
    if (!(static_cast<u8>(filter[bit / 8]) & (1 << (bit % 8)))) return false;
    h += delta;
  }
  return true;
}

}  // namespace teeperf::kvs
