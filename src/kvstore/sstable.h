// Sorted String Table: the immutable on-disk format.
//
// Layout:
//   [data block + crc]*  — 1 prefix byte (0 raw, 1 LZ-compressed) followed
//                          by records: varint klen | varint vlen | key | value
//   [filter block + crc] — bloom filter over user keys
//   [index block + crc]  — per data block: varint klen | last_internal_key |
//                          fixed64 offset | fixed64 length
//   footer (48 bytes)    — fixed64 index_off, index_len, filter_off,
//                          filter_len, entry_count, magic
// All block CRCs are verified once at open; reads after that trust memory.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "kvstore/iterator.h"
#include "kvstore/options.h"
#include "kvstore/status.h"

namespace teeperf::kvs {

inline constexpr u64 kTableMagic = 0x73737461626c6531ull;  // "sstable1"

class TableBuilder {
 public:
  explicit TableBuilder(const Options& options) : options_(options) {}

  // Keys must arrive in strictly ascending internal-key order.
  void add(std::string_view internal_key, std::string_view value);

  // Finalizes the table and writes it to `path`.
  Status finish(const std::string& path);

  u64 entry_count() const { return entries_; }
  u64 file_size() const { return buf_.size(); }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }

 private:
  void flush_block();

  Options options_;
  std::string buf_;        // the file image being built
  std::string block_;      // current data block
  std::string index_;      // index block under construction
  std::string last_key_;   // last key added to the current block
  std::string smallest_, largest_;
  std::vector<u64> key_hash_pending_;  // user keys for the bloom filter
  std::string filter_keys_;            // flattened user keys (len-prefixed)
  u64 entries_ = 0;
};

class Table {
 public:
  // Opens and fully validates an SSTable file (footer, magic, block CRCs).
  static Status open(const std::string& path, const Options& options,
                     std::unique_ptr<Table>* table);

  // Point lookup with memtable-equivalent semantics: returns true if an
  // entry for `user_key` (visible at `snapshot_seq`) exists; *status is
  // not_found() for tombstones, ok() with *value filled otherwise.
  bool get(std::string_view user_key, u64 snapshot_seq, std::string* value,
           Status* status) const;

  std::unique_ptr<Iterator> new_iterator() const;

  u64 entry_count() const { return entry_count_; }
  u64 file_size() const { return data_.size(); }
  std::string_view smallest() const { return smallest_; }  // internal key
  std::string_view largest() const { return largest_; }    // internal key
  const std::string& path() const { return path_; }

  // Lookup statistics (filter effectiveness tests / bench reporting).
  mutable u64 bloom_negatives = 0;
  mutable u64 block_reads = 0;
  // Number of data blocks stored compressed in this table.
  usize compressed_blocks = 0;

 private:
  friend class TableIterator;
  Table() = default;

  struct IndexEntry {
    std::string last_key;  // internal key of the block's last record
    u64 offset = 0;
    u64 length = 0;
  };

  // Index position of the first block whose last key is >= target.
  usize block_lower_bound(std::string_view internal_key) const;
  std::string_view block_data(usize block_index) const;

  std::string path_;
  std::string data_;    // entire file
  std::string filter_;  // bloom filter contents
  // Decompressed payloads for compressed blocks; empty strings for raw
  // blocks (those are served as views into data_).
  std::vector<std::string> owned_blocks_;
  std::vector<IndexEntry> index_;
  u64 entry_count_ = 0;
  std::string smallest_, largest_;
};

}  // namespace teeperf::kvs
