// Speicher-lite: the secure-storage layer the paper was developed alongside
// ("We have developed the tool in the context of our Speicher project, a
// secure LSM-based storage system", §V). This module implements Speicher's
// core mechanisms on top of the WAL:
//
//   - authenticated records — each WAL record carries a SipHash-2-4 MAC
//     chained over (counter ‖ payload ‖ previous MAC), so bit-flips,
//     record reordering and record substitution are all detected;
//   - a *trusted monotonic counter* for rollback protection — an attacker
//     who restores an old (validly MAC'd) WAL is caught because the file's
//     last counter is behind the trusted counter's stable value;
//   - Speicher's key performance idea, the *asynchronous* trusted counter:
//     SGX monotonic counters take tens to hundreds of ms per increment, so
//     synchronous per-record increments destroy throughput. The async mode
//     defers stabilization to an explicit flush (the trust boundary moves
//     to "acknowledged after flush"), amortizing the hardware cost.
//
// The counter's hardware cost is charged through the TEE simulator like
// every other cost in this repo, so TEE-Perf profiles show exactly where
// the secure-storage time goes (bench/abl_secure_wal).
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "kvstore/status.h"
#include "kvstore/wal.h"

namespace teeperf::kvs::secure {

using MacKey = std::array<u8, 16>;

// SipHash-2-4 (Aumasson–Bernstein), the real construction — 64-bit keyed
// MAC suitable for in-enclave integrity tags.
u64 siphash24(const MacKey& key, std::string_view data);

// A trusted monotonic counter. Real SGX counters persist through the
// platform service enclave and cost ~O(100 ms) per increment; the cost is
// modeled via the enclave simulator (charged only when running inside).
class TrustedCounter {
 public:
  enum class Mode {
    kSync,   // every increment stabilizes immediately (slow, simple)
    kAsync,  // increments are cheap; stabilization happens at flush()
  };

  // `path` persists the stable value (the platform-service stand-in).
  TrustedCounter(std::string path, Mode mode, u64 increment_cost_ns = 60'000'000);

  // Bumps the counter and returns the new value. kSync: charges the
  // hardware cost and persists. kAsync: in-memory bump only.
  u64 increment();

  // Stabilizes all outstanding increments (one hardware-cost charge).
  Status flush();

  u64 value() const { return value_; }
  u64 stable_value() const { return stable_; }
  u64 hardware_increments() const { return hardware_increments_; }

  // Reloads the stable value from disk (recovery).
  Status recover();

 private:
  Status persist();

  std::string path_;
  Mode mode_;
  u64 increment_cost_ns_;
  u64 value_ = 0;
  u64 stable_ = 0;
  u64 hardware_increments_ = 0;
};

// Authenticated, rollback-protected WAL. Record layout (inside the plain
// WAL's CRC framing): fixed64 counter | fixed64 mac | payload.
class SecureWalWriter {
 public:
  SecureWalWriter(const MacKey& key, TrustedCounter* counter);

  Status open(const std::string& path, bool truncate);
  // MACs and appends `payload`; bumps the trusted counter.
  Status append(std::string_view payload);
  // Flushes buffered writes and stabilizes the trusted counter — the
  // durability + freshness point in async mode.
  Status flush();
  void close() { wal_.close(); }

 private:
  MacKey key_;
  TrustedCounter* counter_;
  WalWriter wal_;
  u64 prev_mac_ = 0;
};

struct SecureReadResult {
  std::vector<std::string> records;  // verified payloads, in order
  bool tampered = false;    // MAC or chain failure (payload/order modified)
  bool rolled_back = false; // file ends before the trusted counter's stable value
  u64 last_counter = 0;
};

// Verifies the whole file against `key` and the trusted counter's stable
// value. Verification stops at the first failure; everything before it is
// returned (the recoverable prefix), with the failure classified.
SecureReadResult secure_wal_read(const std::string& path, const MacKey& key,
                                 const TrustedCounter& counter);

// --- sealed SSTables -----------------------------------------------------------
// SSTables are immutable, so Speicher seals each file once: a sidecar
// ("<path>.mac") holds SipHash(file contents ‖ epoch) plus the trusted
// counter epoch at sealing time. Verification catches modification (MAC)
// and replay of stale files (epoch behind the counter's stable value at
// the time the manifest referenced it).

struct SealVerdict {
  bool ok = false;
  bool tampered = false;
  bool stale = false;  // sealed under an older epoch than required
  u64 epoch = 0;
};

// Seals `path`: writes "<path>.mac". The epoch recorded is the counter's
// current value (bump + flush the counter around sealing, as Speicher's
// manifest updates do).
Status secure_table_seal(const std::string& path, const MacKey& key,
                         const TrustedCounter& counter);

// Verifies `path` against its sidecar. `min_epoch` is the epoch the
// manifest says this table was sealed at (0 = accept any).
SealVerdict secure_table_verify(const std::string& path, const MacKey& key,
                                u64 min_epoch = 0);

}  // namespace teeperf::kvs::secure
