#include "kvstore/iterator.h"

#include "kvstore/dbformat.h"

namespace teeperf::kvs {
namespace {

class MergingIterator : public Iterator {
 public:
  explicit MergingIterator(std::vector<std::unique_ptr<Iterator>> children)
      : children_(std::move(children)) {}

  bool valid() const override { return current_ >= 0; }

  void seek_to_first() override {
    for (auto& c : children_) c->seek_to_first();
    find_smallest();
  }

  void seek(std::string_view target) override {
    for (auto& c : children_) c->seek(target);
    find_smallest();
  }

  void next() override {
    children_[static_cast<usize>(current_)]->next();
    find_smallest();
  }

  std::string_view key() const override {
    return children_[static_cast<usize>(current_)]->key();
  }
  std::string_view value() const override {
    return children_[static_cast<usize>(current_)]->value();
  }

 private:
  void find_smallest() {
    current_ = -1;
    for (usize i = 0; i < children_.size(); ++i) {
      if (!children_[i]->valid()) continue;
      if (current_ < 0 ||
          compare_internal_keys(children_[i]->key(),
                                children_[static_cast<usize>(current_)]->key()) < 0) {
        current_ = static_cast<int>(i);
      }
    }
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  int current_ = -1;
};

}  // namespace

std::unique_ptr<Iterator> new_merging_iterator(
    std::vector<std::unique_ptr<Iterator>> children) {
  return std::make_unique<MergingIterator>(std::move(children));
}

}  // namespace teeperf::kvs
