// Internal key format (LevelDB conventions): a user key followed by an
// 8-byte trailer packing (sequence << 8 | type). Ordering is user key
// ascending, then sequence *descending*, so the freshest version of a key
// is encountered first during scans.
#pragma once

#include <cstring>
#include <string>
#include <string_view>

#include "common/types.h"
#include "kvstore/coding.h"

namespace teeperf::kvs {

enum class ValueType : u8 {
  kDeletion = 0,
  kValue = 1,
};

inline constexpr u64 kMaxSequence = (1ull << 56) - 1;

inline u64 pack_tag(u64 seq, ValueType type) {
  return (seq << 8) | static_cast<u64>(type);
}

inline u64 tag_sequence(u64 tag) { return tag >> 8; }
inline ValueType tag_type(u64 tag) { return static_cast<ValueType>(tag & 0xff); }

inline void append_internal_key(std::string* dst, std::string_view user_key,
                                u64 seq, ValueType type) {
  dst->append(user_key.data(), user_key.size());
  put_fixed64(dst, pack_tag(seq, type));
}

struct ParsedInternalKey {
  std::string_view user_key;
  u64 sequence = 0;
  ValueType type = ValueType::kValue;
};

inline bool parse_internal_key(std::string_view ikey, ParsedInternalKey* out) {
  if (ikey.size() < 8) return false;
  u64 tag = get_fixed64(ikey.data() + ikey.size() - 8);
  out->user_key = ikey.substr(0, ikey.size() - 8);
  out->sequence = tag_sequence(tag);
  out->type = tag_type(tag);
  return true;
}

inline std::string_view extract_user_key(std::string_view ikey) {
  return ikey.substr(0, ikey.size() - 8);
}

// Three-way comparison of internal keys: user key ascending, tag descending.
inline int compare_internal_keys(std::string_view a, std::string_view b) {
  std::string_view ua = extract_user_key(a), ub = extract_user_key(b);
  int r = ua.compare(ub);
  if (r != 0) return r;
  u64 ta = get_fixed64(a.data() + a.size() - 8);
  u64 tb = get_fixed64(b.data() + b.size() - 8);
  if (ta > tb) return -1;  // higher sequence sorts first
  if (ta < tb) return 1;
  return 0;
}

}  // namespace teeperf::kvs
