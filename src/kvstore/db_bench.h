// db_bench-style workload driver (the RocksDB benchmark the paper profiles
// in Figure 5). The per-operation structure mirrors the original tool:
//
//   Benchmark::ReadRandomWriteRandom
//     ├─ Stats::Start            → Stats::Now()   (clock read)
//     ├─ DB::Get / DB::Put       (the actual storage work)
//     ├─ RandomGenerator::Generate (value bytes for writes)
//     └─ Stats::FinishedSingleOp → Stats::Now()   (clock read)
//
// Stats::Now() reads the clock through the TEE system interface, so inside
// an enclave it pays the trapped-syscall cost — which is precisely why the
// paper's Figure 5 flame graph shows Stats::Now and RandomGenerator
// dominating db_bench when run under SGX.
#pragma once

#include <string>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"
#include "kvstore/db.h"

namespace teeperf::kvs::bench {

// Mirrors rocksdb::RandomGenerator: pre-builds a buffer of compressible
// random data at construction (test::CompressibleString over
// test::RandomString pieces) and hands out value-sized slices.
class RandomGenerator {
 public:
  explicit RandomGenerator(u64 seed, usize buffer_size = 1u << 20,
                           double compression_ratio = 0.5);

  std::string_view generate(usize len);

 private:
  std::string data_;
  usize pos_ = 0;
};

// Mirrors rocksdb::Stats: per-thread op accounting, with Now() as the
// clock-read choke point.
class Stats {
 public:
  // Reads the current time through tee::sys (trapped inside an enclave).
  static u64 now_ns();

  void start();               // marks op start (calls now_ns)
  void finished_single_op();  // marks op end (calls now_ns), records latency

  u64 ops() const { return ops_; }
  const LatencyHistogram& latency() const { return latency_; }

 private:
  u64 op_start_ns_ = 0;
  u64 ops_ = 0;
  LatencyHistogram latency_;
};

struct BenchConfig {
  usize num_ops = 50'000;
  usize key_space = 50'000;
  usize key_size = 16;
  usize value_size = 100;
  double read_fraction = 0.8;  // the paper's 80% read mix
  u64 seed = 42;
  // Size of the RandomGenerator's pre-built buffer (per run).
  usize generator_buffer = 1u << 20;
  // Per-op timing via Stats (the Figure 5 behaviour). Disable to measure
  // pure storage throughput.
  bool per_op_stats = true;
  // Worker threads for the multithreaded driver entry points (db_bench -t).
  usize threads = 1;
};

struct BenchResult {
  u64 ops = 0;
  u64 reads = 0;
  u64 writes = 0;
  u64 found = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  LatencyHistogram latency;
};

// Sequential fill: keys 0..num_ops-1 (prepares read workloads).
BenchResult run_fill_seq(DB& db, const BenchConfig& config);
// Random fill over the key space.
BenchResult run_fill_random(DB& db, const BenchConfig& config);
// 100% random point reads.
BenchResult run_read_random(DB& db, const BenchConfig& config);
// The paper's mix: random reads and writes, read_fraction reads.
BenchResult run_read_random_write_random(DB& db, const BenchConfig& config);
// Full forward scan through a fresh iterator (db_bench readseq); ops = keys
// visited, found = same.
BenchResult run_read_seq(DB& db, const BenchConfig& config);
// Overwrite existing random keys (db_bench overwrite).
BenchResult run_overwrite(DB& db, const BenchConfig& config);
// Delete random keys (db_bench deleterandom); found counts keys that
// existed before deletion.
BenchResult run_delete_random(DB& db, const BenchConfig& config);
// 100% reads of keys guaranteed absent — the bloom-filter fast path.
BenchResult run_read_missing(DB& db, const BenchConfig& config);
// The mixed workload across config.threads concurrent workers (num_ops is
// split among them); per-thread Stats are merged. This is the configuration
// that exercises the profiler's multithreading support (§II-C) on the
// storage substrate.
BenchResult run_read_random_write_random_mt(DB& db, const BenchConfig& config);

// db_bench key formatting: zero-padded decimal, key_size wide.
std::string make_key(u64 index, usize key_size);

}  // namespace teeperf::kvs::bench
