// Atomic multi-operation writes. The batch's serialized form doubles as the
// WAL record payload: fixed64 starting-sequence | fixed32 count | records,
// where each record is: u8 type | varint key [| varint value].
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "common/types.h"
#include "kvstore/dbformat.h"
#include "kvstore/status.h"

namespace teeperf::kvs {

class WriteBatch {
 public:
  WriteBatch() { clear(); }

  void put(std::string_view key, std::string_view value);
  void remove(std::string_view key);
  void clear();

  u32 count() const;
  const std::string& payload() const { return rep_; }

  // Replays every operation into `fn(type, key, value)` with ascending
  // per-record sequence numbers starting at base_sequence().
  using Handler = std::function<void(u64 seq, ValueType type, std::string_view key,
                                     std::string_view value)>;
  Status iterate(const Handler& fn) const;

  u64 base_sequence() const;
  void set_base_sequence(u64 seq);

  // Adopts a serialized payload (WAL recovery path). Validation happens in
  // iterate().
  static WriteBatch from_payload(std::string payload);

 private:
  std::string rep_;
};

}  // namespace teeperf::kvs
