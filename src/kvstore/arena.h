// Bump allocator backing the memtable skiplist: nodes live until the whole
// memtable dies, so per-node free is unnecessary and allocation is a pointer
// bump. Matches LevelDB's Arena semantics (including the alignment rule).
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"

namespace teeperf::kvs {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* allocate(usize bytes);
  char* allocate_aligned(usize bytes, usize align = alignof(void*));

  usize memory_usage() const { return total_; }

 private:
  static constexpr usize kBlockSize = 64 * 1024;

  char* allocate_fallback(usize bytes);

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* ptr_ = nullptr;
  usize remaining_ = 0;
  usize total_ = 0;
};

inline char* Arena::allocate(usize bytes) {
  if (bytes <= remaining_) {
    char* r = ptr_;
    ptr_ += bytes;
    remaining_ -= bytes;
    return r;
  }
  return allocate_fallback(bytes);
}

inline char* Arena::allocate_aligned(usize bytes, usize align) {
  usize mis = reinterpret_cast<usize>(ptr_) & (align - 1);
  usize pad = mis == 0 ? 0 : align - mis;
  if (bytes + pad <= remaining_) {
    char* r = ptr_ + pad;
    ptr_ += bytes + pad;
    remaining_ -= bytes + pad;
    return r;
  }
  // Fallback blocks are max_align-aligned by construction.
  return allocate_fallback(bytes);
}

}  // namespace teeperf::kvs
