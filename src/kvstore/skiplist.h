// Concurrent-read skiplist (LevelDB design): one writer at a time (the DB
// write path is serialized), readers proceed without locks thanks to
// release-stores on next pointers and acquire-loads in readers. Keys are
// arena-allocated char sequences owned by the memtable.
#pragma once

#include <atomic>
#include <cassert>

#include "common/rng.h"
#include "common/types.h"
#include "kvstore/arena.h"

namespace teeperf::kvs {

// Comparator: int compare(const char* a, const char* b) — three-way.
template <typename Key, typename Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp), arena_(arena), rng_(0xdeadbeef) {
    head_ = new_node(Key{}, kMaxHeight);
    for (int i = 0; i < kMaxHeight; ++i) head_->set_next(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Requires: key is not already present (the memtable guarantees this by
  // tagging every entry with a unique sequence number).
  void insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = find_greater_or_equal(key, prev);
    assert(x == nullptr || compare_(key, x->key) != 0);

    int height = random_height();
    if (height > height_.load(std::memory_order_relaxed)) {
      for (int i = height_.load(std::memory_order_relaxed); i < height; ++i) {
        prev[i] = head_;
      }
      height_.store(height, std::memory_order_relaxed);
    }

    x = new_node(key, height);
    for (int i = 0; i < height; ++i) {
      // No synchronization needed for prev links: only one writer.
      x->set_next_relaxed(i, prev[i]->next_relaxed(i));
      prev[i]->set_next(i, x);  // release: publishes the node
    }
  }

  bool contains(const Key& key) const {
    const Node* x = find_greater_or_equal(key, nullptr);
    return x != nullptr && compare_(key, x->key) == 0;
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list) {}

    bool valid() const { return node_ != nullptr; }
    const Key& key() const { return node_->key; }
    void next() { node_ = node_->next(0); }
    void seek(const Key& target) { node_ = list_->find_greater_or_equal(target, nullptr); }
    void seek_to_first() { node_ = list_->head_->next(0); }
    void seek_to_last() { node_ = list_->find_last(); }
    void prev() {
      // No back links: search for the last node before the current key.
      node_ = list_->find_less_than(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_ = nullptr;
  };

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    explicit Node(const Key& k) : key(k) {}
    Key const key;

    Node* next(int level) const {
      return next_[level].load(std::memory_order_acquire);
    }
    void set_next(int level, Node* n) {
      next_[level].store(n, std::memory_order_release);
    }
    Node* next_relaxed(int level) const {
      return next_[level].load(std::memory_order_relaxed);
    }
    void set_next_relaxed(int level, Node* n) {
      next_[level].store(n, std::memory_order_relaxed);
    }

    // Over-allocated: next_[height] pointers follow the node in the arena.
    std::atomic<Node*> next_[1];
  };

  Node* new_node(const Key& key, int height) {
    char* mem = arena_->allocate_aligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * static_cast<usize>(height - 1));
    return new (mem) Node(key);
  }

  int random_height() {
    int h = 1;
    while (h < kMaxHeight && rng_.next_below(4) == 0) ++h;  // p = 1/4
    return h;
  }

  Node* find_greater_or_equal(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = height_.load(std::memory_order_relaxed) - 1;
    while (true) {
      Node* next = x->next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Node* find_less_than(const Key& key) const {
    Node* x = head_;
    int level = height_.load(std::memory_order_relaxed) - 1;
    while (true) {
      Node* next = x->next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else if (level == 0) {
        return x;
      } else {
        --level;
      }
    }
  }

  Node* find_last() const {
    Node* x = head_;
    int level = height_.load(std::memory_order_relaxed) - 1;
    while (true) {
      Node* next = x->next(level);
      if (next != nullptr) {
        x = next;
      } else if (level == 0) {
        return x == head_ ? nullptr : x;
      } else {
        --level;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* head_;
  std::atomic<int> height_{1};
  Xorshift64 rng_;
};

}  // namespace teeperf::kvs
