#include "kvstore/secure.h"

#include <cstring>

#include "common/fileutil.h"
#include "core/scope.h"
#include "kvstore/coding.h"
#include "tee/enclave.h"

namespace teeperf::kvs::secure {

// ----------------------------------------------------------------- siphash --

namespace {

inline u64 rotl(u64 x, int b) { return (x << b) | (x >> (64 - b)); }

inline void sipround(u64& v0, u64& v1, u64& v2, u64& v3) {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

inline u64 read_le64(const u8* p) {
  u64 v;
  std::memcpy(&v, p, 8);
  return v;  // x86 is little-endian; documented assumption of this repo
}

}  // namespace

u64 siphash24(const MacKey& key, std::string_view data) {
  u64 k0 = read_le64(key.data());
  u64 k1 = read_le64(key.data() + 8);
  u64 v0 = 0x736f6d6570736575ull ^ k0;
  u64 v1 = 0x646f72616e646f6dull ^ k1;
  u64 v2 = 0x6c7967656e657261ull ^ k0;
  u64 v3 = 0x7465646279746573ull ^ k1;

  const u8* in = reinterpret_cast<const u8*>(data.data());
  usize len = data.size();
  const u8* end = in + (len & ~usize{7});
  for (; in != end; in += 8) {
    u64 m = read_le64(in);
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  u64 b = static_cast<u64>(len) << 56;
  switch (len & 7) {
    case 7: b |= static_cast<u64>(in[6]) << 48; [[fallthrough]];
    case 6: b |= static_cast<u64>(in[5]) << 40; [[fallthrough]];
    case 5: b |= static_cast<u64>(in[4]) << 32; [[fallthrough]];
    case 4: b |= static_cast<u64>(in[3]) << 24; [[fallthrough]];
    case 3: b |= static_cast<u64>(in[2]) << 16; [[fallthrough]];
    case 2: b |= static_cast<u64>(in[1]) << 8; [[fallthrough]];
    case 1: b |= static_cast<u64>(in[0]); break;
    case 0: break;
  }
  v3 ^= b;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= b;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

// ---------------------------------------------------------- trusted counter --

TrustedCounter::TrustedCounter(std::string path, Mode mode, u64 increment_cost_ns)
    : path_(std::move(path)), mode_(mode), increment_cost_ns_(increment_cost_ns) {
  recover();
}

u64 TrustedCounter::increment() {
  TEEPERF_SCOPE("secure::TrustedCounter::increment");
  ++value_;
  if (mode_ == Mode::kSync) {
    // The real hardware counter write: the Speicher paper's motivation is
    // that this costs ~O(100 ms) on SGX platform-service counters.
    if (tee::Enclave::inside()) {
      tee::Enclave::current()->charge(increment_cost_ns_);
    }
    ++hardware_increments_;
    persist();
    stable_ = value_;
  }
  return value_;
}

Status TrustedCounter::flush() {
  TEEPERF_SCOPE("secure::TrustedCounter::flush");
  if (stable_ == value_) return Status::ok();
  if (tee::Enclave::inside()) {
    tee::Enclave::current()->charge(increment_cost_ns_);
  }
  ++hardware_increments_;
  Status s = persist();
  if (s.is_ok()) stable_ = value_;
  return s;
}

Status TrustedCounter::persist() {
  std::string data;
  put_fixed64(&data, value_);
  if (!write_file(path_, data)) return Status::io_error("counter persist");
  return Status::ok();
}

Status TrustedCounter::recover() {
  auto data = read_file(path_);
  if (!data) {
    value_ = stable_ = 0;
    return Status::ok();  // fresh counter
  }
  if (data->size() < 8) return Status::corruption("counter file");
  value_ = stable_ = get_fixed64(data->data());
  return Status::ok();
}

// --------------------------------------------------------------- secure WAL --

SecureWalWriter::SecureWalWriter(const MacKey& key, TrustedCounter* counter)
    : key_(key), counter_(counter) {}

Status SecureWalWriter::open(const std::string& path, bool truncate) {
  prev_mac_ = 0;
  return wal_.open(path, truncate);
}

Status SecureWalWriter::append(std::string_view payload) {
  TEEPERF_SCOPE("secure::SecureWal::Append");
  u64 counter = counter_->increment();

  // MAC over counter ‖ payload ‖ previous MAC: chaining makes reordering
  // and substitution detectable, the counter makes replay detectable.
  std::string mac_input;
  put_fixed64(&mac_input, counter);
  mac_input.append(payload.data(), payload.size());
  put_fixed64(&mac_input, prev_mac_);
  u64 mac;
  {
    TEEPERF_SCOPE("secure::SipHash");
    mac = siphash24(key_, mac_input);
  }

  std::string record;
  put_fixed64(&record, counter);
  put_fixed64(&record, mac);
  record.append(payload.data(), payload.size());
  Status s = wal_.append(record);
  if (s.is_ok()) prev_mac_ = mac;
  return s;
}

Status SecureWalWriter::flush() {
  Status s = wal_.flush();
  if (!s.is_ok()) return s;
  return counter_->flush();
}

SecureReadResult secure_wal_read(const std::string& path, const MacKey& key,
                                 const TrustedCounter& counter) {
  SecureReadResult result;
  std::vector<std::string> raw;
  if (!WalReader::read_all(path, &raw).is_ok()) {
    result.tampered = true;
    return result;
  }

  u64 prev_mac = 0;
  u64 prev_counter = 0;
  for (const std::string& rec : raw) {
    if (rec.size() < 16) {
      result.tampered = true;
      break;
    }
    u64 rec_counter = get_fixed64(rec.data());
    u64 rec_mac = get_fixed64(rec.data() + 8);
    std::string_view payload(rec.data() + 16, rec.size() - 16);

    std::string mac_input;
    put_fixed64(&mac_input, rec_counter);
    mac_input.append(payload.data(), payload.size());
    put_fixed64(&mac_input, prev_mac);
    if (siphash24(key, mac_input) != rec_mac || rec_counter <= prev_counter) {
      result.tampered = true;
      break;
    }
    result.records.emplace_back(payload);
    result.last_counter = rec_counter;
    prev_mac = rec_mac;
    prev_counter = rec_counter;
  }

  // Freshness: a valid prefix that ends before the stable counter value
  // means someone rolled the file back to an earlier (signed) state.
  if (!result.tampered && result.last_counter < counter.stable_value()) {
    result.rolled_back = true;
  }
  return result;
}

Status secure_table_seal(const std::string& path, const MacKey& key,
                         const TrustedCounter& counter) {
  TEEPERF_SCOPE("secure::SealTable");
  auto data = read_file(path);
  if (!data) return Status::io_error("seal read " + path);
  u64 epoch = counter.value();
  std::string mac_input = *data;
  put_fixed64(&mac_input, epoch);
  u64 mac = siphash24(key, mac_input);
  std::string sidecar;
  put_fixed64(&sidecar, epoch);
  put_fixed64(&sidecar, mac);
  if (!write_file(path + ".mac", sidecar)) {
    return Status::io_error("seal write " + path);
  }
  return Status::ok();
}

SealVerdict secure_table_verify(const std::string& path, const MacKey& key,
                                u64 min_epoch) {
  TEEPERF_SCOPE("secure::VerifyTable");
  SealVerdict verdict;
  auto data = read_file(path);
  auto sidecar = read_file(path + ".mac");
  if (!data || !sidecar || sidecar->size() < 16) {
    verdict.tampered = true;
    return verdict;
  }
  verdict.epoch = get_fixed64(sidecar->data());
  u64 stored_mac = get_fixed64(sidecar->data() + 8);
  std::string mac_input = *data;
  put_fixed64(&mac_input, verdict.epoch);
  if (siphash24(key, mac_input) != stored_mac) {
    verdict.tampered = true;
    return verdict;
  }
  if (verdict.epoch < min_epoch) {
    verdict.stale = true;
    return verdict;
  }
  verdict.ok = true;
  return verdict;
}

}  // namespace teeperf::kvs::secure
