// Iterator interface over (internal_key, value) pairs, plus the k-way
// merging iterator the read path and compaction are built on.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

namespace teeperf::kvs {

class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual bool valid() const = 0;
  virtual void seek_to_first() = 0;
  // Positions at the first entry with internal key >= target.
  virtual void seek(std::string_view internal_key) = 0;
  virtual void next() = 0;

  // Valid only while valid() is true and until the next move.
  virtual std::string_view key() const = 0;  // internal key
  virtual std::string_view value() const = 0;
};

// Merges children in internal-key order. Ties (same internal key, which
// cannot happen across well-formed sources) resolve to the earlier child,
// so callers should order children newest-first.
std::unique_ptr<Iterator> new_merging_iterator(
    std::vector<std::unique_ptr<Iterator>> children);

}  // namespace teeperf::kvs
