// Tuning knobs for the LSM store, mirroring the RocksDB options the
// db_bench workloads exercise.
#pragma once

#include "common/types.h"

namespace teeperf::kvs {

struct Options {
  // Memtable size that triggers a flush to an L0 SSTable.
  usize write_buffer_size = 4u << 20;

  // Number of L0 files that triggers an L0→L1 compaction.
  usize l0_compaction_trigger = 4;

  // Target size of one SSTable produced by compaction.
  usize target_file_size = 2u << 20;

  // Level-1 total-bytes limit; each deeper level is 10× larger.
  usize max_bytes_for_level_base = 16u << 20;

  // Levels beyond L0 (L0 + max_levels in total).
  usize max_levels = 4;

  // Bloom filter bits per key in SSTables (0 disables filters).
  usize bloom_bits_per_key = 10;

  // Approximate data-block size inside SSTables.
  usize block_size = 4096;

  // Compress data blocks with the built-in LZ codec (kept raw when a block
  // does not shrink). Filter and index blocks stay uncompressed.
  bool compress_blocks = false;

  // fsync-like durability is out of scope; WAL writes are buffered + flushed.
  bool wal_enabled = true;

  // Create the directory if missing; fail if a DB already exists there.
  bool create_if_missing = true;
  bool error_if_exists = false;
};

struct ReadOptions {};

struct WriteOptions {};

}  // namespace teeperf::kvs
