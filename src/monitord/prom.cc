#include "monitord/prom.h"

#include <algorithm>
#include <cstring>

#include "common/histogram.h"
#include "common/stringutil.h"
#include "obs/metric_names.h"

namespace teeperf::monitord {

namespace {

bool prom_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// Matches "<head><digits><tail>" and extracts the digits — the shape of
// the dynamic per-shard / per-thread obs names.
bool split_dynamic(std::string_view name, std::string_view head,
                   std::string_view tail, std::string* index) {
  if (!starts_with(name, head) || !ends_with(name, tail)) return false;
  if (name.size() <= head.size() + tail.size()) return false;
  std::string_view mid =
      name.substr(head.size(), name.size() - head.size() - tail.size());
  for (char c : mid) {
    if (c < '0' || c > '9') return false;
  }
  *index = std::string(mid);
  return true;
}

}  // namespace

std::string PromWriter::sanitize_name(std::string_view obs_name) {
  std::string out = "teeperf_";
  for (char c : obs_name) {
    out += prom_name_char(c) ? c : '_';
  }
  return out;
}

std::string PromWriter::escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PromWriter::render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    if (out.size() > 1) out += ",";
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += "\"";
  }
  out += "}";
  return out;
}

PromWriter::Family& PromWriter::family_slot(std::string_view obs_name,
                                            std::string_view help,
                                            const char* type, bool is_hist) {
  std::string key = sanitize_name(obs_name);
  for (auto& [name, fam] : families_) {
    if (name == key && fam.is_hist == is_hist) return fam;
  }
  families_.emplace_back(std::move(key), Family{});
  Family& fam = families_.back().second;
  fam.help = std::string(help);
  fam.type = type;
  fam.is_hist = is_hist;
  return fam;
}

void PromWriter::family(std::string_view obs_name, obs::MetricType type,
                        const Labels& labels, u64 value) {
  const char* t = type == obs::MetricType::kCounter ? "counter" : "gauge";
  Family& fam = family_slot(obs_name, obs_name, t, /*is_hist=*/false);
  fam.scalars.push_back(Scalar{render_labels(labels), value});
}

void PromWriter::family_histogram(std::string_view obs_name,
                                  const Labels& labels,
                                  const obs::HistogramSlot& slot) {
  Family& fam = family_slot(obs_name, obs_name, "histogram", /*is_hist=*/true);
  Hist h;
  std::string rendered = render_labels(labels);
  if (!rendered.empty()) {
    h.labels_inner = rendered.substr(1, rendered.size() - 2);
  }
  h.count = slot.count.load(std::memory_order_relaxed);
  h.sum = slot.sum.load(std::memory_order_relaxed);
  // Cumulative upper-bound buckets; trailing empty buckets are elided (the
  // implicit +Inf bucket — rendered from `count` — closes the series).
  usize last = 0;
  u64 counts[obs::kHistBuckets];
  for (usize b = 0; b < obs::kHistBuckets; ++b) {
    counts[b] = slot.buckets[b].load(std::memory_order_relaxed);
    if (counts[b] != 0) last = b + 1;
  }
  u64 cumulative = 0;
  for (usize b = 0; b < last; ++b) {
    cumulative += counts[b];
    h.buckets.emplace_back(hist::bucket_high(b), cumulative);
  }
  fam.hists.push_back(std::move(h));
}

void PromWriter::collect(const obs::MetricsRegistry& registry,
                         const Labels& labels) {
  namespace names = obs::metric_names;
  registry.visit_scalars([&](const obs::MetricSlot& slot) {
    std::string_view name(slot.name,
                          ::strnlen(slot.name, obs::kMetricNameLen));
    u64 value = slot.value.load(std::memory_order_relaxed);
    auto type = static_cast<obs::MetricType>(slot.type);
    std::string index;
    if (split_dynamic(name, "log.shard.", ".tail", &index)) {
      Labels with = labels;
      with.emplace_back("shard", index);
      Family& fam = family_slot("log.shard.tail", "log.shard.<shard>.tail",
                                "gauge", /*is_hist=*/false);
      fam.scalars.push_back(Scalar{render_labels(with), value});
      return;
    }
    if (split_dynamic(name, "app.thread.", ".entries", &index)) {
      Labels with = labels;
      with.emplace_back("thread", index);
      Family& fam = family_slot("app.thread.entries",
                                "app.thread.<tid>.entries", "counter",
                                /*is_hist=*/false);
      fam.scalars.push_back(Scalar{render_labels(with), value});
      return;
    }
    if (starts_with(name, names::kFaultArmPrefix)) return;  // transient
    family(name, type, labels, value);
  });
  registry.visit_histograms([&](const obs::HistogramSlot& slot) {
    std::string_view name(slot.name,
                          ::strnlen(slot.name, obs::kMetricNameLen));
    family_histogram(name, labels, slot);
  });
}

std::string PromWriter::render() const {
  std::vector<const std::pair<std::string, Family>*> order;
  order.reserve(families_.size());
  for (const auto& entry : families_) order.push_back(&entry);
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    if (a->first != b->first) return a->first < b->first;
    return a->second.is_hist < b->second.is_hist;  // scalar before "_hist"
  });

  std::string out;
  for (const auto* entry : order) {
    std::string name = entry->first;
    const Family& fam = entry->second;
    if (fam.is_hist) {
      // A scalar family under the same name claims the plain metric name;
      // the histogram moves aside so the page stays a valid exposition.
      for (const auto& other : families_) {
        if (other.first == name && !other.second.is_hist) {
          name += "_hist";
          break;
        }
      }
    }
    out += "# HELP " + name + " obs metric " + fam.help + "\n";
    out += "# TYPE " + name + " " + fam.type + "\n";
    for (const Scalar& s : fam.scalars) {
      out += name + s.labels + " " + std::to_string(s.value) + "\n";
    }
    for (const Hist& h : fam.hists) {
      std::string prefix = h.labels_inner.empty() ? "" : h.labels_inner + ",";
      for (const auto& [le, cumulative] : h.buckets) {
        out += name + "_bucket{" + prefix + "le=\"" + std::to_string(le) +
               "\"} " + std::to_string(cumulative) + "\n";
      }
      out += name + "_bucket{" + prefix + "le=\"+Inf\"} " +
             std::to_string(h.count) + "\n";
      std::string suffix = h.labels_inner.empty() ? "" : "{" + h.labels_inner + "}";
      out += name + "_sum" + suffix + " " + std::to_string(h.sum) + "\n";
      out += name + "_count" + suffix + " " + std::to_string(h.count) + "\n";
    }
  }
  return out;
}

}  // namespace teeperf::monitord
