#include "monitord/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/stringutil.h"

namespace teeperf::monitord {

namespace {

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

void set_io_timeouts(int fd) {
  struct timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a scraper hanging up mid-response must not SIGPIPE the
    // daemon (the "kill the scraper mid-scrape" e2e case).
    isize n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<usize>(n));
  }
  return true;
}

// Reads until the header terminator, EOF, or the size cap.
std::string read_request(int fd) {
  std::string buf;
  char chunk[1024];
  while (buf.size() < 8192 && buf.find("\r\n\r\n") == std::string::npos) {
    isize n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buf.append(chunk, static_cast<usize>(n));
  }
  return buf;
}

}  // namespace

HttpServer::~HttpServer() { shutdown(); }

bool HttpServer::serve(const std::string& listen, std::string* error) {
  if (running_) {
    if (error) *error = "already serving";
    return false;
  }
  if (starts_with(listen, "unix:")) {
    unix_path_ = listen.substr(5);
    if (unix_path_.empty() || unix_path_.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (error) *error = "bad unix socket path";
      return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      if (error) *error = std::strerror(errno);
      return false;
    }
    ::unlink(unix_path_.c_str());  // stale socket from a previous run
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path_.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd_, 16) != 0) {
      if (error) *error = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    endpoint_ = listen;
  } else {
    std::string host = "127.0.0.1";
    std::string port_text = listen;
    if (usize colon = listen.rfind(':'); colon != std::string::npos) {
      if (colon > 0) host = listen.substr(0, colon);
      port_text = listen.substr(colon + 1);
    }
    long port = port_text.empty() ? 0 : std::atol(port_text.c_str());
    if (port < 0 || port > 65535) {
      if (error) *error = "bad port '" + port_text + "'";
      return false;
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      if (error) *error = std::strerror(errno);
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<u16>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      if (error) *error = "bad listen address '" + host + "'";
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd_, 16) != 0) {
      if (error) *error = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
    endpoint_ = host + ":" + std::to_string(port_);
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  running_ = true;
  return true;
}

void HttpServer::shutdown() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  ::close(fd_);
  fd_ = -1;
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  running_ = false;
}

void HttpServer::loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;
    int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) continue;
    set_io_timeouts(client);
    std::string request = read_request(client);

    HttpResponse resp;
    usize line_end = request.find("\r\n");
    std::string first = request.substr(0, line_end);
    auto parts = split(first, ' ');
    if (parts.size() < 2) {
      resp = HttpResponse{400, "text/plain", "bad request\n"};
    } else if (parts[0] != "GET") {
      resp = HttpResponse{405, "text/plain", "method not allowed\n"};
    } else {
      resp = handler_(std::string(parts[1]));
    }

    std::string head = str_format(
        "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        resp.status, reason_for(resp.status), resp.content_type.c_str(),
        resp.body.size());
    if (send_all(client, head)) send_all(client, resp.body);
    ::close(client);
  }
}

bool http_get(const std::string& url, int* status, std::string* body,
              std::string* error) {
  if (!starts_with(url, "http://")) {
    if (error) *error = "only http:// urls are supported";
    return false;
  }
  std::string rest = url.substr(7);
  usize slash = rest.find('/');
  std::string hostport = slash == std::string::npos ? rest : rest.substr(0, slash);
  std::string path = slash == std::string::npos ? "/" : rest.substr(slash);
  usize colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    if (error) *error = "url must name an explicit port";
    return false;
  }
  std::string host = hostport.substr(0, colon);
  long port = std::atol(hostport.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    if (error) *error = "bad port in url";
    return false;
  }

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error) *error = std::strerror(errno);
    return false;
  }
  set_io_timeouts(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<u16>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "bad host '" + host + "' (use a literal IP)";
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + hostport +
                        "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    if (error) *error = "send failed";
    ::close(fd);
    return false;
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    isize n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(chunk, static_cast<usize>(n));
  }
  ::close(fd);

  usize space = raw.find(' ');
  if (!starts_with(raw, "HTTP/") || space == std::string::npos) {
    if (error) *error = "malformed response";
    return false;
  }
  *status = std::atoi(raw.c_str() + space + 1);
  usize body_at = raw.find("\r\n\r\n");
  *body = body_at == std::string::npos ? "" : raw.substr(body_at + 4);
  return true;
}

}  // namespace teeperf::monitord
