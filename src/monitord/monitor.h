// Monitord: continuous multi-session fleet monitoring (the TEEMon shape —
// PAPERS.md — on top of this repo's obs/session subsystems).
//
// A single host daemon discovers live profiling sessions through the
// on-disk session registry (common/session_registry.h), attaches to each
// session's obs telemetry region and shm log from the untrusted host side,
// and serves:
//   - a Prometheus text exposition of every session's gauges labeled
//     {session,pid} (plus {shard}/{thread} for the dynamic names) and the
//     daemon's own health metrics, and
//   - rolling folded-stack flame-graph snapshots per session, rebuilt
//     periodically from a bounded window of the live shard tails.
//
// Bounded per-tenant memory: attachment count is capped, each flame
// rebuild copies at most flame_window_entries log entries, and only
// flame_keep folded snapshots are retained per session — a session that
// runs for a week costs the same as one that ran for a minute. Sessions
// detach on owner death or descriptor removal, and the registry GC
// reclaims descriptors/segments of crashed sessions (counted in
// monitord.sessions.gc and journaled as session_gc events).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/session_registry.h"
#include "common/shm.h"
#include "core/log_format.h"
#include "flamegraph/flamegraph.h"
#include "obs/session.h"

namespace teeperf::monitord {

struct MonitordOptions {
  std::string session_dir;       // "" → session_registry::registry_dir()
  u64 poll_interval_ms = 500;    // registry scan / attach / detach cadence
  u64 gc_interval_ms = 2000;     // stale-session GC cadence (0 = every poll)
  bool gc = true;                // reclaim stale descriptors + orphaned shm
  u32 max_sessions = 64;         // attachment cap (bounded fleet memory)
  u64 flame_interval_ms = 1000;  // min interval between flame rebuilds
  u64 flame_window_entries = 1u << 16;  // max entries copied per rebuild
  u32 flame_keep = 4;            // rolling snapshots retained per session
};

class Monitord {
 public:
  explicit Monitord(const MonitordOptions& options);
  ~Monitord();
  Monitord(const Monitord&) = delete;
  Monitord& operator=(const Monitord&) = delete;

  // Background poll loop (start is idempotent; stop joins).
  void start();
  void stop();

  // One registry scan: attach new live sessions, detach dead ones, rebuild
  // due flame snapshots, run GC when due. Public for tests and --once.
  void poll();

  // The Prometheus exposition page for the whole fleet.
  std::string scrape_metrics();

  // One JSON object per attached session (registry descriptor echo).
  std::string sessions_json() const;

  // Merged folded stacks over the session's rolling window (empty string
  // when no snapshot was built yet); nullopt for an unknown session.
  std::optional<std::string> flamegraph_folded(const std::string& session);
  // Same window rendered as a standalone SVG.
  std::optional<std::string> flamegraph_svg(const std::string& session);

  usize attached_count() const;
  const std::string& session_dir() const { return dir_; }

  // The daemon's own obs region (journal + self-metrics), always present.
  obs::SelfTelemetry& telemetry() { return *self_; }

 private:
  struct Session {
    session_registry::SessionDescriptor desc;
    std::unique_ptr<obs::SelfTelemetry> obs;  // null when session has none
    SharedMemoryRegion log_region;
    ProfileLog log;  // adopted view over log_region; valid iff log_ok
    bool log_ok = false;
    std::unordered_map<u64, std::string> symbols;
    bool symbols_loaded = false;
    std::deque<flamegraph::FoldedStacks> flames;
    u64 last_flame_ns = 0;
  };

  void attach_locked(const session_registry::SessionDescriptor& desc);
  void build_flame_locked(Session* s, u64 now_ns);
  flamegraph::FoldedStacks merged_flames_locked(const Session& s) const;
  void loop();

  MonitordOptions options_;
  std::string dir_;
  std::unique_ptr<obs::SelfTelemetry> self_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;
  u64 last_gc_ns_ = 0;

  std::thread loop_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace teeperf::monitord
