// Prometheus text-exposition writer (exposition format 0.0.4) for obs
// metrics. TEEMon (PAPERS.md) exports TEE metrics into a standard
// Prometheus scrape pipeline; this is the equivalent layer for
// teeperf_monitord: obs dotted names ("log.tail") become metric families
// ("teeperf_log_tail"), per-session samples carry {session,pid} labels,
// dynamic per-shard / per-thread names fold into one family with a
// "shard"/"thread" label, and the shm histograms render as cumulative
// `le`-bucketed Prometheus histograms.
//
// The writer accumulates samples family-by-family and renders once, so a
// family scraped from N sessions emits one HELP/TYPE block with N labeled
// samples — the grouping the exposition format requires.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace teeperf::monitord {

// One sample's label set, rendered in insertion order.
using Labels = std::vector<std::pair<std::string, std::string>>;

class PromWriter {
 public:
  // Adds one scalar sample to the family derived from `obs_name` (which
  // must be a metric_names.h constant at literal call sites — lint r4).
  // `type` must be kCounter or kGauge.
  void family(std::string_view obs_name, obs::MetricType type,
              const Labels& labels, u64 value);

  // Adds one histogram sample (cumulative log2 buckets + _sum/_count).
  void family_histogram(std::string_view obs_name, const Labels& labels,
                        const obs::HistogramSlot& slot);

  // Walks a registry snapshot, adding every live scalar and histogram with
  // `labels` attached. "log.shard.<N>.tail" and "app.thread.<T>.entries"
  // fold into per-shard / per-thread labeled families; "fault.arm.<point>"
  // gauges are transient arming requests and are skipped.
  void collect(const obs::MetricsRegistry& registry, const Labels& labels);

  // The full exposition page: families sorted by name, each with one HELP
  // line (naming the source obs metric), one TYPE line, then its samples.
  std::string render() const;

  // "log.tail" -> "teeperf_log_tail": every non-[a-zA-Z0-9_] byte becomes
  // '_' under a fixed "teeperf_" prefix. Injective over the registered
  // names (the round-trip property test pins this).
  static std::string sanitize_name(std::string_view obs_name);

  // Label-value escaping per the exposition format: backslash, double
  // quote and newline.
  static std::string escape_label_value(std::string_view v);

 private:
  struct Scalar {
    std::string labels;  // pre-rendered "{k=\"v\",...}" or ""
    u64 value = 0;
  };
  struct Hist {
    std::string labels_inner;  // pre-rendered "k=\"v\",..." without braces
    u64 count = 0;
    u64 sum = 0;
    std::vector<std::pair<u64, u64>> buckets;  // (le, cumulative), no +Inf
  };
  struct Family {
    std::string help;  // source obs name (or pattern, for folded families)
    const char* type = "gauge";
    bool is_hist = false;  // histogram families live in their own keyspace:
                           // obs allows one name as both gauge and histogram
                           // (the watchdog's counter.ns_per_tick_pico), and a
                           // colliding histogram renders as "<name>_hist"
    std::vector<Scalar> scalars;
    std::vector<Hist> hists;
  };

  Family& family_slot(std::string_view obs_name, std::string_view help,
                      const char* type, bool is_hist);
  static std::string render_labels(const Labels& labels);

  std::vector<std::pair<std::string, Family>> families_;  // sorted on render
};

}  // namespace teeperf::monitord
