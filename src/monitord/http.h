// Minimal local HTTP server + client for teeperf_monitord's scrape
// endpoint. GET-only HTTP/1.0 with Connection: close — exactly what a
// Prometheus scraper (or curl) needs, with no external dependency.
// Listens on loopback TCP ("127.0.0.1:9464", ":0" for an ephemeral port)
// or a unix-domain socket ("unix:/path/to.sock"). Requests are handled
// sequentially on the accept thread; the handler must be thread-safe with
// respect to the rest of the daemon (Monitord locks internally).
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/types.h"

namespace teeperf::monitord {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

// Receives the request path including any query string ("/metrics",
// "/flamegraph/foo?svg=1").
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

class HttpServer {
 public:
  explicit HttpServer(HttpHandler handler) : handler_(std::move(handler)) {}
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds and starts the accept thread. `listen` is "host:port", ":port",
  // a bare port, or "unix:<path>". False (with *error set) on failure.
  bool serve(const std::string& listen, std::string* error);
  void shutdown();

  // The bound TCP port (resolved for ":0"); 0 for unix sockets.
  u16 port() const { return port_; }
  // Printable address ("127.0.0.1:9464" or "unix:/path").
  const std::string& endpoint() const { return endpoint_; }

 private:
  void loop();

  HttpHandler handler_;
  int fd_ = -1;
  u16 port_ = 0;
  std::string endpoint_;
  std::string unix_path_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
};

// Blocking GET against "http://host:port/path" (loopback scrapes, and the
// CLI's --get mode so the e2e harness needs no curl). False on connect /
// protocol failure; *status is the HTTP status when true.
bool http_get(const std::string& url, int* status, std::string* body,
              std::string* error);

}  // namespace teeperf::monitord
