#include "monitord/monitor.h"

#include <unistd.h>

#include <algorithm>
#include <unordered_set>

#include "analyzer/profile.h"
#include "common/fileutil.h"
#include "common/spin.h"
#include "core/symbol_registry.h"
#include "monitord/prom.h"
#include "obs/metric_names.h"

namespace teeperf::monitord {

namespace names = obs::metric_names;

Monitord::Monitord(const MonitordOptions& options) : options_(options) {
  dir_ = options.session_dir.empty() ? session_registry::registry_dir()
                                     : options.session_dir;
  // The daemon's own region is anonymous: monitord is the scraper, not a
  // scrape target of another host agent; its self-metrics ride along on
  // /metrics instead.
  self_ = obs::SelfTelemetry::create(obs::TelemetryOptions{});
  // Pre-register the self-metric series so the very first /metrics page
  // already carries them at zero (a counter created lazily on its first
  // increment would be invisible to the scrape that triggered it).
  self_->registry().counter(names::kMonitordScrapes);
  self_->registry().counter(names::kMonitordSessionsSeen);
  self_->registry().counter(names::kMonitordSessionsGc);
  self_->registry().counter(names::kMonitordFlameBuilds);
  self_->registry().histogram(names::kMonitordScrapeLatencyUs);
}

Monitord::~Monitord() { stop(); }

void Monitord::start() {
  if (started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_release);
  loop_ = std::thread([this] { loop(); });
}

void Monitord::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  loop_.join();
  started_ = false;
}

void Monitord::loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    poll();
    for (u64 waited = 0;
         waited < options_.poll_interval_ms &&
         !stop_.load(std::memory_order_acquire);
         waited += 20) {
      usleep(20'000);
    }
  }
}

void Monitord::attach_locked(const session_registry::SessionDescriptor& desc) {
  auto s = std::make_unique<Session>();
  s->desc = desc;
  if (!desc.obs_shm.empty()) {
    s->obs = obs::SelfTelemetry::open(desc.obs_shm);
  }
  if (!desc.log_shm.empty() && s->log_region.open(desc.log_shm)) {
    s->log_ok = s->log.adopt(s->log_region.data(), s->log_region.size());
    if (!s->log_ok) s->log_region.close();
  }
  if (!s->obs && !s->log_ok) return;  // nothing attachable (yet) — retry next poll
  self_->journal().record(obs::EventType::kAttach, desc.pid, 0, desc.name);
  self_->registry().counter(names::kMonitordSessionsSeen).inc();
  sessions_[desc.name] = std::move(s);
}

void Monitord::poll() {
  u64 now = monotonic_ns();
  auto descriptors = session_registry::list_sessions(dir_);

  std::lock_guard<std::mutex> lock(mu_);

  // Detach: descriptor withdrawn, or owner died (detach-on-death — the
  // registry entry may outlive a crashed owner until GC runs).
  std::unordered_set<std::string> current;
  for (const auto& d : descriptors) current.insert(d.name);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (!current.count(it->first) ||
        !session_registry::pid_alive(it->second->desc.pid)) {
      self_->journal().record(obs::EventType::kDetach, it->second->desc.pid, 0,
                              it->first);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }

  // Attach new live sessions, up to the fleet cap.
  for (const auto& d : descriptors) {
    if (sessions_.count(d.name) || !session_registry::pid_alive(d.pid)) continue;
    if (sessions_.size() >= options_.max_sessions) break;
    attach_locked(d);
  }
  // (The attached-session gauge is emitted directly at scrape time —
  // scrape_metrics() — so it is live even between polls.)

  // Rolling flame snapshots.
  for (auto& [name, s] : sessions_) {
    if (s->log_ok &&
        now - s->last_flame_ns >= options_.flame_interval_ms * 1'000'000ull) {
      build_flame_locked(s.get(), now);
    }
  }

  // Stale-session GC: descriptors and shm segments orphaned by crashed
  // sessions (including ones this daemon never attached).
  if (options_.gc && now - last_gc_ns_ >= options_.gc_interval_ms * 1'000'000ull) {
    last_gc_ns_ = now;
    auto r = session_registry::gc_stale_sessions(dir_);
    if (r.descriptors || r.segments) {
      self_->registry()
          .counter(names::kMonitordSessionsGc)
          .add(r.descriptors + r.segments);
      self_->journal().record(obs::EventType::kSessionGc, r.descriptors,
                              r.segments);
    }
  }
}

void Monitord::build_flame_locked(Session* s, u64 now_ns) {
  s->last_flame_ns = now_ns;

  // Late symbol load: the session writes "<prefix>.sym" at child exit, so
  // early snapshots show raw addresses and later ones resolve names.
  if (!s->symbols_loaded && !s->desc.prefix.empty()) {
    if (auto sym = read_file(s->desc.prefix + ".sym")) {
      s->symbols = SymbolRegistry::parse(*sym);
      s->symbols_loaded = true;
    }
  }

  // Bounded copy of the newest window: at most flame_window_entries across
  // all shards, newest-first truncation per shard. Truncation can cut a
  // thread mid-stack; reconstruction tolerates the resulting strays.
  std::vector<LogEntry> entries;
  const ProfileLog& log = s->log;
  u64 budget = options_.flame_window_entries;
  if (log.sharded()) {
    u32 n = log.shard_count();
    u64 per = n ? budget / n : budget;
    if (per == 0) per = 1;
    std::vector<LogEntry> shard;
    for (u32 i = 0; i < n; ++i) {
      shard.clear();
      log.shard_snapshot(i, &shard);
      usize start = shard.size() > per ? shard.size() - per : 0;
      entries.insert(entries.end(), shard.begin() + static_cast<isize>(start),
                     shard.end());
    }
  } else {
    std::vector<LogEntry> ordered;
    log.snapshot_ordered(&ordered);
    usize start = ordered.size() > budget
                      ? ordered.size() - static_cast<usize>(budget)
                      : 0;
    entries.assign(ordered.begin() + static_cast<isize>(start), ordered.end());
  }

  auto profile = analyzer::Profile::from_entries(
      entries.data(), entries.size(), s->symbols);
  s->flames.push_back(profile.folded_stacks());
  while (s->flames.size() > options_.flame_keep) s->flames.pop_front();
  self_->registry().counter(names::kMonitordFlameBuilds).inc();
}

flamegraph::FoldedStacks Monitord::merged_flames_locked(
    const Session& s) const {
  std::map<std::string, u64> merged;
  for (const auto& snapshot : s.flames) {
    for (const auto& [stack, ticks] : snapshot) merged[stack] += ticks;
  }
  flamegraph::FoldedStacks out;
  out.reserve(merged.size());
  for (auto& [stack, ticks] : merged) out.emplace_back(stack, ticks);
  return out;
}

std::optional<std::string> Monitord::flamegraph_folded(
    const std::string& session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return std::nullopt;
  return flamegraph::to_folded_text(merged_flames_locked(*it->second));
}

std::optional<std::string> Monitord::flamegraph_svg(
    const std::string& session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return std::nullopt;
  flamegraph::SvgOptions svg;
  svg.title = "teeperf session " + session;
  return flamegraph::render_svg(merged_flames_locked(*it->second), svg);
}

std::string Monitord::scrape_metrics() {
  u64 t0 = monotonic_ns();
  PromWriter w;
  std::string text;
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.family(names::kMonitordSessionsAttached, obs::MetricType::kGauge, {},
             sessions_.size());
    w.collect(self_->registry(), {});
    for (const auto& [name, s] : sessions_) {
      Labels labels{{"session", name}, {"pid", std::to_string(s->desc.pid)}};
      // Synthesized liveness marker: an attached session always exports at
      // least this one series, even while its obs region is still empty
      // (metrics appear there only once the recorder attaches its watchdog).
      w.family(names::kSessionUp, obs::MetricType::kGauge, labels, 1);
      if (s->obs) {
        w.collect(s->obs->registry(), labels);
      } else if (s->log_ok) {
        // Telemetry-less session: liveness gauges straight off the log.
        w.family(names::kLogTail, obs::MetricType::kGauge, labels,
                 s->log.attempted());
        w.family(names::kLogDropped, obs::MetricType::kGauge, labels,
                 s->log.dropped());
        // Replica health likewise lives in the shm log (the directory's
        // election state is written by the session's detector thread), so
        // the fleet page carries trusted-time health even for sessions
        // whose obs region failed or was disabled.
        if (s->log.counter_replica_count() > 0) {
          const CounterReplicaDirectory* dir = s->log.replica_directory();
          w.family(names::kCounterReplicas, obs::MetricType::kGauge, labels,
                   s->log.counter_replica_count());
          w.family(names::kCounterReplicaPrimary, obs::MetricType::kGauge,
                   labels, dir->primary.load(std::memory_order_relaxed));
          w.family(names::kCounterFailover, obs::MetricType::kGauge, labels,
                   dir->failovers.load(std::memory_order_relaxed));
        }
      }
    }
    text = w.render();
  }
  u64 us = (monotonic_ns() - t0) / 1000;
  self_->registry().histogram(names::kMonitordScrapeLatencyUs).add(us);
  self_->registry().counter(names::kMonitordScrapes).inc();
  return text;
}

std::string Monitord::sessions_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, s] : sessions_) {
    out += session_registry::to_json(s->desc);
  }
  return out;
}

usize Monitord::attached_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace teeperf::monitord
