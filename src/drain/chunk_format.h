// On-disk chunk format for the streaming spill drainer (DESIGN.md §10).
//
// Each drain round persists the windows it consumed as one chunk file,
// `<prefix>.seg.NNNN`. A chunk is a CRC32C-framed compact v2 sub-log:
//
//   ChunkFrame (32 bytes, checksummed)
//   LogHeader copy           |
//   rewritten LogShard dir   | the payload — loadable with the same code
//   packed shard windows     | path as any compact dump
//
// The directory's `drained` field is repurposed on disk to carry each
// window's absolute start cursor (the shard's `drained` value when the
// window was copied). That is what lets the multi-chunk loader stitch
// chunks and the final residue into one per-shard stream — and skip the
// overlap a drainer crash between persist and cursor-advance leaves behind.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "core/log_format.h"

namespace teeperf::drain {

inline constexpr u64 kChunkMagic = 0x5450534547303031ull;  // "TPSEG001"

// Fixed-size frame ahead of the payload. `header_crc` covers the first 24
// bytes of the frame, `payload_crc` the payload; both are stored masked
// (crc32c_mask) following the LevelDB convention used by the kvstore.
struct ChunkFrame {
  u64 magic = 0;
  u32 seq = 0;
  u32 reserved = 0;  // zeroed: keeps serialized frames byte-deterministic
  u64 payload_bytes = 0;
  u32 payload_crc = 0;
  u32 header_crc = 0;
};
static_assert(sizeof(ChunkFrame) == 32);

// One shard's consumed window: `start` is the absolute cursor of
// entries.front() within that shard's stream.
struct ShardWindow {
  u64 start = 0;
  std::vector<LogEntry> entries;
};

// Serializes one drain round as a framed chunk. `session` supplies the
// immutable header fields (pid, counter_mode, ...); ring/spill/active flags
// are cleared so the payload reads as a plain bounded compact dump.
std::string serialize_chunk(const LogHeader& session,
                            const std::vector<ShardWindow>& windows, u32 seq);

// Verifies the frame and both CRCs. On success fills *seq and *payload (a
// view into `bytes`) and returns true; on failure fills *error.
bool parse_chunk(std::string_view bytes, u32* seq, std::string_view* payload,
                 std::string* error);

// "<prefix>.seg.NNNN" (zero-padded to four digits; more digits if needed).
std::string chunk_path(const std::string& prefix, u32 seq);

// Outcome of a sequential chunk scan.
enum class ChunkScan {
  kDone,     // every chunk consumed (a torn trailing chunk is tolerated:
             // the drainer died mid-write, so its window was never marked
             // drained and the same entries reappear in the residue dump)
  kCorrupt,  // a chunk failed verification but a later chunk exists on
             // disk — that sequence cannot come from the protocol
  kStopped,  // the callback returned false
};

// Visits "<prefix>.seg.NNNN" files in sequence order, reading ONE file into
// memory at a time — the bounded-memory primitive under both the in-memory
// spill loader and the streaming analyzer. `fn` receives each verified
// chunk's payload (a compact v2 sub-log; the view dies with the call) and
// returns false to stop the scan early.
ChunkScan for_each_chunk(
    const std::string& prefix,
    const std::function<bool(u32 seq, std::string_view payload)>& fn);

}  // namespace teeperf::drain
