#include "drain/drainer.h"

#include <chrono>
#include <cstring>
#include <vector>

#include "common/fileutil.h"
#include "faultsim/fault.h"
#include "faultsim/fault_points.h"

namespace teeperf::drain {

Drainer::Drainer(ProfileLog* log, DrainerOptions opts)
    : log_(log), opts_(std::move(opts)) {}

Drainer::~Drainer() { stop(); }

bool Drainer::start() {
  if (!log_ || !log_->spill()) return false;
  // Resume scan: continue the chunk sequence where the previous incarnation
  // stopped. If its last chunk is torn (died mid-write), adopt that number
  // for overwrite — the window it holds was never marked drained, so the
  // rewrite loses nothing and the loader never sees the torn file.
  seq_ = 0;
  while (file_exists(chunk_path(opts_.prefix, seq_))) ++seq_;
  if (seq_ > 0) {
    auto last = read_file(chunk_path(opts_.prefix, seq_ - 1));
    if (!last || !parse_chunk(*last, nullptr, nullptr, nullptr)) --seq_;
  }
  stop_.store(false, std::memory_order_release);
  dead_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
  return true;
}

void Drainer::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

bool Drainer::restart() {
  if (!log_ || !log_->spill()) return false;
  stop();  // joins the dead thread
  stop_.store(false, std::memory_order_release);
  dead_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
  return true;
}

bool Drainer::final_drain() {
  stop();
  if (!log_ || !log_->spill()) return false;
  for (;;) {
    bool idle = false;
    if (!round(&idle)) {
      dead_.store(true, std::memory_order_release);
      return false;
    }
    if (idle) return true;
  }
}

void Drainer::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    bool idle = false;
    if (!round(&idle)) {
      dead_.store(true, std::memory_order_release);
      return;
    }
    // Keep consuming back-to-back while there is backlog; sleep only when
    // the published window was empty.
    if (idle) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(opts_.poll_interval_us));
    }
  }
}

bool Drainer::round(bool* idle) {
  *idle = true;
  // Fault point: the drainer process/thread dying between rounds. Nothing
  // is in flight, so the only observable effect is growing lag until a
  // supervisor restarts us — the protocol must lose nothing either way.
  if (fault::fires(fault_points::kDrainDie)) return false;

  u32 nshards = log_->shard_count();
  std::vector<ShardWindow> windows(nshards);
  std::vector<u64> lens(nshards, 0);
  u64 total = 0;
  for (u32 s = 0; s < nshards; ++s) {
    const LogShard* sh = log_->shard(s);
    u64 p = sh->published.load(std::memory_order_acquire);
    u64 d = sh->drained.load(std::memory_order_acquire);
    if (p <= d) continue;
    u64 len = p - d;
    if (len > opts_.chunk_entries) len = opts_.chunk_entries;
    u64 cap = sh->capacity;
    const LogEntry* seg = log_->entries() + sh->entry_offset;
    u64 start = d % cap;
    u64 head = cap - start < len ? cap - start : len;
    windows[s].start = d;
    windows[s].entries.reserve(len);
    windows[s].entries.insert(windows[s].entries.end(), seg + start,
                              seg + start + head);
    windows[s].entries.insert(windows[s].entries.end(), seg,
                              seg + (len - head));
    lens[s] = len;
    total += len;
  }
  if (total == 0) return true;
  *idle = false;

  std::string chunk = serialize_chunk(*log_->header(), windows, seq_);
  // Fault point: dying mid-write, leaving a torn chunk on disk. The cursors
  // are not advanced and seq_ is not bumped, so a resumed drainer rewrites
  // the same chunk number and the window drains again — the loader never
  // has to trust a torn file that is followed by good ones.
  bool torn = fault::fires(fault_points::kDrainChunkTorn);
  if (torn && chunk.size() > sizeof(ChunkFrame)) {
    chunk.resize(sizeof(ChunkFrame) + (chunk.size() - sizeof(ChunkFrame)) / 2);
  }
  if (!write_file(chunk_path(opts_.prefix, seq_), chunk)) return false;
  if (torn) return false;

  // Reclaim, per shard: zero the consumed slots first (restores the
  // tombstone invariant for the next lap), then advance the drain cursor —
  // the release store is what hands the space back to writers. The CAS loop
  // tolerates a concurrent writer force-advance (dead-drainer overflow
  // path): a cursor already at or past our target is never moved back.
  for (u32 s = 0; s < nshards; ++s) {
    if (lens[s] == 0) continue;
    LogShard* sh = log_->shard(s);
    u64 d = windows[s].start;
    u64 len = lens[s];
    u64 cap = sh->capacity;
    LogEntry* seg = log_->entries() + sh->entry_offset;
    u64 start = d % cap;
    u64 head = cap - start < len ? cap - start : len;
    std::memset(static_cast<void*>(seg + start), 0,
                static_cast<usize>(head) * sizeof(LogEntry));
    std::memset(static_cast<void*>(seg), 0,
                static_cast<usize>(len - head) * sizeof(LogEntry));
    u64 expect = d;
    while (expect < d + len &&
           !sh->drained.compare_exchange_weak(expect, d + len,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
    }
  }
  drained_entries_.fetch_add(total, std::memory_order_relaxed);
  spilled_bytes_.fetch_add(chunk.size(), std::memory_order_relaxed);
  chunks_.fetch_add(1, std::memory_order_relaxed);
  ++seq_;
  return true;
}

Drainer::Stats Drainer::stats() const {
  Stats st;
  st.drained_entries = drained_entries_.load(std::memory_order_relaxed);
  st.spilled_bytes = spilled_bytes_.load(std::memory_order_relaxed);
  st.chunks = chunks_.load(std::memory_order_relaxed);
  st.dead = dead_.load(std::memory_order_acquire);
  if (log_ && log_->sharded()) {
    for (u32 s = 0; s < log_->shard_count(); ++s) {
      const LogShard* sh = log_->shard(s);
      u64 p = sh->published.load(std::memory_order_acquire);
      u64 d = sh->drained.load(std::memory_order_acquire);
      if (p > d) st.lag_entries += p - d;
    }
  }
  return st;
}

}  // namespace teeperf::drain
