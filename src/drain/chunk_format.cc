#include "drain/chunk_format.h"

#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "common/fileutil.h"

namespace teeperf::drain {

std::string serialize_chunk(const LogHeader& session,
                            const std::vector<ShardWindow>& windows, u32 seq) {
  u32 nshards = static_cast<u32>(windows.size());
  LogHeader h;
  std::memcpy(static_cast<void*>(&h), &session, sizeof(LogHeader));
  h.version = kLogVersionSharded;
  h.shard_count = nshards;
  h.flags.store(session.flags.load(std::memory_order_relaxed) &
                    ~(log_flags::kActive | log_flags::kRingBuffer |
                      log_flags::kSpillDrain),
                std::memory_order_relaxed);
  h.tail.store(0, std::memory_order_relaxed);
  // Drop accounting lives in the session's final residue dump, not in the
  // chunks — a loader summing both would double count.
  h.dropped.store(0, std::memory_order_relaxed);

  std::vector<LogShard> dir(nshards);
  u64 total = 0;
  for (u32 s = 0; s < nshards; ++s) {
    u64 len = windows[s].entries.size();
    dir[s].entry_offset = total;
    dir[s].capacity = len;
    dir[s].tail.store(len, std::memory_order_relaxed);
    dir[s].dropped.store(0, std::memory_order_relaxed);
    dir[s].published.store(0, std::memory_order_relaxed);
    dir[s].drained.store(windows[s].start, std::memory_order_relaxed);
    total += len;
  }
  h.max_entries = total;

  std::string payload;
  payload.reserve(sizeof(LogHeader) +
                  static_cast<usize>(nshards) * sizeof(LogShard) +
                  static_cast<usize>(total) * sizeof(LogEntry));
  payload.assign(reinterpret_cast<const char*>(&h), sizeof(LogHeader));
  payload.append(reinterpret_cast<const char*>(dir.data()),
                 static_cast<usize>(nshards) * sizeof(LogShard));
  for (u32 s = 0; s < nshards; ++s) {
    payload.append(reinterpret_cast<const char*>(windows[s].entries.data()),
                   windows[s].entries.size() * sizeof(LogEntry));
  }

  ChunkFrame frame;
  frame.magic = kChunkMagic;
  frame.seq = seq;
  frame.payload_bytes = payload.size();
  frame.payload_crc = crc32c_mask(crc32c(payload.data(), payload.size()));
  frame.header_crc = crc32c_mask(
      crc32c(&frame, sizeof(ChunkFrame) - 2 * sizeof(u32)));

  std::string out;
  out.reserve(sizeof(ChunkFrame) + payload.size());
  out.assign(reinterpret_cast<const char*>(&frame), sizeof(ChunkFrame));
  out.append(payload);
  return out;
}

bool parse_chunk(std::string_view bytes, u32* seq, std::string_view* payload,
                 std::string* error) {
  if (bytes.size() < sizeof(ChunkFrame)) {
    if (error) *error = "chunk shorter than its frame";
    return false;
  }
  ChunkFrame frame;
  std::memcpy(&frame, bytes.data(), sizeof(ChunkFrame));
  if (frame.magic != kChunkMagic) {
    if (error) *error = "bad chunk magic";
    return false;
  }
  u32 want = crc32c_mask(crc32c(bytes.data(), sizeof(ChunkFrame) - 2 * sizeof(u32)));
  if (frame.header_crc != want) {
    if (error) *error = "chunk frame checksum mismatch";
    return false;
  }
  if (frame.payload_bytes != bytes.size() - sizeof(ChunkFrame)) {
    if (error) *error = "chunk payload truncated";
    return false;
  }
  std::string_view body = bytes.substr(sizeof(ChunkFrame));
  if (frame.payload_crc != crc32c_mask(crc32c(body.data(), body.size()))) {
    if (error) *error = "chunk payload checksum mismatch";
    return false;
  }
  if (seq) *seq = frame.seq;
  if (payload) *payload = body;
  return true;
}

std::string chunk_path(const std::string& prefix, u32 seq) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".seg.%04u", seq);
  return prefix + suffix;
}

ChunkScan for_each_chunk(
    const std::string& prefix,
    const std::function<bool(u32 seq, std::string_view payload)>& fn) {
  for (u32 seq = 0;; ++seq) {
    auto raw = read_file(chunk_path(prefix, seq));
    if (!raw) return ChunkScan::kDone;
    std::string_view payload;
    if (!parse_chunk(*raw, nullptr, &payload, nullptr)) {
      // Tolerate only a torn *trailing* chunk; a bad chunk followed by good
      // ones cannot come from the persist-before-advance protocol.
      if (file_exists(chunk_path(prefix, seq + 1))) return ChunkScan::kCorrupt;
      return ChunkScan::kDone;
    }
    if (!fn(seq, payload)) return ChunkScan::kStopped;
  }
}

}  // namespace teeperf::drain
