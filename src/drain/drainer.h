// Host-side streaming drainer (DESIGN.md §10).
//
// Runs inside teeperf_record while the application executes. Each round it
// snapshots every shard's published cursor, copies the consumable window
// [drained, published) out of shared memory, persists it as a CRC-framed
// chunk file, zeroes the consumed slots (restoring the tombstone invariant
// for the next lap) and only then advances the shm-resident drain cursor —
// which is what lets writers reclaim the space. Crash safety comes from the
// persist-before-advance order: a drainer death at any point loses no
// entries, at worst it leaves a torn last chunk (overwritten on resume) or
// a persisted-but-unadvanced window (deduplicated by the loader via the
// absolute start cursors recorded in every chunk).
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "core/log_format.h"
#include "drain/chunk_format.h"

namespace teeperf::drain {

struct DrainerOptions {
  std::string prefix;            // chunks land at "<prefix>.seg.NNNN"
  u64 chunk_entries = 1u << 15;  // per-shard consume cap per round/chunk
  u64 poll_interval_us = 2000;   // idle sleep between rounds
};

class Drainer {
 public:
  Drainer(ProfileLog* log, DrainerOptions opts);
  ~Drainer();

  Drainer(const Drainer&) = delete;
  Drainer& operator=(const Drainer&) = delete;

  // Scans `prefix` for chunks left by a previous drainer incarnation (the
  // cross-process resume path: cursors live in shm, chunk files on disk)
  // and starts the background thread. A torn trailing chunk is adopted for
  // overwrite — its window was never marked drained. Returns false if the
  // log does not run the spill protocol.
  bool start();

  // Stops the background thread without a final drain. Cursors stay in
  // shm, so a later start()/restart() resumes exactly where this left off.
  void stop();

  // True when the thread exited on its own (fault injection or I/O error).
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  // Revives a dead drainer. Consumption resumes from the shm cursors; a
  // torn chunk left by the dead incarnation is overwritten because its
  // sequence number was never advanced.
  bool restart();

  // Synchronously consumes everything published and not yet drained. Call
  // after writers have stopped (recorder dump path); the unpublished
  // remainder [published, tail) — crashed writers' reservations — stays in
  // shm for the residue dump. False if a fault or I/O error interrupted
  // the drain (the unconsumed window then also stays for the residue).
  bool final_drain();

  struct Stats {
    u64 drained_entries = 0;
    u64 spilled_bytes = 0;
    u64 chunks = 0;
    u64 lag_entries = 0;  // published - drained, summed over shards
    bool dead = false;
  };
  Stats stats() const;

 private:
  void run();
  // One consume cycle. Returns false when the drainer must die (fault
  // injection or I/O failure); *idle is set when nothing was consumable.
  bool round(bool* idle);

  ProfileLog* log_;
  DrainerOptions opts_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> dead_{false};
  std::atomic<u64> drained_entries_{0};
  std::atomic<u64> spilled_bytes_{0};
  std::atomic<u64> chunks_{0};
  u32 seq_ = 0;  // next chunk number; owned by the drain thread between
                 // start/join boundaries
};

}  // namespace teeperf::drain
