// Obs metric/gauge/histogram name manifest — the single source of truth
// for every self-telemetry name registered in the tree (teeperf_lint
// rule R4).
//
// Instrumented code passes these constants to MetricsRegistry::counter()
// / gauge() / histogram() instead of repeating the string literal at
// each site, so a scraper-side consumer (teeperf_stats, the analyzer's
// recorder-health section) and the registering site can never drift
// apart silently. teeperf_lint flags any raw name literal passed to a
// registration call outside this header, and flags constants defined
// here that no code references.
//
// Names composed at runtime (the per-thread "app.thread.<tid>.entries"
// counters, the "fault.arm.<point>" arming gauges) are represented by
// their prefix constants; the lint treats dynamic composition as opaque.
#pragma once

namespace teeperf::obs::metric_names {

// Counter-health watchdog (obs/watchdog.cc).
inline constexpr char kWatchdogTicks[] = "watchdog.ticks";
inline constexpr char kWatchdogStallEvents[] = "watchdog.stall_events";
inline constexpr char kWatchdogDriftEvents[] = "watchdog.drift_events";
inline constexpr char kCounterNsPerTickPico[] = "counter.ns_per_tick_pico";
inline constexpr char kCounterStalled[] = "counter.stalled";
inline constexpr char kCounterDrifting[] = "counter.drifting";
inline constexpr char kWatchdogBackjumpEvents[] = "watchdog.backjump_events";

// Replicated trusted time (core/replicated_counter.cc, published through
// the watchdog's replica sample — DESIGN.md §13).
inline constexpr char kCounterReplicas[] = "counter.replicas";
inline constexpr char kCounterReplicaPrimary[] = "counter.replica.primary";
inline constexpr char kCounterReplicaDrift[] = "counter.replica.drift";
inline constexpr char kCounterReplicaStalled[] = "counter.replica.stalled";
inline constexpr char kCounterFailover[] = "counter.failover";

// Shared-memory log health (obs/watchdog.cc, core/recorder.cc).
inline constexpr char kLogTail[] = "log.tail";
inline constexpr char kLogCapacity[] = "log.capacity";
inline constexpr char kLogOccupancyPermille[] = "log.occupancy_permille";
inline constexpr char kLogEntryRatePerS[] = "log.entry_rate_per_s";
inline constexpr char kLogEntryRatePeakPerS[] = "log.entry_rate_peak_per_s";
inline constexpr char kLogDropped[] = "log.dropped";
inline constexpr char kLogRingWraps[] = "log.ring_wraps";
inline constexpr char kLogActive[] = "log.active";
inline constexpr char kLogShards[] = "log.shards";
inline constexpr char kLogTornTail[] = "log.torn_tail";

// Streaming spill drainer (obs/watchdog.cc; fed by drain/drainer.cc via
// the recorder's log sample).
inline constexpr char kDrainLagEntries[] = "drain.lag_entries";
inline constexpr char kDrainSpilledBytes[] = "drain.spilled_bytes";
inline constexpr char kDrainStall[] = "drain.stall";

// EPC paging (tee/epc.cc).
inline constexpr char kEpcPageIns[] = "epc.page_ins";
inline constexpr char kEpcPageOuts[] = "epc.page_outs";
inline constexpr char kEpcResidentPages[] = "epc.resident_pages";
inline constexpr char kEpcResidentLimit[] = "epc.resident_limit";

// Sampling profiler (perfsim/sampler.cc).
inline constexpr char kSamplerFrequencyHz[] = "sampler.frequency_hz";
inline constexpr char kSamplerSamples[] = "sampler.samples";
inline constexpr char kSamplerDropped[] = "sampler.dropped";

// Symbol registry (core/symbol_registry.cc).
inline constexpr char kSymbolsRegistered[] = "symbols.registered";

// Fleet-monitoring daemon (monitord/monitor.cc) — the daemon's own health,
// registered in its private obs region and exported alongside the
// per-session metrics it scrapes.
inline constexpr char kMonitordSessionsAttached[] = "monitord.sessions.attached";
inline constexpr char kMonitordSessionsSeen[] = "monitord.sessions.seen";
inline constexpr char kMonitordSessionsGc[] = "monitord.sessions.gc";
inline constexpr char kMonitordScrapes[] = "monitord.scrapes";
inline constexpr char kMonitordScrapeLatencyUs[] = "monitord.scrape.latency_us";
inline constexpr char kMonitordFlameBuilds[] = "monitord.flame.builds";
// Per-session liveness marker the daemon synthesizes for every attached
// session (value 1, labeled {session,pid}) — present even when the
// session's own obs region has no metrics yet, so a scrape always names
// every session the daemon watches.
inline constexpr char kSessionUp[] = "session.up";

// Dynamic-name patterns (composed with a tid / shard / fault-point
// suffix at runtime).
inline constexpr char kAppThreadEntriesFmt[] = "app.thread.%llu.entries";
inline constexpr char kAppThreadOtherEntries[] = "app.thread.other.entries";
inline constexpr char kLogShardTailFmt[] = "log.shard.%zu.tail";
inline constexpr char kFaultArmPrefix[] = "fault.arm.";

// Every statically named metric above (the dynamic patterns excluded) —
// the Prometheus exporter's round-trip property test iterates this so a
// name added here without exporter coverage fails the suite.
inline constexpr const char* kAllStatic[] = {
    kWatchdogTicks,        kWatchdogStallEvents,  kWatchdogDriftEvents,
    kWatchdogBackjumpEvents,
    kCounterNsPerTickPico, kCounterStalled,       kCounterDrifting,
    kCounterReplicas,      kCounterReplicaPrimary, kCounterReplicaDrift,
    kCounterReplicaStalled, kCounterFailover,
    kLogTail,              kLogCapacity,          kLogOccupancyPermille,
    kLogEntryRatePerS,     kLogEntryRatePeakPerS, kLogDropped,
    kLogRingWraps,         kLogActive,            kLogShards,
    kLogTornTail,          kDrainLagEntries,      kDrainSpilledBytes,
    kDrainStall,           kEpcPageIns,           kEpcPageOuts,
    kEpcResidentPages,     kEpcResidentLimit,     kSamplerFrequencyHz,
    kSamplerSamples,       kSamplerDropped,       kSymbolsRegistered,
    kMonitordSessionsAttached, kMonitordSessionsSeen, kMonitordSessionsGc,
    kMonitordScrapes,      kMonitordScrapeLatencyUs, kMonitordFlameBuilds,
    kSessionUp,            kAppThreadOtherEntries,
};

}  // namespace teeperf::obs::metric_names
