// Shared-memory layout of the self-telemetry region (the "obs" region).
//
// TEEMon (PAPERS.md) scrapes TEE performance metrics continuously from
// *outside* the enclave; this region reproduces that property for the
// profiler itself: every metric and event record lives in plain shared
// memory (host memory from the TEE's point of view), so an untrusted
// scraper process (tools/teeperf_stats) can observe a live session without
// entering the "enclave" or stopping the workload.
//
// The region is a fixed-size header followed by three fixed-size arrays:
//
//   ObsHeader | MetricSlot[scalar_capacity] | HistogramSlot[histogram_capacity]
//             | EventRecord[journal_capacity]
//
// Every mutable word is a std::atomic in shared memory; there are no locks
// anywhere in the region, so a writer dying mid-update can never wedge a
// reader (the same argument the log format makes in core/log_format.h).
#pragma once

#include <atomic>

#include "common/types.h"

namespace teeperf::obs {

inline constexpr u64 kObsMagic = 0x544545504f425331ull;  // "TEEPOBS1"
inline constexpr u32 kObsVersion = 1;
inline constexpr usize kMetricNameLen = 40;
inline constexpr usize kHistBuckets = 64;  // matches common/histogram.h

enum class MetricType : u32 {
  kCounter = 1,    // monotonic; merged by summing
  kGauge = 2,      // last-write-wins instantaneous value
  kHistogram = 3,  // log2-bucketed distribution
};

// Slot claiming protocol (lock-free registration): a slot starts kFree; a
// registering thread CASes it to kClaiming, writes name/type, then releases
// it to kLive. Readers and name-matchers treat kClaiming as "retry".
enum SlotState : u32 {
  kSlotFree = 0,
  kSlotClaiming = 1,
  kSlotLive = 2,
};

// One scalar metric. Exactly one cache line so independent metrics (in
// particular the per-thread entry counters bumped on the hook hot path)
// never false-share.
struct MetricSlot {
  std::atomic<u32> state{kSlotFree};
  u32 type = 0;
  char name[kMetricNameLen] = {};
  std::atomic<u64> value{0};
  u64 reserved = 0;
};
static_assert(sizeof(MetricSlot) == 64);

// One histogram metric: count/sum/min/max plus power-of-two buckets
// (bucket math shared with common/histogram.h).
struct HistogramSlot {
  std::atomic<u32> state{kSlotFree};
  u32 reserved0 = 0;
  char name[kMetricNameLen] = {};
  std::atomic<u64> count{0};
  std::atomic<u64> sum{0};
  std::atomic<u64> min{~0ull};
  std::atomic<u64> max{0};
  std::atomic<u64> buckets[kHistBuckets];
};
static_assert(sizeof(HistogramSlot) == 48 + 4 * 8 + kHistBuckets * 8);

// One journal record, fixed 64 bytes. `seq` doubles as the commit marker:
// writers fill every other field first and publish the (1-based) sequence
// number last with release order, so a reader never observes a half-written
// record as valid — it sees either the old record or seq==0.
struct EventRecord {
  std::atomic<u64> seq{0};
  u64 t_ns = 0;  // CLOCK_MONOTONIC at the event
  u32 type = 0;  // EventType (events.h)
  u32 tid = 0;   // profiler thread id, or 0 for process-level events
  u64 arg0 = 0;
  u64 arg1 = 0;
  char detail[24] = {};
};
static_assert(sizeof(EventRecord) == 64);

struct ObsHeader {
  u64 magic = 0;
  u32 version = 0;
  u32 reserved0 = 0;
  u64 pid = 0;         // process that formatted the region
  u64 created_ns = 0;  // CLOCK_MONOTONIC at init (event timestamps are
                       // reported relative to this)
  u32 scalar_capacity = 0;
  u32 histogram_capacity = 0;
  u32 journal_capacity = 0;
  u32 reserved1 = 0;
  std::atomic<u64> journal_seq{0};  // total events ever recorded
  u8 pad[128 - 7 * 8];              // entries start cache-aligned
};
static_assert(sizeof(ObsHeader) == 128);

// Resolved pointers into a formatted region. Cheap to copy; does not own.
// teeperf-lint: allow(r3): process-local view over the region, not shm-resident
struct ObsLayout {
  ObsHeader* header = nullptr;
  MetricSlot* scalars = nullptr;
  HistogramSlot* histograms = nullptr;
  EventRecord* events = nullptr;

  bool valid() const { return header != nullptr; }

  static usize bytes_for(u32 scalars, u32 histograms, u32 journal) {
    return sizeof(ObsHeader) + scalars * sizeof(MetricSlot) +
           histograms * sizeof(HistogramSlot) + journal * sizeof(EventRecord);
  }

  // Formats `buffer` as an empty region. False if it cannot hold the layout.
  static bool format(void* buffer, usize size, u32 scalars, u32 histograms,
                     u32 journal, u64 pid, ObsLayout* out);

  // Adopts an already-formatted region (the scraper side). False on magic /
  // version / size mismatch.
  static bool map(void* buffer, usize size, ObsLayout* out);
};

}  // namespace teeperf::obs
