// Counter-health watchdog (Triad's observation, PAPERS.md: untrusted time
// sources drift and stall, so a TEE profiler must actively health-check its
// clock). A background thread re-measures ns/tick for the session's counter
// against CLOCK_MONOTONIC every interval, detects stalls (the counter word
// not advancing — e.g. the software-counter thread descheduled or dead) and
// drift beyond a threshold from the calibrated baseline, publishes gauges,
// and journals alarm events.
//
// The watchdog reads the counter and the log through callbacks, so it works
// for any CounterMode without depending on core (the recorder supplies
// `read_counter(mode, header)` as the callback).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace teeperf::obs {

struct WatchdogOptions {
  u64 interval_ms = 50;
  // Consecutive zero-delta windows before a stall alarm is raised.
  u32 stall_windows = 2;
  // Relative ns/tick deviation from the calibrated baseline that counts as
  // drift. Generous by default: software-counter rates legitimately wobble
  // with scheduling; the watchdog flags sustained gross deviation, not jitter.
  double drift_threshold = 0.5;
  // Healthy windows averaged into the ns/tick baseline before drift
  // detection arms.
  u32 calibration_windows = 4;
};

// Occupancy/rate sample of the profiling log, provided by the owner.
struct LogSample {
  u64 tail = 0;      // entries attempted (monotonic; summed over shards in v2)
  u64 capacity = 0;  // max entries
  bool active = false;
  bool ring = false;
  u64 dropped = 0;   // appends refused (v1 reads the shm header word, v2
                     // sums the per-shard counters — either way visible
                     // cross-process)
  // Spill-drain sessions (log_flags::kSpillDrain): drainer health, filled
  // from drain::Drainer::stats() by the owner. `drained_entries` is
  // monotonic — the watchdog flags a stall when it stops advancing while
  // lag is nonzero.
  bool spill = false;
  u64 drain_lag = 0;            // published-but-unconsumed entries
  u64 drain_spilled_bytes = 0;  // chunk bytes persisted so far
  u64 drained_entries = 0;      // entries consumed so far
  // v2 sharded logs: each shard's raw tail, in directory order (empty for
  // v1). Published as log.shard.<i>.tail gauges so a scraper can spot one
  // hot thread saturating its shard while the log as a whole looks empty.
  std::vector<u64> shard_tails;
};

// Replicated-counter health sample, provided by the owner from
// ReplicatedCounter::health() (DESIGN.md §13). Published verbatim as the
// counter.replica.* / counter.failover gauges.
struct ReplicaSample {
  u32 replicas = 0;
  u32 primary = 0;
  u64 failovers = 0;
  u64 backjumps = 0;
  u32 stalled_replicas = 0;
  u64 drift_permille = 0;
};

class Watchdog {
 public:
  // `read_counter` returns the session counter's current value; `mode_name`
  // labels events ("software", "tsc", ...). Both metrics and journal must
  // outlive the watchdog.
  Watchdog(MetricsRegistry* registry, EventJournal* journal,
           std::function<u64()> read_counter, std::string mode_name,
           WatchdogOptions options = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Also publish log occupancy / entry-rate / wrap metrics each tick.
  // Must be called before start().
  void watch_log(std::function<LogSample()> sample_log);

  // Also publish replicated-counter health gauges each tick (sessions with
  // counter_replicas > 0). Must be called before start().
  void watch_replicas(std::function<ReplicaSample()> sample_replicas);

  void start();
  void stop();
  bool running() const { return running_; }

  // Exposed for tests: the most recent measured ns/tick (0 before the first
  // healthy window) and whether the counter is currently considered stalled.
  double ns_per_tick() const { return ns_per_tick_; }
  bool stalled() const { return stalled_; }
  u64 ticks() const { return wd_ticks_.value(); }
  // Counter-word backjumps observed (each journaled as kCounterBackjump).
  u64 backjumps() const { return backjump_events_.value(); }

 private:
  void run();
  void observe_counter(u64 now_ns);
  void observe_log();
  void observe_replicas();

  MetricsRegistry* registry_;
  EventJournal* journal_;
  std::function<u64()> read_counter_;
  std::string mode_name_;
  WatchdogOptions options_;
  std::function<LogSample()> sample_log_;
  std::function<ReplicaSample()> sample_replicas_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;

  // Counter-health state (watchdog thread only).
  u64 last_counter_ = 0;
  u64 last_ns_ = 0;
  u64 stall_start_ns_ = 0;
  u32 zero_windows_ = 0;
  bool stalled_ = false;
  bool drifting_ = false;
  double ns_per_tick_ = 0.0;
  double baseline_ = 0.0;
  u32 baseline_samples_ = 0;

  // Log-watch state.
  u64 last_tail_ = 0;
  u64 last_tail_ns_ = 0;
  u64 wraps_seen_ = 0;
  bool saturation_reported_ = false;
  double peak_rate_ = 0.0;

  // Drain-watch state (spill sessions only; gauges register lazily on the
  // first spill sample so plain sessions don't carry drain.* slots).
  bool drain_gauges_ready_ = false;
  u64 last_drained_ = 0;
  u32 drain_idle_windows_ = 0;
  bool drain_stalled_ = false;

  // Published metrics.
  Counter wd_ticks_, stall_events_, drift_events_, backjump_events_;
  Gauge g_ns_per_tick_, g_stalled_, g_drifting_;
  Gauge g_tail_, g_occupancy_, g_rate_, g_peak_rate_, g_dropped_, g_wraps_,
      g_active_;
  Gauge g_drain_lag_, g_drain_spilled_, g_drain_stall_;
  Gauge g_replicas_, g_replica_primary_, g_replica_drift_, g_replica_stalled_,
      g_failover_;
  Histogram h_ns_per_tick_;
};

}  // namespace teeperf::obs
