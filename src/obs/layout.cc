#include "obs/layout.h"

#include <new>

#include "common/spin.h"

namespace teeperf::obs {

static ObsLayout resolve(void* buffer, const ObsHeader* h) {
  ObsLayout l;
  u8* p = static_cast<u8*>(buffer);
  l.header = reinterpret_cast<ObsHeader*>(p);
  p += sizeof(ObsHeader);
  l.scalars = reinterpret_cast<MetricSlot*>(p);
  p += h->scalar_capacity * sizeof(MetricSlot);
  l.histograms = reinterpret_cast<HistogramSlot*>(p);
  p += h->histogram_capacity * sizeof(HistogramSlot);
  l.events = reinterpret_cast<EventRecord*>(p);
  return l;
}

bool ObsLayout::format(void* buffer, usize size, u32 scalars, u32 histograms,
                       u32 journal, u64 pid, ObsLayout* out) {
  if (!buffer || journal == 0 || size < bytes_for(scalars, histograms, journal)) {
    return false;
  }
  auto* h = new (buffer) ObsHeader();
  h->version = kObsVersion;
  h->pid = pid;
  h->created_ns = monotonic_ns();
  h->scalar_capacity = scalars;
  h->histogram_capacity = histograms;
  h->journal_capacity = journal;
  u8* p = static_cast<u8*>(buffer) + sizeof(ObsHeader);
  for (u32 i = 0; i < scalars; ++i) new (p + i * sizeof(MetricSlot)) MetricSlot();
  p += scalars * sizeof(MetricSlot);
  for (u32 i = 0; i < histograms; ++i) {
    auto* hs = new (p + i * sizeof(HistogramSlot)) HistogramSlot();
    for (usize b = 0; b < kHistBuckets; ++b) {
      hs->buckets[b].store(0, std::memory_order_relaxed);
    }
  }
  p += histograms * sizeof(HistogramSlot);
  for (u32 i = 0; i < journal; ++i) new (p + i * sizeof(EventRecord)) EventRecord();
  // Publish the magic last: a concurrently-attaching scraper either sees a
  // fully formatted region or refuses to map it.
  std::atomic_thread_fence(std::memory_order_release);
  h->magic = kObsMagic;
  *out = resolve(buffer, h);
  return true;
}

bool ObsLayout::map(void* buffer, usize size, ObsLayout* out) {
  if (!buffer || size < sizeof(ObsHeader)) return false;
  auto* h = reinterpret_cast<ObsHeader*>(buffer);
  if (h->magic != kObsMagic || h->version != kObsVersion) return false;
  if (bytes_for(h->scalar_capacity, h->histogram_capacity, h->journal_capacity) >
      size) {
    return false;
  }
  *out = resolve(buffer, h);
  return true;
}

}  // namespace teeperf::obs
