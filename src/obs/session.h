// SelfTelemetry: ownership of one obs shared-memory region, and the
// process-global installation point instrumented code reads from.
//
// The region is created by whoever owns the profiling session (Recorder, or
// the teeperf_record wrapper) and — when named — scraped live by
// tools/teeperf_stats or opened by the profiled child process, which bumps
// its per-thread counters directly into the shared region. Mirrors the
// split the log itself uses (core/shm + core/log_format).
#pragma once

#include <memory>
#include <string>

#include "common/shm.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace teeperf::obs {

struct TelemetryOptions {
  // Named POSIX shm when set (cross-process scraping); anonymous otherwise.
  std::string shm_name;
  u32 scalar_capacity = 128;
  u32 histogram_capacity = 16;
  u32 journal_capacity = 256;
};

class SelfTelemetry {
 public:
  // Creates and formats a fresh region. Null on shm failure.
  static std::unique_ptr<SelfTelemetry> create(const TelemetryOptions& options);

  // Opens an existing named region (scraper / profiled child). Null if the
  // region is missing or not a valid obs region.
  static std::unique_ptr<SelfTelemetry> open(const std::string& shm_name);

  SelfTelemetry(const SelfTelemetry&) = delete;
  SelfTelemetry& operator=(const SelfTelemetry&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  EventJournal& journal() { return journal_; }
  const EventJournal& journal() const { return journal_; }
  const std::string& shm_name() const { return shm_.name(); }

 private:
  SelfTelemetry() = default;

  SharedMemoryRegion shm_;
  MetricsRegistry registry_;
  EventJournal journal_;
};

// Process-global telemetry sink. install() publishes `t` (not owned; must
// outlive the matching uninstall()); instrumented code null-checks
// telemetry() on every use. Each install/uninstall bumps an epoch so hot
// paths that cache slot pointers (runtime.cc's per-thread entry counters)
// can detect that their cached pointer belongs to a dead region.
void install(SelfTelemetry* t);
void uninstall(SelfTelemetry* t);
SelfTelemetry* telemetry();
u64 telemetry_epoch();

// Convenience: journal an event iff telemetry is installed.
void journal_event(EventType type, u64 arg0 = 0, u64 arg1 = 0,
                   std::string_view detail = {}, u32 tid = 0);

}  // namespace teeperf::obs
