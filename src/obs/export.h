// Snapshot exporters for the telemetry region: human text (teeperf_stats,
// the analyzer's recorder-health section) and JSON-lines (one object per
// metric / event, greppable and trivially machine-parsed).
#pragma once

#include <string>

#include "obs/events.h"
#include "obs/metrics.h"

namespace teeperf::obs {

// One "name value" line per scalar, then one summary line per histogram,
// sorted by name.
std::string metrics_text(const MetricsRegistry& registry);

// {"metric":"...","type":"counter|gauge","value":N} and
// {"metric":"...","type":"histogram","count":..,"min":..,"mean":..,
//  "p50":..,"p99":..,"max":..} — one object per line.
std::string metrics_jsonl(const MetricsRegistry& registry);

// Newest-last listing of up to `limit` journal records with timestamps
// relative to region creation.
std::string events_text(const EventJournal& journal, usize limit = 32);

// {"seq":N,"t_ns":N,"event":"...","tid":N,"arg0":N,"arg1":N,"detail":"..."}
// per line, oldest first.
std::string events_jsonl(const EventJournal& journal);

// The combined "recorder health" snapshot persisted next to a dump
// ("<prefix>.health") and embedded in analyzer reports.
std::string health_text(const MetricsRegistry& registry,
                        const EventJournal& journal);

}  // namespace teeperf::obs
