#include "obs/export.h"

#include <algorithm>
#include <vector>

#include "common/histogram.h"
#include "common/stringutil.h"

namespace teeperf::obs {
namespace {

// Metric names and event details are profiler-chosen identifiers, but the
// JSON must stay valid even if one sneaks in a quote or control byte.
std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      out += str_format("\\u%04x", c);
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

struct ScalarRow {
  std::string name;
  MetricType type;
  u64 value;
};

struct HistRow {
  std::string name;
  u64 count, sum, min, max;
  u64 buckets[kHistBuckets];
};

void collect(const MetricsRegistry& registry, std::vector<ScalarRow>* scalars,
             std::vector<HistRow>* hists) {
  registry.visit_scalars([&](const MetricSlot& s) {
    scalars->push_back({s.name, static_cast<MetricType>(s.type),
                        s.value.load(std::memory_order_relaxed)});
  });
  registry.visit_histograms([&](const HistogramSlot& s) {
    HistRow r;
    r.name = s.name;
    r.count = s.count.load(std::memory_order_relaxed);
    r.sum = s.sum.load(std::memory_order_relaxed);
    r.min = s.min.load(std::memory_order_relaxed);
    r.max = s.max.load(std::memory_order_relaxed);
    for (usize b = 0; b < kHistBuckets; ++b) {
      r.buckets[b] = s.buckets[b].load(std::memory_order_relaxed);
    }
    hists->push_back(std::move(r));
  });
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(scalars->begin(), scalars->end(), by_name);
  std::sort(hists->begin(), hists->end(), by_name);
}

double hist_p(const HistRow& r, double p) {
  u64 lo = r.count ? r.min : 0;
  return hist::percentile(r.buckets, kHistBuckets, r.count, lo, r.max, p);
}

}  // namespace

std::string metrics_text(const MetricsRegistry& registry) {
  std::vector<ScalarRow> scalars;
  std::vector<HistRow> hists;
  collect(registry, &scalars, &hists);
  std::string out;
  for (const auto& s : scalars) {
    out += str_format("  %-36s %s %llu\n", s.name.c_str(),
                      s.type == MetricType::kCounter ? "counter" : "gauge  ",
                      static_cast<unsigned long long>(s.value));
  }
  for (const auto& h : hists) {
    double mean = h.count ? static_cast<double>(h.sum) / h.count : 0.0;
    out += str_format(
        "  %-36s hist    count=%llu min=%llu mean=%.1f p50=%.0f p99=%.0f "
        "max=%llu\n",
        h.name.c_str(), static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.count ? h.min : 0), mean,
        hist_p(h, 50), hist_p(h, 99), static_cast<unsigned long long>(h.max));
  }
  if (out.empty()) out = "  (no metrics registered)\n";
  return out;
}

std::string metrics_jsonl(const MetricsRegistry& registry) {
  std::vector<ScalarRow> scalars;
  std::vector<HistRow> hists;
  collect(registry, &scalars, &hists);
  std::string out;
  for (const auto& s : scalars) {
    out += str_format("{\"metric\":\"%s\",\"type\":\"%s\",\"value\":%llu}\n",
                      json_escape(s.name.c_str()).c_str(),
                      s.type == MetricType::kCounter ? "counter" : "gauge",
                      static_cast<unsigned long long>(s.value));
  }
  for (const auto& h : hists) {
    double mean = h.count ? static_cast<double>(h.sum) / h.count : 0.0;
    out += str_format(
        "{\"metric\":\"%s\",\"type\":\"histogram\",\"count\":%llu,"
        "\"min\":%llu,\"mean\":%.1f,\"p50\":%.0f,\"p99\":%.0f,\"max\":%llu}\n",
        json_escape(h.name.c_str()).c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.count ? h.min : 0), mean,
        hist_p(h, 50), hist_p(h, 99), static_cast<unsigned long long>(h.max));
  }
  return out;
}

std::string events_text(const EventJournal& journal, usize limit) {
  auto events = journal.snapshot();
  u64 total = journal.total();
  std::string out;
  if (total > events.size()) {
    out += str_format("  (%llu older events lost to journal wrap)\n",
                      static_cast<unsigned long long>(total - events.size()));
  }
  usize start = events.size() > limit ? events.size() - limit : 0;
  u64 epoch = journal.epoch_ns();
  for (usize i = start; i < events.size(); ++i) {
    const Event& e = events[i];
    double rel_s = e.t_ns >= epoch ? (e.t_ns - epoch) / 1e9 : 0.0;
    out += str_format("  [%8.3fs] #%-4llu %-15s", rel_s,
                      static_cast<unsigned long long>(e.seq),
                      event_type_name(e.type));
    if (e.detail[0]) out += str_format(" %s", e.detail);
    out += str_format(" arg0=%llu arg1=%llu\n",
                      static_cast<unsigned long long>(e.arg0),
                      static_cast<unsigned long long>(e.arg1));
  }
  if (out.empty()) out = "  (no events)\n";
  return out;
}

std::string events_jsonl(const EventJournal& journal) {
  std::string out;
  for (const Event& e : journal.snapshot()) {
    out += str_format(
        "{\"seq\":%llu,\"t_ns\":%llu,\"event\":\"%s\",\"tid\":%u,"
        "\"arg0\":%llu,\"arg1\":%llu,\"detail\":\"%s\"}\n",
        static_cast<unsigned long long>(e.seq),
        static_cast<unsigned long long>(e.t_ns), event_type_name(e.type),
        e.tid, static_cast<unsigned long long>(e.arg0),
        static_cast<unsigned long long>(e.arg1),
        json_escape(e.detail).c_str());
  }
  return out;
}

std::string health_text(const MetricsRegistry& registry,
                        const EventJournal& journal) {
  std::string out = "recorder health metrics:\n";
  out += metrics_text(registry);
  out += str_format("recorder events (%llu total):\n",
                    static_cast<unsigned long long>(journal.total()));
  out += events_text(journal);
  return out;
}

}  // namespace teeperf::obs
