// Lock-free metrics registry over the shared-memory obs region.
//
// Registration is find-or-create by name with a CAS claiming protocol
// (layout.h); after registration every update is a single relaxed atomic on
// a dedicated cache line, cheap enough for the recorder's hot paths. All
// handles are null-safe: when the registry is full or no telemetry region
// is installed, handles are inert and updates are no-ops, so instrumented
// code never needs to branch on "is telemetry on".
#pragma once

#include <functional>
#include <string_view>

#include "common/types.h"
#include "obs/layout.h"

namespace teeperf::obs {

// Monotonic counter handle.
class Counter {
 public:
  Counter() = default;
  explicit Counter(MetricSlot* slot) : slot_(slot) {}
  void add(u64 n) { if (slot_) slot_->value.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  u64 value() const {
    return slot_ ? slot_->value.load(std::memory_order_relaxed) : 0;
  }
  bool valid() const { return slot_ != nullptr; }
  // The raw shm cell, for hot paths that cache the pointer (runtime.cc).
  std::atomic<u64>* cell() { return slot_ ? &slot_->value : nullptr; }

 private:
  MetricSlot* slot_ = nullptr;
};

// Instantaneous gauge handle (last write wins).
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(MetricSlot* slot) : slot_(slot) {}
  void set(u64 v) { if (slot_) slot_->value.store(v, std::memory_order_relaxed); }
  u64 value() const {
    return slot_ ? slot_->value.load(std::memory_order_relaxed) : 0;
  }
  bool valid() const { return slot_ != nullptr; }

 private:
  MetricSlot* slot_ = nullptr;
};

// Log2-bucketed histogram handle (bucket math from common/histogram.h).
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(HistogramSlot* slot) : slot_(slot) {}
  void add(u64 value);
  u64 count() const {
    return slot_ ? slot_->count.load(std::memory_order_relaxed) : 0;
  }
  bool valid() const { return slot_ != nullptr; }
  const HistogramSlot* slot() const { return slot_; }

 private:
  HistogramSlot* slot_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  explicit MetricsRegistry(const ObsLayout& layout) : layout_(layout) {}

  bool valid() const { return layout_.valid(); }

  // Find-or-create. Returns an inert handle when the registry is full or a
  // slot with the same name was registered as a different type.
  Counter counter(std::string_view name) {
    return Counter(scalar_slot(name, MetricType::kCounter));
  }
  Gauge gauge(std::string_view name) {
    return Gauge(scalar_slot(name, MetricType::kGauge));
  }
  Histogram histogram(std::string_view name);

  // Snapshot iteration (scraper / exporter side). Visits live slots in slot
  // order — registration order for a single writer.
  void visit_scalars(
      const std::function<void(const MetricSlot&)>& fn) const;
  void visit_histograms(
      const std::function<void(const HistogramSlot&)>& fn) const;

  usize scalar_count() const;
  usize histogram_count() const;

  const ObsLayout& layout() const { return layout_; }

 private:
  MetricSlot* scalar_slot(std::string_view name, MetricType type);

  ObsLayout layout_;
};

}  // namespace teeperf::obs
