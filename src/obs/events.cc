#include "obs/events.h"

#include <algorithm>
#include <cstring>

#include "common/spin.h"

namespace teeperf::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kAttach: return "attach";
    case EventType::kDetach: return "detach";
    case EventType::kActivate: return "activate";
    case EventType::kDeactivate: return "deactivate";
    case EventType::kCounterStall: return "counter_stall";
    case EventType::kCounterDrift: return "counter_drift";
    case EventType::kCounterRecover: return "counter_recover";
    case EventType::kEpcPressure: return "epc_pressure";
    case EventType::kRingWrap: return "ring_wrap";
    case EventType::kLogSaturated: return "log_saturated";
    case EventType::kTornTail: return "torn_tail";
    case EventType::kSamplerStart: return "sampler_start";
    case EventType::kSamplerStop: return "sampler_stop";
    case EventType::kDrainStall: return "drain_stall";
    case EventType::kSessionGc: return "session_gc";
    case EventType::kCounterBackjump: return "counter_backjump";
    case EventType::kCounterFailover: return "counter_failover";
  }
  return "?";
}

void EventJournal::record(EventType type, u64 arg0, u64 arg1,
                          std::string_view detail, u32 tid) {
  if (!layout_.valid()) return;
  u64 seq = layout_.header->journal_seq.fetch_add(1, std::memory_order_relaxed);
  EventRecord& r = layout_.events[seq % layout_.header->journal_capacity];
  // Invalidate first so a concurrent reader of the overwritten slot drops
  // it rather than pairing the old seq with new fields.
  r.seq.store(0, std::memory_order_release);
  r.t_ns = monotonic_ns();
  r.type = static_cast<u32>(type);
  r.tid = tid;
  r.arg0 = arg0;
  r.arg1 = arg1;
  usize n = std::min(detail.size(), sizeof(r.detail) - 1);
  std::memcpy(r.detail, detail.data(), n);
  r.detail[n] = '\0';
  r.seq.store(seq + 1, std::memory_order_release);  // commit
}

u64 EventJournal::total() const {
  return layout_.valid()
             ? layout_.header->journal_seq.load(std::memory_order_relaxed)
             : 0;
}

std::vector<Event> EventJournal::snapshot() const {
  std::vector<Event> out;
  if (!layout_.valid()) return out;
  u32 cap = layout_.header->journal_capacity;
  out.reserve(cap);
  for (u32 i = 0; i < cap; ++i) {
    const EventRecord& r = layout_.events[i];
    u64 seq = r.seq.load(std::memory_order_acquire);
    if (seq == 0) continue;
    Event e;
    e.seq = seq;
    e.t_ns = r.t_ns;
    e.type = static_cast<EventType>(r.type);
    e.tid = r.tid;
    e.arg0 = r.arg0;
    e.arg1 = r.arg1;
    std::memcpy(e.detail, r.detail, sizeof(e.detail));
    e.detail[sizeof(e.detail) - 1] = '\0';
    // Re-check the commit marker: if the slot was recycled while we copied,
    // the copy may be torn — drop it.
    if (r.seq.load(std::memory_order_acquire) != seq) continue;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

}  // namespace teeperf::obs
