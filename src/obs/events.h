// Structured event journal: a fixed-size ring of 64-byte binary records in
// the shared-memory obs region. Long-running sessions keep the newest
// window (same policy as the log's ring mode); the monotonically increasing
// sequence number tells readers how many events were lost to wrap.
#pragma once

#include <string_view>
#include <vector>

#include "common/types.h"
#include "obs/layout.h"

namespace teeperf::obs {

enum class EventType : u32 {
  kAttach = 1,         // session attached (arg0 = pid)
  kDetach = 2,         // session detached (arg0 = entries recorded)
  kActivate = 3,       // measurement toggled on
  kDeactivate = 4,     // measurement toggled off
  kCounterStall = 5,   // counter word stopped advancing (arg0 = stuck value,
                       // arg1 = stalled-for ns)
  kCounterDrift = 6,   // ns/tick deviated from baseline (arg0 = measured
                       // ps/tick, arg1 = baseline ps/tick)
  kCounterRecover = 7, // counter advancing again after a stall
  kEpcPressure = 8,    // EPC evictions crossed a power of two (arg0 = total
                       // evictions, arg1 = resident limit)
  kRingWrap = 9,       // log ring wrapped (arg0 = wrap count)
  kLogSaturated = 10,  // non-ring log is full and dropping (arg0 = attempted)
  kTornTail = 11,      // reserved-but-unwritten entries found at dump
                       // (arg0 = torn entry count)
  kSamplerStart = 12,  // perfsim sampler armed (arg0 = frequency hz)
  kSamplerStop = 13,   // perfsim sampler stopped (arg0 = samples, arg1 = dropped)
  kDrainStall = 14,    // spill drainer stopped consuming while writers lag
                       // (arg0 = lag entries, arg1 = entries drained so far)
  kSessionGc = 15,     // stale-session GC reclaimed orphans (arg0 = stale
                       // descriptors removed, arg1 = shm segments unlinked)
  kCounterBackjump = 16,  // counter word observed moving backwards (arg0 =
                          // new value, arg1 = previous value). Distinct from
                          // a stall: the timeline regressed, so the window is
                          // excluded from calibration instead of averaged in.
  kCounterFailover = 17,  // replicated counter elected a new primary
                          // (arg0 = old replica index, arg1 = new index)
};

const char* event_type_name(EventType type);

// A decoded journal record (plain values, detached from the shm).
struct Event {
  u64 seq = 0;   // 1-based global sequence number
  u64 t_ns = 0;  // CLOCK_MONOTONIC at record time
  EventType type = EventType::kAttach;
  u32 tid = 0;
  u64 arg0 = 0;
  u64 arg1 = 0;
  char detail[24] = {};
};

class EventJournal {
 public:
  EventJournal() = default;
  explicit EventJournal(const ObsLayout& layout) : layout_(layout) {}

  bool valid() const { return layout_.valid(); }

  // Lock-free append: reserves a ring slot with fetch-and-add on the global
  // sequence, fills the record, and publishes the sequence number last
  // (commit marker — see EventRecord). `detail` is truncated to 23 chars.
  void record(EventType type, u64 arg0 = 0, u64 arg1 = 0,
              std::string_view detail = {}, u32 tid = 0);

  // Total events ever recorded (>= what the ring currently holds).
  u64 total() const;

  // Copies committed records oldest→newest, skipping slots that are empty
  // or torn mid-write. Capped at the ring capacity.
  std::vector<Event> snapshot() const;

  u32 capacity() const {
    return layout_.valid() ? layout_.header->journal_capacity : 0;
  }
  // Region creation time; event timestamps are usually shown relative to it.
  u64 epoch_ns() const { return layout_.valid() ? layout_.header->created_ns : 0; }

 private:
  ObsLayout layout_;
};

}  // namespace teeperf::obs
