#include "obs/metrics.h"

#include <cstring>

#include "common/histogram.h"

namespace teeperf::obs {
namespace {

// Copies `name` into a slot's fixed name field (truncating, always
// NUL-terminated so exporters can treat it as a C string).
void write_name(char* dst, std::string_view name) {
  usize n = name.size() < kMetricNameLen - 1 ? name.size() : kMetricNameLen - 1;
  std::memcpy(dst, name.data(), n);
  dst[n] = '\0';
}

bool name_matches(const char* slot_name, std::string_view name) {
  usize n = name.size() < kMetricNameLen - 1 ? name.size() : kMetricNameLen - 1;
  return std::strncmp(slot_name, name.data(), n) == 0 && slot_name[n] == '\0';
}

// Claims a free slot or finds a live one with this name. The state word is
// the synchronisation point: kClaiming means another thread is mid-write of
// the name, so spin briefly until it publishes kSlotLive.
template <typename Slot>
Slot* find_or_claim(Slot* slots, u32 capacity, std::string_view name,
                    const std::function<void(Slot*)>& on_claim) {
  for (u32 i = 0; i < capacity; ++i) {
    Slot& s = slots[i];
    u32 state = s.state.load(std::memory_order_acquire);
    if (state == kSlotFree) {
      u32 expected = kSlotFree;
      if (s.state.compare_exchange_strong(expected, kSlotClaiming,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        write_name(s.name, name);
        on_claim(&s);
        s.state.store(kSlotLive, std::memory_order_release);
        return &s;
      }
      state = expected;  // somebody else claimed it; fall through and match
    }
    while (state == kSlotClaiming) {
      state = s.state.load(std::memory_order_acquire);
    }
    if (state == kSlotLive && name_matches(s.name, name)) return &s;
  }
  return nullptr;  // registry full
}

}  // namespace

void Histogram::add(u64 value) {
  if (!slot_) return;
  slot_->buckets[hist::bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  slot_->count.fetch_add(1, std::memory_order_relaxed);
  slot_->sum.fetch_add(value, std::memory_order_relaxed);
  // min/max via CAS: cold enough (one histogram add is already several
  // atomics) that the loop does not matter.
  u64 cur = slot_->min.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot_->min.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
  }
  cur = slot_->max.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot_->max.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
  }
}

MetricSlot* MetricsRegistry::scalar_slot(std::string_view name, MetricType type) {
  if (!layout_.valid()) return nullptr;
  MetricSlot* slot = find_or_claim<MetricSlot>(
      layout_.scalars, layout_.header->scalar_capacity, name,
      [type](MetricSlot* s) { s->type = static_cast<u32>(type); });
  // A name registered under a different type is a bug in the caller; hand
  // back an inert handle rather than corrupting the other metric.
  if (slot && slot->type != static_cast<u32>(type)) return nullptr;
  return slot;
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  if (!layout_.valid()) return Histogram();
  HistogramSlot* slot = find_or_claim<HistogramSlot>(
      layout_.histograms, layout_.header->histogram_capacity, name,
      [](HistogramSlot*) {});
  return Histogram(slot);
}

void MetricsRegistry::visit_scalars(
    const std::function<void(const MetricSlot&)>& fn) const {
  if (!layout_.valid()) return;
  for (u32 i = 0; i < layout_.header->scalar_capacity; ++i) {
    const MetricSlot& s = layout_.scalars[i];
    if (s.state.load(std::memory_order_acquire) == kSlotLive) fn(s);
  }
}

void MetricsRegistry::visit_histograms(
    const std::function<void(const HistogramSlot&)>& fn) const {
  if (!layout_.valid()) return;
  for (u32 i = 0; i < layout_.header->histogram_capacity; ++i) {
    const HistogramSlot& s = layout_.histograms[i];
    if (s.state.load(std::memory_order_acquire) == kSlotLive) fn(s);
  }
}

usize MetricsRegistry::scalar_count() const {
  usize n = 0;
  visit_scalars([&n](const MetricSlot&) { ++n; });
  return n;
}

usize MetricsRegistry::histogram_count() const {
  usize n = 0;
  visit_histograms([&n](const HistogramSlot&) { ++n; });
  return n;
}

}  // namespace teeperf::obs
