#include "obs/session.h"

#include <unistd.h>

#include <atomic>

#include "faultsim/fault.h"
#include "obs/metric_names.h"

namespace teeperf::obs {

std::unique_ptr<SelfTelemetry> SelfTelemetry::create(
    const TelemetryOptions& options) {
  auto t = std::unique_ptr<SelfTelemetry>(new SelfTelemetry());
  usize bytes = ObsLayout::bytes_for(options.scalar_capacity,
                                     options.histogram_capacity,
                                     options.journal_capacity);
  bool ok = options.shm_name.empty() ? t->shm_.create_anonymous(bytes)
                                     : t->shm_.create(options.shm_name, bytes);
  if (!ok) return nullptr;
  ObsLayout layout;
  if (!ObsLayout::format(t->shm_.data(), bytes, options.scalar_capacity,
                         options.histogram_capacity, options.journal_capacity,
                         static_cast<u64>(getpid()), &layout)) {
    return nullptr;
  }
  t->registry_ = MetricsRegistry(layout);
  t->journal_ = EventJournal(layout);
  return t;
}

std::unique_ptr<SelfTelemetry> SelfTelemetry::open(const std::string& shm_name) {
  auto t = std::unique_ptr<SelfTelemetry>(new SelfTelemetry());
  if (!t->shm_.open(shm_name)) return nullptr;
  ObsLayout layout;
  if (!ObsLayout::map(t->shm_.data(), t->shm_.size(), &layout)) return nullptr;
  t->registry_ = MetricsRegistry(layout);
  t->journal_ = EventJournal(layout);
  return t;
}

namespace {
std::atomic<SelfTelemetry*> g_telemetry{nullptr};
std::atomic<u64> g_epoch{0};
}  // namespace

void install(SelfTelemetry* t) {
  g_telemetry.store(t, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  // Bridge external fault arming through the obs region: an out-of-process
  // controller (teeperf_stats --arm) sets gauge "fault.arm.<point>" to N and
  // the watchdog's poll_external() turns that into a local nth=N arm. The
  // callbacks read through telemetry() so a torn-down region goes inert.
  fault::Registry::instance().set_external(
      [](const std::string& name) -> u64 {
        SelfTelemetry* tel = telemetry();
        return tel ? tel->registry().gauge(metric_names::kFaultArmPrefix + name).value() : 0;
      },
      [](const std::string& name) {
        if (SelfTelemetry* tel = telemetry()) {
          tel->registry().gauge(metric_names::kFaultArmPrefix + name).set(0);
        }
      });
}

void uninstall(SelfTelemetry* t) {
  // Only the installer may uninstall: a second Recorder created while the
  // first is live does not get to tear down the first one's telemetry.
  SelfTelemetry* expected = t;
  if (g_telemetry.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    g_epoch.fetch_add(1, std::memory_order_acq_rel);
    fault::Registry::instance().clear_external();
  }
}

SelfTelemetry* telemetry() { return g_telemetry.load(std::memory_order_acquire); }

u64 telemetry_epoch() { return g_epoch.load(std::memory_order_acquire); }

void journal_event(EventType type, u64 arg0, u64 arg1, std::string_view detail,
                   u32 tid) {
  if (SelfTelemetry* t = telemetry()) {
    t->journal().record(type, arg0, arg1, detail, tid);
  }
}

}  // namespace teeperf::obs
