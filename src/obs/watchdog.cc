#include "obs/watchdog.h"

#include <chrono>
#include <cmath>

#include "common/spin.h"
#include "common/stringutil.h"
#include "faultsim/fault.h"
#include "obs/metric_names.h"

namespace teeperf::obs {

// ns/tick is published in picoseconds so sub-nanosecond tick rates (a fast
// software counter on an idle core) survive the integer gauge.
static u64 to_pico(double ns_per_tick) {
  double p = ns_per_tick * 1000.0;
  return p > 0 ? static_cast<u64>(p) : 0;
}

Watchdog::Watchdog(MetricsRegistry* registry, EventJournal* journal,
                   std::function<u64()> read_counter, std::string mode_name,
                   WatchdogOptions options)
    : registry_(registry),
      journal_(journal),
      read_counter_(std::move(read_counter)),
      mode_name_(std::move(mode_name)),
      options_(options) {
  wd_ticks_ = registry_->counter(metric_names::kWatchdogTicks);
  stall_events_ = registry_->counter(metric_names::kWatchdogStallEvents);
  drift_events_ = registry_->counter(metric_names::kWatchdogDriftEvents);
  backjump_events_ = registry_->counter(metric_names::kWatchdogBackjumpEvents);
  g_ns_per_tick_ = registry_->gauge(metric_names::kCounterNsPerTickPico);
  g_stalled_ = registry_->gauge(metric_names::kCounterStalled);
  g_drifting_ = registry_->gauge(metric_names::kCounterDrifting);
  h_ns_per_tick_ = registry_->histogram(metric_names::kCounterNsPerTickPico);
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::watch_log(std::function<LogSample()> sample_log) {
  sample_log_ = std::move(sample_log);
  g_tail_ = registry_->gauge(metric_names::kLogTail);
  g_occupancy_ = registry_->gauge(metric_names::kLogOccupancyPermille);
  g_rate_ = registry_->gauge(metric_names::kLogEntryRatePerS);
  g_peak_rate_ = registry_->gauge(metric_names::kLogEntryRatePeakPerS);
  g_dropped_ = registry_->gauge(metric_names::kLogDropped);
  g_wraps_ = registry_->gauge(metric_names::kLogRingWraps);
  g_active_ = registry_->gauge(metric_names::kLogActive);
}

void Watchdog::watch_replicas(std::function<ReplicaSample()> sample_replicas) {
  sample_replicas_ = std::move(sample_replicas);
  g_replicas_ = registry_->gauge(metric_names::kCounterReplicas);
  g_replica_primary_ = registry_->gauge(metric_names::kCounterReplicaPrimary);
  g_replica_drift_ = registry_->gauge(metric_names::kCounterReplicaDrift);
  g_replica_stalled_ = registry_->gauge(metric_names::kCounterReplicaStalled);
  g_failover_ = registry_->gauge(metric_names::kCounterFailover);
}

void Watchdog::start() {
  if (running_) return;
  stop_requested_ = false;
  last_counter_ = read_counter_ ? read_counter_() : 0;
  last_ns_ = monotonic_ns();
  last_tail_ns_ = last_ns_;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void Watchdog::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

void Watchdog::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
    if (stop_requested_) break;
    u64 now = monotonic_ns();
    observe_counter(now);
    observe_log();
    observe_replicas();
    // Pick up fault arms published through the obs region by an external
    // controller (see obs/session.cc). No-op unless a bridge is installed.
    fault::Registry::instance().poll_external();
    wd_ticks_.inc();
  }
}

void Watchdog::observe_counter(u64 now_ns) {
  if (!read_counter_) return;
  u64 c = read_counter_();
  if (c < last_counter_) {
    // Backjump: the counter word moved backwards (tampered or wrapped time
    // source). The unsigned delta below used to wrap to ~2^64 here and feed
    // a near-zero ns/tick into the drift baseline, poisoning every later
    // comparison — so this window is excluded from ns/tick and baseline
    // entirely and journaled as its own event class.
    backjump_events_.inc();
    journal_->record(EventType::kCounterBackjump, c, last_counter_,
                     mode_name_);
    if (stalled_) {
      stalled_ = false;
      g_stalled_.set(0);
      journal_->record(EventType::kCounterRecover, c, now_ns - stall_start_ns_,
                       mode_name_);
    }
    zero_windows_ = 0;
    last_counter_ = c;
    last_ns_ = now_ns;
    return;
  }
  u64 dc = c - last_counter_;
  u64 dt = now_ns - last_ns_;
  last_counter_ = c;
  last_ns_ = now_ns;
  if (dt == 0) return;

  if (dc == 0) {
    if (zero_windows_ == 0) stall_start_ns_ = now_ns - dt;
    ++zero_windows_;
    if (!stalled_ && zero_windows_ >= options_.stall_windows) {
      stalled_ = true;
      g_stalled_.set(1);
      stall_events_.inc();
      journal_->record(EventType::kCounterStall, c, now_ns - stall_start_ns_,
                       mode_name_);
    }
    return;
  }

  if (stalled_) {
    stalled_ = false;
    g_stalled_.set(0);
    journal_->record(EventType::kCounterRecover, c, now_ns - stall_start_ns_,
                     mode_name_);
  }
  zero_windows_ = 0;

  ns_per_tick_ = static_cast<double>(dt) / static_cast<double>(dc);
  g_ns_per_tick_.set(to_pico(ns_per_tick_));
  h_ns_per_tick_.add(to_pico(ns_per_tick_));

  if (baseline_samples_ < options_.calibration_windows) {
    // Running mean over the calibration windows.
    baseline_ = (baseline_ * baseline_samples_ + ns_per_tick_) /
                (baseline_samples_ + 1);
    ++baseline_samples_;
    return;
  }
  double deviation = std::abs(ns_per_tick_ - baseline_) / baseline_;
  if (deviation > options_.drift_threshold) {
    if (!drifting_) {
      // One event per drift episode; the gauge carries the live state.
      drifting_ = true;
      g_drifting_.set(1);
      drift_events_.inc();
      journal_->record(EventType::kCounterDrift, to_pico(ns_per_tick_),
                       to_pico(baseline_), mode_name_);
    }
  } else if (drifting_) {
    drifting_ = false;
    g_drifting_.set(0);
  }
}

void Watchdog::observe_log() {
  if (!sample_log_) return;
  LogSample s = sample_log_();
  u64 now = monotonic_ns();
  u64 written = s.tail < s.capacity ? s.tail : s.capacity;
  g_tail_.set(s.tail);
  g_active_.set(s.active ? 1 : 0);
  if (s.capacity > 0) g_occupancy_.set(written * 1000 / s.capacity);
  if (!s.shard_tails.empty()) {
    // Sharded (v2) log: per-shard tails let a scraper spot one hot thread
    // saturating its shard while aggregate occupancy still looks low. Only
    // the first 16 shards get individual gauges (registry space is finite);
    // the aggregate tail above always covers all of them.
    registry_->gauge(metric_names::kLogShards).set(s.shard_tails.size());
    for (usize i = 0; i < s.shard_tails.size() && i < 16; ++i) {
      registry_->gauge(str_format(metric_names::kLogShardTailFmt, i))
          .set(s.shard_tails[i]);
    }
  }
  // Both layouts keep their drop counter in the shared region (the v1
  // header word, the v2 shard counters), so the gauge reflects app-side
  // drops even when the watchdog runs in the recorder process.
  if (s.dropped > 0) g_dropped_.set(s.dropped);

  if (now > last_tail_ns_ && s.tail >= last_tail_) {
    double rate = static_cast<double>(s.tail - last_tail_) * 1e9 /
                  static_cast<double>(now - last_tail_ns_);
    g_rate_.set(static_cast<u64>(rate));
    if (rate > peak_rate_) {
      peak_rate_ = rate;
      g_peak_rate_.set(static_cast<u64>(rate));
    }
  }
  last_tail_ = s.tail;
  last_tail_ns_ = now;

  if (s.spill) {
    // Spill sessions run the tail past capacity by design (the drainer
    // reclaims the space), so wrap/saturation alarms don't apply; drainer
    // health is the signal instead.
    if (!drain_gauges_ready_) {
      drain_gauges_ready_ = true;
      g_drain_lag_ = registry_->gauge(metric_names::kDrainLagEntries);
      g_drain_spilled_ = registry_->gauge(metric_names::kDrainSpilledBytes);
      g_drain_stall_ = registry_->gauge(metric_names::kDrainStall);
    }
    g_drain_lag_.set(s.drain_lag);
    g_drain_spilled_.set(s.drain_spilled_bytes);
    // Stall: consumable work published but the drained total not moving —
    // a dead or wedged drainer. Writers are about to block on the space
    // wait and then start force-dropping, so this alarms ahead of loss.
    if (s.drain_lag > 0 && s.drained_entries == last_drained_) {
      ++drain_idle_windows_;
      if (!drain_stalled_ && drain_idle_windows_ >= options_.stall_windows) {
        drain_stalled_ = true;
        g_drain_stall_.set(1);
        journal_->record(EventType::kDrainStall, s.drain_lag,
                         s.drained_entries);
      }
    } else {
      if (drain_stalled_) {
        drain_stalled_ = false;
        g_drain_stall_.set(0);
      }
      drain_idle_windows_ = 0;
    }
    last_drained_ = s.drained_entries;
    return;
  }

  if (s.capacity == 0 || s.tail <= s.capacity) return;
  if (s.ring) {
    u64 wraps = s.tail / s.capacity;
    if (wraps > wraps_seen_) {
      wraps_seen_ = wraps;
      g_wraps_.set(wraps);
      journal_->record(EventType::kRingWrap, wraps);
    }
  } else if (!saturation_reported_) {
    // The drop gauge above already carries the precise count (shm-resident
    // for v1 too, since the counter moved into the header); the journal
    // event marks the first moment of saturation.
    saturation_reported_ = true;
    journal_->record(EventType::kLogSaturated, s.tail, s.capacity);
  }
}

void Watchdog::observe_replicas() {
  if (!sample_replicas_) return;
  ReplicaSample s = sample_replicas_();
  g_replicas_.set(s.replicas);
  g_replica_primary_.set(s.primary);
  g_replica_drift_.set(s.drift_permille);
  g_replica_stalled_.set(s.stalled_replicas);
  g_failover_.set(s.failovers);
}

}  // namespace teeperf::obs
