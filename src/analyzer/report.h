// Text report writers: the sorted per-method summary the paper's analyzer
// prints, plus a call-graph edge listing.
#pragma once

#include <string>

#include "analyzer/mprof.h"
#include "analyzer/profile.h"

namespace teeperf::analyzer {

// Sorted method table: exclusive/inclusive time (ticks and, when the tick
// rate is known, milliseconds), call counts, min/mean/max.
std::string method_report(const Profile& profile, usize limit = 30);

// Caller→callee edges sorted by call count.
std::string call_graph_report(const Profile& profile, usize limit = 30);

// One-line health summary of the reconstruction (entry count, threads,
// defects) — worth printing before trusting any numbers.
std::string recon_summary(const Profile& profile);

// Per-thread rollup: invocations, inclusive root time, busiest method.
std::string thread_report(const Profile& profile);

// Machine-readable export of every invocation:
// method,tid,depth,start,end,inclusive,exclusive,calls_made,complete
std::string csv_export(const Profile& profile);

// Compares two profiles of the same workload (e.g. before/after an
// optimization, the §IV-C workflow): per-method exclusive time side by
// side with the delta, sorted by absolute delta.
std::string diff_report(const Profile& before, const Profile& after,
                        usize limit = 30);

// Top-down call tree: the merged dynamic call tree with inclusive time and
// percentage per node, indented — the textual twin of the flame graph.
// Nodes below `min_fraction` of the total are folded into "(other)".
std::string call_tree_report(const Profile& profile, double min_fraction = 0.005);

// Per-thread timeline of invocation intervals as CSV
// (tid,method,start,end,depth) sorted by start — importable into external
// trace viewers.
std::string timeline_csv(const Profile& profile);

// Chrome trace-event JSON ("X" complete events, ts/dur in µs): load in
// chrome://tracing or Perfetto. Uses the profile's tick→ns conversion.
std::string chrome_trace_json(const Profile& profile);

// Recorder-health section: folds the "<prefix>.health" snapshot and
// "<prefix>.events.jsonl" journal sidecars (written by the recorder's
// self-telemetry at dump time) into the report, with degradation warnings
// distilled from the event stream (counter stalls/drift, log saturation,
// torn tails, EPC pressure). Empty string when no sidecars exist, so
// callers can print it unconditionally.
std::string health_report(const std::string& prefix);

// gprof-style flat profile (the related-work §V comparison): %time,
// cumulative/self seconds, calls, per-call costs, name.
std::string gprof_flat_report(const Profile& profile, usize limit = 30);

// Sorted method table rendered from a mergeable aggregate (DESIGN.md §12) —
// the multi-GB / multi-session twin of method_report: same columns, fed by
// `.mprof` rollups instead of materialized invocations.
std::string mprof_method_report(const MergeableProfile& m, usize limit = 30);

// Session/health summary of a mergeable aggregate: sessions folded in,
// entries, threads, reconstruction defects, distinct methods/edges/stacks.
std::string mprof_summary(const MergeableProfile& m);

// Bottom-up view: for each of the top `leaf_limit` methods by exclusive
// time, the callers that reach it with their share — perf report's
// inverted call graph, for answering "who is responsible for the time in
// X" when X is called from many places.
std::string bottom_up_report(const Profile& profile, usize leaf_limit = 10,
                             usize callers_per_leaf = 5);

}  // namespace teeperf::analyzer
