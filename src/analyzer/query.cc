#include "analyzer/query.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/stringutil.h"

namespace teeperf::analyzer {

InvocationTable::InvocationTable(const Profile& profile) : profile_(&profile) {
  rows_.resize(profile.invocations().size());
  std::iota(rows_.begin(), rows_.end(), usize{0});
}

InvocationTable::InvocationTable(const Profile& profile, std::vector<usize> rows)
    : profile_(&profile), rows_(std::move(rows)) {}

const Invocation& InvocationTable::row(usize i) const {
  return profile_->invocations()[rows_[i]];
}

InvocationTable InvocationTable::filter(
    const std::function<bool(const Invocation&)>& pred) const {
  std::vector<usize> kept;
  for (usize r : rows_) {
    if (pred(profile_->invocations()[r])) kept.push_back(r);
  }
  return InvocationTable(*profile_, std::move(kept));
}

InvocationTable InvocationTable::where_method(u64 method) const {
  return filter([method](const Invocation& i) { return i.method == method; });
}

InvocationTable InvocationTable::where_name_contains(const std::string& needle) const {
  return filter([this, &needle](const Invocation& i) {
    return profile_->name(i.method).find(needle) != std::string::npos;
  });
}

InvocationTable InvocationTable::where_tid(u64 tid) const {
  return filter([tid](const Invocation& i) { return i.tid == tid; });
}

InvocationTable InvocationTable::where_depth_between(u32 lo, u32 hi) const {
  return filter([lo, hi](const Invocation& i) { return i.depth >= lo && i.depth <= hi; });
}

InvocationTable InvocationTable::where_min_inclusive(u64 ticks) const {
  return filter([ticks](const Invocation& i) { return i.inclusive() >= ticks; });
}

InvocationTable InvocationTable::complete_only() const {
  return filter([](const Invocation& i) { return i.complete; });
}

InvocationTable InvocationTable::where_called_under(u64 ancestor_method) const {
  const auto& all = profile_->invocations();
  return filter([&all, ancestor_method](const Invocation& i) {
    for (i64 p = i.parent; p >= 0; p = all[static_cast<usize>(p)].parent) {
      if (all[static_cast<usize>(p)].method == ancestor_method) return true;
    }
    return false;
  });
}

InvocationTable InvocationTable::sort_by(SortKey key, bool descending) const {
  std::vector<usize> sorted = rows_;
  const auto& all = profile_->invocations();
  auto value = [key](const Invocation& i) -> u64 {
    switch (key) {
      case SortKey::kInclusive: return i.inclusive();
      case SortKey::kExclusive: return i.exclusive();
      case SortKey::kStart: return i.start;
      case SortKey::kDepth: return i.depth;
      case SortKey::kCallsMade: return i.calls_made;
    }
    return 0;
  };
  std::stable_sort(sorted.begin(), sorted.end(), [&](usize a, usize b) {
    u64 va = value(all[a]), vb = value(all[b]);
    return descending ? va > vb : va < vb;
  });
  return InvocationTable(*profile_, std::move(sorted));
}

InvocationTable InvocationTable::top(usize n) const {
  std::vector<usize> head(rows_.begin(),
                          rows_.begin() + static_cast<isize>(std::min(n, rows_.size())));
  return InvocationTable(*profile_, std::move(head));
}

u64 InvocationTable::sum_inclusive() const {
  u64 s = 0;
  for (usize r : rows_) s += profile_->invocations()[r].inclusive();
  return s;
}

u64 InvocationTable::sum_exclusive() const {
  u64 s = 0;
  for (usize r : rows_) s += profile_->invocations()[r].exclusive();
  return s;
}

double InvocationTable::mean_inclusive() const {
  return rows_.empty() ? 0.0
                       : static_cast<double>(sum_inclusive()) /
                             static_cast<double>(rows_.size());
}

u64 InvocationTable::max_inclusive() const {
  u64 m = 0;
  for (usize r : rows_) m = std::max(m, profile_->invocations()[r].inclusive());
  return m;
}

std::vector<InvocationTable::Group> InvocationTable::group_by(
    const std::function<std::string(const Invocation&)>& key_fn) const {
  std::unordered_map<std::string, Group> groups;
  for (usize r : rows_) {
    const Invocation& i = profile_->invocations()[r];
    std::string k = key_fn(i);
    Group& g = groups[k];
    g.key = k;
    ++g.count;
    g.inclusive_total += i.inclusive();
    g.exclusive_total += i.exclusive();
  }
  std::vector<Group> out;
  out.reserve(groups.size());
  for (auto& [k, g] : groups) {
    (void)k;
    out.push_back(std::move(g));
  }
  std::sort(out.begin(), out.end(), [](const Group& a, const Group& b) {
    return a.exclusive_total > b.exclusive_total;
  });
  return out;
}

std::vector<InvocationTable::Group> InvocationTable::group_by_method() const {
  return group_by([this](const Invocation& i) { return profile_->name(i.method); });
}

std::vector<InvocationTable::Group> InvocationTable::group_by_tid() const {
  return group_by([](const Invocation& i) {
    return str_format("tid=%llu", static_cast<unsigned long long>(i.tid));
  });
}

std::vector<InvocationTable::Group> InvocationTable::group_by_method_and_tid() const {
  return group_by([this](const Invocation& i) {
    return str_format("tid=%llu %s", static_cast<unsigned long long>(i.tid),
                      profile_->name(i.method).c_str());
  });
}

std::vector<InvocationTable::Group> InvocationTable::group_by_caller() const {
  const auto& all = profile_->invocations();
  return group_by([this, &all](const Invocation& i) {
    if (i.parent < 0) return std::string("<root>");
    return profile_->name(all[static_cast<usize>(i.parent)].method);
  });
}

std::string InvocationTable::to_string(usize limit) const {
  std::string out = str_format("%-48s %6s %5s %14s %14s %9s\n", "method", "tid",
                               "depth", "inclusive", "exclusive", "complete");
  usize shown = 0;
  for (usize r : rows_) {
    if (shown++ >= limit) {
      out += str_format("... (%zu more rows)\n", rows_.size() - limit);
      break;
    }
    const Invocation& i = profile_->invocations()[r];
    out += str_format("%-48s %6llu %5u %14llu %14llu %9s\n",
                      ellipsize(profile_->name(i.method), 48).c_str(),
                      static_cast<unsigned long long>(i.tid), i.depth,
                      static_cast<unsigned long long>(i.inclusive()),
                      static_cast<unsigned long long>(i.exclusive()),
                      i.complete ? "yes" : "no");
  }
  return out;
}

}  // namespace teeperf::analyzer
