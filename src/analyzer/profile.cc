#include "analyzer/profile.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <thread>

#include "analyzer/dump_reader.h"
#include "common/fileutil.h"
#include "common/stringutil.h"
#include "core/symbol_registry.h"
#include "drain/chunk_format.h"

namespace teeperf::analyzer {

std::optional<Profile> Profile::load_bytes(
    std::string_view log_bytes, std::unordered_map<u64, std::string> symbols) {
  auto dump = parse_dump(log_bytes);
  if (!dump) return std::nullopt;
  if (dump->single()) {  // parse_dump always yields >= 1 window
    const std::vector<LogEntry>& e = dump->shards[0];
    return build(e.data(), e.size(), std::move(symbols), dump->ns_per_tick);
  }
  return build_sharded(dump->shards, std::move(symbols), dump->ns_per_tick);
}

std::optional<Profile> Profile::load(const std::string& prefix) {
  if (file_exists(drain::chunk_path(prefix, 0))) return load_spill(prefix);
  auto raw = read_file(prefix + ".log");
  if (!raw) return std::nullopt;
  std::unordered_map<u64, std::string> symbols;
  if (auto sym = read_file(prefix + ".sym")) symbols = SymbolRegistry::parse(*sym);
  return load_bytes(*raw, std::move(symbols));
}

std::optional<Profile> Profile::load_spill(const std::string& prefix) {
  std::unordered_map<u64, std::string> symbols;
  if (auto sym = read_file(prefix + ".sym")) symbols = SymbolRegistry::parse(*sym);

  // Per-shard streams stitched by the shared SpillStitcher (dump_reader.h):
  // windows arrive in cursor order (chunks in sequence, residue last) and
  // every deduplicated span is appended to its shard's stream. The streaming
  // analyzer (stream.cc) walks the very same chunk sequence but feeds the
  // spans into rolling reconstruction state instead of vectors.
  std::vector<std::vector<LogEntry>> streams;
  SpillStitcher stitcher;
  auto append = [&](u32 s, const LogEntry* e, u64 n) {
    streams[s].insert(streams[s].end(), e, e + n);
  };
  auto absorb = [&](const ParsedDump& pd) -> bool {
    if (streams.empty()) streams.resize(pd.shards.size());
    return stitcher.absorb(pd, append);
  };

  bool bad = false;
  drain::ChunkScan scan = drain::for_each_chunk(
      prefix, [&](u32, std::string_view payload) {
        auto pd = parse_dump(payload);
        if (!pd || !absorb(*pd)) {
          bad = true;
          return false;
        }
        return true;
      });
  if (bad || scan == drain::ChunkScan::kCorrupt) return std::nullopt;

  // The final residue dump — optional: a session killed before dump time
  // still analyzes from its chunks alone.
  if (auto raw = read_file(prefix + ".log")) {
    auto pd = parse_dump(*raw);
    if (!pd || !absorb(*pd)) return std::nullopt;
  }

  if (streams.empty()) return std::nullopt;
  if (streams.size() == 1) {
    return build(streams[0].data(), streams[0].size(), std::move(symbols),
                 stitcher.ns_per_tick());
  }
  return build_sharded(streams, std::move(symbols), stitcher.ns_per_tick());
}

Profile Profile::from_log(const ProfileLog& log,
                          std::unordered_map<u64, std::string> symbols,
                          double ns_per_tick) {
  if (!log.valid()) return Profile{};
  if (ns_per_tick == 0.0) ns_per_tick = log.header()->ns_per_tick;
  if (log.sharded()) {
    std::vector<std::vector<LogEntry>> shards(log.shard_count());
    for (u32 s = 0; s < log.shard_count(); ++s) log.shard_snapshot(s, &shards[s]);
    if (shards.size() == 1) {
      return build(shards[0].data(), shards[0].size(), std::move(symbols),
                   ns_per_tick);
    }
    return build_sharded(shards, std::move(symbols), ns_per_tick);
  }
  u64 tail = log.header()->tail.load(std::memory_order_acquire);
  if ((log.flags() & log_flags::kRingBuffer) && tail > log.capacity()) {
    // Wrapped ring: rebuild oldest→newest order first.
    std::vector<LogEntry> ordered;
    log.snapshot_ordered(&ordered);
    return build(ordered.data(), ordered.size(), std::move(symbols), ns_per_tick);
  }
  return build(&log.entry(0), log.size(), std::move(symbols), ns_per_tick);
}

Profile Profile::from_entries(const LogEntry* entries, u64 n,
                              std::unordered_map<u64, std::string> symbols,
                              double ns_per_tick) {
  return build(entries, n, std::move(symbols), ns_per_tick);
}

Profile Profile::build_sharded(const std::vector<std::vector<LogEntry>>& shards,
                               std::unordered_map<u64, std::string> symbols,
                               double ns_per_tick) {
  // One reconstruction per shard, run by a small worker pool. Safe because
  // a thread's entries are confined to one shard (tid % shard_count), so no
  // call stack spans windows; deterministic because the merge below walks
  // shards in directory order regardless of which worker finished when.
  std::vector<Profile> parts(shards.size());
  u32 hw = std::thread::hardware_concurrency();
  usize workers = std::min<usize>(hw == 0 ? 1 : hw, shards.size());
  std::atomic<usize> next{0};
  auto work = [&] {
    for (usize s; (s = next.fetch_add(1, std::memory_order_relaxed)) <
                  shards.size();) {
      parts[s] = build(shards[s].data(), shards[s].size(), {}, ns_per_tick);
    }
  };
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (usize w = 1; w < workers; ++w) pool.emplace_back(work);
    work();
    for (auto& t : pool) t.join();
  }

  // Merge in shard order. Method ids and tids mean the same thing in every
  // shard (same process, same address space), so — unlike load_many's
  // cross-process rekeying — only the parent indices need rebasing.
  Profile merged;
  merged.symbols_ = std::move(symbols);
  merged.ns_per_tick_ = ns_per_tick;
  for (Profile& part : parts) {
    usize base = merged.invocations_.size();
    for (const Invocation& inv : part.invocations_) {
      Invocation copy = inv;
      if (copy.parent >= 0) copy.parent += static_cast<i64>(base);
      merged.invocations_.push_back(copy);
    }
    merged.recon_.entries += part.recon_.entries;
    merged.recon_.stray_returns += part.recon_.stray_returns;
    merged.recon_.mismatched_returns += part.recon_.mismatched_returns;
    merged.recon_.unwound_frames += part.recon_.unwound_frames;
    merged.recon_.incomplete += part.recon_.incomplete;
    merged.recon_.tombstones += part.recon_.tombstones;
    // tid % shard_count confines a thread to one shard, so per-part thread
    // counts are disjoint and sum exactly.
    merged.thread_count_ += part.thread_count_;
  }
  return merged;
}

Profile Profile::build(const LogEntry* entries, u64 n,
                       std::unordered_map<u64, std::string> symbols,
                       double ns_per_tick) {
  Profile p;
  p.symbols_ = std::move(symbols);
  p.ns_per_tick_ = ns_per_tick;
  p.recon_.entries = n;

  // Per-thread reconstruction state. Only per-thread order is guaranteed by
  // the lock-free log, and only per-thread order is used (§II-C).
  struct ThreadRecon {
    std::vector<usize> open;  // indices into p.invocations_
    u64 last_counter = 0;
  };
  std::map<u64, ThreadRecon> threads;  // ordered so output is deterministic

  for (u64 i = 0; i < n; ++i) {
    const LogEntry& e = entries[i];
    // Skip tombstones: all-zero slots a writer reserved (tail moved past
    // them) but never filled because it died between the fetch-and-add and
    // the stores. Treating one as a call would invent a phantom invocation
    // of method 0 on thread 0.
    if (e.kind_and_counter == 0 && e.addr == 0 && e.tid == 0 && e.reserved == 0) {
      ++p.recon_.tombstones;
      continue;
    }
    ThreadRecon& t = threads[e.tid];
    t.last_counter = e.counter();

    if (e.kind() == EventKind::kCall) {
      Invocation inv;
      inv.method = e.addr;
      inv.tid = e.tid;
      inv.start = e.counter();
      inv.depth = static_cast<u32>(t.open.size());
      inv.parent = t.open.empty() ? -1 : static_cast<i64>(t.open.back());
      usize index = p.invocations_.size();
      if (!t.open.empty()) ++p.invocations_[t.open.back()].calls_made;
      p.invocations_.push_back(inv);
      t.open.push_back(index);
      continue;
    }

    // Return: close the matching frame. The common case is the top of
    // stack; a mismatch means enters were dropped (filtering, log overflow)
    // and is repaired by unwinding to the nearest matching frame.
    if (t.open.empty()) {
      ++p.recon_.stray_returns;
      continue;
    }
    usize match = t.open.size();
    for (usize k = t.open.size(); k-- > 0;) {
      if (p.invocations_[t.open[k]].method == e.addr) {
        match = k;
        break;
      }
    }
    if (match == t.open.size()) {
      ++p.recon_.mismatched_returns;
      continue;
    }
    while (t.open.size() > match) {
      usize idx = t.open.back();
      t.open.pop_back();
      Invocation& inv = p.invocations_[idx];
      // Clamp against a non-monotonic counter (a broken or tampered time
      // source must yield zero durations, not u64 underflow).
      inv.end = std::max(e.counter(), inv.start);
      if (t.open.size() != match) ++p.recon_.unwound_frames;
      if (inv.parent >= 0) {
        p.invocations_[static_cast<usize>(inv.parent)].children += inv.inclusive();
      }
    }
  }

  // Close whatever is still open with the thread's last observed counter;
  // those invocations are flagged incomplete.
  for (auto& [tid, t] : threads) {
    (void)tid;
    while (!t.open.empty()) {
      usize idx = t.open.back();
      t.open.pop_back();
      Invocation& inv = p.invocations_[idx];
      inv.end = std::max(t.last_counter, inv.start);
      inv.complete = false;
      ++p.recon_.incomplete;
      if (inv.parent >= 0) {
        p.invocations_[static_cast<usize>(inv.parent)].children += inv.inclusive();
      }
    }
  }

  p.thread_count_ = threads.size();
  return p;
}

std::string resolve_name(const std::unordered_map<u64, std::string>& symbols,
                         u64 method) {
  auto it = symbols.find(method);
  if (it != symbols.end()) return it->second;
  // Fall back to the live registry (in-process analysis without a .sym file).
  std::string live = SymbolRegistry::instance().name_of(method);
  if (!live.empty()) return live;
  return str_format("0x%llx", static_cast<unsigned long long>(method));
}

std::string Profile::name(u64 method) const {
  return resolve_name(symbols_, method);
}

std::vector<MethodStats> Profile::method_stats() const {
  std::unordered_map<u64, MethodStats> by_method;
  for (const Invocation& inv : invocations_) {
    MethodStats& s = by_method[inv.method];
    s.method = inv.method;
    ++s.count;
    s.inclusive_total += inv.inclusive();
    s.exclusive_total += inv.exclusive();
    s.min_inclusive = std::min(s.min_inclusive, inv.inclusive());
    s.max_inclusive = std::max(s.max_inclusive, inv.inclusive());
  }
  std::vector<MethodStats> out;
  out.reserve(by_method.size());
  for (auto& [id, s] : by_method) {
    (void)id;
    out.push_back(s);
  }
  // Tie-break on method id: equal totals are common in synthetic workloads,
  // and the map's iteration order tracks insertion order, which for spilled
  // sessions depends on drainer chunk timing.
  std::sort(out.begin(), out.end(), [](const MethodStats& a, const MethodStats& b) {
    if (a.exclusive_total != b.exclusive_total)
      return a.exclusive_total > b.exclusive_total;
    return a.method < b.method;
  });
  return out;
}

std::vector<CallEdge> Profile::call_edges() const {
  struct Key {
    u64 caller;
    u64 callee;
    bool from_root;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    usize operator()(const Key& k) const {
      return std::hash<u64>{}(k.caller * 1099511628211ull ^ k.callee ^
                              (k.from_root ? 0x9e37ull : 0));
    }
  };
  std::unordered_map<Key, CallEdge, KeyHash> edges;
  for (const Invocation& inv : invocations_) {
    Key k{};
    if (inv.parent < 0) {
      k = Key{0, inv.method, true};
    } else {
      k = Key{invocations_[static_cast<usize>(inv.parent)].method, inv.method, false};
    }
    CallEdge& e = edges[k];
    e.caller = k.caller;
    e.callee = k.callee;
    e.from_root = k.from_root;
    ++e.count;
    e.inclusive_total += inv.inclusive();
  }
  std::vector<CallEdge> out;
  out.reserve(edges.size());
  for (auto& [k, e] : edges) {
    (void)k;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const CallEdge& a, const CallEdge& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.caller != b.caller) return a.caller < b.caller;
    if (a.callee != b.callee) return a.callee < b.callee;
    return a.from_root < b.from_root;
  });
  return out;
}

std::vector<std::pair<std::string, u64>> Profile::folded_stacks() const {
  // Each invocation contributes its *exclusive* time to the stack path
  // root→self, so the flame graph's widths add up exactly to total time.
  std::unordered_map<std::string, u64> folded;
  std::vector<std::string> path_cache(invocations_.size());
  for (usize i = 0; i < invocations_.size(); ++i) {
    const Invocation& inv = invocations_[i];
    std::string path;
    if (inv.parent >= 0) {
      path = path_cache[static_cast<usize>(inv.parent)];
      path += ';';
    }
    path += name(inv.method);
    path_cache[i] = path;
    u64 excl = inv.exclusive();
    if (excl > 0) folded[path] += excl;
  }
  std::vector<std::pair<std::string, u64>> out(folded.begin(), folded.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace teeperf::analyzer

namespace teeperf::analyzer {

std::optional<Profile> Profile::load_many(const std::vector<std::string>& prefixes) {
  Profile merged;
  // Method ids from different processes can collide with different
  // meanings (each process has its own registry / address space), so the
  // merge rekeys every method by its *symbolized name* into a fresh
  // synthetic id space (bit 61 marks merged ids; bit 62 stays set so they
  // remain disjoint from raw addresses).
  std::unordered_map<std::string, u64> ids_by_name;
  u64 next_id = (1ull << 62) | (1ull << 61);
  bool any = false;
  u64 input_index = 0;

  for (const std::string& prefix : prefixes) {
    auto prof = load(prefix);
    ++input_index;
    if (!prof) continue;
    any = true;

    usize base = merged.invocations_.size();
    for (const Invocation& inv : prof->invocations_) {
      Invocation copy = inv;
      copy.tid = (input_index << 32) | inv.tid;  // namespace threads per input
      if (copy.parent >= 0) copy.parent += static_cast<i64>(base);
      std::string name = prof->name(inv.method);
      auto [it, fresh] = ids_by_name.try_emplace(name, next_id);
      if (fresh) {
        merged.symbols_.emplace(next_id, name);
        ++next_id;
      }
      copy.method = it->second;
      merged.invocations_.push_back(copy);
    }

    merged.recon_.entries += prof->recon_.entries;
    merged.recon_.stray_returns += prof->recon_.stray_returns;
    merged.recon_.mismatched_returns += prof->recon_.mismatched_returns;
    merged.recon_.unwound_frames += prof->recon_.unwound_frames;
    merged.recon_.incomplete += prof->recon_.incomplete;
    merged.recon_.tombstones += prof->recon_.tombstones;
    merged.thread_count_ += prof->thread_count_;
    if (merged.ns_per_tick_ == 0.0) merged.ns_per_tick_ = prof->ns_per_tick_;
  }
  if (!any) return std::nullopt;
  return merged;
}

std::pair<std::string, u64> Profile::hottest_stack() const {
  std::pair<std::string, u64> best{"", 0};
  for (const auto& [path, ticks] : folded_stacks()) {
    if (ticks > best.second) best = {path, ticks};
  }
  return best;
}

std::vector<ValidationIssue> Profile::validate(const ProfileLog& log) {
  if (log.sharded()) {
    // The raw v2 entry array has per-shard gaps; validate the canonical
    // per-shard concatenation (per-thread order is what validate checks,
    // and a thread never spans shards).
    std::vector<LogEntry> ordered;
    log.snapshot_ordered(&ordered);
    return validate(ordered.data(), ordered.size());
  }
  return validate(&log.entry(0), log.size());
}

std::optional<std::vector<ValidationIssue>> Profile::validate_file(
    const std::string& prefix) {
  auto raw = read_file(prefix + ".log");
  if (!raw) return std::nullopt;
  auto dump = parse_dump(*raw);
  if (!dump) return std::nullopt;
  std::vector<LogEntry> flat = dump->flatten();
  return validate(flat.data(), flat.size());
}

std::vector<ValidationIssue> Profile::validate(const LogEntry* log_entries, u64 n) {
  std::vector<ValidationIssue> issues;
  struct ThreadCheck {
    u64 last_counter = 0;
    bool has_counter = false;
    i64 depth = 0;
  };
  std::map<u64, ThreadCheck> threads;

  for (u64 i = 0; i < n; ++i) {
    const LogEntry& e = log_entries[i];
    ThreadCheck& t = threads[e.tid];
    if (e.addr == 0) {
      issues.push_back({ValidationIssue::Kind::kZeroAddress, e.tid, i,
                        "entry has null address"});
    }
    if (t.has_counter && e.counter() < t.last_counter) {
      issues.push_back({ValidationIssue::Kind::kNonMonotonicCounter, e.tid, i,
                        str_format("counter %llu after %llu",
                                   static_cast<unsigned long long>(e.counter()),
                                   static_cast<unsigned long long>(t.last_counter))});
    }
    t.last_counter = e.counter();
    t.has_counter = true;
    t.depth += e.kind() == EventKind::kCall ? 1 : -1;
  }
  for (const auto& [tid, t] : threads) {
    if (t.depth != 0) {
      issues.push_back({ValidationIssue::Kind::kUnbalancedThread, tid, n,
                        str_format("calls minus returns = %lld",
                                   static_cast<long long>(t.depth))});
    }
  }
  return issues;
}

}  // namespace teeperf::analyzer
