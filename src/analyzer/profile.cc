#include "analyzer/profile.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <thread>

#include "common/fileutil.h"
#include "common/stringutil.h"
#include "core/symbol_registry.h"
#include "drain/chunk_format.h"

namespace teeperf::analyzer {

namespace {

// A serialized dump copied into properly typed, aligned storage. The raw
// byte buffer guarantees neither alignment nor sanity — reading LogHeader's
// atomics in place would be undefined, and every header field is attacker-
// controlled once dumps come from a hostile host.
struct ParsedDump {
  // One window of entries per shard: v1 dumps parse into a single window,
  // v2 into one per directory entry (possibly empty). A thread's entries
  // live entirely inside one window.
  std::vector<std::vector<LogEntry>> shards;
  // Per-window absolute start cursor, parallel to `shards`: the serialized
  // directory's `drained` field. 0 for v1 dumps and for v2 logs that never
  // drained or wrapped; spill chunks and spill residue dumps record where
  // in the shard's stream each window begins, which is what lets the
  // multi-chunk loader stitch and deduplicate.
  std::vector<u64> starts;
  double ns_per_tick = 0.0;

  bool single() const { return shards.size() <= 1; }
  u64 total() const {
    u64 n = 0;
    for (const auto& s : shards) n += s.size();
    return n;
  }
  // Concatenated windows, for consumers that want one flat span (validate).
  // Per-thread order is preserved: a thread never spans two windows.
  std::vector<LogEntry> flatten() const {
    std::vector<LogEntry> out;
    out.reserve(static_cast<usize>(total()));
    for (const auto& s : shards) out.insert(out.end(), s.begin(), s.end());
    return out;
  }
};

std::optional<ParsedDump> parse_dump(std::string_view bytes) {
  if (bytes.size() < sizeof(LogHeader)) return std::nullopt;
  alignas(LogHeader) unsigned char header_buf[sizeof(LogHeader)];
  std::memcpy(header_buf, bytes.data(), sizeof(LogHeader));
  const auto* h = reinterpret_cast<const LogHeader*>(header_buf);
  if (h->magic != kLogMagic) return std::nullopt;
  if (h->version != kLogVersion && h->version != kLogVersionSharded) {
    return std::nullopt;
  }
  ParsedDump d;
  d.ns_per_tick = h->ns_per_tick;
  if (!std::isfinite(d.ns_per_tick) || d.ns_per_tick < 0.0) d.ns_per_tick = 0.0;

  if (h->version == kLogVersion) {
    // Only complete entries present in the buffer are consumed; a log
    // truncated mid-write simply yields fewer entries (§II-B: the analyzer
    // dismisses records "which might be wrong at the end of the log"). The
    // clamp to `available` also defuses a corrupt tail/max_entries.
    u64 available = (bytes.size() - sizeof(LogHeader)) / sizeof(LogEntry);
    u64 tail = h->tail.load(std::memory_order_relaxed);
    u64 n = std::min({available, tail, h->max_entries});
    d.shards.emplace_back();
    d.starts.push_back(0);
    d.shards[0].resize(static_cast<usize>(n));
    if (n > 0) {
      std::memcpy(d.shards[0].data(), bytes.data() + sizeof(LogHeader),
                  static_cast<usize>(n) * sizeof(LogEntry));
    }
    return d;
  }

  // v2: a shard directory follows the header; every field in it is as
  // attacker-controlled as the header, so each window is independently
  // clamped and the sum of all windows is budgeted against what the file
  // actually holds — a hostile directory of kMaxLogShards overlapping
  // full-size segments must not multiply a small file into gigabytes.
  u32 nshards = h->shard_count;
  if (nshards == 0 || nshards > kMaxLogShards) return std::nullopt;
  usize dir_bytes = static_cast<usize>(nshards) * sizeof(LogShard);
  if (bytes.size() - sizeof(LogHeader) < dir_bytes) return std::nullopt;
  std::vector<LogShard> dir(nshards);
  std::memcpy(static_cast<void*>(dir.data()), bytes.data() + sizeof(LogHeader),
              dir_bytes);

  const char* entry_base = bytes.data() + sizeof(LogHeader) + dir_bytes;
  u64 available = (bytes.size() - sizeof(LogHeader) - dir_bytes) / sizeof(LogEntry);
  u64 budget = available;  // total entries any directory may make us copy
  d.shards.resize(nshards);
  d.starts.resize(nshards, 0);
  for (u32 s = 0; s < nshards; ++s) {
    d.starts[s] = dir[s].drained.load(std::memory_order_relaxed);
    u64 off = dir[s].entry_offset;
    if (off >= available) continue;  // also rejects u64-overflow offsets
    u64 n = dir[s].tail.load(std::memory_order_relaxed);
    // Subtraction form: off + capacity could wrap u64.
    n = std::min({n, dir[s].capacity, available - off, budget});
    budget -= n;
    d.shards[s].resize(static_cast<usize>(n));
    if (n > 0) {
      std::memcpy(d.shards[s].data(), entry_base + off * sizeof(LogEntry),
                  static_cast<usize>(n) * sizeof(LogEntry));
    }
  }
  return d;
}

}  // namespace

std::optional<Profile> Profile::load_bytes(
    std::string_view log_bytes, std::unordered_map<u64, std::string> symbols) {
  auto dump = parse_dump(log_bytes);
  if (!dump) return std::nullopt;
  if (dump->single()) {  // parse_dump always yields >= 1 window
    const std::vector<LogEntry>& e = dump->shards[0];
    return build(e.data(), e.size(), std::move(symbols), dump->ns_per_tick);
  }
  return build_sharded(dump->shards, std::move(symbols), dump->ns_per_tick);
}

std::optional<Profile> Profile::load(const std::string& prefix) {
  if (file_exists(drain::chunk_path(prefix, 0))) return load_spill(prefix);
  auto raw = read_file(prefix + ".log");
  if (!raw) return std::nullopt;
  std::unordered_map<u64, std::string> symbols;
  if (auto sym = read_file(prefix + ".sym")) symbols = SymbolRegistry::parse(*sym);
  return load_bytes(*raw, std::move(symbols));
}

std::optional<Profile> Profile::load_spill(const std::string& prefix) {
  std::unordered_map<u64, std::string> symbols;
  if (auto sym = read_file(prefix + ".sym")) symbols = SymbolRegistry::parse(*sym);

  std::vector<std::string> chunks;
  for (u32 seq = 0;; ++seq) {
    auto raw = read_file(drain::chunk_path(prefix, seq));
    if (!raw) break;
    chunks.push_back(std::move(*raw));
  }

  // Per-shard streams plus the absolute cursor each stream has reached.
  // Windows arrive in cursor order (chunks in sequence, residue last); a
  // window starting below the cursor overlaps what a crashed drainer
  // already persisted and the duplicate prefix is skipped, a window
  // starting above it sits after force-dropped entries (already accounted
  // in the drop counters) and simply appends.
  std::vector<std::vector<LogEntry>> streams;
  std::vector<u64> cursors;
  double ns_per_tick = 0.0;
  auto absorb = [&](const ParsedDump& pd) -> bool {
    if (streams.empty()) {
      streams.resize(pd.shards.size());
      cursors.assign(pd.shards.size(), 0);
    }
    if (pd.shards.size() != streams.size()) return false;
    for (usize s = 0; s < streams.size(); ++s) {
      const std::vector<LogEntry>& win = pd.shards[s];
      u64 start = pd.starts[s];
      u64 skip = 0;
      if (start < cursors[s]) {
        skip = cursors[s] - start;
        if (skip >= win.size()) continue;  // fully duplicate window
      }
      streams[s].insert(streams[s].end(),
                        win.begin() + static_cast<i64>(skip), win.end());
      cursors[s] = start + win.size();
    }
    if (pd.ns_per_tick > 0.0) ns_per_tick = pd.ns_per_tick;
    return true;
  };

  for (usize i = 0; i < chunks.size(); ++i) {
    std::string_view payload;
    if (!drain::parse_chunk(chunks[i], nullptr, &payload, nullptr)) {
      // A torn *trailing* chunk means the drainer died mid-write and never
      // resumed: its window was not marked drained, so the same entries
      // reappear in the residue dump and nothing is lost. A bad chunk
      // followed by good ones cannot come from the protocol — corruption.
      if (i + 1 == chunks.size()) break;
      return std::nullopt;
    }
    auto pd = parse_dump(payload);
    if (!pd || !absorb(*pd)) return std::nullopt;
  }

  // The final residue dump — optional: a session killed before dump time
  // still analyzes from its chunks alone.
  if (auto raw = read_file(prefix + ".log")) {
    auto pd = parse_dump(*raw);
    if (!pd || !absorb(*pd)) return std::nullopt;
  }

  if (streams.empty()) return std::nullopt;
  if (streams.size() == 1) {
    return build(streams[0].data(), streams[0].size(), std::move(symbols),
                 ns_per_tick);
  }
  return build_sharded(streams, std::move(symbols), ns_per_tick);
}

Profile Profile::from_log(const ProfileLog& log,
                          std::unordered_map<u64, std::string> symbols,
                          double ns_per_tick) {
  if (!log.valid()) return Profile{};
  if (ns_per_tick == 0.0) ns_per_tick = log.header()->ns_per_tick;
  if (log.sharded()) {
    std::vector<std::vector<LogEntry>> shards(log.shard_count());
    for (u32 s = 0; s < log.shard_count(); ++s) log.shard_snapshot(s, &shards[s]);
    if (shards.size() == 1) {
      return build(shards[0].data(), shards[0].size(), std::move(symbols),
                   ns_per_tick);
    }
    return build_sharded(shards, std::move(symbols), ns_per_tick);
  }
  u64 tail = log.header()->tail.load(std::memory_order_acquire);
  if ((log.flags() & log_flags::kRingBuffer) && tail > log.capacity()) {
    // Wrapped ring: rebuild oldest→newest order first.
    std::vector<LogEntry> ordered;
    log.snapshot_ordered(&ordered);
    return build(ordered.data(), ordered.size(), std::move(symbols), ns_per_tick);
  }
  return build(&log.entry(0), log.size(), std::move(symbols), ns_per_tick);
}

Profile Profile::from_entries(const LogEntry* entries, u64 n,
                              std::unordered_map<u64, std::string> symbols,
                              double ns_per_tick) {
  return build(entries, n, std::move(symbols), ns_per_tick);
}

Profile Profile::build_sharded(const std::vector<std::vector<LogEntry>>& shards,
                               std::unordered_map<u64, std::string> symbols,
                               double ns_per_tick) {
  // One reconstruction per shard, run by a small worker pool. Safe because
  // a thread's entries are confined to one shard (tid % shard_count), so no
  // call stack spans windows; deterministic because the merge below walks
  // shards in directory order regardless of which worker finished when.
  std::vector<Profile> parts(shards.size());
  u32 hw = std::thread::hardware_concurrency();
  usize workers = std::min<usize>(hw == 0 ? 1 : hw, shards.size());
  std::atomic<usize> next{0};
  auto work = [&] {
    for (usize s; (s = next.fetch_add(1, std::memory_order_relaxed)) <
                  shards.size();) {
      parts[s] = build(shards[s].data(), shards[s].size(), {}, ns_per_tick);
    }
  };
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (usize w = 1; w < workers; ++w) pool.emplace_back(work);
    work();
    for (auto& t : pool) t.join();
  }

  // Merge in shard order. Method ids and tids mean the same thing in every
  // shard (same process, same address space), so — unlike load_many's
  // cross-process rekeying — only the parent indices need rebasing.
  Profile merged;
  merged.symbols_ = std::move(symbols);
  merged.ns_per_tick_ = ns_per_tick;
  for (Profile& part : parts) {
    usize base = merged.invocations_.size();
    for (const Invocation& inv : part.invocations_) {
      Invocation copy = inv;
      if (copy.parent >= 0) copy.parent += static_cast<i64>(base);
      merged.invocations_.push_back(copy);
    }
    merged.recon_.entries += part.recon_.entries;
    merged.recon_.stray_returns += part.recon_.stray_returns;
    merged.recon_.mismatched_returns += part.recon_.mismatched_returns;
    merged.recon_.unwound_frames += part.recon_.unwound_frames;
    merged.recon_.incomplete += part.recon_.incomplete;
    merged.recon_.tombstones += part.recon_.tombstones;
    // tid % shard_count confines a thread to one shard, so per-part thread
    // counts are disjoint and sum exactly.
    merged.thread_count_ += part.thread_count_;
  }
  return merged;
}

Profile Profile::build(const LogEntry* entries, u64 n,
                       std::unordered_map<u64, std::string> symbols,
                       double ns_per_tick) {
  Profile p;
  p.symbols_ = std::move(symbols);
  p.ns_per_tick_ = ns_per_tick;
  p.recon_.entries = n;

  // Per-thread reconstruction state. Only per-thread order is guaranteed by
  // the lock-free log, and only per-thread order is used (§II-C).
  struct ThreadRecon {
    std::vector<usize> open;  // indices into p.invocations_
    u64 last_counter = 0;
  };
  std::map<u64, ThreadRecon> threads;  // ordered so output is deterministic

  for (u64 i = 0; i < n; ++i) {
    const LogEntry& e = entries[i];
    // Skip tombstones: all-zero slots a writer reserved (tail moved past
    // them) but never filled because it died between the fetch-and-add and
    // the stores. Treating one as a call would invent a phantom invocation
    // of method 0 on thread 0.
    if (e.kind_and_counter == 0 && e.addr == 0 && e.tid == 0 && e.reserved == 0) {
      ++p.recon_.tombstones;
      continue;
    }
    ThreadRecon& t = threads[e.tid];
    t.last_counter = e.counter();

    if (e.kind() == EventKind::kCall) {
      Invocation inv;
      inv.method = e.addr;
      inv.tid = e.tid;
      inv.start = e.counter();
      inv.depth = static_cast<u32>(t.open.size());
      inv.parent = t.open.empty() ? -1 : static_cast<i64>(t.open.back());
      usize index = p.invocations_.size();
      if (!t.open.empty()) ++p.invocations_[t.open.back()].calls_made;
      p.invocations_.push_back(inv);
      t.open.push_back(index);
      continue;
    }

    // Return: close the matching frame. The common case is the top of
    // stack; a mismatch means enters were dropped (filtering, log overflow)
    // and is repaired by unwinding to the nearest matching frame.
    if (t.open.empty()) {
      ++p.recon_.stray_returns;
      continue;
    }
    usize match = t.open.size();
    for (usize k = t.open.size(); k-- > 0;) {
      if (p.invocations_[t.open[k]].method == e.addr) {
        match = k;
        break;
      }
    }
    if (match == t.open.size()) {
      ++p.recon_.mismatched_returns;
      continue;
    }
    while (t.open.size() > match) {
      usize idx = t.open.back();
      t.open.pop_back();
      Invocation& inv = p.invocations_[idx];
      // Clamp against a non-monotonic counter (a broken or tampered time
      // source must yield zero durations, not u64 underflow).
      inv.end = std::max(e.counter(), inv.start);
      if (t.open.size() != match) ++p.recon_.unwound_frames;
      if (inv.parent >= 0) {
        p.invocations_[static_cast<usize>(inv.parent)].children += inv.inclusive();
      }
    }
  }

  // Close whatever is still open with the thread's last observed counter;
  // those invocations are flagged incomplete.
  for (auto& [tid, t] : threads) {
    (void)tid;
    while (!t.open.empty()) {
      usize idx = t.open.back();
      t.open.pop_back();
      Invocation& inv = p.invocations_[idx];
      inv.end = std::max(t.last_counter, inv.start);
      inv.complete = false;
      ++p.recon_.incomplete;
      if (inv.parent >= 0) {
        p.invocations_[static_cast<usize>(inv.parent)].children += inv.inclusive();
      }
    }
  }

  p.thread_count_ = threads.size();
  return p;
}

std::string Profile::name(u64 method) const {
  auto it = symbols_.find(method);
  if (it != symbols_.end()) return it->second;
  // Fall back to the live registry (in-process analysis without a .sym file).
  std::string live = SymbolRegistry::instance().name_of(method);
  if (!live.empty()) return live;
  return str_format("0x%llx", static_cast<unsigned long long>(method));
}

std::vector<MethodStats> Profile::method_stats() const {
  std::unordered_map<u64, MethodStats> by_method;
  for (const Invocation& inv : invocations_) {
    MethodStats& s = by_method[inv.method];
    s.method = inv.method;
    ++s.count;
    s.inclusive_total += inv.inclusive();
    s.exclusive_total += inv.exclusive();
    s.min_inclusive = std::min(s.min_inclusive, inv.inclusive());
    s.max_inclusive = std::max(s.max_inclusive, inv.inclusive());
  }
  std::vector<MethodStats> out;
  out.reserve(by_method.size());
  for (auto& [id, s] : by_method) {
    (void)id;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const MethodStats& a, const MethodStats& b) {
    return a.exclusive_total > b.exclusive_total;
  });
  return out;
}

std::vector<CallEdge> Profile::call_edges() const {
  struct Key {
    u64 caller;
    u64 callee;
    bool from_root;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    usize operator()(const Key& k) const {
      return std::hash<u64>{}(k.caller * 1099511628211ull ^ k.callee ^
                              (k.from_root ? 0x9e37ull : 0));
    }
  };
  std::unordered_map<Key, CallEdge, KeyHash> edges;
  for (const Invocation& inv : invocations_) {
    Key k{};
    if (inv.parent < 0) {
      k = Key{0, inv.method, true};
    } else {
      k = Key{invocations_[static_cast<usize>(inv.parent)].method, inv.method, false};
    }
    CallEdge& e = edges[k];
    e.caller = k.caller;
    e.callee = k.callee;
    e.from_root = k.from_root;
    ++e.count;
    e.inclusive_total += inv.inclusive();
  }
  std::vector<CallEdge> out;
  out.reserve(edges.size());
  for (auto& [k, e] : edges) {
    (void)k;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const CallEdge& a, const CallEdge& b) { return a.count > b.count; });
  return out;
}

std::vector<std::pair<std::string, u64>> Profile::folded_stacks() const {
  // Each invocation contributes its *exclusive* time to the stack path
  // root→self, so the flame graph's widths add up exactly to total time.
  std::unordered_map<std::string, u64> folded;
  std::vector<std::string> path_cache(invocations_.size());
  for (usize i = 0; i < invocations_.size(); ++i) {
    const Invocation& inv = invocations_[i];
    std::string path;
    if (inv.parent >= 0) {
      path = path_cache[static_cast<usize>(inv.parent)];
      path += ';';
    }
    path += name(inv.method);
    path_cache[i] = path;
    u64 excl = inv.exclusive();
    if (excl > 0) folded[path] += excl;
  }
  std::vector<std::pair<std::string, u64>> out(folded.begin(), folded.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace teeperf::analyzer

namespace teeperf::analyzer {

std::optional<Profile> Profile::load_many(const std::vector<std::string>& prefixes) {
  Profile merged;
  // Method ids from different processes can collide with different
  // meanings (each process has its own registry / address space), so the
  // merge rekeys every method by its *symbolized name* into a fresh
  // synthetic id space (bit 61 marks merged ids; bit 62 stays set so they
  // remain disjoint from raw addresses).
  std::unordered_map<std::string, u64> ids_by_name;
  u64 next_id = (1ull << 62) | (1ull << 61);
  bool any = false;
  u64 input_index = 0;

  for (const std::string& prefix : prefixes) {
    auto prof = load(prefix);
    ++input_index;
    if (!prof) continue;
    any = true;

    usize base = merged.invocations_.size();
    for (const Invocation& inv : prof->invocations_) {
      Invocation copy = inv;
      copy.tid = (input_index << 32) | inv.tid;  // namespace threads per input
      if (copy.parent >= 0) copy.parent += static_cast<i64>(base);
      std::string name = prof->name(inv.method);
      auto [it, fresh] = ids_by_name.try_emplace(name, next_id);
      if (fresh) {
        merged.symbols_.emplace(next_id, name);
        ++next_id;
      }
      copy.method = it->second;
      merged.invocations_.push_back(copy);
    }

    merged.recon_.entries += prof->recon_.entries;
    merged.recon_.stray_returns += prof->recon_.stray_returns;
    merged.recon_.mismatched_returns += prof->recon_.mismatched_returns;
    merged.recon_.unwound_frames += prof->recon_.unwound_frames;
    merged.recon_.incomplete += prof->recon_.incomplete;
    merged.recon_.tombstones += prof->recon_.tombstones;
    merged.thread_count_ += prof->thread_count_;
    if (merged.ns_per_tick_ == 0.0) merged.ns_per_tick_ = prof->ns_per_tick_;
  }
  if (!any) return std::nullopt;
  return merged;
}

std::pair<std::string, u64> Profile::hottest_stack() const {
  std::pair<std::string, u64> best{"", 0};
  for (const auto& [path, ticks] : folded_stacks()) {
    if (ticks > best.second) best = {path, ticks};
  }
  return best;
}

std::vector<ValidationIssue> Profile::validate(const ProfileLog& log) {
  if (log.sharded()) {
    // The raw v2 entry array has per-shard gaps; validate the canonical
    // per-shard concatenation (per-thread order is what validate checks,
    // and a thread never spans shards).
    std::vector<LogEntry> ordered;
    log.snapshot_ordered(&ordered);
    return validate(ordered.data(), ordered.size());
  }
  return validate(&log.entry(0), log.size());
}

std::optional<std::vector<ValidationIssue>> Profile::validate_file(
    const std::string& prefix) {
  auto raw = read_file(prefix + ".log");
  if (!raw) return std::nullopt;
  auto dump = parse_dump(*raw);
  if (!dump) return std::nullopt;
  std::vector<LogEntry> flat = dump->flatten();
  return validate(flat.data(), flat.size());
}

std::vector<ValidationIssue> Profile::validate(const LogEntry* log_entries, u64 n) {
  std::vector<ValidationIssue> issues;
  struct ThreadCheck {
    u64 last_counter = 0;
    bool has_counter = false;
    i64 depth = 0;
  };
  std::map<u64, ThreadCheck> threads;

  for (u64 i = 0; i < n; ++i) {
    const LogEntry& e = log_entries[i];
    ThreadCheck& t = threads[e.tid];
    if (e.addr == 0) {
      issues.push_back({ValidationIssue::Kind::kZeroAddress, e.tid, i,
                        "entry has null address"});
    }
    if (t.has_counter && e.counter() < t.last_counter) {
      issues.push_back({ValidationIssue::Kind::kNonMonotonicCounter, e.tid, i,
                        str_format("counter %llu after %llu",
                                   static_cast<unsigned long long>(e.counter()),
                                   static_cast<unsigned long long>(t.last_counter))});
    }
    t.last_counter = e.counter();
    t.has_counter = true;
    t.depth += e.kind() == EventKind::kCall ? 1 : -1;
  }
  for (const auto& [tid, t] : threads) {
    if (t.depth != 0) {
      issues.push_back({ValidationIssue::Kind::kUnbalancedThread, tid, n,
                        str_format("calls minus returns = %lld",
                                   static_cast<long long>(t.depth))});
    }
  }
  return issues;
}

}  // namespace teeperf::analyzer
