// Streaming, bounded-memory analysis (DESIGN.md §12).
//
// Profile::load_spill stitches a whole session into memory before
// reconstructing — fine for sessions near the shm window, hopeless for the
// multi-GB chunk streams the spill drainer produces. StreamAnalyzer runs
// the same call-stack reconstruction as Profile::build in a single pass
// over the chunk sequence, holding only:
//
//   - per-shard open-invocation stacks (bounded by live call depth),
//   - rolling per-method / per-edge / folded-stack aggregates
//     (bounded by the number of *distinct* methods, edges and paths),
//   - one chunk file at a time.
//
// No Invocation is ever materialized. Shards aggregate in parallel (a
// thread's entries are confined to one shard, and every aggregate is a
// sum/min/max, so worker scheduling cannot change the result); finish()
// folds shards in directory order into a MergeableProfile. The result is
// held byte-identical to MergeableProfile::from_profile(Profile::load(...))
// by the differential tests in tests/test_analyze_stream.cc.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analyzer/dump_reader.h"
#include "analyzer/mprof.h"
#include "common/types.h"
#include "core/log_format.h"

namespace teeperf::analyzer {

class StreamAnalyzer {
 public:
  explicit StreamAnalyzer(std::unordered_map<u64, std::string> symbols = {});

  // Feeds one span of a shard's stream, in per-shard order. Distinct shards
  // may feed concurrently (their state is disjoint); one shard must not.
  // Call ensure_shards() first when feeding from multiple threads.
  void feed(u32 shard, const LogEntry* entries, u64 n);

  // Feeds every window of a parsed dump, shards in parallel.
  void feed_dump(const ParsedDump& dump);

  // Grows the shard table (never shrinks). Required before concurrent
  // feed() calls so the table is not resized under a reader.
  void ensure_shards(usize n);

  void set_ns_per_tick(double ns) { ns_per_tick_ = ns; }

  // Closes every still-open frame (incomplete, ended at the thread's last
  // counter — the same policy as Profile::build) and folds all shards, in
  // shard order, into one aggregate with sessions == 1.
  MergeableProfile finish();

  // One-call entry points mirroring Profile::load / load_spill but reading
  // one chunk file at a time. analyze() auto-detects spill sessions by the
  // presence of "<prefix>.seg.0000"; both load "<prefix>.sym" when present.
  static std::optional<MergeableProfile> analyze(const std::string& prefix,
                                                 std::string* error = nullptr);
  static std::optional<MergeableProfile> analyze_spill(
      const std::string& prefix, std::string* error = nullptr);

 private:
  // One open invocation. `path_len` is the thread's folded-path length
  // *before* this frame's name was appended — truncating back to it on
  // close keeps one rolling string per thread instead of one per frame.
  struct Frame {
    u64 method = 0;
    u64 start = 0;
    u64 children = 0;
    u64 parent_method = 0;
    bool from_root = false;
    usize path_len = 0;
  };

  struct ThreadState {
    std::vector<Frame> open;
    std::string path;  // names of open frames joined by ';'
    u64 last_counter = 0;
  };

  struct MethodAgg {
    u64 count = 0;
    u64 inclusive_total = 0;
    u64 exclusive_total = 0;
    u64 min_inclusive = ~0ull;
    u64 max_inclusive = 0;
  };

  struct EdgeKey {
    u64 caller = 0;
    u64 callee = 0;
    bool from_root = false;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHash {
    usize operator()(const EdgeKey& k) const {
      return std::hash<u64>{}(k.caller * 1099511628211ull ^ k.callee ^
                              (k.from_root ? 0x9e37ull : 0));
    }
  };

  struct EdgeAgg {
    u64 count = 0;
    u64 inclusive_total = 0;
  };

  // All state one shard's reconstruction touches — disjoint across shards,
  // which is what makes parallel feeding safe without locks.
  struct ShardState {
    std::map<u64, ThreadState> threads;
    std::unordered_map<u64, MethodAgg> methods;
    std::unordered_map<EdgeKey, EdgeAgg, EdgeKeyHash> edges;
    std::unordered_map<std::string, u64> folded;
    // Method-id → name memo: one registry/symbol lookup per distinct method
    // instead of one per call entry (the probe-rate hot path of analysis).
    std::unordered_map<u64, std::string> names;
    ReconstructionStats recon;
  };

  const std::string& cached_name(ShardState& sh, u64 method) const;

  std::string name_of(u64 method) const {
    return resolve_name(symbols_, method);
  }
  // Closes the top frame of `t` at counter `end_counter`.
  void close_top(ShardState& sh, ThreadState& t, u64 end_counter);

  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unordered_map<u64, std::string> symbols_;
  double ns_per_tick_ = 0.0;
};

}  // namespace teeperf::analyzer
