#include "analyzer/mprof.h"

#include <cmath>
#include <cstring>

#include "common/crc32c.h"
#include "common/fileutil.h"

namespace teeperf::analyzer {

namespace {

// --- serialization primitives (little-endian memcpy, like every other
// --- on-disk structure in this repo) -------------------------------------

void put_u64(std::string& out, u64 v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u32(std::string& out, u32 v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<u32>(s.size()));
  out.append(s);
}

// Bounds-checked cursor over the payload. Every read either succeeds or
// flips `ok` — the loader checks once per record and rejects the file.
struct Reader {
  const char* p;
  const char* end;
  bool ok = true;

  bool take(void* dst, usize n) {
    if (static_cast<usize>(end - p) < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    return true;
  }
  u64 u64v() {
    u64 v = 0;
    take(&v, sizeof(v));
    return v;
  }
  u32 u32v() {
    u32 v = 0;
    take(&v, sizeof(v));
    return v;
  }
  double f64v() {
    double v = 0;
    take(&v, sizeof(v));
    return v;
  }
  std::string str() {
    u32 n = u32v();
    if (!ok || static_cast<usize>(end - p) < n) {
      ok = false;
      return {};
    }
    std::string s(p, n);
    p += n;
    return s;
  }
  bool done() const { return ok && p == end; }
};

bool fail(std::string* error, const char* why) {
  if (error) *error = why;
  return false;
}

// a += b with u64 overflow detection.
bool add_ck(u64& a, u64 b) { return !__builtin_add_overflow(a, b, &a); }

}  // namespace

MergeableProfile MergeableProfile::from_profile(const Profile& p) {
  MergeableProfile m;
  m.sessions = 1;
  m.ns_per_tick = p.ns_per_tick();
  const ReconstructionStats& r = p.recon_stats();
  m.stats = {r.entries,    r.stray_returns, r.mismatched_returns,
             r.unwound_frames, r.incomplete, r.tombstones,
             p.thread_count()};

  // Two ids can symbolize to the same name (e.g. the same function
  // registered by two libraries); the name key absorbs both.
  for (const MethodStats& s : p.method_stats()) {
    MprofMethod& mm = m.methods[p.name(s.method)];
    mm.id = std::min(mm.id, s.method);
    mm.count += s.count;
    mm.inclusive_total += s.inclusive_total;
    mm.exclusive_total += s.exclusive_total;
    mm.min_inclusive = std::min(mm.min_inclusive, s.min_inclusive);
    mm.max_inclusive = std::max(mm.max_inclusive, s.max_inclusive);
  }
  for (const CallEdge& e : p.call_edges()) {
    MprofEdgeKey k{e.from_root ? std::string() : p.name(e.caller),
                   p.name(e.callee), e.from_root};
    MprofEdge& me = m.edges[std::move(k)];
    me.count += e.count;
    me.inclusive_total += e.inclusive_total;
  }
  for (const auto& [path, ticks] : p.folded_stacks()) m.stacks[path] += ticks;
  return m;
}

std::string MergeableProfile::save() const {
  std::string payload;
  put_u64(payload, methods.size());
  put_u64(payload, edges.size());
  put_u64(payload, stacks.size());
  put_u64(payload, sessions);
  put_f64(payload, ns_per_tick);
  put_u64(payload, stats.entries);
  put_u64(payload, stats.stray_returns);
  put_u64(payload, stats.mismatched_returns);
  put_u64(payload, stats.unwound_frames);
  put_u64(payload, stats.incomplete);
  put_u64(payload, stats.tombstones);
  put_u64(payload, stats.thread_count);

  for (const auto& [name, mm] : methods) {
    put_str(payload, name);
    put_u64(payload, mm.id);
    put_u64(payload, mm.count);
    put_u64(payload, mm.inclusive_total);
    put_u64(payload, mm.exclusive_total);
    put_u64(payload, mm.min_inclusive);
    put_u64(payload, mm.max_inclusive);
  }
  for (const auto& [key, me] : edges) {
    put_str(payload, key.caller);
    put_str(payload, key.callee);
    payload.push_back(key.from_root ? 1 : 0);
    put_u64(payload, me.count);
    put_u64(payload, me.inclusive_total);
  }
  for (const auto& [path, ticks] : stacks) {
    put_str(payload, path);
    put_u64(payload, ticks);
  }

  MprofFrame frame;
  frame.magic = kMprofMagic;
  frame.version = kMprofVersion;
  frame.payload_bytes = payload.size();
  frame.payload_crc = crc32c_mask(crc32c(payload.data(), payload.size()));
  frame.header_crc =
      crc32c_mask(crc32c(&frame, sizeof(MprofFrame) - 2 * sizeof(u32)));

  std::string out;
  out.reserve(sizeof(MprofFrame) + payload.size());
  out.assign(reinterpret_cast<const char*>(&frame), sizeof(MprofFrame));
  out.append(payload);
  return out;
}

bool MergeableProfile::save_to(const std::string& path) const {
  return write_file(path, save());
}

std::optional<MergeableProfile> MergeableProfile::load_bytes(
    std::string_view bytes, std::string* error) {
  auto reject = [&](const char* why) -> std::optional<MergeableProfile> {
    fail(error, why);
    return std::nullopt;
  };
  if (bytes.size() < sizeof(MprofFrame)) return reject("shorter than frame");
  MprofFrame frame;
  std::memcpy(&frame, bytes.data(), sizeof(MprofFrame));
  if (frame.magic != kMprofMagic) return reject("bad magic");
  u32 want =
      crc32c_mask(crc32c(bytes.data(), sizeof(MprofFrame) - 2 * sizeof(u32)));
  if (frame.header_crc != want) return reject("frame checksum mismatch");
  if (frame.version != kMprofVersion) return reject("unsupported version");
  if (frame.payload_bytes != bytes.size() - sizeof(MprofFrame)) {
    return reject("payload truncated");
  }
  std::string_view body = bytes.substr(sizeof(MprofFrame));
  if (frame.payload_crc != crc32c_mask(crc32c(body.data(), body.size()))) {
    return reject("payload checksum mismatch");
  }

  Reader r{body.data(), body.data() + body.size()};
  u64 method_count = r.u64v();
  u64 edge_count = r.u64v();
  u64 stack_count = r.u64v();
  MergeableProfile m;
  m.sessions = r.u64v();
  m.ns_per_tick = r.f64v();
  m.stats.entries = r.u64v();
  m.stats.stray_returns = r.u64v();
  m.stats.mismatched_returns = r.u64v();
  m.stats.unwound_frames = r.u64v();
  m.stats.incomplete = r.u64v();
  m.stats.tombstones = r.u64v();
  m.stats.thread_count = r.u64v();
  if (!r.ok) return reject("truncated header");
  if (!std::isfinite(m.ns_per_tick) || m.ns_per_tick < 0.0) {
    return reject("invalid tick rate");
  }
  // Each record consumes tens of bytes; a count the payload cannot possibly
  // hold is rejected up front instead of looping to the inevitable failure.
  u64 budget = body.size();
  if (method_count > budget || edge_count > budget || stack_count > budget) {
    return reject("record count exceeds payload");
  }

  std::string prev;
  for (u64 i = 0; i < method_count; ++i) {
    std::string name = r.str();
    MprofMethod mm;
    mm.id = r.u64v();
    mm.count = r.u64v();
    mm.inclusive_total = r.u64v();
    mm.exclusive_total = r.u64v();
    mm.min_inclusive = r.u64v();
    mm.max_inclusive = r.u64v();
    if (!r.ok) return reject("truncated method record");
    if (name.empty()) return reject("empty method name");
    if (i > 0 && name <= prev) return reject("methods not strictly sorted");
    if (mm.count == 0) return reject("method with zero count");
    if (mm.exclusive_total > mm.inclusive_total) {
      return reject("exclusive exceeds inclusive");
    }
    if (mm.min_inclusive > mm.max_inclusive) return reject("min exceeds max");
    if (mm.max_inclusive > mm.inclusive_total) {
      return reject("max exceeds inclusive total");
    }
    prev = std::move(name);
    m.methods.emplace(prev, mm);
  }

  MprofEdgeKey prev_key;
  for (u64 i = 0; i < edge_count; ++i) {
    MprofEdgeKey k;
    k.caller = r.str();
    k.callee = r.str();
    u8 root = 0;
    r.take(&root, 1);
    MprofEdge me;
    me.count = r.u64v();
    me.inclusive_total = r.u64v();
    if (!r.ok) return reject("truncated edge record");
    if (root > 1) return reject("non-boolean from_root");
    k.from_root = root != 0;
    if (k.from_root != k.caller.empty()) {
      return reject("root flag disagrees with caller");
    }
    if (k.callee.empty()) return reject("empty callee name");
    if (i > 0 && !(prev_key < k)) return reject("edges not strictly sorted");
    if (me.count == 0) return reject("edge with zero count");
    prev_key = k;
    m.edges.emplace(std::move(k), me);
  }

  prev.clear();
  for (u64 i = 0; i < stack_count; ++i) {
    std::string path = r.str();
    u64 ticks = r.u64v();
    if (!r.ok) return reject("truncated stack record");
    if (path.empty()) return reject("empty stack path");
    if (i > 0 && path <= prev) return reject("stacks not strictly sorted");
    if (ticks == 0) return reject("stack with zero ticks");
    prev = std::move(path);
    m.stacks.emplace(prev, ticks);
  }

  if (!r.done()) return reject("trailing bytes after records");
  return m;
}

std::optional<MergeableProfile> MergeableProfile::load(const std::string& path,
                                                       std::string* error) {
  auto raw = read_file(path);
  if (!raw) {
    fail(error, "cannot read file");
    return std::nullopt;
  }
  return load_bytes(*raw, error);
}

bool MergeableProfile::merge(const MergeableProfile& other) {
  // Merge into a copy so a mid-merge overflow leaves *this untouched —
  // half-applied merges would silently corrupt fleet rollups.
  MergeableProfile out = *this;
  if (!add_ck(out.sessions, other.sessions)) return false;
  if (other.ns_per_tick > 0.0) {
    out.ns_per_tick = ns_per_tick > 0.0
                          ? std::max(ns_per_tick, other.ns_per_tick)
                          : other.ns_per_tick;
  }
  if (!add_ck(out.stats.entries, other.stats.entries) ||
      !add_ck(out.stats.stray_returns, other.stats.stray_returns) ||
      !add_ck(out.stats.mismatched_returns, other.stats.mismatched_returns) ||
      !add_ck(out.stats.unwound_frames, other.stats.unwound_frames) ||
      !add_ck(out.stats.incomplete, other.stats.incomplete) ||
      !add_ck(out.stats.tombstones, other.stats.tombstones) ||
      !add_ck(out.stats.thread_count, other.stats.thread_count)) {
    return false;
  }
  for (const auto& [name, om] : other.methods) {
    MprofMethod& mm = out.methods[name];
    mm.id = std::min(mm.id, om.id);
    if (!add_ck(mm.count, om.count) ||
        !add_ck(mm.inclusive_total, om.inclusive_total) ||
        !add_ck(mm.exclusive_total, om.exclusive_total)) {
      return false;
    }
    mm.min_inclusive = std::min(mm.min_inclusive, om.min_inclusive);
    mm.max_inclusive = std::max(mm.max_inclusive, om.max_inclusive);
  }
  for (const auto& [key, oe] : other.edges) {
    MprofEdge& me = out.edges[key];
    if (!add_ck(me.count, oe.count) ||
        !add_ck(me.inclusive_total, oe.inclusive_total)) {
      return false;
    }
  }
  for (const auto& [path, ticks] : other.stacks) {
    if (!add_ck(out.stacks[path], ticks)) return false;
  }
  *this = std::move(out);
  return true;
}

u64 MergeableProfile::total_exclusive() const {
  u64 t = 0;
  for (const auto& [name, mm] : methods) {
    (void)name;
    t += mm.exclusive_total;
  }
  return t;
}

std::string MergeableProfile::folded() const {
  std::string out;
  for (const auto& [path, ticks] : stacks) {
    out += path;
    out += ' ';
    out += std::to_string(ticks);
    out += '\n';
  }
  return out;
}

}  // namespace teeperf::analyzer
