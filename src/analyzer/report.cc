#include "analyzer/report.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/fileutil.h"
#include "common/stringutil.h"

namespace teeperf::analyzer {

namespace {

// Count occurrences of `"event":"<name>"` in the JSON-lines journal — a
// full JSON parser is overkill for counting well-known event types the
// exporter itself emitted.
usize count_events(const std::string& jsonl, const char* name) {
  std::string needle = str_format("\"event\":\"%s\"", name);
  usize n = 0;
  for (usize at = jsonl.find(needle); at != std::string::npos;
       at = jsonl.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

}  // namespace

std::string health_report(const std::string& prefix) {
  auto health = read_file(prefix + ".health");
  auto events = read_file(prefix + ".events.jsonl");
  if (!health && !events) return "";

  std::string out = "recorder health (" + prefix + ".health):\n";
  if (events) {
    // Degradation warnings first — the numbers below only mean what they
    // claim when the recorder itself was healthy.
    struct Check {
      const char* event;
      const char* warning;
    };
    static const Check kChecks[] = {
        {"counter_stall", "software counter stalled mid-run; timestamps "
                          "within stalls carry zero duration"},
        {"counter_drift", "counter rate drifted from its calibrated "
                          "baseline; tick→ns conversion is approximate"},
        {"counter_backjump", "counter word moved backwards (tampered or "
                             "wrapped time source); affected windows were "
                             "excluded from calibration"},
        {"counter_failover", "replicated counter elected a new primary "
                             "after a stall or backjump; timestamps stay "
                             "monotonic but resolution dips at the switch"},
        {"log_saturated", "log filled up; entries past capacity were "
                          "dropped (non-ring mode)"},
        {"torn_tail", "reserved-but-unwritten entries at the log tail "
                      "(threads killed mid-append?)"},
        {"ring_wrap", "ring buffer wrapped; oldest entries overwritten"},
        {"epc_pressure", "EPC paging pressure during the run"},
    };
    usize warned = 0;
    for (const Check& c : kChecks) {
      if (usize n = count_events(*events, c.event)) {
        out += str_format("  WARNING: %s (%zux): %s\n", c.event, n, c.warning);
        ++warned;
      }
    }
    if (!warned) out += "  no degradation events recorded\n";
  }
  if (health) out += *health;
  return out;
}

std::string method_report(const Profile& profile, usize limit) {
  auto stats = profile.method_stats();
  u64 total_excl = 0;
  for (const auto& s : stats) total_excl += s.exclusive_total;

  std::string out = str_format("%-52s %10s %12s %12s %7s\n", "method", "calls",
                               "excl(ms)", "incl(ms)", "excl%");
  usize shown = 0;
  for (const auto& s : stats) {
    if (shown++ >= limit) {
      out += str_format("... (%zu more methods)\n", stats.size() - limit);
      break;
    }
    double pct = total_excl
                     ? 100.0 * static_cast<double>(s.exclusive_total) /
                           static_cast<double>(total_excl)
                     : 0.0;
    out += str_format("%-52s %10llu %12.3f %12.3f %6.1f%%\n",
                      ellipsize(profile.name(s.method), 52).c_str(),
                      static_cast<unsigned long long>(s.count),
                      profile.ticks_to_ns(s.exclusive_total) / 1e6,
                      profile.ticks_to_ns(s.inclusive_total) / 1e6, pct);
  }
  return out;
}

std::string call_graph_report(const Profile& profile, usize limit) {
  auto edges = profile.call_edges();
  std::string out = str_format("%-40s %-40s %10s %12s\n", "caller", "callee",
                               "count", "incl(ms)");
  usize shown = 0;
  for (const auto& e : edges) {
    if (shown++ >= limit) {
      out += str_format("... (%zu more edges)\n", edges.size() - limit);
      break;
    }
    std::string caller = e.from_root ? "<root>" : profile.name(e.caller);
    out += str_format("%-40s %-40s %10llu %12.3f\n", ellipsize(caller, 40).c_str(),
                      ellipsize(profile.name(e.callee), 40).c_str(),
                      static_cast<unsigned long long>(e.count),
                      profile.ticks_to_ns(e.inclusive_total) / 1e6);
  }
  return out;
}

std::string mprof_method_report(const MergeableProfile& m, usize limit) {
  // Sort by exclusive descending, like method_stats(); keys are already
  // names, so rows are stable across hosts and merge orders.
  std::vector<std::pair<const std::string*, const MprofMethod*>> rows;
  rows.reserve(m.methods.size());
  for (const auto& [name, mm] : m.methods) rows.push_back({&name, &mm});
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second->exclusive_total > b.second->exclusive_total;
  });
  u64 total_excl = m.total_exclusive();
  auto to_ms = [&](u64 ticks) {
    double ns = m.ns_per_tick > 0
                    ? static_cast<double>(ticks) * m.ns_per_tick
                    : static_cast<double>(ticks);
    return ns / 1e6;
  };

  std::string out = str_format("%-52s %10s %12s %12s %7s\n", "method", "calls",
                               "excl(ms)", "incl(ms)", "excl%");
  usize shown = 0;
  for (const auto& [name, mm] : rows) {
    if (shown++ >= limit) {
      out += str_format("... (%zu more methods)\n", rows.size() - limit);
      break;
    }
    double pct = total_excl
                     ? 100.0 * static_cast<double>(mm->exclusive_total) /
                           static_cast<double>(total_excl)
                     : 0.0;
    out += str_format("%-52s %10llu %12.3f %12.3f %6.1f%%\n",
                      ellipsize(*name, 52).c_str(),
                      static_cast<unsigned long long>(mm->count),
                      to_ms(mm->exclusive_total), to_ms(mm->inclusive_total),
                      pct);
  }
  return out;
}

std::string mprof_summary(const MergeableProfile& m) {
  return str_format(
      "sessions=%llu entries=%llu threads=%llu methods=%zu edges=%zu "
      "stacks=%zu stray_returns=%llu mismatched=%llu unwound=%llu "
      "incomplete=%llu tombstones=%llu",
      static_cast<unsigned long long>(m.sessions),
      static_cast<unsigned long long>(m.stats.entries),
      static_cast<unsigned long long>(m.stats.thread_count), m.methods.size(),
      m.edges.size(), m.stacks.size(),
      static_cast<unsigned long long>(m.stats.stray_returns),
      static_cast<unsigned long long>(m.stats.mismatched_returns),
      static_cast<unsigned long long>(m.stats.unwound_frames),
      static_cast<unsigned long long>(m.stats.incomplete),
      static_cast<unsigned long long>(m.stats.tombstones));
}

std::string recon_summary(const Profile& profile) {
  const auto& r = profile.recon_stats();
  return str_format(
      "entries=%llu threads=%llu invocations=%zu stray_returns=%llu "
      "mismatched=%llu unwound=%llu incomplete=%llu tombstones=%llu",
      static_cast<unsigned long long>(r.entries),
      static_cast<unsigned long long>(profile.thread_count()),
      profile.invocations().size(),
      static_cast<unsigned long long>(r.stray_returns),
      static_cast<unsigned long long>(r.mismatched_returns),
      static_cast<unsigned long long>(r.unwound_frames),
      static_cast<unsigned long long>(r.incomplete),
      static_cast<unsigned long long>(r.tombstones));
}

}  // namespace teeperf::analyzer

namespace teeperf::analyzer {

std::string thread_report(const Profile& profile) {
  struct ThreadAgg {
    u64 invocations = 0;
    u64 root_inclusive = 0;
    std::unordered_map<u64, u64> excl_by_method;
  };
  std::map<u64, ThreadAgg> threads;
  for (const Invocation& inv : profile.invocations()) {
    ThreadAgg& t = threads[inv.tid];
    ++t.invocations;
    if (inv.parent < 0) t.root_inclusive += inv.inclusive();
    t.excl_by_method[inv.method] += inv.exclusive();
  }

  std::string out = str_format("%-6s %12s %12s  %-48s\n", "tid", "invocations",
                               "root(ms)", "busiest method (exclusive)");
  for (const auto& [tid, t] : threads) {
    u64 best_method = 0, best_excl = 0;
    for (const auto& [m, e] : t.excl_by_method) {
      if (e >= best_excl) {
        best_excl = e;
        best_method = m;
      }
    }
    out += str_format("%-6llu %12llu %12.3f  %-48s\n",
                      static_cast<unsigned long long>(tid),
                      static_cast<unsigned long long>(t.invocations),
                      profile.ticks_to_ns(t.root_inclusive) / 1e6,
                      ellipsize(profile.name(best_method), 48).c_str());
  }
  return out;
}

std::string csv_export(const Profile& profile) {
  std::string out =
      "method,tid,depth,start,end,inclusive,exclusive,calls_made,complete\n";
  for (const Invocation& inv : profile.invocations()) {
    std::string name = profile.name(inv.method);
    // Quote the method name; double any embedded quotes per RFC 4180.
    std::string quoted = "\"";
    for (char c : name) {
      quoted += c;
      if (c == '"') quoted += '"';
    }
    quoted += '"';
    out += str_format(
        "%s,%llu,%u,%llu,%llu,%llu,%llu,%llu,%d\n", quoted.c_str(),
        static_cast<unsigned long long>(inv.tid), inv.depth,
        static_cast<unsigned long long>(inv.start),
        static_cast<unsigned long long>(inv.end),
        static_cast<unsigned long long>(inv.inclusive()),
        static_cast<unsigned long long>(inv.exclusive()),
        static_cast<unsigned long long>(inv.calls_made), inv.complete ? 1 : 0);
  }
  return out;
}

std::string diff_report(const Profile& before, const Profile& after, usize limit) {
  // Keyed by symbolized name: the two profiles come from different runs, so
  // registered ids are only comparable through their names.
  struct Entry {
    double before_ms = 0, after_ms = 0;
    u64 before_calls = 0, after_calls = 0;
  };
  std::unordered_map<std::string, Entry> by_name;
  for (const auto& s : before.method_stats()) {
    Entry& e = by_name[before.name(s.method)];
    e.before_ms = before.ticks_to_ns(s.exclusive_total) / 1e6;
    e.before_calls = s.count;
  }
  for (const auto& s : after.method_stats()) {
    Entry& e = by_name[after.name(s.method)];
    e.after_ms = after.ticks_to_ns(s.exclusive_total) / 1e6;
    e.after_calls = s.count;
  }

  std::vector<std::pair<std::string, Entry>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    double da = a.second.after_ms - a.second.before_ms;
    double db = b.second.after_ms - b.second.before_ms;
    return std::abs(da) > std::abs(db);
  });

  std::string out = str_format("%-44s %12s %12s %12s %9s %9s\n", "method",
                               "before(ms)", "after(ms)", "delta(ms)", "calls_b",
                               "calls_a");
  usize shown = 0;
  for (const auto& [name, e] : rows) {
    if (shown++ >= limit) {
      out += str_format("... (%zu more methods)\n", rows.size() - limit);
      break;
    }
    out += str_format("%-44s %12.3f %12.3f %+12.3f %9llu %9llu\n",
                      ellipsize(name, 44).c_str(), e.before_ms, e.after_ms,
                      e.after_ms - e.before_ms,
                      static_cast<unsigned long long>(e.before_calls),
                      static_cast<unsigned long long>(e.after_calls));
  }
  return out;
}

}  // namespace teeperf::analyzer

namespace teeperf::analyzer {
namespace {

struct TreeNode {
  u64 inclusive = 0;
  std::map<std::string, TreeNode> children;
};

void render_tree(const Profile& profile, const TreeNode& node,
                 const std::string& name, int depth, u64 total,
                 double min_fraction, std::string* out) {
  double frac = total ? static_cast<double>(node.inclusive) /
                            static_cast<double>(total)
                      : 0.0;
  *out += str_format("%6.1f%% %10.3f ms  %*s%s\n", frac * 100,
                     profile.ticks_to_ns(node.inclusive) / 1e6, depth * 2, "",
                     name.c_str());
  // Children largest-first; tiny ones folded together.
  std::vector<std::pair<std::string, const TreeNode*>> kids;
  for (const auto& [n, c] : node.children) kids.emplace_back(n, &c);
  std::sort(kids.begin(), kids.end(), [](const auto& a, const auto& b) {
    return a.second->inclusive > b.second->inclusive;
  });
  u64 folded = 0;
  usize folded_count = 0;
  for (const auto& [n, c] : kids) {
    double child_frac = total ? static_cast<double>(c->inclusive) /
                                    static_cast<double>(total)
                              : 0.0;
    if (child_frac < min_fraction) {
      folded += c->inclusive;
      ++folded_count;
      continue;
    }
    render_tree(profile, *c, n, depth + 1, total, min_fraction, out);
  }
  if (folded_count > 0) {
    *out += str_format("%6.1f%% %10.3f ms  %*s(other: %zu callees)\n",
                       total ? 100.0 * static_cast<double>(folded) /
                                   static_cast<double>(total)
                             : 0.0,
                       profile.ticks_to_ns(folded) / 1e6, (depth + 1) * 2, "",
                       folded_count);
  }
}

}  // namespace

std::string call_tree_report(const Profile& profile, double min_fraction) {
  // Merge invocations into a name-keyed tree (like the flame graph's frame
  // tree, but rendered as indented text).
  TreeNode root;
  const auto& all = profile.invocations();
  // Cache each invocation's node to attach children in one pass.
  std::vector<TreeNode*> node_of(all.size(), nullptr);
  for (usize i = 0; i < all.size(); ++i) {
    const Invocation& inv = all[i];
    TreeNode& parent = inv.parent < 0
                           ? root
                           : *node_of[static_cast<usize>(inv.parent)];
    TreeNode& node = parent.children[profile.name(inv.method)];
    node.inclusive += inv.inclusive();
    node_of[i] = &node;
  }
  for (const auto& [n, c] : root.children) {
    (void)n;
    root.inclusive += c.inclusive;
  }

  std::string out;
  render_tree(profile, root, "<all threads>", 0, root.inclusive, min_fraction,
              &out);
  return out;
}

std::string timeline_csv(const Profile& profile) {
  std::vector<usize> order(profile.invocations().size());
  for (usize i = 0; i < order.size(); ++i) order[i] = i;
  const auto& all = profile.invocations();
  std::sort(order.begin(), order.end(), [&](usize a, usize b) {
    if (all[a].tid != all[b].tid) return all[a].tid < all[b].tid;
    if (all[a].start != all[b].start) return all[a].start < all[b].start;
    return all[a].depth < all[b].depth;
  });
  std::string out = "tid,method,start,end,depth\n";
  for (usize i : order) {
    const Invocation& inv = all[i];
    out += str_format("%llu,\"%s\",%llu,%llu,%u\n",
                      static_cast<unsigned long long>(inv.tid),
                      profile.name(inv.method).c_str(),
                      static_cast<unsigned long long>(inv.start),
                      static_cast<unsigned long long>(inv.end), inv.depth);
  }
  return out;
}

}  // namespace teeperf::analyzer

namespace teeperf::analyzer {

std::string chrome_trace_json(const Profile& profile) {
  std::string out = "[\n";
  bool first = true;
  for (const Invocation& inv : profile.invocations()) {
    if (!first) out += ",\n";
    first = false;
    std::string name = profile.name(inv.method);
    std::string escaped;
    for (char c : name) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    out += str_format(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,"
        "\"ts\":%.3f,\"dur\":%.3f}",
        escaped.c_str(), static_cast<unsigned long long>(inv.tid),
        profile.ticks_to_ns(inv.start) / 1e3,
        profile.ticks_to_ns(inv.inclusive()) / 1e3);
  }
  out += "\n]\n";
  return out;
}

std::string gprof_flat_report(const Profile& profile, usize limit) {
  auto stats = profile.method_stats();
  double total_s = 0;
  for (const auto& s : stats) total_s += profile.ticks_to_ns(s.exclusive_total) / 1e9;

  std::string out =
      "Flat profile (gprof format):\n"
      "  %   cumulative   self              self     total\n"
      " time   seconds   seconds    calls  ms/call  ms/call  name\n";
  double cumulative = 0;
  usize shown = 0;
  for (const auto& s : stats) {
    if (shown++ >= limit) break;
    double self_s = profile.ticks_to_ns(s.exclusive_total) / 1e9;
    double total_ms = profile.ticks_to_ns(s.inclusive_total) / 1e6;
    cumulative += self_s;
    double pct = total_s > 0 ? 100.0 * self_s / total_s : 0;
    out += str_format(
        "%6.2f %9.2f %9.2f %8llu %8.4f %8.4f  %s\n", pct, cumulative, self_s,
        static_cast<unsigned long long>(s.count),
        s.count ? self_s * 1e3 / static_cast<double>(s.count) : 0.0,
        s.count ? total_ms / static_cast<double>(s.count) : 0.0,
        profile.name(s.method).c_str());
  }
  return out;
}

}  // namespace teeperf::analyzer

namespace teeperf::analyzer {

std::string bottom_up_report(const Profile& profile, usize leaf_limit,
                             usize callers_per_leaf) {
  const auto& all = profile.invocations();

  // exclusive ticks per (method, direct caller) pair.
  struct CallerAgg {
    u64 excl = 0;
    u64 count = 0;
  };
  std::unordered_map<u64, std::unordered_map<std::string, CallerAgg>> by_method;
  std::unordered_map<u64, u64> excl_total;
  for (const Invocation& inv : all) {
    std::string caller =
        inv.parent < 0
            ? "<root>"
            : profile.name(all[static_cast<usize>(inv.parent)].method);
    CallerAgg& agg = by_method[inv.method][caller];
    agg.excl += inv.exclusive();
    ++agg.count;
    excl_total[inv.method] += inv.exclusive();
  }

  std::vector<std::pair<u64, u64>> leaves(excl_total.begin(), excl_total.end());
  std::sort(leaves.begin(), leaves.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::string out = "Bottom-up (exclusive time, by direct caller):\n";
  usize shown = 0;
  for (const auto& [method, total] : leaves) {
    if (shown++ >= leaf_limit) break;
    out += str_format("%-56s %12.3f ms\n",
                      ellipsize(profile.name(method), 56).c_str(),
                      profile.ticks_to_ns(total) / 1e6);
    std::vector<std::pair<std::string, CallerAgg>> callers(
        by_method[method].begin(), by_method[method].end());
    std::sort(callers.begin(), callers.end(), [](const auto& a, const auto& b) {
      return a.second.excl > b.second.excl;
    });
    usize cshown = 0;
    for (const auto& [caller, agg] : callers) {
      if (cshown++ >= callers_per_leaf) {
        out += str_format("    ... (%zu more callers)\n",
                          callers.size() - callers_per_leaf);
        break;
      }
      double pct = total ? 100.0 * static_cast<double>(agg.excl) /
                               static_cast<double>(total)
                         : 0;
      out += str_format("    %5.1f%% %10llu calls  from %s\n", pct,
                        static_cast<unsigned long long>(agg.count),
                        ellipsize(caller, 48).c_str());
    }
  }
  return out;
}

}  // namespace teeperf::analyzer
