// The mergeable profile format (".mprof", DESIGN.md §12).
//
// A `.mprof` is the *aggregate* of a session — per-method timing rollups,
// dynamic call-graph edges and the folded-stack histogram — with every key
// a symbolized name instead of a method id. Name keying is what makes the
// format mergeable across sessions: method ids from different processes can
// collide with different meanings (each process has its own registry /
// address space), but "kv::Get" means the same thing everywhere. Every
// field is a sum, a min, or a max over that key space, so
//
//     merge(a, merge(b, c)) == merge(merge(a, b), c) == merge(c, merge(b, a))
//
// and the empty profile is the identity — fleet flame graphs can fold
// thousands of per-session `.mprof`s in any order, any grouping, on any
// host, and always land on the same bytes. The property tests in
// tests/test_mprof.cc hold this algebra to the letter.
//
// On disk the file is CRC-framed exactly like a spill chunk (header CRC +
// payload CRC, masked), records are strictly name-sorted, and the loader
// fails closed: unordered or duplicate keys, truncated records, impossible
// aggregates (exclusive > inclusive, min > max, zero counts) and trailing
// bytes all reject the file. Strict ordering makes the serialization
// canonical — save(load(x)) == x, and profile equality is byte equality.
#pragma once

#include <compare>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "analyzer/profile.h"
#include "common/types.h"

namespace teeperf::analyzer {

inline constexpr u64 kMprofMagic = 0x54504D50524F4631ull;  // "TPMPROF1"
inline constexpr u32 kMprofVersion = 1;

// Frame ahead of the payload, same shape and CRC discipline as ChunkFrame.
struct MprofFrame {
  u64 magic = 0;
  u32 version = 0;
  u32 reserved = 0;  // zeroed: keeps serialized frames byte-deterministic
  u64 payload_bytes = 0;
  u32 payload_crc = 0;
  u32 header_crc = 0;
};
static_assert(sizeof(MprofFrame) == 32);

// Per-method aggregate. `id` keeps the *minimum* contributing method id —
// min is associative/commutative, and any single id is only a debugging
// breadcrumb once keys are names.
struct MprofMethod {
  u64 id = ~0ull;
  u64 count = 0;
  u64 inclusive_total = 0;
  u64 exclusive_total = 0;
  u64 min_inclusive = ~0ull;
  u64 max_inclusive = 0;
  bool operator==(const MprofMethod&) const = default;
};

// A call-graph edge keyed by symbolized names. Root edges (thread roots)
// carry an empty caller and from_root=true; the loader enforces that the
// two always agree.
struct MprofEdgeKey {
  std::string caller;
  std::string callee;
  bool from_root = false;
  auto operator<=>(const MprofEdgeKey&) const = default;
};

struct MprofEdge {
  u64 count = 0;
  u64 inclusive_total = 0;
  bool operator==(const MprofEdge&) const = default;
};

// Reconstruction health, summed across everything merged in.
struct MprofStats {
  u64 entries = 0;
  u64 stray_returns = 0;
  u64 mismatched_returns = 0;
  u64 unwound_frames = 0;
  u64 incomplete = 0;
  u64 tombstones = 0;
  u64 thread_count = 0;
  bool operator==(const MprofStats&) const = default;
};

class MergeableProfile {
 public:
  // Canonicalizes an in-memory Profile: rekeys methods/edges by symbolized
  // name (combining ids that share a name) and copies the folded-stack
  // histogram. This is the reference the streaming analyzer is held
  // differentially equal to.
  static MergeableProfile from_profile(const Profile& p);

  // Canonical serialization (frame + payload). Deterministic: equal
  // profiles serialize to equal bytes.
  std::string save() const;
  bool save_to(const std::string& path) const;

  // Fail-closed deserialization; on nullopt, *error (if given) says why.
  static std::optional<MergeableProfile> load_bytes(std::string_view bytes,
                                                    std::string* error = nullptr);
  static std::optional<MergeableProfile> load(const std::string& path,
                                              std::string* error = nullptr);

  // Folds `other` into this profile: counts/totals add, min/max combine,
  // sessions sum, tick rates reconcile (either zero → the other; both set →
  // max). Associative and commutative; MergeableProfile{} is the identity.
  // Returns false — leaving *this unchanged — if any u64 addition would
  // overflow (hostile inputs must not wrap counters into small lies).
  bool merge(const MergeableProfile& other);

  bool empty() const {
    return methods.empty() && edges.empty() && stacks.empty();
  }
  u64 total_exclusive() const;

  // Folded stacks in flame-graph input form (already name-sorted).
  std::string folded() const;

  bool operator==(const MergeableProfile&) const = default;

  // Aggregates are public state, not behavior: the maps *are* the format,
  // ordered so iteration equals serialization order.
  std::map<std::string, MprofMethod> methods;
  std::map<MprofEdgeKey, MprofEdge> edges;
  std::map<std::string, u64> stacks;  // folded path → exclusive ticks
  MprofStats stats;
  double ns_per_tick = 0.0;
  u64 sessions = 0;  // leaf profiles folded into this aggregate
};

}  // namespace teeperf::analyzer
