// The declarative query interface (§II-C "Queries").
//
// The paper drops the user into an interactive pandas session over the
// decoded log. The C++ equivalent here is a small combinator API over the
// invocation table: filters, sorts, projections and grouped aggregations
// compose left-to-right and each step returns a new (cheap, index-based)
// table. Example — "which thread called which method how often":
//
//   auto t = InvocationTable(profile)
//                .group_by([](const Invocation& i) {
//                  return std::pair{i.tid, i.method};
//                });
//
// Tables reference the Profile; the Profile must outlive them.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analyzer/profile.h"

namespace teeperf::analyzer {

enum class SortKey { kInclusive, kExclusive, kStart, kDepth, kCallsMade };

class InvocationTable {
 public:
  explicit InvocationTable(const Profile& profile);

  // --- filters ------------------------------------------------------------
  InvocationTable filter(const std::function<bool(const Invocation&)>& pred) const;
  InvocationTable where_method(u64 method) const;
  // Substring match against the symbolized name.
  InvocationTable where_name_contains(const std::string& needle) const;
  InvocationTable where_tid(u64 tid) const;
  InvocationTable where_depth_between(u32 lo, u32 hi) const;
  InvocationTable where_min_inclusive(u64 ticks) const;
  InvocationTable complete_only() const;
  // Invocations whose (transitive) ancestry includes `method` — the
  // "performance depending on the call history of a method" query (§II-C).
  InvocationTable where_called_under(u64 ancestor_method) const;

  // --- ordering / slicing --------------------------------------------------
  InvocationTable sort_by(SortKey key, bool descending = true) const;
  InvocationTable top(usize n) const;

  // --- scalar aggregates ---------------------------------------------------
  usize count() const { return rows_.size(); }
  u64 sum_inclusive() const;
  u64 sum_exclusive() const;
  double mean_inclusive() const;
  u64 max_inclusive() const;

  // --- grouped aggregates --------------------------------------------------
  struct Group {
    std::string key;
    usize count = 0;
    u64 inclusive_total = 0;
    u64 exclusive_total = 0;
  };
  // Groups rows by an arbitrary string key; groups come back sorted by
  // exclusive_total descending.
  std::vector<Group> group_by(
      const std::function<std::string(const Invocation&)>& key_fn) const;
  std::vector<Group> group_by_method() const;
  std::vector<Group> group_by_tid() const;
  std::vector<Group> group_by_method_and_tid() const;
  // Groups by the *caller's* name ("who spends time calling X").
  std::vector<Group> group_by_caller() const;

  // --- access ---------------------------------------------------------------
  const Invocation& row(usize i) const;
  const Profile& profile() const { return *profile_; }
  // Renders the table (up to `limit` rows) for terminal inspection.
  std::string to_string(usize limit = 20) const;

 private:
  InvocationTable(const Profile& profile, std::vector<usize> rows);

  const Profile* profile_;
  std::vector<usize> rows_;  // indices into profile_->invocations()
};

}  // namespace teeperf::analyzer
