#include "analyzer/stream.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/fileutil.h"
#include "core/symbol_registry.h"
#include "drain/chunk_format.h"

namespace teeperf::analyzer {

namespace {

// Runs fn(0..n-1) on a small worker pool — the build_sharded pattern. Used
// to aggregate the shards of one dump concurrently; every aggregate is a
// sum/min/max over disjoint per-shard state, so scheduling cannot change
// the result.
template <typename F>
void run_parallel(usize n, F&& fn) {
  u32 hw = std::thread::hardware_concurrency();
  usize workers = std::min<usize>(hw == 0 ? 1 : hw, n);
  if (workers <= 1) {
    for (usize i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<usize> next{0};
  auto work = [&] {
    for (usize i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (usize w = 1; w < workers; ++w) pool.emplace_back(work);
  work();
  for (auto& t : pool) t.join();
}

void set_err(std::string* error, const char* why) {
  if (error) *error = why;
}

}  // namespace

StreamAnalyzer::StreamAnalyzer(std::unordered_map<u64, std::string> symbols)
    : symbols_(std::move(symbols)) {}

void StreamAnalyzer::ensure_shards(usize n) {
  while (shards_.size() < n) shards_.push_back(std::make_unique<ShardState>());
}

const std::string& StreamAnalyzer::cached_name(ShardState& sh,
                                               u64 method) const {
  auto it = sh.names.find(method);
  if (it == sh.names.end()) {
    it = sh.names.emplace(method, name_of(method)).first;
  }
  return it->second;
}

void StreamAnalyzer::close_top(ShardState& sh, ThreadState& t,
                               u64 end_counter) {
  Frame f = t.open.back();
  t.open.pop_back();
  // Clamp against a non-monotonic counter, exactly as Profile::build does.
  u64 end = std::max(end_counter, f.start);
  u64 incl = end - f.start;
  u64 excl = f.children <= incl ? incl - f.children : 0;

  MethodAgg& ma = sh.methods[f.method];
  ++ma.count;
  ma.inclusive_total += incl;
  ma.exclusive_total += excl;
  ma.min_inclusive = std::min(ma.min_inclusive, incl);
  ma.max_inclusive = std::max(ma.max_inclusive, incl);

  EdgeAgg& ea = sh.edges[EdgeKey{f.from_root ? 0 : f.parent_method, f.method,
                                 f.from_root}];
  ++ea.count;
  ea.inclusive_total += incl;

  // t.path currently ends with this frame's name — it IS the root→self
  // folded path; record it, then truncate back to the parent's path.
  if (excl > 0) sh.folded[t.path] += excl;
  t.path.resize(f.path_len);

  // The frame below is still open (pops go top-down), so its children sum
  // accumulates exactly as the parent Invocation's would in build().
  if (!t.open.empty()) t.open.back().children += incl;
}

void StreamAnalyzer::feed(u32 shard, const LogEntry* entries, u64 n) {
  ensure_shards(static_cast<usize>(shard) + 1);
  ShardState& sh = *shards_[shard];
  sh.recon.entries += n;

  for (u64 i = 0; i < n; ++i) {
    const LogEntry& e = entries[i];
    // Tombstones: all-zero slots a dead writer reserved but never filled.
    if (e.kind_and_counter == 0 && e.addr == 0 && e.tid == 0 &&
        e.reserved == 0) {
      ++sh.recon.tombstones;
      continue;
    }
    ThreadState& t = sh.threads[e.tid];
    t.last_counter = e.counter();

    if (e.kind() == EventKind::kCall) {
      Frame f;
      f.method = e.addr;
      f.start = e.counter();
      f.from_root = t.open.empty();
      f.parent_method = f.from_root ? 0 : t.open.back().method;
      f.path_len = t.path.size();
      if (!t.open.empty()) t.path += ';';
      t.path += cached_name(sh, e.addr);
      t.open.push_back(f);
      continue;
    }

    // Return: same repair policy as build() — stray if the stack is empty,
    // mismatched if nothing on the stack matches, otherwise unwind to the
    // nearest matching frame.
    if (t.open.empty()) {
      ++sh.recon.stray_returns;
      continue;
    }
    usize match = t.open.size();
    for (usize k = t.open.size(); k-- > 0;) {
      if (t.open[k].method == e.addr) {
        match = k;
        break;
      }
    }
    if (match == t.open.size()) {
      ++sh.recon.mismatched_returns;
      continue;
    }
    while (t.open.size() > match) {
      close_top(sh, t, e.counter());
      if (t.open.size() != match) ++sh.recon.unwound_frames;
    }
  }
}

void StreamAnalyzer::feed_dump(const ParsedDump& dump) {
  ensure_shards(dump.shards.size());
  std::vector<u32> live;
  for (usize s = 0; s < dump.shards.size(); ++s) {
    if (!dump.shards[s].empty()) live.push_back(static_cast<u32>(s));
  }
  run_parallel(live.size(), [&](usize i) {
    u32 s = live[i];
    feed(s, dump.shards[s].data(), dump.shards[s].size());
  });
}

MergeableProfile StreamAnalyzer::finish() {
  MergeableProfile m;
  m.sessions = 1;
  m.ns_per_tick = ns_per_tick_;

  for (auto& shp : shards_) {
    ShardState& sh = *shp;
    // Close whatever is still open with each thread's last counter; build()
    // flags these incomplete, and only the counters feed the aggregates.
    for (auto& [tid, t] : sh.threads) {
      (void)tid;
      while (!t.open.empty()) {
        close_top(sh, t, t.last_counter);
        ++sh.recon.incomplete;
      }
    }

    m.stats.entries += sh.recon.entries;
    m.stats.stray_returns += sh.recon.stray_returns;
    m.stats.mismatched_returns += sh.recon.mismatched_returns;
    m.stats.unwound_frames += sh.recon.unwound_frames;
    m.stats.incomplete += sh.recon.incomplete;
    m.stats.tombstones += sh.recon.tombstones;
    // tid % shard_count confines a thread to one shard: disjoint, sums exactly.
    m.stats.thread_count += sh.threads.size();

    for (auto& [id, agg] : sh.methods) {
      MprofMethod& mm = m.methods[cached_name(sh, id)];
      mm.id = std::min(mm.id, id);
      mm.count += agg.count;
      mm.inclusive_total += agg.inclusive_total;
      mm.exclusive_total += agg.exclusive_total;
      mm.min_inclusive = std::min(mm.min_inclusive, agg.min_inclusive);
      mm.max_inclusive = std::max(mm.max_inclusive, agg.max_inclusive);
    }
    for (auto& [key, agg] : sh.edges) {
      MprofEdgeKey k{key.from_root ? std::string() : cached_name(sh, key.caller),
                     cached_name(sh, key.callee), key.from_root};
      MprofEdge& me = m.edges[std::move(k)];
      me.count += agg.count;
      me.inclusive_total += agg.inclusive_total;
    }
    for (auto& [path, ticks] : sh.folded) m.stacks[path] += ticks;
  }
  return m;
}

std::optional<MergeableProfile> StreamAnalyzer::analyze_spill(
    const std::string& prefix, std::string* error) {
  std::unordered_map<u64, std::string> symbols;
  if (auto sym = read_file(prefix + ".sym")) symbols = SymbolRegistry::parse(*sym);
  StreamAnalyzer sa(std::move(symbols));
  SpillStitcher st;

  // One dump at a time: collect the stitcher's deduplicated spans (views
  // into the dump, alive for this call), then aggregate them in parallel —
  // each span is a distinct shard, so the workers share nothing.
  struct Span {
    u32 shard;
    const LogEntry* entries;
    u64 n;
  };
  auto absorb = [&](const ParsedDump& pd) -> bool {
    std::vector<Span> spans;
    if (!st.absorb(pd, [&](u32 s, const LogEntry* e, u64 n) {
          spans.push_back({s, e, n});
        })) {
      return false;
    }
    sa.ensure_shards(st.shard_count());
    run_parallel(spans.size(), [&](usize i) {
      sa.feed(spans[i].shard, spans[i].entries, spans[i].n);
    });
    return true;
  };

  bool bad = false;
  drain::ChunkScan scan = drain::for_each_chunk(
      prefix, [&](u32, std::string_view payload) {
        auto pd = parse_dump(payload);
        if (!pd || !absorb(*pd)) {
          bad = true;
          return false;
        }
        return true;
      });
  if (bad || scan == drain::ChunkScan::kCorrupt) {
    set_err(error, "corrupt chunk sequence");
    return std::nullopt;
  }

  // The final residue dump — optional, as in Profile::load_spill.
  if (auto raw = read_file(prefix + ".log")) {
    auto pd = parse_dump(*raw);
    if (!pd || !absorb(*pd)) {
      set_err(error, "bad residue dump");
      return std::nullopt;
    }
  }

  if (!st.any()) {
    set_err(error, "no chunks and no residue dump");
    return std::nullopt;
  }
  sa.set_ns_per_tick(st.ns_per_tick());
  return sa.finish();
}

std::optional<MergeableProfile> StreamAnalyzer::analyze(
    const std::string& prefix, std::string* error) {
  if (file_exists(drain::chunk_path(prefix, 0))) {
    return analyze_spill(prefix, error);
  }
  auto raw = read_file(prefix + ".log");
  if (!raw) {
    set_err(error, "cannot read log");
    return std::nullopt;
  }
  std::unordered_map<u64, std::string> symbols;
  if (auto sym = read_file(prefix + ".sym")) symbols = SymbolRegistry::parse(*sym);
  auto pd = parse_dump(*raw);
  if (!pd) {
    set_err(error, "unparseable dump");
    return std::nullopt;
  }
  StreamAnalyzer sa(std::move(symbols));
  sa.feed_dump(*pd);
  sa.set_ns_per_tick(pd->ns_per_tick);
  return sa.finish();
}

}  // namespace teeperf::analyzer
