#include "analyzer/dump_reader.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

namespace teeperf::analyzer {

std::optional<ParsedDump> parse_dump(std::string_view bytes) {
  if (bytes.size() < sizeof(LogHeader)) return std::nullopt;
  alignas(LogHeader) unsigned char header_buf[sizeof(LogHeader)];
  std::memcpy(header_buf, bytes.data(), sizeof(LogHeader));
  const auto* h = reinterpret_cast<const LogHeader*>(header_buf);
  if (h->magic != kLogMagic) return std::nullopt;
  if (h->version != kLogVersion && h->version != kLogVersionSharded) {
    return std::nullopt;
  }
  ParsedDump d;
  d.ns_per_tick = h->ns_per_tick;
  if (!std::isfinite(d.ns_per_tick) || d.ns_per_tick < 0.0) d.ns_per_tick = 0.0;

  if (h->version == kLogVersion) {
    // Only complete entries present in the buffer are consumed; a log
    // truncated mid-write simply yields fewer entries (§II-B: the analyzer
    // dismisses records "which might be wrong at the end of the log"). The
    // clamp to `available` also defuses a corrupt tail/max_entries.
    u64 available = (bytes.size() - sizeof(LogHeader)) / sizeof(LogEntry);
    u64 tail = h->tail.load(std::memory_order_relaxed);
    u64 n = std::min({available, tail, h->max_entries});
    d.shards.emplace_back();
    d.starts.push_back(0);
    d.shards[0].resize(static_cast<usize>(n));
    if (n > 0) {
      std::memcpy(d.shards[0].data(), bytes.data() + sizeof(LogHeader),
                  static_cast<usize>(n) * sizeof(LogEntry));
    }
    return d;
  }

  // v2: a shard directory follows the header; every field in it is as
  // attacker-controlled as the header, so each window is independently
  // clamped and the sum of all windows is budgeted against what the file
  // actually holds — a hostile directory of kMaxLogShards overlapping
  // full-size segments must not multiply a small file into gigabytes.
  u32 nshards = h->shard_count;
  if (nshards == 0 || nshards > kMaxLogShards) return std::nullopt;
  usize dir_bytes = static_cast<usize>(nshards) * sizeof(LogShard);
  if (bytes.size() - sizeof(LogHeader) < dir_bytes) return std::nullopt;
  std::vector<LogShard> dir(nshards);
  std::memcpy(static_cast<void*>(dir.data()), bytes.data() + sizeof(LogHeader),
              dir_bytes);

  const char* entry_base = bytes.data() + sizeof(LogHeader) + dir_bytes;
  u64 available = (bytes.size() - sizeof(LogHeader) - dir_bytes) / sizeof(LogEntry);
  u64 budget = available;  // total entries any directory may make us copy
  d.shards.resize(nshards);
  d.starts.resize(nshards, 0);
  for (u32 s = 0; s < nshards; ++s) {
    d.starts[s] = dir[s].drained.load(std::memory_order_relaxed);
    u64 off = dir[s].entry_offset;
    if (off >= available) continue;  // also rejects u64-overflow offsets
    u64 n = dir[s].tail.load(std::memory_order_relaxed);
    // Subtraction form: off + capacity could wrap u64.
    n = std::min({n, dir[s].capacity, available - off, budget});
    budget -= n;
    d.shards[s].resize(static_cast<usize>(n));
    if (n > 0) {
      std::memcpy(d.shards[s].data(), entry_base + off * sizeof(LogEntry),
                  static_cast<usize>(n) * sizeof(LogEntry));
    }
  }
  return d;
}

bool SpillStitcher::absorb(const ParsedDump& dump, const WindowFn& fn) {
  if (cursors_.empty()) cursors_.assign(dump.shards.size(), 0);
  if (dump.shards.size() != cursors_.size()) return false;
  for (usize s = 0; s < cursors_.size(); ++s) {
    const std::vector<LogEntry>& win = dump.shards[s];
    u64 start = dump.starts[s];
    u64 skip = 0;
    if (start < cursors_[s]) {
      skip = cursors_[s] - start;
      if (skip >= win.size()) continue;  // fully duplicate window
    }
    fn(static_cast<u32>(s), win.data() + skip, win.size() - skip);
    cursors_[s] = start + win.size();
  }
  if (dump.ns_per_tick > 0.0) ns_per_tick_ = dump.ns_per_tick;
  return true;
}

}  // namespace teeperf::analyzer
