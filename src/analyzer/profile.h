// The offline analyzer (§II-B, stage #3).
//
// Reads a recorded log (from file or live from a ProfileLog), groups call
// and return entries per thread, reconstructs every call stack, and derives
// per-invocation and per-method timing. The paper implements this stage in
// Python/pandas; here it is C++ with an equivalent typed query API
// (query.h), which keeps the whole reproduction in one language and makes
// the analyzer testable alongside the recorder.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/log_format.h"

namespace teeperf::analyzer {

// Shared name resolution: the explicit symbol map first, then the live
// registry (in-process analysis without a .sym file), then hex. Used by
// Profile::name and the streaming analyzer (stream.h) so both pipelines
// symbolize identically — the differential tests depend on it.
std::string resolve_name(const std::unordered_map<u64, std::string>& symbols,
                         u64 method);

// One reconstructed function execution.
struct Invocation {
  u64 method = 0;       // function address / registered id
  u64 tid = 0;
  u64 start = 0;        // counter at entry
  u64 end = 0;          // counter at exit (or last counter seen, if truncated)
  u64 children = 0;     // sum of direct children's inclusive ticks
  u32 depth = 0;        // 0 = thread root
  i64 parent = -1;      // index into invocations(); -1 for roots
  u64 calls_made = 0;   // number of direct callees
  bool complete = true; // false when the log ended before the return

  u64 inclusive() const { return end - start; }
  // "Real time spent in the method" (§II-B stage #3): inclusive minus time
  // attributed to callees.
  u64 exclusive() const {
    u64 inc = inclusive();
    return children <= inc ? inc - children : 0;
  }
};

// Defects found while reconstructing; a healthy log has all zeros except
// possibly incomplete (threads still running when the log was dumped).
struct ReconstructionStats {
  u64 stray_returns = 0;     // return with an empty stack
  u64 mismatched_returns = 0;  // return address not on the stack
  u64 unwound_frames = 0;    // frames force-closed to match a return
  u64 incomplete = 0;        // invocations open at end of log
  u64 tombstones = 0;        // all-zero slots: reserved, never filled (dead writer)
  u64 entries = 0;           // log entries consumed
};

struct MethodStats {
  u64 method = 0;
  u64 count = 0;
  u64 inclusive_total = 0;  // note: recursive methods count nested time twice
  u64 exclusive_total = 0;
  u64 min_inclusive = ~0ull;
  u64 max_inclusive = 0;
  double mean_inclusive() const {
    return count ? static_cast<double>(inclusive_total) / static_cast<double>(count) : 0;
  }
};

// A caller→callee edge in the dynamic call graph.
struct CallEdge {
  u64 caller = 0;  // 0 with is_root=true means "thread root"
  u64 callee = 0;
  bool from_root = false;
  u64 count = 0;
  u64 inclusive_total = 0;
};

// Consistency findings from validate(); a clean trace has no entries.
struct ValidationIssue {
  enum class Kind {
    kNonMonotonicCounter,  // a thread's counter went backwards
    kUnbalancedThread,     // calls != returns for a thread at end of log
    kZeroAddress,          // an entry with address 0
  };
  Kind kind;
  u64 tid = 0;
  u64 entry_index = 0;
  std::string detail;
};

class Profile {
 public:
  // Loads "<prefix>.log" + "<prefix>.sym" written by Recorder::dump().
  // Sessions recorded with --spill are detected automatically (by the
  // presence of "<prefix>.seg.0000") and routed through load_spill().
  static std::optional<Profile> load(const std::string& prefix);

  // Loads a spill session: stitches the drainer's chunk files
  // ("<prefix>.seg.NNNN", in sequence order) plus the final residue dump
  // ("<prefix>.log", optional — a session killed before dump still loads)
  // into one profile. Per-thread order is preserved because shards drain
  // in order; the absolute start cursor every chunk records per window is
  // used to skip the overlap a drainer crash between persist and
  // cursor-advance leaves behind. A torn trailing chunk is tolerated (its
  // window was never marked drained, so the residue re-covers it); a bad
  // chunk in the middle of the sequence is corruption and fails the load.
  static std::optional<Profile> load_spill(const std::string& prefix);

  // Builds from serialized dump bytes already in memory (the fuzz runner's
  // entry point, and what load() uses underneath). Never trusts the bytes:
  // the header is copied out (no alignment or atomic assumptions on the
  // buffer), entry count is clamped to what the buffer actually holds, and
  // a non-finite ns_per_tick is discarded. nullopt on a bad magic/version
  // or a sub-header buffer.
  static std::optional<Profile> load_bytes(
      std::string_view log_bytes,
      std::unordered_map<u64, std::string> symbols = {});

  // Loads several dumps into one profile — the multi-process case the log
  // header's PID field exists for (§II-B: "differentiate multiple runs or
  // multiple application[s]"). Thread ids are namespaced per input
  // (pid<<32 | tid) so reconstructions cannot interleave. Inputs that fail
  // to load are skipped; returns nullopt only if none load.
  static std::optional<Profile> load_many(const std::vector<std::string>& prefixes);

  // Builds directly from a live in-memory log (no file round trip).
  static Profile from_log(const ProfileLog& log,
                          std::unordered_map<u64, std::string> symbols,
                          double ns_per_tick = 0.0);

  // Builds from a bare entry window already copied out of a log — the
  // live-monitoring path (teeperf_monitord's rolling flame-graph snapshots
  // reconstruct bounded windows without adopting the whole region).
  static Profile from_entries(const LogEntry* entries, u64 n,
                              std::unordered_map<u64, std::string> symbols,
                              double ns_per_tick = 0.0);

  const std::vector<Invocation>& invocations() const { return invocations_; }
  const ReconstructionStats& recon_stats() const { return recon_; }
  double ns_per_tick() const { return ns_per_tick_; }
  u64 thread_count() const { return thread_count_; }

  // Human name for a method id (falls back to hex).
  std::string name(u64 method) const;

  // Per-method aggregation, sorted by exclusive time descending — the
  // "presented in a sorted way to the programmer" report source.
  std::vector<MethodStats> method_stats() const;

  // Dynamic call-graph edges, sorted by count descending.
  std::vector<CallEdge> call_edges() const;

  // Semicolon-joined stack → total exclusive ticks, the Flame Graph input
  // ("folded stacks"). Stacks are per-invocation paths root→leaf.
  std::vector<std::pair<std::string, u64>> folded_stacks() const;

  // The single most expensive stack (by exclusive ticks attributed to that
  // exact path) — "the most frequent code path" the paper uses flame graphs
  // to find, as a direct query. Empty path when there are no invocations.
  std::pair<std::string, u64> hottest_stack() const;

  double ticks_to_ns(u64 ticks) const {
    return ns_per_tick_ > 0 ? static_cast<double>(ticks) * ns_per_tick_
                            : static_cast<double>(ticks);
  }

  // Pre-reconstruction consistency check of a raw log: per-thread counter
  // monotonicity, call/return balance, null addresses. Run it before
  // trusting a log from an unfamiliar recorder build.
  static std::vector<ValidationIssue> validate(const ProfileLog& log);
  static std::vector<ValidationIssue> validate(const LogEntry* entries, u64 n);
  // File-level variant for dumps (which persist only the written entries).
  // nullopt when the file is missing or malformed.
  static std::optional<std::vector<ValidationIssue>> validate_file(
      const std::string& prefix);

 private:
  friend class InvocationTable;

  static Profile build(const LogEntry* entries, u64 n,
                       std::unordered_map<u64, std::string> symbols,
                       double ns_per_tick);

  // v2 sharded logs: reconstruct each shard's window concurrently (a thread
  // is confined to one shard, so call-stack reconstruction never crosses a
  // window boundary), then merge in shard order. The merge rebases parent
  // indices only — method ids and tids are shared across shards, unlike
  // load_many's cross-process rekeying — so the result is deterministic
  // regardless of worker scheduling.
  static Profile build_sharded(const std::vector<std::vector<LogEntry>>& shards,
                               std::unordered_map<u64, std::string> symbols,
                               double ns_per_tick);

  std::vector<Invocation> invocations_;
  std::unordered_map<u64, std::string> symbols_;
  ReconstructionStats recon_;
  double ns_per_tick_ = 0.0;
  u64 thread_count_ = 0;
};

}  // namespace teeperf::analyzer
