// Shared dump-parsing layer for the in-memory loader (profile.cc) and the
// streaming analyzer (stream.cc).
//
// A serialized compact dump — a recorder dump, a spill chunk payload, or a
// spill residue — parses into one window of entries per shard plus the
// absolute start cursor of each window. Both consumers need exactly that
// view, and both need the same stitch-and-deduplicate policy when a session
// spans many chunk files; keeping the parser and the stitcher here means a
// hostile-input hardening fix lands in both pipelines at once.
#pragma once

#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "core/log_format.h"

namespace teeperf::analyzer {

// A serialized dump copied into properly typed, aligned storage. The raw
// byte buffer guarantees neither alignment nor sanity — reading LogHeader's
// atomics in place would be undefined, and every header field is attacker-
// controlled once dumps come from a hostile host.
struct ParsedDump {
  // One window of entries per shard: v1 dumps parse into a single window,
  // v2 into one per directory entry (possibly empty). A thread's entries
  // live entirely inside one window.
  std::vector<std::vector<LogEntry>> shards;
  // Per-window absolute start cursor, parallel to `shards`: the serialized
  // directory's `drained` field. 0 for v1 dumps and for v2 logs that never
  // drained or wrapped; spill chunks and spill residue dumps record where
  // in the shard's stream each window begins, which is what lets the
  // multi-chunk loader stitch and deduplicate.
  std::vector<u64> starts;
  double ns_per_tick = 0.0;

  bool single() const { return shards.size() <= 1; }
  u64 total() const {
    u64 n = 0;
    for (const auto& s : shards) n += s.size();
    return n;
  }
  // Concatenated windows, for consumers that want one flat span (validate).
  // Per-thread order is preserved: a thread never spans two windows.
  std::vector<LogEntry> flatten() const {
    std::vector<LogEntry> out;
    out.reserve(static_cast<usize>(total()));
    for (const auto& s : shards) out.insert(out.end(), s.begin(), s.end());
    return out;
  }
};

// Parses one serialized dump. Never trusts the bytes: the header is copied
// out (no alignment or atomic assumptions on the buffer), every window is
// independently clamped to what the buffer actually holds, and the sum of
// all windows is budgeted so a hostile directory cannot multiply a small
// file into gigabytes. nullopt on a bad magic/version or sub-header buffer.
std::optional<ParsedDump> parse_dump(std::string_view bytes);

// Stitches a sequence of parsed dumps (spill chunks in order, residue last)
// into per-shard streams without materializing them. Windows arrive in
// cursor order; a window starting below a shard's cursor overlaps what a
// crashed drainer already persisted and the duplicate prefix is skipped, a
// window starting above it sits after force-dropped entries (already
// accounted in the drop counters) and simply appends. Consumers receive the
// deduplicated spans through the callback — the in-memory loader appends
// them to vectors, the streaming analyzer feeds them straight into
// per-shard reconstruction state.
class SpillStitcher {
 public:
  using WindowFn =
      std::function<void(u32 shard, const LogEntry* entries, u64 n)>;

  // Absorbs one dump's windows, invoking `fn` for every non-duplicate span.
  // The shard count is fixed by the first dump absorbed; false on mismatch.
  bool absorb(const ParsedDump& dump, const WindowFn& fn);

  bool any() const { return !cursors_.empty(); }
  usize shard_count() const { return cursors_.size(); }
  // The last nonzero tick rate seen (the residue dump's, normally).
  double ns_per_tick() const { return ns_per_tick_; }

 private:
  std::vector<u64> cursors_;
  double ns_per_tick_ = 0.0;
};

}  // namespace teeperf::analyzer
