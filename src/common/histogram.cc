#include "common/histogram.h"

#include <algorithm>
#include <bit>

#include "common/stringutil.h"

namespace teeperf {

namespace hist {

usize bucket_for(u64 v) {
  if (v == 0) return 0;
  usize b = static_cast<usize>(64 - std::countl_zero(v));
  return b < kLogBuckets ? b : kLogBuckets - 1;
}

u64 bucket_low(usize b) { return b == 0 ? 0 : (1ull << (b - 1)); }

u64 bucket_high(usize b) { return b == 0 ? 0 : ((1ull << b) - 1); }

double percentile(const u64* buckets, usize n, u64 count, u64 lo, u64 hi,
                  double p) {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double target = p / 100.0 * static_cast<double>(count);
  u64 seen = 0;
  for (usize b = 0; b < n; ++b) {
    if (buckets[b] == 0) continue;
    if (static_cast<double>(seen + buckets[b]) >= target) {
      double within = (target - static_cast<double>(seen)) /
                      static_cast<double>(buckets[b]);
      double blo = static_cast<double>(bucket_low(b));
      double bhi = static_cast<double>(bucket_high(b));
      double v = blo + within * (bhi - blo);
      return std::clamp(v, static_cast<double>(lo), static_cast<double>(hi));
    }
    seen += buckets[b];
  }
  return static_cast<double>(hi);
}

}  // namespace hist

void LatencyHistogram::add(u64 value) {
  usize b = hist::bucket_for(value);
  if (b >= kBuckets) b = kBuckets - 1;
  ++buckets_[b];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (usize i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() { *this = LatencyHistogram(); }

double LatencyHistogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::percentile(double p) const {
  return hist::percentile(buckets_.data(), kBuckets, count_, min(), max_, p);
}

std::string LatencyHistogram::summary(const char* unit) const {
  return str_format(
      "count=%llu min=%llu%s mean=%.1f%s p50=%.0f%s p99=%.0f%s max=%llu%s",
      static_cast<unsigned long long>(count_),
      static_cast<unsigned long long>(min()), unit, mean(), unit,
      percentile(50), unit, percentile(99), unit,
      static_cast<unsigned long long>(max_), unit);
}

}  // namespace teeperf
