// Minimal filesystem helpers used by the recorder (log persistence), the
// kvstore substrate (WAL / SSTables) and the bench harnesses.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace teeperf {

bool write_file(const std::string& path, std::string_view contents);
bool append_file(const std::string& path, std::string_view contents);
std::optional<std::string> read_file(const std::string& path);
bool file_exists(const std::string& path);
bool remove_file(const std::string& path);
// Creates the directory (and parents). Returns false only on hard failure.
bool make_dirs(const std::string& path);
// Removes a directory tree created by tests/benches.
void remove_tree(const std::string& path);
// A fresh unique directory under $TMPDIR (or /tmp) with the given prefix.
std::string make_temp_dir(const std::string& prefix);

}  // namespace teeperf
