// Small string helpers shared by reports, benches and workload drivers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace teeperf {

// "1.5 KiB", "874.0 MiB" — binary units, one decimal.
std::string human_bytes(double bytes);

// "12,345,678" — thousands separators for table output.
std::string with_commas(u64 v);

// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string_view> split(std::string_view s, char sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Truncates to `max` characters, appending ".." if shortened.
std::string ellipsize(std::string_view s, usize max);

}  // namespace teeperf
