// Deterministic, fast pseudo-random generators used by workload generators
// and property tests. Not cryptographic.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/types.h"

namespace teeperf {

// xorshift64* — one multiply and three shifts per number; good enough
// statistical quality for workload generation and far cheaper than
// <random> engines on the hot path.
class Xorshift64 {
 public:
  explicit Xorshift64(u64 seed = 0x9e3779b97f4a7c15ull)
      : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  u64 next() {
    u64 x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  // Uniform in [0, bound). bound must be > 0.
  u64 next_below(u64 bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  i64 next_in(i64 lo, i64 hi) {
    return lo + static_cast<i64>(next_below(static_cast<u64>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  // Lowercase ASCII string of exactly `len` characters.
  std::string next_word(usize len) {
    std::string s(len, 'a');
    for (auto& c : s) c = static_cast<char>('a' + next_below(26));
    return s;
  }

  void reseed(u64 seed) { state_ = seed ? seed : 0x9e3779b97f4a7c15ull; }

 private:
  u64 state_;
};

// Skewed key generator used by the db_bench-style drivers: picks keys with a
// simple power-law bias so that caches and bloom filters see realistic hit
// patterns.
class SkewedPicker {
 public:
  SkewedPicker(u64 space, double skew, u64 seed)
      : space_(space ? space : 1), skew_(skew), rng_(seed) {}

  u64 next() {
    if (skew_ <= 0.0) return rng_.next_below(space_);
    // Raise a uniform draw to a power > 1 to concentrate mass near 0.
    double u = rng_.next_double();
    double biased = 1.0;
    for (double s = skew_; s > 0.0; s -= 1.0) {
      biased *= (s >= 1.0) ? u : (u * s + (1.0 - s));
    }
    u64 v = static_cast<u64>(biased * static_cast<double>(space_));
    return v >= space_ ? space_ - 1 : v;
  }

 private:
  u64 space_;
  double skew_;
  Xorshift64 rng_;
};

}  // namespace teeperf
