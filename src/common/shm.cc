#include "common/shm.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "faultsim/fault.h"
#include "faultsim/fault_points.h"

namespace teeperf {

SharedMemoryRegion& SharedMemoryRegion::operator=(SharedMemoryRegion&& other) noexcept {
  if (this != &other) {
    close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    name_ = std::exchange(other.name_, {});
    owns_name_ = std::exchange(other.owns_name_, false);
  }
  return *this;
}

bool SharedMemoryRegion::create(const std::string& name, usize size) {
  close();
  // Fault point: shm exhaustion on the host (ENOSPC on /dev/shm).
  if (fault::fires(fault_points::kShmCreateFail)) return false;
  int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return false;
  if (ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    shm_unlink(name.c_str());
    return false;
  }
  void* p = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) {
    shm_unlink(name.c_str());
    return false;
  }
  data_ = p;
  size_ = size;
  name_ = name;
  owns_name_ = true;
  return true;
}

bool SharedMemoryRegion::open(const std::string& name) {
  close();
  // Fault points: the attach side losing the race with an owner that died
  // (open fails) or mapping a region the owner truncated under it.
  if (fault::fires(fault_points::kShmOpenFail)) return false;
  int fd = shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return false;
  struct stat st {};
  if (fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return false;
  }
  usize size = static_cast<usize>(st.st_size);
  if (fault::fires(fault_points::kShmOpenTruncate)) {
    usize page = 4096;
    size = size / 2 < page ? page : size / 2;
    if (size > static_cast<usize>(st.st_size)) size = static_cast<usize>(st.st_size);
  }
  void* p = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) return false;
  data_ = p;
  size_ = size;
  name_ = name;
  owns_name_ = false;
  return true;
}

bool SharedMemoryRegion::create_anonymous(usize size) {
  close();
  void* p = mmap(nullptr, size, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return false;
  data_ = p;
  size_ = size;
  return true;
}

void SharedMemoryRegion::close() {
  if (data_) munmap(data_, size_);
  if (owns_name_ && !name_.empty()) shm_unlink(name_.c_str());
  data_ = nullptr;
  size_ = 0;
  name_.clear();
  owns_name_ = false;
}

}  // namespace teeperf
