// On-disk session registry: the discovery layer between profiling sessions
// and host-side observers (tools/teeperf_monitord, tools/teeperf_stats).
//
// Every named session (teeperf_record, or an embedding Recorder) publishes
// one JSON descriptor file "<dir>/<name>.json" naming its shm segments and
// owner pid, and removes it on clean exit. Observers enumerate the
// directory instead of guessing shm names, so N concurrent sessions on one
// host never collide and never cross-attach (the bug the old
// "/teeperf.<pid>" convention had when a pid was ambiguous or recycled).
//
// The directory is $TEEPERF_SESSION_DIR when set, else a fixed per-host
// default. Descriptors are written atomically (tmp + rename), so readers
// only ever see whole files. A session killed before cleanup leaves a
// stale descriptor plus orphaned "/teeperf.<pid>.<nonce>.{log,obs}" shm
// segments; gc() reclaims both once the owner pid is dead.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace teeperf::session_registry {

// One profiling session, as published by its owner. Serialized as a single
// one-line JSON object per descriptor file.
struct SessionDescriptor {
  std::string name;     // registry key, filename-safe ("teeperf.<pid>.<nonce>")
  u64 pid = 0;          // owner process (wrapper / embedding recorder)
  std::string log_shm;  // named log segment; "" when the log is anonymous
  std::string obs_shm;  // named obs telemetry segment; "" when telemetry off
  std::string prefix;   // dump prefix (".sym" lives next to it); may be ""
  u64 capacity = 0;     // log capacity in entries
  u32 shards = 0;       // log shard count (0 = v1 single tail)
  u64 start_ns = 0;     // CLOCK_MONOTONIC at publish time
};

// $TEEPERF_SESSION_DIR, or the shared per-host default
// "/tmp/teeperf-sessions".
std::string registry_dir();

// A nonce unique enough to never collide on one host: time-derived and
// process-locally sequenced. Combined with the pid in shm_base() it gives
// each session its own shm namespace even across pid reuse.
u64 make_nonce();

// "/teeperf.<pid>.<nonce-hex>" — the session's shm base name; the log
// segment is "<base>.log" and the telemetry segment "<base>.obs".
std::string shm_base(u64 pid, u64 nonce);

// One-line JSON serialization and its tolerant inverse (unknown keys are
// skipped; missing keys keep their defaults). from_json() fails only when
// the required "name" or "pid" fields are absent.
std::string to_json(const SessionDescriptor& d);
bool from_json(std::string_view json, SessionDescriptor* out);

// Atomically writes "<dir>/<name>.json" (tmp + rename), creating `dir` if
// needed. False on I/O failure or an empty/unsafe name.
bool publish_session(const std::string& dir, const SessionDescriptor& d);
bool unpublish_session(const std::string& dir, const std::string& name);

// Every parseable descriptor in `dir`, sorted by name. A missing directory
// is an empty fleet, not an error.
std::vector<SessionDescriptor> list_sessions(const std::string& dir);

bool pid_alive(u64 pid);

// Stale-session GC: removes descriptors whose owner pid is dead (unlinking
// the shm segments they name), drops unparseable descriptor files, and
// sweeps /dev/shm for orphaned "teeperf.<pid>.<nonce>.{log,obs}" segments
// whose embedded pid is dead — a crashed session leaves no descriptor only
// when it died between shm creation and publish. Segments named by a live
// process are never touched.
struct GcResult {
  u32 descriptors = 0;  // stale descriptor files removed
  u32 segments = 0;     // orphaned shm segments unlinked
};
GcResult gc_stale_sessions(const std::string& dir);

}  // namespace teeperf::session_registry
