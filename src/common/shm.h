// Shared-memory region between the profiled application (in the TEE) and
// the recorder wrapper on the host (§II-B, stage #2). Because the region is
// host memory mapped into the TEE, it does not consume the TEE's limited
// secure memory. Two backings are provided:
//   - named POSIX shm (shm_open + mmap): the real cross-process path;
//   - anonymous mapping: in-process profiling and tests.
#pragma once

#include <string>

#include "common/types.h"

namespace teeperf {

class SharedMemoryRegion {
 public:
  SharedMemoryRegion() = default;
  ~SharedMemoryRegion() { close(); }

  SharedMemoryRegion(const SharedMemoryRegion&) = delete;
  SharedMemoryRegion& operator=(const SharedMemoryRegion&) = delete;
  SharedMemoryRegion(SharedMemoryRegion&& other) noexcept { *this = std::move(other); }
  SharedMemoryRegion& operator=(SharedMemoryRegion&& other) noexcept;

  // Creates (exclusively) a named region of `size` bytes. The creator owns
  // the name and unlinks it on close.
  bool create(const std::string& name, usize size);

  // Opens an existing named region (the recorder attaching to an
  // application, or vice versa).
  bool open(const std::string& name);

  // Anonymous shared mapping (MAP_SHARED | MAP_ANONYMOUS): survives fork,
  // used for in-process sessions and tests.
  bool create_anonymous(usize size);

  void close();

  void* data() const { return data_; }
  usize size() const { return size_; }
  const std::string& name() const { return name_; }
  bool valid() const { return data_ != nullptr; }

 private:
  void* data_ = nullptr;
  usize size_ = 0;
  std::string name_;
  bool owns_name_ = false;
};

}  // namespace teeperf
