#include "common/crc32c.h"

namespace teeperf {
namespace {

// Table-driven byte-at-a-time CRC-32C; the table is built once at startup.
struct Crc32cTable {
  u32 t[256];
  Crc32cTable() {
    constexpr u32 kPoly = 0x82f63b78u;  // reversed Castagnoli polynomial
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
  }
};

const Crc32cTable kTable;

}  // namespace

u32 crc32c_extend(u32 crc, const void* data, usize n) {
  const u8* p = static_cast<const u8*>(data);
  u32 c = crc ^ 0xffffffffu;
  for (usize i = 0; i < n; ++i) c = kTable.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace teeperf
