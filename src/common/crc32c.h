// CRC-32C (Castagnoli). Used to frame WAL and SSTable blocks in the
// kvstore substrate and to checksum persisted profiler logs.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace teeperf {

// Extends `crc` with `data[0, n)`. Pass 0 as the initial crc.
u32 crc32c_extend(u32 crc, const void* data, usize n);

inline u32 crc32c(const void* data, usize n) { return crc32c_extend(0, data, n); }

// Masked crc, following the LevelDB convention: storing the crc of data that
// itself contains crcs leads to collisions, so stored crcs are rotated and
// offset.
inline u32 crc32c_mask(u32 crc) { return ((crc >> 15) | (crc << 17)) + 0xa282ead8u; }
inline u32 crc32c_unmask(u32 masked) {
  u32 rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace teeperf
