#include "common/spin.h"

#include <atomic>
#include <algorithm>
#include <ctime>

namespace teeperf {
namespace {

std::atomic<double> g_iters_per_us{0.0};

// The spin body must not be optimizable away; an empty asm statement with a
// dependency on the loop counter pins it in place.
inline void spin_iterations(u64 iters) {
  for (u64 i = 0; i < iters; ++i) asm volatile("" : : "r"(i) : "memory");
}

double calibrate() {
  // Warm up, then time a series of blocks and keep the *median* rate.
  // The maximum would measure burst speed (turbo / a momentarily idle
  // hypervisor), which sustained spinning cannot hold; the median of
  // sustained-size blocks tracks the speed the charged spins actually run
  // at. Total cost ~5 ms once per process.
  spin_iterations(500000);
  double rates[9] = {};
  int got = 0;
  for (int round = 0; round < 9; ++round) {
    constexpr u64 kIters = 1'000'000;
    u64 t0 = monotonic_ns();
    spin_iterations(kIters);
    u64 t1 = monotonic_ns();
    if (t1 <= t0) continue;
    rates[got++] = static_cast<double>(kIters) * 1000.0 /
                   static_cast<double>(t1 - t0);
  }
  if (got == 0) return 1000.0;
  std::sort(rates, rates + got);
  return rates[got / 2];
}

}  // namespace

// teeperf-lint: allow(r1): clock_gettime(CLOCK_MONOTONIC) is a vDSO read,
// not a kernel entry; it is the kSteadyClock counter source itself.
u64 monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<u64>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<u64>(ts.tv_nsec);
}

double spin_iters_per_us() {
  double v = g_iters_per_us.load(std::memory_order_relaxed);
  if (v == 0.0) {
    v = calibrate();
    g_iters_per_us.store(v, std::memory_order_relaxed);
  }
  return v;
}

void spin_recalibrate() { g_iters_per_us.store(calibrate(), std::memory_order_relaxed); }

void spin_for_ns(u64 ns) {
  if (ns == 0) return;
  double iters = spin_iters_per_us() * static_cast<double>(ns) / 1000.0;
  spin_iterations(static_cast<u64>(iters) + 1);
}

}  // namespace teeperf
