#include "common/stringutil.h"

#include <cstdarg>
#include <cstdio>

namespace teeperf {

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return str_format("%.1f %s", bytes, units[u]);
}

std::string with_commas(u64 v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  usize lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (usize i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string str_format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<usize>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  usize start = 0;
  for (usize i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string ellipsize(std::string_view s, usize max) {
  if (s.size() <= max) return std::string(s);
  if (max <= 2) return std::string(s.substr(0, max));
  return std::string(s.substr(0, max - 2)) + "..";
}

}  // namespace teeperf
