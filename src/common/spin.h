// Calibrated busy-waiting. The TEE simulator charges micro-architectural
// costs (enclave transitions, secure paging, memory-encryption penalties) as
// *real wall-clock time* so that any profiler — sampling or tracing —
// observes them. A calibrated spin loop is used instead of sleeping because
// the charged costs are far below scheduler granularity (tens of ns to a few
// µs) and must consume CPU the way the real hardware penalty would.
#pragma once

#include "common/types.h"

namespace teeperf {

// Busy-spins for approximately `ns` nanoseconds. Calibrated once per process
// on first use; recalibration can be forced with spin_recalibrate().
void spin_for_ns(u64 ns);

// Returns the calibrated number of loop iterations per microsecond.
double spin_iters_per_us();

// Re-runs calibration (used by tests; normal code never needs this).
void spin_recalibrate();

// Monotonic nanosecond clock (CLOCK_MONOTONIC).
u64 monotonic_ns();

}  // namespace teeperf
