#include "common/session_registry.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/fileutil.h"
#include "common/spin.h"
#include "common/stringutil.h"

namespace teeperf::session_registry {

namespace {

// Descriptor names become filenames and shm names; keep them to a safe
// charset so a hostile $TEEPERF_SESSION_DIR peer cannot smuggle path
// components through a descriptor.
bool name_is_safe(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::string descriptor_path(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".json";
}

void json_string(std::string* out, std::string_view key, std::string_view v) {
  *out += "\"";
  *out += key;
  *out += "\":\"";
  for (char c : v) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      *out += c;
    }
  }
  *out += "\",";
}

void json_number(std::string* out, std::string_view key, u64 v) {
  *out += "\"";
  *out += key;
  *out += "\":";
  *out += std::to_string(v);
  *out += ",";
}

// Finds `"key":` in `json` and returns the position just past the colon, or
// npos. Good enough for the flat objects to_json() writes.
usize find_value(std::string_view json, std::string_view key) {
  std::string needle = "\"" + std::string(key) + "\":";
  usize pos = json.find(needle);
  if (pos == std::string_view::npos) return pos;
  return pos + needle.size();
}

bool parse_string(std::string_view json, std::string_view key, std::string* out) {
  usize pos = find_value(json, key);
  if (pos == std::string_view::npos || pos >= json.size() || json[pos] != '"') {
    return false;
  }
  out->clear();
  for (usize i = pos + 1; i < json.size(); ++i) {
    char c = json[i];
    if (c == '\\' && i + 1 < json.size()) {
      out->push_back(json[++i]);
    } else if (c == '"') {
      return true;
    } else {
      out->push_back(c);
    }
  }
  return false;  // unterminated
}

bool parse_number(std::string_view json, std::string_view key, u64* out) {
  usize pos = find_value(json, key);
  if (pos == std::string_view::npos) return false;
  u64 v = 0;
  bool any = false;
  for (usize i = pos; i < json.size() && json[i] >= '0' && json[i] <= '9'; ++i) {
    v = v * 10 + static_cast<u64>(json[i] - '0');
    any = true;
  }
  if (any) *out = v;
  return any;
}

// Parses "teeperf.<pid>.<nonce>.log|.obs" (no leading slash); returns the
// owner pid, or 0 when the name is not in the session-shm scheme. Only
// names in this exact shape are GC candidates — legacy or foreign
// "/teeperf.*" segments are never touched.
u64 session_shm_pid(std::string_view shm_file) {
  if (!starts_with(shm_file, "teeperf.")) return 0;
  if (!ends_with(shm_file, ".log") && !ends_with(shm_file, ".obs")) return 0;
  std::string_view rest = shm_file.substr(8, shm_file.size() - 8 - 4);
  usize dot = rest.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 >= rest.size()) {
    return 0;
  }
  u64 pid = 0;
  for (char c : rest.substr(0, dot)) {
    if (c < '0' || c > '9') return 0;
    pid = pid * 10 + static_cast<u64>(c - '0');
  }
  for (char c : rest.substr(dot + 1)) {  // nonce: lowercase hex only
    bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return 0;
  }
  return pid;
}

}  // namespace

std::string registry_dir() {
  const char* env = std::getenv("TEEPERF_SESSION_DIR");
  if (env && *env) return env;
  return "/tmp/teeperf-sessions";
}

u64 make_nonce() {
  static std::atomic<u64> counter{0};
  u64 seq = counter.fetch_add(1, std::memory_order_relaxed);
  // splitmix64 over (time, pid, sequence) — well spread without needing a
  // random source, and distinct across forked children.
  u64 x = monotonic_ns() ^ (static_cast<u64>(getpid()) << 32) ^ (seq << 1);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string shm_base(u64 pid, u64 nonce) {
  return str_format("/teeperf.%llu.%08llx", static_cast<unsigned long long>(pid),
                    static_cast<unsigned long long>(nonce & 0xffffffffull));
}

std::string to_json(const SessionDescriptor& d) {
  std::string out = "{";
  json_string(&out, "name", d.name);
  json_number(&out, "pid", d.pid);
  json_string(&out, "log_shm", d.log_shm);
  json_string(&out, "obs_shm", d.obs_shm);
  json_string(&out, "prefix", d.prefix);
  json_number(&out, "capacity", d.capacity);
  json_number(&out, "shards", d.shards);
  json_number(&out, "start_ns", d.start_ns);
  out.back() = '}';
  out += "\n";
  return out;
}

bool from_json(std::string_view json, SessionDescriptor* out) {
  SessionDescriptor d;
  if (!parse_string(json, "name", &d.name) || !name_is_safe(d.name)) {
    return false;
  }
  if (!parse_number(json, "pid", &d.pid)) return false;
  parse_string(json, "log_shm", &d.log_shm);
  parse_string(json, "obs_shm", &d.obs_shm);
  parse_string(json, "prefix", &d.prefix);
  parse_number(json, "capacity", &d.capacity);
  u64 shards = 0;
  if (parse_number(json, "shards", &shards)) d.shards = static_cast<u32>(shards);
  parse_number(json, "start_ns", &d.start_ns);
  *out = std::move(d);
  return true;
}

bool publish_session(const std::string& dir, const SessionDescriptor& d) {
  if (!name_is_safe(d.name)) return false;
  if (!make_dirs(dir)) return false;
  // tmp + rename so a concurrent list_sessions() never reads a half-written
  // descriptor. The tmp name carries the pid so two publishers of the same
  // session name (which would be a caller bug) cannot corrupt each other.
  std::string tmp = str_format("%s/.%s.%llu.tmp", dir.c_str(), d.name.c_str(),
                               static_cast<unsigned long long>(d.pid));
  if (!write_file(tmp, to_json(d))) return false;
  if (::rename(tmp.c_str(), descriptor_path(dir, d.name).c_str()) != 0) {
    remove_file(tmp);
    return false;
  }
  return true;
}

bool unpublish_session(const std::string& dir, const std::string& name) {
  if (!name_is_safe(name)) return false;
  return remove_file(descriptor_path(dir, name));
}

std::vector<SessionDescriptor> list_sessions(const std::string& dir) {
  std::vector<SessionDescriptor> out;
  DIR* d = ::opendir(dir.c_str());
  if (!d) return out;
  while (struct dirent* ent = ::readdir(d)) {
    std::string file = ent->d_name;
    if (!ends_with(file, ".json")) continue;
    auto text = read_file(dir + "/" + file);
    if (!text) continue;
    SessionDescriptor desc;
    if (!from_json(*text, &desc)) continue;
    // The filename is authoritative; a descriptor whose body disagrees
    // (copied by hand, or tampered with) is skipped rather than trusted.
    if (file != desc.name + ".json") continue;
    out.push_back(std::move(desc));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const SessionDescriptor& a, const SessionDescriptor& b) {
              return a.name < b.name;
            });
  return out;
}

bool pid_alive(u64 pid) {
  if (pid == 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;  // alive but not ours
}

GcResult gc_stale_sessions(const std::string& dir) {
  GcResult r;
  // Pass 1: descriptors. Dead owner → unlink the segments it names, then
  // the descriptor itself. Unparseable descriptor files are garbage (the
  // write path is atomic, so they were never valid) and are dropped too.
  DIR* d = ::opendir(dir.c_str());
  if (d) {
    std::vector<std::string> files;
    while (struct dirent* ent = ::readdir(d)) {
      std::string file = ent->d_name;
      if (ends_with(file, ".json")) files.push_back(std::move(file));
    }
    ::closedir(d);
    for (const std::string& file : files) {
      auto text = read_file(dir + "/" + file);
      if (!text) continue;
      SessionDescriptor desc;
      bool parsed = from_json(*text, &desc) && file == desc.name + ".json";
      if (parsed && pid_alive(desc.pid)) continue;
      if (parsed) {
        for (const std::string& shm : {desc.log_shm, desc.obs_shm}) {
          // Only unlink names the registry scheme could have produced —
          // a tampered descriptor must not become a deletion primitive.
          if (!shm.empty() && shm[0] == '/' &&
              session_shm_pid(shm.substr(1)) == desc.pid) {
            if (::shm_unlink(shm.c_str()) == 0) ++r.segments;
          }
        }
      }
      if (remove_file(dir + "/" + file)) ++r.descriptors;
    }
  }

  // Pass 2: orphaned segments with no descriptor (a session killed between
  // shm creation and publish). Only the exact "teeperf.<pid>.<nonce>.*"
  // shape is considered, and only when that pid is dead.
  DIR* shm_dir = ::opendir("/dev/shm");
  if (shm_dir) {
    std::vector<std::string> orphans;
    while (struct dirent* ent = ::readdir(shm_dir)) {
      u64 pid = session_shm_pid(ent->d_name);
      if (pid != 0 && !pid_alive(pid)) orphans.emplace_back(ent->d_name);
    }
    ::closedir(shm_dir);
    for (const std::string& name : orphans) {
      if (::shm_unlink(("/" + name).c_str()) == 0) ++r.segments;
    }
  }
  return r;
}

}  // namespace teeperf::session_registry
