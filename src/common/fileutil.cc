#include "common/fileutil.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/types.h"

namespace teeperf {

namespace fs = std::filesystem;

bool write_file(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  usize n = contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
  bool ok = (n == contents.size()) && std::fclose(f) == 0;
  return ok;
}

bool append_file(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) return false;
  usize n = contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
  bool ok = (n == contents.size()) && std::fclose(f) == 0;
  return ok;
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string out;
  char buf[1 << 16];
  usize n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

bool remove_file(const std::string& path) {
  std::error_code ec;
  return fs::remove(path, ec);
}

bool make_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  return !ec || fs::exists(path);
}

void remove_tree(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
}

std::string make_temp_dir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base ? base : "/tmp") + "/" + prefix + "XXXXXX";
  std::string buf = tmpl;
  char* got = mkdtemp(buf.data());
  return got ? buf : tmpl;
}

}  // namespace teeperf
