// Power-of-two bucketed latency histogram, used by the db_bench driver and
// the SPDK perf tool to report percentiles without storing every sample.
#pragma once

#include <array>
#include <string>

#include "common/types.h"

namespace teeperf {

// Shared power-of-two bucket math, used by LatencyHistogram below and by the
// shared-memory metric histograms in src/obs (which cannot use this class
// directly because their buckets must be atomics in a fixed shm layout).
namespace hist {
inline constexpr usize kLogBuckets = 64;
usize bucket_for(u64 v);
u64 bucket_low(usize b);
u64 bucket_high(usize b);
// Linear interpolation within the matched bucket over an externally held
// bucket array; p in [0, 100]. `lo`/`hi` clamp the result to observed bounds.
double percentile(const u64* buckets, usize n, u64 count, u64 lo, u64 hi,
                  double p);
}  // namespace hist

class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  void add(u64 value);
  void merge(const LatencyHistogram& other);
  void reset();

  u64 count() const { return count_; }
  u64 min() const { return count_ ? min_ : 0; }
  u64 max() const { return max_; }
  double mean() const;
  // Linear interpolation within the matched bucket; p in [0, 100].
  double percentile(double p) const;

  std::string summary(const char* unit = "ns") const;

 private:
  static constexpr usize kBuckets = hist::kLogBuckets;

  std::array<u64, kBuckets> buckets_{};
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~0ull;
  u64 max_ = 0;
};

}  // namespace teeperf
