// Power-of-two bucketed latency histogram, used by the db_bench driver and
// the SPDK perf tool to report percentiles without storing every sample.
#pragma once

#include <array>
#include <string>

#include "common/types.h"

namespace teeperf {

class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  void add(u64 value);
  void merge(const LatencyHistogram& other);
  void reset();

  u64 count() const { return count_; }
  u64 min() const { return count_ ? min_ : 0; }
  u64 max() const { return max_; }
  double mean() const;
  // Linear interpolation within the matched bucket; p in [0, 100].
  double percentile(double p) const;

  std::string summary(const char* unit = "ns") const;

 private:
  static constexpr usize kBuckets = 64;
  static usize bucket_for(u64 v);
  static u64 bucket_low(usize b);
  static u64 bucket_high(usize b);

  std::array<u64, kBuckets> buckets_{};
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~0ull;
  u64 max_ = 0;
};

}  // namespace teeperf
