// The paper's compiler route, end to end (§II-B stage #1, §III):
// this file is compiled with -finstrument-functions (see CMakeLists), so
// gcc injects __cyg_profile_func_enter/exit around every function — the
// hooks in libteeperf_cyg write the shared-memory log, and dump-time
// symbolization resolves the raw function addresses via dladdr (the
// addr2line/DWARF stand-in). No TEEPERF_SCOPE macros appear in the workload.
//
// Run:  ./instrumented_app [output_dir]
#include <cstdio>
#include <string>
#include <vector>

#include "analyzer/profile.h"
#include "analyzer/report.h"
#include "common/fileutil.h"
#include "core/auto_attach.h"
#include "core/profiler.h"

using namespace teeperf;

// The workload: deliberately plain functions, no profiler awareness at all.
// noinline keeps the call structure visible at -O2+ (the paper compiles the
// *application* with instrumentation; inlined calls are legitimately not
// instrumented, but a demo wants stable frames).
#define DEMO_FN __attribute__((noinline))

DEMO_FN int fibonacci(int n) {
  if (n < 2) return n;
  return fibonacci(n - 1) + fibonacci(n - 2);
}

DEMO_FN u64 sum_squares(const std::vector<u64>& values) {
  u64 total = 0;
  for (u64 v : values) total += v * v;
  return total;
}

DEMO_FN u64 run_workload() {
  std::vector<u64> values(1000);
  for (usize i = 0; i < values.size(); ++i) values[i] = i;
  u64 result = sum_squares(values);
  result += static_cast<u64>(fibonacci(16));
  return result;
}

int main(int argc, char** argv) {
  // Wrapper mode: when launched under teeperf_record, the session was
  // attached before main() (auto_attach.cc) — just run the workload; the
  // wrapper owns the log and this process writes the .sym file at exit.
  if (attached_from_env()) {
    u64 result = run_workload();
    std::printf("workload result: %llu (recorded by wrapper)\n",
                static_cast<unsigned long long>(result));
    return 0;
  }

  std::string out_dir = argc > 1 ? argv[1] : make_temp_dir("teeperf_cyg_");
  make_dirs(out_dir);

  RecorderOptions opts;
  opts.max_entries = 1 << 18;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) {
    std::fprintf(stderr, "failed to set up recorder\n");
    return 1;
  }

  u64 result = run_workload();

  recorder->detach();
  std::printf("workload result: %llu\n", static_cast<unsigned long long>(result));
  std::printf("log entries: %llu\n",
              static_cast<unsigned long long>(recorder->stats().entries));

  std::string prefix = out_dir + "/instrumented";
  recorder->dump(prefix);

  auto profile = analyzer::Profile::load(prefix);
  if (!profile) return 1;
  std::printf("\n%s\n\n%s\n", analyzer::recon_summary(*profile).c_str(),
              analyzer::method_report(*profile, 15).c_str());

  // fibonacci(16) makes 3193 calls; the dladdr symbolization must name it.
  bool found_fib = false;
  for (const auto& s : profile->method_stats()) {
    if (profile->name(s.method).find("fibonacci") != std::string::npos) {
      found_fib = true;
      std::printf("fibonacci resolved via dladdr: %llu invocations\n",
                  static_cast<unsigned long long>(s.count));
    }
  }
  if (!found_fib) {
    std::printf("note: fibonacci frames not symbolized (static binary without "
                "-rdynamic?) — addresses still recorded\n");
  }
  return 0;
}
