// Quickstart: profile a small workload with TEE-Perf's four stages in one
// process — record (stage 2), analyze (stage 3), visualize (stage 4). The
// "compiler stage" here is the RAII scope API; see instrumented_app.cpp for
// the real -finstrument-functions route.
//
// Run:  ./quickstart [output_dir]
#include <cstdio>
#include <string>

#include "analyzer/profile.h"
#include "analyzer/report.h"
#include "common/fileutil.h"
#include "common/spin.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"

namespace {

using namespace teeperf;

void parse_input() {
  TEEPERF_FUNCTION();
  spin_for_ns(3'000'000);
}

void transform_chunk() {
  TEEPERF_FUNCTION();
  spin_for_ns(1'500'000);
}

void write_output() {
  TEEPERF_FUNCTION();
  spin_for_ns(2'000'000);
}

void pipeline() {
  TEEPERF_FUNCTION();
  parse_input();
  for (int i = 0; i < 4; ++i) transform_chunk();
  write_output();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : make_temp_dir("teeperf_quickstart_");
  make_dirs(out_dir);

  // Stage 2: the recorder — shared-memory log + counter + runtime hooks.
  RecorderOptions opts;
  opts.max_entries = 1 << 16;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) {
    std::fprintf(stderr, "failed to set up recorder\n");
    return 1;
  }

  pipeline();  // the measured application

  recorder->detach();
  auto stats = recorder->stats();
  std::printf("recorded %llu log entries (%llu dropped)\n",
              static_cast<unsigned long long>(stats.entries),
              static_cast<unsigned long long>(stats.dropped));

  // Persist the log + symbols for offline analysis.
  std::string prefix = out_dir + "/quickstart";
  recorder->dump(prefix);

  // Stage 3: the analyzer — reconstruct stacks, report per-method timing.
  auto profile = analyzer::Profile::load(prefix);
  if (!profile) {
    std::fprintf(stderr, "failed to load %s.log\n", prefix.c_str());
    return 1;
  }
  std::printf("\n%s\n\n%s\n", analyzer::recon_summary(*profile).c_str(),
              analyzer::method_report(*profile).c_str());

  // Stage 4: the visualizer — a flame graph SVG.
  flamegraph::SvgOptions svg_opts;
  svg_opts.title = "quickstart pipeline";
  write_file(out_dir + "/quickstart.svg",
             flamegraph::render_profile_svg(*profile, svg_opts));
  write_file(out_dir + "/quickstart.folded",
             flamegraph::to_folded_text(profile->folded_stacks()));
  flamegraph::TimelineOptions tl;
  tl.title = "quickstart timeline";
  write_file(out_dir + "/quickstart_timeline.svg",
             flamegraph::render_timeline_svg(*profile, tl));
  std::printf("flame graph: %s/quickstart.svg\n", out_dir.c_str());
  std::printf("timeline:    %s/quickstart_timeline.svg\n", out_dir.c_str());
  return 0;
}
