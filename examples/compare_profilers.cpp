// Side-by-side comparison of the two measurement models on one workload:
// TEE-Perf (method-level tracing, stage 2+3) and the perf-sim baseline
// (instruction-pointer sampling). Prints both profiles and both flame
// graphs' folded stacks so the difference in what each can see is concrete:
// the trace knows call counts and exact per-invocation durations; the
// sampler only knows where the CPU happened to be at its ticks.
//
// Run:  ./compare_profilers [output_dir]
#include <cstdio>
#include <string>

#include "analyzer/profile.h"
#include "analyzer/report.h"
#include "common/fileutil.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"
#include "perfsim/sampler.h"
#include "phoenix/phoenix.h"

using namespace teeperf;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : make_temp_dir("teeperf_cmp_");
  make_dirs(out_dir);

  auto input = phoenix::gen_word_count(150'000, 3);
  constexpr int kRounds = 8;  // long enough for the sampler to see something

  // --- pass 1: TEE-Perf tracing -------------------------------------------
  RecorderOptions opts;
  opts.max_entries = 1 << 21;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return 1;
  for (int i = 0; i < kRounds; ++i) phoenix::run_word_count(input, 2);
  recorder->detach();

  auto traced = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  std::printf("=== TEE-Perf (traced: %llu events, exact call counts) ===\n%s\n",
              static_cast<unsigned long long>(recorder->stats().entries),
              analyzer::method_report(traced, 8).c_str());
  std::printf("%s\n", analyzer::call_tree_report(traced, 0.02).c_str());

  // --- pass 2: sampling baseline -------------------------------------------
  perfsim::SamplerOptions sopts;
  sopts.frequency_hz = 997;
  perfsim::SamplingProfiler sampler(sopts);
  if (!runtime::attach(nullptr, CounterMode::kTsc, nullptr)) return 1;
  sampler.start();
  for (int i = 0; i < kRounds; ++i) phoenix::run_word_count(input, 2);
  sampler.stop();
  runtime::detach();

  std::printf("=== perf-sim (sampled: %zu samples, no call counts) ===\n",
              sampler.sample_count());
  std::printf("%-52s %10s\n", "method (leaf attribution)", "samples");
  for (auto& [id, n] : sampler.leaf_counts()) {
    std::printf("%-52s %10zu\n",
                SymbolRegistry::instance().name_of(id).c_str(), n);
  }

  // --- both as flame graphs -------------------------------------------------
  flamegraph::SvgOptions svg;
  svg.title = "traced (TEE-Perf)";
  write_file(out_dir + "/traced.svg",
             flamegraph::render_profile_svg(traced, svg));
  svg.title = "sampled (perf-sim)";
  auto sampled_folded = sampler.folded_stacks(
      [](u64 id) { return SymbolRegistry::instance().name_of(id); });
  write_file(out_dir + "/sampled.svg",
             flamegraph::render_svg(sampled_folded, svg));
  std::printf("\nflame graphs: %s/traced.svg, %s/sampled.svg\n", out_dir.c_str(),
              out_dir.c_str());
  return 0;
}
