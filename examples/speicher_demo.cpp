// The Speicher-lite walk-through: a rollback-protected WAL in the enclave,
// an attack that classic storage cannot detect, and TEE-Perf profiling the
// cost of the defence (and the async-counter fix).
//
// Run:  ./speicher_demo [output_dir]
#include <cstdio>
#include <string>

#include "analyzer/profile.h"
#include "analyzer/report.h"
#include "common/fileutil.h"
#include "core/profiler.h"
#include "kvstore/secure.h"
#include "tee/enclave.h"

using namespace teeperf;
using namespace teeperf::kvs::secure;

namespace {

MacKey demo_key() {
  MacKey k{};
  for (usize i = 0; i < k.size(); ++i) k[i] = static_cast<u8>(0x42 + i);
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : make_temp_dir("teeperf_speicher_");
  make_dirs(dir);

  // --- write an epoch of authenticated records, then "bank" it -------------
  TrustedCounter counter(dir + "/trusted.ctr", TrustedCounter::Mode::kAsync,
                         /*increment_cost_ns=*/5'000'000);
  {
    SecureWalWriter w(demo_key(), &counter);
    w.open(dir + "/bank.wal", true);
    w.append("deposit alice 100");
    w.append("deposit bob 50");
    w.flush();
  }
  auto epoch1 = read_file(dir + "/bank.wal");

  // --- the world moves on ---------------------------------------------------
  {
    SecureWalWriter w(demo_key(), &counter);
    w.open(dir + "/bank.wal", true);
    w.append("deposit alice 100");
    w.append("deposit bob 50");
    w.append("withdraw alice 90");  // alice spends her money
    w.flush();
  }

  // --- the attack: restore the pre-withdrawal WAL ---------------------------
  write_file(dir + "/bank.wal", *epoch1);
  auto verdict = secure_wal_read(dir + "/bank.wal", demo_key(), counter);
  std::printf("rollback attack: tampered=%s rolled_back=%s "
              "(file counter %llu vs trusted %llu)\n",
              verdict.tampered ? "yes" : "no",
              verdict.rolled_back ? "YES — attack detected" : "no",
              static_cast<unsigned long long>(verdict.last_counter),
              static_cast<unsigned long long>(counter.stable_value()));

  // --- what does the defence cost? Ask the profiler. ------------------------
  RecorderOptions opts;
  opts.max_entries = 1 << 20;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return 1;

  tee::Enclave enclave(tee::CostModel::sgx_like());
  enclave.ecall([&] {
    // Sync counter: the naive design.
    TrustedCounter sync_ctr(dir + "/sync.ctr", TrustedCounter::Mode::kSync,
                            5'000'000);
    SecureWalWriter w(demo_key(), &sync_ctr);
    w.open(dir + "/sync.wal", true);
    for (int i = 0; i < 40; ++i) w.append("record " + std::to_string(i));
    w.flush();
  });
  recorder->detach();

  auto profile = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  std::printf("\nprofile of the *synchronous* counter design:\n%s\n",
              analyzer::method_report(profile, 6).c_str());
  std::printf("%s\n", analyzer::bottom_up_report(profile, 3, 3).c_str());
  std::printf("TEE-Perf's verdict: move the counter off the critical path — "
              "which is exactly Speicher's asynchronous trusted counter "
              "(see bench/abl_secure_wal for the before/after).\n");
  return 0;
}
