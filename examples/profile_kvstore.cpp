// Profile the LSM key-value store's db_bench workload inside the simulated
// enclave — the Figure 5 scenario. Prints the method report and writes the
// flame graph that exposes Stats::Now / RandomGenerator as the bottlenecks.
//
// Run:  ./profile_kvstore [output_dir]
#include <cstdio>
#include <string>

#include "analyzer/profile.h"
#include "analyzer/query.h"
#include "analyzer/report.h"
#include "common/fileutil.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"
#include "kvstore/db.h"
#include "kvstore/db_bench.h"
#include "tee/enclave.h"

using namespace teeperf;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : make_temp_dir("teeperf_kvs_");
  make_dirs(out_dir);
  std::string db_dir = out_dir + "/db";

  kvs::Options options;
  std::unique_ptr<kvs::DB> db;
  auto status = kvs::DB::open(options, db_dir, &db);
  if (!status.is_ok()) {
    std::fprintf(stderr, "db open: %s\n", status.to_string().c_str());
    return 1;
  }

  kvs::bench::BenchConfig cfg;
  cfg.num_ops = 5'000;
  cfg.key_space = 5'000;
  kvs::bench::run_fill_random(*db, cfg);  // unprofiled warm-up fill

  RecorderOptions opts;
  opts.max_entries = 1 << 21;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return 1;

  // The measured run: db_bench readrandomwriterandom (80% reads) inside the
  // enclave simulator, where every Stats::Now() clock read is a trapped
  // syscall.
  tee::Enclave enclave(tee::CostModel::sgx_like());
  auto result = enclave.ecall(
      [&] { return kvs::bench::run_read_random_write_random(*db, cfg); });

  recorder->detach();
  std::printf("ops=%llu (%llu reads / %llu writes), %.0f ops/s\n",
              static_cast<unsigned long long>(result.ops),
              static_cast<unsigned long long>(result.reads),
              static_cast<unsigned long long>(result.writes), result.ops_per_sec);

  std::string prefix = out_dir + "/kvstore";
  recorder->dump(prefix);
  auto profile = analyzer::Profile::load(prefix);
  if (!profile) return 1;

  std::printf("\n%s\n", analyzer::method_report(*profile, 15).c_str());

  // The query interface (§II-C): who calls Stats::Now, and how often?
  u64 now_id = SymbolRegistry::instance().intern("kvs::Stats::Now");
  auto now_calls = analyzer::InvocationTable(*profile).where_method(now_id);
  std::printf("Stats::Now invocations: %zu, total %.1f ms\n", now_calls.count(),
              profile->ticks_to_ns(now_calls.sum_inclusive()) / 1e6);
  for (auto& g : now_calls.group_by_caller()) {
    std::printf("  called %zu times by %s\n", g.count, g.key.c_str());
  }

  flamegraph::SvgOptions svg_opts;
  svg_opts.title = "db_bench readrandomwriterandom (80% reads) in enclave";
  write_file(out_dir + "/kvstore_flame.svg",
             flamegraph::render_profile_svg(*profile, svg_opts));
  std::printf("\nflame graph: %s/kvstore_flame.svg\n", out_dir.c_str());
  return 0;
}
