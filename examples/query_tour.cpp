// Tour of the analyzer's declarative query interface (§II-C) — the C++
// equivalent of the paper's interactive pandas session. Profiles a Phoenix
// kernel, then answers the kinds of questions the paper lists: which thread
// called which method how often, call-history-dependent cost, contention
// candidates.
//
// Run:  ./query_tour
#include <cstdio>

#include "analyzer/profile.h"
#include "analyzer/query.h"
#include "analyzer/report.h"
#include "core/profiler.h"
#include "phoenix/phoenix.h"

using namespace teeperf;
using analyzer::InvocationTable;
using analyzer::SortKey;

int main() {
  // Record a 4-thread kmeans run.
  RecorderOptions opts;
  opts.max_entries = 1 << 21;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return 1;

  auto input = phoenix::gen_kmeans(20'000, 4, 8, 7);
  phoenix::run_kmeans(input, 4, 10);

  recorder->detach();
  auto profile = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));

  std::printf("== sorted method report (the default analyzer output) ==\n%s\n",
              analyzer::method_report(profile, 10).c_str());

  InvocationTable table(profile);

  std::printf("== which thread called which method how often ==\n");
  for (auto& g : table.where_name_contains("assign_point").group_by_tid()) {
    std::printf("  %-8s %8zu calls, %10.3f ms inclusive\n", g.key.c_str(), g.count,
                profile.ticks_to_ns(g.inclusive_total) / 1e6);
  }

  std::printf("\n== top 5 single invocations by exclusive time ==\n%s\n",
              table.sort_by(SortKey::kExclusive).top(5).to_string().c_str());

  std::printf("== call-history query: assign_point only when called under "
              "map_worker ==\n");
  u64 worker = SymbolRegistry::instance().intern("phoenix::kmeans::map_worker");
  auto under = table.where_name_contains("assign_point").where_called_under(worker);
  std::printf("  %zu of %zu assign_point calls ran under a map worker\n",
              under.count(), table.where_name_contains("assign_point").count());

  std::printf("\n== depth histogram (who sits where in the stack) ==\n");
  for (auto& g : table.group_by([](const analyzer::Invocation& inv) {
         return "depth=" + std::to_string(inv.depth);
       })) {
    std::printf("  %-10s %8zu invocations\n", g.key.c_str(), g.count);
  }

  std::printf("\n== dynamic call graph ==\n%s\n",
              analyzer::call_graph_report(profile, 10).c_str());
  return 0;
}
