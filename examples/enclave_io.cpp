// The §IV-C optimization workflow on the SPDK substrate: profile the naive
// enclave port, read the bottlenecks off the profile, apply the paper's two
// fixes (pid cache, corrected timestamp cache), and show the recovery.
//
// Run:  ./enclave_io [output_dir]
#include <cstdio>
#include <string>

#include "analyzer/profile.h"
#include "analyzer/report.h"
#include "common/fileutil.h"
#include "common/stringutil.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"
#include "spdk/perf_tool.h"
#include "tee/enclave.h"

using namespace teeperf;

namespace {

spdk::NvmeDeviceConfig device_config() {
  spdk::NvmeDeviceConfig cfg;
  cfg.completion_latency_ns = 80'000;
  return cfg;
}

spdk::PerfConfig perf_config() {
  spdk::PerfConfig cfg;
  cfg.duration_ns = 700'000'000;  // 0.7 s per run keeps the example snappy
  return cfg;
}

tee::CostModel enclave_costs() {
  tee::CostModel cm = tee::CostModel::sgx_like();
  cm.syscall_ocall_ns = 45'000;  // SCONE-like syscall round trip
  return cm;
}

void report(const char* label, const spdk::PerfResult& r) {
  std::printf("%-22s %10s IOPS   %8.1f MiB/s\n", label,
              with_commas(static_cast<u64>(r.iops)).c_str(), r.throughput_mib_s);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : make_temp_dir("teeperf_spdk_");
  make_dirs(out_dir);

  // Step 1: native baseline (no enclave).
  spdk::NvmeDevice native_dev(device_config());
  auto native = spdk::run_perf_tool(native_dev, perf_config(), spdk::SpdkMode{});
  report("native", native);

  // Step 2: naive port into the enclave, recorded by TEE-Perf.
  RecorderOptions opts;
  opts.max_entries = 1 << 21;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return 1;

  tee::Enclave enclave(enclave_costs());
  spdk::NvmeDevice naive_dev(device_config());
  auto naive = enclave.ecall(
      [&] { return spdk::run_perf_tool(naive_dev, perf_config(), spdk::SpdkMode{}); });
  recorder->detach();
  report("naive in enclave", naive);

  recorder->dump(out_dir + "/naive");
  auto profile = analyzer::Profile::load(out_dir + "/naive");
  if (!profile) return 1;

  // Step 3: read the bottlenecks off the flame graph data.
  auto tree = flamegraph::build_frame_tree(profile->folded_stacks());
  double getpid_frac = flamegraph::frame_fraction(tree, "getpid");
  double rdtsc_frac = flamegraph::frame_fraction(tree, "rdtsc");
  std::printf("\nTEE-Perf finds: getpid %.1f%% of runtime, rdtsc %.1f%%\n",
              getpid_frac * 100, rdtsc_frac * 100);
  write_file(out_dir + "/naive_flame.svg",
             flamegraph::render_profile_svg(
                 *profile, {.title = "naive SPDK in enclave"}));

  // Step 4: apply the paper's fixes and re-measure.
  spdk::SpdkMode optimized;
  optimized.cache_pid = true;
  optimized.cache_ticks = true;
  tee::Enclave enclave2(enclave_costs());
  spdk::NvmeDevice opt_dev(device_config());
  auto opt = enclave2.ecall(
      [&] { return spdk::run_perf_tool(opt_dev, perf_config(), optimized); });
  report("optimized in enclave", opt);

  std::printf("\nimprovement over naive: %.1fx (paper: 14.7x)\n",
              opt.iops / naive.iops);
  std::printf("flame graph: %s/naive_flame.svg\n", out_dir.c_str());
  return 0;
}
