# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
include("/root/repo/build/tests/test_shm_counter_symbols[1]_include.cmake")
include("/root/repo/build/tests/test_recorder[1]_include.cmake")
include("/root/repo/build/tests/test_analyzer[1]_include.cmake")
include("/root/repo/build/tests/test_flamegraph[1]_include.cmake")
include("/root/repo/build/tests/test_tee[1]_include.cmake")
include("/root/repo/build/tests/test_perfsim[1]_include.cmake")
include("/root/repo/build/tests/test_phoenix[1]_include.cmake")
include("/root/repo/build/tests/test_kvstore_components[1]_include.cmake")
include("/root/repo/build/tests/test_kvstore_db[1]_include.cmake")
include("/root/repo/build/tests/test_spdk[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_reports_and_attach[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_secure[1]_include.cmake")
add_test(cross_process_record "/root/repo/tests/cross_process_test.sh" "/root/repo/build")
set_tests_properties(cross_process_record PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
