# Empty compiler generated dependencies file for test_secure.
# This may be replaced when dependencies are built.
