file(REMOVE_RECURSE
  "CMakeFiles/test_secure.dir/test_secure.cc.o"
  "CMakeFiles/test_secure.dir/test_secure.cc.o.d"
  "test_secure"
  "test_secure.pdb"
  "test_secure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
