# Empty dependencies file for test_kvstore_components.
# This may be replaced when dependencies are built.
