file(REMOVE_RECURSE
  "CMakeFiles/test_kvstore_components.dir/test_kvstore_components.cc.o"
  "CMakeFiles/test_kvstore_components.dir/test_kvstore_components.cc.o.d"
  "test_kvstore_components"
  "test_kvstore_components.pdb"
  "test_kvstore_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvstore_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
