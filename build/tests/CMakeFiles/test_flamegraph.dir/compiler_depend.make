# Empty compiler generated dependencies file for test_flamegraph.
# This may be replaced when dependencies are built.
