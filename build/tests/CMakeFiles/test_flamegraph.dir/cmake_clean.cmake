file(REMOVE_RECURSE
  "CMakeFiles/test_flamegraph.dir/test_flamegraph.cc.o"
  "CMakeFiles/test_flamegraph.dir/test_flamegraph.cc.o.d"
  "test_flamegraph"
  "test_flamegraph.pdb"
  "test_flamegraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flamegraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
