# Empty dependencies file for test_phoenix.
# This may be replaced when dependencies are built.
