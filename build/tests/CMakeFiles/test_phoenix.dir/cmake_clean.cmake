file(REMOVE_RECURSE
  "CMakeFiles/test_phoenix.dir/test_phoenix.cc.o"
  "CMakeFiles/test_phoenix.dir/test_phoenix.cc.o.d"
  "test_phoenix"
  "test_phoenix.pdb"
  "test_phoenix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phoenix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
