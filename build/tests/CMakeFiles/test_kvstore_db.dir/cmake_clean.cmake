file(REMOVE_RECURSE
  "CMakeFiles/test_kvstore_db.dir/test_kvstore_db.cc.o"
  "CMakeFiles/test_kvstore_db.dir/test_kvstore_db.cc.o.d"
  "test_kvstore_db"
  "test_kvstore_db.pdb"
  "test_kvstore_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvstore_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
