# Empty compiler generated dependencies file for test_kvstore_db.
# This may be replaced when dependencies are built.
