file(REMOVE_RECURSE
  "CMakeFiles/test_reports_and_attach.dir/test_reports_and_attach.cc.o"
  "CMakeFiles/test_reports_and_attach.dir/test_reports_and_attach.cc.o.d"
  "test_reports_and_attach"
  "test_reports_and_attach.pdb"
  "test_reports_and_attach[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reports_and_attach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
