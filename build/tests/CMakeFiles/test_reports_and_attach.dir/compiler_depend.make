# Empty compiler generated dependencies file for test_reports_and_attach.
# This may be replaced when dependencies are built.
