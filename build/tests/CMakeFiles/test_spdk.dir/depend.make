# Empty dependencies file for test_spdk.
# This may be replaced when dependencies are built.
