file(REMOVE_RECURSE
  "CMakeFiles/test_spdk.dir/test_spdk.cc.o"
  "CMakeFiles/test_spdk.dir/test_spdk.cc.o.d"
  "test_spdk"
  "test_spdk.pdb"
  "test_spdk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
