file(REMOVE_RECURSE
  "CMakeFiles/test_shm_counter_symbols.dir/test_shm_counter_symbols.cc.o"
  "CMakeFiles/test_shm_counter_symbols.dir/test_shm_counter_symbols.cc.o.d"
  "test_shm_counter_symbols"
  "test_shm_counter_symbols.pdb"
  "test_shm_counter_symbols[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shm_counter_symbols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
