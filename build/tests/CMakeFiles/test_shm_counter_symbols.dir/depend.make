# Empty dependencies file for test_shm_counter_symbols.
# This may be replaced when dependencies are built.
