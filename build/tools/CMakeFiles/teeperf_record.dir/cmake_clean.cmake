file(REMOVE_RECURSE
  "CMakeFiles/teeperf_record.dir/teeperf_record.cc.o"
  "CMakeFiles/teeperf_record.dir/teeperf_record.cc.o.d"
  "teeperf_record"
  "teeperf_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
