# Empty compiler generated dependencies file for teeperf_record.
# This may be replaced when dependencies are built.
