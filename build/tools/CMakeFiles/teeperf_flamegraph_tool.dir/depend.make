# Empty dependencies file for teeperf_flamegraph_tool.
# This may be replaced when dependencies are built.
