file(REMOVE_RECURSE
  "CMakeFiles/teeperf_flamegraph_tool.dir/teeperf_flamegraph.cc.o"
  "CMakeFiles/teeperf_flamegraph_tool.dir/teeperf_flamegraph.cc.o.d"
  "teeperf_flamegraph"
  "teeperf_flamegraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_flamegraph_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
