# Empty dependencies file for teeperf_analyze.
# This may be replaced when dependencies are built.
