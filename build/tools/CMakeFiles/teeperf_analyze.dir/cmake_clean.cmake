file(REMOVE_RECURSE
  "CMakeFiles/teeperf_analyze.dir/teeperf_analyze.cc.o"
  "CMakeFiles/teeperf_analyze.dir/teeperf_analyze.cc.o.d"
  "teeperf_analyze"
  "teeperf_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
