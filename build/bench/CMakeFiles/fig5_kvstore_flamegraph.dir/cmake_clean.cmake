file(REMOVE_RECURSE
  "CMakeFiles/fig5_kvstore_flamegraph.dir/fig5_kvstore_flamegraph.cc.o"
  "CMakeFiles/fig5_kvstore_flamegraph.dir/fig5_kvstore_flamegraph.cc.o.d"
  "fig5_kvstore_flamegraph"
  "fig5_kvstore_flamegraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_kvstore_flamegraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
