# Empty dependencies file for fig5_kvstore_flamegraph.
# This may be replaced when dependencies are built.
