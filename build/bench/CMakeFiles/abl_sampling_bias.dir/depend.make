# Empty dependencies file for abl_sampling_bias.
# This may be replaced when dependencies are built.
