file(REMOVE_RECURSE
  "CMakeFiles/abl_sampling_bias.dir/abl_sampling_bias.cc.o"
  "CMakeFiles/abl_sampling_bias.dir/abl_sampling_bias.cc.o.d"
  "abl_sampling_bias"
  "abl_sampling_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sampling_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
