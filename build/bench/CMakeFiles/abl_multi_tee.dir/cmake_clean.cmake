file(REMOVE_RECURSE
  "CMakeFiles/abl_multi_tee.dir/abl_multi_tee.cc.o"
  "CMakeFiles/abl_multi_tee.dir/abl_multi_tee.cc.o.d"
  "abl_multi_tee"
  "abl_multi_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multi_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
