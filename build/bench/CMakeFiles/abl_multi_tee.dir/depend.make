# Empty dependencies file for abl_multi_tee.
# This may be replaced when dependencies are built.
