file(REMOVE_RECURSE
  "CMakeFiles/abl_selective.dir/abl_selective.cc.o"
  "CMakeFiles/abl_selective.dir/abl_selective.cc.o.d"
  "abl_selective"
  "abl_selective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
