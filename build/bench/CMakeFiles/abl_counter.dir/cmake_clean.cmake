file(REMOVE_RECURSE
  "CMakeFiles/abl_counter.dir/abl_counter.cc.o"
  "CMakeFiles/abl_counter.dir/abl_counter.cc.o.d"
  "abl_counter"
  "abl_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
