# Empty compiler generated dependencies file for abl_counter.
# This may be replaced when dependencies are built.
