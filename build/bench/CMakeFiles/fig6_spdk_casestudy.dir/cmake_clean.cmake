file(REMOVE_RECURSE
  "CMakeFiles/fig6_spdk_casestudy.dir/fig6_spdk_casestudy.cc.o"
  "CMakeFiles/fig6_spdk_casestudy.dir/fig6_spdk_casestudy.cc.o.d"
  "fig6_spdk_casestudy"
  "fig6_spdk_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_spdk_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
