# Empty dependencies file for fig6_spdk_casestudy.
# This may be replaced when dependencies are built.
