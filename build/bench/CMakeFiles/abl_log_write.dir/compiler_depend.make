# Empty compiler generated dependencies file for abl_log_write.
# This may be replaced when dependencies are built.
