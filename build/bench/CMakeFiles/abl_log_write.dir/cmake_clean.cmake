file(REMOVE_RECURSE
  "CMakeFiles/abl_log_write.dir/abl_log_write.cc.o"
  "CMakeFiles/abl_log_write.dir/abl_log_write.cc.o.d"
  "abl_log_write"
  "abl_log_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_log_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
