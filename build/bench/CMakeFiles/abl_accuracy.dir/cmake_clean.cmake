file(REMOVE_RECURSE
  "CMakeFiles/abl_accuracy.dir/abl_accuracy.cc.o"
  "CMakeFiles/abl_accuracy.dir/abl_accuracy.cc.o.d"
  "abl_accuracy"
  "abl_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
