# Empty dependencies file for abl_accuracy.
# This may be replaced when dependencies are built.
