file(REMOVE_RECURSE
  "CMakeFiles/fig4_phoenix_overhead.dir/fig4_phoenix_overhead.cc.o"
  "CMakeFiles/fig4_phoenix_overhead.dir/fig4_phoenix_overhead.cc.o.d"
  "fig4_phoenix_overhead"
  "fig4_phoenix_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_phoenix_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
