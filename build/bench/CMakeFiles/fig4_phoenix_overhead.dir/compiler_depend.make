# Empty compiler generated dependencies file for fig4_phoenix_overhead.
# This may be replaced when dependencies are built.
