file(REMOVE_RECURSE
  "CMakeFiles/abl_secure_wal.dir/abl_secure_wal.cc.o"
  "CMakeFiles/abl_secure_wal.dir/abl_secure_wal.cc.o.d"
  "abl_secure_wal"
  "abl_secure_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_secure_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
