# Empty dependencies file for abl_secure_wal.
# This may be replaced when dependencies are built.
