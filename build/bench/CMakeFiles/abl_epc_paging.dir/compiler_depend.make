# Empty compiler generated dependencies file for abl_epc_paging.
# This may be replaced when dependencies are built.
