file(REMOVE_RECURSE
  "CMakeFiles/abl_epc_paging.dir/abl_epc_paging.cc.o"
  "CMakeFiles/abl_epc_paging.dir/abl_epc_paging.cc.o.d"
  "abl_epc_paging"
  "abl_epc_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_epc_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
