file(REMOVE_RECURSE
  "libteeperf_perfsim.a"
)
