# Empty dependencies file for teeperf_perfsim.
# This may be replaced when dependencies are built.
