file(REMOVE_RECURSE
  "CMakeFiles/teeperf_perfsim.dir/sampler.cc.o"
  "CMakeFiles/teeperf_perfsim.dir/sampler.cc.o.d"
  "libteeperf_perfsim.a"
  "libteeperf_perfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_perfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
