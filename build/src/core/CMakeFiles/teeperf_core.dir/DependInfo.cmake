
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/auto_attach.cc" "src/core/CMakeFiles/teeperf_core.dir/auto_attach.cc.o" "gcc" "src/core/CMakeFiles/teeperf_core.dir/auto_attach.cc.o.d"
  "/root/repo/src/core/counter.cc" "src/core/CMakeFiles/teeperf_core.dir/counter.cc.o" "gcc" "src/core/CMakeFiles/teeperf_core.dir/counter.cc.o.d"
  "/root/repo/src/core/filter.cc" "src/core/CMakeFiles/teeperf_core.dir/filter.cc.o" "gcc" "src/core/CMakeFiles/teeperf_core.dir/filter.cc.o.d"
  "/root/repo/src/core/log_format.cc" "src/core/CMakeFiles/teeperf_core.dir/log_format.cc.o" "gcc" "src/core/CMakeFiles/teeperf_core.dir/log_format.cc.o.d"
  "/root/repo/src/core/recorder.cc" "src/core/CMakeFiles/teeperf_core.dir/recorder.cc.o" "gcc" "src/core/CMakeFiles/teeperf_core.dir/recorder.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/teeperf_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/teeperf_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/shm.cc" "src/core/CMakeFiles/teeperf_core.dir/shm.cc.o" "gcc" "src/core/CMakeFiles/teeperf_core.dir/shm.cc.o.d"
  "/root/repo/src/core/symbol_dump.cc" "src/core/CMakeFiles/teeperf_core.dir/symbol_dump.cc.o" "gcc" "src/core/CMakeFiles/teeperf_core.dir/symbol_dump.cc.o.d"
  "/root/repo/src/core/symbol_registry.cc" "src/core/CMakeFiles/teeperf_core.dir/symbol_registry.cc.o" "gcc" "src/core/CMakeFiles/teeperf_core.dir/symbol_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/teeperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
