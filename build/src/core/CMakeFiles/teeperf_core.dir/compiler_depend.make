# Empty compiler generated dependencies file for teeperf_core.
# This may be replaced when dependencies are built.
