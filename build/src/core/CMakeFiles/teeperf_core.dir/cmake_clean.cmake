file(REMOVE_RECURSE
  "CMakeFiles/teeperf_core.dir/auto_attach.cc.o"
  "CMakeFiles/teeperf_core.dir/auto_attach.cc.o.d"
  "CMakeFiles/teeperf_core.dir/counter.cc.o"
  "CMakeFiles/teeperf_core.dir/counter.cc.o.d"
  "CMakeFiles/teeperf_core.dir/filter.cc.o"
  "CMakeFiles/teeperf_core.dir/filter.cc.o.d"
  "CMakeFiles/teeperf_core.dir/log_format.cc.o"
  "CMakeFiles/teeperf_core.dir/log_format.cc.o.d"
  "CMakeFiles/teeperf_core.dir/recorder.cc.o"
  "CMakeFiles/teeperf_core.dir/recorder.cc.o.d"
  "CMakeFiles/teeperf_core.dir/runtime.cc.o"
  "CMakeFiles/teeperf_core.dir/runtime.cc.o.d"
  "CMakeFiles/teeperf_core.dir/shm.cc.o"
  "CMakeFiles/teeperf_core.dir/shm.cc.o.d"
  "CMakeFiles/teeperf_core.dir/symbol_dump.cc.o"
  "CMakeFiles/teeperf_core.dir/symbol_dump.cc.o.d"
  "CMakeFiles/teeperf_core.dir/symbol_registry.cc.o"
  "CMakeFiles/teeperf_core.dir/symbol_registry.cc.o.d"
  "libteeperf_core.a"
  "libteeperf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
