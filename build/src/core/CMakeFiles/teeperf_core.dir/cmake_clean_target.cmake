file(REMOVE_RECURSE
  "libteeperf_core.a"
)
