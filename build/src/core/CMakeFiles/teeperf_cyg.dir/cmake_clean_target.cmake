file(REMOVE_RECURSE
  "libteeperf_cyg.a"
)
