# Empty compiler generated dependencies file for teeperf_cyg.
# This may be replaced when dependencies are built.
