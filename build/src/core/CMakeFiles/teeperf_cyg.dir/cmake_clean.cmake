file(REMOVE_RECURSE
  "CMakeFiles/teeperf_cyg.dir/cyg_hooks.cc.o"
  "CMakeFiles/teeperf_cyg.dir/cyg_hooks.cc.o.d"
  "libteeperf_cyg.a"
  "libteeperf_cyg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_cyg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
