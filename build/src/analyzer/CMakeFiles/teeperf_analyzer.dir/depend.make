# Empty dependencies file for teeperf_analyzer.
# This may be replaced when dependencies are built.
