
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/profile.cc" "src/analyzer/CMakeFiles/teeperf_analyzer.dir/profile.cc.o" "gcc" "src/analyzer/CMakeFiles/teeperf_analyzer.dir/profile.cc.o.d"
  "/root/repo/src/analyzer/query.cc" "src/analyzer/CMakeFiles/teeperf_analyzer.dir/query.cc.o" "gcc" "src/analyzer/CMakeFiles/teeperf_analyzer.dir/query.cc.o.d"
  "/root/repo/src/analyzer/report.cc" "src/analyzer/CMakeFiles/teeperf_analyzer.dir/report.cc.o" "gcc" "src/analyzer/CMakeFiles/teeperf_analyzer.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/teeperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/teeperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
