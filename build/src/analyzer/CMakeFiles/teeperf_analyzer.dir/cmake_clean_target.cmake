file(REMOVE_RECURSE
  "libteeperf_analyzer.a"
)
