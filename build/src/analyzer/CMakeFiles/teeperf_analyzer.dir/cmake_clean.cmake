file(REMOVE_RECURSE
  "CMakeFiles/teeperf_analyzer.dir/profile.cc.o"
  "CMakeFiles/teeperf_analyzer.dir/profile.cc.o.d"
  "CMakeFiles/teeperf_analyzer.dir/query.cc.o"
  "CMakeFiles/teeperf_analyzer.dir/query.cc.o.d"
  "CMakeFiles/teeperf_analyzer.dir/report.cc.o"
  "CMakeFiles/teeperf_analyzer.dir/report.cc.o.d"
  "libteeperf_analyzer.a"
  "libteeperf_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
