# Empty compiler generated dependencies file for teeperf_spdk.
# This may be replaced when dependencies are built.
