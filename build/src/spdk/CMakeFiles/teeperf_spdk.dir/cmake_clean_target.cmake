file(REMOVE_RECURSE
  "libteeperf_spdk.a"
)
