file(REMOVE_RECURSE
  "CMakeFiles/teeperf_spdk.dir/env.cc.o"
  "CMakeFiles/teeperf_spdk.dir/env.cc.o.d"
  "CMakeFiles/teeperf_spdk.dir/nvme.cc.o"
  "CMakeFiles/teeperf_spdk.dir/nvme.cc.o.d"
  "CMakeFiles/teeperf_spdk.dir/perf_tool.cc.o"
  "CMakeFiles/teeperf_spdk.dir/perf_tool.cc.o.d"
  "CMakeFiles/teeperf_spdk.dir/ticks.cc.o"
  "CMakeFiles/teeperf_spdk.dir/ticks.cc.o.d"
  "libteeperf_spdk.a"
  "libteeperf_spdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_spdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
