
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spdk/env.cc" "src/spdk/CMakeFiles/teeperf_spdk.dir/env.cc.o" "gcc" "src/spdk/CMakeFiles/teeperf_spdk.dir/env.cc.o.d"
  "/root/repo/src/spdk/nvme.cc" "src/spdk/CMakeFiles/teeperf_spdk.dir/nvme.cc.o" "gcc" "src/spdk/CMakeFiles/teeperf_spdk.dir/nvme.cc.o.d"
  "/root/repo/src/spdk/perf_tool.cc" "src/spdk/CMakeFiles/teeperf_spdk.dir/perf_tool.cc.o" "gcc" "src/spdk/CMakeFiles/teeperf_spdk.dir/perf_tool.cc.o.d"
  "/root/repo/src/spdk/ticks.cc" "src/spdk/CMakeFiles/teeperf_spdk.dir/ticks.cc.o" "gcc" "src/spdk/CMakeFiles/teeperf_spdk.dir/ticks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/teeperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/teeperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/teeperf_tee.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
