
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/arena.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/arena.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/arena.cc.o.d"
  "/root/repo/src/kvstore/bloom.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/bloom.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/bloom.cc.o.d"
  "/root/repo/src/kvstore/compress.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/compress.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/compress.cc.o.d"
  "/root/repo/src/kvstore/db.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/db.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/db.cc.o.d"
  "/root/repo/src/kvstore/db_bench.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/db_bench.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/db_bench.cc.o.d"
  "/root/repo/src/kvstore/memtable.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/memtable.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/memtable.cc.o.d"
  "/root/repo/src/kvstore/merging_iterator.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/merging_iterator.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/merging_iterator.cc.o.d"
  "/root/repo/src/kvstore/secure.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/secure.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/secure.cc.o.d"
  "/root/repo/src/kvstore/sstable.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/sstable.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/sstable.cc.o.d"
  "/root/repo/src/kvstore/version.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/version.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/version.cc.o.d"
  "/root/repo/src/kvstore/wal.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/wal.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/wal.cc.o.d"
  "/root/repo/src/kvstore/write_batch.cc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/write_batch.cc.o" "gcc" "src/kvstore/CMakeFiles/teeperf_kvstore.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/teeperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/teeperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/teeperf_tee.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
