# Empty compiler generated dependencies file for teeperf_kvstore.
# This may be replaced when dependencies are built.
