file(REMOVE_RECURSE
  "libteeperf_kvstore.a"
)
