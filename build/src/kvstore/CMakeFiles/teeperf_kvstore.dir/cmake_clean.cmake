file(REMOVE_RECURSE
  "CMakeFiles/teeperf_kvstore.dir/arena.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/arena.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/bloom.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/bloom.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/compress.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/compress.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/db.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/db.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/db_bench.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/db_bench.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/memtable.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/memtable.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/merging_iterator.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/merging_iterator.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/secure.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/secure.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/sstable.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/sstable.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/version.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/version.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/wal.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/wal.cc.o.d"
  "CMakeFiles/teeperf_kvstore.dir/write_batch.cc.o"
  "CMakeFiles/teeperf_kvstore.dir/write_batch.cc.o.d"
  "libteeperf_kvstore.a"
  "libteeperf_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
