file(REMOVE_RECURSE
  "CMakeFiles/teeperf_common.dir/crc32c.cc.o"
  "CMakeFiles/teeperf_common.dir/crc32c.cc.o.d"
  "CMakeFiles/teeperf_common.dir/fileutil.cc.o"
  "CMakeFiles/teeperf_common.dir/fileutil.cc.o.d"
  "CMakeFiles/teeperf_common.dir/histogram.cc.o"
  "CMakeFiles/teeperf_common.dir/histogram.cc.o.d"
  "CMakeFiles/teeperf_common.dir/spin.cc.o"
  "CMakeFiles/teeperf_common.dir/spin.cc.o.d"
  "CMakeFiles/teeperf_common.dir/stringutil.cc.o"
  "CMakeFiles/teeperf_common.dir/stringutil.cc.o.d"
  "libteeperf_common.a"
  "libteeperf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
