# Empty compiler generated dependencies file for teeperf_common.
# This may be replaced when dependencies are built.
