file(REMOVE_RECURSE
  "libteeperf_common.a"
)
