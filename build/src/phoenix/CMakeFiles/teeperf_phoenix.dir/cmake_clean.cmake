file(REMOVE_RECURSE
  "CMakeFiles/teeperf_phoenix.dir/histogram.cc.o"
  "CMakeFiles/teeperf_phoenix.dir/histogram.cc.o.d"
  "CMakeFiles/teeperf_phoenix.dir/kmeans.cc.o"
  "CMakeFiles/teeperf_phoenix.dir/kmeans.cc.o.d"
  "CMakeFiles/teeperf_phoenix.dir/linear_regression.cc.o"
  "CMakeFiles/teeperf_phoenix.dir/linear_regression.cc.o.d"
  "CMakeFiles/teeperf_phoenix.dir/matrix_multiply.cc.o"
  "CMakeFiles/teeperf_phoenix.dir/matrix_multiply.cc.o.d"
  "CMakeFiles/teeperf_phoenix.dir/pca.cc.o"
  "CMakeFiles/teeperf_phoenix.dir/pca.cc.o.d"
  "CMakeFiles/teeperf_phoenix.dir/reverse_index.cc.o"
  "CMakeFiles/teeperf_phoenix.dir/reverse_index.cc.o.d"
  "CMakeFiles/teeperf_phoenix.dir/string_match.cc.o"
  "CMakeFiles/teeperf_phoenix.dir/string_match.cc.o.d"
  "CMakeFiles/teeperf_phoenix.dir/suite.cc.o"
  "CMakeFiles/teeperf_phoenix.dir/suite.cc.o.d"
  "CMakeFiles/teeperf_phoenix.dir/word_count.cc.o"
  "CMakeFiles/teeperf_phoenix.dir/word_count.cc.o.d"
  "libteeperf_phoenix.a"
  "libteeperf_phoenix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_phoenix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
