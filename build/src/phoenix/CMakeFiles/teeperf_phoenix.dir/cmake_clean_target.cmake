file(REMOVE_RECURSE
  "libteeperf_phoenix.a"
)
