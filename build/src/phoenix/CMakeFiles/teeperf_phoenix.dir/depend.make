# Empty dependencies file for teeperf_phoenix.
# This may be replaced when dependencies are built.
