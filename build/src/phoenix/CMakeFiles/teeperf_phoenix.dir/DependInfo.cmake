
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phoenix/histogram.cc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/histogram.cc.o" "gcc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/histogram.cc.o.d"
  "/root/repo/src/phoenix/kmeans.cc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/kmeans.cc.o" "gcc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/kmeans.cc.o.d"
  "/root/repo/src/phoenix/linear_regression.cc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/linear_regression.cc.o" "gcc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/linear_regression.cc.o.d"
  "/root/repo/src/phoenix/matrix_multiply.cc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/matrix_multiply.cc.o" "gcc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/matrix_multiply.cc.o.d"
  "/root/repo/src/phoenix/pca.cc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/pca.cc.o" "gcc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/pca.cc.o.d"
  "/root/repo/src/phoenix/reverse_index.cc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/reverse_index.cc.o" "gcc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/reverse_index.cc.o.d"
  "/root/repo/src/phoenix/string_match.cc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/string_match.cc.o" "gcc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/string_match.cc.o.d"
  "/root/repo/src/phoenix/suite.cc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/suite.cc.o" "gcc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/suite.cc.o.d"
  "/root/repo/src/phoenix/word_count.cc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/word_count.cc.o" "gcc" "src/phoenix/CMakeFiles/teeperf_phoenix.dir/word_count.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/teeperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/teeperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
