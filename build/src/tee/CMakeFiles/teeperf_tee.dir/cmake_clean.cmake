file(REMOVE_RECURSE
  "CMakeFiles/teeperf_tee.dir/enclave.cc.o"
  "CMakeFiles/teeperf_tee.dir/enclave.cc.o.d"
  "CMakeFiles/teeperf_tee.dir/epc.cc.o"
  "CMakeFiles/teeperf_tee.dir/epc.cc.o.d"
  "CMakeFiles/teeperf_tee.dir/sysapi.cc.o"
  "CMakeFiles/teeperf_tee.dir/sysapi.cc.o.d"
  "libteeperf_tee.a"
  "libteeperf_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
