# Empty compiler generated dependencies file for teeperf_tee.
# This may be replaced when dependencies are built.
