file(REMOVE_RECURSE
  "libteeperf_tee.a"
)
