# CMake generated Testfile for 
# Source directory: /root/repo/src/flamegraph
# Build directory: /root/repo/build/src/flamegraph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
