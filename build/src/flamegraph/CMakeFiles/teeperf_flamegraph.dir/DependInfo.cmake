
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flamegraph/flamegraph.cc" "src/flamegraph/CMakeFiles/teeperf_flamegraph.dir/flamegraph.cc.o" "gcc" "src/flamegraph/CMakeFiles/teeperf_flamegraph.dir/flamegraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analyzer/CMakeFiles/teeperf_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/teeperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/teeperf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
