# Empty dependencies file for teeperf_flamegraph.
# This may be replaced when dependencies are built.
