file(REMOVE_RECURSE
  "CMakeFiles/teeperf_flamegraph.dir/flamegraph.cc.o"
  "CMakeFiles/teeperf_flamegraph.dir/flamegraph.cc.o.d"
  "libteeperf_flamegraph.a"
  "libteeperf_flamegraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teeperf_flamegraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
