file(REMOVE_RECURSE
  "libteeperf_flamegraph.a"
)
