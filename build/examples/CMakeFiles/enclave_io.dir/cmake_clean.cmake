file(REMOVE_RECURSE
  "CMakeFiles/enclave_io.dir/enclave_io.cpp.o"
  "CMakeFiles/enclave_io.dir/enclave_io.cpp.o.d"
  "enclave_io"
  "enclave_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclave_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
