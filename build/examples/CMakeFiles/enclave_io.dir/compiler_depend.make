# Empty compiler generated dependencies file for enclave_io.
# This may be replaced when dependencies are built.
