file(REMOVE_RECURSE
  "CMakeFiles/query_tour.dir/query_tour.cpp.o"
  "CMakeFiles/query_tour.dir/query_tour.cpp.o.d"
  "query_tour"
  "query_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
