# Empty compiler generated dependencies file for query_tour.
# This may be replaced when dependencies are built.
