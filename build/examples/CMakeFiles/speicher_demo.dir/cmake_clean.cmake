file(REMOVE_RECURSE
  "CMakeFiles/speicher_demo.dir/speicher_demo.cpp.o"
  "CMakeFiles/speicher_demo.dir/speicher_demo.cpp.o.d"
  "speicher_demo"
  "speicher_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speicher_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
