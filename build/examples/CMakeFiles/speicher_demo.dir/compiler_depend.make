# Empty compiler generated dependencies file for speicher_demo.
# This may be replaced when dependencies are built.
