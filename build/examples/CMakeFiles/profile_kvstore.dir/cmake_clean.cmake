file(REMOVE_RECURSE
  "CMakeFiles/profile_kvstore.dir/profile_kvstore.cpp.o"
  "CMakeFiles/profile_kvstore.dir/profile_kvstore.cpp.o.d"
  "profile_kvstore"
  "profile_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
