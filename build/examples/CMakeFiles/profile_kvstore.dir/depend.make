# Empty dependencies file for profile_kvstore.
# This may be replaced when dependencies are built.
