file(REMOVE_RECURSE
  "CMakeFiles/instrumented_app.dir/instrumented_app.cpp.o"
  "CMakeFiles/instrumented_app.dir/instrumented_app.cpp.o.d"
  "instrumented_app"
  "instrumented_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumented_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
