# Empty dependencies file for compare_profilers.
# This may be replaced when dependencies are built.
