file(REMOVE_RECURSE
  "CMakeFiles/compare_profilers.dir/compare_profilers.cpp.o"
  "CMakeFiles/compare_profilers.dir/compare_profilers.cpp.o.d"
  "compare_profilers"
  "compare_profilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_profilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
