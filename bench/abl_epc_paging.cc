// Ablation A6 — making EPC paging visible (§I motivation).
//
// "the cost of accessing memory beyond the secure physical memory region
// ... incurs very high performance overheads due to secure paging ...
// up to 2000×."
//
// Two identical random-access workloads inside the enclave, one with a
// working set inside the EPC and one at 4× the EPC: TEE-Perf's profile of
// the second shows an `epc::secure_paging` frame carrying the overhead —
// the exact insight a developer needs to shrink the working set.
#include <cstdio>

#include "analyzer/profile.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/spin.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"
#include "tee/enclave.h"
#include "tee/epc.h"

using namespace teeperf;
using namespace teeperf::benchharness;

namespace {

constexpr usize kEpcLimitPages = 2048;  // 8 MiB of secure memory
constexpr usize kAccesses = 60'000;

double run_case(const char* label, usize buffer_pages, double* paging_frac) {
  tee::CostModel cm = tee::CostModel::sgx_like();
  cm.epc_pages = kEpcLimitPages;
  tee::Enclave enclave(cm);
  tee::EpcAllocator epc(&enclave, cm.epc_pages);
  auto buffer = epc.allocate(buffer_pages * tee::kEpcPageSize);

  // Warm-up outside the measurement: cold faults are not the story; steady
  // state is (a working set inside the EPC never faults again, one beyond
  // it thrashes forever).
  for (usize page = 0; page < buffer_pages; ++page) {
    buffer->touch(page * tee::kEpcPageSize, 1, true);
  }

  RecorderOptions opts;
  opts.max_entries = 1ull << 20;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return 0;

  Xorshift64 rng(7);
  u64 t0 = monotonic_ns();
  enclave.ecall([&] {
    TEEPERF_SCOPE("workload::random_access");
    for (usize i = 0; i < kAccesses; ++i) {
      usize offset = static_cast<usize>(rng.next_below(buffer->size() - 64));
      u8* p = buffer->touch(offset, 64, /*write=*/true);
      *p = static_cast<u8>(i);
    }
  });
  double ms = static_cast<double>(monotonic_ns() - t0) / 1e6;
  recorder->detach();

  auto profile = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  auto tree = flamegraph::build_frame_tree(profile.folded_stacks());
  *paging_frac = flamegraph::frame_fraction(tree, "epc::secure_paging");

  std::printf("%-26s %10.1f ms   page_ins=%8llu   secure_paging share %5.1f%%\n",
              label, ms,
              static_cast<unsigned long long>(
                  enclave.counters().page_ins.load(std::memory_order_relaxed)),
              *paging_frac * 100);
  return ms;
}

}  // namespace

int main() {
  std::printf("Ablation A6: EPC secure paging in the profile "
              "(%zu random 64 B writes, EPC = %zu pages)\n",
              kAccesses, kEpcLimitPages);
  print_rule('=');
  double in_frac = 0, out_frac = 0;
  double in_ms = run_case("working set 0.5x EPC", kEpcLimitPages / 2, &in_frac);
  double out_ms = run_case("working set 4x EPC", kEpcLimitPages * 4, &out_frac);
  print_rule();
  std::printf("slowdown from paging: %.1fx; the profile pins %5.1f%% of the "
              "slow run on epc::secure_paging\n",
              in_ms > 0 ? out_ms / in_ms : 0, out_frac * 100);
  print_rule('=');
  std::printf("Expected shape: the in-EPC run shows ~0%% paging; the 4x run "
              "is many times slower with secure_paging dominating — the §I "
              "pathology, made visible by method-level tracing.\n");
  return 0;
}
