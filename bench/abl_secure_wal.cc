// Ablation A8 — the Speicher extension: secure WAL in the enclave.
//
// The paper grew out of Speicher (§V), whose core problem is exactly the
// kind TEE-Perf exists to expose: SGX trusted monotonic counters cost
// ~O(100 ms) per increment, so a rollback-protected WAL that stabilizes the
// counter per record is catastrophically slow — and the profile says so.
// Three configurations of WAL appends inside the enclave simulator:
//
//   plain          — no integrity (the baseline kvstore WAL)
//   secure+sync    — MAC per record + synchronous counter stabilization
//   secure+async   — MAC per record + Speicher's asynchronous counter
//                    (one stabilization per flush epoch)
//
// TEE-Perf's recorded profile of the sync run pins the time on
// secure::TrustedCounter::increment, and the async run shows the fix.
#include <cstdio>

#include "analyzer/profile.h"
#include "bench/bench_util.h"
#include "common/fileutil.h"
#include "common/spin.h"
#include "common/stringutil.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"
#include "kvstore/secure.h"
#include "tee/enclave.h"

using namespace teeperf;
using namespace teeperf::benchharness;
using namespace teeperf::kvs;
using namespace teeperf::kvs::secure;

namespace {

constexpr u64 kCounterCostNs = 60'000'000;  // SGX platform-service counter

MacKey bench_key() {
  MacKey k{};
  for (usize i = 0; i < k.size(); ++i) k[i] = static_cast<u8>(0xa0 + i);
  return k;
}

struct Row {
  const char* label;
  usize records = 0;
  double seconds = 0;
  double per_record_us = 0;
  u64 hw_increments = 0;
  double counter_frac = 0;  // profile share of TrustedCounter::increment
};

Row run_case(const std::string& dir, const char* label, bool secure_mode,
             TrustedCounter::Mode counter_mode, usize records) {
  Row row;
  row.label = label;
  row.records = records;

  RecorderOptions opts;
  opts.max_entries = 1 << 20;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return row;

  tee::Enclave enclave(tee::CostModel::sgx_like());
  TrustedCounter counter(dir + "/ctr_" + label, counter_mode, kCounterCostNs);
  std::string payload(100, 'p');

  u64 t0 = monotonic_ns();
  enclave.ecall([&] {
    if (secure_mode) {
      SecureWalWriter w(bench_key(), &counter);
      if (!w.open(dir + "/wal_" + label, true).is_ok()) return;
      for (usize i = 0; i < records; ++i) w.append(payload);
      w.flush();
    } else {
      WalWriter w;
      if (!w.open(dir + "/wal_" + label, true).is_ok()) return;
      for (usize i = 0; i < records; ++i) w.append(payload);
      w.flush();
    }
  });
  row.seconds = static_cast<double>(monotonic_ns() - t0) / 1e9;
  recorder->detach();

  row.per_record_us = row.seconds * 1e6 / static_cast<double>(records);
  row.hw_increments = counter.hardware_increments();

  auto profile = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  auto tree = flamegraph::build_frame_tree(profile.folded_stacks());
  row.counter_frac =
      flamegraph::frame_fraction(tree, "secure::TrustedCounter::increment");
  return row;
}

}  // namespace

int main() {
  std::string dir = make_temp_dir("teeperf_swal_bench_");
  std::printf("Ablation A8: rollback-protected WAL in the enclave "
              "(Speicher extension; trusted-counter write = %llu ms)\n",
              static_cast<unsigned long long>(kCounterCostNs / 1'000'000));
  print_rule('=');
  std::printf("%-16s %8s %10s %14s %10s %18s\n", "mode", "records", "time(s)",
              "us/record", "hw writes", "counter frame");
  print_rule();

  Row rows[3];
  rows[0] = run_case(dir, "plain", false, TrustedCounter::Mode::kAsync, 4000);
  // Sync stabilization: 20 records already cost >1 s.
  rows[1] = run_case(dir, "secure_sync", true, TrustedCounter::Mode::kSync, 20);
  rows[2] = run_case(dir, "secure_async", true, TrustedCounter::Mode::kAsync, 4000);

  for (const Row& r : rows) {
    std::printf("%-16s %8zu %10.3f %14.1f %10llu %16.1f%%\n", r.label, r.records,
                r.seconds, r.per_record_us,
                static_cast<unsigned long long>(r.hw_increments),
                r.counter_frac * 100);
  }
  print_rule('=');
  double slowdown = rows[0].per_record_us > 0
                        ? rows[1].per_record_us / rows[0].per_record_us
                        : 0;
  double recovered = rows[2].per_record_us > 0
                         ? rows[1].per_record_us / rows[2].per_record_us
                         : 0;
  std::printf("sync counter costs %.0fx over plain; the async counter claws "
              "back %.0fx of it — and the profile names the culprit "
              "(TrustedCounter::increment at %.0f%% in the sync run, ~0%% "
              "async).\n",
              slowdown, recovered, rows[1].counter_frac * 100);
  remove_tree(dir);
  return 0;
}
