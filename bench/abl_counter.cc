// Ablation A2 — the counter source (§II-B design choice).
//
// The paper's portable time source is a software counter (a thread
// incrementing a word in the log header); hardware counters are used when
// the recorder can expose them. This microbenchmark measures the read cost
// of each source and reports the software counter's tick rate and the
// effective resolution of each (distinct values in a tight read loop).
#include <benchmark/benchmark.h>

#include "common/spin.h"
#include "core/counter.h"

namespace {

using namespace teeperf;

LogHeader g_header;

void BM_ReadSoftwareCounter(benchmark::State& state) {
  // A live counter thread mutates the header word while we read it —
  // the realistic cache-coherence cost, not a stale-line fantasy.
  SoftwareCounter counter(&g_header, /*yield_every=*/4096);
  counter.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_counter(CounterMode::kSoftware, &g_header));
  }
  counter.stop();
  state.counters["ticks_per_sec"] = counter.ticks_per_second();
}
BENCHMARK(BM_ReadSoftwareCounter);

void BM_ReadTsc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_counter(CounterMode::kTsc, &g_header));
  }
}
BENCHMARK(BM_ReadTsc);

void BM_ReadSteadyClock(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_counter(CounterMode::kSteadyClock, &g_header));
  }
}
BENCHMARK(BM_ReadSteadyClock);

// Resolution: how many of 10k consecutive reads yield distinct values.
// A usable profiling counter should change nearly every read.
void BM_Resolution(benchmark::State& state) {
  CounterMode mode = static_cast<CounterMode>(state.range(0));
  SoftwareCounter counter(&g_header, 4096);
  if (mode == CounterMode::kSoftware) counter.start();
  double distinct_frac = 0;
  for (auto _ : state) {
    u64 prev = read_counter(mode, &g_header);
    u64 distinct = 0;
    constexpr int kReads = 10'000;
    for (int i = 0; i < kReads; ++i) {
      u64 now = read_counter(mode, &g_header);
      if (now != prev) ++distinct;
      prev = now;
    }
    distinct_frac = static_cast<double>(distinct) / kReads;
  }
  if (mode == CounterMode::kSoftware) counter.stop();
  state.counters["distinct_frac"] = distinct_frac;
  state.SetLabel(counter_mode_name(mode));
}
BENCHMARK(BM_Resolution)
    ->Arg(static_cast<int>(CounterMode::kSoftware))
    ->Arg(static_cast<int>(CounterMode::kTsc))
    ->Arg(static_cast<int>(CounterMode::kSteadyClock));

}  // namespace

BENCHMARK_MAIN();
