// Ablation A2 — the counter source (§II-B design choice).
//
// The paper's portable time source is a software counter (a thread
// incrementing a word in the log header); hardware counters are used when
// the recorder can expose them. This microbenchmark measures the read cost
// of each source and reports the software counter's tick rate and the
// effective resolution of each (distinct values in a tight read loop).
//
// `--sweep [--out F] [--check BASELINE]` switches to the CI regression
// mode (TESTING.md "Bench regression"): probe-read cost with a single
// software-counter thread vs a 2- and 3-replica ReplicatedCounter behind
// the same header word. The replicated/single *ratio* is the gate — the
// whole point of primary-mirroring is that replication must not change
// what the probe pays, and a ratio blow-up means replica slots started
// sharing the header's cache line again.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/shm.h"
#include "common/spin.h"
#include "core/counter.h"
#include "core/log_format.h"
#include "core/replicated_counter.h"

namespace {

using namespace teeperf;

LogHeader g_header;

void BM_ReadSoftwareCounter(benchmark::State& state) {
  // A live counter thread mutates the header word while we read it —
  // the realistic cache-coherence cost, not a stale-line fantasy.
  SoftwareCounter counter(&g_header, /*yield_every=*/4096);
  counter.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_counter(CounterMode::kSoftware, &g_header));
  }
  counter.stop();
  state.counters["ticks_per_sec"] = counter.ticks_per_second();
}
BENCHMARK(BM_ReadSoftwareCounter);

void BM_ReadTsc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_counter(CounterMode::kTsc, &g_header));
  }
}
BENCHMARK(BM_ReadTsc);

void BM_ReadSteadyClock(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_counter(CounterMode::kSteadyClock, &g_header));
  }
}
BENCHMARK(BM_ReadSteadyClock);

// Resolution: how many of 10k consecutive reads yield distinct values.
// A usable profiling counter should change nearly every read.
void BM_Resolution(benchmark::State& state) {
  CounterMode mode = static_cast<CounterMode>(state.range(0));
  SoftwareCounter counter(&g_header, 4096);
  if (mode == CounterMode::kSoftware) counter.start();
  double distinct_frac = 0;
  for (auto _ : state) {
    u64 prev = read_counter(mode, &g_header);
    u64 distinct = 0;
    constexpr int kReads = 10'000;
    for (int i = 0; i < kReads; ++i) {
      u64 now = read_counter(mode, &g_header);
      if (now != prev) ++distinct;
      prev = now;
    }
    distinct_frac = static_cast<double>(distinct) / kReads;
  }
  if (mode == CounterMode::kSoftware) counter.stop();
  state.counters["distinct_frac"] = distinct_frac;
  state.SetLabel(counter_mode_name(mode));
}
BENCHMARK(BM_Resolution)
    ->Arg(static_cast<int>(CounterMode::kSoftware))
    ->Arg(static_cast<int>(CounterMode::kTsc))
    ->Arg(static_cast<int>(CounterMode::kSteadyClock));

// --- --sweep mode: single vs replicated probe-read cost ---------------------

struct CounterRow {
  u32 replicas = 0;      // 0 = classic single SoftwareCounter
  double ns_per_read = 0;
  double ticks = 0;      // header-word progress during the measurement
  double single_ns = 0;  // the replicas==0 row's cost, for the ratio
  double ratio() const {
    return single_ns > 0 ? ns_per_read / single_ns : 0.0;
  }
};

// Probe-read cost against a live mutating header word: `reads` relaxed
// loads while either a single counter thread or a full replica set + the
// detector runs behind it. Returns the best (min) of `reps` measurements so
// one descheduled rep doesn't read as a regression.
double measure_reads(LogHeader* header, u64 reads) {
  u64 sink = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (u64 i = 0; i < reads; ++i) {
    sink += read_counter(CounterMode::kSoftware, header);
  }
  auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(reads);
}

CounterRow run_single(u64 reads, int reps) {
  CounterRow row;
  LogHeader header;
  SoftwareCounter counter(&header, /*yield_every=*/4096);
  counter.start();
  spin_for_ns(2'000'000);  // warm-up: let the counter thread get scheduled
  u64 c0 = header.counter.load(std::memory_order_relaxed);
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    double ns = measure_reads(&header, reads);
    if (best < 0 || ns < best) best = ns;
  }
  row.ticks = static_cast<double>(
      header.counter.load(std::memory_order_relaxed) - c0);
  counter.stop();
  row.replicas = 0;
  row.ns_per_read = best;
  return row;
}

CounterRow run_replicated(u32 replicas, u64 reads, int reps) {
  CounterRow row;
  row.replicas = replicas;
  SharedMemoryRegion shm;
  if (!shm.create_anonymous(
          ProfileLog::bytes_for_replicated(1024, 0, replicas))) {
    return row;
  }
  ProfileLog log;
  if (!log.init(shm.data(), shm.size(), 42, log_flags::kActive, 0, replicas)) {
    return row;
  }
  ReplicatedCounter counter(log.header(), log.replica_directory(),
                            log.replica_slot(0));
  counter.start();
  spin_for_ns(2'000'000);
  u64 c0 = log.header()->counter.load(std::memory_order_relaxed);
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    double ns = measure_reads(log.header(), reads);
    if (best < 0 || ns < best) best = ns;
  }
  row.ticks = static_cast<double>(
      log.header()->counter.load(std::memory_order_relaxed) - c0);
  counter.stop();
  row.ns_per_read = best;
  return row;
}

std::string render_json(const std::vector<CounterRow>& rows) {
  std::ostringstream out;
  out << "{\n  \"benchmark\": \"abl_counter.sweep\",\n"
      << "  \"unit\": \"ns_per_read\",\n  \"configs\": [\n";
  for (usize i = 0; i < rows.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"replicas\": %u, \"ns_per_read\": %.3f, "
                  "\"ratio\": %.3f}%s\n",
                  rows[i].replicas, rows[i].ns_per_read, rows[i].ratio(),
                  i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
  return out.str();
}

// Per-replica-count {replicas, <key>} pairs from the machine-written
// baseline JSON (same line-based idiom as abl_log_write's parse_field).
std::map<u32, double> parse_field(const std::string& json,
                                  const std::string& key) {
  std::map<u32, double> out;
  const std::string pattern = "\"" + key + "\":";
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    unsigned replicas = 0;
    double value = 0.0;
    const char* r = std::strstr(line.c_str(), "\"replicas\":");
    const char* s = std::strstr(line.c_str(), pattern.c_str());
    if (r && s && std::sscanf(r, "\"replicas\": %u", &replicas) == 1 &&
        std::sscanf(s + pattern.size(), "%lf", &value) == 1) {
      out[replicas] = value;
    }
  }
  return out;
}

int sweep_main(const std::string& out_path, const std::string& check_path,
               u64 reads, int reps) {
  std::vector<CounterRow> rows;
  rows.push_back(run_single(reads, reps));
  for (u32 replicas : {2u, 3u}) {
    CounterRow row = run_replicated(replicas, reads, reps);
    row.single_ns = rows[0].ns_per_read;
    rows.push_back(row);
  }
  for (const CounterRow& row : rows) {
    std::fprintf(stderr, "replicas=%u ns_per_read=%.2f ratio=%.2fx ticks=%.0f\n",
                 row.replicas, row.ns_per_read, row.ratio(), row.ticks);
  }
  std::string json = render_json(rows);
  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::binary);
    f << json;
    if (!f) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }

  int failures = 0;
  // Liveness sanity regardless of baseline: each configuration's counter
  // actually advanced the header word during the measurement.
  for (const CounterRow& row : rows) {
    if (!(row.ns_per_read > 0) || !(row.ticks > 0)) {
      std::fprintf(stderr, "check replicas=%u made no progress FAIL\n",
                   row.replicas);
      ++failures;
    }
  }
  if (check_path.empty()) return failures ? 1 : 0;

  std::ifstream f(check_path, std::ios::binary);
  std::stringstream baseline_buf;
  baseline_buf << f.rdbuf();
  std::map<u32, double> baseline = parse_field(baseline_buf.str(), "ratio");
  if (baseline.empty()) {
    std::fprintf(stderr, "FAIL: no configs parsed from %s\n",
                 check_path.c_str());
    return 1;
  }
  // The regression gate: the replicated/single probe-read cost ratio may
  // not rise more than 35% above the checked-in baseline ratio, and never
  // past an absolute 2.5x ceiling floor (single-core runners jitter; a
  // false-shared header line shows up as a large multiple, far outside
  // both bands).
  for (const CounterRow& row : rows) {
    if (row.replicas == 0) continue;
    auto it = baseline.find(row.replicas);
    double base = it != baseline.end() ? it->second : 1.0;
    double ceiling = base * 1.35 > 2.5 ? base * 1.35 : 2.5;
    double ratio = row.ratio();
    bool ok = ratio > 0 && ratio <= ceiling;
    std::fprintf(stderr,
                 "check replicas=%u ratio=%.2fx baseline=%.2fx ceiling=%.2fx %s\n",
                 row.replicas, ratio, base, ceiling,
                 ok ? "OK" : "REGRESSION");
    if (!ok) ++failures;
  }
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path, check_path;
  u64 reads = 2'000'000;
  int reps = 5;
  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--reads" && i + 1 < argc) {
      reads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    }
  }
  if (sweep) return sweep_main(out_path, check_path, reads, reps);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
