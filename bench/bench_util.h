// Shared plumbing for the per-figure bench harnesses: result directory,
// repeat counts, geometric mean, simple table printing.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fileutil.h"
#include "common/types.h"

namespace teeperf::benchharness {

// Where harnesses drop flame graphs / folded stacks. Override with
// TEEPERF_RESULTS=<dir>.
inline std::string results_dir() {
  const char* env = std::getenv("TEEPERF_RESULTS");
  std::string dir = env ? env : "bench_results";
  make_dirs(dir);
  return dir;
}

// Repeats per measurement; the paper uses 10 (Fex methodology), the default
// here is chosen for CI runtime. Override with TEEPERF_REPEATS=<n>.
inline usize repeats(usize fallback = 3) {
  const char* env = std::getenv("TEEPERF_REPEATS");
  if (!env) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<usize>(v) : fallback;
}

// Workload scale factor. Override with TEEPERF_SCALE=<n>.
inline usize scale(usize fallback = 1) {
  const char* env = std::getenv("TEEPERF_SCALE");
  if (!env) return fallback;
  long v = std::atol(env);
  return v > 0 ? static_cast<usize>(v) : fallback;
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x > 0 ? x : 1e-12);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

inline double min_of(const std::vector<double>& xs) {
  double m = xs.empty() ? 0.0 : xs[0];
  for (double x : xs) m = std::min(m, x);
  return m;
}

inline void print_rule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace teeperf::benchharness
