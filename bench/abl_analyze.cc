// Ablation A3 — streaming vs in-memory spill analysis (DESIGN.md §12).
//
// The streaming analyzer exists for one reason: a spill session's chunk
// stream can be arbitrarily larger than any buffer the analyzing host wants
// to dedicate, so analysis memory must be bounded by the *distinct*
// methods/edges/paths, not by the entry count. This sweep measures both
// pipelines over synthetic spill sessions of growing size and emits
// machine-readable JSON: entries/second and peak RSS for each.
//
// Every measurement forks: the child runs exactly one analysis and its
// ru_maxrss (via wait4) is that pipeline's true peak over that session —
// uncontaminated by the other pipeline, the session generator, or previous
// reps.
//
// `--sweep --out BENCH_analyze.json` writes the result; `--check
// <baseline.json>` gates the *ratios* (in-memory/streaming peak RSS, and
// streaming/in-memory throughput) against the checked-in baseline with the
// same 25% band the log-write gate uses — ratios, not absolute numbers, so
// the gate holds across machine speeds. Acceptance floor independent of
// baseline drift: at the largest size the in-memory pipeline must peak at
// >= 2x the streaming pipeline's RSS.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/mprof.h"
#include "analyzer/profile.h"
#include "analyzer/stream.h"
#include "common/fileutil.h"
#include "core/log_format.h"
#include "drain/chunk_format.h"

namespace {

using namespace teeperf;

// Synthetic spill session: 2 shards, one thread each, 3-deep nested calls
// over a 16-method rotation — counters and cursors continuous across
// chunks, exactly the shape the drainer persists. Distinct methods/edges/
// paths stay constant while the entry count grows, which is the property
// the streaming pipeline's memory bound rides on.
constexpr u32 kShards = 2;
constexpr u64 kChunkEntriesPerShard = 2048;

bool write_session(const std::string& prefix, u64 total_entries) {
  LogHeader session{};
  session.magic = kLogMagic;
  session.version = kLogVersionSharded;
  u64 per_shard = total_entries / kShards;
  u32 chunks = static_cast<u32>(
      (per_shard + kChunkEntriesPerShard - 1) / kChunkEntriesPerShard);
  u64 counter[kShards] = {1, 1};
  u64 phase[kShards] = {0, 0};
  u64 cycle[kShards] = {0, 0};
  for (u32 seq = 0; seq < chunks; ++seq) {
    std::vector<drain::ShardWindow> windows(kShards);
    for (u32 s = 0; s < kShards; ++s) {
      u64 start = static_cast<u64>(seq) * kChunkEntriesPerShard;
      u64 n = std::min(kChunkEntriesPerShard, per_shard - start);
      windows[s].start = start;
      windows[s].entries.reserve(n);
      for (u64 i = 0; i < n; ++i) {
        u64 level = phase[s] < 3 ? phase[s] : 5 - phase[s];
        LogEntry e{};
        e.kind_and_counter = LogEntry::pack(
            phase[s] < 3 ? EventKind::kCall : EventKind::kReturn, counter[s]++);
        e.addr = 0x100 * (level + 1) + cycle[s];
        e.tid = s;
        windows[s].entries.push_back(e);
        if (++phase[s] == 6) {
          phase[s] = 0;
          cycle[s] = (cycle[s] + 1) % 16;
        }
      }
    }
    if (!write_file(drain::chunk_path(prefix, seq),
                    drain::serialize_chunk(session, windows, seq))) {
      return false;
    }
  }
  return true;
}

// One forked measurement. The child runs the named pipeline once and pipes
// back its wall time and consumed-entry count; the parent reads the child's
// peak RSS from wait4. Returns false if the child failed or disagreed on
// the entry count.
struct Measurement {
  double entries_per_sec = 0.0;
  double peak_rss_mb = 0.0;
};

bool measure(const std::string& prefix, u64 total_entries, bool streaming,
             Measurement* out) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    auto t0 = std::chrono::steady_clock::now();
    u64 entries = 0;
    if (streaming) {
      auto m = analyzer::StreamAnalyzer::analyze_spill(prefix);
      if (m) entries = m->stats.entries;
    } else {
      auto p = analyzer::Profile::load_spill(prefix);
      if (p) {
        // The full reference pipeline the streaming pass replaces: load,
        // reconstruct, then canonicalize to the same mergeable aggregate.
        analyzer::MergeableProfile m = analyzer::MergeableProfile::from_profile(*p);
        entries = m.stats.entries;
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    char buf[64];
    int len = std::snprintf(buf, sizeof(buf), "%.1f %llu", ns,
                            static_cast<unsigned long long>(entries));
    ssize_t written = write(fds[1], buf, static_cast<usize>(len));
    close(fds[1]);
    _exit(written == len ? 0 : 1);
  }
  close(fds[1]);
  char buf[64] = {0};
  ssize_t n = read(fds[0], buf, sizeof(buf) - 1);
  close(fds[0]);
  rusage ru{};
  int status = 0;
  if (wait4(pid, &status, 0, &ru) != pid) return false;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || n <= 0) return false;
  double ns = 0.0;
  unsigned long long entries = 0;
  if (std::sscanf(buf, "%lf %llu", &ns, &entries) != 2) return false;
  if (entries != total_entries || ns <= 0.0) return false;
  out->entries_per_sec = static_cast<double>(total_entries) / (ns / 1e9);
  out->peak_rss_mb =
      static_cast<double>(ru.ru_maxrss) / 1024.0;  // ru_maxrss is KB on Linux
  return true;
}

struct SweepRow {
  u64 entries;
  double stream_eps = 0.0;
  double inmem_eps = 0.0;
  double stream_peak_mb = 1e30;
  double inmem_peak_mb = 1e30;
  // In-memory peak over streaming peak: how many times smaller the
  // streaming pipeline runs. The regression being gated is this collapsing
  // toward 1 (streaming starting to materialize the session).
  double rss_ratio() const {
    return stream_peak_mb > 0 ? inmem_peak_mb / stream_peak_mb : 0.0;
  }
  // Streaming throughput relative to in-memory: bounded memory must not be
  // bought with a pathological slowdown.
  double eps_ratio() const {
    return inmem_eps > 0 ? stream_eps / inmem_eps : 0.0;
  }
};

std::vector<SweepRow> run_sweep(int reps) {
  std::string dir = make_temp_dir("teeperf_bench_analyze_");
  std::vector<SweepRow> rows;
  for (u64 entries : {u64{1} << 16, u64{1} << 18, u64{1} << 20}) {
    SweepRow row{entries};
    std::string prefix = dir + "/session";
    if (!write_session(prefix, entries)) break;
    for (int r = 0; r < reps; ++r) {
      Measurement sm, im;
      // Best-of-reps, per direction of the noise: interference only lowers
      // throughput (keep the max) and only raises RSS (keep the min).
      if (measure(prefix, entries, /*streaming=*/true, &sm)) {
        if (sm.entries_per_sec > row.stream_eps) row.stream_eps = sm.entries_per_sec;
        if (sm.peak_rss_mb < row.stream_peak_mb) row.stream_peak_mb = sm.peak_rss_mb;
      }
      if (measure(prefix, entries, /*streaming=*/false, &im)) {
        if (im.entries_per_sec > row.inmem_eps) row.inmem_eps = im.entries_per_sec;
        if (im.peak_rss_mb < row.inmem_peak_mb) row.inmem_peak_mb = im.peak_rss_mb;
      }
    }
    for (u32 seq = 0;; ++seq) {
      std::string p = drain::chunk_path(prefix, seq);
      if (!file_exists(p)) break;
      std::remove(p.c_str());
    }
    std::fprintf(stderr,
                 "sweep entries=%llu stream=%.0f/s (%.1f MB peak) "
                 "inmem=%.0f/s (%.1f MB peak) rss_ratio=%.2fx eps_ratio=%.2fx\n",
                 static_cast<unsigned long long>(row.entries), row.stream_eps,
                 row.stream_peak_mb, row.inmem_eps, row.inmem_peak_mb,
                 row.rss_ratio(), row.eps_ratio());
    rows.push_back(row);
  }
  remove_tree(dir);
  return rows;
}

std::string render_json(const std::vector<SweepRow>& rows) {
  std::ostringstream out;
  out << "{\n  \"benchmark\": \"abl_analyze.sweep\",\n"
      << "  \"unit\": \"entries_per_sec\",\n  \"configs\": [\n";
  for (usize i = 0; i < rows.size(); ++i) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "    {\"entries\": %llu, \"stream_eps\": %.0f, "
                  "\"inmem_eps\": %.0f, \"stream_peak_mb\": %.1f, "
                  "\"inmem_peak_mb\": %.1f, \"rss_ratio\": %.3f, "
                  "\"eps_ratio\": %.3f}%s\n",
                  static_cast<unsigned long long>(rows[i].entries),
                  rows[i].stream_eps, rows[i].inmem_eps, rows[i].stream_peak_mb,
                  rows[i].inmem_peak_mb, rows[i].rss_ratio(),
                  rows[i].eps_ratio(), i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
  return out.str();
}

// Per-size {entries, <key>} pairs from the machine-written baseline JSON —
// the same line-based extraction the log-write gate uses.
std::map<u64, double> parse_field(const std::string& json,
                                  const std::string& key) {
  std::map<u64, double> out;
  const std::string pattern = "\"" + key + "\":";
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    unsigned long long entries = 0;
    double value = 0.0;
    const char* e = std::strstr(line.c_str(), "\"entries\":");
    const char* s = std::strstr(line.c_str(), pattern.c_str());
    if (e && s && std::sscanf(e, "\"entries\": %llu", &entries) == 1 &&
        std::sscanf(s + pattern.size(), "%lf", &value) == 1) {
      out[entries] = value;
    }
  }
  return out;
}

int sweep_main(const std::string& out_path, const std::string& check_path,
               int reps) {
  std::vector<SweepRow> rows = run_sweep(reps);
  if (rows.empty()) {
    std::fprintf(stderr, "FAIL: no sweep rows measured\n");
    return 1;
  }
  std::string json = render_json(rows);
  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::binary);
    f << json;
    if (!f) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }
  if (check_path.empty()) return 0;

  std::ifstream f(check_path, std::ios::binary);
  std::stringstream baseline_buf;
  baseline_buf << f.rdbuf();
  std::map<u64, double> rss_baseline = parse_field(baseline_buf.str(), "rss_ratio");
  std::map<u64, double> eps_baseline = parse_field(baseline_buf.str(), "eps_ratio");
  if (rss_baseline.empty()) {
    std::fprintf(stderr, "FAIL: no configs parsed from %s\n", check_path.c_str());
    return 1;
  }
  int failures = 0;
  for (const SweepRow& row : rows) {
    // The regression gates: neither ratio may fall more than 25% below its
    // checked-in baseline.
    auto rit = rss_baseline.find(row.entries);
    if (rit != rss_baseline.end()) {
      double floor = rit->second * 0.75;
      bool ok = row.rss_ratio() >= floor;
      std::fprintf(stderr,
                   "check entries=%llu rss_ratio=%.2fx baseline=%.2fx "
                   "floor=%.2fx %s\n",
                   static_cast<unsigned long long>(row.entries),
                   row.rss_ratio(), rit->second, floor,
                   ok ? "OK" : "REGRESSION");
      if (!ok) ++failures;
    }
    auto eit = eps_baseline.find(row.entries);
    if (eit != eps_baseline.end()) {
      double floor = eit->second * 0.75;
      bool ok = row.eps_ratio() >= floor;
      std::fprintf(stderr,
                   "check entries=%llu eps_ratio=%.2fx baseline=%.2fx "
                   "floor=%.2fx %s\n",
                   static_cast<unsigned long long>(row.entries),
                   row.eps_ratio(), eit->second, floor,
                   ok ? "OK" : "REGRESSION");
      if (!ok) ++failures;
    }
  }
  // Acceptance floor independent of baseline drift: at the largest session
  // the in-memory pipeline must peak at >= 2x the streaming pipeline's RSS —
  // the bounded-memory property the subsystem exists for.
  const SweepRow& largest = rows.back();
  if (largest.rss_ratio() < 2.0) {
    std::fprintf(stderr,
                 "check entries=%llu rss_ratio=%.2fx < 2.0x acceptance floor\n",
                 static_cast<unsigned long long>(largest.entries),
                 largest.rss_ratio());
    ++failures;
  }
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path, check_path;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sweep") {
      // default mode; flag kept for symmetry with abl_log_write
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: abl_analyze [--sweep] [--out file.json] "
                   "[--check baseline.json] [--reps N]\n");
      return 2;
    }
  }
  return sweep_main(out_path, check_path, reps);
}
