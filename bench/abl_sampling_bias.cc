// Ablation A3 — tracing vs sampling (the abstract's claim).
//
// "TEE-Perf does not suffer from sampling frequency bias, which can occur
// with threads scheduled to align to the sampling frequency."
//
// Construction (the literal pathology): the workload aligns itself to the
// profiling timer. phase_a spins until the sampler fires; phase_b then runs
// entirely in the shadow *between* samples and is over long before the next
// tick. The sampler therefore almost never observes phase_b no matter how
// long the run — while TEE-Perf, tracing every call, measures it exactly.
// Ground truth comes from wall-clock measurement around each phase.
#include <atomic>
#include <cstdio>

#include "analyzer/profile.h"
#include "bench/bench_util.h"
#include "common/spin.h"
#include "core/profiler.h"
#include "perfsim/sampler.h"

using namespace teeperf;
using namespace teeperf::benchharness;

namespace {

constexpr u64 kSampleHz = 250;           // one kernel tick on HZ=250 systems
constexpr u64 kPhaseBNs = 1'200'000;     // ~30% of the 4 ms period
constexpr int kIterations = 250;

u64 g_phase_a_id, g_phase_b_id;

struct Truth {
  u64 a_ns = 0;
  u64 b_ns = 0;
  double b_share() const {
    return a_ns + b_ns ? static_cast<double>(b_ns) /
                             static_cast<double>(a_ns + b_ns)
                       : 0.0;
  }
};

// Runs the aligned workload. `tick` is a monotonically increasing count the
// sampler bumps (or a null source when tracing without a sampler — then
// phase_a just burns one period).
Truth aligned_workload(const perfsim::SamplingProfiler* sampler) {
  Truth truth;
  usize last = sampler ? sampler->sample_count() : 0;
  for (int i = 0; i < kIterations; ++i) {
    u64 t0 = monotonic_ns();
    {
      Scope a(g_phase_a_id);
      if (sampler) {
        // Occupy the CPU until the next sample lands — phase_a soaks up
        // every observation.
        while (sampler->sample_count() == last) spin_for_ns(20'000);
        last = sampler->sample_count();
      } else {
        spin_for_ns(1'000'000'000 / kSampleHz - kPhaseBNs);
      }
    }
    u64 t1 = monotonic_ns();
    {
      Scope b(g_phase_b_id);
      spin_for_ns(kPhaseBNs);
    }
    u64 t2 = monotonic_ns();
    truth.a_ns += t1 - t0;
    truth.b_ns += t2 - t1;
  }
  return truth;
}

}  // namespace

int main() {
  g_phase_a_id = SymbolRegistry::instance().intern("bias::phase_a");
  g_phase_b_id = SymbolRegistry::instance().intern("bias::phase_b");

  std::printf("Ablation A3: sampling frequency bias — workload aligned to the "
              "%llu Hz profiling timer\n",
              static_cast<unsigned long long>(kSampleHz));
  print_rule('=');

  // --- sampled (perf baseline): the pathological case -----------------------
  perfsim::SamplerOptions sopts;
  sopts.frequency_hz = kSampleHz;
  perfsim::SamplingProfiler sampler(sopts);
  if (!runtime::attach(nullptr, CounterMode::kTsc, nullptr)) return 1;
  sampler.start();
  Truth sampled_truth = aligned_workload(&sampler);
  sampler.stop();
  runtime::detach();

  usize a_samples = 0, b_samples = 0;
  for (auto& [id, n] : sampler.inclusive_counts()) {
    if (id == g_phase_a_id) a_samples = n;
    if (id == g_phase_b_id) b_samples = n;
  }
  double sampled_b = a_samples + b_samples
                         ? static_cast<double>(b_samples) /
                               static_cast<double>(a_samples + b_samples)
                         : 0.0;

  // --- traced (TEE-Perf) on the same aligned workload ------------------------
  // The sampler keeps running so the workload still aligns to it; TEE-Perf
  // records concurrently, as a developer would profile the same run.
  RecorderOptions opts;
  opts.max_entries = 1 << 20;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return 1;
  perfsim::SamplingProfiler pacer(sopts);
  pacer.start();
  Truth traced_truth = aligned_workload(&pacer);
  pacer.stop();
  recorder->detach();

  auto profile = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  u64 a_ticks = 0, b_ticks = 0;
  for (const auto& inv : profile.invocations()) {
    if (inv.method == g_phase_a_id) a_ticks += inv.exclusive();
    if (inv.method == g_phase_b_id) b_ticks += inv.exclusive();
  }
  double traced_b =
      a_ticks + b_ticks
          ? static_cast<double>(b_ticks) / static_cast<double>(a_ticks + b_ticks)
          : 0.0;

  std::printf("%-30s %14s %14s\n", "configuration", "phase_b share", "error");
  print_rule();
  std::printf("%-30s %13.1f%%\n", "ground truth (sampled run)",
              sampled_truth.b_share() * 100);
  std::printf("%-30s %13.1f%% %+13.1f pp   (%zu samples)\n",
              "perf-sim (sampled)", sampled_b * 100,
              (sampled_b - sampled_truth.b_share()) * 100, a_samples + b_samples);
  std::printf("%-30s %13.1f%%\n", "ground truth (traced run)",
              traced_truth.b_share() * 100);
  std::printf("%-30s %13.1f%% %+13.1f pp\n", "TEE-Perf (traced)", traced_b * 100,
              (traced_b - traced_truth.b_share()) * 100);
  print_rule('=');
  std::printf("Expected shape: the sampler attributes phase_b a small fraction "
              "of its true share (it fires inside phase_a by construction); "
              "the trace is exact to within ~1 pp.\n");
  return 0;
}
