// Figure 6 + the §IV-C numbers: the SPDK-in-SGX case study.
//
// Three configurations of the SPDK perf tool (random 80/20 read/write,
// 4 KiB blocks):
//   native              — no enclave                 (paper: 223,808 IOPS, 874 MiB/s)
//   naive in enclave    — getpid + rdtsc trapped     (paper:  15,821 IOPS, 61.8 MiB/s)
//   optimized in enclave— pid cache + corrected tick (paper: 232,736 IOPS, 909 MiB/s)
// Improvement factor optimized/naive (paper: 14.7×). Flame graphs of the
// naive and optimized enclave runs (Figure 6 top/bottom) land in
// $TEEPERF_RESULTS; the naive one must show getpid ≈ 72% and rdtsc ≈ 20%.
//
// Throughput rows are measured *unrecorded* (the paper's table is from
// plain runs); the flame-graph runs are separate recorded runs.
#include <cstdio>

#include "analyzer/profile.h"
#include "bench/bench_util.h"
#include "common/stringutil.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"
#include "spdk/perf_tool.h"
#include "tee/enclave.h"

using namespace teeperf;
using namespace teeperf::benchharness;

namespace {

spdk::NvmeDeviceConfig device_config() {
  spdk::NvmeDeviceConfig cfg;  // defaults calibrated to a DC P3700-class path
  cfg.completion_latency_ns = 80'000;
  return cfg;
}

spdk::PerfConfig perf_config() {
  spdk::PerfConfig cfg;
  cfg.queue_depth = 32;
  cfg.block_size = 4096;
  cfg.read_fraction = 0.8;
  cfg.duration_ns = 900'000'000 * static_cast<u64>(scale(1));
  return cfg;
}

// The enclave cost model for this case study. The paper's naive port spends
// 72% in getpid: SCONE-era syscall round trips out of an enclave cost tens
// of microseconds once queueing and TLB effects are included.
tee::CostModel casestudy_costs() {
  tee::CostModel cm = tee::CostModel::sgx_like();
  cm.syscall_ocall_ns = 45'000;
  cm.rdtsc_trap_ns = 5'500;
  return cm;
}

spdk::PerfResult run_native() {
  spdk::NvmeDevice dev(device_config());
  return spdk::run_perf_tool(dev, perf_config(), spdk::SpdkMode{});
}

spdk::PerfResult run_enclave(const spdk::SpdkMode& mode) {
  tee::Enclave enclave(casestudy_costs());
  spdk::NvmeDevice dev(device_config());
  return enclave.ecall([&] { return spdk::run_perf_tool(dev, perf_config(), mode); });
}

// Recorded variant for the flame graphs.
void record_flamegraph(const spdk::SpdkMode& mode, const std::string& path,
                       const char* title, double* getpid_frac, double* rdtsc_frac) {
  RecorderOptions opts;
  opts.max_entries = 1ull << 22;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return;
  tee::Enclave enclave(casestudy_costs());
  spdk::NvmeDevice dev(device_config());
  spdk::PerfConfig cfg = perf_config();
  cfg.duration_ns /= 3;  // recorded run can be shorter
  enclave.ecall([&] { spdk::run_perf_tool(dev, cfg, mode); });
  recorder->detach();

  auto profile = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  auto folded = profile.folded_stacks();
  auto tree = flamegraph::build_frame_tree(folded);
  *getpid_frac = flamegraph::frame_fraction(tree, "getpid");
  *rdtsc_frac = flamegraph::frame_fraction(tree, "rdtsc");

  flamegraph::SvgOptions svg;
  svg.title = title;
  write_file(path + ".svg", flamegraph::render_svg(folded, svg));
  write_file(path + ".folded", flamegraph::to_folded_text(folded));
}

void print_row(const char* label, const spdk::PerfResult& r, const char* paper_iops,
               const char* paper_tp) {
  std::printf("%-22s %12s %10.1f   %14s %10s\n", label,
              with_commas(static_cast<u64>(r.iops)).c_str(), r.throughput_mib_s,
              paper_iops, paper_tp);
}

}  // namespace

int main() {
  std::string out = results_dir();

  std::printf("SPDK case study (§IV-C): random 80%% read / 20%% write, 4 KiB "
              "blocks, QD %zu\n",
              perf_config().queue_depth);
  print_rule('=');
  std::printf("%-22s %12s %10s   %14s %10s\n", "configuration", "IOPS", "MiB/s",
              "paper IOPS", "paper MiB/s");
  print_rule();

  auto native = run_native();
  print_row("native", native, "223,808", "874");

  auto naive = run_enclave(spdk::SpdkMode{});
  print_row("naive in enclave", naive, "15,821", "61.8");

  spdk::SpdkMode optimized;
  optimized.cache_pid = true;
  optimized.cache_ticks = true;
  optimized.ticks_correction_interval = 128;
  auto opt = run_enclave(optimized);
  print_row("optimized in enclave", opt, "232,736", "909");

  print_rule();
  std::printf("improvement optimized/naive: %.1fx   (paper: 14.7x)\n",
              naive.iops > 0 ? opt.iops / naive.iops : 0.0);
  std::printf("optimized vs native:         %.2fx  (paper: 1.04x — optimized "
              "beats native because caching also removes native's "
              "getpid/rdtsc)\n",
              native.iops > 0 ? opt.iops / native.iops : 0.0);
  print_rule('=');

  double naive_getpid = 0, naive_rdtsc = 0, opt_getpid = 0, opt_rdtsc = 0;
  record_flamegraph(spdk::SpdkMode{}, out + "/fig6_naive",
                    "Figure 6 (top): naive SPDK in enclave", &naive_getpid,
                    &naive_rdtsc);
  record_flamegraph(optimized, out + "/fig6_optimized",
                    "Figure 6 (bottom): optimized SPDK in enclave", &opt_getpid,
                    &opt_rdtsc);

  std::printf("\nFigure 6 frame shares (recorded runs):\n");
  std::printf("  naive:     getpid %5.1f%% (paper ~72%%)   rdtsc %5.1f%% "
              "(paper ~20%%)\n",
              naive_getpid * 100, naive_rdtsc * 100);
  std::printf("  optimized: getpid %5.1f%% (paper ~0%%)    rdtsc %5.1f%% "
              "(paper ~0%%)\n",
              opt_getpid * 100, opt_rdtsc * 100);
  std::printf("wrote %s/fig6_naive.svg and %s/fig6_optimized.svg\n", out.c_str(),
              out.c_str());
  return 0;
}
