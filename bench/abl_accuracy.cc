// Ablation A7 — attribution accuracy (§IV claim: "accurate profile
// measurements", "compared with Linux perf").
//
// A workload with *known* ground truth: four functions spin for fixed,
// very different durations (50/25/15/10% of each iteration), in a
// non-adversarial pattern (no alignment games — see abl_sampling_bias for
// those). Both profilers should be accurate here; the comparison reports
// each one's per-function attribution error, plus what happens to the
// sampler when functions become too short for its period to resolve.
#include <cmath>
#include <cstdio>

#include "analyzer/profile.h"
#include "bench/bench_util.h"
#include "common/spin.h"
#include "core/profiler.h"
#include "perfsim/sampler.h"

using namespace teeperf;
using namespace teeperf::benchharness;

namespace {

struct Phase {
  const char* name;
  double share;  // of one iteration
  u64 id = 0;
};

Phase g_phases[4] = {
    {"work::parse", 0.50},
    {"work::transform", 0.25},
    {"work::encode", 0.15},
    {"work::flush", 0.10},
};

void workload(u64 iteration_ns, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    for (const Phase& p : g_phases) {
      Scope s(p.id);
      spin_for_ns(static_cast<u64>(static_cast<double>(iteration_ns) * p.share));
    }
  }
}

double max_error_traced(u64 iteration_ns, int iterations) {
  RecorderOptions opts;
  opts.max_entries = 1 << 20;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return 1.0;
  workload(iteration_ns, iterations);
  recorder->detach();

  auto profile = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  u64 total = 0;
  u64 per_phase[4] = {};
  for (const auto& inv : profile.invocations()) {
    for (int p = 0; p < 4; ++p) {
      if (inv.method == g_phases[p].id) {
        per_phase[p] += inv.exclusive();
        total += inv.exclusive();
      }
    }
  }
  double worst = 0;
  for (int p = 0; p < 4; ++p) {
    double share = total ? static_cast<double>(per_phase[p]) /
                               static_cast<double>(total)
                         : 0;
    worst = std::max(worst, std::abs(share - g_phases[p].share));
  }
  return worst;
}

double max_error_sampled(u64 iteration_ns, int iterations, usize* samples_out) {
  perfsim::SamplerOptions sopts;
  sopts.frequency_hz = 997;
  perfsim::SamplingProfiler sampler(sopts);
  if (!runtime::attach(nullptr, CounterMode::kTsc, nullptr)) return 1.0;
  sampler.start();
  workload(iteration_ns, iterations);
  sampler.stop();
  runtime::detach();

  usize per_phase[4] = {};
  usize total = 0;
  for (auto& [id, n] : sampler.leaf_counts()) {
    for (int p = 0; p < 4; ++p) {
      if (id == g_phases[p].id) {
        per_phase[p] += n;
        total += n;
      }
    }
  }
  *samples_out = total;
  double worst = 0;
  for (int p = 0; p < 4; ++p) {
    double share = total ? static_cast<double>(per_phase[p]) /
                               static_cast<double>(total)
                         : 0;
    worst = std::max(worst, std::abs(share - g_phases[p].share));
  }
  return worst;
}

}  // namespace

int main() {
  for (int p = 0; p < 4; ++p) {
    g_phases[p].id = SymbolRegistry::instance().intern(g_phases[p].name);
  }

  std::printf("Ablation A7: attribution accuracy vs ground truth "
              "(50/25/15/10%% split, ~1.2 s per configuration)\n");
  print_rule('=');
  std::printf("%-26s %18s %18s %10s\n", "function duration", "traced max err",
              "sampled max err", "samples");
  print_rule();

  struct Row {
    const char* label;
    u64 iteration_ns;
    int iterations;
  };
  // Same total runtime, shrinking function granularity.
  const Row rows[] = {
      {"coarse (10 ms/iter)", 10'000'000, 120},
      {"medium (1 ms/iter)", 1'000'000, 1200},
      {"fine (100 us/iter)", 100'000, 12000},
  };
  for (const Row& row : rows) {
    double traced = max_error_traced(row.iteration_ns, row.iterations);
    usize samples = 0;
    double sampled = max_error_sampled(row.iteration_ns, row.iterations, &samples);
    std::printf("%-26s %16.1f pp %16.1f pp %10zu\n", row.label, traced * 100,
                sampled * 100, samples);
  }
  print_rule('=');
  std::printf("Expected shape: tracing stays within ~1 pp at every "
              "granularity; sampling is fine when functions span many sample "
              "periods and degrades as they shrink below the sampling period.\n");
  return 0;
}
