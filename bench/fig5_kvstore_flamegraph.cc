// Figure 5: flame graph of the LSM store's db_bench (readrandomwriterandom,
// 80% reads) recorded by TEE-Perf inside the simulated enclave.
//
// The paper's finding: the benchmark harness itself dominates — most time
// goes to rocksdb::Stats::Now() (a clock read per op, a trapped syscall
// inside the TEE) and rocksdb::RandomGenerator::RandomGenerator() (building
// the compressible value buffer). This harness regenerates the flame graph
// (SVG + folded stacks under $TEEPERF_RESULTS) and prints the top-method
// table with those two frames' shares.
#include <cstdio>

#include "analyzer/profile.h"
#include "analyzer/query.h"
#include "analyzer/report.h"
#include "bench/bench_util.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"
#include "kvstore/db.h"
#include "kvstore/db_bench.h"
#include "tee/enclave.h"

using namespace teeperf;
using namespace teeperf::benchharness;

int main() {
  std::string out = results_dir();
  std::string db_dir = make_temp_dir("teeperf_fig5_db_");

  kvs::Options options;
  std::unique_ptr<kvs::DB> db;
  if (!kvs::DB::open(options, db_dir, &db).is_ok()) {
    std::fprintf(stderr, "db open failed\n");
    return 1;
  }

  kvs::bench::BenchConfig cfg;
  cfg.num_ops = 6'000 * scale(1);
  cfg.key_space = cfg.num_ops;
  cfg.value_size = 100;
  cfg.read_fraction = 0.8;
  cfg.generator_buffer = 4u << 20;  // per-run value buffer (ctor cost)

  kvs::bench::run_fill_random(*db, cfg);  // unprofiled preload

  RecorderOptions opts;
  opts.max_entries = 1ull << 22;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return 1;

  tee::Enclave enclave(tee::CostModel::sgx_like());
  auto result = enclave.ecall(
      [&] { return kvs::bench::run_read_random_write_random(*db, cfg); });
  recorder->detach();

  auto profile = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));

  std::printf("Figure 5: db_bench readrandomwriterandom (80%% reads) in "
              "simulated SGX, recorded by TEE-Perf\n");
  print_rule('=');
  std::printf("ops=%llu  reads=%llu  writes=%llu  %.0f ops/s\n",
              static_cast<unsigned long long>(result.ops),
              static_cast<unsigned long long>(result.reads),
              static_cast<unsigned long long>(result.writes), result.ops_per_sec);
  std::printf("%s\n\n", analyzer::recon_summary(profile).c_str());
  std::printf("%s\n", analyzer::method_report(profile, 12).c_str());

  auto folded = profile.folded_stacks();
  auto tree = flamegraph::build_frame_tree(folded);
  double now_frac = flamegraph::frame_fraction(tree, "kvs::Stats::Now");
  double gen_frac =
      flamegraph::frame_fraction(tree, "kvs::RandomGenerator::RandomGenerator");
  double get_frac = flamegraph::frame_fraction(tree, "kvs::DB::Get");

  print_rule();
  std::printf("frame shares of total runtime (paper: Stats::Now and "
              "RandomGenerator dominate):\n");
  std::printf("  kvs::Stats::Now                        %5.1f%%\n", now_frac * 100);
  std::printf("  kvs::RandomGenerator::RandomGenerator  %5.1f%%\n", gen_frac * 100);
  std::printf("  kvs::DB::Get (the actual storage work) %5.1f%%\n", get_frac * 100);
  print_rule('=');

  write_file(out + "/fig5_kvstore.folded", flamegraph::to_folded_text(folded));
  flamegraph::SvgOptions svg;
  svg.title = "Figure 5: db_bench readrandomwriterandom (80% reads) under TEE-Perf";
  write_file(out + "/fig5_kvstore.svg", flamegraph::render_svg(folded, svg));
  flamegraph::TimelineOptions tl;
  tl.title = "db_bench in enclave: timeline";
  write_file(out + "/fig5_kvstore_timeline.svg",
             flamegraph::render_timeline_svg(profile, tl));
  std::printf("wrote %s/fig5_kvstore.svg, .folded and _timeline.svg\n",
              out.c_str());

  remove_tree(db_dir);
  return 0;
}
