// Ablation A5 — architecture independence ("Generality", §I design goal).
//
// TEE-Perf's pitch is one profiler across TEEs: "many applications need to
// be profiled across different TEE platforms". This harness runs the same
// db_bench workload under three TEE cost profiles — SGX-like, ARM
// TrustZone-like and AMD SEV-like — with the *identical* profiler stack,
// and shows that the top bottleneck TEE-Perf reports is different on each,
// because each architecture hurts a different operation:
//   SGX       → trapped clock syscalls dominate (Stats::Now);
//   TrustZone → cheaper world switches: syscalls still visible but smaller;
//   SEV       → no transitions at all: memory encryption and the actual
//               storage work lead.
#include <cstdio>

#include "analyzer/profile.h"
#include "analyzer/report.h"
#include "bench/bench_util.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"
#include "kvstore/db.h"
#include "kvstore/db_bench.h"
#include "tee/enclave.h"

using namespace teeperf;
using namespace teeperf::benchharness;

namespace {

struct TeeRow {
  const char* name;
  tee::CostModel costs;
};

void run_one(const TeeRow& row) {
  std::string db_dir = make_temp_dir("teeperf_multitee_");
  kvs::Options options;
  std::unique_ptr<kvs::DB> db;
  if (!kvs::DB::open(options, db_dir + "/db", &db).is_ok()) return;

  kvs::bench::BenchConfig cfg;
  cfg.num_ops = 3'000 * scale(1);
  cfg.key_space = cfg.num_ops;
  kvs::bench::run_fill_random(*db, cfg);

  RecorderOptions opts;
  opts.max_entries = 1ull << 21;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) return;

  tee::Enclave enclave(row.costs);
  auto result = enclave.ecall(
      [&] { return kvs::bench::run_read_random_write_random(*db, cfg); });
  recorder->detach();

  auto profile = analyzer::Profile::from_log(
      recorder->log(), SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  auto tree = flamegraph::build_frame_tree(profile.folded_stacks());

  double now = flamegraph::frame_fraction(tree, "kvs::Stats::Now");
  double get = flamegraph::frame_fraction(tree, "kvs::DB::Get");
  double gen =
      flamegraph::frame_fraction(tree, "kvs::RandomGenerator::RandomGenerator");

  auto stats = profile.method_stats();
  std::string top = stats.empty() ? "?" : profile.name(stats[0].method);

  std::printf("%-12s %10.0f ops/s   Stats::Now %5.1f%%  DB::Get %5.1f%%  "
              "RandomGen %5.1f%%   top: %s\n",
              row.name, result.ops_per_sec, now * 100, get * 100, gen * 100,
              top.c_str());
  remove_tree(db_dir);
}

}  // namespace

int main() {
  std::printf("Ablation A5: one profiler, three TEE architectures "
              "(db_bench readrandomwriterandom, 80%% reads)\n");
  print_rule('=');
  const TeeRow rows[] = {
      {"sgx", tee::CostModel::sgx_like()},
      {"trustzone", tee::CostModel::trustzone_like()},
      {"sev", tee::CostModel::sev_like()},
      {"native", tee::CostModel::zero()},
  };
  for (const TeeRow& row : rows) run_one(row);
  print_rule('=');
  std::printf("Expected shape: identical tooling, different verdicts — the "
              "trapped-clock share shrinks from SGX to TrustZone to SEV, and "
              "throughput rises accordingly.\n");
  return 0;
}
