// Figure 4: profiling overhead of TEE-Perf relative to perf, Phoenix suite
// running in the (simulated) SGX TEE.
//
// For each kernel, two configurations run inside the enclave simulator:
//   perf      — the sampling baseline armed at 997 Hz (per-sample signal
//               delivery is its real cost), no trace instrumentation live;
//   TEE-Perf  — the recorder attached with calls+returns traced.
// The reported number is runtime(TEE-Perf) / runtime(perf), min-of-N per
// configuration (N = TEEPERF_REPEATS, default 3; paper: geomean of 10 via
// Fex). Paper's anchors: linear_regression ≈ 0.92× (TEE-Perf *faster*,
// because it injects nothing into a call-free kernel while perf keeps
// interrupting), string_match ≈ 5.7× (a function call per word), geometric
// mean ≈ 1.9×.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/spin.h"
#include "common/stringutil.h"
#include "core/profiler.h"
#include "perfsim/sampler.h"
#include "phoenix/phoenix.h"
#include "tee/enclave.h"

using namespace teeperf;
using namespace teeperf::benchharness;

namespace {

constexpr usize kThreads = 4;

double run_once_perf(phoenix::PhoenixBenchmark& bench, tee::Enclave& enclave) {
  perfsim::SamplerOptions opts;
  opts.frequency_hz = 997;
  perfsim::SamplingProfiler sampler(opts);
  sampler.start();
  u64 t0 = monotonic_ns();
  enclave.ecall([&] { bench.run(kThreads); });
  u64 t1 = monotonic_ns();
  sampler.stop();
  return static_cast<double>(t1 - t0) / 1e6;
}

double run_once_teeperf(phoenix::PhoenixBenchmark& bench, tee::Enclave& enclave) {
  RecorderOptions opts;
  opts.max_entries = 1ull << 23;  // 8M entries (256 MiB host memory)
  opts.counter_mode = CounterMode::kTsc;
  auto recorder = Recorder::create(opts);
  if (!recorder || !recorder->attach()) {
    std::fprintf(stderr, "recorder setup failed\n");
    std::exit(1);
  }
  u64 t0 = monotonic_ns();
  enclave.ecall([&] { bench.run(kThreads); });
  u64 t1 = monotonic_ns();
  recorder->detach();
  return static_cast<double>(t1 - t0) / 1e6;
}

}  // namespace

int main() {
  usize n = repeats(3);
  usize s = scale(1);

  std::printf("Figure 4: TEE-Perf overhead relative to perf "
              "(Phoenix in simulated SGX, %zu threads, min of %zu runs)\n",
              kThreads, n);
  print_rule('=');
  std::printf("%-20s %12s %12s %10s %10s\n", "benchmark", "perf(ms)",
              "teeperf(ms)", "relative", "paper");
  print_rule();

  // TEE costs common to both configurations. Transition costs barely matter
  // here (one ecall per run); the comparison isolates profiling overhead.
  tee::Enclave enclave(tee::CostModel::sgx_like());

  struct PaperRef {
    const char* name;
    const char* paper;
  };
  const PaperRef kFigure4[] = {
      {"matrix_multiply", "~1-2x"},   {"word_count", "~2-3x"},
      {"string_match", "5.7x"},       {"linear_regression", "0.92x"},
      {"histogram", "~1-2x"},
  };

  std::vector<double> ratios;
  for (const auto& row : kFigure4) {
    auto bench = phoenix::make_benchmark(row.name);
    phoenix::SuiteParams params;
    params.scale = s;
    params.threads = kThreads;
    bench->prepare(params);
    bench->run(kThreads);  // warm-up (page in inputs, intern symbols)

    std::vector<double> perf_ms, tee_ms;
    for (usize i = 0; i < n; ++i) perf_ms.push_back(run_once_perf(*bench, enclave));
    for (usize i = 0; i < n; ++i) tee_ms.push_back(run_once_teeperf(*bench, enclave));

    double p = min_of(perf_ms), t = min_of(tee_ms);
    double rel = p > 0 ? t / p : 0;
    ratios.push_back(rel);
    std::printf("%-20s %12.1f %12.1f %9.2fx %10s\n", row.name, p, t, rel,
                row.paper);
  }
  print_rule();
  std::printf("%-20s %12s %12s %9.2fx %10s\n", "geomean", "", "", geomean(ratios),
              "1.9x");
  print_rule('=');
  std::printf("\nShape checks: string_match worst, linear_regression ≈1x or "
              "below, geomean in the low single digits.\n");
  return 0;
}
