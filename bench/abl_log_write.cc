// Ablation A1 — the lock-free log (§II-B/§II-C design choice).
//
// The paper argues the append-only log with an atomic fetch-and-add tail
// keeps write overhead minimal. This microbenchmark compares the shipped
// lock-free append against a mutex-guarded variant (what the design
// rejected), single-threaded and contended, plus the full instrumentation
// hook cost (scope enter+exit).
//
// Besides the google-benchmark registrations, `--sweep` runs the format-v2
// regression harness (TESTING.md "Bench regression"): a 1/2/4/8-writer
// contention sweep of sharded+batched v2 against single-tail v1, emitted as
// machine-readable JSON. `--check <baseline.json>` compares the measured
// v1/v2 speedup ratios against the checked-in baseline and exits non-zero
// on a >25% regression — ratios, not absolute ns, so the gate is stable
// across machine speeds.
//
// The sweep also measures each config on a pre-wrapped ring (shard tails
// advanced one full lap before the run), gating the wrap penalty: a flush
// landing past the wrap must still publish as at most two memcpy spans,
// not degrade to the per-entry modulo loop. And a spill-drain smoke pushes
// four writers through a log a fraction of the session size with a live
// drainer, gating zero drops and nonzero spilled bytes.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fileutil.h"
#include "core/profiler.h"
#include "drain/drainer.h"

namespace {

using namespace teeperf;

// The rejected alternative: same layout, tail guarded by a mutex.
class MutexLog {
 public:
  explicit MutexLog(u64 capacity) : buf_(ProfileLog::bytes_for(capacity)) {
    log_.init(buf_.data(), buf_.size(), 1, log_flags::kActive);
  }

  bool append(EventKind kind, u64 addr, u64 tid, u64 counter) {
    std::lock_guard<std::mutex> lock(mu_);
    LogHeader* h = log_.header();
    u64 slot = h->tail.load(std::memory_order_relaxed);
    if (slot >= h->max_entries) return false;
    h->tail.store(slot + 1, std::memory_order_relaxed);
    LogEntry& e = log_.entries()[slot];
    e.kind_and_counter = LogEntry::pack(kind, counter);
    e.addr = addr;
    e.tid = tid;
    return true;
  }

  void reset() { log_.header()->tail.store(0, std::memory_order_relaxed); }

 private:
  std::vector<u8> buf_;
  ProfileLog log_;
  std::mutex mu_;
};

constexpr u64 kCapacity = 1u << 22;

void BM_LockFreeAppend(benchmark::State& state) {
  static std::vector<u8>* buf = new std::vector<u8>(ProfileLog::bytes_for(kCapacity));
  static ProfileLog* log = [] {
    auto* l = new ProfileLog();
    l->init(buf->data(), buf->size(), 1, log_flags::kActive);
    return l;
  }();
  if (state.thread_index() == 0) log->header()->tail.store(0, std::memory_order_relaxed);
  u64 i = 0;
  for (auto _ : state) {
    if (!log->append(EventKind::kCall, 0x1000 + i, 0, i)) {
      log->header()->tail.store(0, std::memory_order_relaxed);
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockFreeAppend);
BENCHMARK(BM_LockFreeAppend)->Threads(4)->UseRealTime();

void BM_MutexAppend(benchmark::State& state) {
  static MutexLog* log = new MutexLog(kCapacity);
  if (state.thread_index() == 0) log->reset();
  u64 i = 0;
  for (auto _ : state) {
    if (!log->append(EventKind::kCall, 0x1000 + i, 0, i)) log->reset();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexAppend);
BENCHMARK(BM_MutexAppend)->Threads(4)->UseRealTime();

// The full per-event cost an instrumented application pays: scope
// constructor + destructor with an attached, active session.
void BM_ScopeEnterExit(benchmark::State& state) {
  RecorderOptions opts;
  opts.max_entries = kCapacity;
  opts.counter_mode = CounterMode::kTsc;
  static auto* recorder = Recorder::create(opts).release();
  static bool attached = recorder->attach();
  (void)attached;
  static const u64 id = SymbolRegistry::instance().intern("bench::scope");
  for (auto _ : state) {
    if (recorder->log().size() + 2 >= kCapacity) {
      recorder->log().header()->tail.store(0, std::memory_order_relaxed);
    }
    Scope s(id);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopeEnterExit);

// The same scope when no session is attached: the cost left in a binary
// shipped with instrumentation compiled in but profiling off.
void BM_ScopeDetached(benchmark::State& state) {
  if (teeperf::runtime::attached()) teeperf::runtime::detach();
  static const u64 id = SymbolRegistry::instance().intern("bench::scope_off");
  for (auto _ : state) {
    Scope s(id);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopeDetached);

// ------------------------------------------------------------- sweep mode

// One timed contention run: `writers` threads each push `ops` events into a
// shared log. v1 uses the classic single-tail append; v2 routes through the
// per-thread LogBatch into an 8-shard log — the same path the runtime probes
// take. Ring mode so the measurement never stalls on a full log.
// `prewrap` starts every shard's tail one full lap in, so every flush of the
// run reserves past capacity and exercises the wrapped publication path —
// the regression being gated is that path falling off the two-span memcpy
// onto the per-entry modulo loop.
double run_config(int writers, u64 ops, bool sharded, bool prewrap = false) {
  constexpr u64 kEntries = 1u << 20;
  const u32 shards = sharded ? 8 : 0;
  std::vector<u8> buf(ProfileLog::bytes_for(kEntries, shards));
  ProfileLog log;
  if (!log.init(buf.data(), buf.size(), 1,
                log_flags::kActive | log_flags::kMultithread |
                    log_flags::kRingBuffer,
                shards)) {
    return -1.0;
  }
  if (prewrap) {
    for (u32 s = 0; s < log.shard_count(); ++s) {
      LogShard* sh = log.shard(s);
      sh->tail.store(sh->capacity, std::memory_order_relaxed);
    }
  }

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      const u64 tid = static_cast<u64>(w);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      if (sharded) {
        LogBatch batch;
        for (u64 i = 0; i < ops; ++i) {
          batch.record(log, EventKind::kCall, 0x1000 + tid, tid, i + 1);
        }
        batch.flush(log);
      } else {
        for (u64 i = 0; i < ops; ++i) {
          log.append(EventKind::kCall, 0x1000 + tid, tid, i + 1);
        }
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < writers) {
  }
  auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();
  double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return ns / (static_cast<double>(writers) * static_cast<double>(ops));
}

struct SweepRow {
  int writers;
  double v1_ns;
  double v2_ns;
  double v2_wrap_ns;  // v2 on a pre-wrapped ring: every flush publishes wrapped
  double speedup() const { return v2_ns > 0 ? v1_ns / v2_ns : 0.0; }
  double wrap_penalty() const { return v2_ns > 0 ? v2_wrap_ns / v2_ns : 0.0; }
};

std::vector<SweepRow> run_sweep(u64 ops, int reps) {
  std::vector<SweepRow> rows;
  for (int writers : {1, 2, 4, 8}) {
    SweepRow row{writers, 1e30, 1e30, 1e30};
    // Best-of-reps: contention sweeps on shared CI machines are noisy in one
    // direction only (interference slows runs down), so min is the estimator.
    for (int r = 0; r < reps; ++r) {
      double v1 = run_config(writers, ops, false);
      double v2 = run_config(writers, ops, true);
      double v2w = run_config(writers, ops, true, /*prewrap=*/true);
      if (v1 > 0 && v1 < row.v1_ns) row.v1_ns = v1;
      if (v2 > 0 && v2 < row.v2_ns) row.v2_ns = v2;
      if (v2w > 0 && v2w < row.v2_wrap_ns) row.v2_wrap_ns = v2w;
    }
    std::fprintf(stderr,
                 "sweep writers=%d v1=%.2fns v2=%.2fns v2_wrap=%.2fns "
                 "speedup=%.2fx wrap_penalty=%.2fx\n",
                 row.writers, row.v1_ns, row.v2_ns, row.v2_wrap_ns,
                 row.speedup(), row.wrap_penalty());
    rows.push_back(row);
  }
  return rows;
}

// Spill-drain smoke: `writers` threads push `ops` events each through a log
// an eighth of the session size while a live drainer spills consumed windows
// to chunk files. Healthy drain means the session completes with zero drops
// and a nonzero spill — writers waited on reclaim instead of discarding.
struct DrainSmoke {
  double ns_per_op = -1.0;
  u64 drained = 0;
  u64 spilled_bytes = 0;
  u64 chunks = 0;
  u64 dropped = 0;
};

DrainSmoke run_drain_smoke(int writers, u64 ops) {
  DrainSmoke out;
  const u64 total = static_cast<u64>(writers) * ops;
  const u32 shards = 4;
  const u64 entries = total / 8 < 1024 ? 1024 : total / 8;
  std::vector<u8> buf(ProfileLog::bytes_for(entries, shards));
  ProfileLog log;
  if (!log.init(buf.data(), buf.size(), 1,
                log_flags::kActive | log_flags::kMultithread |
                    log_flags::kSpillDrain,
                shards)) {
    return out;
  }
  // The gate asserts zero drops, so writers must outwait any drainer
  // scheduling hiccup rather than force-advance past it.
  u64 saved_spins = ProfileLog::spill_wait_spins();
  ProfileLog::set_spill_wait_spins(~u64{0});

  std::string dir = make_temp_dir("teeperf_bench_drain_");
  drain::DrainerOptions dopts;
  dopts.prefix = dir + "/bench";
  dopts.poll_interval_us = 200;
  drain::Drainer drainer(&log, dopts);
  if (!drainer.start()) {
    ProfileLog::set_spill_wait_spins(saved_spins);
    remove_tree(dir);
    return out;
  }

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      const u64 tid = static_cast<u64>(w);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      LogBatch batch;
      for (u64 i = 0; i < ops; ++i) {
        batch.record(log, EventKind::kCall, 0x1000 + tid, tid, i + 1);
      }
      batch.flush(log);
    });
  }
  while (ready.load(std::memory_order_acquire) < writers) {
  }
  auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  drainer.final_drain();
  auto t1 = std::chrono::steady_clock::now();
  ProfileLog::set_spill_wait_spins(saved_spins);

  drain::Drainer::Stats stats = drainer.stats();
  out.ns_per_op = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                  static_cast<double>(total);
  out.drained = stats.drained_entries;
  out.spilled_bytes = stats.spilled_bytes;
  out.chunks = stats.chunks;
  out.dropped = log.dropped();
  remove_tree(dir);
  return out;
}

std::string render_json(const std::vector<SweepRow>& rows,
                        const DrainSmoke& drain_smoke) {
  std::ostringstream out;
  out << "{\n  \"benchmark\": \"abl_log_write.sweep\",\n"
      << "  \"unit\": \"ns_per_append\",\n  \"configs\": [\n";
  for (usize i = 0; i < rows.size(); ++i) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "    {\"writers\": %d, \"v1_ns_per_op\": %.3f, "
                  "\"v2_ns_per_op\": %.3f, \"speedup\": %.3f, "
                  "\"v2_wrap_ns_per_op\": %.3f, \"wrap_penalty\": %.3f}%s\n",
                  rows[i].writers, rows[i].v1_ns, rows[i].v2_ns,
                  rows[i].speedup(), rows[i].v2_wrap_ns,
                  rows[i].wrap_penalty(), i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ],\n";
  char drain_line[320];
  std::snprintf(drain_line, sizeof(drain_line),
                "  \"drain\": {\"writers\": 4, \"ns_per_op\": %.3f, "
                "\"drained_entries\": %llu, \"spilled_bytes\": %llu, "
                "\"chunks\": %llu, \"dropped\": %llu}\n",
                drain_smoke.ns_per_op,
                static_cast<unsigned long long>(drain_smoke.drained),
                static_cast<unsigned long long>(drain_smoke.spilled_bytes),
                static_cast<unsigned long long>(drain_smoke.chunks),
                static_cast<unsigned long long>(drain_smoke.dropped));
  out << drain_line << "}\n";
  return out.str();
}

// Minimal extraction of per-writer-count {writers, <key>} pairs from the
// baseline JSON — the file is machine-written by this binary, so line-based
// parsing is safe. Returns an empty map when the key is absent (older
// baselines predating a field).
std::map<int, double> parse_field(const std::string& json,
                                  const std::string& key) {
  std::map<int, double> out;
  const std::string pattern = "\"" + key + "\":";
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    int writers = 0;
    double value = 0.0;
    const char* w = std::strstr(line.c_str(), "\"writers\":");
    const char* s = std::strstr(line.c_str(), pattern.c_str());
    if (w && s && std::sscanf(w, "\"writers\": %d", &writers) == 1 &&
        std::sscanf(s + pattern.size(), "%lf", &value) == 1) {
      out[writers] = value;
    }
  }
  return out;
}

int sweep_main(const std::string& out_path, const std::string& check_path,
               u64 ops, int reps) {
  std::vector<SweepRow> rows = run_sweep(ops, reps);
  DrainSmoke drain_smoke;
  for (int r = 0; r < reps; ++r) {
    DrainSmoke d = run_drain_smoke(4, ops);
    if (d.ns_per_op > 0 &&
        (drain_smoke.ns_per_op < 0 || d.ns_per_op < drain_smoke.ns_per_op)) {
      drain_smoke = d;
    }
  }
  std::fprintf(stderr,
               "drain writers=4 ns_per_op=%.2f drained=%llu spilled=%llu "
               "chunks=%llu dropped=%llu\n",
               drain_smoke.ns_per_op,
               static_cast<unsigned long long>(drain_smoke.drained),
               static_cast<unsigned long long>(drain_smoke.spilled_bytes),
               static_cast<unsigned long long>(drain_smoke.chunks),
               static_cast<unsigned long long>(drain_smoke.dropped));
  std::string json = render_json(rows, drain_smoke);
  if (!out_path.empty()) {
    std::ofstream f(out_path, std::ios::binary);
    f << json;
    if (!f) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }
  if (check_path.empty()) return 0;

  std::ifstream f(check_path, std::ios::binary);
  std::stringstream baseline_buf;
  baseline_buf << f.rdbuf();
  std::map<int, double> baseline = parse_field(baseline_buf.str(), "speedup");
  std::map<int, double> wrap_baseline =
      parse_field(baseline_buf.str(), "wrap_penalty");
  if (baseline.empty()) {
    std::fprintf(stderr, "FAIL: no configs parsed from %s\n", check_path.c_str());
    return 1;
  }
  int failures = 0;
  for (const SweepRow& row : rows) {
    auto it = baseline.find(row.writers);
    if (it == baseline.end()) continue;
    // The regression gate: the measured v1/v2 speedup ratio may not fall
    // more than 25% below the checked-in baseline ratio.
    double floor = it->second * 0.75;
    bool ok = row.speedup() >= floor;
    std::fprintf(stderr, "check writers=%d speedup=%.2fx baseline=%.2fx floor=%.2fx %s\n",
                 row.writers, row.speedup(), it->second, floor,
                 ok ? "OK" : "REGRESSION");
    if (!ok) ++failures;
  }
  // Acceptance floor from the format-v2 design: >=2x cheaper per probe at 8
  // concurrent writers, independent of what the baseline drifted to.
  for (const SweepRow& row : rows) {
    if (row.writers == 8 && row.speedup() < 2.0) {
      std::fprintf(stderr, "check writers=8 speedup=%.2fx < 2.0x acceptance floor\n",
                   row.speedup());
      ++failures;
    }
  }
  // Wrap-penalty gate: a flush past the wrap must cost about the same as an
  // unwrapped one (two memcpy spans). Falling back onto the per-entry modulo
  // loop shows up as a multiple, far outside the relative band and the
  // absolute ceiling.
  for (const SweepRow& row : rows) {
    double penalty = row.wrap_penalty();
    auto it = wrap_baseline.find(row.writers);
    double ceiling = it != wrap_baseline.end()
                         ? (it->second * 1.35 > 2.5 ? it->second * 1.35 : 2.5)
                         : 2.5;
    bool ok = penalty > 0 && penalty <= ceiling;
    std::fprintf(stderr,
                 "check writers=%d wrap_penalty=%.2fx ceiling=%.2fx %s\n",
                 row.writers, penalty, ceiling, ok ? "OK" : "REGRESSION");
    if (!ok) ++failures;
  }
  // Drain smoke gate: a live drainer must keep an undersized log lossless
  // (writers wait on reclaim, never discard) and actually spill to disk.
  {
    bool ok = drain_smoke.ns_per_op > 0 && drain_smoke.dropped == 0 &&
              drain_smoke.spilled_bytes > 0;
    std::fprintf(stderr, "check drain dropped=%llu spilled=%llu %s\n",
                 static_cast<unsigned long long>(drain_smoke.dropped),
                 static_cast<unsigned long long>(drain_smoke.spilled_bytes),
                 ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path, check_path;
  u64 ops = 400'000;
  int reps = 5;
  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--sweep") {
      sweep = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else if (arg == "--ops" && i + 1 < argc) {
      ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    }
  }
  if (sweep) return sweep_main(out_path, check_path, ops, reps);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
