// Ablation A1 — the lock-free log (§II-B/§II-C design choice).
//
// The paper argues the append-only log with an atomic fetch-and-add tail
// keeps write overhead minimal. This microbenchmark compares the shipped
// lock-free append against a mutex-guarded variant (what the design
// rejected), single-threaded and contended, plus the full instrumentation
// hook cost (scope enter+exit).
#include <benchmark/benchmark.h>

#include <mutex>
#include <vector>

#include "core/profiler.h"

namespace {

using namespace teeperf;

// The rejected alternative: same layout, tail guarded by a mutex.
class MutexLog {
 public:
  explicit MutexLog(u64 capacity) : buf_(ProfileLog::bytes_for(capacity)) {
    log_.init(buf_.data(), buf_.size(), 1, log_flags::kActive);
  }

  bool append(EventKind kind, u64 addr, u64 tid, u64 counter) {
    std::lock_guard<std::mutex> lock(mu_);
    LogHeader* h = log_.header();
    u64 slot = h->tail.load(std::memory_order_relaxed);
    if (slot >= h->max_entries) return false;
    h->tail.store(slot + 1, std::memory_order_relaxed);
    LogEntry& e = log_.entries()[slot];
    e.kind_and_counter = LogEntry::pack(kind, counter);
    e.addr = addr;
    e.tid = tid;
    return true;
  }

  void reset() { log_.header()->tail.store(0, std::memory_order_relaxed); }

 private:
  std::vector<u8> buf_;
  ProfileLog log_;
  std::mutex mu_;
};

constexpr u64 kCapacity = 1u << 22;

void BM_LockFreeAppend(benchmark::State& state) {
  static std::vector<u8>* buf = new std::vector<u8>(ProfileLog::bytes_for(kCapacity));
  static ProfileLog* log = [] {
    auto* l = new ProfileLog();
    l->init(buf->data(), buf->size(), 1, log_flags::kActive);
    return l;
  }();
  if (state.thread_index() == 0) log->header()->tail.store(0);
  u64 i = 0;
  for (auto _ : state) {
    if (!log->append(EventKind::kCall, 0x1000 + i, 0, i)) {
      log->header()->tail.store(0, std::memory_order_relaxed);
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockFreeAppend);
BENCHMARK(BM_LockFreeAppend)->Threads(4)->UseRealTime();

void BM_MutexAppend(benchmark::State& state) {
  static MutexLog* log = new MutexLog(kCapacity);
  if (state.thread_index() == 0) log->reset();
  u64 i = 0;
  for (auto _ : state) {
    if (!log->append(EventKind::kCall, 0x1000 + i, 0, i)) log->reset();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexAppend);
BENCHMARK(BM_MutexAppend)->Threads(4)->UseRealTime();

// The full per-event cost an instrumented application pays: scope
// constructor + destructor with an attached, active session.
void BM_ScopeEnterExit(benchmark::State& state) {
  RecorderOptions opts;
  opts.max_entries = kCapacity;
  opts.counter_mode = CounterMode::kTsc;
  static auto* recorder = Recorder::create(opts).release();
  static bool attached = recorder->attach();
  (void)attached;
  static const u64 id = SymbolRegistry::instance().intern("bench::scope");
  for (auto _ : state) {
    if (recorder->log().size() + 2 >= kCapacity) {
      recorder->log().header()->tail.store(0, std::memory_order_relaxed);
    }
    Scope s(id);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopeEnterExit);

// The same scope when no session is attached: the cost left in a binary
// shipped with instrumentation compiled in but profiling off.
void BM_ScopeDetached(benchmark::State& state) {
  if (teeperf::runtime::attached()) teeperf::runtime::detach();
  static const u64 id = SymbolRegistry::instance().intern("bench::scope_off");
  for (auto _ : state) {
    Scope s(id);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopeDetached);

}  // namespace

BENCHMARK_MAIN();
