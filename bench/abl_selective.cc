// Ablation A4 — selective code profiling (§II-C).
//
// The paper offers selective instrumentation as "a systematic knob to
// reduce the log size". On the call-densest Phoenix kernel (string_match)
// this harness compares:
//   off        — recorder detached (the floor),
//   selective  — allowlist of coarse frames only (workers + kernel entry),
//   full       — every scope recorded.
// Reported: runtime, log entries, log bytes.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/spin.h"
#include "common/stringutil.h"
#include "core/profiler.h"
#include "phoenix/phoenix.h"

using namespace teeperf;
using namespace teeperf::benchharness;

namespace {

struct Row {
  const char* label;
  double ms = 0;
  u64 entries = 0;
};

double time_run(phoenix::PhoenixBenchmark& bench) {
  u64 t0 = monotonic_ns();
  bench.run(4);
  return static_cast<double>(monotonic_ns() - t0) / 1e6;
}

}  // namespace

int main() {
  usize n = repeats(3);
  auto bench = phoenix::make_benchmark("string_match");
  phoenix::SuiteParams params;
  params.scale = scale(1);
  bench->prepare(params);
  bench->run(4);  // warm-up

  std::printf("Ablation A4: selective profiling on string_match "
              "(min of %zu runs)\n", n);
  print_rule('=');
  std::printf("%-12s %10s %14s %14s %10s\n", "mode", "time(ms)", "log entries",
              "log bytes", "overhead");
  print_rule();

  // Floor: no session.
  Row off{"off"};
  {
    std::vector<double> times;
    for (usize i = 0; i < n; ++i) times.push_back(time_run(*bench));
    off.ms = min_of(times);
  }

  // Selective: record only the coarse frames.
  Row selective{"selective"};
  {
    Filter filter(Filter::Mode::kAllowlist);
    filter.add_name("phoenix::string_match");
    filter.add_name("phoenix::string_match::map_worker");
    std::vector<double> times;
    for (usize i = 0; i < n; ++i) {
      RecorderOptions opts;
      opts.max_entries = 1ull << 23;
      opts.filter = &filter;
      auto rec = Recorder::create(opts);
      rec->attach();
      times.push_back(time_run(*bench));
      rec->detach();
      selective.entries = rec->stats().entries;
    }
    selective.ms = min_of(times);
  }

  // Full tracing.
  Row full{"full"};
  {
    std::vector<double> times;
    for (usize i = 0; i < n; ++i) {
      RecorderOptions opts;
      opts.max_entries = 1ull << 23;
      auto rec = Recorder::create(opts);
      rec->attach();
      times.push_back(time_run(*bench));
      rec->detach();
      full.entries = rec->stats().entries;
    }
    full.ms = min_of(times);
  }

  for (const Row& row : {off, selective, full}) {
    std::printf("%-12s %10.1f %14s %14s %9.2fx\n", row.label, row.ms,
                with_commas(row.entries).c_str(),
                human_bytes(static_cast<double>(row.entries) * sizeof(LogEntry))
                    .c_str(),
                off.ms > 0 ? row.ms / off.ms : 0.0);
  }
  print_rule('=');
  std::printf("Expected shape: selective ≈ off in time with a tiny log; full "
              "pays the per-call cost and a %sx larger log.\n",
              full.entries && selective.entries
                  ? str_format("%.0f", static_cast<double>(full.entries) /
                                           static_cast<double>(selective.entries))
                        .c_str()
                  : "many");
  return 0;
}
