// Exercises the CLI binaries end to end by exec'ing them: argument
// validation, record→analyze round trips, every analyzer output mode, the
// selective filter and dynamic-activation wrapper flags. Binary locations
// come from TEEPERF_BIN_DIR (set by CMake).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/fileutil.h"

namespace teeperf {
namespace {

std::string bin_dir() {
  const char* d = std::getenv("TEEPERF_BIN_DIR");
  return d ? d : "build";
}

// Runs a command line, captures combined stdout+stderr into *output,
// returns the exit code (or -1 on spawn failure).
int run_cmd(const std::vector<std::string>& args, std::string* output) {
  std::string out_file = make_temp_dir("teeperf_cli_") + "/out";
  std::string cmd;
  for (const auto& a : args) {
    cmd += "'" + a + "' ";
  }
  cmd += "> " + out_file + " 2>&1";
  int status = std::system(cmd.c_str());
  if (auto text = read_file(out_file)) *output = *text;
  remove_tree(out_file.substr(0, out_file.rfind('/')));
  if (status < 0) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class ToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = make_temp_dir("teeperf_tools_");
    record_ = bin_dir() + "/tools/teeperf_record";
    analyze_ = bin_dir() + "/tools/teeperf_analyze";
    flamegraph_ = bin_dir() + "/tools/teeperf_flamegraph";
    stats_ = bin_dir() + "/tools/teeperf_stats";
    fuzz_ = bin_dir() + "/tools/teeperf_fuzz";
    app_ = bin_dir() + "/examples/instrumented_app";
  }
  void TearDown() override { remove_tree(dir_); }

  // Records one run of the instrumented app; returns the dump prefix.
  std::string record_run(const std::vector<std::string>& extra = {}) {
    std::string prefix = dir_ + "/run";
    std::vector<std::string> args{record_, "-o", prefix, "-n", "262144"};
    args.insert(args.end(), extra.begin(), extra.end());
    args.push_back("--");
    args.push_back(app_);
    args.push_back(dir_ + "/appout");
    std::string out;
    EXPECT_EQ(run_cmd(args, &out), 0) << out;
    return prefix;
  }

  std::string dir_, record_, analyze_, flamegraph_, stats_, fuzz_, app_;
};

TEST_F(ToolsTest, RecordRejectsBadArgs) {
  std::string out;
  EXPECT_EQ(run_cmd({record_}, &out), 2);                       // no command
  EXPECT_EQ(run_cmd({record_, "--bogus", "--", "true"}, &out), 2);
  EXPECT_EQ(run_cmd({record_, "-c", "sundial", "--", "true"}, &out), 2);
}

TEST_F(ToolsTest, AnalyzeRejectsMissingPrefix) {
  std::string out;
  EXPECT_EQ(run_cmd({analyze_}, &out), 2);
  EXPECT_EQ(run_cmd({analyze_, dir_ + "/nonexistent"}, &out), 1);
}

TEST_F(ToolsTest, RecordAnalyzeAllOutputModes) {
  std::string prefix = record_run();
  ASSERT_TRUE(file_exists(prefix + ".log"));
  ASSERT_TRUE(file_exists(prefix + ".sym"));

  std::string out;
  ASSERT_EQ(run_cmd({analyze_, prefix, "--top", "10", "--callgraph",
                     "--threads", "--tree", "--gprof", "--hottest",
                     "--validate"},
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("fibonacci"), std::string::npos);
  EXPECT_NE(out.find("Flat profile"), std::string::npos);
  EXPECT_NE(out.find("hottest stack"), std::string::npos);
  EXPECT_NE(out.find("validation: clean"), std::string::npos);
  EXPECT_NE(out.find("<all threads>"), std::string::npos);

  // File-producing modes.
  ASSERT_EQ(run_cmd({analyze_, prefix, "--csv", dir_ + "/o.csv", "--folded",
                     dir_ + "/o.folded", "--svg", dir_ + "/o.svg",
                     "--timeline", dir_ + "/o.tl.csv", "--timeline-svg",
                     dir_ + "/o.tl.svg", "--chrome", dir_ + "/o.json"},
                    &out),
            0)
      << out;
  for (const char* f : {"/o.csv", "/o.folded", "/o.svg", "/o.tl.csv",
                        "/o.tl.svg", "/o.json"}) {
    auto content = read_file(dir_ + f);
    ASSERT_TRUE(content.has_value()) << f;
    EXPECT_FALSE(content->empty()) << f;
  }
  EXPECT_NE(read_file(dir_ + "/o.json")->find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(ToolsTest, AnalyzeMethodQueryAndMerge) {
  std::string p1 = record_run();
  // Second run under a different prefix for the merge.
  std::string p2 = dir_ + "/run2";
  std::string out;
  ASSERT_EQ(run_cmd({record_, "-o", p2, "--", app_, dir_ + "/appout2"}, &out), 0);

  ASSERT_EQ(run_cmd({analyze_, p1, "--method", "fibonacci"}, &out), 0) << out;
  EXPECT_NE(out.find("invocations matching"), std::string::npos);
  EXPECT_NE(out.find("by caller:"), std::string::npos);

  ASSERT_EQ(run_cmd({analyze_, p1, "--merge", p2}, &out), 0) << out;
  EXPECT_NE(out.find("merged 2 dumps"), std::string::npos);
}

TEST_F(ToolsTest, RecordInactiveStaysEmpty) {
  std::string prefix = record_run({"--inactive"});
  std::string out;
  ASSERT_EQ(run_cmd({analyze_, prefix}, &out), 0);
  EXPECT_NE(out.find("entries=0"), std::string::npos);
}

TEST_F(ToolsTest, RecordCallsOnlyHalvesEvents) {
  std::string full = record_run();
  std::string calls_prefix = dir_ + "/calls";
  std::string out;
  ASSERT_EQ(run_cmd({record_, "-o", calls_prefix, "--calls-only", "--", app_,
                     dir_ + "/x"},
                    &out),
            0);
  auto full_log = read_file(full + ".log");
  auto calls_log = read_file(calls_prefix + ".log");
  ASSERT_TRUE(full_log && calls_log);
  // Same workload, returns dropped: roughly half the entries.
  EXPECT_LT(calls_log->size(), full_log->size() * 3 / 4);
}

TEST_F(ToolsTest, FlamegraphToolRoundTrip) {
  std::string prefix = record_run();
  std::string out;
  ASSERT_EQ(run_cmd({analyze_, prefix, "--folded", dir_ + "/f.folded"}, &out), 0);
  ASSERT_EQ(run_cmd({flamegraph_, dir_ + "/f.folded", dir_ + "/f.svg",
                     "--title", "cli test", "--width", "900"},
                    &out),
            0)
      << out;
  auto svg = read_file(dir_ + "/f.svg");
  ASSERT_TRUE(svg.has_value());
  EXPECT_NE(svg->find("cli test"), std::string::npos);
  EXPECT_NE(svg->find("width=\"900\""), std::string::npos);
}

TEST_F(ToolsTest, FlamegraphToolRejectsGarbage) {
  write_file(dir_ + "/garbage", "not folded stacks at all");
  std::string out;
  EXPECT_EQ(run_cmd({flamegraph_, dir_ + "/garbage", dir_ + "/out.svg"}, &out), 1);
  EXPECT_EQ(run_cmd({flamegraph_, dir_ + "/missing", dir_ + "/out.svg"}, &out), 1);
}

// --- negative paths (ISSUE: every tool must fail loudly, never crash) -----

TEST_F(ToolsTest, AnalyzeRejectsTruncatedAndCorruptDumps) {
  std::string prefix = record_run();
  auto log = read_file(prefix + ".log");
  ASSERT_TRUE(log.has_value());
  ASSERT_GT(log->size(), 256u);

  // Sub-header truncation: not even a LogHeader left — hard failure with a
  // diagnostic naming the file.
  std::string stub = prefix + "_stub";
  ASSERT_TRUE(write_file(stub + ".log", log->substr(0, 64)));
  std::string out;
  EXPECT_EQ(run_cmd({analyze_, stub}, &out), 1);
  EXPECT_NE(out.find("cannot load"), std::string::npos) << out;

  // Truncation mid-entries: the valid prefix still analyzes (torn-dump
  // recovery), exit 0.
  std::string torn = prefix + "_torn";
  ASSERT_TRUE(write_file(torn + ".log", log->substr(0, log->size() / 2)));
  EXPECT_EQ(run_cmd({analyze_, torn}, &out), 0) << out;

  // Corrupt magic: rejected outright.
  std::string bad = *log;
  bad[0] ^= 0xff;
  std::string corrupt = prefix + "_magic";
  ASSERT_TRUE(write_file(corrupt + ".log", bad));
  EXPECT_EQ(run_cmd({analyze_, corrupt}, &out), 1);
  EXPECT_NE(out.find("cannot load"), std::string::npos) << out;
}

TEST_F(ToolsTest, RecordRejectsBadFaultSpec) {
  std::string out;
  EXPECT_EQ(run_cmd({record_, "--faults", "dump.torn:nth=0", "--", "true"},
                    &out),
            2);
  EXPECT_NE(out.find("bad --faults"), std::string::npos) << out;
  EXPECT_EQ(run_cmd({record_, "--faults", "p:bogus=1", "--", "true"}, &out), 2);
}

TEST_F(ToolsTest, RecordWithAppendDieFaultStillWritesLoadableDump) {
  // The armed child SIGKILLs itself mid-append; the wrapper must still
  // persist the log, and the analyzer must recover the valid prefix.
  std::string prefix = dir_ + "/faulted";
  std::string out;
  EXPECT_EQ(run_cmd({record_, "-o", prefix, "-c", "steady_clock", "--faults",
                     "log.append.die:nth=40", "--fault-seed", "2", "--", app_,
                     dir_ + "/fx"},
                    &out),
            1)
      << out;
  ASSERT_TRUE(file_exists(prefix + ".log"));
  EXPECT_EQ(run_cmd({analyze_, prefix}, &out), 0) << out;
}

TEST_F(ToolsTest, StatsRejectsBadArgsAndMissingSession) {
  std::string out;
  EXPECT_EQ(run_cmd({stats_}, &out), 2);
  EXPECT_EQ(run_cmd({stats_, "12345", "--bogus"}, &out), 2);
  EXPECT_EQ(run_cmd({stats_, "12345", "--arm", "=3"}, &out), 2);
  EXPECT_NE(out.find("bad --arm"), std::string::npos) << out;
  // Valid args, but nobody is publishing telemetry under that name.
  EXPECT_EQ(run_cmd({stats_, "/teeperf.nosuch.session"}, &out), 1);
  EXPECT_NE(out.find("no telemetry region"), std::string::npos) << out;
}

TEST_F(ToolsTest, FuzzRejectsBadArgsAndMissingCorpus) {
  std::string out;
  EXPECT_EQ(run_cmd({fuzz_, "--bogus"}, &out), 2);
  EXPECT_EQ(run_cmd({fuzz_, "--corpus"}, &out), 2);  // flag without value
  EXPECT_EQ(run_cmd({fuzz_, "--corpus", dir_ + "/empty_corpus", "--iters", "1"},
                    &out),
            1);  // no corpus files to mutate
}

TEST_F(ToolsTest, DiffBetweenTwoRuns) {
  std::string p1 = record_run();
  std::string p2 = dir_ + "/second";
  std::string out;
  ASSERT_EQ(run_cmd({record_, "-o", p2, "--", app_, dir_ + "/y"}, &out), 0);
  ASSERT_EQ(run_cmd({analyze_, p1, "--diff", p2}, &out), 0) << out;
  EXPECT_NE(out.find("delta(ms)"), std::string::npos);
}

}  // namespace
}  // namespace teeperf
