// Property/fuzz tests: the analyzer must accept *any* byte-legal log —
// adversarial event orders, truncations, garbage — without crashing, and
// its outputs must satisfy structural invariants on every input.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/fileutil.h"

#include "analyzer/profile.h"
#include "common/rng.h"
#include "core/log_format.h"

namespace teeperf::analyzer {
namespace {

// Shared invariants every reconstruction must satisfy, whatever the input.
// `check_spans` additionally asserts child-within-parent time containment,
// which only holds when input counters are per-thread monotonic.
void check_invariants(const Profile& p, bool check_spans = true) {
  const auto& all = p.invocations();
  for (usize i = 0; i < all.size(); ++i) {
    const Invocation& inv = all[i];
    EXPECT_GE(inv.end, inv.start) << "invocation " << i;
    EXPECT_GE(inv.inclusive(), inv.exclusive()) << "invocation " << i;
    if (inv.parent >= 0) {
      const Invocation& parent = all[static_cast<usize>(inv.parent)];
      EXPECT_EQ(parent.tid, inv.tid) << "invocation " << i;
      EXPECT_EQ(parent.depth + 1, inv.depth) << "invocation " << i;
      EXPECT_LT(static_cast<usize>(inv.parent), i) << "invocation " << i;
      if (check_spans) {
        // A child lives within its parent's span.
        EXPECT_GE(inv.start, parent.start) << "invocation " << i;
        EXPECT_LE(inv.end, parent.end) << "invocation " << i;
      }
    } else {
      EXPECT_EQ(inv.depth, 0u) << "invocation " << i;
    }
  }
}

class FuzzLog {
 public:
  explicit FuzzLog(u64 capacity = 8192) {
    buf_.resize(ProfileLog::bytes_for(capacity));
    log_.init(buf_.data(), buf_.size(), 1, log_flags::kActive);
  }
  ProfileLog& log() { return log_; }

 private:
  std::vector<u8> buf_;
  ProfileLog log_;
};

class AdversarialEvents : public ::testing::TestWithParam<u64> {};

// Completely random events: kinds, addresses, tids, counters all arbitrary.
TEST_P(AdversarialEvents, ArbitraryStreamNeverBreaksInvariants) {
  Xorshift64 rng(GetParam());
  FuzzLog fuzz;
  usize n = 500 + rng.next_below(3000);
  for (usize i = 0; i < n; ++i) {
    fuzz.log().append(rng.next_bool() ? EventKind::kCall : EventKind::kReturn,
                      rng.next_below(8),       // tiny address space: collisions
                      rng.next_below(3),       // few threads
                      rng.next_below(100000)); // counters may go backwards
  }
  Profile p = Profile::from_log(fuzz.log(), {}, 1.0);
  check_invariants(p, /*check_spans=*/false);
  // Derived views must not crash either.
  (void)p.method_stats();
  (void)p.call_edges();
  (void)p.folded_stacks();
}

// Well-formed nested streams with random truncation: the analyzer must
// close open frames and count them as incomplete, nothing more.
TEST_P(AdversarialEvents, TruncatedValidStreamOnlyIncomplete) {
  Xorshift64 rng(GetParam() ^ 0xabc);
  FuzzLog fuzz;

  // Generate a proper nested sequence per thread.
  struct ThreadGen {
    std::vector<u64> stack;
    u64 counter = 0;
  };
  ThreadGen threads[2];
  usize events = 1000 + rng.next_below(2000);
  for (usize i = 0; i < events; ++i) {
    usize t = rng.next_below(2);
    ThreadGen& g = threads[t];
    g.counter += 1 + rng.next_below(10);
    bool call = g.stack.empty() || (g.stack.size() < 20 && rng.next_bool(0.55));
    if (call) {
      u64 addr = 1 + rng.next_below(6);
      g.stack.push_back(addr);
      fuzz.log().append(EventKind::kCall, addr, t, g.counter);
    } else {
      u64 addr = g.stack.back();
      g.stack.pop_back();
      fuzz.log().append(EventKind::kReturn, addr, t, g.counter);
    }
  }

  // Truncate at a random point by rewinding the tail.
  u64 keep = rng.next_below(fuzz.log().size() + 1);
  fuzz.log().header()->tail.store(keep, std::memory_order_relaxed);

  Profile p = Profile::from_log(fuzz.log(), {}, 1.0);
  check_invariants(p);
  EXPECT_EQ(p.recon_stats().stray_returns, 0u);
  EXPECT_EQ(p.recon_stats().mismatched_returns, 0u);
  EXPECT_EQ(p.recon_stats().unwound_frames, 0u);
}

// Balanced stream invariant: sum of root inclusive == sum of all exclusive
// per thread (time is partitioned exactly).
TEST_P(AdversarialEvents, ExclusivePartitionsRootTime) {
  Xorshift64 rng(GetParam() ^ 0x5151);
  FuzzLog fuzz;
  std::vector<u64> stack;
  u64 counter = 0;
  // One thread, strictly balanced: close everything at the end.
  for (int i = 0; i < 800; ++i) {
    counter += 1 + rng.next_below(20);
    if (stack.size() < 12 && (stack.empty() || rng.next_bool(0.55))) {
      u64 addr = 1 + rng.next_below(5);
      stack.push_back(addr);
      fuzz.log().append(EventKind::kCall, addr, 0, counter);
    } else {
      fuzz.log().append(EventKind::kReturn, stack.back(), 0, counter);
      stack.pop_back();
    }
  }
  while (!stack.empty()) {
    counter += 1;
    fuzz.log().append(EventKind::kReturn, stack.back(), 0, counter);
    stack.pop_back();
  }

  Profile p = Profile::from_log(fuzz.log(), {}, 1.0);
  check_invariants(p);
  u64 root_inclusive = 0, all_exclusive = 0;
  for (const auto& inv : p.invocations()) {
    if (inv.parent < 0) root_inclusive += inv.inclusive();
    all_exclusive += inv.exclusive();
  }
  EXPECT_EQ(root_inclusive, all_exclusive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialEvents,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- validate() ---------------------------------------------------------------

TEST(Validate, CleanLogHasNoIssues) {
  FuzzLog fuzz;
  fuzz.log().append(EventKind::kCall, 1, 0, 10);
  fuzz.log().append(EventKind::kReturn, 1, 0, 20);
  EXPECT_TRUE(Profile::validate(fuzz.log()).empty());
}

TEST(Validate, DetectsNonMonotonicCounter) {
  FuzzLog fuzz;
  fuzz.log().append(EventKind::kCall, 1, 0, 100);
  fuzz.log().append(EventKind::kReturn, 1, 0, 50);  // goes backwards
  auto issues = Profile::validate(fuzz.log());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ValidationIssue::Kind::kNonMonotonicCounter);
  EXPECT_EQ(issues[0].entry_index, 1u);
}

TEST(Validate, CountersIndependentPerThread) {
  FuzzLog fuzz;
  fuzz.log().append(EventKind::kCall, 1, 0, 100);
  fuzz.log().append(EventKind::kCall, 1, 1, 5);  // other thread: fine
  fuzz.log().append(EventKind::kReturn, 1, 0, 110);
  fuzz.log().append(EventKind::kReturn, 1, 1, 6);
  EXPECT_TRUE(Profile::validate(fuzz.log()).empty());
}

TEST(Validate, DetectsUnbalancedThread) {
  FuzzLog fuzz;
  fuzz.log().append(EventKind::kCall, 1, 0, 10);
  fuzz.log().append(EventKind::kCall, 2, 0, 20);
  fuzz.log().append(EventKind::kReturn, 2, 0, 30);
  auto issues = Profile::validate(fuzz.log());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ValidationIssue::Kind::kUnbalancedThread);
}

TEST(Validate, DetectsZeroAddress) {
  FuzzLog fuzz;
  fuzz.log().append(EventKind::kCall, 0, 0, 10);
  fuzz.log().append(EventKind::kReturn, 0, 0, 20);
  auto issues = Profile::validate(fuzz.log());
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].kind, ValidationIssue::Kind::kZeroAddress);
}

// --- load_many (multi-process merge) ------------------------------------------

class LoadManyTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = make_temp_dir("teeperf_merge_"); }
  void TearDown() override { remove_tree(dir_); }

  // Writes a dump with one method named `name` taking `ticks`.
  std::string write_dump(const std::string& stem, const std::string& name,
                         u64 ticks) {
    FuzzLog fuzz;
    fuzz.log().append(EventKind::kCall, 1, 0, 100);
    fuzz.log().append(EventKind::kReturn, 1, 0, 100 + ticks);
    fuzz.log().header()->ns_per_tick = 1.0;
    std::string prefix = dir_ + "/" + stem;
    usize bytes = sizeof(LogHeader) + 2 * sizeof(LogEntry);
    write_file(prefix + ".log",
               std::string_view(reinterpret_cast<const char*>(fuzz.log().header()),
                                bytes));
    write_file(prefix + ".sym", "1\t" + name + "\n");
    return prefix;
  }

  std::string dir_;
};

TEST_F(LoadManyTest, MergesInvocationsAndNamespacesThreads) {
  auto a = write_dump("a", "proc_a::fn", 50);
  auto b = write_dump("b", "proc_b::fn", 70);
  auto merged = Profile::load_many({a, b});
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->invocations().size(), 2u);
  EXPECT_NE(merged->invocations()[0].tid, merged->invocations()[1].tid);
  EXPECT_EQ(merged->thread_count(), 2u);
  EXPECT_EQ(merged->recon_stats().entries, 4u);

  // Both names resolve in the merged profile even though both dumps used
  // method id 1 for different functions.
  auto stats = merged->method_stats();
  ASSERT_EQ(stats.size(), 2u);
  std::set<std::string> names{merged->name(stats[0].method),
                              merged->name(stats[1].method)};
  EXPECT_TRUE(names.contains("proc_a::fn"));
  EXPECT_TRUE(names.contains("proc_b::fn"));
}

TEST_F(LoadManyTest, SameNameAggregatesAcrossProcesses) {
  auto a = write_dump("a", "shared::fn", 50);
  auto b = write_dump("b", "shared::fn", 70);
  auto merged = Profile::load_many({a, b});
  ASSERT_TRUE(merged.has_value());
  auto stats = merged->method_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_EQ(stats[0].inclusive_total, 120u);
}

TEST_F(LoadManyTest, SkipsMissingInputs) {
  auto a = write_dump("a", "only::fn", 10);
  auto merged = Profile::load_many({dir_ + "/missing", a});
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->invocations().size(), 1u);
}

TEST_F(LoadManyTest, AllMissingIsNullopt) {
  EXPECT_FALSE(Profile::load_many({dir_ + "/nope1", dir_ + "/nope2"}).has_value());
}

}  // namespace
}  // namespace teeperf::analyzer
