// End-to-end integration tests: the full four-stage pipeline against the
// real substrates, asserting the *findings* the paper's evaluation reports
// (not just that the machinery runs).
#include <gtest/gtest.h>

#include "analyzer/profile.h"
#include "analyzer/query.h"
#include "common/fileutil.h"
#include "core/profiler.h"
#include "flamegraph/flamegraph.h"
#include "kvstore/db.h"
#include "kvstore/db_bench.h"
#include "phoenix/phoenix.h"
#include "spdk/perf_tool.h"
#include "tee/enclave.h"

namespace teeperf {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (runtime::attached()) runtime::detach();
  }

  analyzer::Profile analyze(const Recorder& rec) {
    return analyzer::Profile::from_log(
        rec.log(),
        SymbolRegistry::parse(SymbolRegistry::instance().serialize()));
  }
};

TEST_F(IntegrationTest, PhoenixProfileAttributesTimeToKernel) {
  RecorderOptions opts;
  opts.max_entries = 1 << 20;
  auto rec = Recorder::create(opts);
  ASSERT_TRUE(rec->attach());
  auto in = phoenix::gen_string_match(50'000, 1);
  phoenix::run_string_match(in, 2);
  rec->detach();

  auto profile = analyze(*rec);
  EXPECT_EQ(profile.recon_stats().stray_returns, 0u);
  EXPECT_EQ(profile.recon_stats().mismatched_returns, 0u);

  // match_word must be the most-called method, with one invocation per word.
  auto stats = profile.method_stats();
  u64 match_calls = 0;
  for (const auto& s : stats) {
    if (profile.name(s.method) == "phoenix::string_match::match_word") {
      match_calls = s.count;
    }
  }
  EXPECT_EQ(match_calls, 50'000u);

  // The folded stacks must nest match_word under map_worker under the
  // kernel root.
  bool found_path = false;
  for (auto& [path, v] : profile.folded_stacks()) {
    if (path == "phoenix::string_match;phoenix::string_match::map_worker;"
                "phoenix::string_match::match_word") {
      found_path = v > 0;
    }
  }
  EXPECT_TRUE(found_path);
}

TEST_F(IntegrationTest, KvstoreInEnclaveShowsStatsNowBottleneck) {
  std::string dir = make_temp_dir("teeperf_int_kvs_");
  std::unique_ptr<kvs::DB> db;
  ASSERT_TRUE(kvs::DB::open({}, dir + "/db", &db).is_ok());

  kvs::bench::BenchConfig cfg;
  cfg.num_ops = 400;
  cfg.key_space = 400;
  kvs::bench::run_fill_random(*db, cfg);

  RecorderOptions opts;
  opts.max_entries = 1 << 20;
  auto rec = Recorder::create(opts);
  ASSERT_TRUE(rec->attach());
  tee::Enclave enclave(tee::CostModel::sgx_like());
  enclave.ecall([&] { kvs::bench::run_read_random_write_random(*db, cfg); });
  rec->detach();

  auto profile = analyze(*rec);
  auto tree = flamegraph::build_frame_tree(profile.folded_stacks());
  double now_frac = flamegraph::frame_fraction(tree, "kvs::Stats::Now");
  // Two trapped clock reads per op must dominate a 400-op in-enclave run —
  // the Figure 5 finding.
  EXPECT_GT(now_frac, 0.3) << "Stats::Now should dominate inside the enclave";
  remove_tree(dir);
}

TEST_F(IntegrationTest, KvstoreNativeDoesNotShowThatBottleneck) {
  std::string dir = make_temp_dir("teeperf_int_kvs2_");
  std::unique_ptr<kvs::DB> db;
  ASSERT_TRUE(kvs::DB::open({}, dir + "/db", &db).is_ok());
  kvs::bench::BenchConfig cfg;
  cfg.num_ops = 400;
  cfg.key_space = 400;
  kvs::bench::run_fill_random(*db, cfg);

  RecorderOptions opts;
  opts.max_entries = 1 << 20;
  auto rec = Recorder::create(opts);
  ASSERT_TRUE(rec->attach());
  kvs::bench::run_read_random_write_random(*db, cfg);  // no enclave
  rec->detach();

  auto profile = analyze(*rec);
  auto tree = flamegraph::build_frame_tree(profile.folded_stacks());
  double now_frac = flamegraph::frame_fraction(tree, "kvs::Stats::Now");
  // Outside the TEE, the clock is cheap: the same workload must attribute
  // far less of its time there. (The delta *is* the paper's point.)
  EXPECT_LT(now_frac, 0.3);
  remove_tree(dir);
}

TEST_F(IntegrationTest, SpdkNaiveProfileFindsGetpidAndRdtsc) {
  RecorderOptions opts;
  opts.max_entries = 1 << 20;
  auto rec = Recorder::create(opts);
  ASSERT_TRUE(rec->attach());

  tee::CostModel cm = tee::CostModel::zero();
  cm.syscall_ocall_ns = 45'000;
  cm.rdtsc_trap_ns = 5'000;
  tee::Enclave enclave(cm);
  spdk::NvmeDeviceConfig dev_cfg;
  dev_cfg.completion_latency_ns = 30'000;
  spdk::NvmeDevice dev(dev_cfg);
  spdk::PerfConfig cfg;
  cfg.duration_ns = 150'000'000;
  cfg.queue_depth = 8;
  enclave.ecall([&] { spdk::run_perf_tool(dev, cfg, spdk::SpdkMode{}); });
  rec->detach();

  auto profile = analyze(*rec);
  auto tree = flamegraph::build_frame_tree(profile.folded_stacks());
  double getpid_frac = flamegraph::frame_fraction(tree, "getpid");
  double rdtsc_frac = flamegraph::frame_fraction(tree, "rdtsc");
  EXPECT_GT(getpid_frac, 0.4);  // paper: 72%
  EXPECT_GT(rdtsc_frac, 0.05);  // paper: 20%

  // getpid must hang under allocate_request, as in Figure 6.
  bool getpid_under_alloc = false;
  for (auto& [path, v] : profile.folded_stacks()) {
    if (v > 0 && path.find("allocate_request;getpid") != std::string::npos) {
      getpid_under_alloc = true;
    }
  }
  EXPECT_TRUE(getpid_under_alloc);
}

TEST_F(IntegrationTest, DumpedProfileMatchesLiveProfile) {
  std::string dir = make_temp_dir("teeperf_int_dump_");
  RecorderOptions opts;
  auto rec = Recorder::create(opts);
  ASSERT_TRUE(rec->attach());
  {
    TEEPERF_SCOPE("int::outer");
    TEEPERF_SCOPE("int::inner");
  }
  rec->detach();

  auto live = analyze(*rec);
  ASSERT_TRUE(rec->dump(dir + "/run"));
  auto loaded = analyzer::Profile::load(dir + "/run");
  ASSERT_TRUE(loaded.has_value());

  ASSERT_EQ(live.invocations().size(), loaded->invocations().size());
  for (usize i = 0; i < live.invocations().size(); ++i) {
    EXPECT_EQ(live.invocations()[i].method, loaded->invocations()[i].method);
    EXPECT_EQ(live.invocations()[i].inclusive(),
              loaded->invocations()[i].inclusive());
    EXPECT_EQ(live.name(live.invocations()[i].method),
              loaded->name(loaded->invocations()[i].method));
  }
  remove_tree(dir);
}

TEST_F(IntegrationTest, SelectiveProfilingShrinksLogOnRealWorkload) {
  auto in = phoenix::gen_string_match(20'000, 2);

  RecorderOptions full_opts;
  full_opts.max_entries = 1 << 20;
  auto full = Recorder::create(full_opts);
  ASSERT_TRUE(full->attach());
  phoenix::run_string_match(in, 2);
  full->detach();

  Filter filter(Filter::Mode::kDenylist);
  filter.add_name("phoenix::string_match::match_word");
  RecorderOptions sel_opts;
  sel_opts.max_entries = 1 << 20;
  sel_opts.filter = &filter;
  auto selective = Recorder::create(sel_opts);
  ASSERT_TRUE(selective->attach());
  phoenix::run_string_match(in, 2);
  selective->detach();

  EXPECT_LT(selective->stats().entries, full->stats().entries / 10);
  // The filtered profile still reconstructs cleanly (dropped frames are
  // whole call+return pairs).
  auto profile = analyze(*selective);
  EXPECT_EQ(profile.recon_stats().stray_returns, 0u);
  EXPECT_EQ(profile.recon_stats().mismatched_returns, 0u);
}

}  // namespace
}  // namespace teeperf
