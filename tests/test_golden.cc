// Golden-file regression tests for the analyzer (TESTING.md "Golden
// files"): every seed_*.log in tests/corpus has a checked-in reference
// rendering — folded stacks and method-stat JSON — and analysis output must
// stay bit-identical to it. Any intentional analyzer change regenerates the
// references with TEEPERF_UPDATE_GOLDEN=1 and reviews the diff.
//
// Plus the v1-vs-v2 differential: the same scripted workload recorded
// through the single-tail v1 path and the sharded/batched v2 path must
// produce identical method stats — the shard layout is a performance
// change, never a semantic one.
#include <dirent.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer/profile.h"
#include "common/fileutil.h"
#include "common/stringutil.h"
#include "core/log_format.h"

namespace teeperf {
namespace {

std::string corpus_dir() {
  const char* dir = std::getenv("TEEPERF_CORPUS_DIR");
  return dir && *dir ? dir : "tests/corpus";
}

bool update_mode() {
  const char* u = std::getenv("TEEPERF_UPDATE_GOLDEN");
  return u && *u && std::string(u) != "0";
}

std::vector<std::string> seed_logs() {
  std::vector<std::string> names;
  DIR* d = opendir(corpus_dir().c_str());
  if (!d) return names;
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (starts_with(name, "seed_") && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".log") == 0) {
      names.push_back(name.substr(0, name.size() - 4));
    }
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

// Canonical folded-stacks rendering: already sorted by path in the API.
std::string render_folded(const analyzer::Profile& p) {
  std::string out;
  for (const auto& [path, ticks] : p.folded_stacks()) {
    out += path;
    out += ' ';
    out += std::to_string(ticks);
    out += '\n';
  }
  return out;
}

// Method stats as JSON lines, sorted by method id — method_stats() sorts by
// exclusive time, where ties would make the golden nondeterministic.
std::string render_stats_json(const analyzer::Profile& p) {
  auto stats = p.method_stats();
  std::sort(stats.begin(), stats.end(),
            [](const analyzer::MethodStats& a, const analyzer::MethodStats& b) {
              return a.method < b.method;
            });
  std::string out = "[\n";
  for (usize i = 0; i < stats.size(); ++i) {
    const auto& s = stats[i];
    out += str_format(
        "  {\"method\": \"%s\", \"count\": %llu, \"inclusive\": %llu, "
        "\"exclusive\": %llu, \"min\": %llu, \"max\": %llu}%s\n",
        p.name(s.method).c_str(), static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.inclusive_total),
        static_cast<unsigned long long>(s.exclusive_total),
        static_cast<unsigned long long>(s.min_inclusive),
        static_cast<unsigned long long>(s.max_inclusive),
        i + 1 < stats.size() ? "," : "");
  }
  out += "]\n";
  return out;
}

void check_golden(const std::string& golden_path, const std::string& actual) {
  if (update_mode()) {
    ASSERT_TRUE(write_file(golden_path, actual)) << golden_path;
    return;
  }
  auto expected = read_file(golden_path);
  ASSERT_TRUE(expected) << "missing golden " << golden_path
                        << " — regenerate with TEEPERF_UPDATE_GOLDEN=1";
  EXPECT_EQ(*expected, actual)
      << "analyzer output drifted from " << golden_path
      << " — if intentional, regenerate with TEEPERF_UPDATE_GOLDEN=1";
}

TEST(GoldenCorpus, HasSeeds) {
  // The suite below silently passes on an empty list; make that loud.
  EXPECT_GE(seed_logs().size(), 8u) << "corpus dir: " << corpus_dir();
}

TEST(GoldenCorpus, FoldedStacksAndMethodStatsBitIdentical) {
  for (const std::string& name : seed_logs()) {
    SCOPED_TRACE(name);
    auto raw = read_file(corpus_dir() + "/" + name + ".log");
    ASSERT_TRUE(raw);
    auto profile = analyzer::Profile::load_bytes(*raw);
    ASSERT_TRUE(profile) << "loader rejected a trusted seed";
    std::string golden_base = corpus_dir() + "/golden/" + name;
    check_golden(golden_base + ".folded", render_folded(*profile));
    check_golden(golden_base + ".stats.json", render_stats_json(*profile));
  }
}

// ------------------------------------------------------- v1/v2 differential

// A deterministic multi-thread workload scripted as (kind, addr, tid,
// counter) tuples: nested calls, a stray return, interleaved threads.
struct Step {
  EventKind kind;
  u64 addr;
  u64 tid;
  u64 counter;
};

std::vector<Step> scripted_workload() {
  std::vector<Step> steps;
  u64 c = 1000;
  for (u64 rep = 0; rep < 50; ++rep) {
    for (u64 tid = 0; tid < 4; ++tid) {
      steps.push_back({EventKind::kCall, 0x1000 + tid, tid, c += 3});
      steps.push_back({EventKind::kCall, 0x2000 + tid, tid, c += 3});
      steps.push_back({EventKind::kReturn, 0x2000 + tid, tid, c += 3});
    }
    for (u64 tid = 0; tid < 4; ++tid) {
      steps.push_back({EventKind::kCall, 0x3000, tid, c += 3});
      steps.push_back({EventKind::kReturn, 0x3000, tid, c += 3});
      steps.push_back({EventKind::kReturn, 0x1000 + tid, tid, c += 3});
    }
  }
  return steps;
}

std::string stats_signature(const analyzer::Profile& p) {
  return render_stats_json(p);
}

TEST(V1V2Differential, SameWorkloadIdenticalMethodStats) {
  std::vector<Step> steps = scripted_workload();

  // v1: every step through the classic single-tail append.
  std::vector<u8> v1_buf(ProfileLog::bytes_for(4096));
  ProfileLog v1;
  ASSERT_TRUE(v1.init(v1_buf.data(), v1_buf.size(), 1,
                      log_flags::kActive | log_flags::kMultithread));
  for (const Step& s : steps) {
    ASSERT_TRUE(v1.append(s.kind, s.addr, s.tid, s.counter));
  }

  // v2: the same steps through per-thread batches into a sharded log, with
  // deliberately unflushed remainders published at the end (as the runtime
  // does at thread exit / detach).
  std::vector<u8> v2_buf(ProfileLog::bytes_for(4096, 4));
  ProfileLog v2;
  ASSERT_TRUE(v2.init(v2_buf.data(), v2_buf.size(), 1,
                      log_flags::kActive | log_flags::kMultithread, 4));
  LogBatch batches[4];
  for (const Step& s : steps) {
    ASSERT_TRUE(batches[s.tid].record(v2, s.kind, s.addr, s.tid, s.counter));
  }
  for (LogBatch& b : batches) ASSERT_TRUE(b.flush(v2));

  ASSERT_EQ(v1.size(), v2.size());
  auto p1 = analyzer::Profile::from_log(v1, {}, 1.0);
  auto p2 = analyzer::Profile::from_log(v2, {}, 1.0);
  EXPECT_EQ(p1.thread_count(), p2.thread_count());
  EXPECT_EQ(stats_signature(p1), stats_signature(p2));
  EXPECT_EQ(render_folded(p1), render_folded(p2));
}

TEST(V1V2Differential, DumpRoundTripIdenticalMethodStats) {
  // The serialized compact form must analyze identically to the live log.
  std::vector<Step> steps = scripted_workload();
  std::vector<u8> buf(ProfileLog::bytes_for(4096, 4));
  ProfileLog log;
  ASSERT_TRUE(log.init(buf.data(), buf.size(), 1,
                       log_flags::kActive | log_flags::kMultithread, 4));
  LogBatch batches[4];
  for (const Step& s : steps) {
    ASSERT_TRUE(batches[s.tid].record(log, s.kind, s.addr, s.tid, s.counter));
  }
  for (LogBatch& b : batches) ASSERT_TRUE(b.flush(log));

  auto live = analyzer::Profile::from_log(log, {}, 1.0);
  auto loaded = analyzer::Profile::load_bytes(log.serialize_compact());
  ASSERT_TRUE(loaded);
  EXPECT_EQ(stats_signature(live), stats_signature(*loaded));
  EXPECT_EQ(render_folded(live), render_folded(*loaded));
}

}  // namespace
}  // namespace teeperf
