// teeperf_lint self-tests: lexer/parse unit checks, the rule fixtures under
// tests/lint/fixtures/ (exact rule ids and line numbers), manifest and
// baseline round trips, and the tier-1 gate that the real source tree lints
// clean. Fixture paths come in via TEEPERF_LINT_FIXTURE_DIR; the repo root
// via TEEPERF_SOURCE_ROOT (both set in tests/CMakeLists.txt).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/lint/lint.h"

namespace teeperf::lint {
namespace {

std::string fixture_dir() { return TEEPERF_LINT_FIXTURE_DIR; }
std::string source_root() { return TEEPERF_SOURCE_ROOT; }

// (rule, path-suffix, line) triple for compact expected-value tables.
using Row = std::tuple<std::string, std::string, int>;

std::vector<Row> rows(const std::vector<Finding>& findings) {
  std::vector<Row> out;
  for (const Finding& f : findings) {
    // Keep only the path below the fixture root so the table is
    // machine-independent.
    std::string path = f.file;
    const std::string marker = "fixtures/";
    auto pos = path.rfind(marker);
    if (pos != std::string::npos) path = path.substr(pos + marker.size());
    out.push_back({f.rule, path, f.line});
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Lexer.

TEST(LintLexer, TokenKindsLinesAndUnescaping) {
  auto toks = lex("int a = 0x1F; // note\n\"a\\n\\\"b\"\n->::");
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[3].kind, Tok::kNumber);
  EXPECT_EQ(toks[3].text, "0x1F");
  EXPECT_EQ(toks[5].kind, Tok::kComment);
  EXPECT_EQ(toks[5].line, 1);
  EXPECT_EQ(toks[6].kind, Tok::kString);
  EXPECT_EQ(toks[6].text, "a\n\"b");  // unescaped, quotes stripped
  EXPECT_EQ(toks[6].line, 2);
  EXPECT_EQ(toks[7].text, "->");  // longest-match punctuators
  EXPECT_EQ(toks[8].text, "::");
}

TEST(LintLexer, PreprocessorLinesFoldContinuations) {
  auto toks = lex("#define X \\\n  1\nint y;");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::kPreproc);
  // The continuation is folded into one token; 'int' lands on line 3.
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 3);
}

// ---------------------------------------------------------------------------
// Structural parse.

TEST(LintParse, WaiversAndConstants) {
  FileIndex fi = index_file(
      "x.cc",
      "// teeperf-lint: allow(r1, R2): reason text\n"
      "inline constexpr u64 kA = 4 * 8;\n"
      "inline constexpr u64 kB = kA - 2;\n");
  ASSERT_EQ(fi.waivers.size(), 1u);
  EXPECT_TRUE(fi.waived_at("r1", 1));
  EXPECT_TRUE(fi.waived_at("r2", 1));  // rule ids are lowercased
  EXPECT_FALSE(fi.waived_at("r3", 1));
  EXPECT_TRUE(fi.waived_in("r1", 1, 4));
  EXPECT_EQ(fi.constants.at("kA"), 32u);
  EXPECT_EQ(fi.constants.at("kB"), 30u);
}

// The layout engine is checked against the compiler itself: the same struct
// is both compiled here and fed to index_file as text.
struct LayoutSample {
  u32 a;
  u64 b;
  u16 c[3];
  double d;
  u8 tail[8 - 6];
};

TEST(LintParse, StructLayoutMatchesCompiler) {
  FileIndex fi = index_file("sample.h",
                            "struct LayoutSample {\n"
                            "  u32 a;\n"
                            "  u64 b;\n"
                            "  u16 c[3];\n"
                            "  double d;\n"
                            "  u8 tail[8 - 6];\n"
                            "};\n");
  ASSERT_EQ(fi.structs.size(), 1u);
  const StructDef& sd = fi.structs[0];
  ASSERT_TRUE(sd.layout_computed);
  EXPECT_EQ(sd.size, sizeof(LayoutSample));
  EXPECT_EQ(sd.align, alignof(LayoutSample));
  ASSERT_EQ(sd.fields.size(), 5u);
  EXPECT_EQ(sd.fields[0].offset, offsetof(LayoutSample, a));
  EXPECT_EQ(sd.fields[1].offset, offsetof(LayoutSample, b));
  EXPECT_EQ(sd.fields[2].offset, offsetof(LayoutSample, c));
  EXPECT_EQ(sd.fields[2].size, sizeof(u16) * 3);
  EXPECT_EQ(sd.fields[3].offset, offsetof(LayoutSample, d));
  EXPECT_EQ(sd.fields[4].offset, offsetof(LayoutSample, tail));
  EXPECT_EQ(sd.fields[4].size, 2u);  // extent evaluated: 8 - 6
}

// ---------------------------------------------------------------------------
// Fixtures: exact rule ids and line numbers, per file.

TEST(LintFixtures, ExactRuleIdsAndLines) {
  LintOptions opt;
  opt.paths = {fixture_dir()};
  LintResult res = run_lint(opt);
  ASSERT_TRUE(res.errors.empty()) << res.errors.front();

  std::vector<Row> expected = {
      {"r1", "core/r1_probe_impurity.cc", 11},  // malloc via helper_alloc
      {"r1", "core/r1_probe_impurity.cc", 12},  // free via helper_alloc
      {"r1", "core/r1_probe_impurity.cc", 17},  // std::string in on_enter
      {"r2", "r2_memory_order.cc", 10},         // load() implicit seq_cst
      {"r2", "r2_memory_order.cc", 11},         // store() implicit seq_cst
      {"r2", "r2_memory_order.cc", 13},         // CAS with one order
      {"r2", "r2_memory_order.cc", 15},         // failure > success
      {"r2", "r2_memory_order.cc", 17},         // failure = release
      {"r3", "r3_case/obs/layout.h", 7},        // layout not computable
      {"r3", "r3_case/obs/layout.h", 7},        // std::string member
      {"r3", "r3_case/obs/layout.h", 12},       // pointer member
      {"r4", "r4_raw_names.cc", 13},            // fires("shm.create.fail")
      {"r4", "r4_raw_names.cc", 14},            // counter("log.tail")
      {"r4", "r4_raw_names.cc", 15},            // family("log.dropped")
  };
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(rows(res.findings), expected);
}

TEST(LintFixtures, WaivedFileProducesNoFindings) {
  LintOptions opt;
  opt.paths = {fixture_dir() + "/core/waived_ok.cc"};
  LintResult res = run_lint(opt);
  EXPECT_TRUE(res.errors.empty());
  EXPECT_TRUE(res.findings.empty())
      << res.findings.front().file << ":" << res.findings.front().line << " "
      << res.findings.front().message;
}

// ---------------------------------------------------------------------------
// Baseline: findings are matched by rule|file|message, not line number.

TEST(LintBaseline, SuppressesByLineIndependentKey) {
  LintOptions opt;
  opt.paths = {fixture_dir()};
  LintResult plain = run_lint(opt);
  ASSERT_FALSE(plain.findings.empty());

  const std::string path = testing::TempDir() + "teeperf_lint_baseline_test.txt";
  {
    std::ofstream out(path);
    out << "# test baseline\n" << plain.findings.front().key() << "\n";
  }
  opt.baseline_path = path;
  LintResult res = run_lint(opt);
  EXPECT_EQ(res.baselined.size(), 1u);
  EXPECT_EQ(res.findings.size(), plain.findings.size() - 1);
  EXPECT_EQ(res.baselined.front().key(), plain.findings.front().key());
}

// ---------------------------------------------------------------------------
// Manifest round trip and mismatch detection.

const char kGoodHeader[] =
    "struct Slot {\n"
    "  u64 tag;\n"
    "  u32 len;\n"
    "  u32 pad;\n"
    "};\n";

TEST(LintManifest, RenderParseRoundTrip) {
  Corpus corpus;
  corpus.files.push_back(index_file("x/core/log_format.h", kGoodHeader));
  std::string json = render_manifest(corpus);

  std::vector<ManifestStruct> parsed;
  std::string error;
  ASSERT_TRUE(parse_manifest(json, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "Slot");
  EXPECT_EQ(parsed[0].size, 16u);
  EXPECT_EQ(parsed[0].align, 8u);
  ASSERT_EQ(parsed[0].fields.size(), 3u);
  EXPECT_EQ(parsed[0].fields[1].name, "len");
  EXPECT_EQ(parsed[0].fields[1].offset, 8u);
  EXPECT_EQ(parsed[0].fields[1].size, 4u);

  // A clean corpus against its own manifest: no findings.
  corpus.manifest = parsed;
  corpus.have_manifest = true;
  EXPECT_TRUE(run_rules(corpus).empty());
}

TEST(LintManifest, DriftAgainstManifestIsReported) {
  Corpus corpus;
  corpus.files.push_back(index_file("x/core/log_format.h", kGoodHeader));
  ManifestStruct ms;
  ms.name = "Slot";
  ms.file = "x/core/log_format.h";
  ms.size = 24;  // stale: header now says 16
  ms.align = 8;
  ms.fields = {{"tag", 0, 8}, {"len", 8, 4}, {"gone", 12, 4}};
  corpus.manifest = {ms};
  corpus.have_manifest = true;

  std::vector<Finding> findings = run_rules(corpus);
  std::set<std::string> messages;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "r3");
    messages.insert(f.message);
  }
  EXPECT_TRUE(messages.count(
      "Slot: size/align 16/8 != manifest 24/8"));
  EXPECT_TRUE(messages.count(
      "Slot.pad is not in the manifest (regenerate tools/shm_manifest.json)"));
  EXPECT_TRUE(messages.count(
      "Slot.gone is in the manifest but not in the struct"));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintManifest, MalformedJsonReportsError) {
  std::vector<ManifestStruct> parsed;
  std::string error;
  EXPECT_FALSE(parse_manifest("{\"structs\": [", &parsed, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// TESTING.md fault-point table extraction.

TEST(LintDocs, FaultPointTableParse) {
  std::set<std::string> points = parse_fault_point_table(
      "# Testing\n"
      "## Fault points\n"
      "| name | effect |\n"
      "|------|--------|\n"
      "| `shm.create.fail` | open fails |\n"
      "| `log.append.die` | SIGKILL mid-append |\n"
      "## Other section\n"
      "| `not.a.fault` | outside the table |\n");
  EXPECT_EQ(points,
            (std::set<std::string>{"shm.create.fail", "log.append.die"}));
}

// ---------------------------------------------------------------------------
// Tier-1 gate: the real tree lints clean against the checked-in manifest,
// TESTING.md and the (empty) baseline. This is the same invocation CI runs.

TEST(LintRepo, SourceTreeIsClean) {
  const std::string root = source_root();
  LintOptions opt;
  opt.paths = {root + "/src", root + "/tools", root + "/bench"};
  opt.manifest_path = root + "/tools/shm_manifest.json";
  opt.testing_md_path = root + "/TESTING.md";
  opt.baseline_path = root + "/tools/teeperf_lint_baseline.txt";
  LintResult res = run_lint(opt);
  for (const std::string& e : res.errors) ADD_FAILURE() << e;
  for (const Finding& f : res.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
  // Policy: the baseline stays empty; violations are waived at the source
  // site with a reason or fixed, never buried in the baseline file.
  EXPECT_TRUE(res.baselined.empty());
}

}  // namespace
}  // namespace teeperf::lint
