// Replicated trusted time (core/replicated_counter.h, DESIGN.md §13) and
// the counter lifecycle fixes that shipped with it:
//   - SoftwareCounter start()/stop() is race-free and idempotent (the
//     CounterLifecycle suite runs under the TSan CI job),
//   - the replica shm block (layout, init/adopt, dump hygiene),
//   - replica threads advancing their private words with the elected
//     primary mirroring into the probe-visible header word,
//   - stall/backjump detection, fail-over and continuous calibration.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "common/shm.h"
#include "common/spin.h"
#include "core/counter.h"
#include "core/log_format.h"
#include "core/replicated_counter.h"
#include "faultsim/fault.h"

namespace teeperf {
namespace {

// --- SoftwareCounter lifecycle ----------------------------------------------

// Regression for the start()/stop() race: running_ used to be published
// only after the thread spawn, so a stop() racing start() saw "not running",
// skipped the join, and the std::thread destructor called std::terminate.
// Hammering both from many threads must never crash or leak a thread.
TEST(CounterLifecycle, StartStopHammerIsRaceFree) {
  LogHeader header;
  SoftwareCounter counter(&header, /*yield_every=*/1024);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 50; ++i) {
        if ((i + t) % 2) {
          counter.start();
        } else {
          counter.stop();
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  counter.stop();
  EXPECT_FALSE(counter.running());
}

TEST(CounterLifecycle, StartIsIdempotent) {
  LogHeader header;
  SoftwareCounter counter(&header, /*yield_every=*/1024);
  counter.start();
  counter.start();  // second start must not spawn a second thread
  EXPECT_TRUE(counter.running());
  u64 deadline = monotonic_ns() + 2'000'000'000ull;
  while (header.counter.load(std::memory_order_relaxed) < 10'000 &&
         monotonic_ns() < deadline) {
    usleep(1000);
  }
  EXPECT_GE(header.counter.load(std::memory_order_relaxed), 10'000u);
  counter.stop();
  counter.stop();  // and stop is too
  EXPECT_FALSE(counter.running());
}

TEST(CounterLifecycle, StopWithoutStartIsANoop) {
  LogHeader header;
  SoftwareCounter counter(&header);
  counter.stop();
  EXPECT_FALSE(counter.running());
}

TEST(CounterLifecycle, RestartAfterStopResumesCounting) {
  LogHeader header;
  SoftwareCounter counter(&header, /*yield_every=*/1024);
  counter.start();
  u64 deadline = monotonic_ns() + 2'000'000'000ull;
  while (header.counter.load(std::memory_order_relaxed) == 0 &&
         monotonic_ns() < deadline) {
    usleep(1000);
  }
  counter.stop();
  u64 at_stop = header.counter.load(std::memory_order_relaxed);
  ASSERT_GT(at_stop, 0u);
  counter.start();
  deadline = monotonic_ns() + 2'000'000'000ull;
  while (header.counter.load(std::memory_order_relaxed) <= at_stop &&
         monotonic_ns() < deadline) {
    usleep(1000);
  }
  counter.stop();
  EXPECT_GT(header.counter.load(std::memory_order_relaxed), at_stop);
}

// --- replica shm block layout -----------------------------------------------

TEST(ReplicatedCounterLayout, BytesForReplicatedAddsAlignedBlock) {
  usize base = ProfileLog::bytes_for(1024, 0);
  usize with = ProfileLog::bytes_for_replicated(1024, 0, 3);
  EXPECT_EQ(ProfileLog::bytes_for_replicated(1024, 0, 0), base);
  // Directory + three 64-byte slots, plus at most one alignment pad.
  EXPECT_GE(with, base + sizeof(CounterReplicaDirectory) +
                      3 * sizeof(CounterReplicaSlot));
  EXPECT_LE(with, base + sizeof(CounterReplicaDirectory) +
                      3 * sizeof(CounterReplicaSlot) + 63);
}

TEST(ReplicatedCounterLayout, InitAndAdoptRoundTripReplicaBlock) {
  SharedMemoryRegion shm;
  ASSERT_TRUE(
      shm.create_anonymous(ProfileLog::bytes_for_replicated(4096, 0, 3)));
  ProfileLog log;
  ASSERT_TRUE(log.init(shm.data(), shm.size(), 42,
                       log_flags::kActive | log_flags::kMultithread, 0, 3));
  ASSERT_EQ(log.counter_replica_count(), 3u);
  ASSERT_NE(log.replica_directory(), nullptr);
  EXPECT_EQ(log.replica_directory()->replica_count, 3u);
  for (u32 r = 0; r < 3; ++r) {
    EXPECT_EQ(log.replica_slot(r)->value.load(std::memory_order_relaxed), 0u);
  }
  // Slots must be cache-line isolated: 64-byte aligned, 64 bytes apart.
  auto addr0 = reinterpret_cast<uintptr_t>(log.replica_slot(0));
  EXPECT_EQ(addr0 % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(log.replica_slot(1)) - addr0, 64u);

  ProfileLog adopted;
  ASSERT_TRUE(adopted.adopt(shm.data(), shm.size()));
  EXPECT_EQ(adopted.counter_replica_count(), 3u);
  EXPECT_EQ(adopted.replica_slot(0), log.replica_slot(0));
}

TEST(ReplicatedCounterLayout, AdoptWithoutBlockDegradesToZeroReplicas) {
  // A dump carries the header but never the replica block; a reader of the
  // bare serialized bytes must degrade, not reject or read out of bounds.
  SharedMemoryRegion shm;
  ASSERT_TRUE(
      shm.create_anonymous(ProfileLog::bytes_for_replicated(1024, 0, 2)));
  ProfileLog log;
  ASSERT_TRUE(log.init(shm.data(), shm.size(), 42,
                       log_flags::kActive | log_flags::kMultithread, 0, 2));
  for (int i = 0; i < 4; ++i) {
    log.append(i % 2 ? EventKind::kReturn : EventKind::kCall, 0xA000, 0,
               100 + static_cast<u64>(i));
  }
  usize truncated = sizeof(LogHeader) + 4 * sizeof(LogEntry);
  std::vector<u8> file(static_cast<u8*>(shm.data()),
                       static_cast<u8*>(shm.data()) + truncated);
  // Dump-shaped: the written header covers exactly the entries present (as
  // serialize_compact() arranges) but still claims two replicas — e.g. a
  // stale tool that copied the live header verbatim. No block follows.
  auto* fh = reinterpret_cast<LogHeader*>(file.data());
  fh->max_entries = 4;
  ProfileLog loaded;
  ASSERT_TRUE(loaded.adopt(file.data(), file.size()));
  EXPECT_EQ(loaded.counter_replica_count(), 0u);
  EXPECT_EQ(loaded.replica_directory(), nullptr);
}

TEST(ReplicatedCounterLayout, SerializeCompactClearsReplicaField) {
  SharedMemoryRegion shm;
  ASSERT_TRUE(
      shm.create_anonymous(ProfileLog::bytes_for_replicated(4096, 2, 3)));
  ProfileLog log;
  ASSERT_TRUE(log.init(shm.data(), shm.size(), 42,
                       log_flags::kActive | log_flags::kMultithread |
                           log_flags::kRecordCalls,
                       2, 3));
  log.append(EventKind::kCall, 0xA000, 0, 100);
  std::string out = log.serialize_compact();
  ASSERT_GE(out.size(), sizeof(LogHeader));
  LogHeader h;
  std::memcpy(&h, out.data(), sizeof(h));
  // The serialized form never carries the block, so the field must read 0 —
  // byte-deterministic dumps, and loaders never look for a phantom block.
  EXPECT_EQ(h.counter_replicas, 0u);
  EXPECT_EQ(log.counter_replica_count(), 3u);  // the live log keeps its block
}

// --- replica threads + detector ---------------------------------------------

class ReplicatedCounterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        shm_.create_anonymous(ProfileLog::bytes_for_replicated(4096, 0, 3)));
    ASSERT_TRUE(log_.init(shm_.data(), shm_.size(), 42,
                          log_flags::kActive | log_flags::kMultithread, 0, 3));
  }
  void TearDown() override { fault::Registry::instance().reset(); }

  ReplicatedCounterOptions fast_options() {
    ReplicatedCounterOptions o;
    o.yield_every = 1024;       // single-core CI: keep the workload alive
    o.detect_interval_us = 1000;
    o.pin_cores = false;        // don't fight the CI cpuset
    return o;
  }

  SharedMemoryRegion shm_;
  ProfileLog log_;
};

TEST_F(ReplicatedCounterTest, AllSlotsAdvanceAndPrimaryMirrorsHeader) {
  ReplicatedCounter rc(log_.header(), log_.replica_directory(),
                       log_.replica_slot(0), fast_options());
  rc.start();
  EXPECT_TRUE(rc.running());
  u64 deadline = monotonic_ns() + 5'000'000'000ull;
  bool all = false;
  while (!all && monotonic_ns() < deadline) {
    all = log_.header()->counter.load(std::memory_order_relaxed) > 10'000;
    for (u32 r = 0; r < 3; ++r) {
      all = all &&
            log_.replica_slot(r)->value.load(std::memory_order_relaxed) > 10'000;
    }
    usleep(1000);
  }
  // The mirrored header word tracks the primary's slot (same batch or one
  // 1024-tick batch behind, never ahead by more than a batch).
  u32 primary = log_.replica_directory()->primary.load(std::memory_order_relaxed);
  u64 h = log_.header()->counter.load(std::memory_order_relaxed);
  u64 p = log_.replica_slot(primary)->value.load(std::memory_order_relaxed);
  rc.stop();
  EXPECT_TRUE(all);
  EXPECT_GT(h, 0u);
  EXPECT_GT(p, 0u);
}

TEST_F(ReplicatedCounterTest, StartStopIsIdempotentAndRaceFree) {
  ReplicatedCounter rc(log_.header(), log_.replica_directory(),
                       log_.replica_slot(0), fast_options());
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rc, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < 10; ++i) {
        if ((i + t) % 2) {
          rc.start();
        } else {
          rc.stop();
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  rc.stop();
  EXPECT_FALSE(rc.running());
}

TEST_F(ReplicatedCounterTest, CalibrationConvergesToPositiveNsPerTick) {
  ReplicatedCounter rc(log_.header(), log_.replica_directory(),
                       log_.replica_slot(0), fast_options());
  EXPECT_FALSE(rc.calibrated_ns_per_tick().has_value());  // no windows yet
  rc.start();
  u64 deadline = monotonic_ns() + 5'000'000'000ull;
  std::optional<double> npt;
  while (!npt && monotonic_ns() < deadline) {
    usleep(5000);
    npt = rc.calibrated_ns_per_tick();
  }
  rc.stop();
  ASSERT_TRUE(npt.has_value());
  EXPECT_GT(*npt, 0.0);
  EXPECT_LT(*npt, 1e7);  // sanity: well under 10 ms per tick
}

TEST_F(ReplicatedCounterTest, PrimaryStallFailsOverAndStaysMonotonic) {
  fault::Registry::instance().arm_from_spec("counter.stall.primary:nth=1");
  ReplicatedCounter rc(log_.header(), log_.replica_directory(),
                       log_.replica_slot(0), fast_options());
  u32 from = ~0u, to = ~0u;
  rc.set_failover_callback([&](u32 f, u32 t, u64) { from = f; to = t; });
  rc.start();
  u64 deadline = monotonic_ns() + 10'000'000'000ull;
  u64 prev = 0;
  bool monotonic = true;
  while (rc.health().failovers == 0 && monotonic_ns() < deadline) {
    u64 now = log_.header()->counter.load(std::memory_order_relaxed);
    if (now < prev) monotonic = false;
    prev = now;
    usleep(500);
  }
  ReplicatedCounter::Health h = rc.health();
  ASSERT_GE(h.failovers, 1u);
  EXPECT_NE(from, to);
  EXPECT_EQ(h.primary, to);
  // Recovery: the new primary keeps the mirrored word advancing.
  u64 after_election = log_.header()->counter.load(std::memory_order_relaxed);
  deadline = monotonic_ns() + 5'000'000'000ull;
  while (log_.header()->counter.load(std::memory_order_relaxed) <=
             after_election + 10'000 &&
         monotonic_ns() < deadline) {
    u64 now = log_.header()->counter.load(std::memory_order_relaxed);
    if (now < prev) monotonic = false;
    prev = now;
    usleep(500);
  }
  rc.stop();
  EXPECT_GT(log_.header()->counter.load(std::memory_order_relaxed),
            after_election);
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(log_.replica_directory()->failovers.load(std::memory_order_relaxed),
            h.failovers);
}

TEST_F(ReplicatedCounterTest, PrimaryBackjumpJournalsAndFailsOver) {
  // Sticky: a single 4–8k jump would be swamped by the millions of forward
  // ticks a replica makes per detector window; repeating it every batch
  // drives the primary's slot net-backwards so the detector must see it.
  fault::Registry::instance().arm_from_spec(
      "counter.backjump.primary:nth=1,sticky");
  ReplicatedCounter rc(log_.header(), log_.replica_directory(),
                       log_.replica_slot(0), fast_options());
  std::atomic<u64> backjumps_seen{0};
  rc.set_backjump_callback(
      [&](u32, u64, u64) { backjumps_seen.fetch_add(1); });
  rc.start();
  u64 deadline = monotonic_ns() + 10'000'000'000ull;
  while (rc.health().backjumps == 0 && monotonic_ns() < deadline) {
    usleep(500);
  }
  ReplicatedCounter::Health h = rc.health();
  rc.stop();
  ASSERT_GE(h.backjumps, 1u);
  EXPECT_GE(backjumps_seen.load(), 1u);
}

}  // namespace
}  // namespace teeperf
