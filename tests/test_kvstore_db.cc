// End-to-end tests for the LSM DB: CRUD, durability (WAL replay, reopen),
// flush/compaction behaviour, iterators, and a randomized property test
// against a reference std::map.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/fileutil.h"
#include "common/rng.h"
#include "kvstore/db.h"
#include "kvstore/db_bench.h"

namespace teeperf::kvs {
namespace {

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = make_temp_dir("teeperf_db_"); }
  void TearDown() override { remove_tree(dir_); }

  std::unique_ptr<DB> open(Options options = {}) {
    std::unique_ptr<DB> db;
    Status s = DB::open(options, dir_ + "/db", &db);
    EXPECT_TRUE(s.is_ok()) << s.to_string();
    return db;
  }

  // Small buffers so flush/compaction paths trigger quickly in tests.
  static Options small_options() {
    Options o;
    o.write_buffer_size = 16 * 1024;
    o.l0_compaction_trigger = 3;
    o.target_file_size = 32 * 1024;
    o.max_bytes_for_level_base = 128 * 1024;
    return o;
  }

  std::string dir_;
};

TEST_F(DbTest, PutGet) {
  auto db = open();
  ASSERT_TRUE(db->put({}, "key", "value").is_ok());
  std::string v;
  ASSERT_TRUE(db->get({}, "key", &v).is_ok());
  EXPECT_EQ(v, "value");
}

TEST_F(DbTest, GetMissing) {
  auto db = open();
  std::string v;
  EXPECT_TRUE(db->get({}, "missing", &v).is_not_found());
}

TEST_F(DbTest, OverwriteKeepsNewest) {
  auto db = open();
  db->put({}, "k", "one");
  db->put({}, "k", "two");
  std::string v;
  ASSERT_TRUE(db->get({}, "k", &v).is_ok());
  EXPECT_EQ(v, "two");
}

TEST_F(DbTest, DeleteHidesKey) {
  auto db = open();
  db->put({}, "k", "v");
  ASSERT_TRUE(db->remove({}, "k").is_ok());
  std::string v;
  EXPECT_TRUE(db->get({}, "k", &v).is_not_found());
}

TEST_F(DbTest, WriteBatchAtomicSequence) {
  auto db = open();
  WriteBatch b;
  b.put("a", "1");
  b.put("b", "2");
  b.remove("a");
  ASSERT_TRUE(db->write({}, &b).is_ok());
  std::string v;
  EXPECT_TRUE(db->get({}, "a", &v).is_not_found());
  ASSERT_TRUE(db->get({}, "b", &v).is_ok());
  EXPECT_EQ(db->sequence(), 3u);
}

TEST_F(DbTest, EmptyValueRoundTrip) {
  auto db = open();
  db->put({}, "k", "");
  std::string v = "sentinel";
  ASSERT_TRUE(db->get({}, "k", &v).is_ok());
  EXPECT_EQ(v, "");
}

TEST_F(DbTest, LargeValue) {
  auto db = open();
  std::string big(1 << 20, 'z');
  db->put({}, "big", big);
  std::string v;
  ASSERT_TRUE(db->get({}, "big", &v).is_ok());
  EXPECT_EQ(v, big);
}

TEST_F(DbTest, WalReplayAfterReopen) {
  {
    auto db = open();
    db->put({}, "persist", "me");
    db->put({}, "also", "this");
  }
  auto db = open();
  std::string v;
  ASSERT_TRUE(db->get({}, "persist", &v).is_ok());
  EXPECT_EQ(v, "me");
  ASSERT_TRUE(db->get({}, "also", &v).is_ok());
  EXPECT_GE(db->sequence(), 2u);
}

TEST_F(DbTest, ReopenAfterFlushReadsFromSstables) {
  auto options = small_options();
  {
    auto db = open(options);
    for (int i = 0; i < 2000; ++i) {
      db->put({}, bench::make_key(static_cast<u64>(i), 16), "value" + std::to_string(i));
    }
    EXPECT_GT(db->stats().memtable_flushes, 0u);
  }
  auto db = open(options);
  std::string v;
  for (int i = 0; i < 2000; i += 97) {
    ASSERT_TRUE(db->get({}, bench::make_key(static_cast<u64>(i), 16), &v).is_ok())
        << i;
    EXPECT_EQ(v, "value" + std::to_string(i));
  }
}

TEST_F(DbTest, CompactionTriggersAndPreservesData) {
  auto options = small_options();
  auto db = open(options);
  std::map<std::string, std::string> reference;
  Xorshift64 rng(5);
  for (int i = 0; i < 5000; ++i) {
    std::string k = bench::make_key(rng.next_below(800), 16);
    std::string v = "v" + std::to_string(i);
    db->put({}, k, v);
    reference[k] = v;
  }
  auto st = db->stats();
  EXPECT_GT(st.compactions, 0u);
  EXPECT_GT(st.memtable_flushes, 0u);

  std::string v;
  for (const auto& [k, expect] : reference) {
    ASSERT_TRUE(db->get({}, k, &v).is_ok()) << k;
    EXPECT_EQ(v, expect);
  }
}

TEST_F(DbTest, DeleteSurvivesFlushAndCompaction) {
  auto options = small_options();
  auto db = open(options);
  db->put({}, "doomed", "value");
  ASSERT_TRUE(db->compact_all().is_ok());  // key now in an SSTable
  db->remove({}, "doomed");
  ASSERT_TRUE(db->compact_all().is_ok());  // tombstone must mask the old SST
  std::string v;
  EXPECT_TRUE(db->get({}, "doomed", &v).is_not_found());
}

TEST_F(DbTest, CompactAllDropsTombstonesAtBottom) {
  auto db = open(small_options());
  for (int i = 0; i < 100; ++i) db->put({}, bench::make_key(static_cast<u64>(i), 16), "v");
  for (int i = 0; i < 100; ++i) db->remove({}, bench::make_key(static_cast<u64>(i), 16));
  ASSERT_TRUE(db->compact_all().is_ok());
  // Everything deleted and compacted to the bottom: no files should remain.
  auto st = db->stats();
  usize files = 0;
  for (usize n : st.files_per_level) files += n;
  EXPECT_EQ(files, 0u);
}

TEST_F(DbTest, IteratorSeesLiveKeysInOrder) {
  auto db = open(small_options());
  db->put({}, "c", "3");
  db->put({}, "a", "1");
  db->put({}, "b", "2");
  db->remove({}, "b");
  db->put({}, "a", "1new");

  auto it = db->new_iterator({});
  std::vector<std::pair<std::string, std::string>> got;
  for (it->seek_to_first(); it->valid(); it->next()) {
    got.emplace_back(std::string(it->key()), std::string(it->value()));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<std::string, std::string>{"a", "1new"}));
  EXPECT_EQ(got[1], (std::pair<std::string, std::string>{"c", "3"}));
}

TEST_F(DbTest, IteratorSeek) {
  auto db = open();
  for (char c = 'a'; c <= 'f'; ++c) db->put({}, std::string(1, c), "v");
  auto it = db->new_iterator({});
  it->seek("c");
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->key(), "c");
  it->seek("cc");
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->key(), "d");
  it->seek("zz");
  EXPECT_FALSE(it->valid());
}

TEST_F(DbTest, IteratorSpansMemtableAndSstables) {
  auto db = open(small_options());
  db->put({}, "sst_key", "from_sst");
  ASSERT_TRUE(db->compact_all().is_ok());
  db->put({}, "mem_key", "from_mem");

  auto it = db->new_iterator({});
  std::map<std::string, std::string> got;
  for (it->seek_to_first(); it->valid(); it->next()) {
    got[std::string(it->key())] = std::string(it->value());
  }
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(got["sst_key"], "from_sst");
  EXPECT_EQ(got["mem_key"], "from_mem");
}

TEST_F(DbTest, IteratorIsSnapshot) {
  auto db = open();
  db->put({}, "k", "old");
  auto it = db->new_iterator({});
  db->put({}, "k", "new");
  db->put({}, "later", "x");
  it->seek_to_first();
  ASSERT_TRUE(it->valid());
  EXPECT_EQ(it->value(), "old");
  it->next();
  EXPECT_FALSE(it->valid());  // "later" is invisible to the snapshot
}

TEST_F(DbTest, ErrorIfExists) {
  { auto db = open(); db->put({}, "x", "y"); }
  Options o;
  o.error_if_exists = true;
  std::unique_ptr<DB> db;
  EXPECT_FALSE(DB::open(o, dir_ + "/db", &db).is_ok());
}

TEST_F(DbTest, WalDisabledStillWorksInMemory) {
  Options o;
  o.wal_enabled = false;
  auto db = open(o);
  db->put({}, "k", "v");
  std::string v;
  ASSERT_TRUE(db->get({}, "k", &v).is_ok());
}

// Concurrency: readers and iterators run against a continuously writing DB
// without locks held across I/O; every read must see either nothing or a
// well-formed value ("v<number>"), never torn data.
TEST_F(DbTest, ConcurrentReadersDuringWrites) {
  auto db = open(small_options());
  std::atomic<bool> stop{false};
  std::atomic<u64> read_errors{0};

  std::thread writer([&] {
    Xorshift64 rng(1);
    for (int i = 0; i < 600 && !stop.load(); ++i) {
      db->put({}, bench::make_key(rng.next_below(200), 12),
              "v" + std::to_string(i));
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Xorshift64 rng(100 + r);
      std::string value;
      while (!stop.load()) {
        Status s = db->get({}, bench::make_key(rng.next_below(200), 12), &value);
        if (s.is_ok()) {
          if (value.empty() || value[0] != 'v') read_errors.fetch_add(1);
        } else if (!s.is_not_found()) {
          read_errors.fetch_add(1);
        }
      }
    });
  }

  // One scanner thread: iterators must stay coherent snapshots.
  std::thread scanner([&] {
    while (!stop.load()) {
      auto it = db->new_iterator({});
      std::string prev;
      for (it->seek_to_first(); it->valid(); it->next()) {
        std::string key(it->key());
        if (!prev.empty() && key <= prev) read_errors.fetch_add(1);
        prev = key;
      }
    }
  });

  writer.join();
  for (auto& t : readers) t.join();
  scanner.join();
  EXPECT_EQ(read_errors.load(), 0u);
}

// Randomized property: the DB agrees with a std::map reference under a mixed
// workload with small buffers (so flushes and compactions churn constantly),
// including across a reopen.
class DbFuzzTest : public DbTest, public ::testing::WithParamInterface<u64> {};

TEST_P(DbFuzzTest, AgreesWithReferenceMap) {
  auto options = small_options();
  auto db = open(options);
  std::map<std::string, std::string> reference;
  Xorshift64 rng(GetParam());

  for (int op = 0; op < 4000; ++op) {
    std::string key = bench::make_key(rng.next_below(300), 12);
    u64 action = rng.next_below(10);
    if (action < 6) {
      std::string value = "v" + std::to_string(op);
      ASSERT_TRUE(db->put({}, key, value).is_ok());
      reference[key] = value;
    } else if (action < 8) {
      ASSERT_TRUE(db->remove({}, key).is_ok());
      reference.erase(key);
    } else {
      std::string v;
      Status s = db->get({}, key, &v);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(s.is_not_found()) << key;
      } else {
        ASSERT_TRUE(s.is_ok()) << key << " " << s.to_string();
        EXPECT_EQ(v, it->second);
      }
    }
  }

  // Full scan must agree exactly.
  auto it = db->new_iterator({});
  auto ref_it = reference.begin();
  for (it->seek_to_first(); it->valid(); it->next(), ++ref_it) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it->key(), ref_it->first);
    EXPECT_EQ(it->value(), ref_it->second);
  }
  EXPECT_EQ(ref_it, reference.end());

  // And again after a crash-free reopen.
  db.reset();
  db = open(options);
  for (const auto& [k, expect] : reference) {
    std::string v;
    ASSERT_TRUE(db->get({}, k, &v).is_ok()) << k;
    EXPECT_EQ(v, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbFuzzTest, ::testing::Values(1, 2, 3, 42, 1234));

// --- db_bench driver ---------------------------------------------------------

TEST_F(DbTest, BenchFillAndReadRandom) {
  auto db = open(small_options());
  bench::BenchConfig cfg;
  cfg.num_ops = 2000;
  cfg.key_space = 1000;
  cfg.per_op_stats = true;
  auto fill = bench::run_fill_random(*db, cfg);
  EXPECT_EQ(fill.writes, 2000u);
  EXPECT_GT(fill.ops_per_sec, 0.0);
  EXPECT_EQ(fill.latency.count(), 2000u);

  auto read = bench::run_read_random(*db, cfg);
  EXPECT_EQ(read.reads, 2000u);
  EXPECT_GT(read.found, 1000u);  // most keys exist after the random fill
}

TEST_F(DbTest, BenchReadRandomWriteRandomMix) {
  auto db = open(small_options());
  bench::BenchConfig cfg;
  cfg.num_ops = 1000;
  cfg.key_space = 500;
  cfg.read_fraction = 0.8;
  bench::run_fill_random(*db, cfg);
  auto mixed = bench::run_read_random_write_random(*db, cfg);
  EXPECT_EQ(mixed.reads + mixed.writes, 1000u);
  // 80/20 split within generous tolerance.
  EXPECT_GT(mixed.reads, 700u);
  EXPECT_LT(mixed.reads, 900u);
}

TEST_F(DbTest, BenchReadSeqVisitsEveryLiveKey) {
  auto db = open(small_options());
  bench::BenchConfig cfg;
  cfg.num_ops = 500;
  cfg.key_space = 500;
  bench::run_fill_random(*db, cfg);
  // Count distinct live keys via iterator, then compare with readseq.
  usize live = 0;
  {
    auto it = db->new_iterator({});
    for (it->seek_to_first(); it->valid(); it->next()) ++live;
  }
  auto seq = bench::run_read_seq(*db, cfg);
  EXPECT_EQ(seq.reads, live);
  EXPECT_EQ(seq.found, live);
}

TEST_F(DbTest, BenchOverwriteKeepsKeySpace) {
  auto db = open(small_options());
  bench::BenchConfig cfg;
  cfg.num_ops = 800;
  cfg.key_space = 100;
  bench::run_fill_random(*db, cfg);
  auto over = bench::run_overwrite(*db, cfg);
  EXPECT_EQ(over.writes, 800u);
  auto it = db->new_iterator({});
  usize live = 0;
  for (it->seek_to_first(); it->valid(); it->next()) ++live;
  EXPECT_LE(live, 100u);  // overwrites never grow the key space
}

TEST_F(DbTest, BenchDeleteRandomRemovesKeys) {
  auto db = open(small_options());
  bench::BenchConfig cfg;
  cfg.num_ops = 300;
  cfg.key_space = 300;
  bench::run_fill_random(*db, cfg);
  auto del = bench::run_delete_random(*db, cfg);
  EXPECT_EQ(del.writes, 300u);
  EXPECT_GT(del.found, 0u);
  // Deleted keys must stay gone through a compaction.
  ASSERT_TRUE(db->compact_all().is_ok());
  auto seq = bench::run_read_seq(*db, cfg);
  EXPECT_LT(seq.reads, 300u);
}

TEST_F(DbTest, BenchReadMissingFindsNothing) {
  auto db = open(small_options());
  bench::BenchConfig cfg;
  cfg.num_ops = 500;
  cfg.key_space = 500;
  bench::run_fill_random(*db, cfg);
  ASSERT_TRUE(db->compact_all().is_ok());
  auto missing = bench::run_read_missing(*db, cfg);
  EXPECT_EQ(missing.found, 0u);
  EXPECT_EQ(missing.reads, 500u);
}

TEST_F(DbTest, BenchMultithreadedMixIsConsistent) {
  auto db = open(small_options());
  bench::BenchConfig cfg;
  cfg.num_ops = 1200;
  cfg.key_space = 400;
  cfg.threads = 4;
  bench::run_fill_random(*db, cfg);
  auto mt = bench::run_read_random_write_random_mt(*db, cfg);
  EXPECT_EQ(mt.ops, 1200u);
  EXPECT_GT(mt.reads, 800u);   // ~80% read mix across workers
  EXPECT_LT(mt.reads, 1100u);
  EXPECT_EQ(mt.latency.count(), 1200u);  // per-thread Stats merged
  // The DB survived concurrent traffic: full scan still coherent.
  auto it = db->new_iterator({});
  std::string prev;
  for (it->seek_to_first(); it->valid(); it->next()) {
    std::string key(it->key());
    EXPECT_GT(key, prev);
    prev = key;
  }
}

TEST_F(DbTest, MultiGetConsistentSnapshot) {
  auto db = open(small_options());
  db->put({}, "a", "1");
  db->put({}, "b", "2");
  db->remove({}, "a");
  ASSERT_TRUE(db->compact_all().is_ok());
  db->put({}, "c", "3");  // memtable

  std::vector<std::string_view> keys{"a", "b", "c", "missing"};
  std::vector<std::string> values;
  auto statuses = db->multi_get({}, keys, &values);
  ASSERT_EQ(statuses.size(), 4u);
  EXPECT_TRUE(statuses[0].is_not_found());
  ASSERT_TRUE(statuses[1].is_ok());
  EXPECT_EQ(values[1], "2");
  ASSERT_TRUE(statuses[2].is_ok());
  EXPECT_EQ(values[2], "3");
  EXPECT_TRUE(statuses[3].is_not_found());
}

TEST_F(DbTest, CompressedDbRoundTripsThroughCompaction) {
  auto options = small_options();
  options.compress_blocks = true;
  auto db = open(options);
  std::map<std::string, std::string> reference;
  Xorshift64 rng(77);
  for (int i = 0; i < 3000; ++i) {
    std::string k = bench::make_key(rng.next_below(500), 16);
    std::string v = "compressible_payload_" + std::to_string(i % 7);
    db->put({}, k, v);
    reference[k] = v;
  }
  ASSERT_TRUE(db->compact_all().is_ok());
  std::string v;
  for (const auto& [k, expect] : reference) {
    ASSERT_TRUE(db->get({}, k, &v).is_ok()) << k;
    EXPECT_EQ(v, expect);
  }
  // Reopen: compressed tables reload and decompress.
  db.reset();
  db = open(options);
  for (const auto& [k, expect] : reference) {
    ASSERT_TRUE(db->get({}, k, &v).is_ok()) << k;
    EXPECT_EQ(v, expect);
  }
}

TEST_F(DbTest, DebugStringShowsLevels) {
  auto db = open(small_options());
  for (int i = 0; i < 2000; ++i) {
    db->put({}, bench::make_key(static_cast<u64>(i), 16), "value");
  }
  std::string s = db->debug_string();
  EXPECT_NE(s.find("L0"), std::string::npos);
  EXPECT_NE(s.find("memtable:"), std::string::npos);
  EXPECT_NE(s.find("seq 2000"), std::string::npos);
}

TEST(BenchKey, Format) {
  EXPECT_EQ(bench::make_key(7, 8), "00000007");
  EXPECT_EQ(bench::make_key(123456789, 4), "123456789");  // never truncates
}

TEST(BenchRandomGenerator, SlicesHaveRequestedSize) {
  bench::RandomGenerator gen(1, 4096);
  auto a = gen.generate(100);
  EXPECT_EQ(a.size(), 100u);
  auto b = gen.generate(100);
  EXPECT_EQ(b.size(), 100u);
  // Wraps rather than running off the buffer.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.generate(333).size(), 333u);
}

TEST(BenchStats, CountsOpsAndLatency) {
  bench::Stats stats;
  for (int i = 0; i < 5; ++i) {
    stats.start();
    stats.finished_single_op();
  }
  EXPECT_EQ(stats.ops(), 5u);
  EXPECT_EQ(stats.latency().count(), 5u);
}

}  // namespace
}  // namespace teeperf::kvs
