// Property tests for the mergeable profile algebra (analyzer/mprof.h,
// DESIGN.md §12) plus fail-closed loader coverage:
//
//  - Partition property: split one session's threads into random parts,
//    analyze each part alone, merge the parts in shuffled orders and random
//    tree groupings — every merge lands on the byte-identical aggregate,
//    and its methods/edges/stacks/stats equal the whole-session profile.
//  - Algebra laws held directly: associativity, commutativity, and the
//    empty profile as identity.
//  - Canonical serialization: save(load(save(x))) == save(x).
//  - Hostile inputs: every strict prefix and every single bit flip of a
//    valid .mprof rejects; semantically impossible payloads behind a valid
//    CRC frame (zero counts, unsorted keys, exclusive > inclusive, trailing
//    bytes, ...) reject; merges that would overflow u64 counters fail
//    closed and leave the target untouched.
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer/mprof.h"
#include "analyzer/profile.h"
#include "common/crc32c.h"
#include "core/log_format.h"

namespace teeperf {
namespace {

using analyzer::MergeableProfile;
using analyzer::MprofEdgeKey;
using analyzer::MprofFrame;
using analyzer::MprofMethod;
using analyzer::Profile;

// Deterministic xorshift64: the partition/shuffle choices must replay
// identically run to run, or a failure would not reproduce.
struct Rng {
  u64 s;
  u64 next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  u64 below(u64 n) { return n ? next() % n : 0; }
};

constexpr u64 kThreads = 8;

struct Step {
  EventKind kind;
  u64 addr;
  u64 tid;
  u64 counter;
};

// One deterministic multi-thread session with shared methods across threads
// (so merged min/max aggregation is exercised) and deliberate defects: a
// mismatched return, a stray return, and an unterminated call. Counters are
// per-thread, so any thread subset of the script is itself a valid stream.
std::vector<Step> scripted_steps() {
  std::vector<Step> steps;
  u64 counters[kThreads];
  for (u64 t = 0; t < kThreads; ++t) counters[t] = 100 + t;
  for (u64 rep = 0; rep < 30; ++rep) {
    for (u64 tid = 0; tid < kThreads; ++tid) {
      u64& c = counters[tid];
      // Inner durations vary per (rep, tid) so min != max per method.
      u64 step = 1 + (rep + tid) % 5;
      u64 base = 0x1000 * (tid % 3 + 1);
      steps.push_back({EventKind::kCall, base, tid, c += step});
      steps.push_back({EventKind::kCall, base + 1, tid, c += step});
      steps.push_back({EventKind::kCall, 0x5000, tid, c += step});
      steps.push_back({EventKind::kReturn, 0x5000, tid, c += step});
      steps.push_back({EventKind::kReturn, base + 1, tid, c += step});
      if (rep == 10 && tid == 3) {
        // Not on the stack while `base` still is: a mismatched return.
        steps.push_back({EventKind::kReturn, 0xdead, tid, c += step});
      }
      steps.push_back({EventKind::kReturn, base, tid, c += step});
      if (rep == 20 && tid == 4) {
        // Empty stack: a stray return.
        steps.push_back({EventKind::kReturn, 0xbeef, tid, c += step});
      }
    }
  }
  // Left open at end of log: an incomplete invocation.
  steps.push_back({EventKind::kCall, 0x7777, 5, counters[5] += 3});
  return steps;
}

bool contains(const std::vector<u64>& tids, u64 tid) {
  for (u64 t : tids) {
    if (t == tid) return true;
  }
  return false;
}

// Analyzes only the scripted steps belonging to `tids` — thread granularity
// is the finest partition the merge property can hold at, because a call
// stack never spans two threads but always spans its thread's entries.
MergeableProfile mprof_of(const std::vector<u64>& tids) {
  std::vector<u8> buf(ProfileLog::bytes_for(8192, 4));
  ProfileLog log;
  EXPECT_TRUE(log.init(buf.data(), buf.size(), 1,
                       log_flags::kActive | log_flags::kMultithread, 4));
  LogBatch batches[kThreads];
  for (const Step& s : scripted_steps()) {
    if (!contains(tids, s.tid)) continue;
    EXPECT_TRUE(batches[s.tid].record(log, s.kind, s.addr, s.tid, s.counter));
  }
  for (LogBatch& b : batches) EXPECT_TRUE(b.flush(log));
  return MergeableProfile::from_profile(Profile::from_log(log, {}, 1.0));
}

std::vector<u64> all_threads() {
  std::vector<u64> tids;
  for (u64 t = 0; t < kThreads; ++t) tids.push_back(t);
  return tids;
}

// ---------------------------------------------------------- merge algebra

TEST(Mprof, PartitionMergeEqualsWhole) {
  MergeableProfile whole = mprof_of(all_threads());
  ASSERT_FALSE(whole.empty());
  ASSERT_GT(whole.stats.mismatched_returns, 0u);  // the defects are in play
  ASSERT_GT(whole.stats.stray_returns, 0u);
  ASSERT_GT(whole.stats.incomplete, 0u);
  Rng rng{0x9e3779b97f4a7c15ull};

  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE(trial);
    // Random partition of the thread set into up to 2..7 parts.
    u64 k = 2 + rng.below(6);
    std::vector<std::vector<u64>> groups(k);
    for (u64 tid = 0; tid < kThreads; ++tid) {
      groups[rng.below(k)].push_back(tid);
    }
    std::vector<MergeableProfile> parts;
    for (const std::vector<u64>& g : groups) {
      if (!g.empty()) parts.push_back(mprof_of(g));
    }

    std::string first_bytes;
    for (int order = 0; order < 3; ++order) {
      SCOPED_TRACE(order);
      std::vector<MergeableProfile> pool = parts;
      for (usize i = pool.size(); i > 1; --i) {
        std::swap(pool[i - 1], pool[rng.below(i)]);
      }
      MergeableProfile acc;
      if (order == 2) {
        // Random tree grouping: repeatedly merge two random pool elements.
        while (pool.size() > 1) {
          usize a = static_cast<usize>(rng.below(pool.size()));
          MergeableProfile lhs = std::move(pool[a]);
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(a));
          usize b = static_cast<usize>(rng.below(pool.size()));
          ASSERT_TRUE(lhs.merge(pool[b]));
          pool[b] = std::move(lhs);
        }
        acc = std::move(pool[0]);
      } else {
        // Left fold in shuffled order.
        for (const MergeableProfile& m : pool) ASSERT_TRUE(acc.merge(m));
      }

      std::string bytes = acc.save();
      if (order == 0) {
        first_bytes = bytes;
      } else {
        EXPECT_EQ(bytes, first_bytes) << "merge order changed the aggregate";
      }
      // The merged partition equals the whole session in every aggregate;
      // only `sessions` records how many leaves were folded in.
      EXPECT_EQ(acc.sessions, parts.size());
      EXPECT_EQ(acc.methods, whole.methods);
      EXPECT_EQ(acc.edges, whole.edges);
      EXPECT_EQ(acc.stacks, whole.stacks);
      EXPECT_EQ(acc.stats, whole.stats);
      EXPECT_EQ(acc.ns_per_tick, whole.ns_per_tick);
    }
  }
}

TEST(Mprof, MergeAssociativeAndCommutative) {
  MergeableProfile a = mprof_of({0, 1, 2});
  MergeableProfile b = mprof_of({3, 4});
  MergeableProfile c = mprof_of({5, 6, 7});

  MergeableProfile ab_c = a;
  ASSERT_TRUE(ab_c.merge(b));
  ASSERT_TRUE(ab_c.merge(c));

  MergeableProfile bc = b;
  ASSERT_TRUE(bc.merge(c));
  MergeableProfile a_bc = a;
  ASSERT_TRUE(a_bc.merge(bc));

  MergeableProfile cba = c;
  ASSERT_TRUE(cba.merge(b));
  ASSERT_TRUE(cba.merge(a));

  EXPECT_EQ(ab_c.save(), a_bc.save());
  EXPECT_EQ(ab_c.save(), cba.save());
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, cba);
}

TEST(Mprof, EmptyProfileIsMergeIdentity) {
  MergeableProfile a = mprof_of({0, 3, 6});
  std::string a_bytes = a.save();
  MergeableProfile empty;
  EXPECT_TRUE(empty.empty());

  MergeableProfile right = a;
  ASSERT_TRUE(right.merge(MergeableProfile{}));
  EXPECT_EQ(right.save(), a_bytes);

  MergeableProfile left;
  ASSERT_TRUE(left.merge(a));
  EXPECT_EQ(left.save(), a_bytes);

  MergeableProfile both;
  ASSERT_TRUE(both.merge(MergeableProfile{}));
  EXPECT_EQ(both.save(), MergeableProfile{}.save());
  EXPECT_TRUE(both.empty());
}

// ------------------------------------------------- canonical serialization

TEST(Mprof, SaveLoadRoundTripIsCanonical) {
  for (const MergeableProfile& m :
       {mprof_of(all_threads()), mprof_of({2}), MergeableProfile{}}) {
    std::string bytes = m.save();
    std::string err;
    auto loaded = MergeableProfile::load_bytes(bytes, &err);
    ASSERT_TRUE(loaded.has_value()) << err;
    EXPECT_EQ(*loaded, m);
    EXPECT_EQ(loaded->save(), bytes);  // save(load(x)) == x
  }
}

TEST(Mprof, FoldedMatchesStacksMap) {
  MergeableProfile m = mprof_of(all_threads());
  std::string folded = m.folded();
  ASSERT_FALSE(folded.empty());
  usize lines = 0;
  for (char ch : folded) lines += ch == '\n';
  EXPECT_EQ(lines, m.stacks.size());
  EXPECT_NE(folded.find("0x5000"), std::string::npos);
}

// ------------------------------------------------------- hostile loaders

TEST(Mprof, EveryTruncationRejects) {
  std::string bytes = mprof_of({0, 1}).save();
  for (usize len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        MergeableProfile::load_bytes(std::string_view(bytes.data(), len)))
        << "accepted a " << len << "-byte prefix of " << bytes.size();
  }
}

TEST(Mprof, EverySingleBitFlipRejects) {
  std::string bytes = mprof_of({0, 1}).save();
  for (usize i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ (1 << (i % 8)));
    EXPECT_FALSE(MergeableProfile::load_bytes(bad))
        << "accepted a bit flip at byte " << i;
  }
}

// The loader's CRC frame stops accidental corruption; the record validation
// behind it stops *adversarial* payloads with correct CRCs. These helpers
// build such payloads: arbitrary record bytes behind a freshly computed
// frame.
void put_u64(std::string& out, u64 v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_str(std::string& out, const std::string& s) {
  u32 n = static_cast<u32>(s.size());
  out.append(reinterpret_cast<const char*>(&n), sizeof(n));
  out.append(s);
}

std::string payload_header(u64 methods, u64 edges, u64 stacks,
                           double ns_per_tick = 0.0) {
  std::string p;
  put_u64(p, methods);
  put_u64(p, edges);
  put_u64(p, stacks);
  put_u64(p, 1);  // sessions
  put_f64(p, ns_per_tick);
  for (int i = 0; i < 7; ++i) put_u64(p, 0);  // stats
  return p;
}

void put_method(std::string& p, const std::string& name, u64 count, u64 incl,
                u64 excl, u64 mn, u64 mx) {
  put_str(p, name);
  put_u64(p, 1);  // id
  put_u64(p, count);
  put_u64(p, incl);
  put_u64(p, excl);
  put_u64(p, mn);
  put_u64(p, mx);
}

void put_edge(std::string& p, const std::string& caller,
              const std::string& callee, u8 from_root, u64 count, u64 incl) {
  put_str(p, caller);
  put_str(p, callee);
  p.push_back(static_cast<char>(from_root));
  put_u64(p, count);
  put_u64(p, incl);
}

std::string frame(const std::string& payload) {
  MprofFrame f;
  f.magic = analyzer::kMprofMagic;
  f.version = analyzer::kMprofVersion;
  f.payload_bytes = payload.size();
  f.payload_crc = crc32c_mask(crc32c(payload.data(), payload.size()));
  f.header_crc = crc32c_mask(crc32c(&f, sizeof(MprofFrame) - 2 * sizeof(u32)));
  std::string out(reinterpret_cast<const char*>(&f), sizeof(MprofFrame));
  out += payload;
  return out;
}

void expect_reject(const std::string& payload, const char* why_expected) {
  std::string err;
  auto m = MergeableProfile::load_bytes(frame(payload), &err);
  EXPECT_FALSE(m.has_value()) << "accepted payload expected to fail with: "
                              << why_expected;
  if (!m) {
    EXPECT_EQ(err, why_expected);
  }
}

TEST(Mprof, HostilePayloadsBehindValidFramesReject) {
  {
    // Control: the helpers produce loader-accepted bytes for sane input.
    std::string p = payload_header(1, 1, 1);
    put_method(p, "f", 2, 10, 6, 3, 7);
    put_edge(p, "", "f", 1, 2, 10);
    put_str(p, "f");
    put_u64(p, 6);
    std::string err;
    auto ok = MergeableProfile::load_bytes(frame(p), &err);
    ASSERT_TRUE(ok.has_value()) << err;
    EXPECT_EQ(ok->save(), frame(p));  // and canonically so
  }
  {
    // A record count no payload could hold loops forever if trusted.
    expect_reject(payload_header(u64{1} << 60, 0, 0),
                  "record count exceeds payload");
  }
  {
    std::string p = payload_header(1, 0, 0);
    put_method(p, "f", 0, 10, 6, 3, 7);
    expect_reject(p, "method with zero count");
  }
  {
    std::string p = payload_header(1, 0, 0);
    put_method(p, "", 2, 10, 6, 3, 7);
    expect_reject(p, "empty method name");
  }
  {
    std::string p = payload_header(2, 0, 0);
    put_method(p, "b", 2, 10, 6, 3, 7);
    put_method(p, "a", 2, 10, 6, 3, 7);
    expect_reject(p, "methods not strictly sorted");
  }
  {
    std::string p = payload_header(2, 0, 0);
    put_method(p, "a", 2, 10, 6, 3, 7);
    put_method(p, "a", 2, 10, 6, 3, 7);  // duplicate key
    expect_reject(p, "methods not strictly sorted");
  }
  {
    std::string p = payload_header(1, 0, 0);
    put_method(p, "f", 2, 10, 11, 3, 7);
    expect_reject(p, "exclusive exceeds inclusive");
  }
  {
    std::string p = payload_header(1, 0, 0);
    put_method(p, "f", 2, 10, 6, 8, 7);
    expect_reject(p, "min exceeds max");
  }
  {
    std::string p = payload_header(1, 0, 0);
    put_method(p, "f", 2, 10, 6, 3, 11);
    expect_reject(p, "max exceeds inclusive total");
  }
  {
    // from_root set but a caller named: the two encodings of "root edge"
    // must never diverge or merges would split the same edge in two.
    std::string p = payload_header(0, 1, 0);
    put_edge(p, "x", "f", 1, 2, 10);
    expect_reject(p, "root flag disagrees with caller");
  }
  {
    std::string p = payload_header(0, 1, 0);
    put_edge(p, "", "f", 0, 2, 10);  // root encoded only by the empty caller
    expect_reject(p, "root flag disagrees with caller");
  }
  {
    std::string p = payload_header(0, 1, 0);
    put_edge(p, "", "", 1, 2, 10);
    expect_reject(p, "empty callee name");
  }
  {
    std::string p = payload_header(0, 1, 0);
    put_edge(p, "", "f", 2, 2, 10);
    expect_reject(p, "non-boolean from_root");
  }
  {
    std::string p = payload_header(0, 1, 0);
    put_edge(p, "", "f", 1, 0, 10);
    expect_reject(p, "edge with zero count");
  }
  {
    std::string p = payload_header(0, 0, 1);
    put_str(p, "f;g");
    put_u64(p, 0);
    expect_reject(p, "stack with zero ticks");
  }
  {
    std::string p = payload_header(0, 0, 2);
    put_str(p, "f;g");
    put_u64(p, 3);
    put_str(p, "f;a");
    put_u64(p, 3);
    expect_reject(p, "stacks not strictly sorted");
  }
  {
    std::string p = payload_header(0, 0, 0);
    p += "extra";
    expect_reject(p, "trailing bytes after records");
  }
  {
    expect_reject(payload_header(0, 0, 0,
                                 std::numeric_limits<double>::quiet_NaN()),
                  "invalid tick rate");
  }
  {
    expect_reject(payload_header(0, 0, 0, -1.0), "invalid tick rate");
  }
}

TEST(Mprof, OverflowingMergeFailsClosedLeavingTargetUntouched) {
  // Two .mprofs that are individually loader-valid but whose counters sum
  // past 2^64. A wrapping merge would turn a fleet's biggest hotspot into a
  // small lie; merge() must refuse and leave the target byte-identical.
  MergeableProfile big;
  big.sessions = 1;
  big.methods["hot"] = MprofMethod{/*id=*/1, /*count=*/1,
                                   /*inclusive_total=*/~0ull,
                                   /*exclusive_total=*/~0ull,
                                   /*min_inclusive=*/5, /*max_inclusive=*/5};
  big.edges[MprofEdgeKey{"", "hot", true}] = {1, ~0ull};
  big.stacks["hot"] = ~0ull;
  big.stats.entries = ~0ull;

  // The hostile pair survives the loader individually...
  std::string bytes = big.save();
  std::string err;
  auto loaded = MergeableProfile::load_bytes(bytes, &err);
  ASSERT_TRUE(loaded.has_value()) << err;

  // ...but merging them must fail closed.
  MergeableProfile target = big;
  EXPECT_FALSE(target.merge(*loaded));
  EXPECT_EQ(target.save(), bytes) << "failed merge mutated the target";

  // Each overflow channel individually: method totals, edge totals, stack
  // ticks, stats counters, and the sessions counter itself.
  MergeableProfile stacks_only;
  stacks_only.stacks["p"] = ~0ull;
  MergeableProfile t2 = stacks_only;
  EXPECT_FALSE(t2.merge(stacks_only));
  EXPECT_EQ(t2, stacks_only);

  MergeableProfile stats_only;
  stats_only.stats.thread_count = ~0ull;
  MergeableProfile t3 = stats_only;
  EXPECT_FALSE(t3.merge(stats_only));
  EXPECT_EQ(t3, stats_only);

  MergeableProfile sessions_only;
  sessions_only.sessions = ~0ull;
  MergeableProfile t4 = sessions_only;
  EXPECT_FALSE(t4.merge(sessions_only));
  EXPECT_EQ(t4, sessions_only);

  // A small, sane merge into the same target still works afterwards.
  MergeableProfile sane = mprof_of({0});
  MergeableProfile t5 = mprof_of({1});
  EXPECT_TRUE(t5.merge(sane));
  EXPECT_EQ(t5.sessions, 2u);
}

TEST(Mprof, NsPerTickReconciliation) {
  MergeableProfile zero;  // unset rate
  MergeableProfile slow;
  slow.ns_per_tick = 2.5;
  MergeableProfile fast;
  fast.ns_per_tick = 4.0;

  MergeableProfile a = zero;
  ASSERT_TRUE(a.merge(slow));
  EXPECT_EQ(a.ns_per_tick, 2.5);  // either zero → the other

  MergeableProfile b = slow;
  ASSERT_TRUE(b.merge(zero));
  EXPECT_EQ(b.ns_per_tick, 2.5);

  MergeableProfile c = slow;
  ASSERT_TRUE(c.merge(fast));
  MergeableProfile d = fast;
  ASSERT_TRUE(d.merge(slow));
  EXPECT_EQ(c.ns_per_tick, 4.0);  // both set → max, either order
  EXPECT_EQ(d.ns_per_tick, 4.0);
}

}  // namespace
}  // namespace teeperf
