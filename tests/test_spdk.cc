// Tests for the SPDK substrate: tick chain (and its trap behaviour inside
// enclaves), cached ticks/pid optimizations, NVMe device + qpair I/O
// correctness, env init, and short perf-tool runs.
#include <gtest/gtest.h>

#include <cstring>

#include "spdk/env.h"
#include "spdk/nvme.h"
#include "spdk/perf_tool.h"
#include "spdk/ticks.h"
#include "tee/enclave.h"
#include "tee/sysapi.h"

namespace teeperf::spdk {
namespace {

using tee::CostModel;
using tee::Enclave;

TEST(Ticks, Monotone) {
  u64 a = get_ticks();
  u64 b = get_ticks();
  EXPECT_GE(b, a);
}

TEST(Ticks, HzPlausible) {
  u64 hz = get_ticks_hz();
  EXPECT_GT(hz, 1'000'000u);  // at least 1 MHz for any real time source
}

TEST(Ticks, TrapsInsideEnclave) {
  CostModel cm = CostModel::zero();
  cm.rdtsc_trap_ns = 100;  // SGX-like: rdtsc is illegal inside
  Enclave e(cm);
  u64 before = e.counters().rdtsc_traps.load();
  e.ecall([] { get_ticks(); });
  EXPECT_EQ(e.counters().rdtsc_traps.load(), before + 1);
}

TEST(CachedTicksTest, CorrectsEveryInterval) {
  CachedTicks cached(10);
  for (int i = 0; i < 100; ++i) cached.get();
  EXPECT_EQ(cached.calls(), 100u);
  EXPECT_EQ(cached.corrections(), 10u);
}

TEST(CachedTicksTest, MonotoneAndRoughlyTracksRealTicks) {
  CachedTicks cached(16);
  u64 prev = cached.get();
  for (int i = 0; i < 1000; ++i) {
    u64 now = cached.get();
    EXPECT_GE(now, prev);
    prev = now;
  }
  // After many corrections, the cached clock must be within 50% of real.
  u64 real = get_ticks();
  u64 approx = cached.get();
  double rel = std::abs(static_cast<double>(real) - static_cast<double>(approx)) /
               static_cast<double>(real);
  EXPECT_LT(rel, 0.5);
}

TEST(CachedTicksTest, ReducesTrapsInsideEnclave) {
  CostModel cm = CostModel::zero();
  cm.rdtsc_trap_ns = 100;
  Enclave e(cm);
  e.ecall([&] {
    CachedTicks cached(64);
    for (int i = 0; i < 640; ++i) cached.get();
  });
  // 640 calls at interval 64 → 10 real reads, not 640.
  EXPECT_EQ(e.counters().rdtsc_traps.load(), 10u);
}

// --- env --------------------------------------------------------------------

TEST(Env, InitIsIdempotent) {
  env_reset_for_test();
  EXPECT_FALSE(env_initialized());
  EnvConfig cfg;
  cfg.hugepage_count = 2;
  cfg.per_hugepage_map_ns = 1000;
  env_init(cfg);
  EXPECT_TRUE(env_initialized());
  env_init(cfg);  // no crash, still initialized
  EXPECT_TRUE(env_initialized());
}

// --- nvme device + qpair ------------------------------------------------------

class NvmeTest : public ::testing::Test {
 protected:
  NvmeTest() : device_(make_config()), qpair_(&device_, SpdkMode{}) {
    device_.initialize();
  }

  static NvmeDeviceConfig make_config() {
    NvmeDeviceConfig cfg;
    cfg.block_count = 64;
    cfg.completion_latency_ns = 0;  // complete on next poll
    cfg.submit_cost_ns = 0;
    cfg.complete_cost_ns = 0;
    return cfg;
  }

  void pump_until_complete() {
    while (qpair_.outstanding() > 0) qpair_.process_completions();
  }

  NvmeDevice device_;
  NvmeQPair qpair_;
};

TEST_F(NvmeTest, WriteThenReadRoundTrip) {
  std::vector<u8> wbuf(4096), rbuf(4096, 0);
  for (usize i = 0; i < wbuf.size(); ++i) wbuf[i] = static_cast<u8>(i * 7);

  bool write_done = false;
  ASSERT_TRUE(qpair_.write(wbuf.data(), 5, 1,
                           [](bool ok, void* ctx) {
                             EXPECT_TRUE(ok);
                             *static_cast<bool*>(ctx) = true;
                           },
                           &write_done));
  pump_until_complete();
  EXPECT_TRUE(write_done);

  bool read_done = false;
  ASSERT_TRUE(qpair_.read(rbuf.data(), 5, 1,
                          [](bool ok, void* ctx) {
                            EXPECT_TRUE(ok);
                            *static_cast<bool*>(ctx) = true;
                          },
                          &read_done));
  pump_until_complete();
  EXPECT_TRUE(read_done);
  EXPECT_EQ(std::memcmp(wbuf.data(), rbuf.data(), 4096), 0);
}

TEST_F(NvmeTest, MultiBlockIo) {
  std::vector<u8> wbuf(4 * 4096, 0xab), rbuf(4 * 4096, 0);
  qpair_.write(wbuf.data(), 10, 4, nullptr, nullptr);
  pump_until_complete();
  qpair_.read(rbuf.data(), 10, 4, nullptr, nullptr);
  pump_until_complete();
  EXPECT_EQ(wbuf, rbuf);
}

TEST_F(NvmeTest, LbaWrapsNamespace) {
  std::vector<u8> buf(4096, 0x11);
  qpair_.write(buf.data(), 64 + 3, 1, nullptr, nullptr);  // wraps to lba 3
  pump_until_complete();
  EXPECT_EQ(device_.block_data(3)[0], 0x11);
}

TEST_F(NvmeTest, RejectsInvalidArguments) {
  EXPECT_FALSE(qpair_.read(nullptr, 0, 1, nullptr, nullptr));
  std::vector<u8> buf(4096);
  EXPECT_FALSE(qpair_.read(buf.data(), 0, 0, nullptr, nullptr));
}

TEST_F(NvmeTest, RequiresInitializedDevice) {
  NvmeDevice raw(make_config());
  NvmeQPair qp(&raw, SpdkMode{});
  std::vector<u8> buf(4096);
  EXPECT_FALSE(qp.read(buf.data(), 0, 1, nullptr, nullptr));
}

TEST_F(NvmeTest, QueueDepthBounded) {
  NvmeDeviceConfig cfg = make_config();
  cfg.max_queue_depth = 4;
  cfg.completion_latency_ns = 1'000'000'000;  // nothing completes during test
  NvmeDevice dev(cfg);
  dev.initialize();
  NvmeQPair qp(&dev, SpdkMode{});
  std::vector<u8> buf(4096);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(qp.read(buf.data(), 0, 1, nullptr, nullptr));
  }
  EXPECT_FALSE(qp.read(buf.data(), 0, 1, nullptr, nullptr));  // pool exhausted
  EXPECT_EQ(qp.outstanding(), 4u);
}

TEST_F(NvmeTest, CompletionLatencyHonored) {
  NvmeDeviceConfig cfg = make_config();
  cfg.completion_latency_ns = 50'000'000;  // 50 ms
  NvmeDevice dev(cfg);
  dev.initialize();
  NvmeQPair qp(&dev, SpdkMode{});
  std::vector<u8> buf(4096);
  qp.read(buf.data(), 0, 1, nullptr, nullptr);
  EXPECT_EQ(qp.process_completions(), 0u);  // immediately: not ready
  EXPECT_EQ(qp.outstanding(), 1u);
  while (qp.outstanding()) qp.process_completions();
  EXPECT_EQ(qp.completed(), 1u);
}

TEST_F(NvmeTest, CountersTrackTraffic) {
  std::vector<u8> buf(4096);
  for (int i = 0; i < 10; ++i) qpair_.read(buf.data(), 0, 1, nullptr, nullptr);
  pump_until_complete();
  EXPECT_EQ(qpair_.submitted(), 10u);
  EXPECT_EQ(qpair_.completed(), 10u);
  EXPECT_EQ(qpair_.outstanding(), 0u);
}

TEST_F(NvmeTest, PidLookupPerAllocationWithoutCache) {
  auto& traps = tee::sys::thread_trap_counts();
  u64 before = traps.getpid;
  std::vector<u8> buf(4096);
  for (int i = 0; i < 5; ++i) {
    qpair_.read(buf.data(), 0, 1, nullptr, nullptr);
    pump_until_complete();
  }
  EXPECT_EQ(traps.getpid, before + 5);
}

TEST_F(NvmeTest, CachedPidLooksUpOnce) {
  SpdkMode mode;
  mode.cache_pid = true;
  NvmeQPair qp(&device_, mode);
  auto& traps = tee::sys::thread_trap_counts();
  u64 before = traps.getpid;
  std::vector<u8> buf(4096);
  for (int i = 0; i < 5; ++i) {
    qp.read(buf.data(), 0, 1, nullptr, nullptr);
    while (qp.outstanding()) qp.process_completions();
  }
  EXPECT_EQ(traps.getpid, before + 1);
}

// --- perf tool -----------------------------------------------------------------

PerfConfig short_config() {
  PerfConfig cfg;
  cfg.duration_ns = 120'000'000;  // 120 ms
  cfg.queue_depth = 8;
  cfg.lba_space = 1024;
  return cfg;
}

NvmeDeviceConfig fast_device() {
  NvmeDeviceConfig cfg;
  cfg.block_count = 1024;
  cfg.completion_latency_ns = 50'000;
  cfg.submit_cost_ns = 500;
  cfg.complete_cost_ns = 500;
  return cfg;
}

TEST(PerfTool, TicksToUsSane) {
  // One million ticks at any plausible frequency is 100 us .. 10 ms.
  double us = ticks_to_us(1'000'000);
  EXPECT_GT(us, 10.0);
  EXPECT_LT(us, 1e6);
  EXPECT_DOUBLE_EQ(ticks_to_us(0), 0.0);
}

TEST(PerfTool, LatencySummaryFormats) {
  PerfResult r;
  r.latency_ticks.add(1000);
  r.latency_ticks.add(2000);
  std::string s = latency_summary_us(r);
  EXPECT_NE(s.find("lat(us):"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(PerfTool, NativeRunProducesIops) {
  NvmeDevice dev(fast_device());
  auto result = run_perf_tool(dev, short_config(), SpdkMode{});
  EXPECT_GT(result.ios, 100u);
  EXPECT_GT(result.iops, 0.0);
  EXPECT_GT(result.throughput_mib_s, 0.0);
  EXPECT_GT(result.seconds, 0.1);
  // ~80/20 mix.
  double read_frac = static_cast<double>(result.reads) /
                     static_cast<double>(result.reads + result.writes);
  EXPECT_GT(read_frac, 0.7);
  EXPECT_LT(read_frac, 0.9);
  EXPECT_EQ(result.latency_ticks.count(), result.ios);
}

TEST(PerfTool, EnclaveRunSlowerThanNative) {
  NvmeDevice dev(fast_device());
  auto native = run_perf_tool(dev, short_config(), SpdkMode{});

  CostModel cm = CostModel::zero();
  cm.syscall_ocall_ns = 30'000;
  cm.rdtsc_trap_ns = 5'000;
  Enclave enclave(cm);
  NvmeDevice dev2(fast_device());
  auto naive = enclave.ecall(
      [&] { return run_perf_tool(dev2, short_config(), SpdkMode{}); });

  EXPECT_LT(naive.iops, native.iops * 0.5)
      << "trapped getpid/rdtsc must hurt enclave IOPS";
}

TEST(PerfTool, OptimizationsRecoverPerformance) {
  CostModel cm = CostModel::zero();
  cm.syscall_ocall_ns = 30'000;
  cm.rdtsc_trap_ns = 5'000;

  Enclave e1(cm);
  NvmeDevice dev1(fast_device());
  auto naive = e1.ecall(
      [&] { return run_perf_tool(dev1, short_config(), SpdkMode{}); });

  Enclave e2(cm);
  NvmeDevice dev2(fast_device());
  SpdkMode optimized;
  optimized.cache_pid = true;
  optimized.cache_ticks = true;
  auto opt = e2.ecall(
      [&] { return run_perf_tool(dev2, short_config(), optimized); });

  EXPECT_GT(opt.iops, naive.iops * 2.0);
  EXPECT_EQ(opt.pid_lookups, 0u);  // cached path never counts lookups
}

}  // namespace
}  // namespace teeperf::spdk
