// Tests for the sampling-profiler baseline: sample collection, stack
// capture via the runtime shadow stacks, flat-profile views, and the
// exclusive-use contract.
#include <gtest/gtest.h>

#include "common/spin.h"
#include "core/profiler.h"
#include "perfsim/sampler.h"

namespace teeperf::perfsim {
namespace {

class PerfsimTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (runtime::attached()) runtime::detach();
    runtime::reset_thread_for_test();
  }
};

TEST_F(PerfsimTest, CollectsSamplesWhileBurningCpu) {
  SamplerOptions opts;
  opts.frequency_hz = 2000;
  SamplingProfiler sampler(opts);
  ASSERT_TRUE(sampler.start());
  spin_for_ns(300'000'000);  // 300 ms of CPU time
  sampler.stop();
  // ITIMER_PROF counts CPU time and is limited by the kernel tick rate
  // (~250 Hz on HZ=250 kernels); expect a healthy number, not the nominal
  // frequency.
  EXPECT_GT(sampler.sample_count(), 20u);
  EXPECT_EQ(sampler.dropped(), 0u);
}

TEST_F(PerfsimTest, OnlyOneSamplerAtATime) {
  SamplingProfiler a, b;
  ASSERT_TRUE(a.start());
  EXPECT_FALSE(b.start());
  a.stop();
  EXPECT_TRUE(b.start());
  b.stop();
}

TEST_F(PerfsimTest, StopIsIdempotent) {
  SamplingProfiler s;
  ASSERT_TRUE(s.start());
  s.stop();
  s.stop();
  EXPECT_FALSE(s.running());
}

TEST_F(PerfsimTest, CapturesShadowStackFrames) {
  // Attach the runtime in sampling-only mode (no trace log): scopes
  // maintain shadow stacks that the SIGPROF handler snapshots.
  ASSERT_TRUE(runtime::attach(nullptr, CounterMode::kSteadyClock, nullptr));
  u64 hot = SymbolRegistry::instance().intern("perfsim::hot");
  u64 outer = SymbolRegistry::instance().intern("perfsim::outer");

  SamplerOptions opts;
  opts.frequency_hz = 4000;
  SamplingProfiler sampler(opts);
  ASSERT_TRUE(sampler.start());
  {
    Scope o(outer);
    Scope h(hot);
    spin_for_ns(250'000'000);
  }
  sampler.stop();
  runtime::detach();

  ASSERT_GT(sampler.sample_count(), 20u);
  auto leaves = sampler.leaf_counts();
  ASSERT_FALSE(leaves.empty());
  // Nearly every sample must land with `hot` on top of the stack.
  EXPECT_EQ(leaves[0].first, hot);
  auto inclusive = sampler.inclusive_counts();
  bool outer_seen = false;
  for (auto& [id, n] : inclusive) {
    if (id == outer) {
      outer_seen = true;
      EXPECT_GE(n, leaves[0].second);  // outer includes hot samples
    }
  }
  EXPECT_TRUE(outer_seen);
}

TEST_F(PerfsimTest, SamplesDecodeConsistently) {
  ASSERT_TRUE(runtime::attach(nullptr, CounterMode::kSteadyClock, nullptr));
  u64 a = SymbolRegistry::instance().intern("perfsim::frame_a");
  SamplingProfiler sampler;
  ASSERT_TRUE(sampler.start());
  {
    Scope s(a);
    spin_for_ns(150'000'000);
  }
  sampler.stop();
  runtime::detach();

  auto samples = sampler.samples();
  EXPECT_EQ(samples.size(), sampler.sample_count());
  for (const Sample& s : samples) {
    EXPECT_LE(s.depth, 64);
    if (s.depth > 0) EXPECT_NE(s.frames, nullptr);
  }
}

TEST_F(PerfsimTest, NoRuntimeMeansEmptyStacks) {
  // Sampling without an attached runtime still works (overhead baseline for
  // Figure 4): samples carry depth 0.
  SamplingProfiler sampler;
  ASSERT_TRUE(sampler.start());
  spin_for_ns(100'000'000);
  sampler.stop();
  for (const Sample& s : sampler.samples()) EXPECT_EQ(s.depth, 0);
  EXPECT_TRUE(sampler.leaf_counts().empty());
}

TEST_F(PerfsimTest, BufferOverflowCountsDrops) {
  SamplerOptions opts;
  opts.frequency_hz = 10'000;
  opts.max_samples = 8;  // tiny buffer
  SamplingProfiler sampler(opts);
  ASSERT_TRUE(sampler.start());
  spin_for_ns(400'000'000);
  sampler.stop();
  EXPECT_LE(sampler.sample_count(), 8u);
  EXPECT_GT(sampler.dropped(), 0u);
}

}  // namespace
}  // namespace teeperf::perfsim
