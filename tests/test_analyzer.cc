// Tests for the analyzer (stage #3): call-stack reconstruction, timing
// attribution, defect tolerance, method statistics, call edges, folded
// stacks and the query interface.
#include <gtest/gtest.h>

#include <vector>

#include "analyzer/profile.h"
#include "analyzer/query.h"
#include "analyzer/report.h"
#include "core/log_format.h"

namespace teeperf::analyzer {
namespace {

// Builds an in-memory log from (kind, addr, tid, counter) tuples.
class LogBuilder {
 public:
  explicit LogBuilder(u64 capacity = 1024) {
    buf_.resize(ProfileLog::bytes_for(capacity));
    log_.init(buf_.data(), buf_.size(), 1, log_flags::kActive |
                                                log_flags::kRecordCalls |
                                                log_flags::kRecordReturns);
  }

  LogBuilder& call(u64 addr, u64 tid, u64 counter) {
    log_.append(EventKind::kCall, addr, tid, counter);
    return *this;
  }
  LogBuilder& ret(u64 addr, u64 tid, u64 counter) {
    log_.append(EventKind::kReturn, addr, tid, counter);
    return *this;
  }

  Profile profile(std::unordered_map<u64, std::string> symbols = {}) {
    return Profile::from_log(log_, std::move(symbols), 1.0);
  }

 private:
  std::vector<u8> buf_;
  ProfileLog log_;
};

constexpr u64 A = 0x100, B = 0x200, C = 0x300;

TEST(Analyzer, SingleInvocation) {
  Profile p = LogBuilder().call(A, 0, 10).ret(A, 0, 50).profile();
  ASSERT_EQ(p.invocations().size(), 1u);
  const Invocation& inv = p.invocations()[0];
  EXPECT_EQ(inv.method, A);
  EXPECT_EQ(inv.inclusive(), 40u);
  EXPECT_EQ(inv.exclusive(), 40u);
  EXPECT_EQ(inv.depth, 0u);
  EXPECT_EQ(inv.parent, -1);
  EXPECT_TRUE(inv.complete);
  EXPECT_EQ(p.recon_stats().stray_returns, 0u);
}

TEST(Analyzer, NestedExclusiveSubtraction) {
  // A [10..100] calls B [20..60]: A exclusive = 90 - 40 = 50.
  Profile p = LogBuilder()
                  .call(A, 0, 10)
                  .call(B, 0, 20)
                  .ret(B, 0, 60)
                  .ret(A, 0, 100)
                  .profile();
  ASSERT_EQ(p.invocations().size(), 2u);
  const Invocation& a = p.invocations()[0];
  const Invocation& b = p.invocations()[1];
  EXPECT_EQ(a.method, A);
  EXPECT_EQ(a.inclusive(), 90u);
  EXPECT_EQ(a.exclusive(), 50u);
  EXPECT_EQ(a.calls_made, 1u);
  EXPECT_EQ(b.parent, 0);
  EXPECT_EQ(b.depth, 1u);
  EXPECT_EQ(b.inclusive(), 40u);
}

TEST(Analyzer, SiblingsAccumulateInParent) {
  Profile p = LogBuilder()
                  .call(A, 0, 0)
                  .call(B, 0, 10)
                  .ret(B, 0, 20)
                  .call(C, 0, 30)
                  .ret(C, 0, 70)
                  .ret(A, 0, 100)
                  .profile();
  const Invocation& a = p.invocations()[0];
  EXPECT_EQ(a.inclusive(), 100u);
  EXPECT_EQ(a.children, 50u);
  EXPECT_EQ(a.exclusive(), 50u);
  EXPECT_EQ(a.calls_made, 2u);
}

TEST(Analyzer, RecursionDepths) {
  Profile p = LogBuilder()
                  .call(A, 0, 0)
                  .call(A, 0, 10)
                  .call(A, 0, 20)
                  .ret(A, 0, 30)
                  .ret(A, 0, 40)
                  .ret(A, 0, 50)
                  .profile();
  ASSERT_EQ(p.invocations().size(), 3u);
  EXPECT_EQ(p.invocations()[0].depth, 0u);
  EXPECT_EQ(p.invocations()[1].depth, 1u);
  EXPECT_EQ(p.invocations()[2].depth, 2u);
  EXPECT_EQ(p.invocations()[0].exclusive(), 20u);  // 50 - 30 (child incl)
}

TEST(Analyzer, ThreadsReconstructIndependently) {
  Profile p = LogBuilder()
                  .call(A, 0, 0)
                  .call(B, 1, 5)   // interleaved entries from another thread
                  .ret(A, 0, 10)
                  .ret(B, 1, 25)
                  .profile();
  ASSERT_EQ(p.invocations().size(), 2u);
  EXPECT_EQ(p.thread_count(), 2u);
  for (const auto& inv : p.invocations()) {
    EXPECT_EQ(inv.depth, 0u);
    EXPECT_EQ(inv.parent, -1);
  }
}

TEST(Analyzer, StrayReturnCounted) {
  Profile p = LogBuilder().ret(A, 0, 10).call(B, 0, 20).ret(B, 0, 30).profile();
  EXPECT_EQ(p.recon_stats().stray_returns, 1u);
  ASSERT_EQ(p.invocations().size(), 1u);
  EXPECT_EQ(p.invocations()[0].method, B);
}

TEST(Analyzer, MismatchedReturnIgnored) {
  Profile p = LogBuilder()
                  .call(A, 0, 0)
                  .ret(C, 0, 10)  // C was never entered
                  .ret(A, 0, 20)
                  .profile();
  EXPECT_EQ(p.recon_stats().mismatched_returns, 1u);
  ASSERT_EQ(p.invocations().size(), 1u);
  EXPECT_EQ(p.invocations()[0].inclusive(), 20u);
}

TEST(Analyzer, MissingReturnUnwoundToMatch) {
  // A calls B; B's return was dropped (filtering/overflow); A returns.
  Profile p = LogBuilder()
                  .call(A, 0, 0)
                  .call(B, 0, 10)
                  .ret(A, 0, 50)
                  .profile();
  ASSERT_EQ(p.invocations().size(), 2u);
  EXPECT_EQ(p.recon_stats().unwound_frames, 1u);
  // B force-closed at A's return counter.
  EXPECT_EQ(p.invocations()[1].end, 50u);
}

TEST(Analyzer, TruncatedLogClosesOpenFramesIncomplete) {
  Profile p = LogBuilder().call(A, 0, 0).call(B, 0, 30).profile();
  ASSERT_EQ(p.invocations().size(), 2u);
  EXPECT_EQ(p.recon_stats().incomplete, 2u);
  EXPECT_FALSE(p.invocations()[0].complete);
  EXPECT_EQ(p.invocations()[1].end, 30u);  // last observed counter
}

TEST(Analyzer, MethodStatsAggregatesAndSorts) {
  Profile p = LogBuilder()
                  .call(A, 0, 0)
                  .ret(A, 0, 10)
                  .call(A, 0, 20)
                  .ret(A, 0, 40)
                  .call(B, 0, 50)
                  .ret(B, 0, 51)
                  .profile();
  auto stats = p.method_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].method, A);  // 30 ticks exclusive > B's 1
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_EQ(stats[0].inclusive_total, 30u);
  EXPECT_EQ(stats[0].min_inclusive, 10u);
  EXPECT_EQ(stats[0].max_inclusive, 20u);
  EXPECT_DOUBLE_EQ(stats[0].mean_inclusive(), 15.0);
}

TEST(Analyzer, CallEdges) {
  Profile p = LogBuilder()
                  .call(A, 0, 0)
                  .call(B, 0, 1)
                  .ret(B, 0, 2)
                  .call(B, 0, 3)
                  .ret(B, 0, 4)
                  .ret(A, 0, 5)
                  .profile();
  auto edges = p.call_edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].caller, A);
  EXPECT_EQ(edges[0].callee, B);
  EXPECT_EQ(edges[0].count, 2u);
  EXPECT_TRUE(edges[1].from_root);
  EXPECT_EQ(edges[1].callee, A);
}

TEST(Analyzer, FoldedStacksSumToTotalTime) {
  std::unordered_map<u64, std::string> syms{{A, "a"}, {B, "b"}};
  Profile p = LogBuilder()
                  .call(A, 0, 0)
                  .call(B, 0, 20)
                  .ret(B, 0, 80)
                  .ret(A, 0, 100)
                  .profile(syms);
  auto folded = p.folded_stacks();
  ASSERT_EQ(folded.size(), 2u);
  u64 total = 0;
  for (auto& [path, v] : folded) total += v;
  EXPECT_EQ(total, 100u);  // widths add to root wall time
  EXPECT_EQ(folded[0].first, "a");
  EXPECT_EQ(folded[0].second, 40u);
  EXPECT_EQ(folded[1].first, "a;b");
  EXPECT_EQ(folded[1].second, 60u);
}

TEST(Analyzer, HottestStack) {
  std::unordered_map<u64, std::string> syms{{A, "a"}, {B, "b"}};
  Profile p = LogBuilder()
                  .call(A, 0, 0)
                  .call(B, 0, 10)
                  .ret(B, 0, 90)
                  .ret(A, 0, 100)
                  .profile(syms);
  auto [path, ticks] = p.hottest_stack();
  EXPECT_EQ(path, "a;b");
  EXPECT_EQ(ticks, 80u);
}

TEST(Analyzer, HottestStackEmptyProfile) {
  Profile p = LogBuilder().profile();
  EXPECT_EQ(p.hottest_stack().first, "");
  EXPECT_EQ(p.hottest_stack().second, 0u);
}

TEST(Analyzer, NameFallsBackToHex) {
  Profile p = LogBuilder().call(0xdead, 0, 0).ret(0xdead, 0, 1).profile();
  EXPECT_EQ(p.name(0xdead), "0xdead");
}

TEST(Analyzer, EmptyLog) {
  Profile p = LogBuilder().profile();
  EXPECT_TRUE(p.invocations().empty());
  EXPECT_TRUE(p.method_stats().empty());
  EXPECT_TRUE(p.folded_stacks().empty());
}

// ---- query interface --------------------------------------------------------

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() {
    std::unordered_map<u64, std::string> syms{{A, "alpha"}, {B, "beta"}, {C, "gamma"}};
    profile_ = LogBuilder()
                   .call(A, 0, 0)
                   .call(B, 0, 10)
                   .ret(B, 0, 30)
                   .call(B, 0, 40)
                   .ret(B, 0, 45)
                   .ret(A, 0, 100)
                   .call(C, 1, 0)
                   .call(B, 1, 5)
                   .ret(B, 1, 15)
                   .ret(C, 1, 50)
                   .profile(syms);
  }
  Profile profile_ = LogBuilder().profile();
};

TEST_F(QueryTest, CountAll) {
  EXPECT_EQ(InvocationTable(profile_).count(), 5u);
}

TEST_F(QueryTest, WhereMethod) {
  auto t = InvocationTable(profile_).where_method(B);
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.sum_inclusive(), 20u + 5u + 10u);
}

TEST_F(QueryTest, WhereNameContains) {
  EXPECT_EQ(InvocationTable(profile_).where_name_contains("bet").count(), 3u);
  EXPECT_EQ(InvocationTable(profile_).where_name_contains("zzz").count(), 0u);
}

TEST_F(QueryTest, WhereTid) {
  EXPECT_EQ(InvocationTable(profile_).where_tid(1).count(), 2u);
}

TEST_F(QueryTest, WhereDepth) {
  EXPECT_EQ(InvocationTable(profile_).where_depth_between(1, 9).count(), 3u);
}

TEST_F(QueryTest, WhereCalledUnder) {
  // "which B invocations happened underneath C" — the call-history query.
  auto t = InvocationTable(profile_).where_method(B).where_called_under(C);
  ASSERT_EQ(t.count(), 1u);
  EXPECT_EQ(t.row(0).tid, 1u);
}

TEST_F(QueryTest, SortAndTop) {
  auto t = InvocationTable(profile_).sort_by(SortKey::kInclusive).top(2);
  ASSERT_EQ(t.count(), 2u);
  EXPECT_EQ(t.row(0).inclusive(), 100u);
  EXPECT_EQ(t.row(1).inclusive(), 50u);
}

TEST_F(QueryTest, SortAscending) {
  auto t = InvocationTable(profile_).sort_by(SortKey::kInclusive, false);
  EXPECT_EQ(t.row(0).inclusive(), 5u);
}

TEST_F(QueryTest, GroupByMethod) {
  auto groups = InvocationTable(profile_).group_by_method();
  ASSERT_EQ(groups.size(), 3u);
  // alpha: exclusive = 100 - 25 = 75, the largest.
  EXPECT_EQ(groups[0].key, "alpha");
  EXPECT_EQ(groups[0].exclusive_total, 75u);
}

TEST_F(QueryTest, GroupByMethodAndTid) {
  // "which thread called which method how often" (§II-C).
  auto groups = InvocationTable(profile_).where_method(B).group_by_method_and_tid();
  ASSERT_EQ(groups.size(), 2u);
  usize total = 0;
  for (auto& g : groups) total += g.count;
  EXPECT_EQ(total, 3u);
}

TEST_F(QueryTest, GroupByCaller) {
  auto groups = InvocationTable(profile_).where_method(B).group_by_caller();
  ASSERT_EQ(groups.size(), 2u);  // alpha and gamma both call beta
}

TEST_F(QueryTest, MeanAndMax) {
  auto t = InvocationTable(profile_).where_method(B);
  EXPECT_DOUBLE_EQ(t.mean_inclusive(), 35.0 / 3.0);
  EXPECT_EQ(t.max_inclusive(), 20u);
}

TEST_F(QueryTest, ToStringRendersRows) {
  std::string s = InvocationTable(profile_).to_string(3);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST_F(QueryTest, Reports) {
  std::string m = method_report(profile_);
  EXPECT_NE(m.find("alpha"), std::string::npos);
  EXPECT_NE(m.find("excl%"), std::string::npos);
  std::string g = call_graph_report(profile_);
  EXPECT_NE(g.find("<root>"), std::string::npos);
  std::string r = recon_summary(profile_);
  EXPECT_NE(r.find("entries=10"), std::string::npos);
}

}  // namespace
}  // namespace teeperf::analyzer
