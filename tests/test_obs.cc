// Self-telemetry subsystem: lock-free shm metrics registry, event journal,
// counter-health watchdog, exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <cstdio>

#include "analyzer/report.h"
#include "common/fileutil.h"
#include "common/histogram.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/layout.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/watchdog.h"

using namespace teeperf;
using namespace teeperf::obs;

namespace {

std::unique_ptr<SelfTelemetry> anon_session(u32 journal_capacity = 256) {
  TelemetryOptions topts;  // no shm_name → anonymous region
  topts.journal_capacity = journal_capacity;
  auto t = SelfTelemetry::create(topts);
  EXPECT_NE(t, nullptr);
  return t;
}

}  // namespace

TEST(ObsMetrics, ConcurrentIncrementsSumExactly) {
  auto t = anon_session();
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 20000;

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      // Every thread registers by name itself — find-or-create must resolve
      // races to the same slot.
      Counter c = t->registry().counter("test.hits");
      ASSERT_TRUE(c.valid());
      for (u64 n = 0; n < kPerThread; ++n) c.inc();
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(t->registry().counter("test.hits").value(), kThreads * kPerThread);
  EXPECT_EQ(t->registry().scalar_count(), 1u);
}

TEST(ObsMetrics, ConcurrentRegistrationDistinctNames) {
  auto t = anon_session();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Counter c = t->registry().counter("test.per_thread." + std::to_string(i));
      c.add(static_cast<u64>(i) + 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t->registry().scalar_count(), static_cast<usize>(kThreads));
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(
        t->registry().counter("test.per_thread." + std::to_string(i)).value(),
        static_cast<u64>(i) + 1);
  }
}

TEST(ObsMetrics, TypeMismatchYieldsInertHandle) {
  auto t = anon_session();
  Counter c = t->registry().counter("test.mixed");
  ASSERT_TRUE(c.valid());
  Gauge g = t->registry().gauge("test.mixed");
  EXPECT_FALSE(g.valid());
  g.set(42);  // no-op, must not crash or corrupt the counter
  c.inc();
  EXPECT_EQ(t->registry().counter("test.mixed").value(), 1u);
}

TEST(ObsMetrics, RegistryFullYieldsInertHandles) {
  TelemetryOptions topts;
  topts.scalar_capacity = 4;
  auto t = SelfTelemetry::create(topts);
  ASSERT_NE(t, nullptr);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(t->registry().counter("c" + std::to_string(i)).valid());
  }
  Counter overflow = t->registry().counter("c4");
  EXPECT_FALSE(overflow.valid());
  overflow.inc();  // silently dropped
  EXPECT_EQ(t->registry().scalar_count(), 4u);
}

TEST(ObsHistogram, BucketBoundaries) {
  // Power-of-two bucketing: values [2^(b-1), 2^b - 1] land in bucket b.
  EXPECT_EQ(hist::bucket_for(0), 0u);
  EXPECT_EQ(hist::bucket_for(1), hist::bucket_for(1));
  for (usize b = 2; b < 63; ++b) {
    u64 lo = hist::bucket_low(b);
    u64 hi = hist::bucket_high(b);
    ASSERT_LT(lo, hi);
    EXPECT_EQ(hist::bucket_for(lo), b) << "low edge of bucket " << b;
    EXPECT_EQ(hist::bucket_for(hi), b) << "high edge of bucket " << b;
    EXPECT_NE(hist::bucket_for(hi + 1), b) << "past bucket " << b;
    // Adjacent buckets tile the value range with no gaps.
    EXPECT_EQ(hist::bucket_high(b - 1) + 1, lo);
  }
  EXPECT_LT(hist::bucket_for(~0ull), hist::kLogBuckets);
}

TEST(ObsHistogram, ShmHistogramStats) {
  auto t = anon_session();
  Histogram h = t->registry().histogram("test.latency");
  ASSERT_TRUE(h.valid());
  for (u64 v : {100ull, 200ull, 400ull, 800ull, 1600ull}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  const HistogramSlot* slot = h.slot();
  EXPECT_EQ(slot->min.load(), 100u);
  EXPECT_EQ(slot->max.load(), 1600u);
  EXPECT_EQ(slot->sum.load(), 3100u);
  EXPECT_EQ(t->registry().histogram_count(), 1u);
}

TEST(ObsJournal, RecordAndSnapshot) {
  auto t = anon_session();
  t->journal().record(EventType::kAttach, 1234, 0, "software");
  t->journal().record(EventType::kActivate);
  t->journal().record(EventType::kDetach, 42, 7);
  EXPECT_EQ(t->journal().total(), 3u);
  auto events = t->journal().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, EventType::kAttach);
  EXPECT_EQ(events[0].arg0, 1234u);
  EXPECT_STREQ(events[0].detail, "software");
  EXPECT_EQ(events[2].type, EventType::kDetach);
  EXPECT_EQ(events[2].arg1, 7u);
  // Timestamps are monotone in sequence order.
  EXPECT_LE(events[0].t_ns, events[2].t_ns);
}

TEST(ObsJournal, WrapKeepsNewestWindow) {
  auto t = anon_session(/*journal_capacity=*/8);
  for (u64 i = 1; i <= 20; ++i) {
    t->journal().record(EventType::kRingWrap, i);
  }
  EXPECT_EQ(t->journal().total(), 20u);
  auto events = t->journal().snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().seq, 13u);
  EXPECT_EQ(events.back().seq, 20u);
  EXPECT_EQ(events.back().arg0, 20u);
}

TEST(ObsSession, NamedRegionSharedAcrossMappings) {
  // The cross-process story in one process: a second SelfTelemetry::open of
  // the same named region sees writes through the first mapping.
  TelemetryOptions topts;
  topts.shm_name = "/teeperf_test_obs." + std::to_string(getpid());
  auto owner = SelfTelemetry::create(topts);
  ASSERT_NE(owner, nullptr);
  owner->registry().counter("test.shared").add(99);
  owner->journal().record(EventType::kAttach, 1);

  auto scraper = SelfTelemetry::open(topts.shm_name);
  ASSERT_NE(scraper, nullptr);
  EXPECT_EQ(scraper->registry().counter("test.shared").value(), 99u);
  EXPECT_EQ(scraper->journal().total(), 1u);

  // Writes through the scraper mapping are visible to the owner too (the
  // profiled child uses exactly this path for its per-thread counters).
  scraper->registry().counter("test.shared").inc();
  EXPECT_EQ(owner->registry().counter("test.shared").value(), 100u);
}

TEST(ObsSession, InstallUninstallBumpsEpoch) {
  u64 before = telemetry_epoch();
  auto t = anon_session();
  install(t.get());
  EXPECT_EQ(telemetry(), t.get());
  EXPECT_GT(telemetry_epoch(), before);
  u64 installed = telemetry_epoch();
  journal_event(EventType::kActivate);
  EXPECT_EQ(t->journal().total(), 1u);
  uninstall(t.get());
  EXPECT_EQ(telemetry(), nullptr);
  EXPECT_GT(telemetry_epoch(), installed);
  journal_event(EventType::kActivate);  // no sink installed → dropped
  EXPECT_EQ(t->journal().total(), 1u);
}

TEST(ObsWatchdog, FrozenCounterJournalsStall) {
  auto t = anon_session();
  std::atomic<u64> sim_counter{0};
  std::atomic<bool> advance{true};
  // Simulated software counter: advances until frozen.
  std::thread ticker([&] {
    while (advance.load(std::memory_order_relaxed)) {
      sim_counter.fetch_add(1, std::memory_order_relaxed);
      usleep(100);
    }
  });

  WatchdogOptions wopts;
  wopts.interval_ms = 5;
  wopts.stall_windows = 2;
  Watchdog wd(&t->registry(), &t->journal(),
              [&] { return sim_counter.load(std::memory_order_relaxed); },
              "software", wopts);
  wd.start();

  // Let it calibrate on the healthy counter...
  for (int i = 0; i < 400 && wd.ticks() < 4; ++i) usleep(1000);
  EXPECT_FALSE(wd.stalled());

  // ...then freeze the counter and wait for the stall verdict.
  advance.store(false);
  ticker.join();
  for (int i = 0; i < 2000 && !wd.stalled(); ++i) usleep(1000);
  EXPECT_TRUE(wd.stalled());
  wd.stop();

  bool saw_stall = false;
  for (const Event& e : t->journal().snapshot()) {
    if (e.type == EventType::kCounterStall) {
      saw_stall = true;
      EXPECT_STREQ(e.detail, "software");
    }
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_GE(t->registry().counter("watchdog.stall_events").value(), 1u);
  EXPECT_EQ(t->registry().gauge("counter.stalled").value(), 1u);
}

TEST(ObsWatchdog, HealthyCounterPublishesRate) {
  auto t = anon_session();
  std::atomic<u64> sim_counter{0};
  std::atomic<bool> advance{true};
  std::thread ticker([&] {
    while (advance.load(std::memory_order_relaxed)) {
      sim_counter.fetch_add(1, std::memory_order_relaxed);
      usleep(100);
    }
  });

  WatchdogOptions wopts;
  wopts.interval_ms = 5;
  Watchdog wd(&t->registry(), &t->journal(),
              [&] { return sim_counter.load(std::memory_order_relaxed); },
              "software", wopts);
  wd.start();
  for (int i = 0; i < 2000 && wd.ns_per_tick() == 0.0; ++i) usleep(1000);
  wd.stop();
  advance.store(false);
  ticker.join();

  EXPECT_GT(wd.ns_per_tick(), 0.0);
  EXPECT_FALSE(wd.stalled());
  // ~100µs per tick published in picoseconds.
  EXPECT_GT(t->registry().gauge("counter.ns_per_tick_pico").value(), 0u);
  EXPECT_GE(wd.ticks(), 1u);
}

TEST(ObsExport, TextAndJsonl) {
  auto t = anon_session();
  t->registry().counter("test.count").add(3);
  t->registry().gauge("test.level").set(7);
  t->registry().histogram("test.dist").add(1000);
  t->journal().record(EventType::kAttach, 55, 0, "tsc");

  std::string text = metrics_text(t->registry());
  EXPECT_NE(text.find("test.count"), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("test.level"), std::string::npos);

  std::string jsonl = metrics_jsonl(t->registry());
  EXPECT_NE(jsonl.find("{\"metric\":\"test.count\",\"type\":\"counter\","
                       "\"value\":3}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"metric\":\"test.dist\""), std::string::npos);

  std::string ejson = events_jsonl(t->journal());
  EXPECT_NE(ejson.find("\"event\":\"attach\""), std::string::npos);
  EXPECT_NE(ejson.find("\"arg0\":55"), std::string::npos);
  EXPECT_NE(ejson.find("\"detail\":\"tsc\""), std::string::npos);

  std::string health = health_text(t->registry(), t->journal());
  EXPECT_NE(health.find("recorder health metrics"), std::string::npos);
  EXPECT_NE(health.find("recorder events"), std::string::npos);
}

TEST(ObsExport, AnalyzerHealthReportWarnsOnStall) {
  // The analyzer folds the sidecar files into its report and distills
  // degradation warnings out of the event stream.
  auto t = anon_session();
  t->registry().gauge("counter.stalled").set(1);
  t->journal().record(EventType::kCounterStall, 123, 456, "software");
  std::string prefix = "/tmp/teeperf_test_obs_health." + std::to_string(getpid());
  ASSERT_TRUE(write_file(prefix + ".health",
                         health_text(t->registry(), t->journal())));
  ASSERT_TRUE(write_file(prefix + ".events.jsonl", events_jsonl(t->journal())));

  std::string report = analyzer::health_report(prefix);
  EXPECT_NE(report.find("recorder health"), std::string::npos);
  EXPECT_NE(report.find("WARNING: counter_stall"), std::string::npos);
  EXPECT_NE(report.find("counter.stalled"), std::string::npos);

  EXPECT_EQ(analyzer::health_report(prefix + ".nonexistent"), "");
  std::remove((prefix + ".health").c_str());
  std::remove((prefix + ".events.jsonl").c_str());
}

TEST(ObsLayoutTest, RejectsForeignBuffer) {
  std::vector<u8> buf(4096, 0xAB);
  ObsLayout layout;
  EXPECT_FALSE(ObsLayout::map(buf.data(), buf.size(), &layout));
}
